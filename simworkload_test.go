package ifdb_test

import (
	"net"
	"strconv"
	"testing"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/obs"
	"ifdb/internal/sim"
	"ifdb/internal/wire"
)

// TestMixedTenantWorkloadShardedIFC is the end-to-end proof behind
// `ifdb-bench -exp mixed-tenant`: a deterministic multi-tenant sim
// schedule driven through per-cohort Routers (each carrying its
// tenant's secrecy tag via RouterConfig.Secrecy) against a sharded
// IFC-enabled cluster, asserting the two things the bench only
// gestures at —
//
//  1. DIFC isolation held per cohort: every row a tenant can see
//     carries exactly that tenant's label, cross-tenant point reads
//     come back empty, and cross-tenant updates touch zero rows;
//  2. the workload really foamed across the cluster: the per-shard
//     routing counters moved on every shard.
func TestMixedTenantWorkloadShardedIFC(t *testing.T) {
	const nShards = 2
	const keys = 32

	// Cohorts: two tenants with different mixes; no scans/DDL so every
	// op is keyed and the routing counters attribute cleanly.
	w := sim.Workload{
		Seed:    7,
		Workers: 3,
		Ops:     240,
		Table:   "kv",
		Keys:    keys,
		Cohorts: []sim.Cohort{
			{Name: "acme", Weight: 2, Tags: []string{"t_acme"}, Mix: sim.StmtMix{PointRead: 3, PointWrite: 1}},
			{Name: "umbrella", Weight: 1, Tags: []string{"t_umbrella"}, Mix: sim.StmtMix{PointRead: 1, PointWrite: 1, Insert: 1}},
		},
	}
	sched, err := sim.Generate(w)
	if err != nil {
		t.Fatal(err)
	}

	// Shard topology: IFC-on engines behind real sockets, one shard
	// map keyed on kv.k, ownership guards installed before Serve.
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	type shard struct {
		db *ifdb.DB
	}
	var shards []shard
	var addrs []string
	for i := 0; i < nShards; i++ {
		db := ifdb.MustOpen(ifdb.Config{IFC: true})
		t.Cleanup(func() { db.Close() })
		if _, err := db.AdminSession().Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
			t.Fatal(err)
		}
		srv := wire.NewServer(db.Engine(), "")
		srv.ShardMap = func() *wire.ShardMap { return smap }
		sid := uint32(i)
		db.Engine().SetShardGuard(shardGuardFor(func() *wire.ShardMap { return smap }, sid))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		shards = append(shards, shard{db})
		addrs = append(addrs, ln.Addr().String())
	}
	for i, a := range addrs {
		smap.Shards = append(smap.Shards, wire.Shard{ID: uint32(i), Primary: a})
	}

	// Tags created in the same order on every shard, so the IDs align
	// cluster-wide and one client.Tag value routes anywhere.
	tags := map[string]client.Tag{}
	for i := range shards {
		for _, c := range sched.W.Cohorts {
			prin := shards[i].db.CreatePrincipal(c.Name)
			for _, tn := range c.Tags {
				tg, err := shards[i].db.CreateTag(prin, tn)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					tags[tn] = tg
				}
			}
		}
	}

	// One Router per cohort, its label pinned by RouterConfig.Secrecy.
	routers := map[string]*client.Router{}
	labels := map[string]client.Label{}
	for _, c := range sched.W.Cohorts {
		var sec []client.Tag
		var lb client.Label
		for _, tn := range c.Tags {
			sec = append(sec, tags[tn])
			lb = lb.Add(tags[tn])
		}
		r, err := client.OpenRouter(client.RouterConfig{
			Addrs: addrs, ShardMap: smap, PoolSize: w.Workers, Secrecy: sec,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		routers[c.Name] = r
		labels[c.Name] = lb
	}

	// Seed each tenant's key domain through its own labeled router, so
	// the rows carry exactly the tenant's label.
	for ci, c := range sched.W.Cohorts {
		base := int64(ci) * sim.CohortKeyStride
		for k := int64(0); k < keys; k++ {
			if _, err := routers[c.Name].Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(base+k), ifdb.Int(100+k)); err != nil {
				t.Fatalf("seed %s key %d: %v", c.Name, base+k, err)
			}
		}
	}

	snap0 := obs.Default.Snapshot()

	// Drive the schedule: each op through its cohort's router.
	st, err := sim.Run(sched, sim.Options{}, func(op *sim.Op, lap int) error {
		args := op.LapArgs(lap)
		vals := make([]ifdb.Value, len(args))
		for i, a := range args {
			vals[i] = ifdb.Int(a)
		}
		_, err := routers[op.Cohort].Exec(op.SQL, vals...)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalOps() != int64(len(sched.Ops)) {
		t.Fatalf("ran %d ops, schedule has %d", st.TotalOps(), len(sched.Ops))
	}
	for name, cs := range st.Cohorts {
		if cs.Ops == 0 {
			t.Fatalf("cohort %s executed nothing", name)
		}
		if cs.Failures != 0 {
			t.Fatalf("cohort %s: %d/%d ops failed", name, cs.Failures, cs.Ops)
		}
	}

	// (1) DIFC isolation. Every row a tenant's fan-out scan surfaces
	// must carry exactly that tenant's label...
	for _, c := range sched.W.Cohorts {
		rows, err := routers[c.Name].Query(`SELECT k, v FROM kv`)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
			if rl := rows.RowLabel(); !rl.Equal(labels[c.Name]) {
				t.Fatalf("tenant %s sees a row labeled %v (its label is %v)", c.Name, rl, labels[c.Name])
			}
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if n < keys {
			t.Fatalf("tenant %s sees %d rows, expected at least its %d seeded", c.Name, n, keys)
		}
	}
	// ...cross-tenant point reads come back empty...
	otherBase := int64(1) * sim.CohortKeyStride // umbrella's first seeded key
	res, err := routers["acme"].Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(otherBase))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("acme read umbrella's row through query-by-label: %v", res.Rows)
	}
	// ...and cross-tenant updates touch zero rows, leaving the victim
	// row intact.
	res, err = routers["acme"].Exec(`UPDATE kv SET v = v + 1000 WHERE k = $1`, ifdb.Int(otherBase))
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 0 {
		t.Fatalf("acme updated %d of umbrella's rows", res.Affected)
	}
	res, err = routers["umbrella"].Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(otherBase))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("umbrella lost sight of its own row: %d rows", len(res.Rows))
	}
	var v int64
	if err := client.ScanValue(res.Rows[0][0], &v); err != nil {
		t.Fatal(err)
	}
	if v >= 1000 {
		t.Fatalf("umbrella's row was mutated cross-tenant: v=%d", v)
	}

	// (2) The schedule foamed across the cluster: the per-shard routing
	// counters moved on every shard during the run.
	routed := obs.Default.Snapshot().Sub(snap0).Vecs["ifdb_router_shard_routed_total"]
	for i := 0; i < nShards; i++ {
		key := strconv.Itoa(i)
		if routed[key] == 0 {
			t.Fatalf("shard %d routed no keyed statements during the run (vec: %v)", i, routed)
		}
	}

	// Belt and braces: both shards actually hold tuples (the keyspace
	// partitioned server-side, not just in the client's counters).
	for i := range shards {
		if n := shards[i].db.Engine().Stats().Tuples; n == 0 {
			t.Fatalf("shard %d holds no tuples", i)
		}
	}
	// Pin what the run was: deterministic schedule, so this count is
	// stable across machines and runs.
	if len(sched.Ops) != 240 {
		t.Fatalf("schedule length drifted: %d", len(sched.Ops))
	}
}
