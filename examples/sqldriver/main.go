// Command sqldriver is the README's "Using database/sql" walkthrough:
// a stock database/sql program — prepared statements, transactions,
// streamed rows — with IFDB underneath via the ifdb driver. The only
// IFDB-specific line is the import.
package main

import (
	"database/sql"
	"flag"
	"fmt"
	"log"

	_ "ifdb/driver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "ifdb-server address")
	token := flag.String("token", "demo", "platform token")
	flag.Parse()

	db, err := sql.Open("ifdb", fmt.Sprintf("ifdb://%s?token=%s", *addr, *token))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`CREATE TABLE IF NOT EXISTS tasks (
		id BIGINT PRIMARY KEY, title TEXT, done BOOLEAN)`); err != nil {
		log.Fatal(err)
	}

	// Prepared statements map to wire-level PREPARE/EXECUTE: the
	// server parses once and pins the AST; executions ship a handle.
	ins, err := db.Prepare(`INSERT INTO tasks VALUES ($1, $2, $3)`)
	if err != nil {
		log.Fatal(err)
	}
	defer ins.Close()
	for i, title := range []string{"write paper", "ship database", "rest"} {
		if _, err := ins.Exec(int64(i+1), title, false); err != nil {
			log.Fatal(err)
		}
	}

	// Transactions pin one connection: BEGIN/COMMIT (or ROLLBACK).
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE tasks SET done = TRUE WHERE id = $1`, int64(2)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Rows stream from the server in chunks; Scan is stock stdlib.
	rows, err := db.Query(`SELECT id, title, done FROM tasks ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var id int64
		var title string
		var done bool
		if err := rows.Scan(&id, &title, &done); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %-14s done=%v\n", id, title, done)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sqldriver: OK")
}
