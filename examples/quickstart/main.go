// Quickstart: the IFDB model in one file — tags, labels, Query by
// Label, polyinstantiation, and declassification with authority.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"ifdb"
)

func main() {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()

	// The administrator defines the schema (and, per the Principle of
	// Least Privilege, holds no declassification authority at all).
	must(admin.Exec(`CREATE TABLE patients (
		name      TEXT PRIMARY KEY,
		condition TEXT
	)`))

	// Alice and Bob each own a tag protecting their medical data.
	alice := db.CreatePrincipal("alice")
	bob := db.CreatePrincipal("bob")
	aliceMed, err := db.CreateTag(alice, "alice_medical")
	check(err)
	bobMed, err := db.CreateTag(bob, "bob_medical")
	check(err)

	// Bob's process contaminates itself, then writes: the tuple is
	// stamped with exactly the process label {bob_medical}.
	sb := db.NewSession(bob)
	check(sb.AddSecrecy(bobMed))
	must(sb.Exec(`INSERT INTO patients VALUES ('Bob', 'HIV')`))
	fmt.Println("Bob inserted his record at label", sb.Label())

	// Query by Label: an empty-label process sees no rows — not an
	// error, just an empty, consistent subset of the database.
	sa := db.NewSession(alice)
	res := mustQ(sa.Exec(`SELECT * FROM patients`))
	fmt.Printf("Alice (label %v) sees %d rows\n", sa.Label(), len(res.Rows))

	// Polyinstantiation: Alice inserts a conflicting key she cannot
	// see. Refusing would leak Bob's row, so IFDB accepts it.
	check(sa.AddSecrecy(aliceMed))
	must(sa.Exec(`INSERT INTO patients VALUES ('Bob', 'flu?')`))
	fmt.Println("Alice polyinstantiated Bob's key at", sa.Label())

	// A doctor Bob trusts: Bob delegates authority for his tag.
	doctor := db.CreatePrincipal("doctor")
	check(db.NewSession(bob).Delegate(doctor, bobMed))

	sd := db.NewSession(doctor)
	check(sd.AddSecrecy(bobMed))
	res = mustQ(sd.Exec(`SELECT condition FROM patients WHERE name = 'Bob'`))
	fmt.Printf("Doctor reads Bob's condition: %s\n", res.Rows[0][0])

	// The doctor can release it because of the delegation...
	check(sd.Declassify(bobMed))
	fmt.Println("Doctor declassified; label now", sd.Label())

	// ...but Alice cannot release Bob's data: she can contaminate
	// herself with his tag (reading is gated by the label, not by
	// permission), yet has no authority to remove it again.
	check(sa.AddSecrecy(bobMed))
	err = sa.Declassify(bobMed)
	fmt.Println("Alice declassifying bob_medical:", err)
	if !errors.Is(err, ifdb.ErrAuthority) {
		log.Fatal("expected an authority error")
	}
	// See examples/medical for the §5.1 conditional-commit attack
	// being stopped by the commit-label rule.
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(res *ifdb.Result, err error) *ifdb.Result {
	check(err)
	return res
}

func mustQ(res *ifdb.Result, err error) *ifdb.Result {
	check(err)
	return res
}
