// HotCRP walkthrough (paper §6.2): the PCMembers declassifying view,
// review tags with conflict-of-interest delegation, and decisions that
// stay invisible until released.
//
//	go run ./examples/hotcrp
package main

import (
	"fmt"
	"log"
	"os"

	"ifdb"
	"ifdb/apps/hotcrp"
)

func main() {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	app, err := hotcrp.Setup(db)
	check(err)

	cathy, err := app.Register(1, "Cathy", "Chair", "cathy@conf.org", "MIT", true)
	check(err)
	pete, err := app.Register(2, "Pete", "PCMember", "pete@conf.org", "CMU", true)
	check(err)
	aaron, err := app.Register(3, "Aaron", "Author", "aaron@uni.edu", "Uni", false)
	check(err)

	check(app.SubmitPaper(100, "A Modest Proposal for DIFC", aaron))
	check(app.SubmitPaper(101, "Pete's Conflicted Paper", pete))
	check(app.DeclareConflict(101, pete.ID))

	// The PC list: anyone sees names — and only names — through the
	// declassifying view, even with an empty label.
	fmt.Println("-- aaron (an author) requests the PC list --")
	check(app.RT.ServeRequest(aaron.Principal, app.PCListPage, nil, os.Stdout))

	// Reviews: Cathy reviews both papers; tags delegated to eligible
	// PC members only.
	_, err = app.SubmitReview(1000, 100, cathy, 5, "accept, obviously")
	check(err)
	_, err = app.SubmitReview(1001, 101, cathy, 2, "reject; conflicted author lurks")
	check(err)
	check(app.DelegateReviews())

	fmt.Println("\n-- pete reads reviews of paper 100 (eligible) --")
	check(app.RT.ServeRequest(pete.Principal, app.ReviewsPage, map[string]string{"paper": "100"}, os.Stdout))

	fmt.Println("\n-- pete reads reviews of paper 101 (his own; conflicted) --")
	check(app.RT.ServeRequest(pete.Principal, app.ReviewsPage, map[string]string{"paper": "101"}, os.Stdout))
	fmt.Println("(no output: the conflict kept the delegation away)")

	// Decisions: recorded, searched (the old sort-leak), released.
	check(app.RecordDecision(100, "accept"))
	fmt.Println("\n-- aaron searches papers sorted by decision (pre-release) --")
	check(app.RT.ServeRequest(aaron.Principal, app.SearchPage, nil, os.Stdout))

	check(app.ReleaseDecisions())
	fmt.Println("\n-- after release --")
	check(app.RT.ServeRequest(aaron.Principal, app.DecisionsPage, nil, os.Stdout))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
