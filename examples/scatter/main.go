// Command scatter is the README's sharded-cluster walkthrough: a
// client.Router pointed at one node of a sharded cluster discovers
// the topology, routes keyed writes to their owning shards, and runs
// a cluster-wide GROUP BY aggregate as a scatter-gather plan — each
// shard aggregates its slice and ships one partial row per group;
// the gateway merges SUM-of-COUNTs. EXPLAIN shows the split.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ifdb"
	"ifdb/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "any node of the sharded cluster")
	token := flag.String("token", "demo", "platform token")
	flag.Parse()

	// One address is enough: the Router asks the node for its
	// SHARDMAP and discovers every shard's primary from the map.
	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{*addr}, Token: *token,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	// DDL fans out to every shard primary; keyed INSERTs route to the
	// shard that owns hash(k).
	if _, err := router.Exec(`CREATE TABLE IF NOT EXISTS events (
		k BIGINT PRIMARY KEY, kind TEXT)`); err != nil {
		log.Fatal(err)
	}
	kinds := []string{"login", "logout", "purchase"}
	for k := 0; k < 30; k++ {
		if _, err := router.Exec(`INSERT INTO events VALUES ($1, $2)`,
			ifdb.Int(int64(k)), ifdb.Text(kinds[k%3])); err != nil {
			log.Fatal(err)
		}
	}

	// A keyless aggregate splits at the shard boundary: EXPLAIN shows
	// the gateway merge recipe, then the fragment each shard runs.
	const q = `SELECT kind, count(*) FROM events GROUP BY kind ORDER BY kind`
	plan, err := router.Exec(`EXPLAIN ` + q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range plan.Rows {
		fmt.Println(row[0].String())
	}

	res, err := router.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for _, row := range res.Rows {
		fmt.Printf("%s | %s\n", row[0].String(), row[1].String())
	}

	fmt.Println("scatter: OK")
}
