// CarTel end-to-end walkthrough (paper §6.1): ingest GPS data through
// the trigger-driven pipeline, then exercise the web scripts —
// including the URL-manipulation attack that IFDB neutralizes.
//
//	go run ./examples/cartel
package main

import (
	"fmt"
	"log"
	"os"

	"ifdb"
	"ifdb/apps/cartel"
)

func main() {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	app, err := cartel.Setup(db)
	check(err)

	alice, err := app.Register(1, "alice", "secret", "alice@cartel")
	check(err)
	bob, err := app.Register(2, "bob", "hunter2", "bob@cartel")
	check(err)
	check(app.AddCar(10, alice.ID, "ALICE-1"))
	check(app.AddCar(20, bob.ID, "BOB-1"))

	// A drive: 30 GPS points 30 seconds apart.
	pts := make([]cartel.Point, 30)
	lat, lon := 42.3601, -71.0942
	for i := range pts {
		lat += 0.0006
		lon -= 0.0002
		pts[i] = cartel.Point{Lat: lat, Lon: lon, TS: int64(1700000000 + i*30)}
	}
	check(app.IngestBatch(alice, 10, pts))
	fmt.Println("ingested 30 measurements for alice's car")

	// Alice views her own car locations.
	fmt.Println("\n-- alice requests get_cars.php --")
	check(app.RT.ServeRequest(alice.Principal, app.GetCars, nil, os.Stdout))

	// Bob tries the paper's attack: fetch alice's drives via the URL.
	fmt.Println("\n-- bob requests drives.php?friend=1 (attack) --")
	check(app.RT.ServeRequest(bob.Principal, app.Drives, map[string]string{"friend": "1"}, os.Stdout))
	fmt.Println("(no output: bob read alice's drives but cannot declassify them)")

	// Alice befriends Bob: delegation of alice's drives tag.
	check(app.Befriend(alice, bob))
	fmt.Println("\n-- alice befriended bob; bob retries --")
	check(app.RT.ServeRequest(bob.Principal, app.Drives, map[string]string{"friend": "1"}, os.Stdout))

	// Aggregate traffic statistics via the all_drives closure.
	fmt.Println("\n-- alice requests drives_top.php --")
	check(app.RT.ServeRequest(alice.Principal, app.DrivesTop, nil, os.Stdout))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
