// Medical-records example: the paper's running HIVPatients scenario
// (§4.2, §5) — compound tags, label constraints, the Foreign Key Rule
// with DECLASSIFYING, the §5.1 conditional-commit attack, and the
// billing declassifying-view pattern from §6.4.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"ifdb"
)

func main() {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()

	must(admin.Exec(`
	CREATE TABLE patients (
		pname TEXT PRIMARY KEY,
		dob   TEXT,
		med_tag BIGINT,
		CONSTRAINT patient_label LABEL EXACTLY (med_tag)
	);
	CREATE TABLE prescriptions (
		rxid  BIGINT PRIMARY KEY,
		pname TEXT REFERENCES patients (pname),
		drug  TEXT
	)`))

	// A hospital principal owns the all_medical compound; each patient
	// owns their member tag.
	hospital := db.CreatePrincipal("hospital")
	_, err := db.NewSession(hospital).CreateTag("all_medical")
	check(err)

	alice := db.CreatePrincipal("alice")
	sa := db.NewSession(alice)
	aliceMed, err := sa.CreateTag("alice_medical", "all_medical")
	check(err)

	// The label constraint forces Alice's row to carry exactly
	// {alice_medical} — mislabeling (and polyinstantiation of her key)
	// is impossible (§5.2.4).
	check(sa.AddSecrecy(aliceMed))
	must(sa.Exec(`INSERT INTO patients VALUES ('Alice', '2/1/60', $1)`,
		ifdb.Int(int64(uint64(aliceMed)))))
	fmt.Println("inserted Alice's record under the label constraint")

	if _, err := db.NewSession(alice).Exec(
		`INSERT INTO patients VALUES ('Alice2', '1/1/70', $1)`,
		ifdb.Int(int64(uint64(aliceMed)))); err != nil {
		fmt.Println("mislabeled insert rejected:", err)
	}

	// Foreign Key Rule (§5.2.2): inserting a prescription that
	// references Alice's {alice_medical} row from a process at the
	// same label has an empty symmetric difference — fine. From a
	// different label, the tags must be declared and authorized.
	must(sa.Exec(`INSERT INTO prescriptions VALUES (1, 'Alice', 'ritonavir')`))
	fmt.Println("same-label prescription insert OK")

	sa2 := db.NewSession(alice)
	if _, err := sa2.Exec(`INSERT INTO prescriptions VALUES (2, 'Alice', 'aspirin')`); err != nil {
		fmt.Println("empty-label FK insert rejected:", err)
	}
	// With the tag declared (and Alice's own authority), it works:
	must(sa2.Exec(`INSERT INTO prescriptions VALUES (2, 'Alice', 'aspirin') DECLASSIFYING (alice_medical)`))
	fmt.Println("DECLASSIFYING(alice_medical) insert OK")

	// §5.1's attack: write low, raise, read secret, commit iff present.
	mallory := db.CreatePrincipal("mallory")
	must(admin.Exec(`CREATE TABLE bulletin (msg TEXT)`))
	sm := db.NewSession(mallory)
	must(sm.Exec(`BEGIN`))
	must(sm.Exec(`INSERT INTO bulletin VALUES ('Alice has HIV')`))
	must(sm.Exec(`SELECT addsecrecy('alice_medical')`))
	res := mustQ(sm.Exec(`SELECT * FROM patients WHERE pname = 'Alice'`))
	fmt.Printf("mallory (contaminated) sees %d row(s)\n", len(res.Rows))
	if _, err := sm.Exec(`COMMIT`); err != nil {
		fmt.Println("commit-label rule blocked the leak:", err)
	}
	res = mustQ(db.NewSession(mallory).Exec(`SELECT * FROM bulletin`))
	fmt.Printf("bulletin rows visible publicly: %d\n", len(res.Rows))

	// Billing pattern (§6.4): a declassifying view owned by a billing
	// principal that Alice trusts with her medical tag. The view can
	// bind only authority its creator actually holds: billing was
	// delegated alice_medical, not the whole all_medical compound.
	billing := db.CreatePrincipal("billing")
	check(db.NewSession(alice).Delegate(billing, aliceMed))
	sbill := db.NewSession(billing)
	if _, err := sbill.Exec(`CREATE VIEW billing_all AS
		SELECT pname FROM patients WITH DECLASSIFYING (all_medical)`); err != nil {
		fmt.Println("overbroad declassifying view rejected:", err)
	}
	must(sbill.Exec(`CREATE VIEW billing_names AS
		SELECT pname FROM patients WITH DECLASSIFYING (alice_medical)`))
	res = mustQ(db.NewSession(billing).Exec(`SELECT * FROM billing_names`))
	fmt.Printf("billing view (empty-label reader) shows %d patient name(s): %v\n",
		len(res.Rows), res.Rows)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must(res *ifdb.Result, err error) *ifdb.Result {
	check(err)
	return res
}

func mustQ(res *ifdb.Result, err error) *ifdb.Result {
	check(err)
	return res
}
