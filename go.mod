module ifdb

go 1.22
