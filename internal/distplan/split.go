// Package distplan splits a keyless SELECT at the shard boundary into
// a per-shard fragment (scan + pushed predicates + projection +
// partial aggregation, rendered back to wire-executable SQL) and a
// gateway merge plan that finalizes the fragments' streams into the
// single-node answer: k-way ordered merge, SUM-of-COUNTs / AVG
// recomposition, re-applied HAVING, top-K LIMIT.
//
// The split never weakens the paper's label semantics (Query by Label,
// §7.1): each fragment executes on its shard under the session's full
// IFC machinery, so every row or partial aggregate a shard ships is
// already confined to the session label, and its reported secrecy
// label is the union of its inputs. The gateway only ever unions
// shard-reported labels — exactly what the single-node engine computes
// for the same group, because the shards partition the rows. A
// statement the gateway glue cannot reproduce exactly — declassify or
// any other engine-resident function, a subquery, a join, rep-row
// column references — is never split: Split returns nil and the caller
// falls back to plain fan-out.
package distplan

import (
	"fmt"

	"ifdb/internal/exec"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// Mode is the gateway merge strategy for a split statement.
type Mode int

const (
	// ModeOrdered streams the per-shard sorted fragments through a
	// k-way ordered merge (also used, with zero sort keys, for plain
	// LIMIT/OFFSET/DISTINCT shipping).
	ModeOrdered Mode = iota + 1
	// ModePartialAgg ships per-shard partial aggregates and finalizes
	// at the gateway (SUM of COUNTs, AVG = SUM/COUNT recomposition).
	ModePartialAgg
	// ModeGatherAgg ships the matching rows (group keys + aggregate
	// arguments) and aggregates fully at the gateway. It is the
	// fallback for DISTINCT aggregates, where partials cannot compose,
	// and the ship-all-rows baseline when pushdown is disabled.
	ModeGatherAgg
)

func (m Mode) String() string {
	switch m {
	case ModeOrdered:
		return "ordered-merge"
	case ModePartialAgg:
		return "partial-agg"
	case ModeGatherAgg:
		return "gather-agg"
	}
	return "?"
}

// Options tunes the split.
type Options struct {
	// NoPartial disables partial-aggregate pushdown: aggregated
	// statements ship raw rows and aggregate at the gateway
	// (ModeGatherAgg). Exists for the scatter-agg benchmark baseline.
	NoPartial bool
}

// aggSpec describes one aggregate call and its fragment column layout.
type aggSpec struct {
	call     *sql.FuncCall // original node; identity key for glue rewrite
	fn       string
	star     bool
	distinct bool
	// width is the number of fragment columns the aggregate occupies
	// after the group columns: partial AVG ships sum+count (2); a
	// gathered COUNT(*) ships nothing (0); everything else ships 1.
	width int
}

// Spec is a split statement: the fragment text to run on every shard
// and the recipe for merging the fragment streams at the gateway.
type Spec struct {
	Table    string // lower-cased base table the fragment scans
	Fragment string // rendered per-shard SQL
	Mode     Mode

	// Ordered mode. Sort keys are either user output ordinals or
	// hidden trailing columns appended to the fragment projection.
	keyItems    []int // >=0: output ordinal; -1-h: hidden column h
	hidden      int   // number of hidden trailing sort columns
	desc        []bool
	distinct    bool
	pushedLimit bool // fragment carries LIMIT limit+offset

	// Aggregate modes. Glue expressions reference group values as
	// __ifdb_g<k> columns and keep aggregate calls in place; the
	// gateway substitutes finalized values the same way the engine
	// substitutes placeholder parameters.
	groupN    int
	aggs      []aggSpec
	items     []sql.Expr
	names     []string // output column names (engine naming rules)
	having    sql.Expr
	orderGlue []sql.Expr
	orderDesc []bool

	// Applied at the gateway with the user's parameters.
	limit, offset sql.Expr
}

// gatewayFns are the scalar functions exec.Eval computes without an
// engine (callBuiltin): the only calls allowed in gateway glue.
var gatewayFns = map[string]bool{
	"lower": true, "upper": true, "length": true, "abs": true,
	"coalesce": true, "label_contains": true, "label_size": true,
}

// Split parses one statement and, when it is a splittable single-table
// SELECT, returns its shard/gateway decomposition. nil means "do not
// split": the statement is not a SELECT, touches constructs the
// gateway cannot finalize exactly, or simply has nothing to merge.
// Split re-parses the text so the returned Spec shares no AST nodes
// with any statement cache.
func Split(sqlText string, opts Options) *Spec {
	stmts, err := sql.ParseAll(sqlText)
	if err != nil || len(stmts) != 1 {
		return nil
	}
	sel, ok := stmts[0].(*sql.SelectStmt)
	if !ok {
		return nil
	}
	return splitSelect(sel, opts)
}

func splitSelect(sel *sql.SelectStmt, opts Options) *Spec {
	if sel.ForUpdate || sel.From == nil || sel.From.Sub != nil || len(sel.Joins) > 0 {
		return nil
	}
	if unsafeToSplit(sel) {
		return nil
	}
	for _, it := range sel.Items {
		if !it.Star && it.Expr == nil {
			return nil
		}
	}
	if !gatewayConst(sel.Limit) || !gatewayConst(sel.Offset) {
		return nil
	}

	aggregated := len(sel.GroupBy) > 0 || exec.HasAggregate(sel.Having)
	for _, it := range sel.Items {
		if !it.Star && exec.HasAggregate(it.Expr) {
			aggregated = true
		}
	}
	if aggregated {
		return splitAggregate(sel, opts)
	}
	return splitOrdered(sel)
}

// splitOrdered handles non-aggregated SELECTs. The fragment is the
// statement itself (each shard sorts and, when safe, pre-truncates its
// own rows), possibly with hidden trailing sort-key columns so the
// gateway can run the k-way merge; the gateway re-applies DISTINCT,
// OFFSET, and LIMIT exactly.
func splitOrdered(sel *sql.SelectStmt) *Spec {
	if len(sel.OrderBy) == 0 && sel.Limit == nil && sel.Offset == nil && !sel.Distinct {
		return nil // plain fan-out concatenation is already correct
	}

	// Map ORDER BY keys onto output ordinals where the engine's alias
	// rules guarantee the item carries the key's value: an explicit
	// alias match (last declaration wins, like the engine's alias
	// map), else a textual expression match. Star items shift the
	// fragment's ordinals unpredictably, so any star disables ordinal
	// mapping entirely.
	aliasOrd := map[string]int{}
	exprOrd := map[string]int{}
	hasStar := false
	for i, it := range sel.Items {
		if it.Star {
			hasStar = true
			continue
		}
		if it.Alias != "" {
			aliasOrd[it.Alias] = i
		}
		if txt, err := sql.FormatExpr(it.Expr); err == nil {
			if _, dup := exprOrd[txt]; !dup {
				exprOrd[txt] = i
			}
		}
	}

	sp := &Spec{
		Table:    sel.From.Name,
		Mode:     ModeOrdered,
		distinct: sel.Distinct,
		limit:    sel.Limit,
		offset:   sel.Offset,
	}
	frag := *sel // shallow copy; only Items/Limit/Offset/Distinct change
	var hiddenItems []sql.SelectItem
	for _, ob := range sel.OrderBy {
		if exec.HasAggregate(ob.Expr) {
			return nil // ORDER BY count(*) without aggregation: let the engine reject it
		}
		sp.desc = append(sp.desc, ob.Desc)
		ord := -1
		if !hasStar {
			if cr, ok := ob.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
				if i, ok := aliasOrd[cr.Column]; ok {
					ord = i
				}
			}
			if ord < 0 {
				if txt, err := sql.FormatExpr(ob.Expr); err == nil {
					if i, ok := exprOrd[txt]; ok {
						ord = i
					}
				}
			}
		}
		if ord >= 0 {
			sp.keyItems = append(sp.keyItems, ord)
			continue
		}
		if _, err := sql.FormatExpr(ob.Expr); err != nil {
			return nil
		}
		h := len(hiddenItems)
		hiddenItems = append(hiddenItems, sql.SelectItem{
			Expr:  ob.Expr,
			Alias: fmt.Sprintf("__ifdb_s%d", h),
		})
		sp.keyItems = append(sp.keyItems, -1-h)
	}
	sp.hidden = len(hiddenItems)
	if sp.hidden > 0 {
		frag.Items = append(append([]sql.SelectItem{}, sel.Items...), hiddenItems...)
		// With extra columns in the projection, a per-shard DISTINCT
		// would de-duplicate on the wrong tuple; the gateway dedupes
		// on the visible columns instead.
		frag.Distinct = false
	}

	// A shard only needs its own top limit+offset rows: every row of
	// the global top-K lies in some shard's local top-K. Requires
	// literal bounds (known at split time) and no DISTINCT (a local
	// pre-dedup cut could drop rows the global dedup needed).
	frag.Limit, frag.Offset = nil, nil
	if !frag.Distinct && sel.Limit != nil {
		if l, ok := intLiteral(sel.Limit); ok {
			o := int64(0)
			oOK := sel.Offset == nil
			if !oOK {
				o, oOK = intLiteral(sel.Offset)
			}
			if oOK && l >= 0 && o >= 0 {
				frag.Limit = &sql.Literal{Value: intValue(l + o)}
				sp.pushedLimit = true
			}
		}
	}

	text, err := sql.FormatSelect(&frag)
	if err != nil {
		return nil
	}
	sp.Fragment = text
	return sp
}

// splitAggregate handles aggregated SELECTs. The output items, HAVING,
// and ORDER BY must decompose into aggregate calls, GROUP BY
// expressions, and gateway-computable scalar glue; otherwise (rep-row
// column references, engine-resident functions such as declassify,
// stars) the statement is not split.
func splitAggregate(sel *sql.SelectStmt, opts Options) *Spec {
	for _, it := range sel.Items {
		if it.Star {
			return nil // star under GROUP BY needs the engine's rep-row expansion
		}
	}

	// The engine substitutes output aliases into ORDER BY before
	// collecting aggregates; mirror that (last alias wins).
	aliasMap := map[string]sql.Expr{}
	for _, it := range sel.Items {
		if it.Alias != "" {
			aliasMap[it.Alias] = it.Expr
		}
	}
	orderExprs := make([]sql.Expr, len(sel.OrderBy))
	orderDesc := make([]bool, len(sel.OrderBy))
	for i, ob := range sel.OrderBy {
		e := ob.Expr
		if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
			if repl, ok := aliasMap[cr.Column]; ok {
				e = repl
			}
		}
		orderExprs[i] = e
		orderDesc[i] = ob.Desc
	}

	// Aggregate calls, by pointer identity, in engine collection order.
	var aggs []*sql.FuncCall
	seen := make(map[*sql.FuncCall]bool)
	for _, it := range sel.Items {
		exec.CollectAggs(it.Expr, &aggs, seen)
	}
	exec.CollectAggs(sel.Having, &aggs, seen)
	for _, oe := range orderExprs {
		exec.CollectAggs(oe, &aggs, seen)
	}

	mode := ModePartialAgg
	if opts.NoPartial {
		mode = ModeGatherAgg
	}
	specAggs := make([]aggSpec, len(aggs))
	for i, fc := range aggs {
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil // engine rejects; keep its error text intact
			}
			if _, err := sql.FormatExpr(fc.Args[0]); err != nil {
				return nil
			}
		}
		if fc.Distinct {
			// DISTINCT partials cannot compose across shards: a value
			// may appear on several shards. Ship the argument values
			// and run the real accumulator at the gateway.
			mode = ModeGatherAgg
		}
		specAggs[i] = aggSpec{call: fc, fn: fc.Name, star: fc.Star, distinct: fc.Distinct}
	}

	// Group expressions by rendered text, for glue substitution.
	groupTxt := map[string]int{}
	for k, ge := range sel.GroupBy {
		txt, err := sql.FormatExpr(ge)
		if err != nil {
			return nil
		}
		if _, dup := groupTxt[txt]; !dup {
			groupTxt[txt] = k
		}
	}

	ok := true
	items := make([]sql.Expr, len(sel.Items))
	for i, it := range sel.Items {
		items[i] = rewriteGlue(it.Expr, groupTxt, &ok)
	}
	having := rewriteGlue(sel.Having, groupTxt, &ok)
	orderGlue := make([]sql.Expr, len(orderExprs))
	for i, oe := range orderExprs {
		orderGlue[i] = rewriteGlue(oe, groupTxt, &ok)
	}
	if !ok {
		return nil
	}

	// Fragment projection: group columns first, then the aggregate
	// block. Partial mode pushes the aggregation (with AVG decomposed
	// into SUM + COUNT); gather mode ships the raw argument values and
	// leaves all folding to the gateway.
	var fragItems []sql.SelectItem
	for k, ge := range sel.GroupBy {
		fragItems = append(fragItems, sql.SelectItem{Expr: ge, Alias: fmt.Sprintf("__ifdb_g%d", k)})
	}
	for i := range specAggs {
		a := &specAggs[i]
		switch {
		case mode == ModePartialAgg && a.fn == "avg":
			fragItems = append(fragItems,
				sql.SelectItem{Expr: &sql.FuncCall{Name: "sum", Args: a.call.Args}, Alias: fmt.Sprintf("__ifdb_a%ds", i)},
				sql.SelectItem{Expr: &sql.FuncCall{Name: "count", Args: a.call.Args}, Alias: fmt.Sprintf("__ifdb_a%dc", i)})
			a.width = 2
		case mode == ModePartialAgg && a.fn == "count":
			fragItems = append(fragItems, sql.SelectItem{
				Expr:  &sql.FuncCall{Name: "count", Star: a.star, Args: a.call.Args},
				Alias: fmt.Sprintf("__ifdb_a%d", i)})
			a.width = 1
		case mode == ModePartialAgg:
			fragItems = append(fragItems, sql.SelectItem{
				Expr:  &sql.FuncCall{Name: a.fn, Args: a.call.Args},
				Alias: fmt.Sprintf("__ifdb_a%d", i)})
			a.width = 1
		case a.star:
			a.width = 0 // gathered COUNT(*) just counts shipped rows
		default:
			fragItems = append(fragItems, sql.SelectItem{Expr: a.call.Args[0], Alias: fmt.Sprintf("__ifdb_a%d", i)})
			a.width = 1
		}
	}
	if len(fragItems) == 0 {
		// Pure COUNT(*) gather: ship one constant column per matching
		// row; each row still carries its shard-reported label.
		fragItems = append(fragItems, sql.SelectItem{Expr: &sql.Literal{Value: intValue(1)}, Alias: "__ifdb_one"})
	}

	frag := &sql.SelectStmt{Items: fragItems, From: sel.From, Where: sel.Where}
	if mode == ModePartialAgg {
		frag.GroupBy = sel.GroupBy
	}
	text, err := sql.FormatSelect(frag)
	if err != nil {
		return nil
	}

	// Output column names follow the engine's rules: explicit alias,
	// else the bare column name, else positional.
	names := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Column
			}
		}
		if name == "" {
			name = fmt.Sprintf("column%d", i+1)
		}
		names[i] = name
	}

	return &Spec{
		Table:     sel.From.Name,
		Fragment:  text,
		Mode:      mode,
		distinct:  sel.Distinct,
		groupN:    len(sel.GroupBy),
		aggs:      specAggs,
		items:     items,
		names:     names,
		having:    having,
		orderGlue: orderGlue,
		orderDesc: orderDesc,
		limit:     sel.Limit,
		offset:    sel.Offset,
	}
}

// rewriteGlue rebuilds a glue expression for gateway evaluation:
// aggregate calls stay in place (by identity), subtrees that render
// identically to a GROUP BY expression become __ifdb_g<k> column
// references, and everything else must be a literal, parameter, the
// _label system column, an operator, or a gateway-computable builtin.
// Any other leaf — in particular a bare column (rep-row semantics) or
// an engine-resident function such as declassify — clears *ok.
func rewriteGlue(e sql.Expr, groupTxt map[string]int, ok *bool) sql.Expr {
	if e == nil {
		return nil
	}
	if fc, isCall := e.(*sql.FuncCall); isCall && exec.IsAggregateName(fc.Name) {
		return e // finalized value substituted at merge time
	}
	if txt, err := sql.FormatExpr(e); err == nil {
		if k, isGroup := groupTxt[txt]; isGroup {
			return &sql.ColumnRef{Column: fmt.Sprintf("__ifdb_g%d", k)}
		}
	}
	switch x := e.(type) {
	case *sql.Literal, *sql.Param:
		return e
	case *sql.ColumnRef:
		if x.Table == "" && x.Column == "_label" {
			return e // evaluates against the merged group label
		}
		*ok = false
		return e
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: rewriteGlue(x.Left, groupTxt, ok), Right: rewriteGlue(x.Right, groupTxt, ok)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: rewriteGlue(x.Expr, groupTxt, ok)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: rewriteGlue(x.Expr, groupTxt, ok), Not: x.Not}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{Expr: rewriteGlue(x.Expr, groupTxt, ok), Lo: rewriteGlue(x.Lo, groupTxt, ok), Hi: rewriteGlue(x.Hi, groupTxt, ok), Not: x.Not}
	case *sql.InExpr:
		if x.Sub != nil {
			*ok = false
			return e
		}
		list := make([]sql.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = rewriteGlue(it, groupTxt, ok)
		}
		return &sql.InExpr{Expr: rewriteGlue(x.Expr, groupTxt, ok), List: list, Not: x.Not}
	case *sql.FuncCall:
		if !gatewayFns[x.Name] {
			*ok = false
			return e
		}
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteGlue(a, groupTxt, ok)
		}
		return &sql.FuncCall{Name: x.Name, Args: args}
	default:
		*ok = false
		return e
	}
}

// gatewayConst reports whether a LIMIT/OFFSET expression is
// evaluable at the gateway: parameters, literals, and pure operators
// over them. nil is fine (clause absent).
func gatewayConst(e sql.Expr) bool {
	if e == nil {
		return true
	}
	if exec.HasAggregate(e) {
		return false
	}
	ok := true
	constGlue(e, &ok)
	return ok
}

func constGlue(e sql.Expr, ok *bool) {
	switch x := e.(type) {
	case *sql.Literal, *sql.Param:
	case *sql.BinaryExpr:
		constGlue(x.Left, ok)
		constGlue(x.Right, ok)
	case *sql.UnaryExpr:
		constGlue(x.Expr, ok)
	default:
		*ok = false
	}
}

// unsafeToSplit walks every expression in the statement looking for
// constructs a split must not push into a fragment or reproduce at the
// gateway: subqueries, and any function that is neither an aggregate
// nor a gateway builtin — in particular declassify (whose authority
// checks and label stripping must run exactly once, in the session's
// engine) and now() (which would evaluate at a different instant on
// every shard).
func unsafeToSplit(sel *sql.SelectStmt) bool {
	found := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sql.UnaryExpr:
			walk(x.Expr)
		case *sql.IsNullExpr:
			walk(x.Expr)
		case *sql.BetweenExpr:
			walk(x.Expr)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.InExpr:
			if x.Sub != nil {
				found = true
			}
			walk(x.Expr)
			for _, it := range x.List {
				walk(it)
			}
		case *sql.FuncCall:
			if !exec.IsAggregateName(x.Name) && !gatewayFns[x.Name] {
				found = true
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *sql.ExistsExpr, *sql.SubqueryExpr:
			found = true
		}
	}
	for _, it := range sel.Items {
		walk(it.Expr)
	}
	walk(sel.Where)
	for _, ge := range sel.GroupBy {
		walk(ge)
	}
	walk(sel.Having)
	for _, ob := range sel.OrderBy {
		walk(ob.Expr)
	}
	walk(sel.Limit)
	walk(sel.Offset)
	return found
}

func intLiteral(e sql.Expr) (int64, bool) {
	if lit, ok := e.(*sql.Literal); ok && lit.Value.Kind() == types.KindInt {
		return lit.Value.Int(), true
	}
	return 0, false
}

func intValue(n int64) types.Value { return types.NewInt(n) }
