package distplan

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// fakeStream is an in-memory shard stream.
type fakeStream struct {
	cols   []string
	rows   []feedRow
	pos    int
	err    error // reported after the rows drain
	closed atomic.Bool
}

func (f *fakeStream) Columns() []string { return f.cols }
func (f *fakeStream) Next() bool {
	if f.pos >= len(f.rows) {
		return false
	}
	f.pos++
	return true
}
func (f *fakeStream) Row() []types.Value    { return f.rows[f.pos-1].vals }
func (f *fakeStream) RowLabel() label.Label { return f.rows[f.pos-1].lbl }
func (f *fakeStream) Err() error {
	if f.pos >= len(f.rows) {
		return f.err
	}
	return nil
}
func (f *fakeStream) Close() error { f.closed.Store(true); return nil }

func vi(n int64) types.Value        { return types.NewInt(n) }
func vt(s string) types.Value       { return types.NewText(s) }
func row(vs ...types.Value) feedRow { return feedRow{vals: vs} }

func cfgFor(shards [][]feedRow, cols []string) (Config, []*fakeStream) {
	streams := make([]*fakeStream, len(shards))
	cfg := Config{
		Shards: len(shards),
		Open: func(i int) (Stream, error) {
			streams[i] = &fakeStream{cols: cols, rows: shards[i]}
			return streams[i], nil
		},
	}
	return cfg, streams
}

func drain(t *testing.T, s Stream) []feedRow {
	t.Helper()
	var out []feedRow
	for s.Next() {
		vals := append([]types.Value{}, s.Row()...)
		out = append(out, feedRow{vals: vals, lbl: s.RowLabel()})
	}
	if err := s.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

func render(rows []feedRow) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r.vals {
			if j > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%v", v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Split decisions

func TestSplitRefusals(t *testing.T) {
	cases := []string{
		"INSERT INTO t (a) VALUES (1)",
		"SELECT a FROM t JOIN u ON t.a = u.a",
		"SELECT a FROM (SELECT a FROM t) AS d",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u)",
		"SELECT a FROM t FOR UPDATE",
		"SELECT a FROM t",                                                        // nothing to merge
		"SELECT *, count(*) FROM t GROUP BY a",                                   // star needs rep-row expansion
		"SELECT a, count(*) FROM t GROUP BY g",                                   // rep-row column reference
		"SELECT now(), count(*) FROM t",                                          // engine-resident function in glue
		"SELECT declassify(a, 't'), count(*) FROM t GROUP BY declassify(a, 't')", // never split declassify
		"SELECT count(*) FROM t LIMIT count(*)",
		"SELECT a FROM t ORDER BY count(*)",
	}
	for _, src := range cases {
		if sp := Split(src, Options{}); sp != nil {
			t.Errorf("Split(%q) = %+v, want nil", src, sp)
		}
	}
}

func TestSplitModes(t *testing.T) {
	cases := []struct {
		src  string
		mode Mode
	}{
		{"SELECT a FROM t ORDER BY a", ModeOrdered},
		{"SELECT a FROM t LIMIT 5", ModeOrdered},
		{"SELECT DISTINCT a FROM t", ModeOrdered},
		{"SELECT count(*) FROM t", ModePartialAgg},
		{"SELECT g, count(*), sum(v), avg(v), min(v), max(v) FROM t GROUP BY g", ModePartialAgg},
		{"SELECT g, count(DISTINCT v) FROM t GROUP BY g", ModeGatherAgg},
		{"SELECT count(*) + sum(v) FROM t HAVING count(*) > 0", ModePartialAgg},
		{"SELECT g, _label, count(*) FROM t GROUP BY g, _label", ModePartialAgg},
	}
	for _, tc := range cases {
		sp := Split(tc.src, Options{})
		if sp == nil {
			t.Errorf("Split(%q) = nil", tc.src)
			continue
		}
		if sp.Mode != tc.mode {
			t.Errorf("Split(%q).Mode = %v, want %v", tc.src, sp.Mode, tc.mode)
		}
	}
	if sp := Split("SELECT count(*) FROM t", Options{NoPartial: true}); sp == nil || sp.Mode != ModeGatherAgg {
		t.Errorf("NoPartial: got %+v, want gather", sp)
	}
}

func TestSplitFragments(t *testing.T) {
	sp := Split("SELECT g, count(*), avg(v) FROM events WHERE v > 2 GROUP BY g", Options{})
	if sp == nil {
		t.Fatal("no split")
	}
	want := `SELECT "g" AS "__ifdb_g0", count(*) AS "__ifdb_a0", sum("v") AS "__ifdb_a1s", count("v") AS "__ifdb_a1c" FROM "events" WHERE ("v" > 2) GROUP BY "g"`
	if sp.Fragment != want {
		t.Errorf("fragment:\n got %s\nwant %s", sp.Fragment, want)
	}
	if sp.Table != "events" {
		t.Errorf("table = %q", sp.Table)
	}

	// Ordered with pushed LIMIT: per-shard bound is limit+offset.
	sp = Split("SELECT a FROM t ORDER BY b DESC LIMIT 3 OFFSET 2", Options{})
	if sp == nil || !sp.pushedLimit {
		t.Fatalf("ordered split: %+v", sp)
	}
	if want := `SELECT "a", "b" AS "__ifdb_s0" FROM "t" ORDER BY "b" DESC LIMIT 5`; sp.Fragment != want {
		t.Errorf("fragment:\n got %s\nwant %s", sp.Fragment, want)
	}

	// Gather mode ships group keys and raw argument values, ungrouped.
	sp = Split("SELECT g, count(DISTINCT v) FROM t GROUP BY g", Options{})
	if sp == nil {
		t.Fatal("no split")
	}
	if want := `SELECT "g" AS "__ifdb_g0", "v" AS "__ifdb_a0" FROM "t"`; sp.Fragment != want {
		t.Errorf("fragment:\n got %s\nwant %s", sp.Fragment, want)
	}

	// Pure COUNT(*) gather ships a constant column per row.
	sp = Split("SELECT count(*) FROM t WHERE a = 1", Options{NoPartial: true})
	if sp == nil {
		t.Fatal("no split")
	}
	if want := `SELECT 1 AS "__ifdb_one" FROM "t" WHERE ("a" = 1)`; sp.Fragment != want {
		t.Errorf("fragment:\n got %s\nwant %s", sp.Fragment, want)
	}
}

// ---------------------------------------------------------------------------
// Union gather

func TestUnionShardOrderAndWindow(t *testing.T) {
	shards := [][]feedRow{
		{row(vi(1)), row(vi(2))},
		{row(vi(3))},
		{row(vi(4)), row(vi(5))},
	}
	var mu atomic.Int32
	cfg, _ := cfgFor(shards, []string{"a"})
	inner := cfg.Open
	cfg.Open = func(i int) (Stream, error) { mu.Add(1); return inner(i) }
	cfg.Window = 2
	closed := atomic.Int32{}
	cfg.OnClose = func() { closed.Add(1) }

	u := Union(cfg)
	if got := strings.Join(u.Columns(), ","); got != "a" {
		t.Fatalf("cols = %s", got)
	}
	rows := drain(t, u)
	if render(rows) != "1\n2\n3\n4\n5\n" {
		t.Fatalf("rows:\n%s", render(rows))
	}
	u.Close()
	if closed.Load() != 1 {
		t.Fatalf("OnClose ran %d times", closed.Load())
	}
	if mu.Load() != 3 {
		t.Fatalf("opened %d shards", mu.Load())
	}
}

func TestUnionShardError(t *testing.T) {
	cfg := Config{
		Shards: 2,
		Open: func(i int) (Stream, error) {
			if i == 1 {
				return &fakeStream{cols: []string{"a"}, err: errors.New("boom")}, nil
			}
			return &fakeStream{cols: []string{"a"}, rows: []feedRow{row(vi(1))}}, nil
		},
		Wrap: func(shard int, err error) error {
			return fmt.Errorf("shard %d: %w", shard, err)
		},
	}
	u := Union(cfg)
	var n int
	for u.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("rows before error = %d", n)
	}
	if err := u.Err(); err == nil || err.Error() != "shard 1: boom" {
		t.Fatalf("err = %v", err)
	}
}

// TestUnionCloseReleasesBlockedFeeds drives CANCEL propagation: a feed
// blocked on a full channel must exit when the consumer closes.
func TestUnionCloseReleasesBlockedFeeds(t *testing.T) {
	big := make([]feedRow, feedDepth*4)
	for i := range big {
		big[i] = row(vi(int64(i)))
	}
	cfg, streams := cfgFor([][]feedRow{big, big}, []string{"a"})
	u := Union(cfg)
	if !u.Next() {
		t.Fatal("no first row")
	}
	u.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if streams[0] != nil && streams[0].closed.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feed 0 not closed after Close")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Ordered merge

func TestOrderedMerge(t *testing.T) {
	sp := Split("SELECT a, b FROM t ORDER BY b, a DESC LIMIT 4 OFFSET 1", Options{})
	if sp == nil {
		t.Fatal("no split")
	}
	// Both sort keys are output items, so the fragment appends no
	// hidden columns; the merge reads ordinals 1 and 0.
	if sp.hidden != 0 {
		t.Fatalf("hidden = %d", sp.hidden)
	}
	h := func(a, b int64) feedRow { return row(vi(a), vi(b)) }
	shards := [][]feedRow{
		{h(1, 1), h(9, 3)},
		{h(5, 2), h(7, 3)},
	}
	cfg, _ := cfgFor(shards, []string{"a", "b"})
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(st.Columns(), ","); got != "a,b" {
		t.Fatalf("cols = %s", got)
	}
	// Global order: (1,1) (5,2) (9,3) (7,3) — b asc then a desc;
	// OFFSET 1 drops the first.
	rows := drain(t, st)
	if render(rows) != "5|2\n9|3\n7|3\n" {
		t.Fatalf("rows:\n%s", render(rows))
	}
}

func TestOrderedDistinct(t *testing.T) {
	sp := Split("SELECT DISTINCT a FROM t ORDER BY a", Options{})
	if sp == nil {
		t.Fatal("no split")
	}
	shards := [][]feedRow{
		{row(vi(1)), row(vi(2))},
		{row(vi(1)), row(vi(3))},
	}
	cfg, _ := cfgFor(shards, []string{"a"})
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, st)
	if render(rows) != "1\n2\n3\n" {
		t.Fatalf("rows:\n%s", render(rows))
	}
}

// ---------------------------------------------------------------------------
// Aggregate merges

func TestPartialAggMerge(t *testing.T) {
	sp := Split("SELECT g, count(*), sum(v), avg(v), min(v), max(v) FROM t GROUP BY g", Options{})
	if sp == nil || sp.Mode != ModePartialAgg {
		t.Fatalf("split: %+v", sp)
	}
	// Shard partial rows: g, count, sum, avg-sum, avg-count, min, max.
	part := func(g string, c, s, as, ac, mn, mx int64) feedRow {
		return row(vt(g), vi(c), vi(s), vi(as), vi(ac), vi(mn), vi(mx))
	}
	shards := [][]feedRow{
		{part("x", 2, 10, 10, 2, 3, 7), part("y", 1, 5, 5, 1, 5, 5)},
		{part("x", 1, 4, 4, 1, 4, 4)},
	}
	cfg, _ := cfgFor(shards, nil)
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Engine naming: no alias and not a bare column reference means a
	// positional name.
	if got := strings.Join(st.Columns(), ","); got != "g,column2,column3,column4,column5,column6" {
		t.Fatalf("cols = %s", got)
	}
	rows := drain(t, st)
	want := "x|3|14|4.666666666666667|3|7\ny|1|5|5|5|5\n"
	if render(rows) != want {
		t.Fatalf("rows:\n%s\nwant:\n%s", render(rows), want)
	}
}

func TestPartialAggMergeLabels(t *testing.T) {
	sp := Split("SELECT count(*) FROM t", Options{})
	shards := [][]feedRow{
		{{vals: []types.Value{vi(2)}, lbl: label.Label{label.Tag(1)}}},
		{{vals: []types.Value{vi(3)}, lbl: label.Label{label.Tag(2)}}},
	}
	cfg, _ := cfgFor(shards, nil)
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatal("no row")
	}
	if st.Row()[0].Int() != 5 {
		t.Fatalf("count = %v", st.Row()[0])
	}
	lbl := st.RowLabel()
	if len(lbl) != 2 {
		t.Fatalf("label = %v, want union of both shards", lbl)
	}
}

func TestGatherAggMerge(t *testing.T) {
	sp := Split("SELECT g, count(DISTINCT v) FROM t GROUP BY g ORDER BY g", Options{})
	if sp == nil || sp.Mode != ModeGatherAgg {
		t.Fatalf("split: %+v", sp)
	}
	// Ships (g, v) pairs; value 10 appears on both shards and must
	// count once.
	shards := [][]feedRow{
		{row(vt("x"), vi(10)), row(vt("x"), vi(20))},
		{row(vt("x"), vi(10)), row(vt("y"), vi(30))},
	}
	cfg, _ := cfgFor(shards, nil)
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, st)
	if render(rows) != "x|2\ny|1\n" {
		t.Fatalf("rows:\n%s", render(rows))
	}
}

func TestAggHavingOrderLimit(t *testing.T) {
	sp := Split("SELECT g, count(*) AS c FROM t GROUP BY g HAVING count(*) > 1 ORDER BY c DESC, g LIMIT 2", Options{})
	if sp == nil || sp.Mode != ModePartialAgg {
		t.Fatalf("split: %+v", sp)
	}
	// The item's count(*) and HAVING's count(*) are distinct call
	// nodes, so the fragment carries two count columns — exactly like
	// the engine's placeholder allocation.
	part := func(g string, c int64) feedRow { return row(vt(g), vi(c), vi(c)) }
	shards := [][]feedRow{
		{part("a", 2), part("b", 1), part("c", 3)},
		{part("b", 2), part("d", 1)},
	}
	cfg, _ := cfgFor(shards, nil)
	st, err := sp.Gateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, st)
	// a=2 b=3 c=3 d=1; HAVING>1 keeps a,b,c; order c desc then g:
	// b(3), c(3), a(2); LIMIT 2.
	if render(rows) != "b|3\nc|3\n" {
		t.Fatalf("rows:\n%s", render(rows))
	}
}

func TestAggEmptyInputDefaultGroup(t *testing.T) {
	for _, opts := range []Options{{}, {NoPartial: true}} {
		sp := Split("SELECT count(*), sum(v) FROM t", opts)
		if sp == nil {
			t.Fatal("no split")
		}
		var shards [][]feedRow
		if sp.Mode == ModePartialAgg {
			// Each shard still reports its default group.
			shards = [][]feedRow{
				{row(vi(0), types.Null)},
				{row(vi(0), types.Null)},
			}
		} else {
			shards = [][]feedRow{nil, nil} // no rows shipped at all
		}
		cfg, _ := cfgFor(shards, nil)
		st, err := sp.Gateway(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rows := drain(t, st)
		if render(rows) != "0|NULL\n" {
			t.Fatalf("mode %v rows:\n%s", sp.Mode, render(rows))
		}
	}
}

func TestDescribe(t *testing.T) {
	sp := Split("SELECT g, count(*) FROM t GROUP BY g", Options{})
	lines := sp.Describe(4, 2)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"Scatter", "shards=4", "partial-agg", "sum-of-counts", "Fragment"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Describe missing %q:\n%s", want, joined)
		}
	}
}
