package distplan

import (
	"strings"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// Stream is the gateway's view of one rows stream: the shard-side
// fragment streams the Router opens satisfy it (client.Rows does,
// structurally), and the gateway's merged output implements it again.
type Stream interface {
	Columns() []string
	Next() bool
	Row() []types.Value
	RowLabel() label.Label
	Err() error
	Close() error
}

// Config wires a gateway merge to its cluster.
type Config struct {
	// Open opens the fragment stream on one shard. Implementations
	// carry their own retry/self-healing (the Router re-resolves a
	// stale shard map inside Open, mid-merge).
	Open   func(shard int) (Stream, error)
	Shards int
	// Window bounds how many shard streams are in flight at once for
	// consumption-ordered merges (union, aggregate gather). <=0 or
	// more than Shards means all. The ordered k-way merge needs every
	// stream's head and ignores it.
	Window int
	Params []types.Value
	// Wrap decorates a shard error for the client surface (the Router
	// keeps its historical fan-out error envelope). nil keeps errors
	// raw.
	Wrap func(shard int, err error) error
	// OnClose runs exactly once when the merged stream shuts down,
	// whether by exhaustion, error, or Close. The Router cancels the
	// fan-out context here, which propagates CANCEL to every shard
	// stream still open.
	OnClose func()
}

func (cfg *Config) window() int {
	w := cfg.Window
	if w <= 0 || w > cfg.Shards {
		w = cfg.Shards
	}
	return w
}

func (cfg *Config) wrap(shard int, err error) error {
	if err == nil {
		return nil
	}
	if cfg.Wrap != nil {
		return cfg.Wrap(shard, err)
	}
	return err
}

// feedRow is one shard row in flight to the merge.
type feedRow struct {
	vals []types.Value
	lbl  label.Label
}

// feed pumps one shard stream into a bounded channel from its own
// goroutine, so every shard makes progress concurrently while the
// merge consumes in whatever order it needs. cols is valid after ready
// closes; err is valid after ch closes.
type feed struct {
	shard int
	cols  []string
	err   error
	ready chan struct{}
	ch    chan feedRow
}

// feedDepth is the per-shard channel buffer: enough to decouple the
// producer from merge stalls without buffering unbounded rows.
const feedDepth = 64

func startFeed(cfg *Config, shard int, stop <-chan struct{}) *feed {
	f := &feed{shard: shard, ready: make(chan struct{}), ch: make(chan feedRow, feedDepth)}
	go func() {
		defer close(f.ch)
		s, err := cfg.Open(shard)
		if err != nil {
			f.err = cfg.wrap(shard, err)
			close(f.ready)
			return
		}
		f.cols = s.Columns()
		close(f.ready)
		for s.Next() {
			select {
			case f.ch <- feedRow{s.Row(), s.RowLabel()}:
			case <-stop:
				s.Close()
				return
			}
		}
		err = s.Err()
		s.Close()
		if err != nil {
			f.err = cfg.wrap(shard, err)
		}
	}()
	return f
}

// gather consumes shards strictly in shard order — deterministic
// output — while up to window streams fill their feed buffers
// concurrently. It is the engine under the union stream and both
// aggregate merges.
type gather struct {
	cfg     *Config
	stop    chan struct{}
	feeds   []*feed
	cur     int
	started int
	stopped bool
}

func newGather(cfg *Config) *gather {
	g := &gather{cfg: cfg, stop: make(chan struct{}), feeds: make([]*feed, cfg.Shards)}
	w := cfg.window()
	for g.started < w {
		g.feeds[g.started] = startFeed(cfg, g.started, g.stop)
		g.started++
	}
	return g
}

// head blocks until shard 0's stream reports its header (or fails).
func (g *gather) head() ([]string, error) {
	if g.cfg.Shards == 0 {
		return nil, nil
	}
	f := g.feeds[0]
	<-f.ready
	return f.cols, f.err
}

// next returns the next row in shard order. ok=false with err=nil is
// clean exhaustion.
func (g *gather) next() (feedRow, bool, error) {
	for g.cur < len(g.feeds) {
		f := g.feeds[g.cur]
		r, ok := <-f.ch
		if ok {
			return r, true, nil
		}
		if f.err != nil {
			return feedRow{}, false, f.err
		}
		g.cur++
		if g.started < len(g.feeds) {
			g.feeds[g.started] = startFeed(g.cfg, g.started, g.stop)
			g.started++
		}
	}
	return feedRow{}, false, nil
}

// shutdown releases the feeds and fires OnClose exactly once.
func (g *gather) shutdown() {
	if g.stopped {
		return
	}
	g.stopped = true
	close(g.stop)
	if g.cfg.OnClose != nil {
		g.cfg.OnClose()
	}
}

// Union merges the shards' streams by plain concatenation in shard
// order, with a bounded-concurrency prefetch window: the replacement
// for the Router's historical one-shard-at-a-time fan-out drain. The
// column header comes from shard 0. Construction never fails; open
// errors surface from the first Next, like the sequential path did.
func Union(cfg Config) Stream {
	u := &unionStream{g: newGather(&cfg)}
	u.cols, u.err = u.g.head()
	return u
}

type unionStream struct {
	g    *gather
	cols []string
	row  feedRow
	err  error
	done bool
}

func (u *unionStream) Columns() []string     { return u.cols }
func (u *unionStream) Row() []types.Value    { return u.row.vals }
func (u *unionStream) RowLabel() label.Label { return u.row.lbl }
func (u *unionStream) Err() error            { return u.err }

func (u *unionStream) Next() bool {
	if u.done || u.err != nil {
		return false
	}
	r, ok, err := u.g.next()
	if err != nil {
		u.err = err
		u.done = true
		u.g.shutdown()
		return false
	}
	if !ok {
		u.done = true
		u.g.shutdown()
		return false
	}
	u.row = r
	return true
}

func (u *unionStream) Close() error {
	u.done = true
	u.g.shutdown()
	return nil
}

// rowKey is the engine's canonical grouping/dedup key over a value
// tuple (kind byte, string form, NUL), byte-compatible with the
// executors' group and DISTINCT maps.
func rowKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}
