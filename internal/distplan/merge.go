package distplan

import (
	"fmt"
	"sort"
	"strings"

	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// Gateway builds the merged output stream for a split statement.
//
// Ordered merges stream: rows flow as shards produce them, and an
// error surfaces from Next like any rows stream. Aggregate merges are
// blocking by nature — exactly like the engine's aggregation — so they
// run to completion here and an error (shard failure, glue
// evaluation) is returned directly, which the Router surfaces from
// Query the same way a single node surfaces an aggregation error.
func (sp *Spec) Gateway(cfg Config) (Stream, error) {
	switch sp.Mode {
	case ModeOrdered:
		return sp.orderedGateway(&cfg)
	case ModePartialAgg, ModeGatherAgg:
		return sp.aggGateway(&cfg)
	}
	return nil, fmt.Errorf("distplan: unknown mode %d", sp.Mode)
}

// evalBound mirrors the engine's LIMIT/OFFSET evaluation, including
// its error text.
func evalBound(e sql.Expr, params []types.Value) (int64, bool, error) {
	if e == nil {
		return 0, false, nil
	}
	v, err := exec.Eval(e, &exec.Env{Params: params})
	if err != nil {
		return 0, false, err
	}
	if v.Kind() != types.KindInt || v.Int() < 0 {
		return 0, false, fmt.Errorf("engine: LIMIT/OFFSET must be a non-negative integer")
	}
	return v.Int(), true, nil
}

// ---------------------------------------------------------------------------
// Ordered k-way merge

type shardHead struct {
	row   feedRow
	keys  []types.Value
	alive bool
}

type orderedStream struct {
	sp      *Spec
	g       *gather
	cols    []string
	visible int
	keyOrds []int
	heads   []shardHead
	primed  bool

	seen       map[string]bool // DISTINCT on visible columns
	skip, take int64
	hasTake    bool
	row        feedRow
	err        error
	done       bool
}

func (sp *Spec) orderedGateway(cfg *Config) (Stream, error) {
	// Every shard's head row is needed before the first output row, so
	// the window is the full shard count here.
	full := *cfg
	full.Window = cfg.Shards
	st := &orderedStream{sp: sp, g: newGather(&full)}
	var err error
	if st.skip, _, err = evalBound(sp.offset, cfg.Params); err != nil {
		st.g.shutdown()
		return nil, err
	}
	if st.take, st.hasTake, err = evalBound(sp.limit, cfg.Params); err != nil {
		st.g.shutdown()
		return nil, err
	}
	if sp.distinct {
		st.seen = map[string]bool{}
	}
	cols, err := st.g.head()
	if err != nil {
		// Shard 0 failed to open; report like the sequential fan-out
		// did, from the stream, after Query returned it.
		st.err = err
		st.done = true
		st.g.shutdown()
		return st, nil
	}
	st.visible = len(cols) - sp.hidden
	if st.visible < 0 {
		st.visible = 0
	}
	st.cols = cols[:st.visible]
	st.keyOrds = make([]int, len(sp.keyItems))
	for i, ki := range sp.keyItems {
		if ki >= 0 {
			st.keyOrds[i] = ki
		} else {
			st.keyOrds[i] = st.visible + (-1 - ki)
		}
	}
	return st, nil
}

func (st *orderedStream) Columns() []string     { return st.cols }
func (st *orderedStream) Row() []types.Value    { return st.row.vals }
func (st *orderedStream) RowLabel() label.Label { return st.row.lbl }
func (st *orderedStream) Err() error            { return st.err }

func (st *orderedStream) Close() error {
	st.done = true
	st.g.shutdown()
	return nil
}

// advance pulls the next row from one shard's feed into its head slot.
func (st *orderedStream) advance(shard int) error {
	f := st.g.feeds[shard]
	r, ok := <-f.ch
	if !ok {
		st.heads[shard].alive = false
		return f.err
	}
	h := &st.heads[shard]
	h.row, h.alive = r, true
	if len(h.keys) != len(st.keyOrds) {
		h.keys = make([]types.Value, len(st.keyOrds))
	}
	for i, ord := range st.keyOrds {
		if ord < len(r.vals) {
			h.keys[i] = r.vals[ord]
		} else {
			h.keys[i] = types.Null
		}
	}
	return nil
}

// less orders two heads by the sort keys (types.Value.Compare, like
// the engine's sort); the caller's shard-order scan breaks ties toward
// the lower shard, which also preserves each shard's own stable order.
func (st *orderedStream) less(a, b *shardHead) bool {
	for k := range st.keyOrds {
		c := a.keys[k].Compare(b.keys[k])
		if c != 0 {
			if st.sp.desc[k] {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

func (st *orderedStream) Next() bool {
	if st.done || st.err != nil {
		return false
	}
	if !st.primed {
		st.primed = true
		st.heads = make([]shardHead, st.g.cfg.Shards)
		for s := range st.heads {
			if err := st.advance(s); err != nil {
				st.fail(err)
				return false
			}
		}
	}
	for {
		if st.hasTake && st.take == 0 {
			st.finish()
			return false
		}
		min := -1
		for s := range st.heads {
			if !st.heads[s].alive {
				continue
			}
			if min < 0 || st.less(&st.heads[s], &st.heads[min]) {
				min = s
			}
		}
		if min < 0 {
			st.finish()
			return false
		}
		out := st.heads[min].row
		if err := st.advance(min); err != nil {
			st.fail(err)
			return false
		}
		out.vals = out.vals[:st.visible]
		if st.seen != nil {
			k := rowKey(out.vals)
			if st.seen[k] {
				continue
			}
			st.seen[k] = true
		}
		if st.skip > 0 {
			st.skip--
			continue
		}
		if st.hasTake {
			st.take--
		}
		st.row = out
		return true
	}
}

func (st *orderedStream) fail(err error) {
	st.err = err
	st.done = true
	st.g.shutdown()
}

func (st *orderedStream) finish() {
	st.done = true
	st.g.shutdown()
}

// ---------------------------------------------------------------------------
// Aggregate merge (partial finalization and full gather)

// mergeAcc folds one aggregate across shards.
//
// Partial mode composes per-shard results: COUNTs add, SUMs fold
// through a SUM accumulator (preserving the int/float promotion the
// engine applies), MIN/MAX fold through the same comparator, and AVG
// recomposes from its pushed SUM and COUNT columns. Gather mode runs
// the engine's own accumulator over the shipped argument values — the
// only composition that is correct for DISTINCT aggregates.
type mergeAcc struct {
	spec *aggSpec
	cnt  int64          // partial count / avg denominator
	sum  *exec.AggState // partial sum folding (sum, avg numerator)
	mm   *exec.AggState // partial min/max folding
	full *exec.AggState // gather mode: the real accumulator
}

func newMergeAcc(a *aggSpec, gatherMode bool) *mergeAcc {
	m := &mergeAcc{spec: a}
	if gatherMode {
		m.full = exec.NewAggState(a.call)
		return m
	}
	switch a.fn {
	case "sum", "avg":
		m.sum = exec.NewAggState(&sql.FuncCall{Name: "sum"})
	case "min", "max":
		m.mm = exec.NewAggState(&sql.FuncCall{Name: a.fn})
	}
	return m
}

// add folds this aggregate's slice of one shard row (partial mode) or
// one shipped row (gather mode).
func (m *mergeAcc) add(vals []types.Value, at int) error {
	if m.full != nil {
		if m.spec.star {
			return m.full.Add(types.Null)
		}
		return m.full.Add(vals[at])
	}
	switch m.spec.fn {
	case "count":
		m.cnt += vals[at].Int()
	case "sum":
		return m.sum.Add(vals[at])
	case "avg":
		if err := m.sum.Add(vals[at]); err != nil {
			return err
		}
		m.cnt += vals[at+1].Int()
	case "min", "max":
		return m.mm.Add(vals[at])
	}
	return nil
}

func (m *mergeAcc) result() types.Value {
	if m.full != nil {
		return m.full.Result()
	}
	switch m.spec.fn {
	case "count":
		return types.NewInt(m.cnt)
	case "sum":
		return m.sum.Result()
	case "avg":
		if m.cnt == 0 {
			return types.Null
		}
		s := m.sum.Result()
		num := s.Float()
		if s.Kind() == types.KindInt {
			num = float64(s.Int())
		}
		return types.NewFloat(num / float64(m.cnt))
	case "min", "max":
		return m.mm.Result()
	}
	return types.Null
}

type aggGroup struct {
	keyVals []types.Value
	accs    []*mergeAcc
	lbl     label.Label
}

// bufferedStream replays finalized rows.
type bufferedStream struct {
	cols  []string
	rows  []feedRow
	pos   int
	onEnd func()
	ended bool
}

func (b *bufferedStream) Columns() []string     { return b.cols }
func (b *bufferedStream) Err() error            { return nil }
func (b *bufferedStream) Row() []types.Value    { return b.rows[b.pos-1].vals }
func (b *bufferedStream) RowLabel() label.Label { return b.rows[b.pos-1].lbl }

func (b *bufferedStream) Next() bool {
	if b.pos < len(b.rows) {
		b.pos++
		return true
	}
	b.end()
	return false
}

func (b *bufferedStream) Close() error {
	b.pos = len(b.rows)
	b.end()
	return nil
}

func (b *bufferedStream) end() {
	if !b.ended {
		b.ended = true
		if b.onEnd != nil {
			b.onEnd()
		}
	}
}

func (sp *Spec) aggGateway(cfg *Config) (Stream, error) {
	gatherMode := sp.Mode == ModeGatherAgg
	g := newGather(cfg)
	fail := func(err error) (Stream, error) {
		g.shutdown()
		return nil, err
	}

	groups := map[string]*aggGroup{}
	var order []*aggGroup
	for {
		r, ok, err := g.next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		key := rowKey(r.vals[:min(sp.groupN, len(r.vals))])
		grp := groups[key]
		if grp == nil {
			grp = &aggGroup{accs: make([]*mergeAcc, len(sp.aggs))}
			grp.keyVals = append([]types.Value{}, r.vals[:min(sp.groupN, len(r.vals))]...)
			for i := range sp.aggs {
				grp.accs[i] = newMergeAcc(&sp.aggs[i], gatherMode)
			}
			groups[key] = grp
			order = append(order, grp)
		}
		// The shard already applied Label Confinement, so the row's
		// reported label covers everything that fed it there; the
		// global group label is the union across shards, exactly the
		// union the single node would have computed.
		grp.lbl = grp.lbl.Union(r.lbl)
		at := sp.groupN
		for i := range sp.aggs {
			if err := grp.accs[i].add(r.vals, at); err != nil {
				return fail(err)
			}
			at += sp.aggs[i].width
		}
	}
	g.shutdown()

	// With no GROUP BY an empty input still yields one default group
	// (shards ship theirs in partial mode; gather mode synthesizes it
	// here, like the engine does over an empty relation).
	if sp.groupN == 0 && len(order) == 0 {
		grp := &aggGroup{accs: make([]*mergeAcc, len(sp.aggs))}
		for i := range sp.aggs {
			grp.accs[i] = newMergeAcc(&sp.aggs[i], gatherMode)
		}
		order = append(order, grp)
	}

	return sp.finalize(order, cfg)
}

// finalize evaluates HAVING, the output items, and the sort keys for
// each merged group — aggregate calls substituted as placeholder
// parameters allocated after the user's, exactly like the engine —
// then sorts, de-duplicates, and bounds the result.
func (sp *Spec) finalize(order []*aggGroup, cfg *Config) (Stream, error) {
	base := len(cfg.Params)
	mapping := make(map[*sql.FuncCall]int, len(sp.aggs))
	for i := range sp.aggs {
		mapping[sp.aggs[i].call] = base + i + 1
	}
	subItems := make([]sql.Expr, len(sp.items))
	for i, e := range sp.items {
		subItems[i] = exec.ReplaceAggs(e, mapping)
	}
	subHaving := exec.ReplaceAggs(sp.having, mapping)
	subOrder := make([]sql.Expr, len(sp.orderGlue))
	for i, e := range sp.orderGlue {
		subOrder[i] = exec.ReplaceAggs(e, mapping)
	}

	schema := make(exec.Schema, sp.groupN)
	for k := range schema {
		schema[k] = exec.ColMeta{Name: fmt.Sprintf("__ifdb_g%d", k)}
	}

	type outRow struct {
		feedRow
		sort []types.Value
	}
	var out []outRow
	for _, grp := range order {
		params := make([]types.Value, base+len(sp.aggs))
		copy(params, cfg.Params)
		for i, acc := range grp.accs {
			params[base+i] = acc.result()
		}
		row := grp.keyVals
		if row == nil {
			row = make([]types.Value, sp.groupN)
		}
		genv := &exec.Env{Schema: schema, Row: row, RowLabel: grp.lbl, Params: params}
		if subHaving != nil {
			hv, err := exec.Eval(subHaving, genv)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		vals := make([]types.Value, len(subItems))
		for i, ie := range subItems {
			v, err := exec.Eval(ie, genv)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var keys []types.Value
		if len(subOrder) > 0 {
			keys = make([]types.Value, len(subOrder))
			for i, oe := range subOrder {
				v, err := exec.Eval(oe, genv)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		out = append(out, outRow{feedRow{vals, grp.lbl}, keys})
	}

	if len(subOrder) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			a, b := out[i].sort, out[j].sort
			for k := range subOrder {
				c := a[k].Compare(b[k])
				if c != 0 {
					if sp.orderDesc[k] {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	rows := make([]feedRow, 0, len(out))
	var seen map[string]bool
	if sp.distinct {
		seen = map[string]bool{}
	}
	for i := range out {
		if seen != nil {
			k := rowKey(out[i].vals)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		rows = append(rows, out[i].feedRow)
	}

	if skip, _, err := evalBound(sp.offset, cfg.Params); err != nil {
		return nil, err
	} else if skip > 0 {
		if skip > int64(len(rows)) {
			skip = int64(len(rows))
		}
		rows = rows[skip:]
	}
	if take, has, err := evalBound(sp.limit, cfg.Params); err != nil {
		return nil, err
	} else if has && take < int64(len(rows)) {
		rows = rows[:take]
	}
	return &bufferedStream{cols: sp.names, rows: rows}, nil
}

// Describe renders the distributed plan for EXPLAIN and the docs
// walkthrough: the gateway merge recipe, then the fragment every
// shard executes.
func (sp *Spec) Describe(shards, window int) []string {
	if window <= 0 || window > shards || sp.Mode == ModeOrdered {
		window = shards
	}
	lines := []string{fmt.Sprintf("Scatter [shards=%d window=%d mode=%s]", shards, window, sp.Mode)}
	switch sp.Mode {
	case ModeOrdered:
		d := fmt.Sprintf("├─ Gateway: k-way ordered merge [keys=%d]", len(sp.keyItems))
		if sp.distinct {
			d += " distinct"
		}
		if sp.limit != nil {
			d += " limit"
			if sp.pushedLimit {
				d += "(pushed)"
			}
		}
		if sp.offset != nil {
			d += " offset"
		}
		lines = append(lines, d)
	default:
		var aggDesc []string
		for i := range sp.aggs {
			a := &sp.aggs[i]
			switch {
			case sp.Mode == ModeGatherAgg:
				aggDesc = append(aggDesc, a.fn+":full")
			case a.fn == "count":
				aggDesc = append(aggDesc, "count:sum-of-counts")
			case a.fn == "avg":
				aggDesc = append(aggDesc, "avg:sum/count")
			default:
				aggDesc = append(aggDesc, a.fn+":"+a.fn+"-of-partials")
			}
		}
		d := fmt.Sprintf("├─ Gateway: %s finalize [groups=%d aggs=[%s]]",
			sp.Mode, sp.groupN, strings.Join(aggDesc, " "))
		if sp.having != nil {
			d += " having"
		}
		if len(sp.orderGlue) > 0 {
			d += fmt.Sprintf(" order=%d", len(sp.orderGlue))
		}
		if sp.limit != nil {
			d += " limit"
		}
		lines = append(lines, d)
	}
	lines = append(lines, "└─ Fragment (each shard): "+sp.Fragment)
	return lines
}
