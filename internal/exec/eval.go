// Package exec implements expression evaluation and row-pipeline
// helpers for the executor. It is deliberately independent of the
// catalog and the transaction layer: the engine feeds it rows that
// have already passed MVCC and label visibility (paper §7.1 puts those
// filters below the executor, so bugs here cannot leak data the
// process was not entitled to read).
package exec

import (
	"errors"
	"fmt"
	"strings"

	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// ColMeta names one column of a row schema, with the table alias it
// came from ("" for computed columns).
type ColMeta struct {
	Table string
	Name  string
}

// Schema describes the columns of rows flowing through the executor.
type Schema []ColMeta

// Resolve finds the ordinal for a (possibly qualified) column
// reference. It returns an error for unknown or ambiguous names.
func (s Schema) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range s {
		if c.Name != name {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("exec: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("exec: unknown column %s.%s", table, name)
		}
		return 0, fmt.Errorf("exec: unknown column %q", name)
	}
	return found, nil
}

// FuncResolver evaluates scalar function calls (the engine provides
// the IFDB builtins — tag lookups, label predicates, and so on).
type FuncResolver interface {
	CallFunc(name string, args []types.Value) (types.Value, error)
}

// SubqueryRunner evaluates subqueries against the current session.
type SubqueryRunner interface {
	// ScalarSubquery runs sub and returns its single value (NULL if no
	// rows; an error if more than one row or column).
	ScalarSubquery(sub *sql.SelectStmt) (types.Value, error)
	// InSubquery reports whether v appears in sub's single-column result.
	InSubquery(sub *sql.SelectStmt, v types.Value) (bool, error)
	// ExistsSubquery reports whether sub returns any row.
	ExistsSubquery(sub *sql.SelectStmt) (bool, error)
}

// Env is the evaluation environment for one row.
type Env struct {
	Schema    Schema
	Row       []types.Value
	RowLabel  label.Label // exposed as the _label system column
	RowILabel label.Label // exposed as the _ilabel system column
	Params    []types.Value
	Funcs     FuncResolver
	Subq      SubqueryRunner
}

// ErrAggregateInScalar is returned when an aggregate function appears
// where a scalar expression is required.
var ErrAggregateInScalar = errors.New("exec: aggregate function in scalar context")

// aggregateNames is the set of aggregate functions.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregateName reports whether name is an aggregate function.
func IsAggregateName(name string) bool { return aggregateNames[name] }

// HasAggregate reports whether the expression tree contains an
// aggregate call.
func HasAggregate(e sql.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *sql.FuncCall:
		if aggregateNames[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *sql.BinaryExpr:
		return HasAggregate(x.Left) || HasAggregate(x.Right)
	case *sql.UnaryExpr:
		return HasAggregate(x.Expr)
	case *sql.IsNullExpr:
		return HasAggregate(x.Expr)
	case *sql.BetweenExpr:
		return HasAggregate(x.Expr) || HasAggregate(x.Lo) || HasAggregate(x.Hi)
	case *sql.InExpr:
		if HasAggregate(x.Expr) {
			return true
		}
		for _, it := range x.List {
			if HasAggregate(it) {
				return true
			}
		}
	}
	return false
}

// Eval evaluates a scalar expression in env, with SQL NULL semantics.
func Eval(e sql.Expr, env *Env) (types.Value, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Value, nil
	case *sql.Param:
		if x.Index > len(env.Params) {
			return types.Null, fmt.Errorf("exec: parameter $%d not supplied", x.Index)
		}
		return env.Params[x.Index-1], nil
	case *sql.ColumnRef:
		if x.Column == "_label" {
			return types.NewLabel(env.RowLabel), nil
		}
		if x.Column == "_ilabel" {
			return types.NewLabel(env.RowILabel), nil
		}
		i, err := env.Schema.Resolve(x.Table, x.Column)
		if err != nil {
			return types.Null, err
		}
		if i >= len(env.Row) {
			return types.Null, fmt.Errorf("exec: column ordinal %d out of range", i)
		}
		return env.Row[i], nil
	case *sql.UnaryExpr:
		v, err := Eval(x.Expr, env)
		if err != nil {
			return types.Null, err
		}
		switch x.Op {
		case "-":
			switch v.Kind() {
			case types.KindNull:
				return types.Null, nil
			case types.KindInt:
				return types.NewInt(-v.Int()), nil
			case types.KindFloat:
				return types.NewFloat(-v.Float()), nil
			default:
				return types.Null, fmt.Errorf("exec: cannot negate %s", v.Kind())
			}
		case "NOT":
			if v.IsNull() {
				return types.Null, nil
			}
			if v.Kind() != types.KindBool {
				return types.Null, fmt.Errorf("exec: NOT applied to %s", v.Kind())
			}
			return types.NewBool(!v.Bool()), nil
		default:
			return types.Null, fmt.Errorf("exec: unknown unary op %q", x.Op)
		}
	case *sql.BinaryExpr:
		return evalBinary(x, env)
	case *sql.IsNullExpr:
		v, err := Eval(x.Expr, env)
		if err != nil {
			return types.Null, err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return types.NewBool(res), nil
	case *sql.BetweenExpr:
		v, err := Eval(x.Expr, env)
		if err != nil {
			return types.Null, err
		}
		lo, err := Eval(x.Lo, env)
		if err != nil {
			return types.Null, err
		}
		hi, err := Eval(x.Hi, env)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return types.Null, nil
		}
		in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		if x.Not {
			in = !in
		}
		return types.NewBool(in), nil
	case *sql.InExpr:
		v, err := Eval(x.Expr, env)
		if err != nil {
			return types.Null, err
		}
		if x.Sub != nil {
			if env.Subq == nil {
				return types.Null, fmt.Errorf("exec: subquery not supported in this context")
			}
			ok, err := env.Subq.InSubquery(x.Sub, v)
			if err != nil {
				return types.Null, err
			}
			if x.Not {
				ok = !ok
			}
			return types.NewBool(ok), nil
		}
		if v.IsNull() {
			return types.Null, nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := Eval(item, env)
			if err != nil {
				return types.Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if v.Equal(iv) {
				return types.NewBool(!x.Not), nil
			}
		}
		if sawNull {
			return types.Null, nil
		}
		return types.NewBool(x.Not), nil
	case *sql.ExistsExpr:
		if env.Subq == nil {
			return types.Null, fmt.Errorf("exec: subquery not supported in this context")
		}
		ok, err := env.Subq.ExistsSubquery(x.Sub)
		if err != nil {
			return types.Null, err
		}
		if x.Not {
			ok = !ok
		}
		return types.NewBool(ok), nil
	case *sql.SubqueryExpr:
		if env.Subq == nil {
			return types.Null, fmt.Errorf("exec: subquery not supported in this context")
		}
		return env.Subq.ScalarSubquery(x.Sub)
	case *sql.FuncCall:
		if aggregateNames[x.Name] {
			return types.Null, ErrAggregateInScalar
		}
		args := make([]types.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a, env)
			if err != nil {
				return types.Null, err
			}
			args[i] = v
		}
		if v, ok, err := callBuiltin(x.Name, args); ok {
			return v, err
		}
		if env.Funcs != nil {
			return env.Funcs.CallFunc(x.Name, args)
		}
		return types.Null, fmt.Errorf("exec: unknown function %q", x.Name)
	default:
		return types.Null, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

func evalBinary(x *sql.BinaryExpr, env *Env) (types.Value, error) {
	// AND/OR use Kleene logic and short-circuit.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := Eval(x.Left, env)
		if err != nil {
			return types.Null, err
		}
		if x.Op == "AND" {
			if !l.IsNull() && l.Kind() == types.KindBool && !l.Bool() {
				return types.NewBool(false), nil
			}
		} else {
			if !l.IsNull() && l.Kind() == types.KindBool && l.Bool() {
				return types.NewBool(true), nil
			}
		}
		r, err := Eval(x.Right, env)
		if err != nil {
			return types.Null, err
		}
		lb, lnull := boolOrNull(l)
		rb, rnull := boolOrNull(r)
		if x.Op == "AND" {
			switch {
			case !lnull && !lb, !rnull && !rb:
				return types.NewBool(false), nil
			case lnull || rnull:
				return types.Null, nil
			default:
				return types.NewBool(true), nil
			}
		}
		switch {
		case !lnull && lb, !rnull && rb:
			return types.NewBool(true), nil
		case lnull || rnull:
			return types.Null, nil
		default:
			return types.NewBool(false), nil
		}
	}

	l, err := Eval(x.Left, env)
	if err != nil {
		return types.Null, err
	}
	r, err := Eval(x.Right, env)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c := l.Compare(r)
		var res bool
		switch x.Op {
		case "=":
			res = l.Equal(r)
		case "<>":
			res = !l.Equal(r)
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return types.NewBool(res), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	case "||":
		return types.NewText(l.String() + r.String()), nil
	case "LIKE":
		if l.Kind() != types.KindText || r.Kind() != types.KindText {
			return types.Null, fmt.Errorf("exec: LIKE requires text operands")
		}
		return types.NewBool(likeMatch(l.Text(), r.Text())), nil
	default:
		return types.Null, fmt.Errorf("exec: unknown operator %q", x.Op)
	}
}

func boolOrNull(v types.Value) (b, notNull bool) {
	if v.IsNull() {
		return false, true
	}
	if v.Kind() != types.KindBool {
		return false, true
	}
	return v.Bool(), false
}

func evalArith(op string, l, r types.Value) (types.Value, error) {
	li := l.Kind() == types.KindInt
	ri := r.Kind() == types.KindInt
	if li && ri {
		a, b := l.Int(), r.Int()
		switch op {
		case "+":
			return types.NewInt(a + b), nil
		case "-":
			return types.NewInt(a - b), nil
		case "*":
			return types.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return types.Null, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	lf := li || l.Kind() == types.KindFloat
	rf := ri || r.Kind() == types.KindFloat
	if !lf || !rf {
		return types.Null, fmt.Errorf("exec: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	a, b := l.Float(), r.Float()
	switch op {
	case "+":
		return types.NewFloat(a + b), nil
	case "-":
		return types.NewFloat(a - b), nil
	case "*":
		return types.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return types.Null, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(a / b), nil
	case "%":
		return types.Null, fmt.Errorf("exec: %% requires integer operands")
	}
	return types.Null, fmt.Errorf("exec: unknown arithmetic op %q", op)
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' any single
// character. Matching is case-sensitive, like PostgreSQL's LIKE.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matcher with backtracking on '%'.
	si, pi := 0, 0
	star, sback := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sback = si
			pi++
		case star >= 0:
			sback++
			si = sback
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// callBuiltin handles engine-independent scalar builtins. Returns
// ok=false if the name is not one of them.
func callBuiltin(name string, args []types.Value) (types.Value, bool, error) {
	switch name {
	case "lower":
		if len(args) != 1 {
			return types.Null, true, fmt.Errorf("exec: lower takes 1 argument")
		}
		if args[0].IsNull() {
			return types.Null, true, nil
		}
		return types.NewText(strings.ToLower(args[0].Text())), true, nil
	case "upper":
		if len(args) != 1 {
			return types.Null, true, fmt.Errorf("exec: upper takes 1 argument")
		}
		if args[0].IsNull() {
			return types.Null, true, nil
		}
		return types.NewText(strings.ToUpper(args[0].Text())), true, nil
	case "length":
		if len(args) != 1 {
			return types.Null, true, fmt.Errorf("exec: length takes 1 argument")
		}
		if args[0].IsNull() {
			return types.Null, true, nil
		}
		return types.NewInt(int64(len(args[0].Text()))), true, nil
	case "abs":
		if len(args) != 1 {
			return types.Null, true, fmt.Errorf("exec: abs takes 1 argument")
		}
		v := args[0]
		switch v.Kind() {
		case types.KindNull:
			return types.Null, true, nil
		case types.KindInt:
			n := v.Int()
			if n < 0 {
				n = -n
			}
			return types.NewInt(n), true, nil
		case types.KindFloat:
			f := v.Float()
			if f < 0 {
				f = -f
			}
			return types.NewFloat(f), true, nil
		default:
			return types.Null, true, fmt.Errorf("exec: abs on %s", v.Kind())
		}
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, true, nil
			}
		}
		return types.Null, true, nil
	case "label_contains":
		// label_contains(_label, tagid) — explicit label predicates
		// (paper §4.2: queries may refer to the _label column).
		if len(args) != 2 {
			return types.Null, true, fmt.Errorf("exec: label_contains takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null, true, nil
		}
		if args[0].Kind() != types.KindLabel || args[1].Kind() != types.KindInt {
			return types.Null, true, fmt.Errorf("exec: label_contains(label, tag)")
		}
		return types.NewBool(args[0].Label().Has(label.Tag(uint64(args[1].Int())))), true, nil
	case "label_size":
		if len(args) != 1 {
			return types.Null, true, fmt.Errorf("exec: label_size takes 1 argument")
		}
		if args[0].IsNull() {
			return types.Null, true, nil
		}
		if args[0].Kind() != types.KindLabel {
			return types.Null, true, fmt.Errorf("exec: label_size(label)")
		}
		return types.NewInt(int64(args[0].Label().Len())), true, nil
	}
	return types.Null, false, nil
}
