package exec

import (
	"fmt"

	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// Aggregate accumulation, shared by the legacy engine executor, the
// streaming plan executor, and the distributed gateway merge. The
// three consumers must fold values identically — any drift shows up as
// a differential-test failure — so the state machine lives here once.
//
// Error texts keep the "engine:" prefix: they surface to clients as
// engine errors regardless of which executor hit them.

// AggState accumulates one aggregate call over one group.
type AggState struct {
	fn       string
	distinct bool
	star     bool

	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minV    types.Value
	maxV    types.Value
	seen    map[string]bool // for DISTINCT
	any     bool
}

// NewAggState builds the accumulator for one aggregate call.
func NewAggState(fc *sql.FuncCall) *AggState {
	st := &AggState{fn: fc.Name, distinct: fc.Distinct, star: fc.Star}
	if fc.Distinct {
		st.seen = make(map[string]bool)
	}
	return st
}

// Add folds one input value. For COUNT(*) states the value is ignored;
// otherwise NULLs are skipped and DISTINCT de-duplicates.
func (a *AggState) Add(v types.Value) error {
	if a.star {
		a.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates ignore NULLs
	}
	if a.distinct {
		k := string(rune(v.Kind())) + v.String()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.any = true
	a.count++
	switch a.fn {
	case "count":
	case "sum", "avg":
		switch v.Kind() {
		case types.KindInt:
			a.sumI += v.Int()
			a.sumF += float64(v.Int())
		case types.KindFloat:
			a.isFloat = true
			a.sumF += v.Float()
		default:
			return fmt.Errorf("engine: %s over %s", a.fn, v.Kind())
		}
	case "min":
		if a.minV.IsNull() || v.Compare(a.minV) < 0 {
			a.minV = v
		}
	case "max":
		if a.maxV.IsNull() || v.Compare(a.maxV) > 0 {
			a.maxV = v
		}
	default:
		return fmt.Errorf("engine: unknown aggregate %q", a.fn)
	}
	return nil
}

// Result finalizes the accumulator.
func (a *AggState) Result() types.Value {
	switch a.fn {
	case "count":
		return types.NewInt(a.count)
	case "sum":
		if !a.any {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF)
		}
		return types.NewInt(a.sumI)
	case "avg":
		if !a.any {
			return types.Null
		}
		return types.NewFloat(a.sumF / float64(a.count))
	case "min":
		return a.minV
	case "max":
		return a.maxV
	}
	return types.Null
}

// CollectAggs gathers the distinct aggregate call nodes in an
// expression tree (by pointer identity).
func CollectAggs(e sql.Expr, out *[]*sql.FuncCall, seen map[*sql.FuncCall]bool) {
	switch x := e.(type) {
	case nil:
	case *sql.FuncCall:
		if IsAggregateName(x.Name) {
			if !seen[x] {
				seen[x] = true
				*out = append(*out, x)
			}
			return
		}
		for _, a := range x.Args {
			CollectAggs(a, out, seen)
		}
	case *sql.BinaryExpr:
		CollectAggs(x.Left, out, seen)
		CollectAggs(x.Right, out, seen)
	case *sql.UnaryExpr:
		CollectAggs(x.Expr, out, seen)
	case *sql.IsNullExpr:
		CollectAggs(x.Expr, out, seen)
	case *sql.BetweenExpr:
		CollectAggs(x.Expr, out, seen)
		CollectAggs(x.Lo, out, seen)
		CollectAggs(x.Hi, out, seen)
	case *sql.InExpr:
		CollectAggs(x.Expr, out, seen)
		for _, it := range x.List {
			CollectAggs(it, out, seen)
		}
	}
}

// ReplaceAggs rewrites aggregate call nodes to parameter placeholders
// (indexes from mapping), leaving everything else shared.
func ReplaceAggs(e sql.Expr, mapping map[*sql.FuncCall]int) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.FuncCall:
		if idx, ok := mapping[x]; ok {
			return &sql.Param{Index: idx}
		}
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = ReplaceAggs(a, mapping)
		}
		return &sql.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: args}
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: ReplaceAggs(x.Left, mapping), Right: ReplaceAggs(x.Right, mapping)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: ReplaceAggs(x.Expr, mapping)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: ReplaceAggs(x.Expr, mapping), Not: x.Not}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{Expr: ReplaceAggs(x.Expr, mapping), Lo: ReplaceAggs(x.Lo, mapping), Hi: ReplaceAggs(x.Hi, mapping), Not: x.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = ReplaceAggs(it, mapping)
		}
		return &sql.InExpr{Expr: ReplaceAggs(x.Expr, mapping), List: list, Sub: x.Sub, Not: x.Not}
	default:
		return e
	}
}
