package exec

import (
	"strings"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// evalStr parses "SELECT <expr>" and evaluates the single item.
func evalStr(t *testing.T, src string, env *Env) (types.Value, error) {
	t.Helper()
	st, err := sql.Parse("SELECT " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Eval(st.(*sql.SelectStmt).Items[0].Expr, env)
}

func mustEval(t *testing.T, src string, env *Env) types.Value {
	t.Helper()
	v, err := evalStr(t, src, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func emptyEnv() *Env { return &Env{} }

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want types.Value
	}{
		{`1 + 2 * 3`, types.NewInt(7)},
		{`(1 + 2) * 3`, types.NewInt(9)},
		{`7 / 2`, types.NewInt(3)},
		{`7 % 3`, types.NewInt(1)},
		{`7.0 / 2`, types.NewFloat(3.5)},
		{`1 - 2`, types.NewInt(-1)},
		{`-3 + 1`, types.NewInt(-2)},
		{`-2.5`, types.NewFloat(-2.5)},
		{`1 + 2.5`, types.NewFloat(3.5)},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, emptyEnv()); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if _, err := evalStr(t, `1 / 0`, emptyEnv()); err == nil {
		t.Fatal("division by zero")
	}
	if _, err := evalStr(t, `1 % 0`, emptyEnv()); err == nil {
		t.Fatal("mod by zero")
	}
	if _, err := evalStr(t, `'a' + 1`, emptyEnv()); err == nil {
		t.Fatal("text arithmetic")
	}
	if _, err := evalStr(t, `2.5 % 2`, emptyEnv()); err == nil {
		t.Fatal("float mod")
	}
}

func TestComparisons(t *testing.T) {
	truths := []string{
		`1 < 2`, `2 <= 2`, `3 > 2`, `3 >= 3`, `1 = 1`, `1 <> 2`,
		`'a' < 'b'`, `'abc' = 'abc'`, `1 = 1.0`, `1.5 > 1`,
		`2 BETWEEN 1 AND 3`, `0 NOT BETWEEN 1 AND 3`,
		`2 IN (1, 2, 3)`, `5 NOT IN (1, 2, 3)`,
		`NULL IS NULL`, `1 IS NOT NULL`,
	}
	for _, src := range truths {
		if got := mustEval(t, src, emptyEnv()); !got.Truthy() {
			t.Errorf("%s = %v, want true", src, got)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	nulls := []string{
		`NULL = NULL`, `1 = NULL`, `NULL <> 1`, `NULL + 1`,
		`NULL BETWEEN 1 AND 2`, `NULL IN (1, 2)`, `1 IN (2, NULL)`,
		`NOT NULL`, `NULL AND TRUE`, `NULL OR FALSE`,
	}
	for _, src := range nulls {
		if got := mustEval(t, src, emptyEnv()); !got.IsNull() {
			t.Errorf("%s = %v, want NULL", src, got)
		}
	}
	// Kleene shortcuts.
	if got := mustEval(t, `NULL AND FALSE`, emptyEnv()); got.IsNull() || got.Bool() {
		t.Errorf("NULL AND FALSE = %v", got)
	}
	if got := mustEval(t, `NULL OR TRUE`, emptyEnv()); !got.Truthy() {
		t.Errorf("NULL OR TRUE = %v", got)
	}
	// NOT IN with NULL in list and a match → the match wins.
	if got := mustEval(t, `1 IN (1, NULL)`, emptyEnv()); !got.Truthy() {
		t.Errorf("1 IN (1, NULL) = %v", got)
	}
}

func TestShortCircuitPreventsErrors(t *testing.T) {
	// FALSE AND (1/0 = 1) must not evaluate the division.
	if got := mustEval(t, `FALSE AND (1 / 0 = 1)`, emptyEnv()); got.Truthy() {
		t.Fatal("wrong value")
	}
	if got := mustEval(t, `TRUE OR (1 / 0 = 1)`, emptyEnv()); !got.Truthy() {
		t.Fatal("wrong value")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"Hello", "hello", false}, // case-sensitive
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.s, c.p, got)
		}
	}
	if _, err := evalStr(t, `1 LIKE 'x'`, emptyEnv()); err == nil {
		t.Fatal("LIKE on int")
	}
}

func TestColumnResolution(t *testing.T) {
	env := &Env{
		Schema: Schema{{Table: "t", Name: "a"}, {Table: "u", Name: "a"}, {Table: "t", Name: "b"}},
		Row:    []types.Value{types.NewInt(1), types.NewInt(2), types.NewInt(3)},
	}
	if v := mustEval(t, `t.a`, env); v.Int() != 1 {
		t.Fatal("t.a")
	}
	if v := mustEval(t, `u.a`, env); v.Int() != 2 {
		t.Fatal("u.a")
	}
	if v := mustEval(t, `b`, env); v.Int() != 3 {
		t.Fatal("unqualified b")
	}
	if _, err := evalStr(t, `a`, env); err == nil {
		t.Fatal("ambiguous column resolved")
	}
	if _, err := evalStr(t, `t.zzz`, env); err == nil {
		t.Fatal("unknown column resolved")
	}
}

func TestLabelColumnAndBuiltins(t *testing.T) {
	env := &Env{RowLabel: label.New(3, 8)}
	v := mustEval(t, `_label`, env)
	if v.Kind() != types.KindLabel || !v.Label().Equal(label.New(3, 8)) {
		t.Fatalf("_label = %v", v)
	}
	if got := mustEval(t, `label_contains(_label, 3)`, env); !got.Truthy() {
		t.Fatal("label_contains true case")
	}
	if got := mustEval(t, `label_contains(_label, 4)`, env); got.Truthy() {
		t.Fatal("label_contains false case")
	}
	if got := mustEval(t, `label_size(_label)`, env); got.Int() != 2 {
		t.Fatal("label_size")
	}
}

func TestScalarBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want types.Value
	}{
		{`lower('AbC')`, types.NewText("abc")},
		{`upper('AbC')`, types.NewText("ABC")},
		{`length('abcd')`, types.NewInt(4)},
		{`abs(-3)`, types.NewInt(3)},
		{`abs(-2.5)`, types.NewFloat(2.5)},
		{`coalesce(NULL, NULL, 7)`, types.NewInt(7)},
		{`coalesce(NULL, NULL)`, types.Null},
		{`lower(NULL)`, types.Null},
		{`'a' || 'b'`, types.NewText("ab")},
		{`1 || 'b'`, types.NewText("1b")},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, emptyEnv()); !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if _, err := evalStr(t, `frobnicate(1)`, emptyEnv()); err == nil {
		t.Fatal("unknown function resolved")
	}
}

func TestParams(t *testing.T) {
	env := &Env{Params: []types.Value{types.NewInt(5), types.NewText("x")}}
	if v := mustEval(t, `$1 * 2`, env); v.Int() != 10 {
		t.Fatal("$1")
	}
	if v := mustEval(t, `$2`, env); v.Text() != "x" {
		t.Fatal("$2")
	}
	if _, err := evalStr(t, `$3`, env); err == nil {
		t.Fatal("missing param resolved")
	}
}

func TestHasAggregate(t *testing.T) {
	st, err := sql.Parse(`SELECT COUNT(*) + a, b, MIN(c) FROM t HAVING SUM(d) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*sql.SelectStmt)
	if !HasAggregate(sel.Items[0].Expr) || HasAggregate(sel.Items[1].Expr) || !HasAggregate(sel.Items[2].Expr) {
		t.Fatal("HasAggregate items")
	}
	if !HasAggregate(sel.Having) {
		t.Fatal("HasAggregate having")
	}
	if !IsAggregateName("count") || IsAggregateName("lower") {
		t.Fatal("IsAggregateName")
	}
	// Aggregates in scalar context are rejected by Eval.
	if _, err := Eval(sel.Items[0].Expr, emptyEnv()); err == nil || !strings.Contains(err.Error(), "aggregate") {
		t.Fatalf("aggregate in scalar context: %v", err)
	}
}

func TestNotRequiresBool(t *testing.T) {
	if _, err := evalStr(t, `NOT 5`, emptyEnv()); err == nil {
		t.Fatal("NOT int")
	}
	if _, err := evalStr(t, `-'x'`, emptyEnv()); err == nil {
		t.Fatal("negate text")
	}
}

func TestSubqueryWithoutRunner(t *testing.T) {
	for _, src := range []string{
		`(SELECT 1)`, `EXISTS (SELECT 1)`, `1 IN (SELECT 1)`,
	} {
		if _, err := evalStr(t, src, emptyEnv()); err == nil {
			t.Errorf("%s evaluated without a subquery runner", src)
		}
	}
}
