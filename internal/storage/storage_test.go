package storage

import (
	"sync"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

func row(vals ...int64) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestMemHeapInsertGetScan(t *testing.T) {
	h := NewMemHeap()
	t1, err := h.Insert(TupleVersion{Row: row(1), Xmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := h.Insert(TupleVersion{Row: row(2), Xmin: 1, Label: label.New(9)})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	tv, ok := h.Get(t1)
	if !ok || tv.Row[0].Int() != 1 {
		t.Fatal("Get t1")
	}
	tv, ok = h.Get(t2)
	if !ok || !tv.Label.Equal(label.New(9)) {
		t.Fatal("Get t2 label")
	}
	if _, ok := h.Get(TID(99)); ok {
		t.Fatal("Get bogus TID")
	}
	var seen []TID
	h.Scan(func(tid TID, tv *TupleVersion) bool {
		seen = append(seen, tid)
		return true
	})
	if len(seen) != 2 || seen[0] != t1 || seen[1] != t2 {
		t.Fatalf("Scan order: %v", seen)
	}
	// Early stop.
	n := 0
	h.Scan(func(TID, *TupleVersion) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Scan early stop visited %d", n)
	}
}

func TestMemHeapXmaxProtocol(t *testing.T) {
	h := NewMemHeap()
	tid, _ := h.Insert(TupleVersion{Row: row(1), Xmin: 1})
	if !h.SetXmax(tid, 5) {
		t.Fatal("SetXmax failed")
	}
	// A second writer conflicts.
	if h.SetXmax(tid, 6) {
		t.Fatal("conflicting SetXmax succeeded")
	}
	// Same xid is idempotent.
	if !h.SetXmax(tid, 5) {
		t.Fatal("idempotent SetXmax failed")
	}
	// Clearing another xid's stamp is a no-op.
	h.ClearXmax(tid, 6)
	if tv, _ := h.Get(tid); tv.Xmax != 5 {
		t.Fatal("ClearXmax removed foreign stamp")
	}
	h.ClearXmax(tid, 5)
	if tv, _ := h.Get(tid); tv.Xmax != InvalidXID {
		t.Fatal("ClearXmax failed")
	}
	// Now 6 can stamp.
	if !h.SetXmax(tid, 6) {
		t.Fatal("restamp failed")
	}
}

func TestMemHeapVacuum(t *testing.T) {
	h := NewMemHeap()
	t1, _ := h.Insert(TupleVersion{Row: row(1), Xmin: 1})
	t2, _ := h.Insert(TupleVersion{Row: row(2), Xmin: 2})
	h.SetXmax(t1, 3)
	n := h.Vacuum(func(tv *TupleVersion) bool { return tv.Xmax != InvalidXID })
	if n != 1 || h.Len() != 1 {
		t.Fatalf("Vacuum reclaimed %d, len %d", n, h.Len())
	}
	if _, ok := h.Get(t1); ok {
		t.Fatal("vacuumed version still visible")
	}
	// TIDs remain stable after vacuum.
	if tv, ok := h.Get(t2); !ok || tv.Row[0].Int() != 2 {
		t.Fatal("surviving TID broken")
	}
	if h.ApproxBytes() <= 0 {
		t.Fatal("ApproxBytes")
	}
}

func TestMemHeapBytesAccounting(t *testing.T) {
	h := NewMemHeap()
	tid, _ := h.Insert(TupleVersion{Row: row(1, 2, 3), Xmin: 1, Label: label.New(1, 2)})
	before := h.ApproxBytes()
	if before <= 0 {
		t.Fatal("no bytes accounted")
	}
	h.SetXmax(tid, 2)
	h.Vacuum(func(tv *TupleVersion) bool { return true })
	if h.ApproxBytes() != 0 {
		t.Fatalf("bytes after vacuum: %d", h.ApproxBytes())
	}
}

func TestVisibilityPredicate(t *testing.T) {
	vis := Visibility{
		See:     func(xmin, xmax XID) bool { return xmin == 1 && xmax == 0 },
		LabelOK: func(l label.Label) bool { return l.IsEmpty() },
	}
	if !vis.Sees(&TupleVersion{Xmin: 1}) {
		t.Fatal("visible version rejected")
	}
	if vis.Sees(&TupleVersion{Xmin: 2}) {
		t.Fatal("invisible xmin accepted")
	}
	if vis.Sees(&TupleVersion{Xmin: 1, Label: label.New(5)}) {
		t.Fatal("labeled version accepted")
	}
	// Nil predicates are exempt.
	if !(Visibility{}).Sees(&TupleVersion{Xmin: 77, Label: label.New(1)}) {
		t.Fatal("exempt visibility rejected")
	}
}

func TestMemHeapConcurrentInsertScan(t *testing.T) {
	h := NewMemHeap()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := h.Insert(TupleVersion{Row: row(int64(w), int64(i)), Xmin: XID(w + 1)}); err != nil {
					t.Error(err)
					return
				}
				if i%17 == 0 {
					h.Scan(func(TID, *TupleVersion) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != 8*200 {
		t.Fatalf("Len = %d", h.Len())
	}
}
