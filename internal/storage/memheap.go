package storage

import (
	"sync"

	"ifdb/internal/types"
)

// MemHeap is the in-memory Heap backend: a growable slice of versions
// guarded by an RWMutex. Scans take the read lock; mutations take the
// write lock. Deleted (vacuumed) versions leave a tombstone so TIDs
// stay stable.
type MemHeap struct {
	mu       sync.RWMutex
	versions []*TupleVersion // nil entries are vacuumed tombstones
	live     int
	bytes    int64
}

// NewMemHeap returns an empty in-memory heap.
func NewMemHeap() *MemHeap { return &MemHeap{} }

var _ Heap = (*MemHeap)(nil)

func approxVersionBytes(tv *TupleVersion) int64 {
	// Mirror the paged encoding so the space experiment (E7) reports
	// comparable numbers for both backends: 16 bytes of MVCC header,
	// 1 length byte + 4 bytes per tag for each of the two labels, plus
	// the row payload.
	n := int64(16) + 1 + 4*int64(len(tv.Label)) + 1 + 4*int64(len(tv.ILabel))
	for _, v := range tv.Row {
		n += int64(types.EncodedSize(v))
	}
	return n
}

// Insert appends a new version.
func (h *MemHeap) Insert(tv TupleVersion) (TID, error) {
	cp := tv // copy header; row/label slices are owned by caller convention
	h.mu.Lock()
	defer h.mu.Unlock()
	h.versions = append(h.versions, &cp)
	h.live++
	h.bytes += approxVersionBytes(&cp)
	return TID(len(h.versions) - 1), nil
}

// Get fetches the version at tid.
func (h *MemHeap) Get(tid TID) (TupleVersion, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if int(tid) >= len(h.versions) || h.versions[tid] == nil {
		return TupleVersion{}, false
	}
	return *h.versions[tid], true
}

// SetXmax stamps the version as deleted by xid, failing on a
// write-write conflict (someone else's live stamp already present).
func (h *MemHeap) SetXmax(tid TID, xid XID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(tid) >= len(h.versions) || h.versions[tid] == nil {
		return false
	}
	tv := h.versions[tid]
	if tv.Xmax != InvalidXID && tv.Xmax != xid {
		return false
	}
	tv.Xmax = xid
	return true
}

// ClearXmax rolls back a delete stamp made by xid.
func (h *MemHeap) ClearXmax(tid TID, xid XID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(tid) >= len(h.versions) || h.versions[tid] == nil {
		return
	}
	if h.versions[tid].Xmax == xid {
		h.versions[tid].Xmax = InvalidXID
	}
}

// Scan visits all versions in TID order.
//
// The heap holds its read lock across the callback. Callbacks must not
// re-enter heap mutation methods (the executor buffers mutations and
// applies them after the scan, as real executors do).
func (h *MemHeap) Scan(fn func(tid TID, tv *TupleVersion) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i, tv := range h.versions {
		if tv == nil {
			continue
		}
		if !fn(TID(i), tv) {
			return
		}
	}
}

// ScanFrom implements BatchScanner: it visits live versions with
// TID >= start in TID order, stopping after max visits. The read lock
// is released between batches, so a pull-based iterator can hold a
// scan position without pinning the heap; versions inserted between
// batches may or may not be visited, which is sound because a
// statement's MVCC snapshot cannot see them anyway.
func (h *MemHeap) ScanFrom(start TID, max int, fn func(tid TID, tv *TupleVersion) bool) (next TID, more bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := int(start)
	visited := 0
	for ; i < len(h.versions); i++ {
		if visited >= max {
			return TID(i), true
		}
		tv := h.versions[i]
		if tv == nil {
			continue
		}
		visited++
		if !fn(TID(i), tv) {
			return TID(i + 1), true
		}
	}
	return TID(i), false
}

// RestoreAt implements RecoverableHeap: it places tv at exactly tid,
// growing the version slice as needed (gap entries stay nil, i.e.
// tombstoned — they belonged to inserts replay skipped).
func (h *MemHeap) RestoreAt(tid TID, tv TupleVersion) (bool, error) {
	cp := tv
	h.mu.Lock()
	defer h.mu.Unlock()
	for int(tid) >= len(h.versions) {
		h.versions = append(h.versions, nil)
	}
	if h.versions[tid] != nil {
		return false, nil
	}
	h.versions[tid] = &cp
	h.live++
	h.bytes += approxVersionBytes(&cp)
	return true, nil
}

// ForceXmax implements RecoverableHeap.
func (h *MemHeap) ForceXmax(tid TID, xid XID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(tid) < len(h.versions) && h.versions[tid] != nil {
		h.versions[tid].Xmax = xid
	}
}

// Vacuum tombstones versions judged dead.
func (h *MemHeap) Vacuum(dead func(tv *TupleVersion) bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for i, tv := range h.versions {
		if tv == nil {
			continue
		}
		if dead(tv) {
			h.bytes -= approxVersionBytes(tv)
			h.versions[i] = nil
			h.live--
			n++
		}
	}
	return n
}

// Len returns the number of resident versions.
func (h *MemHeap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// ApproxBytes estimates resident tuple bytes.
func (h *MemHeap) ApproxBytes() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}
