// Package storage implements the MVCC tuple heaps underneath the IFDB
// engine.
//
// Like PostgreSQL (from which the paper's prototype was built), the
// heap keeps every version of every tuple, stamped with the creating
// transaction (xmin) and, once deleted or superseded, the deleting
// transaction (xmax). Readers pick the versions visible to their
// snapshot; IFDB additionally hides versions whose label is not covered
// by the reading process's label — the paper implements both filters at
// this same layer (§7.1), and so do we: the executor above never sees a
// tuple the process is not entitled to.
//
// Two backends implement the Heap interface: MemHeap (this file's
// sibling heap.go) and pager.PagedHeap (slotted 8 KiB pages behind an
// LRU buffer pool) for the on-disk experiments of Fig. 6.
package storage

import (
	"ifdb/internal/label"
	"ifdb/internal/types"
)

// XID identifies a transaction. XID 0 means "no transaction"
// (e.g. an unset xmax). XIDs are assigned monotonically by the txn
// manager.
type XID uint64

// InvalidXID is the zero XID.
const InvalidXID XID = 0

// TID locates a tuple version within a heap. For MemHeap it is a dense
// index; for the paged heap it packs (page, slot). TIDs are stable for
// the life of the version.
type TID uint64

// InvalidTID is a sentinel for "no tuple".
const InvalidTID TID = ^TID(0)

// TupleVersion is one MVCC version of a tuple.
type TupleVersion struct {
	Row    []types.Value // column values (no system columns)
	Label  label.Label   // immutable secrecy label (_label)
	ILabel label.Label   // immutable integrity label (_ilabel, §3.1)
	Xmin   XID           // creating transaction
	Xmax   XID           // deleting/superseding transaction, 0 if live
}

// Visibility decides which tuple versions a scan may observe. The
// transaction layer supplies the MVCC predicate; the engine supplies
// the label predicate (Query by Label, paper §4.2). Keeping both here,
// below the executor, mirrors the paper's design: bugs in query
// parsing, planning, or execution cannot bypass the information flow
// rules.
type Visibility struct {
	// See reports whether a version created by xmin and
	// deleted/superseded by xmax (0 if live) is visible to the
	// transaction's snapshot. Nil means "see latest committed only"
	// is not available — scans require an explicit predicate.
	See func(xmin, xmax XID) bool

	// LabelOK reports whether the reading process's label covers the
	// version's label. Nil means the scan is exempt from label
	// confinement (used only by vacuum, constraint-internal checks
	// vouched for by the Foreign Key Rule, and the dump tool).
	LabelOK func(l label.Label) bool
}

// Sees applies both predicates to a version.
func (v Visibility) Sees(tv *TupleVersion) bool {
	if v.See != nil && !v.See(tv.Xmin, tv.Xmax) {
		return false
	}
	if v.LabelOK != nil && !v.LabelOK(tv.Label) {
		return false
	}
	return true
}

// Heap is an MVCC tuple store.
//
// Mutations take the acting XID so the heap can stamp versions; the
// heap itself knows nothing about commit/abort — the transaction layer
// resolves XIDs to outcomes through the Visibility predicate and
// un-stamps xmax on rollback.
type Heap interface {
	// Insert appends a new version and returns its TID.
	Insert(tv TupleVersion) (TID, error)

	// Get fetches the version at tid. ok is false if tid was never
	// allocated or the version has been vacuumed away.
	Get(tid TID) (TupleVersion, bool)

	// SetXmax stamps the version at tid as deleted by xid. It fails
	// (returns false) if the version already has a different live
	// xmax — the caller treats that as a write-write conflict.
	SetXmax(tid TID, xid XID) bool

	// ClearXmax removes an xmax stamp if it equals xid (rollback of a
	// delete/update by an aborted transaction).
	ClearXmax(tid TID, xid XID)

	// Scan visits every version, in TID order, until fn returns false.
	// The *TupleVersion passed to fn aliases heap memory and must not
	// be retained or modified.
	Scan(fn func(tid TID, tv *TupleVersion) bool)

	// Vacuum removes versions that are invisible to every present and
	// future snapshot: xmax committed with commit sequence at or below
	// horizon, as judged by the dead predicate. Returns the number of
	// versions reclaimed. The vacuum task is exempt from information
	// flow rules (paper §7.1).
	Vacuum(dead func(tv *TupleVersion) bool) int

	// Len returns the number of live (non-vacuumed) versions stored.
	Len() int

	// ApproxBytes estimates resident bytes, used by the space-overhead
	// experiment (E7).
	ApproxBytes() int64
}

// BatchScanner is the optional Heap capability the pull-based executor
// needs: a scan that can pause after a bounded number of visits and
// resume later, so an iterator can hold a position across Next() calls
// without pinning the heap's lock for the whole statement. Both heap
// backends implement it.
type BatchScanner interface {
	// ScanFrom visits live versions with TID >= start in TID order and
	// returns after roughly max visits (implementations may overshoot
	// to finish a physical unit such as a page). It returns the TID to
	// resume from and whether further versions may remain; more=false
	// means the scan reached the end of the heap as of this batch.
	// Stopping early via fn returning false still yields a valid resume
	// position. The *TupleVersion aliasing rules of Scan apply.
	ScanFrom(start TID, max int, fn func(tid TID, tv *TupleVersion) bool) (next TID, more bool)
}

// RecoverableHeap is the extra surface crash recovery needs. Both
// heap backends implement it; replay uses these instead of the normal
// mutation path because WAL records carry explicit TIDs and must be
// re-applied idempotently at their original slots.
type RecoverableHeap interface {
	Heap

	// RestoreAt places a version at exactly tid, filling any slot gap
	// with tombstones (gaps arise when an uncommitted insert was
	// skipped during replay). If the slot is already occupied or
	// tombstoned — because a dirty page reached disk before the crash,
	// or the version was vacuumed — RestoreAt is a no-op and reports
	// placed=false.
	RestoreAt(tid TID, tv TupleVersion) (placed bool, err error)

	// ForceXmax unconditionally stamps tid's xmax (replay applies only
	// committed deleters, which always win over any stale stamp a
	// flushed page may carry).
	ForceXmax(tid TID, xid XID)
}
