package cluster

import "ifdb/internal/obs"

// Coordinator metrics, registered at init so every series is present
// (at zero) from the first scrape.
var (
	mProbeFailures = obs.NewCounter("ifdb_cluster_probe_failures_total",
		"Health probes that failed to reach a node or get a STATUS answer.")
	mFailovers = obs.NewCounter("ifdb_cluster_failovers_total",
		"Successful promotions orchestrated by this coordinator (manual or automatic).")
	gEpoch = obs.NewGauge("ifdb_cluster_epoch",
		"WAL epoch of the most recently promoted primary, as reported by its PROMOTE answer.")
)
