// Package cluster implements the failover coordinator for a
// replicated IFDB deployment: a health checker that probes every
// node's replication role over the client protocol's STATUS frames,
// detects primary failure, and orchestrates promotion of the
// most-caught-up replica — manually (PromoteBest, what ifdb-cli's
// \promote and operators' runbooks call) or automatically (Config
// .AutoPromote, after FailAfter consecutive failed primary probes).
//
// The coordinator is deliberately an *observer with one verb*: all
// safety lives below it. Promotion bumps the WAL epoch on the promoted
// node, and epoch fencing in internal/repl guarantees a stale primary
// — one the coordinator gave up on that was merely partitioned — can
// never feed bytes to the promoted side or its replicas. The worst a
// confused coordinator can do is promote a lagging replica, losing the
// unshipped tail of an asynchronous stream; it cannot corrupt or fork
// a node's history.
package cluster

import (
	"fmt"
	"log"
	"sync"
	"time"

	"ifdb/client"
)

// Config configures a Coordinator.
type Config struct {
	// Nodes are the client addresses of every cluster node (primary
	// and replicas); Token authenticates probes (the platform token).
	Nodes []string
	Token string

	// ProbeInterval paces health probes (default 1s).
	ProbeInterval time.Duration

	// FailAfter is how many consecutive sweeps without a reachable
	// primary trigger automatic failover (default 3).
	FailAfter int

	// AutoPromote enables automatic failover. Off, the coordinator
	// only observes; promotion happens through PromoteBest.
	AutoPromote bool

	// DialTimeout bounds each probe connection (default 2s).
	DialTimeout time.Duration

	// ErrorLog, when set, receives probe and failover diagnostics.
	ErrorLog *log.Logger
}

// NodeStatus is one node's health as seen by a probe sweep.
type NodeStatus struct {
	Addr string
	// Ok reports the probe reached the node and got a STATUS answer.
	Ok  bool
	Err string // dial/probe error, or the replica's fatal stream error

	Replica    bool
	Epoch      uint64
	AppliedLSN uint64
	WALEnd     uint64
	// Lag is WALEnd(primary) - AppliedLSN(this replica), when a
	// primary was reachable in the same sweep (LSN spaces only compare
	// within one epoch, so it is set only for same-epoch replicas).
	Lag uint64
}

// Coordinator watches a cluster and promotes on failure. Run it from
// one place (an operator box, or alongside one of the servers); it
// holds no state the cluster depends on — restarting it is free.
type Coordinator struct {
	cfg Config

	// failedSweeps counts consecutive sweeps with no reachable
	// primary. Touched only by the Run goroutine.
	failedSweeps int
}

// New creates a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one node")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	return &Coordinator{cfg: cfg}, nil
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.ErrorLog != nil {
		c.cfg.ErrorLog.Printf(format, args...)
	}
}

// Probe sweeps every node once and returns their statuses, with
// replica lag computed against the highest-epoch reachable primary.
// Nodes are probed concurrently: sweep latency bounds failover time,
// so an unreachable (black-holed) node must cost one DialTimeout for
// the whole sweep, not one per node.
func (c *Coordinator) Probe() []NodeStatus {
	out := make([]NodeStatus, len(c.cfg.Nodes))
	var wg sync.WaitGroup
	for i, addr := range c.cfg.Nodes {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ns := NodeStatus{Addr: addr}
			defer func() { out[i] = ns }()
			conn, err := client.DialConfig(client.Config{
				Addr: addr, Token: c.cfg.Token, DialTimeout: c.cfg.DialTimeout,
			})
			if err != nil {
				ns.Err = err.Error()
				return
			}
			st, err := conn.Status()
			conn.Close()
			if err != nil {
				ns.Err = err.Error()
				return
			}
			ns.Ok = true
			ns.Replica, ns.Epoch = st.Replica, st.Epoch
			ns.AppliedLSN, ns.WALEnd, ns.Err = st.AppliedLSN, st.WALEnd, st.Err
		}(i, addr)
	}
	wg.Wait()
	// Lag: against the primary at the highest epoch seen this sweep.
	var primary *NodeStatus
	for i := range out {
		n := &out[i]
		if n.Ok && !n.Replica && (primary == nil || n.Epoch > primary.Epoch) {
			primary = n
		}
	}
	if primary != nil {
		for i := range out {
			n := &out[i]
			if n.Ok && n.Replica && n.Epoch == primary.Epoch && primary.WALEnd > n.AppliedLSN {
				n.Lag = primary.WALEnd - n.AppliedLSN
			}
		}
	}
	return out
}

// hasPrimary reports whether a sweep saw a live primary *at the
// highest epoch any reachable node knows*. A fenced stale primary —
// one a failover already moved past, still running because nobody
// stopped it — answers probes as a primary at an older epoch; counting
// it would suppress failover forever after the real primary dies.
func hasPrimary(sweep []NodeStatus) bool {
	var maxEpoch uint64
	for _, n := range sweep {
		if n.Ok && n.Epoch > maxEpoch {
			maxEpoch = n.Epoch
		}
	}
	for _, n := range sweep {
		if n.Ok && !n.Replica && n.Epoch == maxEpoch {
			return true
		}
	}
	return false
}

// pickBest selects the promotion candidate: the healthy replica with
// the highest applied LSN — the least data lost to the asynchronous
// tail — at the highest replica epoch seen (applied positions only
// compare within one epoch chain). Ties break by address for
// determinism. A replica whose stream died fatally still qualifies:
// its applied position is real, and the primary it lost is exactly the
// one being failed away from.
func pickBest(sweep []NodeStatus) *NodeStatus {
	var epoch uint64
	for i := range sweep {
		if n := &sweep[i]; n.Ok && n.Replica && n.Epoch > epoch {
			epoch = n.Epoch
		}
	}
	var best *NodeStatus
	for i := range sweep {
		n := &sweep[i]
		if !n.Ok || !n.Replica || n.Epoch != epoch {
			continue
		}
		if best == nil || n.AppliedLSN > best.AppliedLSN ||
			(n.AppliedLSN == best.AppliedLSN && n.Addr < best.Addr) {
			best = n
		}
	}
	return best
}

// PromoteBest promotes the most-caught-up healthy replica (ties broken
// by address, for determinism) and returns its address. It refuses to
// act while a primary is still reachable, unless force is set — the
// manual override for planned switchovers where the operator stops the
// old primary themselves.
func (c *Coordinator) PromoteBest(force bool) (string, error) {
	sweep := c.Probe()
	if !force && hasPrimary(sweep) {
		return "", fmt.Errorf("cluster: a primary is still reachable; not promoting (use force for a planned switchover)")
	}
	best := pickBest(sweep)
	if best == nil {
		return "", fmt.Errorf("cluster: no healthy replica to promote")
	}
	conn, err := client.DialConfig(client.Config{
		Addr: best.Addr, Token: c.cfg.Token, DialTimeout: c.cfg.DialTimeout,
	})
	if err != nil {
		return "", fmt.Errorf("cluster: dial %s for promotion: %w", best.Addr, err)
	}
	defer conn.Close()
	st, err := conn.PromoteNode()
	if err != nil {
		return "", fmt.Errorf("cluster: promote %s: %w", best.Addr, err)
	}
	c.logf("cluster: promoted %s to primary at epoch %d", best.Addr, st.Epoch)
	return best.Addr, nil
}

// Run probes on the configured interval until stop closes, counting
// consecutive primary-less sweeps and (with AutoPromote) promoting the
// most-caught-up replica once FailAfter is reached.
func (c *Coordinator) Run(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		sweep := c.Probe()
		if hasPrimary(sweep) {
			c.failedSweeps = 0
			continue
		}
		c.failedSweeps++
		c.logf("cluster: no reachable primary (%d/%d sweeps)", c.failedSweeps, c.cfg.FailAfter)
		if !c.cfg.AutoPromote || c.failedSweeps < c.cfg.FailAfter {
			continue
		}
		addr, err := c.PromoteBest(false)
		if err != nil {
			c.logf("cluster: automatic failover failed: %v", err)
			continue
		}
		c.logf("cluster: automatic failover: %s is the new primary", addr)
		c.failedSweeps = 0
	}
}
