// Package cluster implements the failover coordinator for a
// replicated IFDB deployment: a health checker that probes every
// node's replication role over the client protocol's STATUS frames,
// detects primary failure, and orchestrates promotion of the
// most-caught-up replica — manually (PromoteBest, what ifdb-cli's
// \promote and operators' runbooks call) or automatically (Config
// .AutoPromote, after FailAfter consecutive failed primary probes).
//
// The coordinator is deliberately an *observer with one verb*: all
// safety lives below it. Promotion bumps the WAL epoch on the promoted
// node, and epoch fencing in internal/repl guarantees a stale primary
// — one the coordinator gave up on that was merely partitioned — can
// never feed bytes to the promoted side or its replicas. The worst a
// confused coordinator can do is promote a lagging replica, losing the
// unshipped tail of an asynchronous stream; it cannot corrupt or fork
// a node's history. (It is also a single observer: see ARCHITECTURE.md
// § Failover & epochs, "Known limitations", before running two.)
//
// With Config.ShardMap the coordinator watches a *sharded* cluster:
// each shard is an independent epoch-fenced replication group, health
// is tracked per shard, and a failover promotes the most-caught-up
// replica *within the dead primary's shard* — then bumps the shard
// map's version with the new primary recorded, so routers following
// the map (served through wire.Server's SHARDMAP frame) re-route that
// shard while every other shard keeps its assignment. Version fencing
// of statements mirrors epoch fencing one level up; see
// ARCHITECTURE.md § Sharding.
package cluster

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"ifdb/client"
	"ifdb/internal/obs"
	"ifdb/internal/wire"
)

// Config configures a Coordinator.
type Config struct {
	// Nodes are the client addresses of every cluster node (primary
	// and replicas); Token authenticates probes (the platform token).
	Nodes []string
	Token string

	// ProbeInterval paces health probes (default 1s).
	ProbeInterval time.Duration

	// FailAfter is how many consecutive sweeps without a reachable
	// primary trigger automatic failover (default 3).
	FailAfter int

	// AutoPromote enables automatic failover. Off, the coordinator
	// only observes; promotion happens through PromoteBest.
	AutoPromote bool

	// DialTimeout bounds each probe connection (default 2s).
	DialTimeout time.Duration

	// Logger, when set, receives probe and failover diagnostics.
	Logger *slog.Logger

	// ShardMap, when set, runs the coordinator in sharded mode: health
	// and failover are per shard, and a promotion rewrites the map (new
	// primary recorded, version bumped). Nodes may be left empty — the
	// map's members are the node set.
	ShardMap *wire.ShardMap
}

// NodeStatus is one node's health as seen by a probe sweep.
type NodeStatus struct {
	Addr string
	// Ok reports the probe reached the node and got a STATUS answer.
	Ok  bool
	Err string // dial/probe error, or the replica's fatal stream error

	Replica    bool
	Epoch      uint64
	AppliedLSN uint64
	WALEnd     uint64
	// Lag is WALEnd(primary) - AppliedLSN(this replica), when a
	// primary was reachable in the same sweep (LSN spaces only compare
	// within one epoch, so it is set only for same-epoch replicas).
	Lag uint64
}

// Coordinator watches a cluster and promotes on failure. Run it from
// one place (an operator box, or alongside one of the servers); it
// holds no state the cluster depends on — restarting it is free.
type Coordinator struct {
	cfg Config

	// failedSweeps counts consecutive sweeps with no reachable
	// primary (unsharded mode); shardFails is its per-shard analog.
	// Touched only by the Run goroutine.
	failedSweeps int
	shardFails   map[uint32]int

	// smap is the live shard map: copy-on-write (a failover installs
	// an edited clone under mu), so ShardMap callers — the wire
	// server's SHARDMAP frames — can hold a returned pointer without
	// observing a half-edit.
	mu   sync.Mutex
	smap *wire.ShardMap
}

// New creates a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.ShardMap != nil {
		if err := cfg.ShardMap.Validate(); err != nil {
			return nil, err
		}
		if len(cfg.Nodes) == 0 {
			for _, sh := range cfg.ShardMap.Shards {
				cfg.Nodes = append(cfg.Nodes, sh.Primary)
				cfg.Nodes = append(cfg.Nodes, sh.Replicas...)
			}
		}
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one node")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	c := &Coordinator{cfg: cfg, shardFails: make(map[uint32]int)}
	if cfg.ShardMap != nil {
		c.smap = cfg.ShardMap.Clone()
	}
	return c, nil
}

// ShardMap returns the coordinator's current shard map (nil when
// unsharded). The returned map is immutable — failovers install a
// fresh clone — so it is safe to encode concurrently; wire.Server's
// ShardMap hook serves it to routers and peers.
func (c *Coordinator) ShardMap() *wire.ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.smap
}

func (c *Coordinator) logger() *slog.Logger {
	if c.cfg.Logger != nil {
		return c.cfg.Logger
	}
	return obs.Nop()
}

// Probe sweeps every node once and returns their statuses, with
// replica lag computed against the highest-epoch reachable primary.
// Nodes are probed concurrently: sweep latency bounds failover time,
// so an unreachable (black-holed) node must cost one DialTimeout for
// the whole sweep, not one per node.
func (c *Coordinator) Probe() []NodeStatus {
	return c.probeAddrs(c.cfg.Nodes)
}

// probeAddrs is Probe over an explicit address set (a shard's members
// in sharded mode).
func (c *Coordinator) probeAddrs(addrs []string) []NodeStatus {
	out := make([]NodeStatus, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ns := NodeStatus{Addr: addr}
			defer func() { out[i] = ns }()
			conn, err := client.DialConfig(client.Config{
				Addr: addr, Token: c.cfg.Token, DialTimeout: c.cfg.DialTimeout,
			})
			if err != nil {
				ns.Err = err.Error()
				mProbeFailures.Inc()
				return
			}
			st, err := conn.Status()
			conn.Close()
			if err != nil {
				ns.Err = err.Error()
				mProbeFailures.Inc()
				return
			}
			ns.Ok = true
			ns.Replica, ns.Epoch = st.Replica, st.Epoch
			ns.AppliedLSN, ns.WALEnd, ns.Err = st.AppliedLSN, st.WALEnd, st.Err
		}(i, addr)
	}
	wg.Wait()
	// Lag: against the primary at the highest epoch seen this sweep.
	var primary *NodeStatus
	for i := range out {
		n := &out[i]
		if n.Ok && !n.Replica && (primary == nil || n.Epoch > primary.Epoch) {
			primary = n
		}
	}
	if primary != nil {
		for i := range out {
			n := &out[i]
			if n.Ok && n.Replica && n.Epoch == primary.Epoch && primary.WALEnd > n.AppliedLSN {
				n.Lag = primary.WALEnd - n.AppliedLSN
			}
		}
	}
	return out
}

// hasPrimary reports whether a sweep saw a live primary *at the
// highest epoch any reachable node knows*. A fenced stale primary —
// one a failover already moved past, still running because nobody
// stopped it — answers probes as a primary at an older epoch; counting
// it would suppress failover forever after the real primary dies.
func hasPrimary(sweep []NodeStatus) bool {
	var maxEpoch uint64
	for _, n := range sweep {
		if n.Ok && n.Epoch > maxEpoch {
			maxEpoch = n.Epoch
		}
	}
	for _, n := range sweep {
		if n.Ok && !n.Replica && n.Epoch == maxEpoch {
			return true
		}
	}
	return false
}

// pickBest selects the promotion candidate: the healthy replica with
// the highest applied LSN — the least data lost to the asynchronous
// tail — at the highest replica epoch seen (applied positions only
// compare within one epoch chain). Ties break by address for
// determinism. A replica whose stream died fatally still qualifies:
// its applied position is real, and the primary it lost is exactly the
// one being failed away from.
func pickBest(sweep []NodeStatus) *NodeStatus {
	var epoch uint64
	for i := range sweep {
		if n := &sweep[i]; n.Ok && n.Replica && n.Epoch > epoch {
			epoch = n.Epoch
		}
	}
	var best *NodeStatus
	for i := range sweep {
		n := &sweep[i]
		if !n.Ok || !n.Replica || n.Epoch != epoch {
			continue
		}
		if best == nil || n.AppliedLSN > best.AppliedLSN ||
			(n.AppliedLSN == best.AppliedLSN && n.Addr < best.Addr) {
			best = n
		}
	}
	return best
}

// PromoteBest promotes the most-caught-up healthy replica (ties broken
// by address, for determinism) and returns its address. It refuses to
// act while a primary is still reachable, unless force is set — the
// manual override for planned switchovers where the operator stops the
// old primary themselves. In sharded mode use PromoteBestShard: "the
// cluster" has no single primary to reason about.
func (c *Coordinator) PromoteBest(force bool) (string, error) {
	if c.ShardMap() != nil {
		return "", fmt.Errorf("cluster: sharded coordinator: promote per shard with PromoteBestShard")
	}
	sweep := c.Probe()
	if !force && hasPrimary(sweep) {
		return "", fmt.Errorf("cluster: a primary is still reachable; not promoting (use force for a planned switchover)")
	}
	return c.promoteFrom(sweep)
}

// promoteFrom promotes the best candidate of one sweep.
func (c *Coordinator) promoteFrom(sweep []NodeStatus) (string, error) {
	best := pickBest(sweep)
	if best == nil {
		return "", fmt.Errorf("cluster: no healthy replica to promote")
	}
	conn, err := client.DialConfig(client.Config{
		Addr: best.Addr, Token: c.cfg.Token, DialTimeout: c.cfg.DialTimeout,
	})
	if err != nil {
		return "", fmt.Errorf("cluster: dial %s for promotion: %w", best.Addr, err)
	}
	defer conn.Close()
	st, err := conn.PromoteNode()
	if err != nil {
		return "", fmt.Errorf("cluster: promote %s: %w", best.Addr, err)
	}
	mFailovers.Inc()
	gEpoch.Set(int64(st.Epoch))
	c.logger().Info("cluster: promoted replica to primary", "addr", best.Addr, "epoch", st.Epoch)
	return best.Addr, nil
}

// shardMembers lists one shard's member addresses, static primary
// first.
func shardMembers(sh *wire.Shard) []string {
	return append([]string{sh.Primary}, sh.Replicas...)
}

// PromoteBestShard promotes the most-caught-up healthy replica of one
// shard and rewrites the shard map: the promoted node becomes the
// shard's primary, the old primary is kept as a (future) replica —
// it rejoins by re-bootstrapping under the new epoch — and the map
// version is bumped so routers re-route on their next statement.
func (c *Coordinator) PromoteBestShard(sid uint32, force bool) (string, error) {
	m := c.ShardMap()
	if m == nil || int(sid) >= len(m.Shards) {
		return "", fmt.Errorf("cluster: no shard %d", sid)
	}
	sweep := c.probeAddrs(shardMembers(&m.Shards[sid]))
	if !force && hasPrimary(sweep) {
		return "", fmt.Errorf("cluster: shard %d still has a reachable primary; not promoting", sid)
	}
	addr, err := c.promoteFrom(sweep)
	if err != nil {
		return "", err
	}
	c.recordShardPrimary(sid, addr)
	return addr, nil
}

// recordShardPrimary installs a fresh map clone with addr as shard
// sid's primary and the version bumped.
func (c *Coordinator) recordShardPrimary(sid uint32, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.smap.Clone()
	sh := &m.Shards[sid]
	members := shardMembers(sh)
	sh.Primary = addr
	sh.Replicas = sh.Replicas[:0]
	for _, a := range members {
		if a != addr {
			sh.Replicas = append(sh.Replicas, a)
		}
	}
	m.Version++
	c.smap = m
	c.logger().Info("cluster: shard map updated", "version", m.Version, "shard", sid, "primary", addr)
}

// Run probes on the configured interval until stop closes, counting
// consecutive primary-less sweeps — per shard in sharded mode — and
// (with AutoPromote) promoting the most-caught-up replica of the
// affected group once FailAfter is reached.
func (c *Coordinator) Run(stop <-chan struct{}) {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if m := c.ShardMap(); m != nil {
			c.sweepShards(m)
			continue
		}
		sweep := c.Probe()
		if hasPrimary(sweep) {
			c.failedSweeps = 0
			continue
		}
		c.failedSweeps++
		c.logger().Warn("cluster: no reachable primary",
			"sweeps", c.failedSweeps, "fail_after", c.cfg.FailAfter)
		if !c.cfg.AutoPromote || c.failedSweeps < c.cfg.FailAfter {
			continue
		}
		addr, err := c.PromoteBest(false)
		if err != nil {
			c.logger().Error("cluster: automatic failover failed", "err", err)
			continue
		}
		c.logger().Warn("cluster: automatic failover complete", "primary", addr)
		c.failedSweeps = 0
	}
}

// sweepShards runs one health pass over every shard, promoting within
// any shard whose primary has been gone FailAfter sweeps. Shards fail
// independently: one shard mid-failover never blocks another's health
// accounting.
func (c *Coordinator) sweepShards(m *wire.ShardMap) {
	for i := range m.Shards {
		sid := m.Shards[i].ID
		sweep := c.probeAddrs(shardMembers(&m.Shards[i]))
		if hasPrimary(sweep) {
			c.shardFails[sid] = 0
			continue
		}
		c.shardFails[sid]++
		c.logger().Warn("cluster: shard has no reachable primary",
			"shard", sid, "sweeps", c.shardFails[sid], "fail_after", c.cfg.FailAfter)
		if !c.cfg.AutoPromote || c.shardFails[sid] < c.cfg.FailAfter {
			continue
		}
		addr, err := c.PromoteBestShard(sid, false)
		if err != nil {
			c.logger().Error("cluster: shard automatic failover failed", "shard", sid, "err", err)
			continue
		}
		c.logger().Warn("cluster: shard automatic failover complete", "shard", sid, "primary", addr)
		c.shardFails[sid] = 0
	}
}
