// Coordinator tests: probe sweeps, promotion-candidate selection, and
// automatic failover over a real in-process cluster (sockets and all).
package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"ifdb/internal/engine"
	"ifdb/internal/repl"
	"ifdb/internal/wire"
)

// node is one in-process cluster member: an engine, its client-facing
// wire server, and (for replicas) the follower whose promotion the
// server's PROMOTE handler triggers.
type node struct {
	eng  *engine.Engine
	srv  *wire.Server
	addr string
	f    *repl.Follower
}

func startNode(t *testing.T, eng *engine.Engine, f *repl.Follower) *node {
	t.Helper()
	srv := wire.NewServer(eng, "")
	if f != nil {
		srv.Promote = f.Promote
		srv.StatusErr = f.Err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &node{eng: eng, srv: srv, addr: ln.Addr().String(), f: f}
}

// startCluster brings up a durable primary with its replication
// listener and n replicas, all converged.
func startCluster(t *testing.T, replicas int) (*node, *repl.Primary, []*node) {
	t.Helper()
	eng, err := engine.New(engine.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	rp := repl.NewPrimary(eng, "")
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rp.Serve(rln)
	t.Cleanup(func() { rp.Close() })
	prim := startNode(t, eng, nil)

	s := eng.NewSession(eng.Admin())
	if _, err := s.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'seed')`, i)); err != nil {
			t.Fatal(err)
		}
	}

	var reps []*node
	for i := 0; i < replicas; i++ {
		f, err := repl.Open(repl.Config{
			Addr: rln.Addr().String(), DataDir: t.TempDir(),
			RetryInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		reps = append(reps, startNode(t, f.Engine(), f))
	}
	// Converge everyone.
	if err := eng.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	target := eng.WAL().End()
	deadline := time.Now().Add(10 * time.Second)
	for _, r := range reps {
		for r.f.AppliedLSN() < target {
			if time.Now().After(deadline) {
				t.Fatalf("replica %s stuck at %d, want %d", r.addr, r.f.AppliedLSN(), target)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return prim, rp, reps
}

func addrs(prim *node, reps []*node) []string {
	out := []string{prim.addr}
	for _, r := range reps {
		out = append(out, r.addr)
	}
	return out
}

// TestProbeSweep: the coordinator sees roles, epochs, and lag.
func TestProbeSweep(t *testing.T) {
	prim, _, reps := startCluster(t, 2)
	c, err := New(Config{Nodes: addrs(prim, reps), DialTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sweep := c.Probe()
	if len(sweep) != 3 {
		t.Fatalf("sweep size %d", len(sweep))
	}
	if !sweep[0].Ok || sweep[0].Replica {
		t.Fatalf("primary probe: %+v", sweep[0])
	}
	for _, n := range sweep[1:] {
		if !n.Ok || !n.Replica || n.Epoch != 1 {
			t.Fatalf("replica probe: %+v", n)
		}
		if n.Lag != 0 {
			t.Fatalf("converged replica reports lag %d", n.Lag)
		}
	}
	// PromoteBest refuses while the primary is healthy.
	if _, err := c.PromoteBest(false); err == nil {
		t.Fatal("promoted despite a healthy primary")
	}
}

// TestPickBest: selection prefers the highest applied LSN at the
// newest replica epoch, breaking ties by address, skipping unhealthy
// and non-replica nodes.
func TestPickBest(t *testing.T) {
	sweep := []NodeStatus{
		{Addr: "p", Ok: true, Replica: false, WALEnd: 900},
		{Addr: "dead", Ok: false, Replica: true, AppliedLSN: 999},
		{Addr: "b", Ok: true, Replica: true, Epoch: 1, AppliedLSN: 500},
		{Addr: "a", Ok: true, Replica: true, Epoch: 1, AppliedLSN: 700},
	}
	if best := pickBest(sweep); best == nil || best.Addr != "a" {
		t.Fatalf("pickBest = %+v, want a", best)
	}
	// Tie: lowest address wins.
	sweep[2].AppliedLSN = 700
	if best := pickBest(sweep); best == nil || best.Addr != "a" {
		t.Fatalf("tie pickBest = %+v, want a", best)
	}
	// A newer-epoch replica outranks a higher LSN from an older epoch
	// (cross-epoch LSNs are incomparable).
	sweep = append(sweep, NodeStatus{Addr: "z", Ok: true, Replica: true, Epoch: 2, AppliedLSN: 10})
	if best := pickBest(sweep); best == nil || best.Addr != "z" {
		t.Fatalf("epoch pickBest = %+v, want z", best)
	}
	if pickBest(sweep[:2]) != nil {
		t.Fatal("picked an unhealthy node")
	}
}

// TestAutoFailover: the primary dies; the coordinator notices after
// FailAfter sweeps and promotes the most-caught-up replica, which then
// accepts writes at epoch 2 while the other node stays a replica.
func TestAutoFailover(t *testing.T) {
	prim, rp, reps := startCluster(t, 2)
	c, err := New(Config{
		Nodes:         addrs(prim, reps),
		ProbeInterval: 20 * time.Millisecond,
		FailAfter:     2,
		AutoPromote:   true,
		DialTimeout:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go c.Run(stop)

	// Let a few healthy sweeps pass (no spurious promotion).
	time.Sleep(100 * time.Millisecond)
	for _, r := range reps {
		if !r.eng.IsReplica() {
			t.Fatal("replica promoted while the primary was healthy")
		}
	}

	// Kill the primary: client server, repl listener, engine.
	prim.srv.Close()
	rp.Close()
	prim.eng.Crash()

	deadline := time.Now().Add(10 * time.Second)
	var promoted *node
	for promoted == nil {
		if time.Now().After(deadline) {
			t.Fatal("automatic failover never promoted a replica")
		}
		for _, r := range reps {
			if !r.eng.IsReplica() {
				promoted = r
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := promoted.eng.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	s := promoted.eng.NewSession(promoted.eng.Admin())
	if _, err := s.Exec(`INSERT INTO t VALUES (100, 'after-failover')`); err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}
	// Exactly one promotion: the other node is still a replica.
	for _, r := range reps {
		if r != promoted && !r.eng.IsReplica() {
			t.Fatal("both replicas were promoted")
		}
	}
}
