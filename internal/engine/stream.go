package engine

import (
	"time"

	"ifdb/internal/label"
	"ifdb/internal/plan"
	"ifdb/internal/sql"
	"ifdb/internal/txn"
	"ifdb/internal/types"
)

// Cursor is an incrementally-consumed statement result: the engine
// half of end-to-end streaming. For a single SELECT on the plan-based
// executor it holds a live iterator — the statement's transaction stays
// open while the caller pulls batches, and neither the engine nor the
// caller ever materializes the result. Everything else (DML, DDL,
// multi-statement batches, the legacy executor) falls back to a
// materialized Result served through the same interface.
//
// A Cursor is part of its session's statement lifecycle: while open it
// owns the session's statement transaction, and NextBatch/Close resolve
// that transaction exactly as a materialized statement would (commit on
// clean exhaustion in autocommit, abort on error or abandonment, whole-
// transaction abort inside an explicit transaction). Callers must fully
// consume or Close the cursor before issuing the session's next
// statement.
type Cursor struct {
	s    *Session
	cols []string
	ifc  bool

	// Streaming state (nil it → materialized fallback).
	it       plan.Iter
	stmtTx   *txn.Txn // transaction the cursor runs under
	auto     bool     // stmtTx is a cursor-owned autocommit transaction
	explicit bool     // stmtTx is the session's explicit transaction

	// Materialized fallback.
	res *Result
	off int

	execT0 time.Time
	done   bool
	err    error
}

// streamableStmts reports whether a parsed batch can run as a live
// cursor: exactly one SELECT (the plan path handles only SELECT, and a
// multi-statement batch returns the last result only after running the
// others to completion).
func streamableStmts(stmts []sql.Statement) (*sql.SelectStmt, bool) {
	if len(stmts) != 1 {
		return nil, false
	}
	sel, ok := stmts[0].(*sql.SelectStmt)
	return sel, ok
}

// ExecStream executes query, returning a cursor over its result. A
// single SELECT streams; anything else executes eagerly (through Exec)
// and the cursor serves the materialized result.
func (s *Session) ExecStream(query string, params ...types.Value) (*Cursor, error) {
	s.beginStmtStats(query)
	t0 := time.Now()
	stmts, err := s.eng.parseCached(query)
	s.stats.ParseNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	if sel, ok := streamableStmts(stmts); ok && !s.eng.cfg.LegacyExec {
		return s.openCursor(sel, params)
	}
	res, err := s.Exec(query, params...)
	if err != nil {
		return nil, err
	}
	return s.materializedCursor(res), nil
}

// ExecPreparedStream is ExecStream over a prepared handle: a prepared
// single SELECT streams from its cached plan with no parser (and no
// parse-cache) involvement at all.
func (s *Session) ExecPreparedStream(p *Prepared, params ...types.Value) (*Cursor, error) {
	if p.stmts == nil {
		return s.ExecStream(p.Text, params...)
	}
	if sel, ok := streamableStmts(p.stmts); ok && !s.eng.cfg.LegacyExec {
		s.beginStmtStats(p.Text)
		return s.openCursor(sel, params)
	}
	res, err := s.ExecPrepared(p, params...)
	if err != nil {
		return nil, err
	}
	return s.materializedCursor(res), nil
}

// materializedCursor wraps an eagerly-computed result.
func (s *Session) materializedCursor(res *Result) *Cursor {
	return &Cursor{s: s, cols: res.Cols, ifc: s.eng.cfg.IFC, res: res}
}

// openCursor builds the plan, opens the statement transaction, and
// opens the iterator — the streaming analogue of withStmt's entry.
func (s *Session) openCursor(sel *sql.SelectStmt, params []types.Value) (*Cursor, error) {
	if err := s.checkCanceled(); err != nil {
		return nil, err
	}
	c := &Cursor{s: s, ifc: s.eng.cfg.IFC, execT0: time.Now()}
	switch {
	case s.stmtTx != nil && !s.stmtTx.Done():
		// Nested execution (a stored procedure opening a cursor): ride
		// the in-flight statement transaction, resolve nothing.
		c.stmtTx = s.stmtTx
	case s.tx != nil && !s.tx.Done():
		c.stmtTx = s.tx
		c.explicit = true
		s.stmtTx = s.tx
	default:
		c.stmtTx = s.beginTxn(txn.SnapshotIsolation)
		c.auto = true
		s.stmtTx = c.stmtTx
	}
	p, it, err := s.openSelect(sel, params)
	if err != nil {
		c.fail(err)
		return nil, err
	}
	c.it = it
	c.cols = make([]string, len(p.Schema()))
	for i, cm := range p.Schema() {
		c.cols[i] = cm.Name
	}
	return c, nil
}

// Cols returns the result's column names.
func (c *Cursor) Cols() []string { return c.cols }

// Affected returns the trailer's affected-rows count (materialized DML
// only; zero for streams).
func (c *Cursor) Affected() int {
	if c.res != nil {
		return c.res.Affected
	}
	return 0
}

// Streaming reports whether the cursor serves a live iterator (false:
// a materialized result is being sliced).
func (c *Cursor) Streaming() bool { return c.it != nil }

// NextBatch returns up to max rows (and, under IFC, their labels). An
// empty batch with a nil error means the result is exhausted and the
// statement's transaction has been resolved; an error means the
// statement failed and its transaction was aborted (discarding any
// rows pulled in the failing batch, as a materialized statement
// would). Returned rows share the engine's tuple storage and are valid
// until the session's next statement.
func (c *Cursor) NextBatch(max int) ([][]types.Value, []label.Label, error) {
	if c.done {
		return nil, nil, c.err
	}
	if max <= 0 {
		max = 1
	}
	if c.res != nil {
		end := c.off + max
		if end > len(c.res.Rows) {
			end = len(c.res.Rows)
		}
		rows := c.res.Rows[c.off:end]
		var labels []label.Label
		if c.res.RowLabels != nil {
			labels = c.res.RowLabels[c.off:end]
		}
		c.off = end
		if c.off >= len(c.res.Rows) {
			c.done = true
		}
		return rows, labels, nil
	}
	var rows [][]types.Value
	var labels []label.Label
	for len(rows) < max {
		r, err := c.it.Next()
		if err != nil {
			c.fail(err)
			return nil, nil, err
		}
		if r == nil {
			if err := c.finish(); err != nil {
				return nil, nil, err
			}
			break
		}
		rows = append(rows, r.Vals)
		if c.ifc {
			labels = append(labels, r.Lbl)
		}
	}
	return rows, labels, nil
}

// finish resolves a cleanly-exhausted stream: close the iterator,
// commit the autocommit transaction (with the commit-label rule, as
// withStmt does), and restore the session's statement state.
func (c *Cursor) finish() error {
	c.done = true
	c.it.Close()
	s := c.s
	if c.auto || c.explicit {
		s.stmtTx = nil
	}
	s.stats.ExecNs = time.Since(c.execT0).Nanoseconds()
	if !c.auto {
		return nil
	}
	var commitLabel, commitILabel label.Label
	if s.eng.cfg.IFC {
		commitLabel = s.plabel
		commitILabel = s.pilabel
	}
	err := c.stmtTx.Commit(s.eng.hier, commitLabel, commitILabel)
	if err == nil {
		s.noteCommit(c.stmtTx)
		mTxnCommits.Inc()
	} else {
		mTxnAborts.Inc()
		c.err = err
	}
	return err
}

// fail resolves a failed stream: abort the statement's transaction
// exactly as withStmt's error path does (an explicit transaction
// aborts wholesale — PostgreSQL semantics).
func (c *Cursor) fail(err error) {
	c.done = true
	c.err = err
	if c.it != nil {
		c.it.Close()
	}
	s := c.s
	switch {
	case c.auto:
		s.stmtTx = nil
		c.stmtTx.Abort()
		mTxnAborts.Inc()
	case c.explicit:
		s.stmtTx = nil
		s.tx = nil
		c.stmtTx.Abort()
		mTxnAborts.Inc()
	}
	s.stats.ExecNs = time.Since(c.execT0).Nanoseconds()
}

// Close abandons the cursor. An unexhausted stream aborts its
// statement transaction (the caller walked away mid-result — there is
// nothing valid to commit). Idempotent.
func (c *Cursor) Close() {
	if c.done {
		return
	}
	if c.res != nil {
		c.done = true
		return
	}
	c.fail(ErrCanceled)
	c.err = nil
}
