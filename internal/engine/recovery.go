// Durability: write-ahead logging, checkpoints, and crash recovery.
//
// The engine's state lives in memory (catalog, authority, mem heaps,
// indexes) and in heap files (USING DISK tables). When Config.DataDir
// is set, every mutation is also recorded in a logical write-ahead
// log (internal/wal), and a checkpoint periodically captures the full
// state into a snapshot file so the log can be truncated:
//
//	DataDir/wal.log         — the append-only log
//	DataDir/checkpoint.snap — the last checkpoint snapshot
//	DataDir/<table>.heap    — paged heap files (disk tables)
//
// Recovery (run by New) rebuilds the engine: load the snapshot,
// replay the log in LSN order, then reconcile — transactions without
// a commit record are marked aborted, their stale xmax stamps
// cleared, and secondary indexes rebuilt as versions are restored.
//
// The protocol is deliberately apply-first, log-second with
// idempotent replay (records carry explicit TIDs; re-applying a
// record whose effect is already present is a no-op). That lets the
// checkpoint capture run with only WAL appends blocked — readers and
// already-applied writers proceed — rather than quiescing the engine.
// See wal.Writer.Checkpoint for the ordering argument.
package engine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ifdb/internal/authority"
	"ifdb/internal/catalog"
	"ifdb/internal/label"
	"ifdb/internal/pager"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/types"
	"ifdb/internal/wal"
)

func (e *Engine) walPath() string  { return filepath.Join(e.cfg.DataDir, "wal.log") }
func (e *Engine) snapPath() string { return filepath.Join(e.cfg.DataDir, "checkpoint.snap") }
func (e *Engine) heapPath(table string) string {
	return filepath.Join(e.cfg.DataDir, strings.ToLower(table)+".heap")
}

// WAL returns the engine's write-ahead log (nil when DataDir is
// unset); tests and tools use it for sync accounting.
func (e *Engine) WAL() *wal.Writer { return e.wal }

// ---------------------------------------------------------------------------
// Logging hooks (forward path)

// logFirstWrite emits the lazy BEGIN record for a transaction's first
// logged write.
func (s *Session) logFirstWrite(w *wal.Writer) error {
	if s.stmtTx.MarkLogged() {
		_, err := w.Append(&wal.Record{Type: wal.RecBegin, XID: s.stmtTx.XID()})
		return err
	}
	return nil
}

// logInsert records a tuple insert. Called after the heap and index
// writes (apply-first, log-second; replay is idempotent by TID).
func (s *Session) logInsert(t *catalog.Table, tid storage.TID, lw, liw label.Label, row []types.Value) error {
	w := s.eng.wal
	if w == nil {
		return nil
	}
	if err := s.logFirstWrite(w); err != nil {
		return err
	}
	_, err := w.Append(&wal.Record{
		Type: wal.RecInsert, XID: s.stmtTx.XID(),
		Table: t.Name, TID: tid, Label: lw, ILabel: liw, Row: row,
	})
	return err
}

// logDelete records an xmax stamp (DELETE, or the old-version half of
// UPDATE).
func (s *Session) logDelete(t *catalog.Table, tid storage.TID) error {
	w := s.eng.wal
	if w == nil {
		return nil
	}
	if err := s.logFirstWrite(w); err != nil {
		return err
	}
	_, err := w.Append(&wal.Record{Type: wal.RecSetXmax, XID: s.stmtTx.XID(), Table: t.Name, TID: tid})
	return err
}

// logDDL records a successful DDL statement (by source text) and
// appends it to the replayable DDL history, returning the record's
// LSN (0 when nothing was logged). DDL is rare, so each record is
// synced immediately rather than waiting for a commit's group fsync.
func (e *Engine) logDDL(p authority.Principal, text string) (wal.LSN, error) {
	// Replaying DDL (recovery or replica apply) is never re-logged: a
	// replica persists the shipped records verbatim instead.
	if e.wal == nil || e.replaying() || text == "" {
		return 0, nil
	}
	e.ddlMu.Lock()
	e.ddlLog = append(e.ddlLog, ddlEntry{Principal: uint64(p), Text: text})
	e.ddlMu.Unlock()
	lsn, err := e.wal.Append(&wal.Record{Type: wal.RecDDL, Principal: uint64(p), Text: text})
	if err != nil {
		return 0, err
	}
	return lsn, e.wal.Sync()
}

// logSeqVal records a sequence allocation; durability piggybacks on
// the next commit fsync (the allocation only matters if the consuming
// transaction commits, and its commit record is appended later).
func (e *Engine) logSeqVal(name, key string, value int64) {
	if e.wal == nil || e.replaying() {
		return
	}
	_, _ = e.wal.Append(&wal.Record{Type: wal.RecSeqVal, Text: name, SeqKey: key, Value: value})
}

// authLogger adapts the WAL to authority.ChangeLogger. Authority
// changes are rare and security-critical, so each is synced.
type authLogger struct{ e *Engine }

func (a authLogger) append(rec *wal.Record) error {
	if _, err := a.e.wal.Append(rec); err != nil {
		return err
	}
	return a.e.wal.Sync()
}

func (a authLogger) LogPrincipal(id uint64, name string) error {
	return a.append(&wal.Record{Type: wal.RecPrincipal, Principal: id, Text: name})
}

func (a authLogger) LogTag(id, owner uint64, name string, parents []uint64) error {
	return a.append(&wal.Record{Type: wal.RecTag, Tag: id, Owner: owner, Text: name, Parents: parents})
}

func (a authLogger) LogDelegate(tag, grantor, grantee uint64) error {
	return a.append(&wal.Record{Type: wal.RecDelegate, Tag: tag, From: grantor, To: grantee})
}

func (a authLogger) LogRevoke(tag, revoker, grantee uint64) error {
	return a.append(&wal.Record{Type: wal.RecRevoke, Tag: tag, From: revoker, To: grantee})
}

// ---------------------------------------------------------------------------
// Open / recover / close

// openDurable runs crash recovery against DataDir and attaches the
// write-ahead log. Called by New; the engine is not yet shared.
func (e *Engine) openDurable() error {
	if e.cfg.DisableLock {
		// Caller holds the DataDir lock (replication follower).
		if err := os.MkdirAll(e.cfg.DataDir, 0o755); err != nil {
			return fmt.Errorf("engine: datadir: %w", err)
		}
	} else {
		l, err := AcquireDirLock(e.cfg.DataDir)
		if err != nil {
			return err
		}
		e.dirLock = l
	}
	mode, err := wal.ParseSyncMode(e.cfg.SyncMode)
	if err != nil {
		e.releaseLock()
		return err
	}

	e.recovering = true
	orphans, err := e.recoverState()
	e.recovering = false
	if err != nil {
		e.releaseLock()
		return fmt.Errorf("engine: recovery: %w", err)
	}

	w, err := wal.Open(e.walPath(), mode)
	if err != nil {
		e.releaseLock()
		return err
	}
	e.wal = w
	w.SetRetainBudget(e.cfg.ReplRetainBudget)
	e.txns.AttachWAL(w)
	e.auth.SetChangeLogger(authLogger{e})

	// Transactions in flight at the crash have no outcome record in
	// the surviving log. Recovery marked them aborted in memory; log
	// those aborts so a replica streaming this log region can resolve
	// them too (an unresolved transaction would pin its resume
	// position forever).
	for _, xid := range orphans {
		if _, err := w.Append(&wal.Record{Type: wal.RecAbort, XID: xid}); err != nil {
			w.Close()
			e.wal = nil
			e.releaseLock()
			return err
		}
	}
	if len(orphans) > 0 {
		if err := w.Sync(); err != nil {
			w.Close()
			e.wal = nil
			e.releaseLock()
			return err
		}
	}
	return nil
}

// releaseLock drops the DataDir lock during failed opens (Close
// releases it on the normal path).
func (e *Engine) releaseLock() {
	if e.dirLock != nil {
		_ = e.dirLock.Release()
		e.dirLock = nil
	}
}

// recoverState loads the checkpoint snapshot and replays the WAL. It
// returns the XIDs of orphaned transactions: in flight at the crash,
// with writes in the log but no outcome record.
func (e *Engine) recoverState() ([]storage.XID, error) {
	if err := e.loadSnapshot(); err != nil {
		return nil, err
	}
	recs, _, err := wal.ReadAll(e.walPath())
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, e.reconcile(nil)
	}

	// Pass 1: transaction outcomes. A transaction whose commit record
	// is missing — in flight at the crash, or its record in the torn
	// tail — did not commit: its durable commit fsync never returned.
	committed := make(map[storage.XID]uint64)
	aborted := make(map[storage.XID]bool)
	seen := make(map[storage.XID]bool)
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case wal.RecCommit:
			committed[r.XID] = r.Seq
			seen[r.XID] = true
		case wal.RecAbort:
			aborted[r.XID] = true
			seen[r.XID] = true
		case wal.RecBegin, wal.RecInsert, wal.RecSetXmax:
			seen[r.XID] = true
		}
	}
	isCommitted := func(x storage.XID) bool {
		if _, ok := committed[x]; ok {
			return true
		}
		_, ok := e.txns.Committed(x) // committed before the checkpoint
		return ok
	}

	// Pass 2: apply in LSN order. Records below the snapshot's covered
	// LSN were applied before its capture began (apply-first,
	// log-second) and are already reflected in it — the log can hold
	// such records when a checkpoint kept the file for a lagging
	// replica subscription. Pass 1 still read their outcomes above.
	for i := range recs {
		r := &recs[i]
		if r.LSN < e.snapLSN {
			continue
		}
		switch r.Type {
		case wal.RecCommit:
			e.txns.RestoreCommitted(r.XID, r.Seq)
		case wal.RecAbort:
			e.txns.RestoreAborted(r.XID)
		case wal.RecInsert:
			if !isCommitted(r.XID) {
				continue // skipped; its slot stays a gap/tombstone
			}
			t, ok := e.cat.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("wal insert at lsn %d references unknown table %q", r.LSN, r.Table)
			}
			if err := e.restoreVersion(t, r.TID, storage.TupleVersion{
				Row: r.Row, Label: r.Label, ILabel: r.ILabel, Xmin: r.XID,
			}); err != nil {
				return nil, err
			}
		case wal.RecSetXmax:
			if !isCommitted(r.XID) {
				continue
			}
			t, ok := e.cat.Table(r.Table)
			if !ok {
				return nil, fmt.Errorf("wal setxmax at lsn %d references unknown table %q", r.LSN, r.Table)
			}
			t.Heap.(storage.RecoverableHeap).ForceXmax(r.TID, r.XID)
		case wal.RecDDL:
			if err := e.applyDDL(authority.Principal(r.Principal), r.Text); err != nil {
				return nil, fmt.Errorf("replay ddl %q: %w", r.Text, err)
			}
			e.ddlLog = append(e.ddlLog, ddlEntry{Principal: r.Principal, Text: r.Text})
		case wal.RecPrincipal:
			e.auth.RestorePrincipal(authority.Principal(r.Principal), r.Text)
			if e.admin == authority.NoPrincipal && r.Text == "admin" {
				// The engine's own administrator is the first principal
				// it logs (see New).
				e.admin = authority.Principal(r.Principal)
			}
		case wal.RecTag:
			if err := e.restoreTag(r.Tag, r.Owner, r.Text, r.Parents); err != nil {
				return nil, err
			}
		case wal.RecDelegate:
			e.auth.RestoreDelegation(authority.Principal(r.From), authority.Principal(r.To), label.Tag(r.Tag))
		case wal.RecRevoke:
			// Idempotent restore: the edge may already be gone.
			e.auth.RestoreRevoke(authority.Principal(r.From), authority.Principal(r.To), label.Tag(r.Tag))
		case wal.RecSeqVal:
			e.restoreSeqVal(r.Text, r.SeqKey, r.Value)
		case wal.RecReplLSN:
			if r.Seq > e.replApplied.Load() {
				e.replApplied.Store(r.Seq)
			}
		}
	}

	// In-flight transactions are over: mark them aborted so their
	// versions are invisible and vacuumable. Only transactions with
	// *no* outcome record at all are orphans needing an abort logged
	// (an explicitly aborted one already has its record — re-logging
	// it would add a state record that defeats the replica
	// fast-forward check after a clean restart).
	var orphans []storage.XID
	for xid := range seen {
		if _, ok := committed[xid]; ok {
			continue
		}
		e.txns.RestoreAborted(xid)
		if !aborted[xid] {
			orphans = append(orphans, xid)
		}
	}
	return orphans, e.reconcile(seen)
}

// restoreVersion re-places a version at its exact TID and, when it was
// actually placed (not already on a flushed page), indexes it.
func (e *Engine) restoreVersion(t *catalog.Table, tid storage.TID, tv storage.TupleVersion) error {
	placed, err := t.Heap.(storage.RecoverableHeap).RestoreAt(tid, tv)
	if err != nil {
		return fmt.Errorf("restore %s tid %d: %w", t.Name, tid, err)
	}
	if !placed {
		return nil
	}
	for _, ix := range t.Indexes {
		key := make([]types.Value, len(ix.Cols))
		for i, c := range ix.Cols {
			key[i] = tv.Row[c]
		}
		ix.Tree.Insert(key, tid)
	}
	return nil
}

// reconcile finishes recovery: every version whose creator is not
// known-committed is marked aborted (fuzzy snapshots and flushed
// pages can carry in-flight writes), stale uncommitted xmax stamps
// are cleared so they do not read as write-write conflicts, and disk
// heap counters are recounted.
func (e *Engine) reconcile(seen map[storage.XID]bool) error {
	for _, t := range e.cat.Tables() {
		rh := t.Heap.(storage.RecoverableHeap)
		type stale struct {
			tid storage.TID
			xid storage.XID
		}
		var clears []stale
		t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
			if _, ok := e.txns.Committed(tv.Xmin); !ok && !e.txns.Aborted(tv.Xmin) {
				e.txns.RestoreAborted(tv.Xmin)
			}
			if tv.Xmax != storage.InvalidXID {
				if _, ok := e.txns.Committed(tv.Xmax); !ok {
					clears = append(clears, stale{tid, tv.Xmax})
					if !e.txns.Aborted(tv.Xmax) {
						e.txns.RestoreAborted(tv.Xmax)
					}
				}
			}
			return true
		})
		for _, c := range clears {
			rh.ForceXmax(c.tid, storage.InvalidXID)
		}
		if ph, ok := t.Heap.(*pager.PagedHeap); ok {
			if err := ph.Recount(); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyDDL re-executes a logged DDL statement as its original
// principal. e.recovering makes the DDL executors tolerate effects
// that are already present (snapshot/WAL overlap) and skip
// authority/procedure checks vetted at original execution time.
func (e *Engine) applyDDL(p authority.Principal, text string) error {
	stmts, err := sql.ParseAll(text)
	if err != nil {
		return err
	}
	s := e.NewSession(p)
	s.replApply = true // replayed DDL was vetted on first execution
	for _, st := range stmts {
		if _, err := s.ExecStmt(st); err != nil {
			return err
		}
	}
	return nil
}

// restoreTag rebuilds a tag in the authority state and the engine's
// name directory.
func (e *Engine) restoreTag(id, owner uint64, name string, parents []uint64) error {
	pts := make([]label.Tag, len(parents))
	for i, p := range parents {
		pts[i] = label.Tag(p)
	}
	if err := e.auth.RestoreTag(label.Tag(id), authority.Principal(owner), name, pts); err != nil {
		return err
	}
	e.tagMu.Lock()
	defer e.tagMu.Unlock()
	if _, dup := e.tagNames[name]; !dup {
		e.tagNames[name] = label.Tag(id)
		e.nameOf[label.Tag(id)] = name
	}
	return nil
}

// Close checkpoints, stops the background checkpointer, and closes
// the WAL and heap files. A database closed cleanly recovers from the
// snapshot alone (the log is empty). Safe to call more than once.
func (e *Engine) Close() error {
	e.ckptMu.Lock()
	if e.closed {
		e.ckptMu.Unlock()
		return nil
	}
	e.closed = true
	stop, done := e.ckptStop, e.ckptDone
	e.ckptMu.Unlock()

	// Stop the background checkpointer outside ckptMu (its loop takes
	// ckptMu for each tick; holding it here would deadlock).
	if stop != nil {
		close(stop)
		<-done
	}
	if e.wal == nil {
		e.releaseLock()
		return nil
	}
	// Final checkpoint + close under ckptMu. A concurrent Checkpoint()
	// call either finishes before we acquire the lock or sees closed
	// and becomes a no-op — nothing touches the WAL after wal.Close.
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	err := e.checkpointLocked()
	if werr := e.wal.Close(); err == nil {
		err = werr
	}
	for _, t := range e.cat.Tables() {
		if ph, ok := t.Heap.(*pager.PagedHeap); ok {
			if cerr := ph.Close(false); err == nil {
				err = cerr
			}
		}
	}
	e.releaseLock()
	return err
}

// ---------------------------------------------------------------------------
// Checkpointing

// Checkpoint captures the full engine state into the snapshot file,
// flushes dirty disk-heap pages, and truncates the WAL. Readers and
// in-flight statements keep running; only WAL appends (and therefore
// commit completions) wait.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.closed {
		return nil
	}
	return e.checkpointLocked()
}

func (e *Engine) checkpointLocked() error {
	return e.wal.Checkpoint(func(covered wal.LSN) error {
		snap, err := e.captureSnapshot(covered)
		if err != nil {
			return err
		}
		if err := writeFileAtomic(e.snapPath(), snap); err != nil {
			return err
		}
		for _, t := range e.cat.Tables() {
			if ph, ok := t.Heap.(*pager.PagedHeap); ok {
				if err := ph.Flush(); err != nil {
					return fmt.Errorf("flush %s: %w", t.Name, err)
				}
			}
		}
		return nil
	})
}

func (e *Engine) checkpointLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	defer close(e.ckptDone)
	for {
		select {
		case <-e.ckptStop:
			return
		case <-t.C:
			_ = e.Checkpoint() // next interval retries on error
		}
	}
}

// writeFileAtomic writes data to path via a temp file + rename, with
// fsyncs on both the file and its directory.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot format
//
// Binary layout (all integers uvarint unless noted; strings are
// uvarint length + bytes; labels use the label package encoding):
//
//	"IFDBSNP2"
//	admin principal (8 bytes LE)
//	nextXID, commitSeq, replApplied (primary LSN, 0 on a primary)
//	coveredLSN — the log position this snapshot covers: recovery
//	             applies only WAL records at or above it (their
//	             effects are the ones the capture could not have seen)
//	nCommitted, (xid, seq)*      — statuses of xids referenced by live versions
//	nAborted, xid*
//	nPrincipals, (id, name)*
//	nTags, (id, owner, name, nParents, parent*)*
//	nDelegations, (tag, grantor, grantee)*
//	nDDL, (principal, text)*
//	nSequences, (name, nPartitions, (key, value)*)*
//	nMemTables, (name, nVersions, (tid, xmin, xmax, label, ilabel, row)*)*
//	crc32c (4 bytes LE) over everything after the magic
//
// Disk tables are not in the snapshot: their pages are flushed and
// fsynced by the same checkpoint, and the DDL history recreates their
// catalog entries (reopening the heap files) on recovery.

var snapMagic = []byte("IFDBSNP2")

func appendUv(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// captureSnapshot serializes the engine state. It runs with WAL
// appends blocked (see Checkpoint): every mutation already applied is
// either visible to the capture scans or will land in the new log
// generation, whose idempotent replay re-applies it. covered is the
// log LSN below which every record's effect is in this capture.
func (e *Engine) captureSnapshot(covered wal.LSN) ([]byte, error) {
	buf := append([]byte(nil), snapMagic...)
	body := make([]byte, 0, 1<<16)
	body = binary.LittleEndian.AppendUint64(body, uint64(e.admin))
	body = appendUv(body, e.txns.NextXID())
	body = appendUv(body, e.txns.CommitSeq())
	body = appendUv(body, e.replApplied.Load())
	body = appendUv(body, uint64(covered))

	// Heap scans: mem-table versions, plus the set of xids any live
	// version references (their statuses must survive log truncation).
	type memTable struct {
		name string
		vers []struct {
			tid storage.TID
			tv  storage.TupleVersion
		}
	}
	refXIDs := make(map[storage.XID]bool)
	var memTables []memTable
	tables := e.cat.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, t := range tables {
		mt := memTable{name: t.Name}
		isMem := !t.OnDisk
		t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
			refXIDs[tv.Xmin] = true
			if tv.Xmax != storage.InvalidXID {
				refXIDs[tv.Xmax] = true
			}
			if isMem {
				cp := *tv
				cp.Row = append([]types.Value(nil), tv.Row...)
				mt.vers = append(mt.vers, struct {
					tid storage.TID
					tv  storage.TupleVersion
				}{tid, cp})
			}
			return true
		})
		if isMem {
			memTables = append(memTables, mt)
		}
	}

	var committed [][2]uint64
	var aborted []uint64
	for xid := range refXIDs {
		if seq, ok := e.txns.Committed(xid); ok {
			committed = append(committed, [2]uint64{uint64(xid), seq})
		} else if e.txns.Aborted(xid) {
			aborted = append(aborted, uint64(xid))
		}
		// In-flight xids carry no status; if they commit, the commit
		// record lands in the new log generation.
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i][0] < committed[j][0] })
	sort.Slice(aborted, func(i, j int) bool { return aborted[i] < aborted[j] })
	body = appendUv(body, uint64(len(committed)))
	for _, c := range committed {
		body = appendUv(body, c[0])
		body = appendUv(body, c[1])
	}
	body = appendUv(body, uint64(len(aborted)))
	for _, x := range aborted {
		body = appendUv(body, x)
	}

	prins, tags, dels := e.auth.Export()
	sort.Slice(prins, func(i, j int) bool { return prins[i].ID < prins[j].ID })
	sort.Slice(tags, func(i, j int) bool { return tags[i].ID < tags[j].ID })
	body = appendUv(body, uint64(len(prins)))
	for _, p := range prins {
		body = appendUv(body, uint64(p.ID))
		body = appendStr(body, p.Name)
	}
	body = appendUv(body, uint64(len(tags)))
	for _, t := range tags {
		body = appendUv(body, uint64(t.ID))
		body = appendUv(body, uint64(t.Owner))
		body = appendStr(body, t.Name)
		body = appendUv(body, uint64(len(t.Parents)))
		for _, p := range t.Parents {
			body = appendUv(body, uint64(p))
		}
	}
	body = appendUv(body, uint64(len(dels)))
	for _, d := range dels {
		body = appendUv(body, uint64(d.Tag))
		body = appendUv(body, uint64(d.Grantor))
		body = appendUv(body, uint64(d.Grantee))
	}

	e.ddlMu.Lock()
	ddl := append([]ddlEntry(nil), e.ddlLog...)
	e.ddlMu.Unlock()
	body = appendUv(body, uint64(len(ddl)))
	for _, d := range ddl {
		body = appendUv(body, d.Principal)
		body = appendStr(body, d.Text)
	}

	body = e.appendSequenceSnapshot(body)

	body = appendUv(body, uint64(len(memTables)))
	var err error
	for _, mt := range memTables {
		body = appendStr(body, mt.name)
		body = appendUv(body, uint64(len(mt.vers)))
		for _, v := range mt.vers {
			body = appendUv(body, uint64(v.tid))
			body = appendUv(body, uint64(v.tv.Xmin))
			body = appendUv(body, uint64(v.tv.Xmax))
			if body, err = label.AppendEncode(body, v.tv.Label); err != nil {
				return nil, err
			}
			if body, err = label.AppendEncode(body, v.tv.ILabel); err != nil {
				return nil, err
			}
			if body, err = types.EncodeRow(body, v.tv.Row); err != nil {
				return nil, err
			}
		}
	}

	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))), nil
}

// snapReader decodes the snapshot body with panic-based truncation
// handling (the CRC has already vouched for the bytes).
type snapReader struct{ b []byte }

var errSnapTruncated = fmt.Errorf("engine: truncated snapshot")

func (r *snapReader) uv() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		panic(errSnapTruncated)
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) str() string {
	n := r.uv()
	if uint64(len(r.b)) < n {
		panic(errSnapTruncated)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *snapReader) label() label.Label {
	l, n, err := label.Decode(r.b)
	if err != nil {
		panic(errSnapTruncated)
	}
	r.b = r.b[n:]
	return l
}

func (r *snapReader) row() []types.Value {
	row, n, err := types.DecodeRow(r.b)
	if err != nil {
		panic(errSnapTruncated)
	}
	r.b = r.b[n:]
	return row
}

// loadSnapshot restores engine state from the checkpoint snapshot, if
// one exists.
func (e *Engine) loadSnapshot() (err error) {
	data, rerr := os.ReadFile(e.snapPath())
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil
		}
		return rerr
	}
	if len(data) < len(snapMagic)+12 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return fmt.Errorf("engine: %s is not a snapshot", e.snapPath())
	}
	body := data[len(snapMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != wantCRC {
		return fmt.Errorf("engine: snapshot %s is corrupt (crc mismatch)", e.snapPath())
	}
	defer func() {
		if rec := recover(); rec != nil {
			if rec == errSnapTruncated {
				err = errSnapTruncated
				return
			}
			panic(rec)
		}
	}()
	r := &snapReader{b: body}

	if len(r.b) < 8 {
		return errSnapTruncated
	}
	e.admin = authority.Principal(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	nextXID := r.uv()
	commitSeq := r.uv()
	e.txns.RestoreCounters(nextXID, commitSeq)
	e.replApplied.Store(r.uv())
	e.snapLSN = wal.LSN(r.uv())

	for n := r.uv(); n > 0; n-- {
		xid := r.uv()
		seq := r.uv()
		e.txns.RestoreCommitted(storage.XID(xid), seq)
	}
	for n := r.uv(); n > 0; n-- {
		e.txns.RestoreAborted(storage.XID(r.uv()))
	}

	for n := r.uv(); n > 0; n-- {
		id := r.uv()
		name := r.str()
		e.auth.RestorePrincipal(authority.Principal(id), name)
	}
	for n := r.uv(); n > 0; n-- {
		id := r.uv()
		owner := r.uv()
		name := r.str()
		parents := make([]uint64, r.uv())
		for i := range parents {
			parents[i] = r.uv()
		}
		if err := e.restoreTag(id, owner, name, parents); err != nil {
			return err
		}
	}
	for n := r.uv(); n > 0; n-- {
		tag := r.uv()
		grantor := r.uv()
		grantee := r.uv()
		e.auth.RestoreDelegation(authority.Principal(grantor), authority.Principal(grantee), label.Tag(tag))
	}

	nDDL := r.uv()
	ddl := make([]ddlEntry, 0, nDDL)
	for i := uint64(0); i < nDDL; i++ {
		p := r.uv()
		text := r.str()
		ddl = append(ddl, ddlEntry{Principal: p, Text: text})
	}
	e.ddlLog = ddl
	for _, d := range ddl {
		if err := e.applyDDL(authority.Principal(d.Principal), d.Text); err != nil {
			return fmt.Errorf("snapshot ddl %q: %w", d.Text, err)
		}
	}

	e.loadSequenceSnapshot(r)

	for n := r.uv(); n > 0; n-- {
		name := r.str()
		t, ok := e.cat.Table(name)
		for v := r.uv(); v > 0; v-- {
			tid := storage.TID(r.uv())
			tv := storage.TupleVersion{Xmin: storage.XID(r.uv()), Xmax: storage.XID(r.uv())}
			tv.Label = r.label()
			tv.ILabel = r.label()
			tv.Row = r.row()
			if !ok {
				return fmt.Errorf("engine: snapshot references unknown table %q", name)
			}
			if err := e.restoreVersion(t, tid, tv); err != nil {
				return err
			}
		}
	}
	return nil
}
