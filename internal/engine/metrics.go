package engine

import "ifdb/internal/obs"

// Engine-layer metrics. Registered at package init so every series a
// binary can emit is present (at zero) from the first /metrics scrape.
// Counters are process-wide: a process hosting several engines (the
// bench harness) aggregates across them.
var (
	mParses = obs.NewCounter("ifdb_engine_parses_total",
		"SQL texts parsed (parse-cache misses)")
	mParseCacheHits = obs.NewCounter("ifdb_engine_parse_cache_hits_total",
		"statement-cache hits that skipped the parser")
	mRowsScanned = obs.NewCounter("ifdb_engine_rows_scanned_total",
		"tuple versions visited by table and index scans")
	mPlans = obs.NewCounter("ifdb_engine_plans_total",
		"query plans built (plan-cache misses)")
	mPlanCacheHits = obs.NewCounter("ifdb_engine_plan_cache_hits_total",
		"plan-cache hits that skipped analysis")
	mTxnCommits = obs.NewCounter("ifdb_txn_commits_total",
		"committed transactions (explicit and autocommit)")
	mTxnAborts = obs.NewCounter("ifdb_txn_aborts_total",
		"aborted transactions, including failed commits")
	mCancels = obs.NewCounter("ifdb_stmt_cancels_total",
		"statements interrupted by out-of-band cancel")
	mLabelDenials = obs.NewCounter("ifdb_ifc_label_denials_total",
		"tuples hidden by Query by Label (secrecy or integrity)")
	mDeclass = obs.NewCounter("ifdb_ifc_declassifications_total",
		"successful declassifications (secrecy tag removals)")
	mAuthChecks = obs.NewCounter("ifdb_ifc_authority_checks_total",
		"authority checks performed for IFC operations")
	mAuthDenials = obs.NewCounter("ifdb_ifc_authority_denials_total",
		"authority checks that failed")
)

// StmtStats is the timing breakdown of a session's most recent
// statement, keyed by the client-supplied trace ID. The wire server
// fills PlanNs (pre-execution admission: label sync, shard fencing,
// read-your-writes waits) and StreamNs (result streaming); the engine
// fills ParseNs and ExecNs.
type StmtStats struct {
	TraceID  uint64
	SQL      string
	ParseNs  int64
	PlanNs   int64
	ExecNs   int64
	StreamNs int64
}

// SetTraceID stamps the trace ID carried by the next statement.
func (s *Session) SetTraceID(id uint64) { s.stats.TraceID = id }

// TraceID returns the current statement trace ID (0 = untraced).
func (s *Session) TraceID() uint64 { return s.stats.TraceID }

// beginStmtStats resets the per-statement breakdown, keeping the trace
// ID already stamped for this statement.
func (s *Session) beginStmtStats(sql string) {
	s.stats = StmtStats{TraceID: s.stats.TraceID, SQL: sql}
}

// NotePlanNs records the server-side pre-execution time.
func (s *Session) NotePlanNs(ns int64) { s.stats.PlanNs = ns }

// NoteStreamNs records the server-side result-streaming time.
func (s *Session) NoteStreamNs(ns int64) { s.stats.StreamNs = ns }

// LastStmtStats returns the most recent statement's breakdown.
func (s *Session) LastStmtStats() StmtStats { return s.stats }
