package engine

import (
	"testing"

	"ifdb/internal/types"
)

// Additional DDL-shape coverage: exotic but legal CREATE TABLE forms,
// index backfill, and catalog name rules.

func TestCreateTableTypeZoo(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE zoo (
		a INT, b INTEGER, c BIGINT, d SERIAL,
		e TEXT, f VARCHAR(10), g CHAR(2),
		h BOOLEAN, i BOOL,
		j TIMESTAMP,
		k DOUBLE PRECISION, l FLOAT, m REAL,
		n NUMERIC(10, 2), o DECIMAL
	)`)
	mustExec(t, s, `INSERT INTO zoo VALUES (
		1, 2, 3, 4, 't', 'v', 'ch', TRUE, FALSE,
		'2013-04-15 09:00:00', 1.5, 2.5, 3.5, 4.25, 5.0
	)`)
	res := mustExec(t, s, `SELECT a, e, h, k FROM zoo`)
	expectRows(t, res, "1|t|t|1.5")
	res = mustExec(t, s, `SELECT j FROM zoo`)
	if res.Rows[0][0].Kind() != types.KindTime {
		t.Fatalf("timestamp kind: %v", res.Rows[0][0].Kind())
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `CREATE TABLE IF NOT EXISTS t (a BIGINT)`)
	if _, err := s.Exec(`CREATE TABLE t (a BIGINT)`); err == nil {
		t.Fatal("duplicate table accepted")
	}
	// A view may not shadow a table and vice versa.
	mustExec(t, s, `CREATE VIEW v AS SELECT a FROM t`)
	if _, err := s.Exec(`CREATE TABLE v (x BIGINT)`); err == nil {
		t.Fatal("table shadowing view accepted")
	}
	if _, err := s.Exec(`CREATE VIEW t AS SELECT 1`); err == nil {
		t.Fatal("view shadowing table accepted")
	}
}

func TestCreateIndexBackfill(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE b (id BIGINT PRIMARY KEY, grp BIGINT)`)
	for i := int64(0); i < 100; i++ {
		mustExec(t, s, `INSERT INTO b VALUES ($1, $2)`, types.NewInt(i), types.NewInt(i%7))
	}
	// Index created after data exists must serve queries immediately.
	mustExec(t, s, `CREATE INDEX b_grp ON b (grp)`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM b WHERE grp = 3`)
	expectRows(t, res, "14")
	// And stay maintained.
	mustExec(t, s, `INSERT INTO b VALUES (200, 3)`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM b WHERE grp = 3`)
	expectRows(t, res, "15")
	mustExec(t, s, `DELETE FROM b WHERE id = 200`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM b WHERE grp = 3`)
	expectRows(t, res, "14")
}

func TestTriggerOnMissingProcRejected(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	if _, err := s.Exec(`CREATE TRIGGER x AFTER INSERT ON t EXECUTE PROCEDURE ghost`); err == nil {
		t.Fatal("trigger with missing proc accepted")
	}
	if err := e.RegisterProc("real", func(*Session, []types.Value) (types.Value, error) {
		return types.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TRIGGER x AFTER INSERT ON t EXECUTE PROCEDURE real`)
	if _, err := s.Exec(`CREATE TRIGGER x AFTER INSERT ON t EXECUTE PROCEDURE real`); err == nil {
		t.Fatal("duplicate trigger accepted")
	}
}

func TestDuplicateProcRegistration(t *testing.T) {
	e := MustNew(Config{})
	fn := func(*Session, []types.Value) (types.Value, error) { return types.Null, nil }
	if err := e.RegisterProc("p", fn); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProc("p", fn); err == nil {
		t.Fatal("duplicate proc accepted")
	}
	// Closure procs share the namespace.
	if err := e.RegisterClosureProc("p", fn, e.Admin(), e.Admin(), nil); err == nil {
		t.Fatal("closure proc over existing name accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE a (x BIGINT); CREATE TABLE b (y BIGINT) USING DISK`)
	mustExec(t, s, `CREATE VIEW v AS SELECT x FROM a`)
	mustExec(t, s, `INSERT INTO a VALUES (1), (2)`)
	st := e.Stats()
	if st.Tables != 2 || st.Views != 1 || st.DiskTables != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Tuples != 2 || st.TupleBytes <= 0 {
		t.Fatalf("tuple stats: %+v", st)
	}
}
