package engine

import (
	"errors"
	"time"

	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// Prepared statements and statement cancellation: the engine half of
// the client API v2 (see ARCHITECTURE.md § Client API v2).
//
// A Prepared pins a statement batch's parsed AST for the lifetime of
// the handle, so repeated executions skip the parser (and even the
// parse-cache lookup) entirely — the optimization every real DBMS
// has, now reachable over the wire instead of only engine-side.

// ErrCanceled is returned by a statement interrupted by
// Session.Cancel. The statement's transaction is aborted through the
// ordinary error path: an autocommit transaction rolls back, an
// explicit one is aborted wholesale (PostgreSQL semantics).
var ErrCanceled = errors.New("engine: statement canceled")

// Prepared is a parsed, pinned statement batch. It is bound to no
// session (the AST is read-only during execution) but carries no
// synchronization: callers serialize executions per session as they
// do every other session operation.
type Prepared struct {
	// Text is the original statement batch.
	Text string
	// NumParams is the largest positional-parameter index the batch
	// binds.
	NumParams int

	// stmts is the pinned AST; nil when the batch contains DDL, whose
	// AST is consumed by execution and must be re-parsed per run.
	stmts []sql.Statement
}

// Prepare parses a statement batch once and pins the AST. The parse
// goes through the engine's parse cache, so preparing an
// already-cached text costs one map lookup and no parser invocation.
func (s *Session) Prepare(query string) (*Prepared, error) {
	stmts, err := s.eng.parseCached(query)
	if err != nil {
		return nil, err
	}
	p := &Prepared{Text: query, NumParams: sql.MaxParam(stmts)}
	if cacheableStmts(stmts) {
		p.stmts = stmts
	}
	return p, nil
}

// cacheableStmts reports whether a batch's AST survives execution:
// read and DML statements do; DDL ASTs are consumed by execution and
// must stay private to one run.
func cacheableStmts(stmts []sql.Statement) bool {
	for _, st := range stmts {
		switch st.(type) {
		case *sql.SelectStmt, *sql.ExplainStmt, *sql.InsertStmt, *sql.UpdateStmt,
			*sql.DeleteStmt, *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
		default:
			return false
		}
	}
	return true
}

// ExecPrepared executes a prepared batch with no parser involvement
// (DDL batches fall back to text execution, re-parsing per run).
func (s *Session) ExecPrepared(p *Prepared, params ...types.Value) (*Result, error) {
	if p.stmts == nil {
		return s.Exec(p.Text, params...)
	}
	if top := s.stmtTx == nil || s.stmtTx.Done(); top {
		// ParseNs stays zero: that a prepared execution never parses is
		// exactly what the breakdown should show.
		s.beginStmtStats(p.Text)
		t0 := time.Now()
		defer func() { s.stats.ExecNs = time.Since(t0).Nanoseconds() }()
	}
	if len(p.stmts) == 0 {
		return &Result{}, nil
	}
	var res *Result
	var err error
	for _, st := range p.stmts {
		res, err = s.ExecStmt(st, params...)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Cancellation

// Cancel interrupts the session's currently running statement: the
// statement fails with ErrCanceled at its next check point (per-row
// in scans, per-slice in sleep()), and the failure aborts its
// transaction through the ordinary error path. Safe to call from any
// goroutine — it is the one session operation that is: the wire
// server invokes it from an out-of-band cancel connection.
//
// Cancellation is flag-based, so a cancel that arrives between
// statements marks the *next* statement (the same benign race
// PostgreSQL's cancel protocol has); ResetCancel clears the flag
// before a new statement when the caller can bound the race.
func (s *Session) Cancel() {
	s.canceled.Store(true)
	mCancels.Inc()
}

// ResetCancel clears a pending cancel. The wire server calls it as
// each statement arrives, bounding the cancel's scope to the
// statement that was actually running when it was sent.
func (s *Session) ResetCancel() { s.canceled.Store(false) }

// Canceled reports whether a cancel is pending. The wire server polls
// it between ROWS chunks so a cancel that lands after execution but
// mid-stream still cuts the response short instead of pushing the
// rest of a large result at an uninterested client.
func (s *Session) Canceled() bool { return s.canceled.Load() }

// checkCanceled is the statement-side check point.
func (s *Session) checkCanceled() error {
	if s.canceled.Load() {
		return ErrCanceled
	}
	return nil
}

// cancelableSleep sleeps for d in short slices, aborting early (with
// ErrCanceled) when the session is canceled — the sleep() SQL builtin,
// which exists so cancellation can be exercised deterministically.
func (s *Session) cancelableSleep(d time.Duration) error {
	const slice = 2 * time.Millisecond
	deadline := time.Now().Add(d)
	for {
		if err := s.checkCanceled(); err != nil {
			return err
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		if remain > slice {
			remain = slice
		}
		time.Sleep(remain)
	}
}
