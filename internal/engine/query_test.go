package engine

import (
	"fmt"
	"strings"
	"testing"

	"ifdb/internal/types"
)

// newTestDB builds an engine with a small fleet schema used across the
// query tests.
func newTestDB(t *testing.T, ifc bool) (*Engine, *Session) {
	t.Helper()
	e := MustNew(Config{IFC: ifc})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `
	CREATE TABLE dept (
		did BIGINT PRIMARY KEY,
		dname TEXT NOT NULL
	);
	CREATE TABLE emp (
		eid BIGINT PRIMARY KEY,
		name TEXT NOT NULL,
		did BIGINT REFERENCES dept (did),
		salary DOUBLE PRECISION,
		boss BIGINT
	);
	CREATE INDEX emp_dept ON emp (did);
	`)
	for i, d := range []string{"eng", "sales", "empty"} {
		mustExec(t, s, `INSERT INTO dept VALUES ($1, $2)`, types.NewInt(int64(i+1)), types.NewText(d))
	}
	rows := []struct {
		id     int64
		name   string
		dept   int64
		salary float64
		boss   types.Value
	}{
		{1, "ada", 1, 120, types.Null},
		{2, "bob", 1, 95, types.NewInt(1)},
		{3, "cyd", 2, 80, types.NewInt(1)},
		{4, "dee", 2, 80, types.NewInt(3)},
		{5, "eli", 1, 60, types.NewInt(2)},
	}
	for _, r := range rows {
		mustExec(t, s, `INSERT INTO emp VALUES ($1, $2, $3, $4, $5)`,
			types.NewInt(r.id), types.NewText(r.name), types.NewInt(r.dept),
			types.NewFloat(r.salary), r.boss)
	}
	return e, s
}

func mustExec(t *testing.T, s *Session, q string, params ...types.Value) *Result {
	t.Helper()
	res, err := s.Exec(q, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expectRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowStrings(res)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %q want %q (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSelectBasics(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT name, salary FROM emp WHERE salary > 80 ORDER BY salary DESC`)
	expectRows(t, res, "ada|120", "bob|95")
	if res.Cols[0] != "name" || res.Cols[1] != "salary" {
		t.Fatalf("cols: %v", res.Cols)
	}

	res = mustExec(t, s, `SELECT * FROM dept ORDER BY did LIMIT 2`)
	expectRows(t, res, "1|eng", "2|sales")

	res = mustExec(t, s, `SELECT dname FROM dept ORDER BY did LIMIT 1 OFFSET 1`)
	expectRows(t, res, "sales")

	res = mustExec(t, s, `SELECT DISTINCT salary FROM emp ORDER BY salary`)
	expectRows(t, res, "60", "80", "95", "120")

	res = mustExec(t, s, `SELECT name AS who, salary * 2 doubled FROM emp WHERE eid = 1`)
	if res.Cols[0] != "who" || res.Cols[1] != "doubled" {
		t.Fatalf("aliases: %v", res.Cols)
	}
	expectRows(t, res, "ada|240")
}

func TestSelectNoFrom(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT 1 + 1, 'hi'`)
	expectRows(t, res, "2|hi")
}

func TestOrderByAliasAndExpr(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT name, salary * -1 AS negsal FROM emp ORDER BY negsal`)
	if res.Rows[0][0].Text() != "ada" {
		t.Fatalf("alias order: %v", rowStrings(res))
	}
	res = mustExec(t, s, `SELECT name FROM emp ORDER BY salary DESC, name ASC LIMIT 3`)
	expectRows(t, res, "ada", "bob", "cyd")
}

func TestJoins(t *testing.T) {
	_, s := newTestDB(t, false)
	// Inner join (index nested-loop through emp_dept or dept pkey).
	res := mustExec(t, s, `
		SELECT e.name, d.dname FROM emp e JOIN dept d ON e.did = d.did
		WHERE d.dname = 'sales' ORDER BY e.name`)
	expectRows(t, res, "cyd|sales", "dee|sales")

	// Left join with NULLs for the empty department.
	res = mustExec(t, s, `
		SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON e.did = d.did
		ORDER BY d.did, e.name`)
	if len(res.Rows) != 6 {
		t.Fatalf("left join rows: %v", rowStrings(res))
	}
	last := res.Rows[5]
	if last[0].Text() != "empty" || !last[1].IsNull() {
		t.Fatalf("left join null row: %v", last)
	}

	// Self join via aliases (nested-loop/hash path: boss is unindexed).
	res = mustExec(t, s, `
		SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.eid
		ORDER BY e.name`)
	expectRows(t, res, "bob|ada", "cyd|ada", "dee|cyd", "eli|bob")

	// Three-way join.
	res = mustExec(t, s, `
		SELECT e.name, b.name, d.dname
		FROM emp e JOIN emp b ON e.boss = b.eid JOIN dept d ON e.did = d.did
		WHERE d.dname = 'eng' ORDER BY e.name`)
	expectRows(t, res, "bob|ada|eng", "eli|bob|eng")

	// Join with non-equi ON falls back to nested loop.
	res = mustExec(t, s, `
		SELECT e.name, b.name FROM emp e JOIN emp b ON e.salary < b.salary AND b.eid = 1
		ORDER BY e.name`)
	expectRows(t, res, "bob|ada", "cyd|ada", "dee|ada", "eli|ada")
}

func TestAggregates(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp`)
	expectRows(t, res, "5|435|87|60|120")

	res = mustExec(t, s, `SELECT COUNT(boss) FROM emp`)
	expectRows(t, res, "4") // NULL boss ignored

	res = mustExec(t, s, `SELECT COUNT(DISTINCT salary) FROM emp`)
	expectRows(t, res, "4")

	res = mustExec(t, s, `
		SELECT d.dname, COUNT(*) AS n, SUM(e.salary) AS total
		FROM emp e JOIN dept d ON e.did = d.did
		GROUP BY d.dname ORDER BY total DESC`)
	expectRows(t, res, "eng|3|275", "sales|2|160")

	res = mustExec(t, s, `
		SELECT did, COUNT(*) FROM emp GROUP BY did HAVING COUNT(*) > 2`)
	expectRows(t, res, "1|3")

	// Aggregate over empty input (no GROUP BY): one row.
	res = mustExec(t, s, `SELECT COUNT(*), SUM(salary) FROM emp WHERE salary > 1000`)
	expectRows(t, res, "0|NULL")

	// Aggregate over empty input with GROUP BY: no rows.
	res = mustExec(t, s, `SELECT did, COUNT(*) FROM emp WHERE salary > 1000 GROUP BY did`)
	if len(res.Rows) != 0 {
		t.Fatalf("grouped empty: %v", rowStrings(res))
	}

	// Expression over aggregates.
	res = mustExec(t, s, `SELECT MAX(salary) - MIN(salary) FROM emp`)
	expectRows(t, res, "60")
}

func TestSubqueries(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)`)
	expectRows(t, res, "ada")

	res = mustExec(t, s, `
		SELECT name FROM emp WHERE did IN (SELECT did FROM dept WHERE dname = 'sales')
		ORDER BY name`)
	expectRows(t, res, "cyd", "dee")

	res = mustExec(t, s, `SELECT dname FROM dept WHERE EXISTS (SELECT 1 FROM emp) ORDER BY did LIMIT 1`)
	expectRows(t, res, "eng")

	// FROM subquery.
	res = mustExec(t, s, `
		SELECT t.dname, t.n FROM (
			SELECT d.dname dname, COUNT(*) n FROM emp e JOIN dept d ON e.did = d.did GROUP BY d.dname
		) t WHERE t.n = 2`)
	expectRows(t, res, "sales|2")

	// Scalar subquery with more than one row errors.
	if _, err := s.Exec(`SELECT (SELECT salary FROM emp)`); err == nil {
		t.Fatal("multi-row scalar subquery accepted")
	}
}

func TestViews(t *testing.T) {
	_, s := newTestDB(t, false)
	mustExec(t, s, `CREATE VIEW wellpaid AS SELECT name, salary FROM emp WHERE salary >= 95`)
	res := mustExec(t, s, `SELECT name FROM wellpaid ORDER BY name`)
	expectRows(t, res, "ada", "bob")

	// Column renames + alias + join against a view.
	mustExec(t, s, `CREATE VIEW deptnames (id, label) AS SELECT did, dname FROM dept`)
	res = mustExec(t, s, `SELECT v.label FROM deptnames v WHERE v.id = 2`)
	expectRows(t, res, "sales")

	res = mustExec(t, s, `
		SELECT w.name, v.label FROM wellpaid w JOIN emp e ON w.name = e.name
		JOIN deptnames v ON e.did = v.id ORDER BY w.name`)
	expectRows(t, res, "ada|eng", "bob|eng")

	// Views are read-only.
	if _, err := s.Exec(`INSERT INTO wellpaid VALUES ('zed', 1)`); err != ErrReadOnlyView {
		t.Fatalf("insert into view: %v", err)
	}
	if _, err := s.Exec(`UPDATE wellpaid SET salary = 1`); err != ErrReadOnlyView {
		t.Fatalf("update view: %v", err)
	}
	if _, err := s.Exec(`DELETE FROM wellpaid`); err != ErrReadOnlyView {
		t.Fatalf("delete view: %v", err)
	}
}

func TestStarExpansion(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT e.*, d.dname FROM emp e JOIN dept d ON e.did = d.did WHERE e.eid = 1`)
	if len(res.Cols) != 6 {
		t.Fatalf("cols: %v", res.Cols)
	}
	if res.Cols[5] != "dname" {
		t.Fatalf("cols: %v", res.Cols)
	}
	if _, err := s.Exec(`SELECT zzz.* FROM emp`); err == nil {
		t.Fatal("bogus qualified star accepted")
	}
}

func TestIndexVsSeqScanAgree(t *testing.T) {
	_, s := newTestDB(t, false)
	// eid is the pkey: equality uses the index; an inequality forces a
	// seq scan. Both must agree with each other.
	ixRes := mustExec(t, s, `SELECT name FROM emp WHERE eid = 3`)
	seqRes := mustExec(t, s, `SELECT name FROM emp WHERE eid >= 3 AND eid <= 3`)
	expectRows(t, ixRes, "cyd")
	expectRows(t, seqRes, "cyd")
	// Composite prefix: build a table with a two-column key.
	mustExec(t, s, `CREATE TABLE kv (a BIGINT, b BIGINT, v TEXT, PRIMARY KEY (a, b))`)
	for a := int64(1); a <= 3; a++ {
		for b := int64(1); b <= 3; b++ {
			mustExec(t, s, `INSERT INTO kv VALUES ($1, $2, $3)`,
				types.NewInt(a), types.NewInt(b), types.NewText(fmt.Sprintf("%d-%d", a, b)))
		}
	}
	res := mustExec(t, s, `SELECT v FROM kv WHERE a = 2 ORDER BY b`)
	expectRows(t, res, "2-1", "2-2", "2-3")
	res = mustExec(t, s, `SELECT v FROM kv WHERE a = 2 AND b = 3`)
	expectRows(t, res, "2-3")
}

func TestInsertSelectAndParams(t *testing.T) {
	_, s := newTestDB(t, false)
	mustExec(t, s, `CREATE TABLE rich (name TEXT, salary DOUBLE PRECISION)`)
	res := mustExec(t, s, `INSERT INTO rich SELECT name, salary FROM emp WHERE salary > $1`,
		types.NewFloat(90))
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM rich`)
	expectRows(t, res, "2")
}

func TestBuiltinFunctionsInQueries(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `SELECT upper(name) FROM emp WHERE eid = 1`)
	expectRows(t, res, "ADA")
	res = mustExec(t, s, `SELECT name FROM emp WHERE name LIKE '_e%' ORDER BY name`)
	expectRows(t, res, "dee")
}

func TestStoredProcFromSQL(t *testing.T) {
	e, s := newTestDB(t, false)
	if err := e.RegisterProc("double_it", func(s *Session, args []types.Value) (types.Value, error) {
		return types.NewInt(args[0].Int() * 2), nil
	}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, `SELECT double_it(21)`)
	expectRows(t, res, "42")
	// Procs can issue queries through the calling session (nested
	// statement execution shares the statement transaction).
	if err := e.RegisterProc("emp_count", func(s *Session, _ []types.Value) (types.Value, error) {
		r, _, err := s.QueryRow(`SELECT COUNT(*) FROM emp`)
		if err != nil {
			return types.Null, err
		}
		return r[0], nil
	}); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, `SELECT emp_count()`)
	expectRows(t, res, "5")
}

func TestErrorsSurface(t *testing.T) {
	_, s := newTestDB(t, false)
	for _, q := range []string{
		`SELECT zzz FROM emp`,
		`SELECT * FROM nosuch`,
		`INSERT INTO nosuch VALUES (1)`,
		`SELECT name FROM emp ORDER BY zzz`,
		`SELECT * FROM emp LIMIT 'x'`,
		`INSERT INTO dept VALUES (1)`, // arity
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("%q succeeded", q)
		}
	}
}
