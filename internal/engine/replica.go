// Replica mode: continuous application of a primary's WAL stream.
//
// A replica engine is a normal durable engine whose state changes
// arrive exclusively through ApplyReplicated: shipped WAL records are
// buffered per transaction and applied at their commit record through
// the same restore paths crash recovery uses (restoreVersion,
// ForceXmax, RestoreCommitted, applyDDL). Applying at commit keeps the
// replica's visible state always transaction-consistent — concurrent
// read sessions, which take ordinary MVCC snapshots, never observe a
// half-applied transaction.
//
// Durability: every shipped batch is appended verbatim (raw frames,
// primary CRCs intact) to the replica's own WAL, followed by a
// RecReplLSN marker carrying the *barrier* — the primary LSN below
// which every transaction is resolved. A restarted replica recovers
// its state from its own log, reads the last barrier, and resumes the
// stream there; records between the barrier and the connection loss
// are re-shipped and re-applied idempotently, exactly like recovery
// replay.
//
// Read-only enforcement: sessions on a replica run their statements in
// XID-less read-only transactions (a local XID could collide with a
// primary XID arriving later in the stream) and every write, DDL, or
// authority mutation is rejected with ErrReadOnlyReplica. Label checks
// run unchanged — the paper's Query by Label model confines replica
// reads exactly as it does primary reads, over the replicated
// authority state.
package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"ifdb/internal/authority"
	"ifdb/internal/label"
	"ifdb/internal/pager"
	"ifdb/internal/storage"
	"ifdb/internal/wal"
)

// ErrReadOnlyReplica is returned for any mutating operation on a
// replica. Writes must go to the primary.
var ErrReadOnlyReplica = errors.New("engine: read-only replica: writes must go to the primary")

// ErrNotReplica is returned by Promote on an engine that is not (or is
// no longer) a replica.
var ErrNotReplica = errors.New("engine: not a replica")

// replTxn buffers one in-flight replicated transaction.
type replTxn struct {
	firstLSN wal.LSN // LSN of its earliest record (resume barrier)
	recs     []wal.Record
}

// IsReplica reports whether the engine is in replica mode (false again
// after Promote).
func (e *Engine) IsReplica() bool { return e.replica.Load() }

// Epoch returns the WAL promotion generation (0 without a DataDir).
// Replication fencing compares it: LSN spaces and byte streams are
// only meaningful within one epoch chain.
func (e *Engine) Epoch() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.Epoch()
}

// replaying reports whether DDL is being re-executed from the log —
// during crash recovery, or continuously on a replica — in which case
// the executors tolerate already-present effects and skip checks
// vetted at original execution time, and nothing is re-logged (the
// replica appends the shipped records verbatim instead).
func (e *Engine) replaying() bool { return e.recovering || e.replica.Load() }

// Promote turns a replica engine into a writable primary. The caller
// must have stopped the replication applier first (repl.Follower does;
// its goroutine is the only writer of replPending). Promotion:
//
//  1. resolves replicated transactions still in flight at the cut —
//     their writes were buffered, never applied, and the old primary
//     is gone, so they abort (logged, like recovery orphans, so a
//     future follower streaming this log region can resolve them);
//  2. bumps the WAL epoch, durably, fencing the old primary: its
//     epoch-stale streams are refused everywhere from here on;
//  3. opens the engine for writes.
//
// The order matters: nothing may commit under the new epoch until the
// epoch itself is on stable storage.
func (e *Engine) Promote() error {
	if !e.IsReplica() {
		return ErrNotReplica
	}
	for xid := range e.replPending {
		e.txns.RestoreAborted(xid)
		if _, err := e.wal.Append(&wal.Record{Type: wal.RecAbort, XID: xid}); err != nil {
			return err
		}
	}
	e.replPending = nil
	if _, err := e.wal.BumpEpoch(); err != nil {
		return err
	}
	if err := e.wal.Sync(); err != nil {
		return err
	}
	e.replica.Store(false)
	return nil
}

// ReplAppliedLSN returns the primary LSN this replica has applied
// through, with every earlier transaction resolved. Streaming resumes
// here after a restart.
func (e *Engine) ReplAppliedLSN() wal.LSN { return wal.LSN(e.replApplied.Load()) }

// ResetReplApply drops buffered in-flight transactions. The follower
// calls it before (re)connecting: the stream resumes at the barrier,
// so every buffered record will be shipped again.
func (e *Engine) ResetReplApply() { e.replPending = nil }

// SetReplResumeLSN durably records the stream position a basebackup
// left this replica at (its recovered state corresponds to primary
// LSN lsn, with nothing in flight).
func (e *Engine) SetReplResumeLSN(lsn wal.LSN) error {
	if !e.IsReplica() {
		return fmt.Errorf("engine: SetReplResumeLSN on a non-replica")
	}
	e.replApplied.Store(uint64(lsn))
	l, err := e.wal.Append(&wal.Record{Type: wal.RecReplLSN, Seq: uint64(lsn)})
	if err != nil {
		return err
	}
	return e.wal.WaitDurable(l)
}

// ApplyReplicated applies one shipped batch: recs are the decoded
// records (carrying primary LSNs), raw the verbatim frame bytes they
// were decoded from, upto the primary LSN just past the batch. Called
// only from the single applier goroutine.
func (e *Engine) ApplyReplicated(recs []wal.Record, raw []byte, upto wal.LSN) error {
	if !e.IsReplica() {
		return fmt.Errorf("engine: ApplyReplicated on a non-replica")
	}
	if e.replPending == nil {
		e.replPending = make(map[storage.XID]*replTxn)
	}
	for i := range recs {
		if err := e.applyReplRecord(&recs[i]); err != nil {
			return fmt.Errorf("engine: apply replicated record at primary lsn %d: %w", recs[i].LSN, err)
		}
	}

	// Log the batch verbatim, then the new barrier, then make both
	// durable per the sync mode. Apply-first/log-second, as on the
	// primary: a crash between apply and append just re-ships the
	// batch, and replay is idempotent.
	if _, err := e.wal.AppendRaw(raw); err != nil {
		return err
	}
	barrier := upto
	for _, p := range e.replPending {
		if p.firstLSN < barrier {
			barrier = p.firstLSN
		}
	}
	if barrier > e.ReplAppliedLSN() {
		e.replApplied.Store(uint64(barrier))
		lsn, err := e.wal.Append(&wal.Record{Type: wal.RecReplLSN, Seq: uint64(barrier)})
		if err != nil {
			return err
		}
		if err := e.wal.WaitDurable(lsn); err != nil {
			return err
		}
	}
	return nil
}

// applyReplRecord buffers or applies one record.
func (e *Engine) applyReplRecord(r *wal.Record) error {
	switch r.Type {
	case wal.RecBegin, wal.RecInsert, wal.RecSetXmax:
		p := e.replPending[r.XID]
		if p == nil {
			p = &replTxn{firstLSN: r.LSN}
			e.replPending[r.XID] = p
		}
		if r.Type != wal.RecBegin {
			p.recs = append(p.recs, *r)
		}
	case wal.RecCommit:
		p := e.replPending[r.XID]
		delete(e.replPending, r.XID)
		if p != nil {
			// Heap effects first, commit status second: a concurrent
			// reader either misses the commit entirely or sees all of
			// it, never a status without its rows.
			for i := range p.recs {
				if err := e.applyReplWrite(&p.recs[i]); err != nil {
					return err
				}
			}
		}
		e.txns.RestoreCommitted(r.XID, r.Seq)
	case wal.RecAbort:
		delete(e.replPending, r.XID)
		e.txns.RestoreAborted(r.XID)
	case wal.RecDDL:
		if err := e.applyDDL(authority.Principal(r.Principal), r.Text); err != nil {
			return fmt.Errorf("replicated ddl %q: %w", r.Text, err)
		}
		e.ddlMu.Lock()
		e.ddlLog = append(e.ddlLog, ddlEntry{Principal: r.Principal, Text: r.Text})
		e.ddlMu.Unlock()
	case wal.RecPrincipal:
		e.auth.RestorePrincipal(authority.Principal(r.Principal), r.Text)
	case wal.RecTag:
		if err := e.restoreTag(r.Tag, r.Owner, r.Text, r.Parents); err != nil {
			return err
		}
	case wal.RecDelegate:
		e.auth.RestoreDelegation(authority.Principal(r.From), authority.Principal(r.To), label.Tag(r.Tag))
	case wal.RecRevoke:
		// Idempotent restore: reconnects re-ship records past the
		// barrier, so the edge may already be gone.
		e.auth.RestoreRevoke(authority.Principal(r.From), authority.Principal(r.To), label.Tag(r.Tag))
	case wal.RecSeqVal:
		e.restoreSeqVal(r.Text, r.SeqKey, r.Value)
	case wal.RecCheckpointBegin, wal.RecCheckpointEnd, wal.RecReplLSN:
		// Primary checkpoint markers carry no state; RecReplLSN never
		// appears in a primary's log.
	default:
		return fmt.Errorf("unknown record type %v", r.Type)
	}
	return nil
}

// applyReplWrite applies one buffered tuple record of a committed
// transaction.
func (e *Engine) applyReplWrite(r *wal.Record) error {
	t, ok := e.cat.Table(r.Table)
	if !ok {
		return fmt.Errorf("unknown table %q", r.Table)
	}
	switch r.Type {
	case wal.RecInsert:
		return e.restoreVersion(t, r.TID, storage.TupleVersion{
			Row: r.Row, Label: r.Label, ILabel: r.ILabel, Xmin: r.XID,
		})
	case wal.RecSetXmax:
		t.Heap.(storage.RecoverableHeap).ForceXmax(r.TID, r.XID)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Basebackup (primary side)

// Basebackup ships a full state transfer for a follower too far behind
// the retained log (or starting fresh): it takes a checkpoint, then —
// still under the checkpoint lock, so no concurrent checkpoint
// rewrites the files — sends the snapshot and every disk table's
// pages (checksummed, consistent page images via the buffer pool).
// It returns the log base LSN the follower must stream from; onReady,
// if non-nil, receives that LSN while the checkpoint lock is still
// held, so the caller can pin its log subscription there before any
// later checkpoint could truncate past it.
func (e *Engine) Basebackup(send func(name string, data []byte) error, onReady func(start wal.LSN)) (wal.LSN, error) {
	if e.wal == nil {
		return 0, fmt.Errorf("engine: basebackup requires a DataDir")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("engine: basebackup on closed engine")
	}
	if err := e.checkpointLocked(); err != nil {
		return 0, err
	}
	if onReady != nil {
		onReady(e.wal.Base())
	}
	snap, err := os.ReadFile(e.snapPath())
	if err != nil {
		return 0, err
	}
	if err := send("checkpoint.snap", snap); err != nil {
		return 0, err
	}
	tables := e.cat.Tables()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
	for _, t := range tables {
		ph, ok := t.Heap.(*pager.PagedHeap)
		if !ok || !t.OnDisk {
			continue
		}
		var buf bytes.Buffer
		if err := ph.WritePagesTo(&buf); err != nil {
			return 0, fmt.Errorf("basebackup %s: %w", t.Name, err)
		}
		if err := send(strings.ToLower(t.Name)+".heap", buf.Bytes()); err != nil {
			return 0, err
		}
	}
	return e.wal.Base(), nil
}
