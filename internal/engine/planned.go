package engine

import (
	"strings"

	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/plan"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// The plan-based SELECT path: build (or fetch) an analyzed plan for
// the statement, open its iterator tree against this session's
// transaction and label state, and pull. Session-free analysis lives
// in internal/plan; everything here binds it to a session.

// planEntry is one cached plan with the epoch it was built under.
type planEntry struct {
	p     *plan.Plan
	epoch uint64
}

// invalidatePlans drops every cached plan by bumping the epoch (the
// cheap, lock-free half; stale sync.Map entries are deleted lazily on
// next lookup). Called on every DDL, DROP, and shard-guard change.
func (e *Engine) invalidatePlans() {
	e.planEpoch.Add(1)
}

// planFor returns the analyzed plan for sel, consulting the plan
// cache. Plans are cached only for an empty strip set: a declassifying
// view's strip is baked into its scan nodes, and the same AST can be
// reached with different strips through different view nestings.
func (s *Session) planFor(sel *sql.SelectStmt, strip label.Label) (*plan.Plan, error) {
	e := s.eng
	epoch := e.planEpoch.Load()
	cacheable := len(strip) == 0
	if cacheable {
		if v, ok := e.planCache.Load(sel); ok {
			ent := v.(*planEntry)
			if ent.epoch == epoch {
				mPlanCacheHits.Inc()
				return ent.p, nil
			}
			e.planCache.Delete(sel)
		}
	}
	p, err := plan.Build(e.cat, sel, strip)
	if err != nil {
		return nil, err
	}
	mPlans.Inc()
	if cacheable {
		e.planCache.Store(sel, &planEntry{p: p, epoch: epoch})
	}
	return p, nil
}

// planRuntime binds a plan to this session's statement transaction,
// label state, parameters, and cancellation flag.
func (s *Session) planRuntime(qc *qctx) *plan.Runtime {
	tx := s.stmtTx
	return &plan.Runtime{
		Params: qc.params,
		Funcs:  sessionFuncs{s},
		SubqFor: func(strip label.Label) exec.SubqueryRunner {
			return subqRunner{s, &qctx{params: qc.params, strip: strip}}
		},
		Visible:      tx.Visible,
		TupleVisible: s.tupleVisible,
		EffLabel:     s.effectiveTupleLabel,
		Check:        s.checkCanceled,
		OnScanned:    mRowsScanned.Add,
	}
}

// executeSelect runs a SELECT to a materialized relation, dispatching
// between the streaming executor and the legacy oracle. Subqueries and
// nested view bodies re-enter here, so one Config.LegacyExec flag
// switches the whole recursive execution.
func (s *Session) executeSelect(sel *sql.SelectStmt, qc *qctx) (*relation, error) {
	if s.eng.cfg.LegacyExec {
		return s.executeSelectLegacy(sel, qc)
	}
	p, err := s.planFor(sel, qc.strip)
	if err != nil {
		return nil, err
	}
	it, err := p.Open(s.planRuntime(qc))
	if err != nil {
		return nil, err
	}
	defer it.Close()
	rel := &relation{schema: p.Schema()}
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return rel, nil
		}
		rel.rows = append(rel.rows, qrow{vals: r.Vals, lbl: r.Lbl, ilbl: r.ILbl})
	}
}

// openSelect opens a SELECT as a live iterator (the streaming path the
// wire server's cursor rides). The caller owns the iterator and must
// Close it; the statement transaction must stay open meanwhile.
func (s *Session) openSelect(sel *sql.SelectStmt, params []types.Value) (*plan.Plan, plan.Iter, error) {
	qc := &qctx{params: params}
	p, err := s.planFor(sel, nil)
	if err != nil {
		return nil, nil, err
	}
	it, err := p.Open(s.planRuntime(qc))
	if err != nil {
		return nil, nil, err
	}
	return p, it, nil
}

// explainSelect renders the analyzed plan of sel as a one-column
// result, one operator per row.
func (s *Session) explainSelect(sel *sql.SelectStmt) (*Result, error) {
	p, err := s.planFor(sel, nil)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(p.Explain(), "\n"), "\n")
	res := &Result{Cols: []string{"plan"}}
	for _, ln := range lines {
		res.Rows = append(res.Rows, []types.Value{types.NewText(ln)})
	}
	if s.eng.cfg.IFC {
		res.RowLabels = make([]label.Label, len(res.Rows))
	}
	return res, nil
}
