package engine

import (
	"sync"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// TestVacuumRespectsActiveSnapshots: a long-running reader keeps
// deleted versions reclaimable only after it finishes.
func TestVacuumRespectsActiveSnapshots(t *testing.T) {
	e, s := newTestDB(t, false)
	reader := e.NewSession(e.Admin())
	mustExec(t, reader, `BEGIN`)
	res := mustExec(t, reader, `SELECT COUNT(*) FROM emp`)
	expectRows(t, res, "5")

	// Delete everything in another session.
	mustExec(t, s, `DELETE FROM emp`)

	// Vacuum must not reclaim versions the reader can still see.
	e.Vacuum()
	res = mustExec(t, reader, `SELECT COUNT(*) FROM emp`)
	expectRows(t, res, "5")
	mustExec(t, reader, `COMMIT`)

	// Now the horizon advances and the versions go away.
	if n := e.Vacuum(); n == 0 {
		t.Fatal("nothing reclaimed after reader finished")
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp`)
	expectRows(t, res, "0")
}

// TestVacuumIsLabelExempt: vacuum reclaims high-labeled garbage even
// though no session could see it (paper §7.1: the GC task is exempt).
func TestVacuumIsLabelExempt(t *testing.T) {
	e := MustNew(Config{IFC: true})
	admin := e.NewSession(e.Admin())
	mustExec(t, admin, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	alice := e.CreatePrincipal("alice")
	tg, err := e.CreateTag(alice, "t1")
	if err != nil {
		t.Fatal(err)
	}
	sa := e.NewSession(alice)
	if err := sa.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO t VALUES (1)`)
	mustExec(t, sa, `DELETE FROM t`)
	tb, _ := e.Catalog().Table("t")
	if tb.Heap.Len() != 1 {
		t.Fatalf("versions: %d", tb.Heap.Len())
	}
	if n := e.Vacuum(); n != 1 {
		t.Fatalf("reclaimed %d", n)
	}
	if tb.Heap.Len() != 0 {
		t.Fatalf("versions after vacuum: %d", tb.Heap.Len())
	}
}

// TestConcurrentNewSessionsAndVacuum races queries, churn, and vacuum.
func TestConcurrentChurnWithVacuum(t *testing.T) {
	e := MustNew(Config{})
	setup := e.NewSession(e.Admin())
	mustExec(t, setup, `CREATE TABLE c (id BIGINT PRIMARY KEY, v BIGINT)`)
	for i := int64(0); i < 50; i++ {
		mustExec(t, setup, `INSERT INTO c VALUES ($1, 0)`, types.NewInt(i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession(e.Admin())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := types.NewInt(int64((w*13 + i) % 50))
				// Updates conflict; ignore serialization failures.
				_, _ = s.Exec(`UPDATE c SET v = v + 1 WHERE id = $1`, id)
				if i%50 == 0 {
					if _, err := s.Exec(`SELECT COUNT(*) FROM c`); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		e.Vacuum()
	}
	close(stop)
	wg.Wait()
	// The table still has exactly 50 live rows.
	res := mustExec(t, setup, `SELECT COUNT(*) FROM c`)
	expectRows(t, res, "50")
	_ = label.Empty
}
