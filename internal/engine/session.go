package engine

import (
	"fmt"
	"sync/atomic"

	"ifdb/internal/authority"
	"ifdb/internal/label"
	"ifdb/internal/obs"
	"ifdb/internal/storage"
	"ifdb/internal/txn"
	"ifdb/internal/types"
	"ifdb/internal/wal"
)

// Session is one client process's connection to the engine. It carries
// the process's information flow state — its label and its acting
// principal — and its transaction, mirroring how IFDB shares the
// process label between the application platform and the DBMS (§7.2).
//
// A Session is not safe for concurrent use (like a database
// connection); open one session per worker.
type Session struct {
	eng *Engine

	principal authority.Principal
	plabel    label.Label
	pilabel   label.Label // integrity label (§3.1)

	// tx is the open explicit transaction, nil in autocommit mode.
	tx *txn.Txn

	// stmtTx is the transaction for the currently executing statement
	// (either tx or a temporary autocommit transaction).
	stmtTx *txn.Txn

	// closureDepth tracks nesting of authority-closure calls, so that
	// label changes made inside a closure persist (contamination is
	// real) while the principal is restored.
	closureDepth int

	// trigCtx is the active trigger context while a trigger procedure
	// runs (nil otherwise).
	trigCtx *TriggerCtx

	// replApply marks the replication applier's internal session: on a
	// replica engine, only it may execute mutating statements (the DDL
	// it replays arrived from the primary, already vetted there).
	replApply bool

	// lastCommit is the WAL position of this session's most recent
	// logged commit (see CommitToken).
	lastCommit wal.LSN

	// canceled interrupts the running statement (see Cancel in
	// prepare.go). The one concurrently-touched field of a session:
	// the wire server's out-of-band cancel path sets it from another
	// goroutine.
	canceled atomic.Bool

	// stats is the most recent statement's timing breakdown and trace
	// ID (see metrics.go); read back through the wire server's stats op.
	stats StmtStats
}

// NewSession opens a session acting as the given principal with an
// empty label.
func (e *Engine) NewSession(p authority.Principal) *Session {
	return &Session{eng: e, principal: p}
}

// Engine returns the engine this session talks to.
func (s *Session) Engine() *Engine { return s.eng }

// Principal returns the session's acting principal.
func (s *Session) Principal() authority.Principal { return s.principal }

// Label returns the process label (a copy).
func (s *Session) Label() label.Label { return s.plabel.Clone() }

// SetLabelUnsafe replaces the process label without any checks. It is
// the low-level hook the wire protocol uses to synchronize the label
// the *platform* already vetted (the platform and engine share one
// logical process label, §7.2). Application code must use AddSecrecy
// and Declassify.
func (s *Session) SetLabelUnsafe(l label.Label) { s.plabel = l.Clone() }

// SetPrincipalUnsafe switches the acting principal without checks;
// used by the wire protocol (authentication happens in the platform's
// trusted code) and by closure invocation.
func (s *Session) SetPrincipalUnsafe(p authority.Principal) { s.principal = p }

// Integrity returns the process integrity label (a copy).
//
// Integrity labels are the dual of secrecy labels (§3.1): a tag in the
// integrity label asserts the data came from a source trusted for that
// tag. Queries see only tuples whose integrity label covers the
// process's (you cannot base high-integrity computation on
// low-integrity data), writes are stamped with exactly the process
// integrity label, dropping integrity is free, and raising it
// ("endorsement") requires authority.
func (s *Session) Integrity() label.Label { return s.pilabel.Clone() }

// SetIntegrityUnsafe replaces the integrity label without checks (wire
// protocol only).
func (s *Session) SetIntegrityUnsafe(l label.Label) { s.pilabel = l.Clone() }

// Endorse adds tag t to the process integrity label. Claiming
// integrity is like declassifying secrecy: it needs authority for t.
func (s *Session) Endorse(t label.Tag) error {
	if !s.eng.cfg.IFC {
		return nil
	}
	if !s.eng.auth.TagExists(t) {
		return fmt.Errorf("engine: unknown tag %d", t)
	}
	if !s.checkAuthority(t) {
		s.auditDenied("endorse", t)
		return fmt.Errorf("%w: endorse tag %d", ErrAuthority, t)
	}
	s.pilabel = s.pilabel.Add(t)
	return nil
}

// DropIntegrity removes tag t from the process integrity label.
// Lowering integrity is always safe.
func (s *Session) DropIntegrity(t label.Tag) error {
	if !s.eng.cfg.IFC {
		return nil
	}
	s.pilabel = s.pilabel.Remove(t)
	return nil
}

// AddSecrecy adds a tag to the process label. Raising the label is
// ordinarily free — any process may contaminate itself — except under
// the transaction clearance rule (§5.1): inside a serializable
// transaction the process must be authoritative for the tag, because
// concurrency conflicts could otherwise leak through abort patterns.
func (s *Session) AddSecrecy(t label.Tag) error {
	if !s.eng.cfg.IFC {
		return nil
	}
	if !s.eng.auth.TagExists(t) {
		return fmt.Errorf("engine: unknown tag %d", t)
	}
	if s.tx != nil && s.tx.Mode() == txn.Serializable && !s.checkAuthority(t) {
		s.auditDenied("addsecrecy", t)
		return ErrClearance
	}
	s.plabel = s.plabel.Add(t)
	return nil
}

// Declassify removes a tag from the process label. It requires the
// acting principal to hold authority for the tag (§3.2).
func (s *Session) Declassify(t label.Tag) error {
	if !s.eng.cfg.IFC {
		return nil
	}
	if !s.plabel.Has(t) {
		// Removing an absent tag is a no-op, as in Aeolus.
		return nil
	}
	if !s.checkAuthority(t) {
		s.auditDenied("declassify", t)
		return fmt.Errorf("%w: declassify tag %d", ErrAuthority, t)
	}
	s.plabel = s.plabel.Remove(t)
	mDeclass.Inc()
	if obs.AuditEnabled() {
		obs.Audit().Info("declassify",
			"trace", obs.TraceID(s.stats.TraceID),
			"principal", uint64(s.principal), "tag", uint64(t))
	}
	return nil
}

// checkAuthority performs one counted authority check for the acting
// principal.
func (s *Session) checkAuthority(t label.Tag) bool {
	mAuthChecks.Inc()
	ok := s.eng.auth.HasAuthority(s.principal, t)
	if !ok {
		mAuthDenials.Inc()
	}
	return ok
}

// auditDenied records a failed authority-gated operation on the audit
// channel (the paper's security-relevant events are exactly these).
func (s *Session) auditDenied(op string, t label.Tag) {
	if obs.AuditEnabled() {
		obs.Audit().Warn("authority denied", "op", op,
			"trace", obs.TraceID(s.stats.TraceID),
			"principal", uint64(s.principal), "tag", uint64(t))
	}
}

// requireEmptyLabel gates authority-state mutations: the authority
// state has an empty label, so writing it from a contaminated process
// would be a covert channel (§3.2).
func (s *Session) requireEmptyLabel() error {
	if s.eng.cfg.IFC && !s.plabel.IsEmpty() {
		return ErrContaminated
	}
	return nil
}

// requireWritable gates every session-level mutation on a replica
// (state changes arrive only through the replication stream) and on a
// fenced primary (a newer epoch was observed: a failover moved past
// this node, and accepting writes would grow a doomed history).
func (s *Session) requireWritable() error {
	if s.replApply {
		return nil
	}
	if s.eng.IsReplica() {
		return ErrReadOnlyReplica
	}
	if s.eng.fencedAt.Load() != 0 {
		return s.eng.fenceErr()
	}
	return nil
}

// CreateTag creates a tag owned by the session's principal. Tag
// creation mutates the authority state, so it requires an empty label.
func (s *Session) CreateTag(name string, compounds ...string) (label.Tag, error) {
	if err := s.requireWritable(); err != nil {
		return label.InvalidTag, err
	}
	if err := s.requireEmptyLabel(); err != nil {
		return label.InvalidTag, err
	}
	return s.eng.CreateTag(s.principal, name, compounds...)
}

// CreatePrincipal creates a new principal; requires an empty label.
func (s *Session) CreatePrincipal(name string) (authority.Principal, error) {
	if err := s.requireWritable(); err != nil {
		return authority.NoPrincipal, err
	}
	if err := s.requireEmptyLabel(); err != nil {
		return authority.NoPrincipal, err
	}
	return s.eng.CreatePrincipal(name), nil
}

// Delegate grants authority for tag t from the session's principal to
// grantee; requires an empty label.
func (s *Session) Delegate(grantee authority.Principal, t label.Tag) error {
	if err := s.requireWritable(); err != nil {
		return err
	}
	if err := s.requireEmptyLabel(); err != nil {
		return err
	}
	return s.eng.auth.Delegate(s.principal, grantee, t)
}

// Revoke withdraws a delegation; requires an empty label.
func (s *Session) Revoke(grantee authority.Principal, t label.Tag) error {
	if err := s.requireWritable(); err != nil {
		return err
	}
	if err := s.requireEmptyLabel(); err != nil {
		return err
	}
	return s.eng.auth.Revoke(s.principal, grantee, t)
}

// HasAuthority reports whether the acting principal may declassify t.
func (s *Session) HasAuthority(t label.Tag) bool {
	return s.checkAuthority(t)
}

// ---------------------------------------------------------------------------
// Reduced authority calls and authority closures (§3.3)

// WithReducedAuthority runs fn with no principal at all. Label changes
// made by fn persist (contamination is real); the principal is
// restored afterwards.
func (s *Session) WithReducedAuthority(fn func() error) error {
	return s.runAs(authority.NoPrincipal, fn)
}

// CallClosure runs fn with the authority of the named closure's bound
// principal (registered via Engine.Closures or RegisterClosureProc).
func (s *Session) CallClosure(name string, fn func() error) error {
	cl, ok := s.eng.clos.Lookup(name)
	if !ok {
		return fmt.Errorf("engine: no closure %q", name)
	}
	return s.runAs(cl.Bound, fn)
}

func (s *Session) runAs(p authority.Principal, fn func() error) error {
	saved := s.principal
	s.principal = p
	s.closureDepth++
	defer func() {
		s.principal = saved
		s.closureDepth--
	}()
	return fn()
}

// ---------------------------------------------------------------------------
// Transactions

// Begin starts an explicit transaction. On a replica, local
// transactions are read-only and XID-less: the primary owns the XID
// space (see txn.Manager.BeginReadOnly).
func (s *Session) Begin(mode txn.Mode) error {
	if s.tx != nil && !s.tx.Done() {
		return fmt.Errorf("engine: transaction already open")
	}
	s.tx = s.beginTxn(mode)
	return nil
}

func (s *Session) beginTxn(mode txn.Mode) *txn.Txn {
	if s.requireWritable() != nil {
		return s.eng.txns.BeginReadOnly(mode)
	}
	return s.eng.txns.Begin(mode)
}

// Commit commits the open transaction, enforcing the commit-label rule
// (§5.1) with the session's label at this point as the commit label.
func (s *Session) Commit() error {
	if s.tx == nil || s.tx.Done() {
		return fmt.Errorf("engine: no open transaction")
	}
	t := s.tx
	s.tx = nil
	var commitLabel, commitILabel label.Label
	if s.eng.cfg.IFC {
		commitLabel = s.plabel
		commitILabel = s.pilabel
	}
	err := t.Commit(s.eng.hier, commitLabel, commitILabel)
	if err == nil {
		s.noteCommit(t)
		mTxnCommits.Inc()
	} else {
		mTxnAborts.Inc()
	}
	return err
}

// noteCommit records a committed transaction's log position for
// CommitToken.
func (s *Session) noteCommit(t *txn.Txn) {
	if lsn := t.CommitLSN(); lsn > s.lastCommit {
		s.lastCommit = lsn
	}
}

// logDDLNoted logs a DDL statement and folds its position into the
// session's commit token, so read-your-writes covers DDL too.
func (s *Session) logDDLNoted(text string) error {
	lsn, err := s.eng.logDDL(s.principal, text)
	if err == nil && lsn > s.lastCommit {
		s.lastCommit = lsn
	}
	return err
}

// CommitToken returns the read-your-writes token for this session: the
// smallest replication barrier that proves its last logged commit (or
// DDL) is applied — one past the record — or 0 if it never logged
// anything. Unlike the WAL append edge, the token never includes
// other sessions' in-flight transactions, so a replica read waiting on
// it cannot stall behind an unrelated long-running transaction.
func (s *Session) CommitToken() uint64 {
	if s.lastCommit == 0 {
		return 0
	}
	return uint64(s.lastCommit) + 1
}

// Abort rolls back the open transaction.
func (s *Session) Abort() error {
	if s.tx == nil || s.tx.Done() {
		return fmt.Errorf("engine: no open transaction")
	}
	t := s.tx
	s.tx = nil
	t.Abort()
	mTxnAborts.Inc()
	return nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil && !s.tx.Done() }

// withStmt runs fn under the statement's transaction: the currently
// executing statement's transaction when fn is nested (triggers and
// stored procedures issuing queries), else the open explicit
// transaction, else a fresh autocommit transaction that commits (with
// the commit-label rule) when fn returns.
func (s *Session) withStmt(fn func(t *txn.Txn) error) error {
	// Nested execution: reuse the in-flight statement transaction.
	if s.stmtTx != nil && !s.stmtTx.Done() {
		return fn(s.stmtTx)
	}
	// Explicit transaction.
	if s.tx != nil && !s.tx.Done() {
		s.stmtTx = s.tx
		err := fn(s.tx)
		s.stmtTx = nil
		if err != nil {
			// Statement failure inside an explicit transaction aborts
			// the whole transaction (PostgreSQL semantics).
			s.tx.Abort()
			s.tx = nil
			mTxnAborts.Inc()
		}
		return err
	}
	// Autocommit.
	t := s.beginTxn(txn.SnapshotIsolation)
	s.stmtTx = t
	err := fn(t)
	s.stmtTx = nil
	if err != nil {
		t.Abort()
		mTxnAborts.Inc()
		return err
	}
	var commitLabel, commitILabel label.Label
	if s.eng.cfg.IFC {
		commitLabel = s.plabel
		commitILabel = s.pilabel
	}
	err = t.Commit(s.eng.hier, commitLabel, commitILabel)
	if err == nil {
		s.noteCommit(t)
		mTxnCommits.Inc()
	} else {
		mTxnAborts.Inc()
	}
	return err
}

// ---------------------------------------------------------------------------
// Label visibility plumbing

// labelVisible reports whether a tuple labeled lt is visible to the
// session given an extra strip set (from declassifying views): tags
// covered by strip are removed from lt before the confinement check.
func (s *Session) labelVisible(lt label.Label, strip label.Label) bool {
	if !s.eng.cfg.IFC {
		return true
	}
	eff := s.effectiveTupleLabel(lt, strip)
	if !s.eng.hier.Flows(eff, s.plabel) {
		mLabelDenials.Inc()
		return false
	}
	return true
}

// integrityVisible applies the integrity half of Query by Label: a
// tuple is visible only if its integrity label covers the process's —
// a process claiming integrity I refuses to observe data below I.
func (s *Session) integrityVisible(it label.Label) bool {
	if !s.eng.cfg.IFC || len(s.pilabel) == 0 {
		return true
	}
	if !s.eng.hier.Flows(s.pilabel, it) {
		mLabelDenials.Inc()
		return false
	}
	return true
}

// tupleVisible combines both label filters.
func (s *Session) tupleVisible(tv *storage.TupleVersion, strip label.Label) bool {
	return s.labelVisible(tv.Label, strip) && s.integrityVisible(tv.ILabel)
}

// effectiveTupleLabel strips from lt every tag covered by the strip
// set (declassifying views, §4.3).
func (s *Session) effectiveTupleLabel(lt label.Label, strip label.Label) label.Label {
	if len(strip) == 0 || len(lt) == 0 {
		return lt
	}
	var out label.Label
	for _, t := range lt {
		if !s.eng.hier.Covers(strip, t) {
			out = append(out, t)
		}
	}
	return out
}

// writeLabel returns the label applied to tuples written by this
// session (exactly the process label, §4.2); nil when IFC is off.
func (s *Session) writeLabel() label.Label {
	if !s.eng.cfg.IFC {
		return nil
	}
	return s.plabel.Clone()
}

// writeILabel returns the integrity label applied to written tuples
// (exactly the process integrity label).
func (s *Session) writeILabel() label.Label {
	if !s.eng.cfg.IFC {
		return nil
	}
	return s.pilabel.Clone()
}

// QueryEach is the per-tuple iterator sketched as future work in the
// paper's §10: each tuple selected by the query is handled "in its own
// context with that tuple's label". For every result row, fn runs with
// the process label temporarily raised to cover that row's label (and
// only that row's); the label is restored between rows, so handling N
// differently-tagged tuples does not accumulate N tags of
// contamination.
//
// Like authority closures, this is a trusted-base primitive: fn must
// not smuggle data between per-row contexts through program state it
// later releases. The platform uses it for fan-out rendering where
// each row's output is released (or dropped) independently.
func (s *Session) QueryEach(query string, params []types.Value, fn func(row []types.Value, rowLabel label.Label) error) error {
	res, err := s.Exec(query, params...)
	if err != nil {
		return err
	}
	saved := s.plabel.Clone()
	defer func() { s.plabel = saved }()
	for i, row := range res.Rows {
		var rl label.Label
		if res.RowLabels != nil {
			rl = res.RowLabels[i]
		}
		s.plabel = saved.Union(rl)
		if err := fn(row, rl); err != nil {
			return err
		}
	}
	return nil
}

// CallProc invokes a stored procedure by name. If the proc is a stored
// authority closure the call runs with the closure's bound authority.
func (s *Session) CallProc(name string, args ...types.Value) (types.Value, error) {
	p, ok := s.eng.LookupProc(name)
	if !ok {
		return types.Null, fmt.Errorf("engine: no procedure %q", name)
	}
	if p.Closure != nil {
		var out types.Value
		err := s.runAs(p.Closure.Bound, func() error {
			var err error
			out, err = p.Fn(s, args)
			return err
		})
		return out, err
	}
	return p.Fn(s, args)
}
