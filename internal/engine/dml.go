package engine

import (
	"fmt"
	"sync"

	"ifdb/internal/catalog"
	"ifdb/internal/exec"
	"ifdb/internal/index"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/txn"
	"ifdb/internal/types"
)

// uniqueLocks serializes uniqueness-check-plus-insert critical
// sections per table, standing in for PostgreSQL's index-level
// locking. Without it, two concurrent transactions could each miss
// the other's in-flight insert of the same key.
var uniqueLocks sync.Map // *catalog.Table -> *sync.Mutex

func tableLock(t *catalog.Table) *sync.Mutex {
	if v, ok := uniqueLocks.Load(t); ok {
		return v.(*sync.Mutex)
	}
	v, _ := uniqueLocks.LoadOrStore(t, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// target is one existing tuple selected for UPDATE/DELETE.
type target struct {
	tid storage.TID
	tv  storage.TupleVersion
}

// collectTargets finds the tuples a DML statement affects, applying
// MVCC and label confinement exactly like reads do (§4.2: tuples with
// other labels "are invisible to the update and are unaffected").
func (s *Session) collectTargets(t *catalog.Table, where sql.Expr, qc *qctx) ([]target, error) {
	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: t.Name, Name: c.Name}
	}
	env := s.newEnv(schema, qc)
	var out []target
	var evalErr error

	eq, err := s.extractEqConsts(where, schema, qc)
	if err != nil {
		return nil, err
	}
	tx := s.stmtTx

	consider := func(tid storage.TID, tv *storage.TupleVersion) bool {
		if !tx.Visible(tv.Xmin, tv.Xmax) {
			return true
		}
		if !s.tupleVisible(tv, nil) {
			return true
		}
		if where != nil {
			env.Row, env.RowLabel, env.RowILabel = tv.Row, tv.Label, tv.ILabel
			v, err := exec.Eval(where, env)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.Truthy() {
				return true
			}
		}
		out = append(out, target{tid: tid, tv: *tv})
		return true
	}

	if ix, n := t.BestIndexForCols(eqColSet(eq)); ix != nil && n > 0 {
		key := make([]types.Value, n)
		for i := 0; i < n; i++ {
			key[i] = eq[ix.Cols[i]]
		}
		ix.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			if tv, ok := t.Heap.Get(tid); ok {
				return consider(tid, &tv)
			}
			return true
		})
	} else {
		t.Heap.Scan(consider)
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// INSERT

// executeInsert handles INSERT ... VALUES and INSERT ... SELECT.
func (s *Session) executeInsert(ins *sql.InsertStmt, qc *qctx) (int, error) {
	t, ok := s.eng.cat.Table(ins.Table)
	if !ok {
		if _, isView := s.eng.cat.View(ins.Table); isView {
			return 0, ErrReadOnlyView
		}
		return 0, fmt.Errorf("engine: no table %q", ins.Table)
	}

	declTags, err := s.resolveDeclassifying(ins.Declassifying)
	if err != nil {
		return 0, err
	}

	// Map statement columns to table ordinals.
	colIdx := make([]int, 0, len(t.Columns))
	if ins.Columns == nil {
		for i := range t.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range ins.Columns {
			ci, ok := t.ColIndex(name)
			if !ok {
				return 0, fmt.Errorf("engine: no column %q in table %q", name, t.Name)
			}
			colIdx = append(colIdx, ci)
		}
	}

	var rows [][]types.Value
	if ins.Select != nil {
		rel, err := s.executeSelect(ins.Select, qc)
		if err != nil {
			return 0, err
		}
		for _, r := range rel.rows {
			rows = append(rows, r.vals)
		}
	} else {
		env := s.newEnv(nil, qc)
		for _, exprRow := range ins.Rows {
			vals := make([]types.Value, len(exprRow))
			for i, e := range exprRow {
				v, err := exec.Eval(e, env)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			rows = append(rows, vals)
		}
	}

	n := 0
	for _, vals := range rows {
		if len(vals) != len(colIdx) {
			return n, fmt.Errorf("engine: INSERT has %d values for %d columns", len(vals), len(colIdx))
		}
		row := make([]types.Value, len(t.Columns))
		assigned := make([]bool, len(t.Columns))
		for i, ci := range colIdx {
			row[ci] = vals[i]
			assigned[ci] = true
		}
		// Defaults for unassigned columns.
		for i, col := range t.Columns {
			if !assigned[i] && col.Default != nil {
				v, err := exec.Eval(col.Default, s.newEnv(nil, qc))
				if err != nil {
					return n, err
				}
				row[i] = v
			}
		}
		if err := s.insertRow(t, row, declTags, qc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// resolveDeclassifying maps DECLASSIFYING tag names to a label and
// verifies the session's principal holds authority for each — an
// explicit declassification statement is only honored when backed by
// authority (§5.2.2).
func (s *Session) resolveDeclassifying(names []string) (label.Label, error) {
	if len(names) == 0 {
		return nil, nil
	}
	if !s.eng.cfg.IFC {
		return nil, nil
	}
	decl, err := s.eng.resolveTagNames(names)
	if err != nil {
		return nil, err
	}
	for _, tg := range decl {
		if !s.eng.auth.HasAuthority(s.principal, tg) {
			name, _ := s.eng.TagName(tg)
			return nil, fmt.Errorf("%w: DECLASSIFYING(%s)", ErrFKAuthority, name)
		}
	}
	return decl, nil
}

// insertRow applies the full insert path: coercion, BEFORE triggers,
// NOT NULL and CHECK constraints, label constraints, uniqueness with
// polyinstantiation, the heap write (at exactly the process label,
// §4.2), index maintenance, the Foreign Key Rule, and AFTER triggers.
func (s *Session) insertRow(t *catalog.Table, row []types.Value, declTags label.Label, qc *qctx) error {
	// Coerce to declared column types.
	for i, col := range t.Columns {
		v, err := row[i].Coerce(col.Kind)
		if err != nil {
			return fmt.Errorf("engine: column %q: %w", col.Name, err)
		}
		row[i] = v
	}

	if err := s.checkShardOwnership(t, row); err != nil {
		return err
	}

	if err := s.fireTriggers(t, "BEFORE", "INSERT", nil, row, nil, qc); err != nil {
		return err
	}

	for i, col := range t.Columns {
		if col.NotNull && row[i].IsNull() {
			return fmt.Errorf("%w: column %q", ErrNotNull, col.Name)
		}
	}
	if err := s.checkChecks(t, row, qc); err != nil {
		return err
	}

	lw := s.writeLabel()
	liw := s.writeILabel()
	if err := s.checkLabelConstraints(t, row, lw, qc); err != nil {
		return err
	}

	// Uniqueness + insert under the table lock so concurrent inserters
	// cannot slip identical keys past each other.
	lk := tableLock(t)
	lk.Lock()
	if err := s.checkUnique(t, row, lw, storage.InvalidTID); err != nil {
		lk.Unlock()
		return err
	}
	tid, err := t.Heap.Insert(storage.TupleVersion{Row: row, Label: lw, ILabel: liw, Xmin: s.stmtTx.XID()})
	if err != nil {
		lk.Unlock()
		return err
	}
	for _, ix := range t.Indexes {
		key := make([]types.Value, len(ix.Cols))
		for i, c := range ix.Cols {
			key[i] = row[c]
		}
		ix.Tree.Insert(key, tid)
	}
	lk.Unlock()
	s.stmtTx.RecordInsert(t.Heap, tid, lw, liw)
	if err := s.logInsert(t, tid, lw, liw, row); err != nil {
		return err
	}

	// The Foreign Key Rule (§5.2.2).
	for i := range t.ForeignKeys {
		if err := s.checkForeignKeyInsert(t, &t.ForeignKeys[i], row, lw, declTags); err != nil {
			return err
		}
	}

	return s.fireTriggers(t, "AFTER", "INSERT", nil, row, lw, qc)
}

// checkUnique probes every unique index for a conflicting tuple that
// is *visible* to the inserting process. A conflict with a tuple the
// process cannot see is permitted — polyinstantiation (§5.2.1) — since
// rejecting it would leak the hidden tuple's existence.
func (s *Session) checkUnique(t *catalog.Table, row []types.Value, lw label.Label, exclude storage.TID) error {
	for _, ix := range t.UniqueIndexes() {
		key := make([]types.Value, len(ix.Cols))
		nullKey := false
		for i, c := range ix.Cols {
			key[i] = row[c]
			if key[i].IsNull() {
				nullKey = true
			}
		}
		if nullKey {
			continue // SQL: NULLs never conflict
		}
		var conflict error
		ix.Tree.AscendEqual(key, func(tid storage.TID) bool {
			if tid == exclude {
				return true
			}
			tv, ok := t.Heap.Get(tid)
			if !ok {
				return true
			}
			if !s.versionLiveForUnique(&tv) {
				return true
			}
			// Polyinstantiation: only *visible* tuples conflict.
			if !s.labelVisible(tv.Label, nil) {
				return true
			}
			// If the conflicting version belongs to a still-running
			// transaction (its insert uncommitted, or a deleter in
			// flight), the outcome depends on that transaction:
			// PostgreSQL would block on the index lock; we surface a
			// retryable serialization failure instead of a hard
			// uniqueness error.
			m := s.eng.txns
			self := s.stmtTx.XID()
			if _, committed := m.Committed(tv.Xmin); !committed && tv.Xmin != self {
				conflict = fmt.Errorf("%w: concurrent insert into index %q", txn.ErrSerialization, ix.Name)
				return false
			}
			// A version committed after our snapshot is a write-write
			// race (the usual shape: another update of the row we are
			// updating): first-committer-wins, we retry.
			if s.stmtTx.CommittedAfterSnapshot(tv.Xmin) {
				conflict = fmt.Errorf("%w: index %q updated since snapshot", txn.ErrSerialization, ix.Name)
				return false
			}
			if tv.Xmax != storage.InvalidXID && tv.Xmax != self {
				if _, committed := m.Committed(tv.Xmax); !committed && !m.Aborted(tv.Xmax) {
					conflict = fmt.Errorf("%w: concurrent delete under index %q", txn.ErrSerialization, ix.Name)
					return false
				}
			}
			conflict = fmt.Errorf("%w: index %q", ErrUnique, ix.Name)
			return false
		})
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// versionLiveForUnique decides whether a version still occupies its
// key for uniqueness purposes: aborted inserts don't, versions deleted
// by a committed transaction don't, but versions deleted by an
// in-flight *other* transaction still do (if that transaction aborts,
// the tuple lives on).
func (s *Session) versionLiveForUnique(tv *storage.TupleVersion) bool {
	m := s.eng.txns
	if m.Aborted(tv.Xmin) {
		return false
	}
	// An in-progress insert by another transaction: treat as live
	// (conservative — PostgreSQL would block on the index lock).
	if tv.Xmax == storage.InvalidXID {
		return true
	}
	if tv.Xmax == s.stmtTx.XID() {
		return false // we deleted it ourselves
	}
	if _, committed := m.Committed(tv.Xmax); committed {
		return false
	}
	if m.Aborted(tv.Xmax) {
		return true
	}
	return true // deleter still in progress: conservatively live
}

// checkLabelConstraints enforces LABEL EXACTLY / LABEL CONTAINS
// (§5.2.4). Constraint expressions evaluate over the inserted row and
// must yield tag ids.
func (s *Session) checkLabelConstraints(t *catalog.Table, row []types.Value, lw label.Label, qc *qctx) error {
	if !s.eng.cfg.IFC {
		return nil
	}
	if len(t.LabelConstraints) == 0 {
		return nil
	}
	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: t.Name, Name: c.Name}
	}
	env := s.newEnv(schema, qc)
	env.Row, env.RowLabel = row, lw
	for _, lc := range t.LabelConstraints {
		var want []label.Tag
		for _, e := range lc.Exprs {
			v, err := exec.Eval(e, env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue
			}
			if v.Kind() != types.KindInt {
				return fmt.Errorf("%w: %q: tag expression must be an integer", ErrLabelConstraint, lc.Name)
			}
			want = append(want, label.Tag(uint64(v.Int())))
		}
		wantLabel := label.New(want...)
		if lc.Exact {
			if !lw.Equal(wantLabel) {
				return fmt.Errorf("%w: %q requires label %v, tuple has %v", ErrLabelConstraint, lc.Name, wantLabel, lw)
			}
		} else {
			if !wantLabel.SubsetOf(lw) {
				return fmt.Errorf("%w: %q requires label containing %v, tuple has %v", ErrLabelConstraint, lc.Name, wantLabel, lw)
			}
		}
	}
	return nil
}

// checkChecks evaluates CHECK constraints.
func (s *Session) checkChecks(t *catalog.Table, row []types.Value, qc *qctx) error {
	if len(t.Checks) == 0 {
		return nil
	}
	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: t.Name, Name: c.Name}
	}
	env := s.newEnv(schema, qc)
	env.Row = row
	for _, ck := range t.Checks {
		v, err := exec.Eval(ck.Expr, env)
		if err != nil {
			return err
		}
		if !v.IsNull() && !v.Truthy() {
			return fmt.Errorf("%w: %q", ErrCheck, ck.Name)
		}
	}
	return nil
}

// checkForeignKeyInsert enforces referential integrity under the
// Foreign Key Rule (§5.2.2): the inserter must hold authority for, and
// explicitly declare, every tag in the symmetric difference of the two
// tuples' labels. Referenced-tuple lookup is exempt from label
// confinement — the declaration is precisely what vouches for that
// read.
func (s *Session) checkForeignKeyInsert(t *catalog.Table, fk *catalog.ForeignKey, row []types.Value, lw label.Label, declTags label.Label) error {
	key := make([]types.Value, len(fk.Cols))
	for i, c := range fk.Cols {
		key[i] = row[c]
		if key[i].IsNull() {
			return nil // SQL: NULL FK values are not checked
		}
	}
	ref, ok := s.eng.cat.Table(fk.RefTable)
	if !ok {
		return fmt.Errorf("engine: fk %q references missing table %q", fk.Name, fk.RefTable)
	}

	var candidates []storage.TupleVersion
	s.lookupByCols(ref, fk.RefCols, key, func(tv *storage.TupleVersion) {
		candidates = append(candidates, *tv)
	})
	if len(candidates) == 0 {
		return fmt.Errorf("%w: %q: no row in %q matches", ErrForeignKey, fk.Name, fk.RefTable)
	}
	if !s.eng.cfg.IFC {
		return nil
	}

	// Accept if any (possibly polyinstantiated) candidate's label
	// difference is fully declared.
	var firstShortfall label.Label
	for _, cand := range candidates {
		diff := lw.SymmetricDiff(cand.Label)
		ok := true
		var missing label.Label
		for _, tg := range diff {
			if !s.eng.hier.Covers(declTags, tg) {
				ok = false
				missing = append(missing, tg)
			}
		}
		if ok {
			return nil
		}
		if firstShortfall == nil {
			firstShortfall = missing
		}
	}
	return fmt.Errorf("%w: %q requires DECLASSIFYING covering %v", ErrFKAuthority, fk.Name, firstShortfall)
}

// lookupByCols finds MVCC-visible versions of ref with the given
// column values, bypassing label confinement (callers are the
// constraint internals whose channels are vouched for explicitly).
func (s *Session) lookupByCols(ref *catalog.Table, cols []int, key []types.Value, fn func(tv *storage.TupleVersion)) {
	tx := s.stmtTx
	consider := func(tv *storage.TupleVersion) {
		if !tx.Visible(tv.Xmin, tv.Xmax) {
			return
		}
		for i, c := range cols {
			if !tv.Row[c].Equal(key[i]) {
				return
			}
		}
		fn(tv)
	}
	// Prefer an index whose prefix covers cols in order.
	for _, ix := range ref.Indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		ix.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			if tv, ok := ref.Heap.Get(tid); ok {
				consider(&tv)
			}
			return true
		})
		return
	}
	ref.Heap.Scan(func(_ storage.TID, tv *storage.TupleVersion) bool {
		consider(tv)
		return true
	})
}

// ---------------------------------------------------------------------------
// UPDATE

// executeUpdate rewrites matching tuples. Under the Write Rule (§4.2)
// every affected tuple must carry exactly the process label; a visible
// tuple with a lower label fails the statement.
func (s *Session) executeUpdate(up *sql.UpdateStmt, qc *qctx) (int, error) {
	t, ok := s.eng.cat.Table(up.Table)
	if !ok {
		if _, isView := s.eng.cat.View(up.Table); isView {
			return 0, ErrReadOnlyView
		}
		return 0, fmt.Errorf("engine: no table %q", up.Table)
	}
	declTags, err := s.resolveDeclassifying(up.Declassifying)
	if err != nil {
		return 0, err
	}

	setIdx := make([]int, len(up.Set))
	for i, sc := range up.Set {
		ci, ok := t.ColIndex(sc.Column)
		if !ok {
			return 0, fmt.Errorf("engine: no column %q in %q", sc.Column, t.Name)
		}
		setIdx[i] = ci
	}

	targets, err := s.collectTargets(t, up.Where, qc)
	if err != nil {
		return 0, err
	}

	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: t.Name, Name: c.Name}
	}
	env := s.newEnv(schema, qc)
	lw := s.writeLabel()
	liw := s.writeILabel()

	n := 0
	for _, tg := range targets {
		if s.eng.cfg.IFC && !tg.tv.Label.Equal(lw) {
			return n, fmt.Errorf("%w: tuple label %v, process label %v", ErrWriteRule, tg.tv.Label, lw)
		}
		if s.eng.cfg.IFC && !tg.tv.ILabel.Equal(liw) {
			return n, fmt.Errorf("%w: tuple integrity %v, process integrity %v", ErrWriteRule, tg.tv.ILabel, liw)
		}
		newRow := append([]types.Value(nil), tg.tv.Row...)
		env.Row, env.RowLabel, env.RowILabel = tg.tv.Row, tg.tv.Label, tg.tv.ILabel
		for i, sc := range up.Set {
			v, err := exec.Eval(sc.Value, env)
			if err != nil {
				return n, err
			}
			cv, err := v.Coerce(t.Columns[setIdx[i]].Kind)
			if err != nil {
				return n, fmt.Errorf("engine: column %q: %w", sc.Column, err)
			}
			newRow[setIdx[i]] = cv
		}

		// An UPDATE that rewrites the shard-key column would scatter the
		// key onto a shard that doesn't own it; the ownership guard vets
		// the new version exactly like an inserted row.
		if err := s.checkShardOwnership(t, newRow); err != nil {
			return n, err
		}

		if err := s.fireTriggers(t, "BEFORE", "UPDATE", tg.tv.Row, newRow, tg.tv.Label, qc); err != nil {
			return n, err
		}
		for i, col := range t.Columns {
			if col.NotNull && newRow[i].IsNull() {
				return n, fmt.Errorf("%w: column %q", ErrNotNull, col.Name)
			}
		}
		if err := s.checkChecks(t, newRow, qc); err != nil {
			return n, err
		}
		if err := s.checkLabelConstraints(t, newRow, lw, qc); err != nil {
			return n, err
		}

		lk := tableLock(t)
		lk.Lock()
		if err := s.checkUnique(t, newRow, lw, tg.tid); err != nil {
			lk.Unlock()
			return n, err
		}
		if err := s.stmtTx.Delete(t.Heap, tg.tid, tg.tv.Label, tg.tv.ILabel); err != nil {
			lk.Unlock()
			return n, err
		}
		tid, err := t.Heap.Insert(storage.TupleVersion{Row: newRow, Label: lw, ILabel: liw, Xmin: s.stmtTx.XID()})
		if err != nil {
			lk.Unlock()
			return n, err
		}
		for _, ix := range t.Indexes {
			key := make([]types.Value, len(ix.Cols))
			for i, c := range ix.Cols {
				key[i] = newRow[c]
			}
			ix.Tree.Insert(key, tid)
		}
		lk.Unlock()
		s.stmtTx.RecordInsert(t.Heap, tid, lw, liw)
		if err := s.logDelete(t, tg.tid); err != nil {
			return n, err
		}
		if err := s.logInsert(t, tid, lw, liw, newRow); err != nil {
			return n, err
		}

		// Re-verify FKs whose columns changed.
		for i := range t.ForeignKeys {
			fk := &t.ForeignKeys[i]
			changed := false
			for _, c := range fk.Cols {
				if !newRow[c].Equal(tg.tv.Row[c]) {
					changed = true
					break
				}
			}
			if changed {
				if err := s.checkForeignKeyInsert(t, fk, newRow, lw, declTags); err != nil {
					return n, err
				}
			}
		}
		// If referenced key columns changed, ensure no dangling
		// referencing rows remain (treated as a delete of the old key).
		if err := s.checkReferencersOnKeyChange(t, tg.tv.Row, newRow); err != nil {
			return n, err
		}

		if err := s.fireTriggers(t, "AFTER", "UPDATE", tg.tv.Row, newRow, lw, qc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (s *Session) checkReferencersOnKeyChange(t *catalog.Table, oldRow, newRow []types.Value) error {
	for _, rf := range s.eng.cat.ReferencingFKs(t.Name) {
		changed := false
		for _, c := range rf.FK.RefCols {
			if !oldRow[c].Equal(newRow[c]) {
				changed = true
				break
			}
		}
		if !changed {
			continue
		}
		key := make([]types.Value, len(rf.FK.RefCols))
		for i, c := range rf.FK.RefCols {
			key[i] = oldRow[c]
		}
		found := false
		s.lookupByCols(rf.Table, rf.FK.Cols, key, func(*storage.TupleVersion) { found = true })
		if found {
			return fmt.Errorf("%w: %q still referenced by %q", ErrForeignKey, t.Name, rf.Table.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// DELETE

// executeDelete removes matching tuples (marking versions deleted).
// The Write Rule applies; referencing tables are checked label-exempt,
// the channel having been vouched for by the Foreign Key Rule at
// insert time (§5.2.2).
func (s *Session) executeDelete(del *sql.DeleteStmt, qc *qctx) (int, error) {
	t, ok := s.eng.cat.Table(del.Table)
	if !ok {
		if _, isView := s.eng.cat.View(del.Table); isView {
			return 0, ErrReadOnlyView
		}
		return 0, fmt.Errorf("engine: no table %q", del.Table)
	}
	targets, err := s.collectTargets(t, del.Where, qc)
	if err != nil {
		return 0, err
	}
	lw := s.writeLabel()
	liw := s.writeILabel()
	n := 0
	for _, tg := range targets {
		if s.eng.cfg.IFC && !tg.tv.Label.Equal(lw) {
			return n, fmt.Errorf("%w: tuple label %v, process label %v", ErrWriteRule, tg.tv.Label, lw)
		}
		if s.eng.cfg.IFC && !tg.tv.ILabel.Equal(liw) {
			return n, fmt.Errorf("%w: tuple integrity %v, process integrity %v", ErrWriteRule, tg.tv.ILabel, liw)
		}
		if err := s.deleteOne(t, tg, qc); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (s *Session) deleteOne(t *catalog.Table, tg target, qc *qctx) error {
	if err := s.fireTriggers(t, "BEFORE", "DELETE", tg.tv.Row, nil, tg.tv.Label, qc); err != nil {
		return err
	}
	// Referential integrity on the delete side.
	for _, rf := range s.eng.cat.ReferencingFKs(t.Name) {
		key := make([]types.Value, len(rf.FK.RefCols))
		skip := false
		for i, c := range rf.FK.RefCols {
			key[i] = tg.tv.Row[c]
			if key[i].IsNull() {
				skip = true
			}
		}
		if skip {
			continue
		}
		// Another (polyinstantiated) version of this key may remain;
		// if so, referencing rows are still satisfied.
		remaining := 0
		s.lookupByCols(t, rf.FK.RefCols, key, func(tv *storage.TupleVersion) { remaining++ })
		if remaining > 1 {
			continue
		}
		var refs []target
		s.lookupByColsTID(rf.Table, rf.FK.Cols, key, func(tid storage.TID, tv *storage.TupleVersion) {
			refs = append(refs, target{tid: tid, tv: *tv})
		})
		if len(refs) == 0 {
			continue
		}
		if rf.FK.OnDelete == "CASCADE" {
			for _, r := range refs {
				// Cascaded deletes are still writes: the Write Rule
				// applies to them as well.
				if s.eng.cfg.IFC && !r.tv.Label.Equal(s.writeLabel()) {
					return fmt.Errorf("%w: cascade into %q", ErrWriteRule, rf.Table.Name)
				}
				if err := s.deleteOne(rf.Table, r, qc); err != nil {
					return err
				}
			}
			continue
		}
		return fmt.Errorf("%w: %q is referenced by %q (%s)", ErrForeignKey, t.Name, rf.Table.Name, rf.FK.Name)
	}
	if err := s.stmtTx.Delete(t.Heap, tg.tid, tg.tv.Label, tg.tv.ILabel); err != nil {
		return err
	}
	if err := s.logDelete(t, tg.tid); err != nil {
		return err
	}
	return s.fireTriggers(t, "AFTER", "DELETE", tg.tv.Row, nil, tg.tv.Label, qc)
}

// lookupByColsTID is lookupByCols but also yields TIDs.
func (s *Session) lookupByColsTID(ref *catalog.Table, cols []int, key []types.Value, fn func(tid storage.TID, tv *storage.TupleVersion)) {
	tx := s.stmtTx
	consider := func(tid storage.TID, tv *storage.TupleVersion) {
		if !tx.Visible(tv.Xmin, tv.Xmax) {
			return
		}
		for i, c := range cols {
			if !tv.Row[c].Equal(key[i]) {
				return
			}
		}
		fn(tid, tv)
	}
	for _, ix := range ref.Indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		ix.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			if tv, ok := ref.Heap.Get(tid); ok {
				consider(tid, &tv)
			}
			return true
		})
		return
	}
	ref.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
		consider(tid, tv)
		return true
	})
}

// ---------------------------------------------------------------------------
// Triggers

// TriggerCtx is passed to trigger procedures through the session: the
// engine stores it on the session for the duration of the call.
type TriggerCtx struct {
	Table    string
	Event    string // INSERT, UPDATE, DELETE
	Timing   string // BEFORE, AFTER
	Old, New []types.Value
	RowLabel label.Label
}

// trigCtx is the active trigger context (nil outside trigger calls).
func (s *Session) TriggerContext() *TriggerCtx { return s.trigCtx }

// fireTriggers runs the triggers registered for (timing, event).
// Deferred triggers queue on the transaction and run at commit with
// the label the session has *now* — the label of the originating query
// — not the commit label (§5.2.3).
func (s *Session) fireTriggers(t *catalog.Table, timing, event string, oldRow, newRow []types.Value, rowLabel label.Label, qc *qctx) error {
	for _, tr := range t.Triggers {
		if tr.Timing != timing || tr.Event != event {
			continue
		}
		ctx := &TriggerCtx{
			Table: t.Name, Event: event, Timing: timing,
			Old: oldRow, New: newRow, RowLabel: rowLabel,
		}
		if tr.Deferred && timing == "AFTER" {
			s.queueDeferredTrigger(tr, ctx)
			continue
		}
		if err := s.runTrigger(tr, ctx); err != nil {
			return fmt.Errorf("engine: trigger %q: %w", tr.Name, err)
		}
	}
	return nil
}

func (s *Session) runTrigger(tr *catalog.Trigger, ctx *TriggerCtx) error {
	p, ok := s.eng.LookupProc(tr.Proc)
	if !ok {
		return fmt.Errorf("procedure %q missing", tr.Proc)
	}
	savedCtx := s.trigCtx
	s.trigCtx = ctx
	defer func() { s.trigCtx = savedCtx }()
	run := func() error {
		_, err := p.Fn(s, nil)
		return err
	}
	if p.Closure != nil {
		// Stored authority closure: runs with the bound authority
		// (§4.3, §5.2.3).
		return s.runAs(p.Closure.Bound, run)
	}
	return run()
}

// queueDeferredTrigger captures the session label at queue time so the
// trigger observes the originating query's label at commit (§5.2.3).
func (s *Session) queueDeferredTrigger(tr *catalog.Trigger, ctx *TriggerCtx) {
	queuedLabel := s.plabel.Clone()
	queuedPrincipal := s.principal
	s.stmtTx.Defer(func() error {
		savedLabel := s.plabel
		savedPrincipal := s.principal
		s.plabel = queuedLabel
		s.principal = queuedPrincipal
		defer func() {
			s.plabel = savedLabel
			s.principal = savedPrincipal
		}()
		if err := s.runTrigger(tr, ctx); err != nil {
			return fmt.Errorf("engine: deferred trigger %q: %w", tr.Name, err)
		}
		return nil
	})
}
