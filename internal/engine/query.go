package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ifdb/internal/catalog"
	"ifdb/internal/exec"
	"ifdb/internal/index"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// Result is the outcome of one statement.
type Result struct {
	Cols      []string
	Rows      [][]types.Value
	RowLabels []label.Label // per-row labels (nil when IFC is off)
	Affected  int           // rows affected by DML
}

// qrow is an internal row with its label.
type qrow struct {
	vals []types.Value
	lbl  label.Label
	ilbl label.Label
	sort []types.Value // ORDER BY keys, attached during projection
}

// relation is an intermediate result.
type relation struct {
	schema exec.Schema
	rows   []qrow
}

// qctx carries per-query execution state.
type qctx struct {
	params []types.Value
	// strip is the set of tags declassified by enclosing declassifying
	// views (§4.3); tags covered by it are removed from tuple labels
	// before the confinement check.
	strip label.Label
}

// sessionFuncs adapts the session to exec.FuncResolver, providing the
// IFDB SQL-callable functions (§7.1) and stored procedures.
type sessionFuncs struct{ s *Session }

// CallFunc dispatches scalar function calls.
func (f sessionFuncs) CallFunc(name string, args []types.Value) (types.Value, error) {
	s := f.s
	eng := s.eng
	tagArg := func(i int) (label.Tag, error) {
		if i >= len(args) {
			return label.InvalidTag, fmt.Errorf("engine: %s: missing tag argument", name)
		}
		switch args[i].Kind() {
		case types.KindInt:
			return label.Tag(uint64(args[i].Int())), nil
		case types.KindText:
			t, ok := eng.LookupTag(args[i].Text())
			if !ok {
				return label.InvalidTag, fmt.Errorf("engine: unknown tag %q", args[i].Text())
			}
			return t, nil
		default:
			return label.InvalidTag, fmt.Errorf("engine: %s: tag argument must be id or name", name)
		}
	}
	switch name {
	case "addsecrecy":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		if err := s.AddSecrecy(t); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	case "declassify":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		if err := s.Declassify(t); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	case "getlabel":
		return types.NewLabel(s.Label()), nil
	case "getintegrity":
		return types.NewLabel(s.Integrity()), nil
	case "endorse":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		if err := s.Endorse(t); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	case "dropintegrity":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		if err := s.DropIntegrity(t); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	case "tag":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(int64(uint64(t))), nil
	case "has_authority":
		t, err := tagArg(0)
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(s.HasAuthority(t)), nil
	case "current_principal":
		return types.NewInt(int64(uint64(s.principal))), nil
	case "now":
		return types.NewTime(nowFunc()), nil
	case "sleep":
		// sleep(ms) — pauses the statement, checking for cancellation.
		// Exists so context cancellation (client API v2) is testable
		// deterministically; read-only, so replicas may serve it.
		if len(args) != 1 || args[0].Kind() != types.KindInt || args[0].Int() < 0 {
			return types.Null, fmt.Errorf("engine: sleep(milliseconds)")
		}
		if err := s.cancelableSleep(time.Duration(args[0].Int()) * time.Millisecond); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	case "nextval":
		if len(args) != 1 || args[0].Kind() != types.KindText {
			return types.Null, fmt.Errorf("engine: nextval('sequence_name')")
		}
		return s.nextval(args[0].Text())
	case "create_sequence":
		if len(args) != 1 || args[0].Kind() != types.KindText {
			return types.Null, fmt.Errorf("engine: create_sequence('name')")
		}
		if err := s.requireWritable(); err != nil {
			// A replica's sequences arrive through the stream; a local
			// registration would fork from the primary's.
			return types.Null, err
		}
		if err := eng.CreateSequence(args[0].Text()); err != nil {
			return types.Null, err
		}
		return types.NewBool(true), nil
	}
	if _, ok := eng.LookupProc(name); ok {
		return s.CallProc(name, args...)
	}
	return types.Null, fmt.Errorf("engine: unknown function %q", name)
}

// subqRunner adapts the session to exec.SubqueryRunner.
type subqRunner struct {
	s  *Session
	qc *qctx
}

// ScalarSubquery runs sub and returns its single value.
func (r subqRunner) ScalarSubquery(sub *sql.SelectStmt) (types.Value, error) {
	rel, err := r.s.executeSelect(sub, r.qc)
	if err != nil {
		return types.Null, err
	}
	if len(rel.rows) == 0 {
		return types.Null, nil
	}
	if len(rel.rows) > 1 {
		return types.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(rel.rows))
	}
	if len(rel.rows[0].vals) != 1 {
		return types.Null, fmt.Errorf("engine: scalar subquery must return one column")
	}
	return rel.rows[0].vals[0], nil
}

// InSubquery reports membership of v in sub's single-column result.
func (r subqRunner) InSubquery(sub *sql.SelectStmt, v types.Value) (bool, error) {
	rel, err := r.s.executeSelect(sub, r.qc)
	if err != nil {
		return false, err
	}
	for _, row := range rel.rows {
		if len(row.vals) != 1 {
			return false, fmt.Errorf("engine: IN subquery must return one column")
		}
		if v.Equal(row.vals[0]) {
			return true, nil
		}
	}
	return false, nil
}

// ExistsSubquery reports whether sub returns any rows.
func (r subqRunner) ExistsSubquery(sub *sql.SelectStmt) (bool, error) {
	rel, err := r.s.executeSelect(sub, r.qc)
	if err != nil {
		return false, err
	}
	return len(rel.rows) > 0, nil
}

func (s *Session) newEnv(schema exec.Schema, qc *qctx) *exec.Env {
	return &exec.Env{
		Schema: schema,
		Params: qc.params,
		Funcs:  sessionFuncs{s},
		Subq:   subqRunner{s, qc},
	}
}

// ---------------------------------------------------------------------------
// FROM sources

// sourceRelation materializes one FROM item (base table, view, or
// subquery), applying Query by Label at the base-table scans.
func (s *Session) sourceRelation(tr *sql.TableRef, filter sql.Expr, qc *qctx) (*relation, error) {
	if tr.Sub != nil {
		rel, err := s.executeSelect(tr.Sub, qc)
		if err != nil {
			return nil, err
		}
		return aliasRelation(rel, tr.Alias), nil
	}
	if t, ok := s.eng.cat.Table(tr.Name); ok {
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		return s.scanTable(t, alias, filter, qc)
	}
	if v, ok := s.eng.cat.View(tr.Name); ok {
		return s.viewRelation(v, tr, qc)
	}
	return nil, fmt.Errorf("engine: no table or view %q", tr.Name)
}

// viewRelation expands a view. Declassifying views extend the strip
// set with their bound tags, so base scans inside see (and return)
// tuples with those tags removed (§4.3).
func (s *Session) viewRelation(v *catalog.View, tr *sql.TableRef, qc *qctx) (*relation, error) {
	sub := *qc
	if v.IsDeclassifying() {
		sub.strip = qc.strip.Union(v.Declassify)
	}
	rel, err := s.executeSelect(v.Select, &sub)
	if err != nil {
		return nil, fmt.Errorf("engine: view %q: %w", v.Name, err)
	}
	if len(v.Columns) > 0 {
		if len(v.Columns) != len(rel.schema) {
			return nil, fmt.Errorf("engine: view %q declares %d columns but query yields %d", v.Name, len(v.Columns), len(rel.schema))
		}
		for i, n := range v.Columns {
			rel.schema[i].Name = strings.ToLower(n)
		}
	}
	alias := tr.Alias
	if alias == "" {
		alias = v.Name
	}
	return aliasRelation(rel, alias), nil
}

func aliasRelation(rel *relation, alias string) *relation {
	out := &relation{rows: rel.rows}
	out.schema = make(exec.Schema, len(rel.schema))
	for i, c := range rel.schema {
		out.schema[i] = exec.ColMeta{Table: alias, Name: c.Name}
	}
	return out
}

// scanTable reads the visible tuples of t, optionally narrowing with
// an index when the filter has equality predicates on an index prefix.
// This is where the Label Confinement Rule is applied: only tuples
// whose (strip-adjusted) label flows to the process label are
// surfaced (§4.2, §7.1).
func (s *Session) scanTable(t *catalog.Table, alias string, filter sql.Expr, qc *qctx) (*relation, error) {
	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: alias, Name: c.Name}
	}
	rel := &relation{schema: schema}

	eq, err := s.extractEqConsts(filter, schema, qc)
	if err != nil {
		return nil, err
	}
	tx := s.stmtTx

	// Visited tuples accumulate locally; one atomic add per scan keeps
	// the counter off the per-tuple hot path.
	var scanned int64
	accept := func(tid storage.TID, tv *storage.TupleVersion) {
		scanned++
		if !tx.Visible(tv.Xmin, tv.Xmax) {
			return
		}
		if !s.tupleVisible(tv, qc.strip) {
			return
		}
		rel.rows = append(rel.rows, qrow{
			vals: tv.Row,
			lbl:  s.effectiveTupleLabel(tv.Label, qc.strip),
			ilbl: tv.ILabel,
		})
	}

	// Cancellation check point: a scan is where a long statement
	// spends its time, so the cancel flag is polled per tuple (an
	// atomic load, noise next to visibility + label checks).
	var scanErr error
	if ix, n := t.BestIndexForCols(eqColSet(eq)); ix != nil && n > 0 {
		key := make([]types.Value, n)
		for i := 0; i < n; i++ {
			key[i] = eq[ix.Cols[i]]
		}
		ix.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			if scanErr = s.checkCanceled(); scanErr != nil {
				return false
			}
			if tv, ok := t.Heap.Get(tid); ok {
				accept(tid, &tv)
			}
			return true
		})
		mRowsScanned.Add(scanned)
		return rel, scanErr
	}

	t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
		if scanErr = s.checkCanceled(); scanErr != nil {
			return false
		}
		accept(tid, tv)
		return true
	})
	mRowsScanned.Add(scanned)
	return rel, scanErr
}

// extractEqConsts walks the AND-tree of filter collecting
// column-ordinal → constant bindings usable for index scans. Only
// literals and parameters count as constants (no side effects).
func (s *Session) extractEqConsts(filter sql.Expr, schema exec.Schema, qc *qctx) (map[int]types.Value, error) {
	out := make(map[int]types.Value)
	var walk func(e sql.Expr) error
	walk = func(e sql.Expr) error {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			return nil
		}
		switch b.Op {
		case "AND":
			if err := walk(b.Left); err != nil {
				return err
			}
			return walk(b.Right)
		case "=":
			col, cexpr := b.Left, b.Right
			if !isConst(cexpr) {
				col, cexpr = b.Right, b.Left
			}
			cr, ok := col.(*sql.ColumnRef)
			if !ok || !isConst(cexpr) || cr.Column == "_label" {
				return nil
			}
			i, err := schema.Resolve(cr.Table, cr.Column)
			if err != nil {
				return nil // column from another table in a join filter
			}
			v, err := exec.Eval(cexpr, &exec.Env{Params: qc.params})
			if err != nil {
				return err
			}
			out[i] = v
		}
		return nil
	}
	if filter != nil {
		if err := walk(filter); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isConst(e sql.Expr) bool {
	switch e.(type) {
	case *sql.Literal, *sql.Param:
		return true
	}
	return false
}

func eqColSet(eq map[int]types.Value) map[int]bool {
	out := make(map[int]bool, len(eq))
	for c := range eq {
		out[c] = true
	}
	return out
}

// ---------------------------------------------------------------------------
// Joins

// joinRelations combines left with one joined source. When the right
// side is a base table with an index covering the equi-join columns,
// an index nested-loop join probes it per left row; otherwise pure
// equi-joins use a hash join and anything else a nested loop.
func (s *Session) joinRelations(left *relation, jc *sql.JoinClause, qc *qctx) (*relation, error) {
	if rel, ok, err := s.indexJoin(left, jc, qc); err != nil {
		return nil, err
	} else if ok {
		return rel, nil
	}
	right, err := s.sourceRelation(&jc.Table, nil, qc)
	if err != nil {
		return nil, err
	}
	schema := append(append(exec.Schema{}, left.schema...), right.schema...)
	out := &relation{schema: schema}
	env := s.newEnv(schema, qc)

	nullsRight := make([]types.Value, len(right.schema))

	// Try hash join: collect conjuncts of the form <leftcol> = <rightcol>.
	leftKeys, rightKeys, pure := equiJoinKeys(jc.On, left.schema, right.schema)
	if pure && len(leftKeys) > 0 {
		ht := make(map[string][]int, len(right.rows))
		for ri, rr := range right.rows {
			k := hashKey(rr.vals, rightKeys, len(left.schema), false)
			ht[k] = append(ht[k], ri)
		}
		for _, lr := range left.rows {
			k := hashKey(lr.vals, leftKeys, 0, true)
			matched := false
			for _, ri := range ht[k] {
				rr := right.rows[ri]
				combined := append(append([]types.Value{}, lr.vals...), rr.vals...)
				env.Row = combined
				env.RowLabel = lr.lbl.Union(rr.lbl)
				env.RowILabel = lr.ilbl.Intersect(rr.ilbl)
				v, err := exec.Eval(jc.On, env)
				if err != nil {
					return nil, err
				}
				if v.Truthy() {
					matched = true
					out.rows = append(out.rows, qrow{vals: combined, lbl: env.RowLabel, ilbl: env.RowILabel})
				}
			}
			if !matched && jc.Kind == "LEFT" {
				combined := append(append([]types.Value{}, lr.vals...), nullsRight...)
				out.rows = append(out.rows, qrow{vals: combined, lbl: lr.lbl, ilbl: lr.ilbl})
			}
		}
		return out, nil
	}

	// Nested loop.
	for _, lr := range left.rows {
		matched := false
		for _, rr := range right.rows {
			combined := append(append([]types.Value{}, lr.vals...), rr.vals...)
			env.Row = combined
			env.RowLabel = lr.lbl.Union(rr.lbl)
			env.RowILabel = lr.ilbl.Intersect(rr.ilbl)
			v, err := exec.Eval(jc.On, env)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				matched = true
				out.rows = append(out.rows, qrow{vals: combined, lbl: env.RowLabel, ilbl: env.RowILabel})
			}
		}
		if !matched && jc.Kind == "LEFT" {
			combined := append(append([]types.Value{}, lr.vals...), nullsRight...)
			out.rows = append(out.rows, qrow{vals: combined, lbl: lr.lbl, ilbl: lr.ilbl})
		}
	}
	return out, nil
}

// indexJoin attempts an index nested-loop join: the right side must be
// a base table whose index prefix covers the equi-join columns. Each
// left row probes the index; MVCC and label visibility apply at the
// probe exactly as in scans. Returns ok=false when the shape does not
// fit (view, subquery, no usable index, non-equi ON).
func (s *Session) indexJoin(left *relation, jc *sql.JoinClause, qc *qctx) (*relation, bool, error) {
	if jc.Table.Sub != nil {
		return nil, false, nil
	}
	t, isTable := s.eng.cat.Table(jc.Table.Name)
	if !isTable {
		return nil, false, nil
	}
	alias := jc.Table.Alias
	if alias == "" {
		alias = jc.Table.Name
	}
	rightSchema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		rightSchema[i] = exec.ColMeta{Table: alias, Name: c.Name}
	}
	lk, rk, pure := equiJoinKeys(jc.On, left.schema, rightSchema)
	if !pure || len(lk) == 0 {
		return nil, false, nil
	}
	// Find the index whose leading columns are all equi-join columns.
	rkPos := make(map[int]int, len(rk)) // right col ordinal -> position in rk/lk
	for i, c := range rk {
		rkPos[c] = i
	}
	var ix *catalog.Index
	prefix := 0
	for _, cand := range t.Indexes {
		n := 0
		for _, c := range cand.Cols {
			if _, ok := rkPos[c]; ok {
				n++
			} else {
				break
			}
		}
		if n > prefix {
			ix, prefix = cand, n
		}
	}
	if ix == nil {
		return nil, false, nil
	}

	schema := append(append(exec.Schema{}, left.schema...), rightSchema...)
	out := &relation{schema: schema}
	env := s.newEnv(schema, qc)
	nullsRight := make([]types.Value, len(rightSchema))
	tx := s.stmtTx

	for _, lr := range left.rows {
		key := make([]types.Value, prefix)
		for i := 0; i < prefix; i++ {
			key[i] = lr.vals[lk[rkPos[ix.Cols[i]]]]
		}
		matched := false
		var probeErr error
		ix.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			tv, ok := t.Heap.Get(tid)
			if !ok {
				return true
			}
			if !tx.Visible(tv.Xmin, tv.Xmax) || !s.tupleVisible(&tv, qc.strip) {
				return true
			}
			combined := append(append([]types.Value{}, lr.vals...), tv.Row...)
			env.Row = combined
			env.RowLabel = lr.lbl.Union(s.effectiveTupleLabel(tv.Label, qc.strip))
			env.RowILabel = lr.ilbl.Intersect(tv.ILabel)
			v, err := exec.Eval(jc.On, env)
			if err != nil {
				probeErr = err
				return false
			}
			if v.Truthy() {
				matched = true
				out.rows = append(out.rows, qrow{vals: combined, lbl: env.RowLabel, ilbl: env.RowILabel})
			}
			return true
		})
		if probeErr != nil {
			return nil, false, probeErr
		}
		if !matched && jc.Kind == "LEFT" {
			combined := append(append([]types.Value{}, lr.vals...), nullsRight...)
			out.rows = append(out.rows, qrow{vals: combined, lbl: lr.lbl, ilbl: lr.ilbl})
		}
	}
	return out, true, nil
}

// equiJoinKeys decomposes an ON clause into column-ordinal pairs when
// it is a pure conjunction of cross-side column equalities.
func equiJoinKeys(on sql.Expr, left, right exec.Schema) (lk, rk []int, pure bool) {
	var walk func(e sql.Expr) bool
	walk = func(e sql.Expr) bool {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			return false
		}
		switch b.Op {
		case "AND":
			return walk(b.Left) && walk(b.Right)
		case "=":
			lc, lok := b.Left.(*sql.ColumnRef)
			rc, rok := b.Right.(*sql.ColumnRef)
			if !lok || !rok || lc.Column == "_label" || rc.Column == "_label" {
				return false
			}
			li, lerr := left.Resolve(lc.Table, lc.Column)
			ri, rerr := right.Resolve(rc.Table, rc.Column)
			if lerr == nil && rerr == nil {
				lk = append(lk, li)
				rk = append(rk, ri)
				return true
			}
			// Maybe written the other way around.
			li2, lerr2 := left.Resolve(rc.Table, rc.Column)
			ri2, rerr2 := right.Resolve(lc.Table, lc.Column)
			if lerr2 == nil && rerr2 == nil {
				lk = append(lk, li2)
				rk = append(rk, ri2)
				return true
			}
			return false
		default:
			return false
		}
	}
	if on == nil {
		return nil, nil, false
	}
	ok := walk(on)
	return lk, rk, ok
}

func hashKey(vals []types.Value, cols []int, _ int, _ bool) string {
	var b strings.Builder
	for _, c := range cols {
		v := vals[c]
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// SELECT

// executeSelectLegacy runs a SELECT to a materialized relation with
// the original tree-walking executor. It is kept (behind
// Config.LegacyExec) as the oracle of the differential executor
// harness; see internal/plan for the streaming replacement.
func (s *Session) executeSelectLegacy(sel *sql.SelectStmt, qc *qctx) (*relation, error) {
	var input *relation
	if sel.From == nil {
		input = &relation{rows: []qrow{{}}}
	} else {
		var err error
		input, err = s.sourceRelation(sel.From, sel.Where, qc)
		if err != nil {
			return nil, err
		}
		for i := range sel.Joins {
			input, err = s.joinRelations(input, &sel.Joins[i], qc)
			if err != nil {
				return nil, err
			}
		}
	}

	env := s.newEnv(input.schema, qc)

	// WHERE
	if sel.Where != nil {
		kept := input.rows[:0:0]
		for _, r := range input.rows {
			env.Row, env.RowLabel, env.RowILabel = r.vals, r.lbl, r.ilbl
			v, err := exec.Eval(sel.Where, env)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, r)
			}
		}
		input.rows = kept
	}

	// Expand stars and build output item list.
	items, err := expandStars(sel.Items, input.schema)
	if err != nil {
		return nil, err
	}

	aggregated := len(sel.GroupBy) > 0 || exec.HasAggregate(sel.Having)
	for _, it := range items {
		if exec.HasAggregate(it.Expr) {
			aggregated = true
		}
	}

	// Build ORDER BY expressions with alias substitution.
	orderExprs := make([]sql.Expr, len(sel.OrderBy))
	aliasMap := map[string]sql.Expr{}
	for _, it := range items {
		if it.Alias != "" {
			aliasMap[it.Alias] = it.Expr
		}
	}
	for i, ob := range sel.OrderBy {
		orderExprs[i] = substituteAliases(ob.Expr, aliasMap)
	}

	var out *relation
	if aggregated {
		out, err = s.aggregate(sel, items, orderExprs, input, env)
	} else {
		out, err = s.project(items, orderExprs, input, env)
	}
	if err != nil {
		return nil, err
	}

	// ORDER BY
	if len(sel.OrderBy) > 0 {
		descs := make([]bool, len(sel.OrderBy))
		for i, ob := range sel.OrderBy {
			descs[i] = ob.Desc
		}
		sort.SliceStable(out.rows, func(i, j int) bool {
			a, b := out.rows[i].sort, out.rows[j].sort
			for k := range a {
				c := a[k].Compare(b[k])
				if c != 0 {
					if descs[k] {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// DISTINCT
	if sel.Distinct {
		seen := make(map[string]bool, len(out.rows))
		kept := out.rows[:0:0]
		for _, r := range out.rows {
			k := rowKey(r.vals)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		out.rows = kept
	}

	// OFFSET / LIMIT
	if sel.Offset != nil {
		n, err := evalIntConst(sel.Offset, env)
		if err != nil {
			return nil, err
		}
		if n > int64(len(out.rows)) {
			n = int64(len(out.rows))
		}
		out.rows = out.rows[n:]
	}
	if sel.Limit != nil {
		n, err := evalIntConst(sel.Limit, env)
		if err != nil {
			return nil, err
		}
		if n < int64(len(out.rows)) {
			out.rows = out.rows[:n]
		}
	}
	return out, nil
}

func evalIntConst(e sql.Expr, env *exec.Env) (int64, error) {
	v, err := exec.Eval(e, env)
	if err != nil {
		return 0, err
	}
	if v.Kind() != types.KindInt || v.Int() < 0 {
		return 0, fmt.Errorf("engine: LIMIT/OFFSET must be a non-negative integer")
	}
	return v.Int(), nil
}

func rowKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// expandStars turns * and t.* into explicit column items.
func expandStars(items []sql.SelectItem, schema exec.Schema) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema {
			if it.Table != "" && !strings.EqualFold(c.Table, it.Table) {
				continue
			}
			matched = true
			out = append(out, sql.SelectItem{
				Expr:  &sql.ColumnRef{Table: c.Table, Column: c.Name},
				Alias: c.Name,
			})
		}
		if !matched {
			return nil, fmt.Errorf("engine: %s.* matches no columns", it.Table)
		}
	}
	return out, nil
}

// substituteAliases rewrites bare column references that name select
// aliases (for ORDER BY).
func substituteAliases(e sql.Expr, aliases map[string]sql.Expr) sql.Expr {
	cr, ok := e.(*sql.ColumnRef)
	if ok && cr.Table == "" {
		if sub, hit := aliases[cr.Column]; hit {
			return sub
		}
	}
	return e
}

// project evaluates non-aggregate select items per input row.
func (s *Session) project(items []sql.SelectItem, orderExprs []sql.Expr, input *relation, env *exec.Env) (*relation, error) {
	out := &relation{schema: outputSchema(items)}
	out.rows = make([]qrow, 0, len(input.rows))
	for _, r := range input.rows {
		env.Row, env.RowLabel, env.RowILabel = r.vals, r.lbl, r.ilbl
		vals := make([]types.Value, len(items))
		for i, it := range items {
			v, err := exec.Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var keys []types.Value
		if len(orderExprs) > 0 {
			keys = make([]types.Value, len(orderExprs))
			for i, oe := range orderExprs {
				v, err := exec.Eval(oe, env)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		out.rows = append(out.rows, qrow{vals: vals, lbl: r.lbl, ilbl: r.ilbl, sort: keys})
	}
	return out, nil
}

func outputSchema(items []sql.SelectItem) exec.Schema {
	schema := make(exec.Schema, len(items))
	for i, it := range items {
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Column
			} else {
				name = fmt.Sprintf("column%d", i+1)
			}
		}
		schema[i] = exec.ColMeta{Name: name}
	}
	return schema
}
