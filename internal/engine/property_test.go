package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// The headline security property of Query by Label, checked under
// randomized data: no query — seq scan, index scan, join, aggregate,
// or view — ever returns a row whose label does not flow to the
// process label.

func TestQuickNoQueryLeaksLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := MustNew(Config{IFC: true})
		admin := e.NewSession(e.Admin())
		if _, err := admin.Exec(`
			CREATE TABLE data (id BIGINT PRIMARY KEY, grp BIGINT, v BIGINT);
			CREATE TABLE grps (grp BIGINT PRIMARY KEY, name TEXT);
			CREATE INDEX data_grp ON data (grp)`); err != nil {
			t.Fatal(err)
		}
		owner := e.CreatePrincipal("owner")
		// A pool of tags.
		tags := make([]label.Tag, 4)
		for i := range tags {
			tg, err := e.CreateTag(owner, fmt.Sprintf("t%d-%d", seed, i))
			if err != nil {
				t.Fatal(err)
			}
			tags[i] = tg
		}
		randomLabelTags := func() []label.Tag {
			var out []label.Tag
			for _, tg := range tags {
				if rng.Intn(2) == 0 {
					out = append(out, tg)
				}
			}
			return out
		}

		for g := int64(0); g < 3; g++ {
			if _, err := admin.Exec(`INSERT INTO grps VALUES ($1, $2)`,
				types.NewInt(g), types.NewText(fmt.Sprintf("g%d", g))); err != nil {
				t.Fatal(err)
			}
		}
		// Insert rows under random labels.
		for i := int64(0); i < 30; i++ {
			s := e.NewSession(owner)
			for _, tg := range randomLabelTags() {
				if err := s.AddSecrecy(tg); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Exec(`INSERT INTO data VALUES ($1, $2, $3)`,
				types.NewInt(i), types.NewInt(i%3), types.NewInt(rng.Int63n(100))); err != nil {
				t.Fatal(err)
			}
		}

		// A reader with a random label issues a battery of queries;
		// every returned row label must flow to the reader's label.
		reader := e.NewSession(owner)
		for _, tg := range randomLabelTags() {
			if err := reader.AddSecrecy(tg); err != nil {
				t.Fatal(err)
			}
		}
		rl := reader.Label()
		queries := []string{
			`SELECT id FROM data`,
			`SELECT id FROM data WHERE id = 7`,
			`SELECT id FROM data WHERE grp = 1`,
			`SELECT d.id, g.name FROM grps g JOIN data d ON d.grp = g.grp`,
			`SELECT grp, COUNT(*), SUM(v) FROM data GROUP BY grp`,
			`SELECT id FROM data WHERE v > 50 ORDER BY v DESC LIMIT 5`,
			`SELECT id FROM data WHERE grp IN (SELECT grp FROM grps WHERE name <> 'g9')`,
		}
		for _, q := range queries {
			res, err := reader.Exec(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			for i := range res.Rows {
				if !res.RowLabels[i].SubsetOf(rl) {
					t.Fatalf("seed %d: %s leaked row with label %v to process %v",
						seed, q, res.RowLabels[i], rl)
				}
			}
		}

		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVisibilityCompleteness: the reader sees *exactly* the rows
// whose labels flow to its label — Query by Label is a filter, not a
// lossy approximation.
func TestQuickVisibilityCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := MustNew(Config{IFC: true})
		admin := e.NewSession(e.Admin())
		if _, err := admin.Exec(`CREATE TABLE d (id BIGINT PRIMARY KEY)`); err != nil {
			t.Fatal(err)
		}
		owner := e.CreatePrincipal("o")
		tags := make([]label.Tag, 3)
		for i := range tags {
			tg, err := e.CreateTag(owner, fmt.Sprintf("c%d-%d", seed, i))
			if err != nil {
				t.Fatal(err)
			}
			tags[i] = tg
		}
		labels := make([]label.Label, 20)
		for i := int64(0); i < 20; i++ {
			s := e.NewSession(owner)
			var lt []label.Tag
			for _, tg := range tags {
				if rng.Intn(2) == 0 {
					lt = append(lt, tg)
				}
			}
			labels[i] = label.New(lt...)
			for _, tg := range lt {
				if err := s.AddSecrecy(tg); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Exec(`INSERT INTO d VALUES ($1)`, types.NewInt(i)); err != nil {
				t.Fatal(err)
			}
		}
		reader := e.NewSession(owner)
		var rt []label.Tag
		for _, tg := range tags {
			if rng.Intn(2) == 0 {
				rt = append(rt, tg)
			}
		}
		rl := label.New(rt...)
		for _, tg := range rt {
			if err := reader.AddSecrecy(tg); err != nil {
				t.Fatal(err)
			}
		}
		res, err := reader.Exec(`SELECT id FROM d`)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, l := range labels {
			if l.SubsetOf(rl) {
				want++
			}
		}
		if len(res.Rows) != want {
			t.Fatalf("seed %d: reader %v saw %d rows, want %d", seed, rl, len(res.Rows), want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPolyinstantiationInvariant: under random insert attempts at
// random labels, polyinstantiated tuples for one key always have
// pairwise *distinct* labels — the §5.2.1 guarantee ("polyinstantiated
// tuples must have different labels", which is what makes exact-label
// queries able to disambiguate them). Comparable-but-unequal duplicates
// are legal: the paper's third example insert creates exactly that.
func TestQuickPolyinstantiationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := MustNew(Config{IFC: true})
		admin := e.NewSession(e.Admin())
		if _, err := admin.Exec(`CREATE TABLE p (k BIGINT PRIMARY KEY, who BIGINT)`); err != nil {
			t.Fatal(err)
		}
		owner := e.CreatePrincipal("o")
		tags := make([]label.Tag, 3)
		for i := range tags {
			tg, err := e.CreateTag(owner, fmt.Sprintf("p%d-%d", seed, i))
			if err != nil {
				t.Fatal(err)
			}
			tags[i] = tg
		}
		for attempt := 0; attempt < 40; attempt++ {
			s := e.NewSession(owner)
			for _, tg := range tags {
				if rng.Intn(2) == 0 {
					if err := s.AddSecrecy(tg); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Inserts may fail with unique violations; that's the point.
			_, _ = s.Exec(`INSERT INTO p VALUES ($1, $2)`,
				types.NewInt(rng.Int63n(5)), types.NewInt(int64(attempt)))
		}
		// Gather live tuples per key with an omniscient reader.
		omni := e.NewSession(owner)
		for _, tg := range tags {
			if err := omni.AddSecrecy(tg); err != nil {
				t.Fatal(err)
			}
		}
		res, err := omni.Exec(`SELECT k FROM p ORDER BY k`)
		if err != nil {
			t.Fatal(err)
		}
		byKey := map[int64][]label.Label{}
		for i, row := range res.Rows {
			k := row[0].Int()
			byKey[k] = append(byKey[k], res.RowLabels[i])
		}
		for k, ls := range byKey {
			for i := 0; i < len(ls); i++ {
				for j := i + 1; j < len(ls); j++ {
					if ls[i].Equal(ls[j]) {
						t.Fatalf("seed %d: key %d has two tuples at the same label %v",
							seed, k, ls[i])
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
