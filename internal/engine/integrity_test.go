package engine

import (
	"errors"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// Integrity labels (§3.1; detailed in the IFDB thesis): the dual of
// secrecy. A tag in the integrity label asserts trusted provenance.

func TestIntegrityEndorseAndDrop(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	// Endorsing requires authority — like declassification.
	if err := sa.Endorse(f.btag); !errors.Is(err, ErrAuthority) {
		t.Fatalf("endorse foreign tag: %v", err)
	}
	if err := sa.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	if !sa.Integrity().Equal(label.New(f.atag)) {
		t.Fatalf("integrity: %v", sa.Integrity())
	}
	// Dropping is free.
	if err := sa.DropIntegrity(f.atag); err != nil {
		t.Fatal(err)
	}
	if !sa.Integrity().IsEmpty() {
		t.Fatalf("integrity after drop: %v", sa.Integrity())
	}
}

func TestIntegrityVisibility(t *testing.T) {
	f := newIFC(t)
	// A high-integrity writer stamps tuples with {atag} integrity.
	wr := f.e.NewSession(f.alice)
	if err := wr.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, wr, `INSERT INTO records VALUES (1, 'trusted', 'high')`)

	// A plain writer produces low-integrity data.
	lo := f.e.NewSession(f.bob)
	mustExec(t, lo, `INSERT INTO records VALUES (2, 'untrusted', 'low')`)

	// A reader with no integrity requirement sees both.
	rd := f.e.NewSession(f.bob)
	res := mustExec(t, rd, `SELECT id FROM records ORDER BY id`)
	expectRows(t, res, "1", "2")

	// A reader claiming {atag} integrity sees only the endorsed tuple:
	// high-integrity computation cannot silently consume low-integrity
	// inputs.
	hi := f.e.NewSession(f.alice)
	if err := hi.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, hi, `SELECT id, body FROM records`)
	expectRows(t, res, "1|high")

	// _ilabel is queryable like _label.
	res = mustExec(t, hi, `SELECT label_size(_ilabel) FROM records`)
	expectRows(t, res, "1")
}

func TestIntegrityWriteRule(t *testing.T) {
	f := newIFC(t)
	wr := f.e.NewSession(f.alice)
	if err := wr.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, wr, `INSERT INTO records VALUES (1, 'trusted', 'v1')`)

	// Writes are stamped with exactly the process integrity label. A
	// process with no integrity requirement still *sees* the endorsed
	// tuple (empty requirement admits everything), but the write rule
	// stops it from updating in place — that would launder a
	// low-integrity write into a high-integrity tuple.
	lo := f.e.NewSession(f.alice)
	if _, err := lo.Exec(`UPDATE records SET body = 'tampered' WHERE id = 1`); !errors.Is(err, ErrWriteRule) {
		t.Fatalf("low-integrity update: %v", err)
	}
	// The endorsed process can.
	mustExec(t, wr, `UPDATE records SET body = 'v2' WHERE id = 1`)
	res := mustExec(t, wr, `SELECT body FROM records WHERE id = 1`)
	expectRows(t, res, "v2")
}

func TestIntegrityCommitRule(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	if err := sa.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `BEGIN`)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'x', 'endorsed write')`)
	// Dropping integrity before commit: the transaction outcome would
	// vouch for a high-integrity write from a low-integrity process.
	if err := sa.DropIntegrity(f.atag); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Exec(`COMMIT`); err == nil {
		t.Fatal("integrity commit rule did not fire")
	}
	// The write rolled back.
	chk := f.e.NewSession(f.alice)
	if err := chk.Endorse(f.atag); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, chk, `SELECT COUNT(*) FROM records`)
	expectRows(t, res, "0")
}

func TestIntegritySQLFunctions(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	mustExec(t, sa, `SELECT endorse('alice_tag')`)
	res := mustExec(t, sa, `SELECT getintegrity()`)
	if !res.Rows[0][0].Label().Equal(label.New(f.atag)) {
		t.Fatalf("getintegrity: %v", res.Rows[0][0])
	}
	mustExec(t, sa, `SELECT dropintegrity('alice_tag')`)
	res = mustExec(t, sa, `SELECT getintegrity()`)
	if res.Rows[0][0].Label().Len() != 0 {
		t.Fatalf("after drop: %v", res.Rows[0][0])
	}
	if _, err := sa.Exec(`SELECT endorse('bob_tag')`); err == nil {
		t.Fatal("SQL endorse without authority")
	}
}

func TestQueryEachIterator(t *testing.T) {
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'alice', 'a-data')`)
	sb := f.session(t, f.bob, f.btag)
	mustExec(t, sb, `INSERT INTO records VALUES (2, 'bob', 'b-data')`)

	// A reader contaminated for both sees both rows; QueryEach hands
	// each row over with only that row's label added, and the session
	// label is restored afterwards.
	rd := f.session(t, f.bob, f.atag, f.btag)
	before := rd.Label()
	var seen []string
	err := rd.QueryEach(`SELECT body FROM records ORDER BY id`, nil,
		func(row []types.Value, rowLabel label.Label) error {
			seen = append(seen, row[0].Text()+"@"+rowLabel.String())
			// Inside the context, the label covers the row.
			for _, tg := range rowLabel {
				if !rd.Label().Has(tg) {
					t.Errorf("row label %v not covered by process label %v", rowLabel, rd.Label())
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("seen: %v", seen)
	}
	if !rd.Label().Equal(before) {
		t.Fatalf("label not restored: %v", rd.Label())
	}
	// Errors propagate and still restore the label.
	wantErr := errors.New("stop")
	err = rd.QueryEach(`SELECT body FROM records`, nil,
		func([]types.Value, label.Label) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err: %v", err)
	}
	if !rd.Label().Equal(before) {
		t.Fatalf("label not restored after error: %v", rd.Label())
	}
}
