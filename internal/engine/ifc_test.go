package engine

import (
	"errors"
	"testing"

	"ifdb/internal/authority"
	"ifdb/internal/label"
	"ifdb/internal/txn"
	"ifdb/internal/types"
)

// ifcFixture builds an IFC engine with two users and a labeled table.
type ifcFixture struct {
	e          *Engine
	alice, bob authority.Principal
	atag, btag label.Tag
	admin      *Session
}

func newIFC(t *testing.T) *ifcFixture {
	t.Helper()
	e := MustNew(Config{IFC: true})
	f := &ifcFixture{e: e}
	f.admin = e.NewSession(e.Admin())
	mustExec(t, f.admin, `CREATE TABLE records (
		id BIGINT PRIMARY KEY,
		owner TEXT,
		body TEXT
	)`)
	f.alice = e.CreatePrincipal("alice")
	f.bob = e.CreatePrincipal("bob")
	var err error
	if f.atag, err = e.CreateTag(f.alice, "alice_tag"); err != nil {
		t.Fatal(err)
	}
	if f.btag, err = e.CreateTag(f.bob, "bob_tag"); err != nil {
		t.Fatal(err)
	}
	return f
}

func (f *ifcFixture) session(t *testing.T, p authority.Principal, tags ...label.Tag) *Session {
	t.Helper()
	s := f.e.NewSession(p)
	for _, tg := range tags {
		if err := s.AddSecrecy(tg); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestLabelConfinementOnEveryPath(t *testing.T) {
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'alice', 'secret')`)

	sb := f.session(t, f.bob, f.btag)
	mustExec(t, sb, `INSERT INTO records VALUES (2, 'bob', 'other')`)

	// Seq scan path.
	res := mustExec(t, sa, `SELECT id FROM records WHERE body LIKE '%e%' ORDER BY id`)
	expectRows(t, res, "1")
	// Index scan path.
	res = mustExec(t, sa, `SELECT id FROM records WHERE id = 2`)
	if len(res.Rows) != 0 {
		t.Fatal("index scan leaked a hidden tuple")
	}
	// Aggregates see only the visible subset.
	res = mustExec(t, sa, `SELECT COUNT(*) FROM records`)
	expectRows(t, res, "1")
	// Join probe path.
	mustExec(t, f.admin, `CREATE TABLE keys (id BIGINT PRIMARY KEY)`)
	mustExec(t, f.admin, `INSERT INTO keys VALUES (1), (2)`)
	res = mustExec(t, sa, `SELECT k.id, r.body FROM keys k JOIN records r ON k.id = r.id ORDER BY k.id`)
	expectRows(t, res, "1|secret")
	// Subquery path.
	res = mustExec(t, sa, `SELECT id FROM keys WHERE id IN (SELECT id FROM records) ORDER BY id`)
	expectRows(t, res, "1")
}

func TestWritesGetExactlyProcessLabel(t *testing.T) {
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'alice', 'x')`)
	res := mustExec(t, sa, `SELECT _label FROM records WHERE id = 1`)
	if got := res.Rows[0][0].Label(); !got.Equal(label.New(f.atag)) {
		t.Fatalf("tuple label %v", got)
	}
	// RowLabels mirror the stored label.
	if !res.RowLabels[0].Equal(label.New(f.atag)) {
		t.Fatalf("row label %v", res.RowLabels[0])
	}
}

func TestExactLabelQueries(t *testing.T) {
	// §4.2/§5.2.1: applications can hide polyinstantiated "mistakes"
	// by constraining the _label column.
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'alice', 'real')`)
	spub := f.e.NewSession(f.alice)
	mustExec(t, spub, `INSERT INTO records VALUES (1, 'alice', 'poly')`) // invisible conflict

	both := f.session(t, f.alice, f.atag)
	res := mustExec(t, both, `SELECT body FROM records WHERE id = 1 ORDER BY body`)
	expectRows(t, res, "poly", "real")
	// Exact-label filter keeps only the properly-tagged row.
	res = mustExec(t, both, `SELECT body FROM records WHERE id = 1 AND label_contains(_label, $1)`,
		types.NewInt(int64(uint64(f.atag))))
	expectRows(t, res, "real")
	res = mustExec(t, both, `SELECT body FROM records WHERE id = 1 AND label_size(_label) = 0`)
	expectRows(t, res, "poly")
}

func TestWriteRuleDelete(t *testing.T) {
	f := newIFC(t)
	spub := f.e.NewSession(f.alice)
	mustExec(t, spub, `INSERT INTO records VALUES (1, 'public', 'p')`)
	// Contaminated process cannot delete the lower-labeled tuple.
	sa := f.session(t, f.alice, f.atag)
	if _, err := sa.Exec(`DELETE FROM records WHERE id = 1`); !errors.Is(err, ErrWriteRule) {
		t.Fatalf("delete write rule: %v", err)
	}
	// But the public process can.
	mustExec(t, spub, `DELETE FROM records WHERE id = 1`)
}

func TestAuthorityStateRequiresEmptyLabel(t *testing.T) {
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	if _, err := sa.CreateTag("newtag"); !errors.Is(err, ErrContaminated) {
		t.Fatalf("CreateTag: %v", err)
	}
	if _, err := sa.CreatePrincipal("p"); !errors.Is(err, ErrContaminated) {
		t.Fatalf("CreatePrincipal: %v", err)
	}
	if err := sa.Delegate(f.bob, f.atag); !errors.Is(err, ErrContaminated) {
		t.Fatalf("Delegate: %v", err)
	}
	if err := sa.Revoke(f.bob, f.atag); !errors.Is(err, ErrContaminated) {
		t.Fatalf("Revoke: %v", err)
	}
	// After declassifying, it all works.
	if err := sa.Declassify(f.atag); err != nil {
		t.Fatal(err)
	}
	if err := sa.Delegate(f.bob, f.atag); err != nil {
		t.Fatal(err)
	}
}

func TestClearanceRuleSerializable(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	// Snapshot isolation: raising to any tag is free.
	mustExec(t, sa, `BEGIN`)
	if err := sa.AddSecrecy(f.btag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `ROLLBACK`)

	// Serializable: alice may not raise to bob's tag (no authority).
	sa2 := f.e.NewSession(f.alice)
	mustExec(t, sa2, `BEGIN SERIALIZABLE`)
	if err := sa2.AddSecrecy(f.btag); !errors.Is(err, ErrClearance) {
		t.Fatalf("clearance: %v", err)
	}
	// Her own tag is fine (she is authoritative).
	if err := sa2.AddSecrecy(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa2, `ROLLBACK`)
}

func TestDeclassifyingViewStripsOnlyItsTags(t *testing.T) {
	f := newIFC(t)
	// records carry {atag, btag}: the view declassifies only atag, so
	// an empty-label reader still cannot see rows (btag remains).
	sa := f.session(t, f.alice, f.atag, f.btag)
	// alice needs authority for btag to write at that label... no:
	// raising is free, and writes need no authority. (Declassify does.)
	mustExec(t, sa, `INSERT INTO records VALUES (1, 'x', 'both-tags')`)

	// alice can create a view declassifying HER tag only.
	va := f.e.NewSession(f.alice)
	mustExec(t, va, `CREATE VIEW v_a AS SELECT id, body FROM records WITH DECLASSIFYING (alice_tag)`)

	reader := f.e.NewSession(f.bob)
	res := mustExec(t, reader, `SELECT * FROM v_a`)
	if len(res.Rows) != 0 {
		t.Fatal("view over-declassified")
	}
	// With btag contamination, the row appears, labeled {btag} only.
	if err := reader.AddSecrecy(f.btag); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, reader, `SELECT body FROM v_a`)
	expectRows(t, res, "both-tags")
	if !res.RowLabels[0].Equal(label.New(f.btag)) {
		t.Fatalf("view row label %v", res.RowLabels[0])
	}
}

func TestDeclassifyingViewWithCompound(t *testing.T) {
	f := newIFC(t)
	// A compound tag covering both users' tags; the app owns it.
	app := f.e.CreatePrincipal("app")
	appS := f.e.NewSession(app)
	if _, err := appS.CreateTag("all_tags"); err != nil {
		t.Fatal(err)
	}
	carol := f.e.CreatePrincipal("carol")
	cs := f.e.NewSession(carol)
	ctag, err := cs.CreateTag("carol_tag", "all_tags")
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.AddSecrecy(ctag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, cs, `INSERT INTO records VALUES (9, 'carol', 'compound-covered')`)

	// The app's compound authority lets it declassify member tags via
	// a view naming only the compound.
	mustExec(t, appS, `CREATE VIEW v_all AS SELECT body FROM records WITH DECLASSIFYING (all_tags)`)
	reader := f.e.NewSession(f.bob)
	res := mustExec(t, reader, `SELECT * FROM v_all`)
	expectRows(t, res, "compound-covered")
	if !res.RowLabels[0].IsEmpty() {
		t.Fatalf("compound view label %v", res.RowLabels[0])
	}
}

func TestForeignKeyRuleSymmetricDifference(t *testing.T) {
	f := newIFC(t)
	mustExec(t, f.admin, `
	CREATE TABLE cars (carid BIGINT PRIMARY KEY, owner TEXT);
	CREATE TABLE drives (
		driveid BIGINT PRIMARY KEY,
		carid BIGINT REFERENCES cars (carid)
	)`)
	// Car labeled {alice_cars}; drive will be {alice_drives}.
	carsTag, err := f.e.CreateTag(f.alice, "alice_cars")
	if err != nil {
		t.Fatal(err)
	}
	drivesTag, err := f.e.CreateTag(f.alice, "alice_drives")
	if err != nil {
		t.Fatal(err)
	}
	sc := f.session(t, f.alice, carsTag)
	mustExec(t, sc, `INSERT INTO cars VALUES (1, 'alice')`)

	sd := f.session(t, f.alice, drivesTag)
	// Without the DECLASSIFYING clause: rejected (symdiff = {drives, cars}).
	if _, err := sd.Exec(`INSERT INTO drives VALUES (10, 1)`); !errors.Is(err, ErrFKAuthority) {
		t.Fatalf("undeclared FK insert: %v", err)
	}
	// Declaring only one of the two tags is still insufficient.
	if _, err := sd.Exec(`INSERT INTO drives VALUES (10, 1) DECLASSIFYING (alice_drives)`); !errors.Is(err, ErrFKAuthority) {
		t.Fatalf("half-declared FK insert: %v", err)
	}
	// The paper's exact clause works (alice owns both tags).
	mustExec(t, sd, `INSERT INTO drives VALUES (10, 1) DECLASSIFYING (alice_drives, alice_cars)`)

	// Bob lacks authority for the declared tags: rejected even with
	// the clause.
	sbd := f.session(t, f.bob, drivesTag) // bob contaminated with alice_drives? raising is free
	if _, err := sbd.Exec(`INSERT INTO drives VALUES (11, 1) DECLASSIFYING (alice_drives, alice_cars)`); !errors.Is(err, ErrFKAuthority) {
		t.Fatalf("unauthorized DECLASSIFYING: %v", err)
	}

	// An empty-label process cannot even see the cars tuple: the
	// DELETE silently affects nothing (§4.2).
	spub := f.e.NewSession(f.alice)
	res := mustExec(t, spub, `DELETE FROM cars WHERE carid = 1`)
	if res.Affected != 0 {
		t.Fatalf("invisible tuple deleted: %d", res.Affected)
	}
	// The deletion side of the rule: for a properly-labeled deleter,
	// the FK internals check referencing rows label-exempt, so the
	// delete is RESTRICTed by the {alice_drives} drive even though the
	// deleter cannot see it — the channel the insert-side declaration
	// vouched for (§5.2.2).
	sc2 := f.session(t, f.alice, carsTag)
	if _, err := sc2.Exec(`DELETE FROM cars WHERE carid = 1`); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("restricted delete through labels: %v", err)
	}
}

func TestFKSameLabelNeedsNoDeclaration(t *testing.T) {
	f := newIFC(t)
	mustExec(t, f.admin, `
	CREATE TABLE parent (id BIGINT PRIMARY KEY);
	CREATE TABLE child (id BIGINT PRIMARY KEY, pid BIGINT REFERENCES parent (id))`)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO parent VALUES (1)`)
	mustExec(t, sa, `INSERT INTO child VALUES (10, 1)`) // symdiff empty
}

func TestPolyinstantiationAndFKCandidates(t *testing.T) {
	f := newIFC(t)
	mustExec(t, f.admin, `
	CREATE TABLE parent (id BIGINT PRIMARY KEY);
	CREATE TABLE child (id BIGINT PRIMARY KEY, pid BIGINT REFERENCES parent (id))`)
	// Two polyinstantiated parents with id 1. Order matters: the
	// higher-labeled tuple must exist first so the public inserter's
	// conflict is invisible (a visible conflict is a plain violation).
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO parent VALUES (1)`)
	spub := f.e.NewSession(f.alice)
	mustExec(t, spub, `INSERT INTO parent VALUES (1)`)

	// A public process referencing id 1 matches the public candidate:
	// no declaration needed.
	mustExec(t, spub, `INSERT INTO child VALUES (10, 1)`)
	// The {atag} process matches the {atag} candidate the same way.
	mustExec(t, sa, `INSERT INTO child VALUES (11, 1)`)
}

func TestLabelConstraintContains(t *testing.T) {
	f := newIFC(t)
	mustExec(t, f.admin, `CREATE TABLE lc (
		id BIGINT PRIMARY KEY,
		tagcol BIGINT,
		LABEL CONTAINS (tagcol)
	)`)
	sa := f.session(t, f.alice, f.atag)
	// Label {atag} contains tagcol=atag: OK.
	mustExec(t, sa, `INSERT INTO lc VALUES (1, $1)`, types.NewInt(int64(uint64(f.atag))))
	// Label {atag} does not contain btag: violation.
	if _, err := sa.Exec(`INSERT INTO lc VALUES (2, $1)`, types.NewInt(int64(uint64(f.btag)))); !errors.Is(err, ErrLabelConstraint) {
		t.Fatalf("contains violation: %v", err)
	}
	// NULL tag expressions are skipped.
	mustExec(t, sa, `INSERT INTO lc VALUES (3, NULL)`)
}

func TestLabelConstraintPreventsPolyinstantiation(t *testing.T) {
	f := newIFC(t)
	mustExec(t, f.admin, `CREATE TABLE strict (
		id BIGINT PRIMARY KEY,
		tagcol BIGINT,
		LABEL EXACTLY (tagcol)
	)`)
	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO strict VALUES (1, $1)`, types.NewInt(int64(uint64(f.atag))))
	// A lower-labeled process cannot polyinstantiate id=1: the label
	// constraint pins the required label, which it cannot write at.
	spub := f.e.NewSession(f.bob)
	if _, err := spub.Exec(`INSERT INTO strict VALUES (1, $1)`, types.NewInt(int64(uint64(f.atag)))); !errors.Is(err, ErrLabelConstraint) {
		t.Fatalf("polyinstantiation not prevented: %v", err)
	}
}

func TestDeferredTriggerRunsWithQueryLabel(t *testing.T) {
	// §5.2.3: a trigger deferred to commit observes the label of the
	// originating query, not the commit label.
	f := newIFC(t)
	mustExec(t, f.admin, `CREATE TABLE src (id BIGINT PRIMARY KEY)`)
	var sawLabel label.Label
	if err := f.e.RegisterProc("capture_label", func(ps *Session, _ []types.Value) (types.Value, error) {
		sawLabel = ps.Label()
		return types.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, f.admin, `CREATE TRIGGER cap AFTER INSERT ON src deferred EXECUTE PROCEDURE capture_label`)

	sa := f.e.NewSession(f.alice)
	mustExec(t, sa, `BEGIN`)
	if err := sa.AddSecrecy(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO src VALUES (1)`) // query label {atag}
	// Raise further before commit; the trigger must still see {atag}.
	if err := sa.AddSecrecy(f.btag); err != nil {
		t.Fatal(err)
	}
	// Commit label {atag,btag} ⊆ tuple {atag}? No! Declassify btag
	// first (alice lacks authority) — instead use a tag she owns:
	// roll back and redo with a cleaner shape.
	mustExec(t, sa, `ROLLBACK`)

	sa2 := f.e.NewSession(f.alice)
	mustExec(t, sa2, `BEGIN`)
	if err := sa2.AddSecrecy(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa2, `INSERT INTO src VALUES (2)`)
	// Declassify before commit: commit label {} but query label {atag}.
	if err := sa2.Declassify(f.atag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa2, `COMMIT`)
	if !sawLabel.Equal(label.New(f.atag)) {
		t.Fatalf("deferred trigger saw %v, want {atag}", sawLabel)
	}
	// And the session's label was restored after the deferred run.
	if !sa2.Label().IsEmpty() {
		t.Fatalf("session label after commit: %v", sa2.Label())
	}
}

func TestStoredAuthorityClosureTrigger(t *testing.T) {
	// A trigger registered as a stored authority closure runs with its
	// bound authority (§5.2.3) — here it declassifies what it reads.
	f := newIFC(t)
	mustExec(t, f.admin, `
	CREATE TABLE inbox (id BIGINT PRIMARY KEY, v BIGINT);
	CREATE TABLE summary (id BIGINT PRIMARY KEY, v BIGINT)`)
	if err := f.e.RegisterClosureProc("summarize", func(ps *Session, _ []types.Value) (types.Value, error) {
		ctx := ps.TriggerContext()
		// Declassify alice's tag (closure authority) so the summary
		// row is written public.
		if err := ps.Declassify(f.atag); err != nil {
			return types.Null, err
		}
		_, err := ps.Exec(`INSERT INTO summary VALUES ($1, $2)`, ctx.New[0], ctx.New[1])
		return types.Null, err
	}, f.alice, f.alice, label.New(f.atag)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, f.admin, `CREATE TRIGGER sum1 AFTER INSERT ON inbox EXECUTE PROCEDURE summarize`)

	sa := f.session(t, f.alice, f.atag)
	mustExec(t, sa, `INSERT INTO inbox VALUES (1, 42)`)
	// The commit label is {} after the closure declassified...
	// actually the closure's declassification applies to the session
	// label, so the inbox tuple is {atag} and summary {} — the commit
	// label (now empty) flows to both. Verify labels:
	reader := f.e.NewSession(f.bob)
	res := mustExec(t, reader, `SELECT v FROM summary`)
	expectRows(t, res, "42")
	res = mustExec(t, reader, `SELECT v FROM inbox`)
	if len(res.Rows) != 0 {
		t.Fatal("inbox leaked")
	}
}

func TestReducedAuthorityCall(t *testing.T) {
	f := newIFC(t)
	sa := f.session(t, f.alice, f.atag)
	err := sa.WithReducedAuthority(func() error {
		if err := sa.Declassify(f.atag); err == nil {
			return errors.New("declassified with no authority")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Authority restored after the call.
	if err := sa.Declassify(f.atag); err != nil {
		t.Fatalf("authority not restored: %v", err)
	}
}

func TestIFCOffBehavesLikePlainDB(t *testing.T) {
	e := MustNew(Config{IFC: false})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	// Label ops are no-ops; everything is visible; RowLabels nil.
	p := e.CreatePrincipal("p")
	s2 := e.NewSession(p)
	res := mustExec(t, s2, `SELECT * FROM t`)
	if len(res.Rows) != 1 || res.RowLabels != nil {
		t.Fatalf("ifc-off visibility: %d rows, labels %v", len(res.Rows), res.RowLabels)
	}
	// Duplicate key is a plain unique violation (no polyinstantiation).
	if _, err := s2.Exec(`INSERT INTO t VALUES (1)`); !errors.Is(err, ErrUnique) {
		t.Fatalf("ifc-off unique: %v", err)
	}
}

func TestSerializableModeRoundTrip(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	if err := sa.Begin(txn.Serializable); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `SELECT 1`)
	if err := sa.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSQLCallableIFCFunctions(t *testing.T) {
	f := newIFC(t)
	sa := f.e.NewSession(f.alice)
	// addsecrecy via SQL (the paper's PERFORM addsecrecy(...) pattern).
	mustExec(t, sa, `SELECT addsecrecy('alice_tag')`)
	if !sa.Label().Equal(label.New(f.atag)) {
		t.Fatalf("label after addsecrecy: %v", sa.Label())
	}
	res := mustExec(t, sa, `SELECT getlabel()`)
	if !res.Rows[0][0].Label().Equal(label.New(f.atag)) {
		t.Fatalf("getlabel: %v", res.Rows[0][0])
	}
	res = mustExec(t, sa, `SELECT has_authority('alice_tag'), has_authority('bob_tag')`)
	expectRows(t, res, "t|f")
	mustExec(t, sa, `SELECT declassify('alice_tag')`)
	if !sa.Label().IsEmpty() {
		t.Fatalf("label after declassify: %v", sa.Label())
	}
	// declassify without authority fails through SQL too.
	mustExec(t, sa, `SELECT addsecrecy('bob_tag')`)
	if _, err := sa.Exec(`SELECT declassify('bob_tag')`); err == nil {
		t.Fatal("SQL declassify without authority")
	}
	res = mustExec(t, sa, `SELECT tag('bob_tag')`)
	if res.Rows[0][0].Int() != int64(uint64(f.btag)) {
		t.Fatalf("tag(): %v", res.Rows[0][0])
	}
}
