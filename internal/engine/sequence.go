package engine

import (
	"fmt"
	"sync"

	"ifdb/internal/types"
)

// Labeled sequences.
//
// The paper leaves sequences as future work: "we are also interested
// in how to incorporate other SQL abstractions, such as sequences,
// into the IFDB model without introducing covert channels" (§10). The
// covert channel is the counter itself: if nextval() drew from one
// shared counter, a public process could watch the counter jump and
// learn that some secret process allocated ids — the same class of
// channel as the tuple-allocation ordering of §7.3.
//
// The design here partitions every sequence by the *exact* process
// label: nextval(seq) draws from the counter for the calling process's
// current label. Counters for different labels are independent, so
// observing any one partition reveals only allocations by processes at
// that same label — which could already communicate freely. The cost
// is that sequence values are unique per (sequence, label) rather than
// globally; applications that need global uniqueness combine the value
// with a tag id, exactly as they must already cope with
// polyinstantiated keys (§5.2.1).
type sequence struct {
	mu       sync.Mutex
	counters map[string]int64 // label-key -> last value
}

// CreateSequence registers a sequence. Creating one requires nothing
// special: the sequence object itself carries no data.
func (e *Engine) CreateSequence(name string) error {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	if e.sequences == nil {
		e.sequences = make(map[string]*sequence)
	}
	if _, dup := e.sequences[name]; dup {
		return fmt.Errorf("engine: sequence %q already exists", name)
	}
	e.sequences[name] = &sequence{counters: make(map[string]int64)}
	return nil
}

// nextval returns the next value of the named sequence in the calling
// session's label partition.
func (s *Session) nextval(name string) (types.Value, error) {
	s.eng.seqMu.RLock()
	seq, ok := s.eng.sequences[name]
	s.eng.seqMu.RUnlock()
	if !ok {
		return types.Null, fmt.Errorf("engine: no sequence %q", name)
	}
	key := ""
	if s.eng.cfg.IFC {
		key = s.plabel.String()
	}
	seq.mu.Lock()
	seq.counters[key]++
	v := seq.counters[key]
	seq.mu.Unlock()
	return types.NewInt(v), nil
}
