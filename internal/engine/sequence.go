package engine

import (
	"fmt"
	"sort"
	"sync"

	"ifdb/internal/types"
)

// Labeled sequences.
//
// The paper leaves sequences as future work: "we are also interested
// in how to incorporate other SQL abstractions, such as sequences,
// into the IFDB model without introducing covert channels" (§10). The
// covert channel is the counter itself: if nextval() drew from one
// shared counter, a public process could watch the counter jump and
// learn that some secret process allocated ids — the same class of
// channel as the tuple-allocation ordering of §7.3.
//
// The design here partitions every sequence by the *exact* process
// label: nextval(seq) draws from the counter for the calling process's
// current label. Counters for different labels are independent, so
// observing any one partition reveals only allocations by processes at
// that same label — which could already communicate freely. The cost
// is that sequence values are unique per (sequence, label) rather than
// globally; applications that need global uniqueness combine the value
// with a tag id, exactly as they must already cope with
// polyinstantiated keys (§5.2.1).
type sequence struct {
	mu       sync.Mutex
	counters map[string]int64 // label-key -> last value

	// recovered marks a sequence whose counters were rebuilt by crash
	// recovery before the application re-registered it; the next
	// CreateSequence call adopts it instead of erroring.
	recovered bool
}

// CreateSequence registers a sequence. Creating one requires nothing
// special: the sequence object itself carries no data. Sequences are
// registered from application code each run (like stored procedures),
// but their counters are durable: re-creating a sequence recovery
// already rebuilt adopts the recovered counters.
func (e *Engine) CreateSequence(name string) error {
	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	if e.sequences == nil {
		e.sequences = make(map[string]*sequence)
	}
	if existing, dup := e.sequences[name]; dup {
		existing.mu.Lock()
		wasRecovered := existing.recovered
		existing.recovered = false
		existing.mu.Unlock()
		if wasRecovered {
			return nil
		}
		return fmt.Errorf("engine: sequence %q already exists", name)
	}
	e.sequences[name] = &sequence{counters: make(map[string]int64)}
	return nil
}

// nextval returns the next value of the named sequence in the calling
// session's label partition. Each allocation is WAL-logged so a
// recovered database never re-issues a value a committed transaction
// already consumed (durability rides on that transaction's fsync).
func (s *Session) nextval(name string) (types.Value, error) {
	// Allocation is a mutation: on a replica the stream owns the
	// counters (an unlogged local bump would collide with the value
	// the primary hands out next).
	if err := s.requireWritable(); err != nil {
		return types.Null, err
	}
	s.eng.seqMu.RLock()
	seq, ok := s.eng.sequences[name]
	s.eng.seqMu.RUnlock()
	if !ok {
		return types.Null, fmt.Errorf("engine: no sequence %q", name)
	}
	key := ""
	if s.eng.cfg.IFC {
		key = s.plabel.String()
	}
	seq.mu.Lock()
	seq.counters[key]++
	v := seq.counters[key]
	seq.mu.Unlock()
	s.eng.logSeqVal(name, key, v)
	return types.NewInt(v), nil
}

// restoreSeqVal replays one RecSeqVal record: counters only move
// forward, and the sequence is created (marked recovered) if the
// application has not re-registered it yet.
func (e *Engine) restoreSeqVal(name, key string, value int64) {
	e.seqMu.Lock()
	if e.sequences == nil {
		e.sequences = make(map[string]*sequence)
	}
	seq, ok := e.sequences[name]
	if !ok {
		seq = &sequence{counters: make(map[string]int64), recovered: true}
		e.sequences[name] = seq
	}
	e.seqMu.Unlock()
	seq.mu.Lock()
	if value > seq.counters[key] {
		seq.counters[key] = value
	}
	seq.mu.Unlock()
}

// appendSequenceSnapshot serializes sequence counters for a
// checkpoint: name count, then per sequence its name, partition
// count, and (label key, last value) pairs.
func (e *Engine) appendSequenceSnapshot(body []byte) []byte {
	e.seqMu.RLock()
	names := make([]string, 0, len(e.sequences))
	for n := range e.sequences {
		names = append(names, n)
	}
	sort.Strings(names)
	body = appendUv(body, uint64(len(names)))
	for _, n := range names {
		seq := e.sequences[n]
		seq.mu.Lock()
		keys := make([]string, 0, len(seq.counters))
		for k := range seq.counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		body = appendStr(body, n)
		body = appendUv(body, uint64(len(keys)))
		for _, k := range keys {
			body = appendStr(body, k)
			body = appendUv(body, uint64(seq.counters[k]))
		}
		seq.mu.Unlock()
	}
	e.seqMu.RUnlock()
	return body
}

// loadSequenceSnapshot is the inverse of appendSequenceSnapshot.
func (e *Engine) loadSequenceSnapshot(r *snapReader) {
	for n := r.uv(); n > 0; n-- {
		name := r.str()
		for p := r.uv(); p > 0; p-- {
			key := r.str()
			value := int64(r.uv())
			e.restoreSeqVal(name, key, value)
		}
	}
}
