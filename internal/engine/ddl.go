package engine

import (
	"fmt"
	"strings"

	"ifdb/internal/catalog"
	"ifdb/internal/index"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// executeCreateTable builds a table from the AST: columns, primary
// key, unique and foreign key constraints, and label constraints.
func (s *Session) executeCreateTable(ct *sql.CreateTableStmt) error {
	if _, exists := s.eng.cat.Table(ct.Name); exists {
		if ct.IfNotExists || s.eng.replaying() {
			// During recovery a table can already exist when a DDL
			// record overlaps the checkpoint snapshot; replay skips it.
			return nil
		}
		return fmt.Errorf("engine: table %q already exists", ct.Name)
	}
	t := &catalog.Table{Name: strings.ToLower(ct.Name), OnDisk: ct.OnDisk}
	heap, err := s.eng.newHeap(ct.Name, ct.OnDisk)
	if err != nil {
		return err
	}
	t.Heap = heap

	var pkCols []string
	var uniqueSingles []string
	for _, cd := range ct.Columns {
		t.Columns = append(t.Columns, catalog.Column{
			Name:    cd.Name,
			Kind:    cd.Type,
			NotNull: cd.NotNull,
			Default: cd.Default,
		})
		if cd.PrimaryKey {
			if pkCols != nil {
				return fmt.Errorf("engine: multiple primary keys for %q", ct.Name)
			}
			pkCols = []string{cd.Name}
		}
		if cd.Unique {
			uniqueSingles = append(uniqueSingles, cd.Name)
		}
		if cd.RefTable != "" {
			refCol := cd.RefColumn
			cons := sql.TableConstraint{
				Kind:       "FOREIGN KEY",
				Columns:    []string{cd.Name},
				RefTable:   cd.RefTable,
				RefColumns: []string{refCol},
				OnDelete:   "RESTRICT",
			}
			ct.Constraints = append(ct.Constraints, cons)
		}
	}

	resolveCols := func(names []string) ([]int, error) {
		out := make([]int, len(names))
		for i, n := range names {
			ci, ok := t.ColIndex(strings.ToLower(n))
			if !ok {
				return nil, fmt.Errorf("engine: unknown column %q in constraint on %q", n, ct.Name)
			}
			out[i] = ci
		}
		return out, nil
	}

	addUnique := func(name string, cols []int, primary bool) {
		ix := &catalog.Index{
			Name:   name,
			Cols:   cols,
			Unique: true,
			Tree:   index.New(),
		}
		t.Indexes = append(t.Indexes, ix)
		if primary {
			t.Primary = ix
		}
	}

	for _, cons := range ct.Constraints {
		switch cons.Kind {
		case "PRIMARY KEY":
			if pkCols != nil {
				return fmt.Errorf("engine: multiple primary keys for %q", ct.Name)
			}
			pkCols = cons.Columns
		case "UNIQUE":
			cols, err := resolveCols(cons.Columns)
			if err != nil {
				return err
			}
			name := cons.Name
			if name == "" {
				name = fmt.Sprintf("%s_unique_%d", t.Name, len(t.Indexes))
			}
			addUnique(name, cols, false)
		case "FOREIGN KEY":
			cols, err := resolveCols(cons.Columns)
			if err != nil {
				return err
			}
			ref, ok := s.eng.cat.Table(cons.RefTable)
			if !ok {
				return fmt.Errorf("engine: foreign key on %q references unknown table %q", ct.Name, cons.RefTable)
			}
			refNames := cons.RefColumns
			if len(refNames) == 1 && refNames[0] == "" {
				// Inline REFERENCES without a column: use the primary key.
				if ref.Primary == nil || len(ref.Primary.Cols) != 1 {
					return fmt.Errorf("engine: REFERENCES %s needs an explicit column", cons.RefTable)
				}
				refNames = []string{ref.Columns[ref.Primary.Cols[0]].Name}
			}
			refCols := make([]int, len(refNames))
			for i, n := range refNames {
				ci, ok := ref.ColIndex(strings.ToLower(n))
				if !ok {
					return fmt.Errorf("engine: foreign key references unknown column %s.%s", cons.RefTable, n)
				}
				refCols[i] = ci
			}
			name := cons.Name
			if name == "" {
				name = fmt.Sprintf("%s_fk_%d", t.Name, len(t.ForeignKeys))
			}
			t.ForeignKeys = append(t.ForeignKeys, catalog.ForeignKey{
				Name:     name,
				Cols:     cols,
				RefTable: strings.ToLower(cons.RefTable),
				RefCols:  refCols,
				OnDelete: cons.OnDelete,
			})
		case "LABEL EXACTLY", "LABEL CONTAINS":
			name := cons.Name
			if name == "" {
				name = fmt.Sprintf("%s_label_%d", t.Name, len(t.LabelConstraints))
			}
			t.LabelConstraints = append(t.LabelConstraints, catalog.LabelConstraint{
				Name:  name,
				Exact: cons.Kind == "LABEL EXACTLY",
				Exprs: cons.LabelExprs,
			})
		case "CHECK":
			name := cons.Name
			if name == "" {
				name = fmt.Sprintf("%s_check_%d", t.Name, len(t.Checks))
			}
			t.Checks = append(t.Checks, catalog.CheckConstraint{Name: name, Expr: cons.Check})
		default:
			return fmt.Errorf("engine: unsupported constraint kind %q", cons.Kind)
		}
	}

	if pkCols != nil {
		cols, err := resolveCols(pkCols)
		if err != nil {
			return err
		}
		for _, ci := range cols {
			t.Columns[ci].NotNull = true
		}
		addUnique(t.Name+"_pkey", cols, true)
	}
	for _, cn := range uniqueSingles {
		cols, err := resolveCols([]string{cn})
		if err != nil {
			return err
		}
		addUnique(fmt.Sprintf("%s_%s_key", t.Name, cn), cols, false)
	}
	if s.eng.replaying() && len(t.Indexes) > 0 {
		// Recovery reopens USING DISK heap files that already hold
		// flushed versions; their index entries must be rebuilt here —
		// WAL replay only indexes versions it places itself.
		t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
			for _, ix := range t.Indexes {
				key := make([]types.Value, len(ix.Cols))
				for i, c := range ix.Cols {
					key[i] = tv.Row[c]
				}
				ix.Tree.Insert(key, tid)
			}
			return true
		})
	}
	s.eng.invalidatePlans()
	return s.eng.cat.AddTable(t)
}

// executeCreateIndex builds a secondary index and backfills it from
// all existing tuple versions (index entries are per-version; readers
// filter by visibility, so backfilling everything is correct).
func (s *Session) executeCreateIndex(ci *sql.CreateIndexStmt) error {
	t, ok := s.eng.cat.Table(ci.Table)
	if !ok {
		return fmt.Errorf("engine: no table %q", ci.Table)
	}
	if s.eng.replaying() {
		for _, ix := range t.Indexes {
			if ix.Name == ci.Name {
				return nil // snapshot/WAL overlap: index already rebuilt
			}
		}
	}
	cols := make([]int, len(ci.Columns))
	for i, n := range ci.Columns {
		c, ok := t.ColIndex(strings.ToLower(n))
		if !ok {
			return fmt.Errorf("engine: unknown column %q", n)
		}
		cols[i] = c
	}
	ix := &catalog.Index{Name: ci.Name, Cols: cols, Unique: ci.Unique, Tree: index.New()}
	t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
		key := make([]types.Value, len(cols))
		for i, c := range cols {
			key[i] = tv.Row[c]
		}
		ix.Tree.Insert(key, tid)
		return true
	})
	t.Indexes = append(t.Indexes, ix)
	s.eng.invalidatePlans()
	return nil
}

// executeCreateView registers a view. For a declassifying view the
// creating session's principal must hold authority for every tag being
// bound — a view can never declassify more than its creator could
// (paper §4.3).
func (s *Session) executeCreateView(cv *sql.CreateViewStmt) error {
	v := &catalog.View{
		Name:    strings.ToLower(cv.Name),
		Columns: cv.Columns,
		Select:  cv.Select,
		Owner:   s.principal,
	}
	if len(cv.Declassifying) > 0 {
		if !s.eng.cfg.IFC {
			return fmt.Errorf("engine: DECLASSIFYING views require IFC mode")
		}
		decl, err := s.eng.resolveTagNames(cv.Declassifying)
		if err != nil {
			return err
		}
		for _, t := range decl {
			// Recovery replays a view whose authority was verified at
			// original creation time (and may since have been revoked —
			// revocation does not retract existing views).
			if !s.eng.replaying() && !s.eng.auth.HasAuthority(s.principal, t) {
				name, _ := s.eng.TagName(t)
				return fmt.Errorf("%w: creating view %q requires authority for tag %q", ErrAuthority, cv.Name, name)
			}
		}
		v.Declassify = decl
	}
	if s.eng.replaying() {
		if _, exists := s.eng.cat.View(v.Name); exists {
			return nil
		}
	}
	s.eng.invalidatePlans()
	return s.eng.cat.AddView(v)
}

// executeCreateTrigger attaches a registered stored procedure to a
// table event. If the procedure is a stored authority closure, the
// trigger will run with the closure's authority (§5.2.3).
func (s *Session) executeCreateTrigger(tr *sql.CreateTriggerStmt) error {
	t, ok := s.eng.cat.Table(tr.Table)
	if !ok {
		return fmt.Errorf("engine: no table %q", tr.Table)
	}
	if _, ok := s.eng.LookupProc(tr.Proc); !ok && !s.eng.replaying() {
		// During recovery stored procedures are not registered yet
		// (applications re-register them after Open); the trigger is
		// restored by name and resolves at fire time.
		return fmt.Errorf("engine: no procedure %q for trigger %q", tr.Proc, tr.Name)
	}
	for _, existing := range t.Triggers {
		if existing.Name == tr.Name {
			if s.eng.replaying() {
				return nil
			}
			return fmt.Errorf("engine: trigger %q already exists on %q", tr.Name, tr.Table)
		}
	}
	t.Triggers = append(t.Triggers, &catalog.Trigger{
		Name:     tr.Name,
		Timing:   tr.Timing,
		Event:    tr.Event,
		Proc:     tr.Proc,
		Deferred: tr.Deferred,
	})
	return nil
}
