package engine

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ifdb/internal/txn"
	"ifdb/internal/types"
	"ifdb/internal/wal"
)

// openDurableEngine opens an engine on dir. Crash-simulation tests
// simply drop the returned engine without Close; reopening the same
// dir first crashes the previous incarnation (releasing the DataDir
// lock the way process death would, with no flush or checkpoint).
var crashReg sync.Map // dir -> *Engine

func openDurableEngine(t *testing.T, dir string, ifc bool) *Engine {
	t.Helper()
	if prev, ok := crashReg.Load(dir); ok {
		prev.(*Engine).Crash()
	}
	e, err := New(Config{IFC: ifc, DataDir: dir, SyncMode: "off"})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	crashReg.Store(dir, e)
	return e
}

func countRows(t *testing.T, s *Session, q string) int {
	t.Helper()
	res, err := s.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return len(res.Rows)
}

// TestTornRestartMemTable is the core crash-recovery contract on an
// in-memory table: committed transactions survive an unclean reopen,
// in-flight and aborted ones do not.
func TestTornRestartMemTable(t *testing.T) {
	for _, disk := range []bool{false, true} {
		name := "mem"
		using := ""
		if disk {
			name, using = "disk", " USING DISK"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			e1 := openDurableEngine(t, dir, false)
			s := e1.NewSession(e1.Admin())
			mustExec(t, s, `CREATE TABLE accounts (id BIGINT PRIMARY KEY, balance BIGINT)`+using)
			mustExec(t, s, `INSERT INTO accounts VALUES (1, 100), (2, 200), (3, 300)`)
			mustExec(t, s, `UPDATE accounts SET balance = 150 WHERE id = 1`)
			mustExec(t, s, `DELETE FROM accounts WHERE id = 3`)

			// An explicitly aborted transaction.
			mustExec(t, s, `BEGIN`)
			mustExec(t, s, `INSERT INTO accounts VALUES (50, 1)`)
			mustExec(t, s, `ROLLBACK`)

			// In flight at the "crash": began, wrote, never committed.
			// It deletes id=2 as well — the stamp must not survive.
			s2 := e1.NewSession(e1.Admin())
			mustExec(t, s2, `BEGIN`)
			mustExec(t, s2, `INSERT INTO accounts VALUES (99, 999)`)
			mustExec(t, s2, `DELETE FROM accounts WHERE id = 2`)
			// no COMMIT: crash here.

			e2 := openDurableEngine(t, dir, false)
			r := e2.NewSession(e2.Admin())
			res := mustExec(t, r, `SELECT id, balance FROM accounts ORDER BY id`)
			if len(res.Rows) != 2 {
				t.Fatalf("after recovery: %d rows, want 2: %v", len(res.Rows), res.Rows)
			}
			if res.Rows[0][1].Int() != 150 || res.Rows[1][0].Int() != 2 {
				t.Fatalf("wrong rows after recovery: %v", res.Rows)
			}
			// The in-flight deleter's xmax stamp must be gone: id=2 is
			// updatable without a serialization failure.
			mustExec(t, r, `UPDATE accounts SET balance = 250 WHERE id = 2`)
			// Primary key index recovered: uniqueness still enforced.
			if _, err := r.Exec(`INSERT INTO accounts VALUES (1, 0)`); !errors.Is(err, ErrUnique) {
				t.Fatalf("unique constraint lost in recovery: %v", err)
			}
			// Index lookups see recovered rows.
			res = mustExec(t, r, `SELECT balance FROM accounts WHERE id = 2`)
			if len(res.Rows) != 1 || res.Rows[0][0].Int() != 250 {
				t.Fatalf("index probe after recovery: %v", res.Rows)
			}
		})
	}
}

// TestRecoveryIFCState checks that labels, principals, tags, and
// delegations survive a torn restart: the security state is data too.
func TestRecoveryIFCState(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, true)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE secrets (k TEXT PRIMARY KEY, v TEXT)`)

	alice := e1.CreatePrincipal("alice")
	bob := e1.CreatePrincipal("bob")
	tag, err := e1.CreateTag(alice, "alice_medical")
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Authority().Delegate(alice, bob, tag); err != nil {
		t.Fatal(err)
	}

	sa := e1.NewSession(alice)
	if err := sa.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO secrets VALUES ('diagnosis', 'HIV')`)
	// Unlabeled, public row.
	mustExec(t, s, `INSERT INTO secrets VALUES ('motd', 'hello')`)
	// crash.

	e2 := openDurableEngine(t, dir, true)
	alice2, ok := e2.Authority().PrincipalByName("alice")
	if !ok || alice2 != alice {
		t.Fatalf("alice not recovered: got %d want %d", alice2, alice)
	}
	bob2, _ := e2.Authority().PrincipalByName("bob")
	if bob2 != bob {
		t.Fatalf("bob not recovered")
	}
	tag2, ok := e2.LookupTag("alice_medical")
	if !ok || tag2 != tag {
		t.Fatalf("tag not recovered: got %d want %d", tag2, tag)
	}
	if e2.Admin() != e1.Admin() {
		t.Fatalf("admin principal changed across restart: %d vs %d", e2.Admin(), e1.Admin())
	}

	// Label confinement still holds on the recovered heap.
	pub := e2.NewSession(e2.Admin())
	if n := countRows(t, pub, `SELECT * FROM secrets`); n != 1 {
		t.Fatalf("empty-label session sees %d rows, want 1", n)
	}
	sa2 := e2.NewSession(alice2)
	if err := sa2.AddSecrecy(tag2); err != nil {
		t.Fatal(err)
	}
	if n := countRows(t, sa2, `SELECT * FROM secrets`); n != 2 {
		t.Fatalf("contaminated session sees %d rows, want 2", n)
	}
	// Authority (including the recovered delegation) still works.
	if err := sa2.Declassify(tag2); err != nil {
		t.Fatalf("alice lost her own authority: %v", err)
	}
	if !e2.Authority().HasAuthority(bob2, tag2) {
		t.Fatalf("bob's delegated authority lost in recovery")
	}
}

// TestCheckpointThenCrash covers the snapshot + tail-of-log replay
// path: work before the checkpoint comes from the snapshot, work
// after it from the WAL, and the WAL is actually truncated.
func TestCheckpointThenCrash(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE log (id BIGINT PRIMARY KEY, msg TEXT) USING DISK`)
	mustExec(t, s, `CREATE TABLE memlog (id BIGINT PRIMARY KEY, msg TEXT)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, s, `INSERT INTO log VALUES ($1, 'before')`, types.NewInt(int64(i)))
		mustExec(t, s, `INSERT INTO memlog VALUES ($1, 'before')`, types.NewInt(int64(i)))
	}
	if err := e1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	walSize := func() int64 {
		st, err := os.Stat(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	small := walSize()
	for i := 11; i <= 20; i++ {
		mustExec(t, s, `INSERT INTO log VALUES ($1, 'after')`, types.NewInt(int64(i)))
		mustExec(t, s, `INSERT INTO memlog VALUES ($1, 'after')`, types.NewInt(int64(i)))
	}
	mustExec(t, s, `DELETE FROM memlog WHERE id = 1`)
	if walSize() <= small {
		t.Fatalf("WAL did not grow after checkpoint")
	}
	// crash.

	e2 := openDurableEngine(t, dir, false)
	r := e2.NewSession(e2.Admin())
	if n := countRows(t, r, `SELECT * FROM log`); n != 20 {
		t.Fatalf("disk table: %d rows, want 20", n)
	}
	if n := countRows(t, r, `SELECT * FROM memlog`); n != 19 {
		t.Fatalf("mem table: %d rows, want 19", n)
	}
	// Both snapshot-restored and WAL-replayed rows must be indexed.
	for _, id := range []int64{2, 15} {
		res := mustExec(t, r, `SELECT msg FROM memlog WHERE id = $1`, types.NewInt(id))
		if len(res.Rows) != 1 {
			t.Fatalf("memlog id %d not found via index", id)
		}
	}
}

// TestCleanShutdownRecoversFromSnapshotAlone: Close checkpoints, so a
// reopened database replays an empty log.
func TestCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2)`)
	if err := e1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := e1.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	e2 := openDurableEngine(t, dir, false)
	r := e2.NewSession(e2.Admin())
	if n := countRows(t, r, `SELECT * FROM t`); n != 2 {
		t.Fatalf("after clean shutdown: %d rows, want 2", n)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptWALTail appends garbage to the log (a torn final write)
// and checks recovery keeps everything before it.
func TestCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	// crash, with junk after the last record.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2 := openDurableEngine(t, dir, false)
	r := e2.NewSession(e2.Admin())
	if n := countRows(t, r, `SELECT * FROM t`); n != 3 {
		t.Fatalf("after torn tail: %d rows, want 3", n)
	}
	// And the engine can keep writing + survive another restart.
	mustExec(t, r, `INSERT INTO t VALUES (4)`)
	e3 := openDurableEngine(t, dir, false)
	r3 := e3.NewSession(e3.Admin())
	if n := countRows(t, r3, `SELECT * FROM t`); n != 4 {
		t.Fatalf("after re-append: %d rows, want 4", n)
	}
}

// TestRecoveryDDLObjects: views (incl. declassifying), secondary
// indexes, triggers, and DROP TABLE all replay.
func TestRecoveryDDLObjects(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, true)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE cars (id BIGINT PRIMARY KEY, owner TEXT, speed BIGINT)`)
	mustExec(t, s, `CREATE INDEX cars_owner ON cars (owner)`)
	mustExec(t, s, `CREATE TABLE scratch (x BIGINT)`)
	mustExec(t, s, `DROP TABLE scratch`)

	alice := e1.CreatePrincipal("alice")
	tag, err := e1.CreateTag(alice, "alice_loc")
	if err != nil {
		t.Fatal(err)
	}
	sa := e1.NewSession(alice)
	if err := sa.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO cars VALUES (1, 'alice', 88)`)
	if err := sa.Declassify(tag); err != nil {
		t.Fatal(err)
	}
	// A declassifying view created under alice's authority.
	mustExec(t, sa, `CREATE VIEW fast_cars AS SELECT id, speed FROM cars WHERE speed > 50 WITH DECLASSIFYING (alice_loc)`)

	// A trigger bound to a stored procedure.
	if err := e1.RegisterProc("audit", func(s *Session, args []types.Value) (types.Value, error) {
		return types.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TRIGGER cars_audit AFTER INSERT ON cars EXECUTE PROCEDURE audit`)
	// crash.

	e2 := openDurableEngine(t, dir, true)
	if _, ok := e2.Catalog().Table("scratch"); ok {
		t.Fatalf("dropped table resurrected")
	}
	ct, ok := e2.Catalog().Table("cars")
	if !ok {
		t.Fatalf("cars not recovered")
	}
	foundIdx := false
	for _, ix := range ct.Indexes {
		if ix.Name == "cars_owner" {
			foundIdx = true
		}
	}
	if !foundIdx {
		t.Fatalf("secondary index not recovered")
	}
	v, ok := e2.Catalog().View("fast_cars")
	if !ok || !v.IsDeclassifying() {
		t.Fatalf("declassifying view not recovered: %+v", v)
	}
	// The view declassifies: an empty-label session sees the row.
	pub := e2.NewSession(e2.Admin())
	if n := countRows(t, pub, `SELECT * FROM fast_cars`); n != 1 {
		t.Fatalf("declassifying view returned %d rows, want 1", n)
	}
	// The trigger survives; after the app re-registers the proc it
	// fires (and without registration the insert fails loudly).
	alice2, _ := e2.Authority().PrincipalByName("alice")
	sa2 := e2.NewSession(alice2)
	tag2, _ := e2.LookupTag("alice_loc")
	if err := sa2.AddSecrecy(tag2); err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := e2.RegisterProc("audit", func(s *Session, args []types.Value) (types.Value, error) {
		fired = true
		return types.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa2, `INSERT INTO cars VALUES (2, 'alice', 30)`)
	if !fired {
		t.Fatalf("recovered trigger did not fire")
	}
}

// TestRecoverySequences: allocated values never repeat after a crash.
func TestRecoverySequences(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	if err := e1.CreateSequence("ids"); err != nil {
		t.Fatal(err)
	}
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (nextval('ids')), (nextval('ids')), (nextval('ids'))`)
	// crash.

	e2 := openDurableEngine(t, dir, false)
	if err := e2.CreateSequence("ids"); err != nil {
		t.Fatalf("re-registering recovered sequence: %v", err)
	}
	s2 := e2.NewSession(e2.Admin())
	mustExec(t, s2, `INSERT INTO t VALUES (nextval('ids'))`)
	res := mustExec(t, s2, `SELECT id FROM t ORDER BY id DESC`)
	if len(res.Rows) != 4 || res.Rows[0][0].Int() <= 3 {
		t.Fatalf("sequence regressed after recovery: %v", res.Rows)
	}
}

// TestRecoveryCommitDurabilityModes runs the torn-restart flow under
// each sync mode; all must recover identically in-process (fsync
// matters only for power loss, which tests cannot simulate).
func TestRecoveryCommitDurabilityModes(t *testing.T) {
	for _, mode := range []string{"off", "commit", "group"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			e1, err := New(Config{DataDir: dir, SyncMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			s := e1.NewSession(e1.Admin())
			mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
			mustExec(t, s, `INSERT INTO t VALUES (1)`)
			e1.Crash()
			e2, err := New(Config{DataDir: dir, SyncMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			r := e2.NewSession(e2.Admin())
			if n := countRows(t, r, `SELECT * FROM t`); n != 1 {
				t.Fatalf("mode %s: %d rows, want 1", mode, n)
			}
		})
	}
}

// TestExplicitAbortNotRelogged: recovery appends abort records only
// for transactions with *no* outcome record. An explicitly rolled
// back transaction already has one — re-logging it on every
// crash-restart would accumulate duplicates and spuriously advance
// the log's last-state position (defeating the replica fast-forward
// path after clean restarts).
func TestExplicitAbortNotRelogged(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)
	mustExec(t, s, `ROLLBACK`)

	countAborts := func() int {
		recs, _, err := wal.ReadAll(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range recs {
			if r.Type == wal.RecAbort {
				n++
			}
		}
		return n
	}
	if n := countAborts(); n != 1 {
		t.Fatalf("%d abort records before restart, want 1", n)
	}
	openDurableEngine(t, dir, false) // crash + reopen
	if n := countAborts(); n != 1 {
		t.Fatalf("%d abort records after crash-restart, want 1 (no duplicate)", n)
	}
}

// TestRecoveryWithRetainedLog: when a checkpoint keeps the log file
// (a lagging replica subscription pins it), the snapshot overlaps the
// retained records. Recovery must replay that shape cleanly — in
// particular a non-owner REVOKE whose edge the snapshot already
// reflects must not error, and the DDL history must not duplicate.
func TestRecoveryWithRetainedLog(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, true)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	owner := e1.CreatePrincipal("owner")
	mid := e1.CreatePrincipal("mid")
	leaf := e1.CreatePrincipal("leaf")
	tag, err := e1.CreateTag(owner, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Authority().Delegate(owner, mid, tag); err != nil {
		t.Fatal(err)
	}
	if err := e1.Authority().Delegate(mid, leaf, tag); err != nil {
		t.Fatal(err)
	}
	// Non-owner revoke: the replay shape Revoke() rejects when the
	// edge is already gone.
	if err := e1.Authority().Revoke(mid, leaf, tag); err != nil {
		t.Fatal(err)
	}

	// Pin the log so the checkpoint keeps every record, then
	// checkpoint: snapshot and retained log now overlap.
	baseBefore := e1.WAL().Base()
	sub := e1.WAL().Subscribe(0)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if e1.WAL().Base() != baseBefore {
		t.Fatal("test premise broken: checkpoint truncated despite subscription")
	}
	sub.Close()
	mustExec(t, s, `INSERT INTO t VALUES (2)`)

	e2 := openDurableEngine(t, dir, true)
	r := e2.NewSession(e2.Admin())
	if n := countRows(t, r, `SELECT * FROM t`); n != 2 {
		t.Fatalf("%d rows after recovery over retained log, want 2", n)
	}
	leaf2, _ := e2.Authority().PrincipalByName("leaf")
	mid2, _ := e2.Authority().PrincipalByName("mid")
	if e2.Authority().HasAuthority(leaf2, tag) {
		t.Fatal("revoked delegation resurrected by replay")
	}
	if !e2.Authority().HasAuthority(mid2, tag) {
		t.Fatal("mid's delegation lost in replay")
	}
	// DDL history must not duplicate across snapshot + retained log.
	e3 := openDurableEngine(t, dir, true)
	r3 := e3.NewSession(e3.Admin())
	if n := countRows(t, r3, `SELECT * FROM t`); n != 2 {
		t.Fatalf("%d rows after second recovery, want 2", n)
	}
}

// TestSnapshotCoversInFlightWrites: a transaction spanning a
// checkpoint (wrote before it, commits after) must be recovered
// complete — its pre-checkpoint writes come from the snapshot, its
// commit record from the post-checkpoint log.
func TestSnapshotCoversInFlightWrites(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)

	s2 := e1.NewSession(e1.Admin())
	mustExec(t, s2, `BEGIN`)
	mustExec(t, s2, `INSERT INTO t VALUES (42)`)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s2, `COMMIT`)
	// crash.

	e2 := openDurableEngine(t, dir, false)
	r := e2.NewSession(e2.Admin())
	res := mustExec(t, r, `SELECT a FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("txn spanning checkpoint lost: %v", res.Rows)
	}
}

// TestRecoveredXIDsDoNotCollide: new transactions after recovery must
// draw XIDs above everything in the log, or visibility would corrupt.
func TestRecoveredXIDsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	e1 := openDurableEngine(t, dir, false)
	s := e1.NewSession(e1.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	for i := 0; i < 5; i++ {
		mustExec(t, s, `INSERT INTO t VALUES (1)`)
	}
	hi := e1.TxnManager().NextXID()

	e2 := openDurableEngine(t, dir, false)
	tx := e2.TxnManager().Begin(txn.SnapshotIsolation)
	if uint64(tx.XID()) <= hi {
		t.Fatalf("xid %d reused (pre-crash high water %d)", tx.XID(), hi)
	}
	tx.Abort()
}
