package engine

import (
	"errors"
	"testing"
)

// TestDataDirLock: a second engine opening the same DataDir must fail
// with ErrDataDirLocked instead of silently sharing (and corrupting)
// the WAL and heap files; after a clean Close the directory is free.
func TestDataDirLock(t *testing.T) {
	dir := t.TempDir()
	e1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := New(Config{DataDir: dir}); !errors.Is(err, ErrDataDirLocked) {
		t.Fatalf("second open: want ErrDataDirLocked, got %v", err)
	}

	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDataDirLockExternal: DisableLock trusts a caller-held
// AcquireDirLock — the lock still excludes third parties, and engine
// Close does not release it.
func TestDataDirLockExternal(t *testing.T) {
	dir := t.TempDir()
	l, err := AcquireDirLock(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	e, err := New(Config{DataDir: dir, DisableLock: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Engine closed, but the external lock still holds.
	if _, err := AcquireDirLock(dir); !errors.Is(err, ErrDataDirLocked) {
		t.Fatalf("want ErrDataDirLocked while external lock held, got %v", err)
	}
}
