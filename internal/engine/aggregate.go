package engine

import (
	"fmt"
	"time"

	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// nowFunc is the time source for the SQL now() function; benchmarks
// and tests may substitute it.
var nowFunc = time.Now

// aggregate executes a grouped/aggregated SELECT. The accumulator
// (exec.AggState) is shared with the streaming executor and the
// distributed gateway merge.
//
// The label of each output row is the union of the labels of the rows
// that fed it: derived data carries the contamination of its inputs
// (Information Flow Rule). Since every input was already confined to
// the process label, the output is too.
func (s *Session) aggregate(sel *sql.SelectStmt, items []sql.SelectItem, orderExprs []sql.Expr, input *relation, env *exec.Env) (*relation, error) {
	// Gather aggregate nodes across items, HAVING, and ORDER BY.
	var aggs []*sql.FuncCall
	seen := make(map[*sql.FuncCall]bool)
	for _, it := range items {
		exec.CollectAggs(it.Expr, &aggs, seen)
	}
	exec.CollectAggs(sel.Having, &aggs, seen)
	for _, oe := range orderExprs {
		exec.CollectAggs(oe, &aggs, seen)
	}

	// Allocate placeholder parameter indexes after the user's params.
	base := len(env.Params)
	mapping := make(map[*sql.FuncCall]int, len(aggs))
	for i, fc := range aggs {
		mapping[fc] = base + i + 1
	}
	subItems := make([]sql.Expr, len(items))
	for i, it := range items {
		subItems[i] = exec.ReplaceAggs(it.Expr, mapping)
	}
	subHaving := exec.ReplaceAggs(sel.Having, mapping)
	subOrder := make([]sql.Expr, len(orderExprs))
	for i, oe := range orderExprs {
		subOrder[i] = exec.ReplaceAggs(oe, mapping)
	}

	type group struct {
		rep    qrow // representative row (first of group)
		states []*exec.AggState
		lbl    label.Label
		ilbl   label.Label
		first  bool
	}
	groups := make(map[string]*group)
	var order []string

	for _, r := range input.rows {
		env.Row, env.RowLabel, env.RowILabel = r.vals, r.lbl, r.ilbl
		var key string
		if len(sel.GroupBy) > 0 {
			kv := make([]types.Value, len(sel.GroupBy))
			for i, ge := range sel.GroupBy {
				v, err := exec.Eval(ge, env)
				if err != nil {
					return nil, err
				}
				kv[i] = v
			}
			key = rowKey(kv)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{rep: r, states: make([]*exec.AggState, len(aggs)), first: true, ilbl: r.ilbl}
			for i, fc := range aggs {
				g.states[i] = exec.NewAggState(fc)
			}
			groups[key] = g
			order = append(order, key)
		}
		g.lbl = g.lbl.Union(r.lbl)
		if g.first {
			g.first = false
		} else {
			g.ilbl = g.ilbl.Intersect(r.ilbl)
		}
		for i, fc := range aggs {
			if fc.Star {
				if err := g.states[i].Add(types.Null); err != nil {
					return nil, err
				}
				continue
			}
			if len(fc.Args) != 1 {
				return nil, fmt.Errorf("engine: aggregate %s takes one argument", fc.Name)
			}
			v, err := exec.Eval(fc.Args[0], env)
			if err != nil {
				return nil, err
			}
			if err := g.states[i].Add(v); err != nil {
				return nil, err
			}
		}
	}

	// With no GROUP BY, an empty input still yields one group.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		g := &group{rep: qrow{vals: make([]types.Value, len(input.schema))}, states: make([]*exec.AggState, len(aggs))}
		for i, fc := range aggs {
			g.states[i] = exec.NewAggState(fc)
		}
		groups[""] = g
		order = append(order, "")
	}

	out := &relation{schema: outputSchema(items)}
	for _, key := range order {
		g := groups[key]
		params := make([]types.Value, base+len(aggs))
		copy(params, env.Params)
		for i, st := range g.states {
			params[base+i] = st.Result()
		}
		genv := &exec.Env{
			Schema:    input.schema,
			Row:       g.rep.vals,
			RowLabel:  g.lbl,
			RowILabel: g.ilbl,
			Params:    params,
			Funcs:     env.Funcs,
			Subq:      env.Subq,
		}
		if subHaving != nil {
			hv, err := exec.Eval(subHaving, genv)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		vals := make([]types.Value, len(subItems))
		for i, ie := range subItems {
			v, err := exec.Eval(ie, genv)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		var keys []types.Value
		if len(subOrder) > 0 {
			keys = make([]types.Value, len(subOrder))
			for i, oe := range subOrder {
				v, err := exec.Eval(oe, genv)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
		}
		out.rows = append(out.rows, qrow{vals: vals, lbl: g.lbl, ilbl: g.ilbl, sort: keys})
	}
	return out, nil
}
