package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// seedBig fills table big with n single-column rows via multi-row
// inserts (1000 literals per statement).
func seedBig(t *testing.T, s *Session, n int) {
	t.Helper()
	if _, err := s.Exec(`CREATE TABLE big (k BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 1000 {
		hi := lo + 1000
		if hi > n {
			hi = n
		}
		var b strings.Builder
		b.WriteString(`INSERT INTO big VALUES `)
		for k := lo; k < hi; k++ {
			if k > lo {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "(%d)", k)
		}
		if _, err := s.Exec(b.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCursorCancelWithinOneBatch: a cancel that lands mid-stream must
// interrupt the scan within one iterator refill batch — the scan polls
// the cancel flag per tuple, so after the rows already buffered (at
// most one batch) drain, the very next refill fails with ErrCanceled.
func TestCursorCancelWithinOneBatch(t *testing.T) {
	const rows = 200_000
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	seedBig(t, s, rows)

	c, err := s.ExecStream(`SELECT k FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Streaming() {
		t.Fatal("keyless SELECT did not open a streaming cursor")
	}
	first, _, err := c.NextBatch(100)
	if err != nil || len(first) != 100 {
		t.Fatalf("first batch: %d rows, err %v", len(first), err)
	}

	s.Cancel()
	t0 := time.Now()
	extra := 0
	for {
		batch, _, err := c.NextBatch(500)
		if err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("stream failed with %v, want ErrCanceled", err)
			}
			break
		}
		if len(batch) == 0 {
			t.Fatalf("stream drained all %d rows without noticing the cancel", rows+extra)
		}
		extra += len(batch)
	}
	// Bound: the rows buffered by the in-flight refill (≤1024) plus one
	// NextBatch granule of slack.
	if extra > 2048 {
		t.Fatalf("cancel landed after %d rows, want within one scan batch (≤2048)", extra)
	}
	if lat := time.Since(t0); lat > 2*time.Second {
		t.Fatalf("cancel-to-error latency %v", lat)
	}

	// The failed statement's autocommit transaction was aborted and the
	// session recovers once the flag clears.
	if s.InTxn() {
		t.Fatal("statement transaction still open after canceled stream")
	}
	s.ResetCancel()
	if _, err := s.Exec(`SELECT COUNT(*) FROM big WHERE k = 0`); err != nil {
		t.Fatalf("session dead after canceled cursor: %v", err)
	}
}

// TestCursorLifecycle covers the cursor's transaction handling around
// normal exhaustion, abandonment, DML fallback, and explicit
// transactions.
func TestCursorLifecycle(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	seedBig(t, s, 3000)

	// Exhaustion commits the autocommit transaction and frees the session.
	c, err := s.ExecStream(`SELECT k FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		rows, _, err := c.NextBatch(700)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			break
		}
		total += len(rows)
	}
	if total != 3000 {
		t.Fatalf("streamed %d rows, want 3000", total)
	}
	if s.InTxn() {
		t.Fatal("session still in txn after exhausted cursor")
	}

	// Abandonment: Close mid-stream aborts; the session stays usable.
	c, err = s.ExecStream(`SELECT k FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.NextBatch(10); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if s.InTxn() {
		t.Fatal("abandoned cursor left its transaction open")
	}
	if _, err := s.Exec(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("session dead after abandoned cursor: %v", err)
	}

	// DML falls back to a materialized cursor with the affected count.
	c, err = s.ExecStream(`UPDATE big SET k = k WHERE k < 5`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Streaming() {
		t.Fatal("DML opened a streaming cursor")
	}
	if c.Affected() != 5 {
		t.Fatalf("affected %d, want 5", c.Affected())
	}

	// Explicit transaction: the cursor rides it and leaves it open.
	if _, err := s.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO big VALUES (999999)`); err != nil {
		t.Fatal(err)
	}
	c, err = s.ExecStream(`SELECT k FROM big WHERE k > 2990`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		rows, _, err := c.NextBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			break
		}
		n += len(rows)
	}
	if n != 10 { // 2991..2999 plus the uncommitted 999999
		t.Fatalf("in-txn stream saw %d rows, want 10", n)
	}
	if !s.InTxn() {
		t.Fatal("exhausted in-txn cursor closed the explicit transaction")
	}
	if _, err := s.Exec(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
}
