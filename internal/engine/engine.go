// Package engine implements the IFDB database engine: the Query by
// Label model (paper §4), transactions and constraints with the
// IFC-safety rules of §5, and the DIFC management machinery
// (declassifying views, stored authority closures) of §4.3 — all on
// top of the storage, index, and transaction substrates.
//
// The engine can run with information flow control disabled
// (Config.IFC = false), in which case it stores no labels and performs
// no label checks. That configuration is the "PostgreSQL" baseline in
// every benchmark: comparing it with the IFC configuration isolates
// exactly the overhead of labels, as the paper's evaluation did (§8).
package engine

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ifdb/internal/authority"
	"ifdb/internal/catalog"
	"ifdb/internal/label"
	"ifdb/internal/pager"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/txn"
	"ifdb/internal/types"
	"ifdb/internal/wal"
)

// Errors surfaced by the engine. Tests and applications match on
// these with errors.Is.
var (
	// ErrWriteRule is returned when an UPDATE or DELETE touches a
	// tuple whose label is strictly below the process label
	// (paper §4.2: such writes fail rather than silently skip).
	ErrWriteRule = errors.New("engine: write rule violation: tuple label below process label")

	// ErrUnique is a uniqueness violation among *visible* tuples.
	ErrUnique = errors.New("engine: unique constraint violation")

	// ErrForeignKey covers referential integrity failures.
	ErrForeignKey = errors.New("engine: foreign key violation")

	// ErrFKAuthority is returned by the Foreign Key Rule (§5.2.2): the
	// symmetric difference of the two tuples' labels was not covered
	// by declared DECLASSIFYING tags backed by authority.
	ErrFKAuthority = errors.New("engine: foreign key rule: missing declassification authority")

	// ErrLabelConstraint is a label-constraint violation (§5.2.4).
	ErrLabelConstraint = errors.New("engine: label constraint violation")

	// ErrCheck is a CHECK constraint violation.
	ErrCheck = errors.New("engine: check constraint violation")

	// ErrNotNull is a NOT NULL violation.
	ErrNotNull = errors.New("engine: not-null constraint violation")

	// ErrAuthority is returned when an operation requires authority
	// the session's principal does not hold.
	ErrAuthority = errors.New("engine: insufficient authority")

	// ErrContaminated is returned when an operation requires an empty
	// process label (e.g. authority-state updates, §3.2).
	ErrContaminated = errors.New("engine: operation requires an empty label")

	// ErrClearance is the transaction clearance rule (§5.1): in a
	// serializable transaction, adding a tag requires authority for it.
	ErrClearance = errors.New("engine: clearance rule: cannot raise label without authority in serializable transaction")

	// ErrReadOnlyView rejects DML against views.
	ErrReadOnlyView = errors.New("engine: views are not updatable")
)

// Config controls an Engine instance.
type Config struct {
	// IFC enables information flow control. When false the engine
	// behaves as the plain substrate DBMS ("PostgreSQL" baseline):
	// no labels are stored and no flow checks run.
	IFC bool

	// DataDir, when non-empty, is where `USING DISK` tables place
	// their heap files. When empty, disk tables use an in-memory page
	// store behind the same buffer pool (still exercising the paging
	// and eviction path), which benchmarks use to measure I/O
	// amplification without device noise.
	DataDir string

	// BufferPoolPages is the per-table buffer pool capacity for disk
	// tables (default 256 pages = 2 MiB).
	BufferPoolPages int

	// SyncMode selects the WAL durability discipline: "off", "commit"
	// (one fsync per commit), or "group" (batched fsyncs; the default).
	// Meaningful only when DataDir is set — without a data directory
	// there is no log.
	SyncMode string

	// CheckpointEvery, when positive, checkpoints the database on that
	// period: the catalog, authority state, and in-memory heaps are
	// snapshotted, dirty disk pages flushed, and the WAL truncated.
	// Zero disables periodic checkpoints (Checkpoint can still be
	// called explicitly, and Close always takes a final one).
	CheckpointEvery time.Duration

	// Replica puts the engine in read-only continuous-apply mode: it
	// serves queries (with full IFC enforcement) but rejects every
	// write, DDL, and authority mutation from sessions; state changes
	// arrive only through ApplyReplicated (see replica.go). Requires
	// DataDir. Promote ends replica mode at runtime (failover).
	Replica bool

	// ReplRetainBudget caps how many WAL bytes a lagging replica
	// subscription may pin against checkpoint truncation (see
	// wal.Writer.SetRetainBudget). Zero retains the log for every
	// attached replica indefinitely.
	ReplRetainBudget int64

	// DisableLock skips the exclusive DataDir lock. Only for callers
	// that already hold it via AcquireDirLock (the replication
	// follower, which must keep the directory locked across engine
	// restarts during bootstrap).
	DisableLock bool

	// LegacyExec routes SELECT execution through the old materializing
	// tree-walking executor instead of the plan-based streaming one. It
	// exists as the oracle of the differential executor harness
	// (internal/plan/difftest) and will be removed once the streaming
	// executor has soaked for a release.
	LegacyExec bool
}

// Engine is one IFDB database instance.
type Engine struct {
	cfg  Config
	cat  *catalog.Catalog
	auth *authority.State
	clos *authority.ClosureRegistry
	hier *label.Hierarchy
	txns *txn.Manager

	// tagNames maps the application-visible tag names used in SQL
	// (DECLASSIFYING clauses, label constraints) to tag ids.
	tagMu    sync.RWMutex
	tagNames map[string]label.Tag
	nameOf   map[label.Tag]string

	// procs are stored procedures: Go functions callable from SQL and
	// from triggers. A proc may be bound to an authority closure.
	procMu sync.RWMutex
	procs  map[string]*Proc

	// admin is the administrator principal: it owns the schema but —
	// following §3.3 — holds no tag authority unless explicitly
	// delegated.
	admin authority.Principal

	// stmtCache caches parsed read/DML statements by query text.
	stmtCache sync.Map // string -> []sql.Statement

	// planCache caches analyzed query plans by (pinned) SELECT AST
	// node. Entries are validated against planEpoch, which every
	// catalog-shape change (DDL, DROP, shard-guard install) bumps —
	// a cached plan holds direct *catalog.Table and *catalog.Index
	// pointers, so any schema change must invalidate it.
	planCache sync.Map // *sql.SelectStmt -> *planEntry
	planEpoch atomic.Uint64

	// parses counts sql.ParseAll invocations (cache misses and DDL).
	// Prepared-statement tests and benchmarks assert on it: executing
	// a prepared handle must not move it.
	parses atomic.Int64

	// sequences are labeled sequences (see sequence.go).
	seqMu     sync.RWMutex
	sequences map[string]*sequence

	// diskTables counts tables created USING DISK (for stats).
	diskTables int

	// Durability state (nil / zero when DataDir is unset): the
	// write-ahead log, the DDL history replayed from checkpoint
	// snapshots, and the background checkpointer. recovering marks the
	// replay phase, during which DDL re-execution tolerates duplicates
	// and skips authority/procedure checks already vetted at original
	// execution time.
	wal        *wal.Writer
	dirLock    *DirLock
	recovering bool
	ddlMu      sync.Mutex
	ddlLog     []ddlEntry

	// snapLSN is the log position the loaded checkpoint snapshot
	// covers (set by loadSnapshot, consumed by recoverState): records
	// below it are already reflected in the snapshot and are not
	// replayed.
	snapLSN wal.LSN

	// Replication state (see replica.go). replica mirrors cfg.Replica
	// but is atomic because Promote clears it at runtime while sessions
	// read it concurrently. replApplied is the primary LSN this replica
	// has applied through with every earlier transaction resolved;
	// replPending buffers records of in-flight replicated transactions
	// (touched only by the single applier goroutine).
	replica     atomic.Bool
	replApplied atomic.Uint64
	replPending map[storage.XID]*replTxn

	// Sharding and write fencing (see shard.go): shardGuard vets insert
	// rows against shard ownership; fencedAt, when non-zero, is the
	// newer epoch whose observation fenced this node's writes.
	shardGuard atomic.Pointer[shardGuardHolder]
	fencedAt   atomic.Uint64

	ckptMu   sync.Mutex // serializes whole checkpoints
	ckptStop chan struct{}
	ckptDone chan struct{}
	closed   bool
}

// ddlEntry is one replayable DDL statement with its issuing principal.
type ddlEntry struct {
	Principal uint64
	Text      string
}

// Proc is a stored procedure: a Go function executing with access to
// the calling session. If Closure is non-nil, the proc is a stored
// authority closure (§4.3) and runs with the bound principal's
// authority instead of the caller's.
type Proc struct {
	Name    string
	Fn      ProcFunc
	Closure *authority.Closure // nil for ordinary procs
}

// ProcFunc is the signature of stored procedures. The session passed
// in is the caller's session (with the closure principal in effect if
// the proc is an authority closure).
type ProcFunc func(s *Session, args []types.Value) (types.Value, error)

// New creates an engine. When cfg.DataDir is set the engine is
// durable: it replays the checkpoint snapshot and write-ahead log
// found there (crash recovery), then logs every subsequent mutation.
func New(cfg Config) (*Engine, error) {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 256
	}
	hier := label.NewHierarchy()
	auth := authority.NewState(hier)
	e := &Engine{
		cfg:      cfg,
		cat:      catalog.New(),
		auth:     auth,
		clos:     authority.NewClosureRegistry(auth),
		hier:     hier,
		txns:     txn.NewManager(),
		tagNames: make(map[string]label.Tag),
		nameOf:   make(map[label.Tag]string),
		procs:    make(map[string]*Proc),
	}
	if cfg.Replica && cfg.DataDir == "" {
		return nil, fmt.Errorf("engine: replica mode requires a DataDir")
	}
	e.replica.Store(cfg.Replica)
	if cfg.DataDir != "" {
		if err := e.openDurable(); err != nil {
			return nil, err
		}
	}
	if e.admin == authority.NoPrincipal {
		// Fresh database (or no durability): mint the administrator.
		// With a WAL attached, the authority hook logs the principal so
		// recovery restores the same id.
		e.admin = auth.CreatePrincipal("admin")
	}
	if cfg.CheckpointEvery > 0 && e.wal != nil {
		e.ckptStop = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(cfg.CheckpointEvery)
	}
	return e, nil
}

// MustNew is New for callers that cannot fail (no DataDir, so no
// recovery I/O); it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// IFC reports whether information flow control is enabled.
func (e *Engine) IFC() bool { return e.cfg.IFC }

// Admin returns the administrator principal. The administrator defines
// schemas but holds no declassification authority (paper §3.3).
func (e *Engine) Admin() authority.Principal { return e.admin }

// Authority exposes the authority state (the platform's shared cache
// reads through this).
func (e *Engine) Authority() *authority.State { return e.auth }

// Closures exposes the authority-closure registry.
func (e *Engine) Closures() *authority.ClosureRegistry { return e.clos }

// Hierarchy exposes the compound-tag hierarchy.
func (e *Engine) Hierarchy() *label.Hierarchy { return e.hier }

// Catalog exposes the schema catalog (read-mostly; used by tools).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// TxnManager exposes the transaction manager (used by vacuum and
// tests).
func (e *Engine) TxnManager() *txn.Manager { return e.txns }

// ---------------------------------------------------------------------------
// Tag and principal management (engine-level, name-keyed)

// CreatePrincipal creates a principal with the given diagnostic name.
func (e *Engine) CreatePrincipal(name string) authority.Principal {
	return e.auth.CreatePrincipal(name)
}

// CreateTag creates a named tag owned by owner, optionally as a member
// of the named compound tags. Tag names are unique per engine; SQL
// refers to tags by these names (e.g. in DECLASSIFYING clauses).
func (e *Engine) CreateTag(owner authority.Principal, name string, compounds ...string) (label.Tag, error) {
	e.tagMu.Lock()
	defer e.tagMu.Unlock()
	if _, dup := e.tagNames[name]; dup {
		return label.InvalidTag, fmt.Errorf("engine: tag %q already exists", name)
	}
	var parents []label.Tag
	for _, cn := range compounds {
		ct, ok := e.tagNames[cn]
		if !ok {
			return label.InvalidTag, fmt.Errorf("engine: unknown compound tag %q", cn)
		}
		parents = append(parents, ct)
	}
	t, err := e.auth.CreateTag(owner, name, parents...)
	if err != nil {
		return label.InvalidTag, err
	}
	e.tagNames[name] = t
	e.nameOf[t] = name
	return t, nil
}

// LookupTag resolves a tag name.
func (e *Engine) LookupTag(name string) (label.Tag, bool) {
	e.tagMu.RLock()
	defer e.tagMu.RUnlock()
	t, ok := e.tagNames[name]
	return t, ok
}

// TagName returns the name of a tag id.
func (e *Engine) TagName(t label.Tag) (string, bool) {
	e.tagMu.RLock()
	defer e.tagMu.RUnlock()
	n, ok := e.nameOf[t]
	return n, ok
}

// resolveTagNames maps tag names from SQL clauses to a label.
func (e *Engine) resolveTagNames(names []string) (label.Label, error) {
	var tags []label.Tag
	for _, n := range names {
		t, ok := e.LookupTag(n)
		if !ok {
			return nil, fmt.Errorf("engine: unknown tag %q", n)
		}
		tags = append(tags, t)
	}
	return label.New(tags...), nil
}

// ---------------------------------------------------------------------------
// Stored procedures and stored authority closures

// RegisterProc installs an ordinary stored procedure: it runs with the
// authority of whatever process calls it (paper §4.3).
func (e *Engine) RegisterProc(name string, fn ProcFunc) error {
	e.procMu.Lock()
	defer e.procMu.Unlock()
	name = strings.ToLower(name)
	if _, dup := e.procs[name]; dup {
		return fmt.Errorf("engine: procedure %q already exists", name)
	}
	e.procs[name] = &Proc{Name: name, Fn: fn}
	return nil
}

// RegisterClosureProc installs a stored authority closure: code bound
// to a principal whose authority it exercises when run. The creator
// must hold authority for every tag in proves (it cannot bind
// authority it does not have).
func (e *Engine) RegisterClosureProc(name string, fn ProcFunc, creator, bound authority.Principal, proves label.Label) error {
	cl, err := e.clos.Register("proc:"+strings.ToLower(name), creator, bound, proves)
	if err != nil {
		return err
	}
	e.procMu.Lock()
	defer e.procMu.Unlock()
	name = strings.ToLower(name)
	if _, dup := e.procs[name]; dup {
		return fmt.Errorf("engine: procedure %q already exists", name)
	}
	e.procs[name] = &Proc{Name: name, Fn: fn, Closure: cl}
	return nil
}

// LookupProc finds a stored procedure.
func (e *Engine) LookupProc(name string) (*Proc, bool) {
	e.procMu.RLock()
	defer e.procMu.RUnlock()
	p, ok := e.procs[strings.ToLower(name)]
	return p, ok
}

// parseCached parses query, caching the result when every statement
// is a read or DML statement (DDL ASTs are consumed by execution and
// must stay private to one call).
func (e *Engine) parseCached(query string) ([]sql.Statement, error) {
	if v, ok := e.stmtCache.Load(query); ok {
		mParseCacheHits.Inc()
		return v.([]sql.Statement), nil
	}
	e.parses.Add(1)
	mParses.Inc()
	stmts, err := sql.ParseAll(query)
	if err != nil {
		return nil, err
	}
	if cacheableStmts(stmts) {
		e.stmtCache.Store(query, stmts)
	}
	return stmts, nil
}

// ParseCount reports how many times the engine has actually invoked
// the SQL parser (as opposed to serving a statement from the parse
// cache or a prepared handle).
func (e *Engine) ParseCount() int64 { return e.parses.Load() }

// ---------------------------------------------------------------------------
// Heap construction and vacuum

func (e *Engine) newHeap(name string, onDisk bool) (storage.Heap, error) {
	if !onDisk {
		return storage.NewMemHeap(), nil
	}
	var store pager.PageStore
	if e.cfg.DataDir != "" {
		fs, err := pager.OpenFileStore(e.heapPath(name))
		if err != nil {
			return nil, err
		}
		store = fs
	} else {
		store = pager.NewMemStore()
	}
	e.diskTables++
	return pager.NewPagedHeap(store, e.cfg.BufferPoolPages), nil
}

// dropTable removes a table from the catalog and, for disk tables,
// deletes the backing heap file — otherwise re-creating the table
// would resurrect stale pages.
func (e *Engine) dropTable(name string) error {
	t, _ := e.cat.Table(name)
	if err := e.cat.DropTable(name); err != nil {
		return err
	}
	e.invalidatePlans()
	if t != nil && t.OnDisk {
		e.diskTables--
		if ph, ok := t.Heap.(*pager.PagedHeap); ok && e.cfg.DataDir != "" {
			_ = ph.Close(true)
			_ = os.Remove(e.heapPath(t.Name))
		}
	}
	return nil
}

// Vacuum reclaims dead tuple versions in every table and prunes index
// entries pointing at them. The vacuum task is exempt from the
// information flow rules (paper §7.1).
func (e *Engine) Vacuum() int {
	total := 0
	for _, t := range e.cat.Tables() {
		dead := e.txns.DeadVersion()
		// Collect TIDs to be reclaimed so index entries can be pruned.
		type victim struct {
			tid storage.TID
			row []types.Value
		}
		var victims []victim
		t.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
			if dead(tv) {
				victims = append(victims, victim{tid, tv.Row})
			}
			return true
		})
		for _, v := range victims {
			for _, ix := range t.Indexes {
				key := make([]types.Value, len(ix.Cols))
				for i, c := range ix.Cols {
					key[i] = v.row[c]
				}
				ix.Tree.Delete(key, v.tid)
			}
		}
		total += t.Heap.Vacuum(dead)
	}
	return total
}

// Stats reports engine-wide counters used by tools and benchmarks.
type Stats struct {
	Tables     int
	Views      int
	DiskTables int
	TupleBytes int64
	Tuples     int
}

// Stats returns a snapshot of engine statistics.
func (e *Engine) Stats() Stats {
	s := Stats{DiskTables: e.diskTables}
	tabs := e.cat.Tables()
	s.Tables = len(tabs)
	s.Views = len(e.cat.Views())
	for _, t := range tabs {
		s.TupleBytes += t.Heap.ApproxBytes()
		s.Tuples += t.Heap.Len()
	}
	return s
}
