package engine

import (
	"errors"
	"testing"

	"ifdb/internal/types"
)

func TestInsertDefaultsAndNotNull(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE t (
		id BIGINT PRIMARY KEY,
		name TEXT NOT NULL,
		n BIGINT DEFAULT 7,
		note TEXT
	)`)
	mustExec(t, s, `INSERT INTO t (id, name) VALUES (1, 'a')`)
	res := mustExec(t, s, `SELECT n, note FROM t WHERE id = 1`)
	expectRows(t, res, "7|NULL")

	if _, err := s.Exec(`INSERT INTO t (id, name) VALUES (2, NULL)`); !errors.Is(err, ErrNotNull) {
		t.Fatalf("not-null: %v", err)
	}
	if _, err := s.Exec(`INSERT INTO t (id) VALUES (3)`); !errors.Is(err, ErrNotNull) {
		t.Fatalf("missing not-null column: %v", err)
	}
	// Coercion: int literal into float column and vice versa.
	mustExec(t, s, `CREATE TABLE c (f DOUBLE PRECISION, i BIGINT)`)
	mustExec(t, s, `INSERT INTO c VALUES (3, 4.0)`)
	res = mustExec(t, s, `SELECT f, i FROM c`)
	expectRows(t, res, "3|4")
	if _, err := s.Exec(`INSERT INTO c VALUES (1, 4.5)`); err == nil {
		t.Fatal("lossy coercion accepted")
	}
}

func TestUniqueConstraintPlain(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE u (
		id BIGINT PRIMARY KEY,
		email TEXT UNIQUE,
		a BIGINT, b BIGINT,
		UNIQUE (a, b)
	)`)
	mustExec(t, s, `INSERT INTO u VALUES (1, 'x@y', 1, 1)`)
	if _, err := s.Exec(`INSERT INTO u VALUES (1, 'z@y', 2, 2)`); !errors.Is(err, ErrUnique) {
		t.Fatalf("pkey dup: %v", err)
	}
	if _, err := s.Exec(`INSERT INTO u VALUES (2, 'x@y', 2, 2)`); !errors.Is(err, ErrUnique) {
		t.Fatalf("email dup: %v", err)
	}
	if _, err := s.Exec(`INSERT INTO u VALUES (2, 'z@y', 1, 1)`); !errors.Is(err, ErrUnique) {
		t.Fatalf("composite dup: %v", err)
	}
	// NULLs never conflict.
	mustExec(t, s, `INSERT INTO u VALUES (2, NULL, NULL, 1)`)
	mustExec(t, s, `INSERT INTO u VALUES (3, NULL, NULL, 1)`)

	// Updating away and back.
	mustExec(t, s, `UPDATE u SET email = 'w@y' WHERE id = 1`)
	mustExec(t, s, `INSERT INTO u VALUES (4, 'x@y', 9, 9)`)
	// Updating into a conflict fails.
	if _, err := s.Exec(`UPDATE u SET email = 'w@y' WHERE id = 4`); !errors.Is(err, ErrUnique) {
		t.Fatalf("update into dup: %v", err)
	}
	// No-op update of the same row does not self-conflict.
	mustExec(t, s, `UPDATE u SET email = 'w@y' WHERE id = 1`)
}

func TestUpdateSemantics(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `UPDATE emp SET salary = salary + 10 WHERE did = 1`)
	if res.Affected != 3 {
		t.Fatalf("affected: %d", res.Affected)
	}
	res = mustExec(t, s, `SELECT SUM(salary) FROM emp`)
	expectRows(t, res, "465")
	// SET references old row values, evaluated consistently.
	mustExec(t, s, `CREATE TABLE sw (a BIGINT, b BIGINT)`)
	mustExec(t, s, `INSERT INTO sw VALUES (1, 2)`)
	mustExec(t, s, `UPDATE sw SET a = b, b = a`)
	res = mustExec(t, s, `SELECT a, b FROM sw`)
	expectRows(t, res, "2|1")
}

func TestDeleteSemantics(t *testing.T) {
	_, s := newTestDB(t, false)
	res := mustExec(t, s, `DELETE FROM emp WHERE salary < 90`)
	if res.Affected != 3 {
		t.Fatalf("affected: %d", res.Affected)
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp`)
	expectRows(t, res, "2")
	// Delete everything.
	mustExec(t, s, `DELETE FROM emp`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp`)
	expectRows(t, res, "0")
}

func TestForeignKeyRestrict(t *testing.T) {
	_, s := newTestDB(t, false)
	// emp.did references dept: inserting a dangling did fails.
	if _, err := s.Exec(`INSERT INTO emp VALUES (9, 'zed', 42, 1, NULL)`); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("dangling insert: %v", err)
	}
	// NULL FK is fine.
	mustExec(t, s, `INSERT INTO emp VALUES (9, 'zed', NULL, 1, NULL)`)
	// Deleting a referenced dept fails (RESTRICT default).
	if _, err := s.Exec(`DELETE FROM dept WHERE did = 1`); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("restricted delete: %v", err)
	}
	// The empty department can go.
	mustExec(t, s, `DELETE FROM dept WHERE did = 3`)
	// Updating a referenced key away fails.
	if _, err := s.Exec(`UPDATE dept SET did = 77 WHERE did = 2`); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("key-change update: %v", err)
	}
	// Updating the referencing side to a dangling value fails.
	if _, err := s.Exec(`UPDATE emp SET did = 42 WHERE eid = 1`); !errors.Is(err, ErrForeignKey) {
		t.Fatalf("dangling update: %v", err)
	}
	// ...and to a valid one succeeds.
	mustExec(t, s, `UPDATE emp SET did = 2 WHERE eid = 1`)
}

func TestForeignKeyCascade(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `
	CREATE TABLE parent (id BIGINT PRIMARY KEY);
	CREATE TABLE child (
		id BIGINT PRIMARY KEY,
		pid BIGINT,
		FOREIGN KEY (pid) REFERENCES parent (id) ON DELETE CASCADE
	);
	CREATE TABLE grandchild (
		id BIGINT PRIMARY KEY,
		cid BIGINT,
		FOREIGN KEY (cid) REFERENCES child (id) ON DELETE CASCADE
	);
	`)
	mustExec(t, s, `INSERT INTO parent VALUES (1), (2)`)
	mustExec(t, s, `INSERT INTO child VALUES (10, 1), (11, 1), (12, 2)`)
	mustExec(t, s, `INSERT INTO grandchild VALUES (100, 10), (101, 12)`)
	mustExec(t, s, `DELETE FROM parent WHERE id = 1`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM child`)
	expectRows(t, res, "1")
	res = mustExec(t, s, `SELECT COUNT(*) FROM grandchild`)
	expectRows(t, res, "1")
}

func TestCheckConstraint(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE acc (id BIGINT PRIMARY KEY, bal BIGINT, CHECK (bal >= 0))`)
	mustExec(t, s, `INSERT INTO acc VALUES (1, 10)`)
	if _, err := s.Exec(`INSERT INTO acc VALUES (2, -1)`); !errors.Is(err, ErrCheck) {
		t.Fatalf("check insert: %v", err)
	}
	if _, err := s.Exec(`UPDATE acc SET bal = bal - 100 WHERE id = 1`); !errors.Is(err, ErrCheck) {
		t.Fatalf("check update: %v", err)
	}
	// NULL checks pass (SQL semantics).
	mustExec(t, s, `INSERT INTO acc VALUES (3, NULL)`)
}

func TestExplicitTransactions(t *testing.T) {
	_, s := newTestDB(t, false)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO dept VALUES (50, 'fifty')`)
	res := mustExec(t, s, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "4")
	mustExec(t, s, `ROLLBACK`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "3")

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO dept VALUES (60, 'sixty')`)
	mustExec(t, s, `COMMIT`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "4")

	// A failed statement aborts the whole explicit transaction.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO dept VALUES (70, 'seventy')`)
	if _, err := s.Exec(`INSERT INTO dept VALUES (70, 'dup')`); err == nil {
		t.Fatal("dup accepted")
	}
	if s.InTxn() {
		t.Fatal("txn survives failed statement")
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "4")

	// COMMIT without BEGIN errors.
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Fatal("commit without begin")
	}
}

func TestSnapshotIsolationAcrossSessions(t *testing.T) {
	e, s1 := newTestDB(t, false)
	s2 := e.NewSession(e.Admin())

	mustExec(t, s1, `BEGIN`)
	res := mustExec(t, s1, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "3")

	// s2 commits a new dept after s1's snapshot.
	mustExec(t, s2, `INSERT INTO dept VALUES (99, 'new')`)

	// s1 still sees 3 (repeatable read under SI).
	res = mustExec(t, s1, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "3")
	mustExec(t, s1, `COMMIT`)

	// New statement sees 4.
	res = mustExec(t, s1, `SELECT COUNT(*) FROM dept`)
	expectRows(t, res, "4")
}

func TestWriteWriteConflictAcrossSessions(t *testing.T) {
	e, s1 := newTestDB(t, false)
	s2 := e.NewSession(e.Admin())
	mustExec(t, s1, `BEGIN`)
	mustExec(t, s1, `UPDATE dept SET dname = 'x' WHERE did = 1`)
	// s2 (autocommit) touching the same row must fail fast.
	if _, err := s2.Exec(`UPDATE dept SET dname = 'y' WHERE did = 1`); err == nil {
		t.Fatal("conflicting update accepted")
	}
	mustExec(t, s1, `COMMIT`)
	res := mustExec(t, s1, `SELECT dname FROM dept WHERE did = 1`)
	expectRows(t, res, "x")
}

func TestTriggersOrdinary(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE audit (what TEXT)`)
	mustExec(t, s, `CREATE TABLE work (id BIGINT PRIMARY KEY, v BIGINT)`)
	calls := 0
	if err := e.RegisterProc("audit_it", func(ps *Session, _ []types.Value) (types.Value, error) {
		calls++
		ctx := ps.TriggerContext()
		if ctx == nil {
			t.Error("no trigger context")
			return types.Null, nil
		}
		_, err := ps.Exec(`INSERT INTO audit VALUES ($1)`, types.NewText(ctx.Event))
		return types.Null, err
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TRIGGER a1 AFTER INSERT ON work EXECUTE PROCEDURE audit_it`)
	mustExec(t, s, `CREATE TRIGGER a2 AFTER UPDATE ON work EXECUTE PROCEDURE audit_it`)
	mustExec(t, s, `CREATE TRIGGER a3 AFTER DELETE ON work EXECUTE PROCEDURE audit_it`)

	mustExec(t, s, `INSERT INTO work VALUES (1, 10)`)
	mustExec(t, s, `UPDATE work SET v = 11 WHERE id = 1`)
	mustExec(t, s, `DELETE FROM work WHERE id = 1`)
	if calls != 3 {
		t.Fatalf("trigger calls: %d", calls)
	}
	res := mustExec(t, s, `SELECT what FROM audit ORDER BY what`)
	expectRows(t, res, "DELETE", "INSERT", "UPDATE")
}

func TestBeforeTriggerMutatesRow(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE norm (id BIGINT PRIMARY KEY, name TEXT)`)
	if err := e.RegisterProc("normalize", func(ps *Session, _ []types.Value) (types.Value, error) {
		ctx := ps.TriggerContext()
		ctx.New[1] = types.NewText("normalized:" + ctx.New[1].Text())
		return types.Null, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TRIGGER n1 BEFORE INSERT ON norm EXECUTE PROCEDURE normalize`)
	mustExec(t, s, `INSERT INTO norm VALUES (1, 'x')`)
	res := mustExec(t, s, `SELECT name FROM norm`)
	expectRows(t, res, "normalized:x")
}

func TestTriggerFailureAbortsStatement(t *testing.T) {
	e := MustNew(Config{})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE guarded (id BIGINT PRIMARY KEY)`)
	if err := e.RegisterProc("refuse", func(ps *Session, _ []types.Value) (types.Value, error) {
		return types.Null, errors.New("refused")
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TRIGGER g BEFORE INSERT ON guarded EXECUTE PROCEDURE refuse`)
	if _, err := s.Exec(`INSERT INTO guarded VALUES (1)`); err == nil {
		t.Fatal("refusing trigger did not fail insert")
	}
	res := mustExec(t, s, `SELECT COUNT(*) FROM guarded`)
	expectRows(t, res, "0")
}

func TestVacuumReclaimsAndPrunesIndexes(t *testing.T) {
	e, s := newTestDB(t, false)
	// Churn: update every emp 5 times, delete two.
	for i := 0; i < 5; i++ {
		mustExec(t, s, `UPDATE emp SET salary = salary + 1`)
	}
	mustExec(t, s, `DELETE FROM emp WHERE eid IN (4, 5)`)
	before := e.Stats().Tuples
	n := e.Vacuum()
	if n == 0 {
		t.Fatal("vacuum reclaimed nothing")
	}
	after := e.Stats().Tuples
	if after >= before {
		t.Fatalf("tuples before %d after %d", before, after)
	}
	// Queries still correct after vacuum.
	res := mustExec(t, s, `SELECT COUNT(*), SUM(salary) FROM emp`)
	expectRows(t, res, "3|310")
	res = mustExec(t, s, `SELECT name FROM emp WHERE eid = 1`)
	expectRows(t, res, "ada")
	// A second vacuum finds nothing.
	if n2 := e.Vacuum(); n2 != 0 {
		t.Fatalf("second vacuum reclaimed %d", n2)
	}
}

func TestDropTable(t *testing.T) {
	_, s := newTestDB(t, false)
	// dept is referenced by emp: refuse.
	if _, err := s.Exec(`DROP TABLE dept`); err == nil {
		t.Fatal("dropped referenced table")
	}
	mustExec(t, s, `DROP TABLE emp`)
	mustExec(t, s, `DROP TABLE dept`)
	if _, err := s.Exec(`SELECT * FROM emp`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	mustExec(t, s, `DROP TABLE IF EXISTS emp`)
	if _, err := s.Exec(`DROP TABLE emp`); err == nil {
		t.Fatal("dropping missing table succeeded")
	}
}

func TestOnDiskTableDML(t *testing.T) {
	e := MustNew(Config{BufferPoolPages: 4})
	s := e.NewSession(e.Admin())
	mustExec(t, s, `CREATE TABLE big (id BIGINT PRIMARY KEY, payload TEXT) USING DISK`)
	long := types.NewText(string(make([]byte, 512)))
	for i := int64(0); i < 200; i++ {
		mustExec(t, s, `INSERT INTO big VALUES ($1, $2)`, types.NewInt(i), long)
	}
	res := mustExec(t, s, `SELECT COUNT(*) FROM big`)
	expectRows(t, res, "200")
	mustExec(t, s, `UPDATE big SET payload = 'small' WHERE id = 7`)
	res = mustExec(t, s, `SELECT payload FROM big WHERE id = 7`)
	expectRows(t, res, "small")
	mustExec(t, s, `DELETE FROM big WHERE id < 100`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM big`)
	expectRows(t, res, "100")
	if n := e.Vacuum(); n == 0 {
		t.Fatal("disk vacuum reclaimed nothing")
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM big`)
	expectRows(t, res, "100")
}
