package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// ErrDataDirLocked is returned by New when another process (or another
// engine in this process) already owns the data directory. Two engines
// writing one DataDir would corrupt the WAL and heap files, so the
// lock is mandatory whenever DataDir is set.
var ErrDataDirLocked = errors.New("engine: data directory is locked by another process")

// DirLock is an exclusive lock on a data directory: a LOCK file held
// with flock(2) and stamped with the owner's pid for diagnostics. The
// flock is what excludes (pid files alone go stale after a crash;
// flocks are released by the kernel when the holder dies).
type DirLock struct {
	f *os.File
}

// LockPath returns the lock file path for a data directory.
func LockPath(dir string) string { return filepath.Join(dir, "LOCK") }

// AcquireDirLock takes the exclusive lock for dir, creating the
// directory and lock file as needed. A held lock yields
// ErrDataDirLocked (wrapped with the owner's pid when readable).
func AcquireDirLock(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: datadir: %w", err)
	}
	f, err := os.OpenFile(LockPath(dir), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("engine: lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner := "unknown pid"
		if b, rerr := os.ReadFile(LockPath(dir)); rerr == nil && len(b) > 0 {
			owner = "pid " + strings.TrimSpace(string(b))
		}
		f.Close()
		return nil, fmt.Errorf("%w: %s holds %s", ErrDataDirLocked, owner, LockPath(dir))
	}
	// Stamp the owner pid (diagnostics only; the flock is the lock).
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
	}
	return &DirLock{f: f}, nil
}

// Crash simulates process death for crash-recovery tests: the engine
// stops its background checkpointer and drops the DataDir lock — as
// the kernel would when the process died — but performs no checkpoint,
// flush, or sync. Whatever reached the OS stays; everything else is
// lost, which is the point.
func (e *Engine) Crash() {
	e.ckptMu.Lock()
	if e.closed {
		e.ckptMu.Unlock()
		return
	}
	e.closed = true
	stop, done := e.ckptStop, e.ckptDone
	e.ckptMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	e.releaseLock()
}

// Release drops the lock. Safe to call more than once.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}
