// Sharding hooks: per-row write-ownership enforcement, and the
// write-side epoch fence.
//
// In a sharded deployment every shard is an ordinary epoch-fenced
// replication group; the engine itself stays shard-oblivious except
// for two guards installed from outside:
//
//   - a ShardGuard, called for every row an INSERT is about to write,
//     which refuses rows whose shard key hashes to a different shard
//     (defense against misrouted or shard-unaware clients — the
//     Router normally routes correctly, but a stale map or a direct
//     ifdb-cli connection must not scatter a key across shards);
//   - a write fence (FenceWrites), flipped when this node learns —
//     via an incoming replica hello carrying a newer epoch — that a
//     failover has moved past it. A fenced primary refuses direct
//     client writes instead of accepting them into a doomed history.
//
// See ARCHITECTURE.md § Sharding and § Failover & epochs.

package engine

import (
	"errors"
	"fmt"

	"ifdb/internal/catalog"
	"ifdb/internal/types"
)

// ErrShardOwnership rejects a row whose shard key belongs to a
// different shard.
var ErrShardOwnership = errors.New("engine: shard ownership violation: key belongs to another shard")

// ErrFenced rejects writes on a primary that has observed a newer
// epoch: a failover happened elsewhere, and anything committed here
// would be discarded when this node rejoins as a replica.
var ErrFenced = errors.New("engine: fenced: a newer epoch exists; this node was failed over and must rejoin as a replica")

// ShardGuard vets one fully-mapped row an INSERT is about to write.
// It runs after column mapping and type coercion (so the shard-key
// value is in its canonical column type) and never on the replication
// apply path (the row was vetted on its shard's primary).
type ShardGuard func(t *catalog.Table, row []types.Value) error

// shardGuardHolder wraps the installed guard for atomic.Pointer
// storage (installed once at server startup, read on every insert
// from many sessions).
type shardGuardHolder struct{ fn ShardGuard }

// SetShardGuard installs fn as the engine's shard-ownership check;
// nil removes it.
func (e *Engine) SetShardGuard(fn ShardGuard) {
	e.invalidatePlans()
	if fn == nil {
		e.shardGuard.Store(nil)
		return
	}
	e.shardGuard.Store(&shardGuardHolder{fn: fn})
}

// checkShardOwnership applies the installed guard to one insert row.
func (s *Session) checkShardOwnership(t *catalog.Table, row []types.Value) error {
	if s.replApply {
		return nil
	}
	h := s.eng.shardGuard.Load()
	if h == nil || h.fn == nil {
		return nil
	}
	return h.fn(t, row)
}

// FenceWrites marks the engine write-fenced: a peer at newerEpoch was
// observed, proving a failover moved past this node. From here on
// every session-level mutation fails with ErrFenced until the process
// is restarted (rejoining as a replica is the only way back). The
// replication layer already refuses to *ship* from a fenced primary;
// this closes the remaining gap where direct client writes kept
// landing in the doomed history (see ROADMAP "write-side epoch
// check").
func (e *Engine) FenceWrites(newerEpoch uint64) {
	for {
		cur := e.fencedAt.Load()
		if newerEpoch <= cur {
			return // keep the highest epoch observed; 0 never fences
		}
		if e.fencedAt.CompareAndSwap(cur, newerEpoch) {
			return
		}
	}
}

// Fenced reports the newer epoch that fenced this node's writes (0 =
// not fenced).
func (e *Engine) Fenced() uint64 { return e.fencedAt.Load() }

// fenceErr builds the session-facing rejection.
func (e *Engine) fenceErr() error {
	return fmt.Errorf("%w (observed epoch %d, local epoch %d)", ErrFenced, e.fencedAt.Load(), e.Epoch())
}
