package engine

import (
	"sync"
	"testing"
)

// Labeled sequences (§10 future work; see sequence.go for the design):
// per-label counter partitions close the allocation covert channel.

func TestSequencePerLabelPartitions(t *testing.T) {
	f := newIFC(t)
	if err := f.e.CreateSequence("ids"); err != nil {
		t.Fatal(err)
	}
	if err := f.e.CreateSequence("ids"); err == nil {
		t.Fatal("duplicate sequence accepted")
	}

	pub := f.e.NewSession(f.alice)
	res := mustExec(t, pub, `SELECT nextval('ids')`)
	expectRows(t, res, "1")
	res = mustExec(t, pub, `SELECT nextval('ids')`)
	expectRows(t, res, "2")

	// A secret process draws from its own partition: its allocations
	// are invisible in the public counter...
	secret := f.session(t, f.alice, f.atag)
	res = mustExec(t, secret, `SELECT nextval('ids')`)
	expectRows(t, res, "1")
	res = mustExec(t, secret, `SELECT nextval('ids')`)
	expectRows(t, res, "2")

	// ...so the public counter has not moved: no covert channel.
	res = mustExec(t, pub, `SELECT nextval('ids')`)
	expectRows(t, res, "3")

	if _, err := pub.Exec(`SELECT nextval('nosuch')`); err == nil {
		t.Fatal("missing sequence resolved")
	}
}

func TestSequenceViaSQLCreate(t *testing.T) {
	f := newIFC(t)
	s := f.e.NewSession(f.alice)
	mustExec(t, s, `SELECT create_sequence('orders')`)
	res := mustExec(t, s, `SELECT nextval('orders'), nextval('orders')`)
	// Both calls happen within one statement, left to right.
	expectRows(t, res, "1|2")
}

func TestSequenceConcurrentSameLabel(t *testing.T) {
	e := MustNew(Config{IFC: true})
	if err := e.CreateSequence("c"); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	seen := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession(e.Admin())
			for i := 0; i < per; i++ {
				v, err := s.nextval("c")
				if err != nil {
					t.Error(err)
					return
				}
				seen[w] = append(seen[w], v.Int())
			}
		}(w)
	}
	wg.Wait()
	all := make(map[int64]bool)
	for _, vs := range seen {
		for _, v := range vs {
			if all[v] {
				t.Fatalf("duplicate sequence value %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != workers*per {
		t.Fatalf("allocated %d values", len(all))
	}
}
