package engine

import (
	"fmt"
	"time"

	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/txn"
	"ifdb/internal/types"
)

// Exec parses and executes SQL. Multiple semicolon-separated
// statements run in order; the result of the last one is returned.
// Positional parameters ($1, $2, ...) bind to params.
//
// Parsed query/DML statements are cached engine-wide by query text
// (the prepared-statement optimization every real DBMS has); DDL is
// never cached because its execution consumes parts of the AST.
func (s *Session) Exec(query string, params ...types.Value) (*Result, error) {
	// Per-statement timing covers only top-level statements: nested
	// Execs (triggers, stored procedures, QueryEach fan-out) run inside
	// the enclosing statement and must not clobber its breakdown.
	top := s.stmtTx == nil || s.stmtTx.Done()
	var t0 time.Time
	if top {
		s.beginStmtStats(query)
		t0 = time.Now()
	}
	stmts, err := s.eng.parseCached(query)
	if top {
		s.stats.ParseNs = time.Since(t0).Nanoseconds()
	}
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return &Result{}, nil
	}
	if top {
		t0 = time.Now()
		defer func() { s.stats.ExecNs = time.Since(t0).Nanoseconds() }()
	}
	var res *Result
	for _, st := range stmts {
		res, err = s.ExecStmt(st, params...)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Query is Exec for callers that expect rows.
func (s *Session) Query(query string, params ...types.Value) (*Result, error) {
	return s.Exec(query, params...)
}

// QueryRow runs a query expected to return at most one row; ok is
// false if it returned none.
func (s *Session) QueryRow(query string, params ...types.Value) ([]types.Value, bool, error) {
	res, err := s.Exec(query, params...)
	if err != nil {
		return nil, false, err
	}
	if len(res.Rows) == 0 {
		return nil, false, nil
	}
	return res.Rows[0], true, nil
}

// ExecStmt executes one parsed statement.
func (s *Session) ExecStmt(st sql.Statement, params ...types.Value) (*Result, error) {
	if err := s.checkCanceled(); err != nil {
		return nil, err
	}
	switch x := st.(type) {
	case *sql.BeginStmt:
		mode := txn.SnapshotIsolation
		if x.Serializable {
			mode = txn.Serializable
		}
		if err := s.Begin(mode); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CommitStmt:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.RollbackStmt:
		if err := s.Abort(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}

	// Replica read-only enforcement: everything except SELECT and
	// EXPLAIN (and the transaction-control statements handled above)
	// mutates state.
	switch st.(type) {
	case *sql.SelectStmt, *sql.ExplainStmt:
	default:
		if err := s.requireWritable(); err != nil {
			return nil, err
		}
	}

	var res *Result
	err := s.withStmt(func(t *txn.Txn) error {
		qc := &qctx{params: params}
		switch x := st.(type) {
		case *sql.SelectStmt:
			rel, err := s.executeSelect(x, qc)
			if err != nil {
				return err
			}
			res = relationToResult(rel, s.eng.cfg.IFC)
			return nil
		case *sql.ExplainStmt:
			sel, ok := x.Stmt.(*sql.SelectStmt)
			if !ok {
				return fmt.Errorf("engine: EXPLAIN supports only SELECT")
			}
			r, err := s.explainSelect(sel)
			if err != nil {
				return err
			}
			res = r
			return nil
		case *sql.InsertStmt:
			n, err := s.executeInsert(x, qc)
			if err != nil {
				return err
			}
			res = &Result{Affected: n}
			return nil
		case *sql.UpdateStmt:
			n, err := s.executeUpdate(x, qc)
			if err != nil {
				return err
			}
			res = &Result{Affected: n}
			return nil
		case *sql.DeleteStmt:
			n, err := s.executeDelete(x, qc)
			if err != nil {
				return err
			}
			res = &Result{Affected: n}
			return nil
		case *sql.CreateTableStmt:
			res = &Result{}
			if err := s.executeCreateTable(x); err != nil {
				return err
			}
			return s.logDDLNoted(x.Text)
		case *sql.DropTableStmt:
			res = &Result{}
			err := s.eng.dropTable(x.Name)
			if err != nil && (x.IfExists || s.eng.replaying()) {
				return nil
			}
			if err != nil {
				return err
			}
			return s.logDDLNoted(x.Text)
		case *sql.CreateIndexStmt:
			res = &Result{}
			if err := s.executeCreateIndex(x); err != nil {
				return err
			}
			return s.logDDLNoted(x.Text)
		case *sql.CreateViewStmt:
			res = &Result{}
			if err := s.executeCreateView(x); err != nil {
				return err
			}
			return s.logDDLNoted(x.Text)
		case *sql.CreateTriggerStmt:
			res = &Result{}
			if err := s.executeCreateTrigger(x); err != nil {
				return err
			}
			return s.logDDLNoted(x.Text)
		default:
			return fmt.Errorf("engine: unsupported statement %T", st)
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func relationToResult(rel *relation, ifc bool) *Result {
	res := &Result{
		Cols: make([]string, len(rel.schema)),
		Rows: make([][]types.Value, len(rel.rows)),
	}
	for i, c := range rel.schema {
		res.Cols[i] = c.Name
	}
	if ifc {
		res.RowLabels = make([]label.Label, len(rel.rows))
	}
	for i, r := range rel.rows {
		res.Rows[i] = r.vals
		if ifc {
			res.RowLabels[i] = r.lbl
		}
	}
	return res
}
