package plan

import (
	"fmt"
	"strings"

	"ifdb/internal/catalog"
	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
)

// Build compiles sel into an analyzed, executable Plan against cat.
// strip is the declassification context in effect (non-empty only when
// building the body of a declassifying view). The AST is treated as
// read-only, so a plan may be cached and shared across sessions.
//
// Build mirrors the legacy executor's structure level by level: any
// error the legacy executor raised while assembling a relation (no
// such table, view column mismatch, star matching nothing) surfaces
// here, with the identical message.
func Build(cat *catalog.Catalog, sel *sql.SelectStmt, strip label.Label) (*Plan, error) {
	root, err := buildSelect(cat, sel, strip)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, blocking: hasBlocking(root)}, nil
}

// buildSelect compiles one SELECT level: sources and joins first, then
// the ordered analysis rules, then the projection pipeline on top.
func buildSelect(cat *catalog.Catalog, sel *sql.SelectStmt, strip label.Label) (Node, error) {
	lv := &level{cat: cat, sel: sel, strip: strip}
	if sel.From != nil {
		if err := lv.addSource(sel.From, sel.Where, nil); err != nil {
			return nil, err
		}
		for i := range sel.Joins {
			if err := lv.addJoinSource(&sel.Joins[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := lv.prepareExprs(); err != nil {
		return nil, err
	}
	for _, r := range rules {
		if err := r.apply(lv); err != nil {
			return nil, err
		}
	}
	return lv.assemble()
}

// level is the per-SELECT working state shared by the builder and the
// analysis rules.
type level struct {
	cat   *catalog.Catalog
	sel   *sql.SelectStmt
	strip label.Label

	// sources[0] is the FROM item; sources[1+i] belongs to Joins[i].
	sources []*source
	// full is the concatenated, unpruned schema of all sources — the
	// scope column references resolve in, exactly what the legacy
	// executor's combined relation schema was.
	full exec.Schema

	items      []sql.SelectItem // star-expanded select items
	aggregated bool
	orderExprs []sql.Expr // ORDER BY with output aliases substituted

	residual sql.Expr // WHERE conjuncts not pushed into the FROM scan

	// canPrune is set by the resolve rule: every column reference in
	// the level resolved unambiguously, so removing unreferenced scan
	// columns cannot change any resolution outcome.
	canPrune bool
}

// source is one FROM/JOIN input in level order.
type source struct {
	jc *sql.JoinClause // nil for the FROM source

	scan *ScanNode // base-table source
	node Node      // view or derived-table subtree (already wrapped)

	// isIndexJoin marks a joined base table that will be probed
	// through an index per left row instead of scanned; the node is
	// constructed at assemble time, when the left side is final.
	isIndexJoin bool
	table       *catalog.Table
	alias       string

	schema exec.Schema  // full (unpruned) contribution to level.full
	needed map[int]bool // ordinals the level references (resolve rule)
}

func (lv *level) addSource(tr *sql.TableRef, filter sql.Expr, jc *sql.JoinClause) error {
	src, err := lv.buildTableRef(tr, filter)
	if err != nil {
		return err
	}
	src.jc = jc
	lv.sources = append(lv.sources, src)
	lv.full = append(lv.full, src.schema...)
	return nil
}

// addJoinSource adds one joined source, first checking index-join
// eligibility against the level schema accumulated so far — the same
// inputs the legacy executor inspected per join at run time, so the
// decision is identical, just made once.
func (lv *level) addJoinSource(jc *sql.JoinClause) error {
	if jc.Table.Sub == nil {
		if t, ok := lv.cat.Table(jc.Table.Name); ok {
			alias := jc.Table.Alias
			if alias == "" {
				alias = jc.Table.Name
			}
			rightSchema := tableSchema(t, alias)
			if _, _, _, prefix := indexJoinProbe(t, jc.On, lv.full, rightSchema); prefix > 0 {
				src := &source{jc: jc, isIndexJoin: true, table: t, alias: alias, schema: rightSchema}
				lv.sources = append(lv.sources, src)
				lv.full = append(lv.full, rightSchema...)
				return nil
			}
		}
	}
	return lv.addSource(&jc.Table, nil, jc)
}

// buildTableRef compiles one table reference: derived table, base
// table, or view — checked in the legacy executor's order.
func (lv *level) buildTableRef(tr *sql.TableRef, filter sql.Expr) (*source, error) {
	if tr.Sub != nil {
		child, err := buildSelect(lv.cat, tr.Sub, lv.strip)
		if err != nil {
			return nil, err
		}
		rn := &RenameNode{Child: child, Alias: tr.Alias}
		rn.schema = aliasSchema(child.Schema(), tr.Alias)
		return &source{node: rn, schema: rn.schema}, nil
	}
	if t, ok := lv.cat.Table(tr.Name); ok {
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		scan := &ScanNode{Table: t, Alias: alias, Strip: lv.strip, Filter: filter}
		scan.fullSchema = tableSchema(t, alias)
		return &source{scan: scan, table: t, alias: alias, schema: scan.fullSchema}, nil
	}
	if v, ok := lv.cat.View(tr.Name); ok {
		return lv.buildView(v, tr)
	}
	return nil, fmt.Errorf("engine: no table or view %q", tr.Name)
}

// buildView compiles a view body. Declassifying views extend the strip
// set with their bound tags, so base scans inside see (and return)
// tuples with those tags removed (§4.3). Build errors inside the body
// carry the same "engine: view ..." envelope runtime errors do.
func (lv *level) buildView(v *catalog.View, tr *sql.TableRef) (*source, error) {
	sub := lv.strip
	if v.IsDeclassifying() {
		sub = lv.strip.Union(v.Declassify)
	}
	child, err := buildSelect(lv.cat, v.Select, sub)
	if err != nil {
		return nil, fmt.Errorf("engine: view %q: %w", v.Name, err)
	}
	cs := child.Schema()
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	if len(v.Columns) > 0 {
		if len(v.Columns) != len(cs) {
			return nil, fmt.Errorf("engine: view %q declares %d columns but query yields %d", v.Name, len(v.Columns), len(cs))
		}
		for i, n := range v.Columns {
			names[i] = strings.ToLower(n)
		}
	}
	alias := tr.Alias
	if alias == "" {
		alias = v.Name
	}
	rn := &RenameNode{Child: child, Alias: alias, ViewName: v.Name, Strip: v.Declassify}
	rn.schema = make(exec.Schema, len(cs))
	for i, n := range names {
		rn.schema[i] = exec.ColMeta{Table: alias, Name: n}
	}
	return &source{node: rn, schema: rn.schema}, nil
}

func aliasSchema(s exec.Schema, alias string) exec.Schema {
	out := make(exec.Schema, len(s))
	for i, c := range s {
		out[i] = exec.ColMeta{Table: alias, Name: c.Name}
	}
	return out
}

// prepareExprs expands stars, detects aggregation, and substitutes
// output aliases into ORDER BY, all against the full level schema.
func (lv *level) prepareExprs() error {
	items, err := expandStars(lv.sel.Items, lv.full)
	if err != nil {
		return err
	}
	lv.items = items

	lv.aggregated = len(lv.sel.GroupBy) > 0 || exec.HasAggregate(lv.sel.Having)
	for _, it := range items {
		if exec.HasAggregate(it.Expr) {
			lv.aggregated = true
		}
	}

	aliasMap := map[string]sql.Expr{}
	for _, it := range items {
		if it.Alias != "" {
			aliasMap[it.Alias] = it.Expr
		}
	}
	lv.orderExprs = make([]sql.Expr, len(lv.sel.OrderBy))
	for i, ob := range lv.sel.OrderBy {
		lv.orderExprs[i] = substituteAliases(ob.Expr, aliasMap)
	}
	return nil
}

// assemble wires the analyzed level into its operator pipeline,
// mirroring the legacy executeSelect stage order: sources+joins →
// residual filter → aggregate/project → sort → distinct → offset →
// limit.
func (lv *level) assemble() (Node, error) {
	var input Node
	if lv.sel.From == nil {
		input = &ValuesNode{}
	} else {
		input = lv.sources[0].finalNode()
		for _, src := range lv.sources[1:] {
			input = lv.buildJoinNode(input, src)
		}
	}
	if lv.residual != nil {
		input = &FilterNode{Child: input, Cond: lv.residual, Strip: lv.strip}
	}

	var out Node
	if lv.aggregated {
		a := &AggregateNode{
			Child: input, Items: lv.items,
			GroupBy: lv.sel.GroupBy, Having: lv.sel.Having,
			OrderExprs: lv.orderExprs, Strip: lv.strip,
		}
		a.schema = outputSchema(lv.items)
		out = a
	} else {
		p := &ProjectNode{Child: input, Items: lv.items, OrderExprs: lv.orderExprs, Strip: lv.strip}
		p.schema = outputSchema(lv.items)
		out = p
	}

	if len(lv.sel.OrderBy) > 0 {
		desc := make([]bool, len(lv.sel.OrderBy))
		for i, ob := range lv.sel.OrderBy {
			desc[i] = ob.Desc
		}
		out = &SortNode{Child: out, Exprs: lv.orderExprs, Desc: desc}
	}
	if lv.sel.Distinct {
		out = &DistinctNode{Child: out}
	}
	if lv.sel.Offset != nil {
		out = &OffsetNode{Child: out, Expr: lv.sel.Offset, Strip: lv.strip}
	}
	if lv.sel.Limit != nil {
		out = &LimitNode{Child: out, Expr: lv.sel.Limit, Pure: selectPure(lv.cat, lv.sel, nil), Strip: lv.strip}
	}
	return out, nil
}

// finalNode materializes a source's operator, applying any pruning the
// analysis decided.
func (src *source) finalNode() Node {
	if src.scan != nil {
		if src.scan.Out == nil {
			src.scan.schema = src.scan.fullSchema
		} else {
			pruned := make(exec.Schema, len(src.scan.Out))
			for i, c := range src.scan.Out {
				pruned[i] = src.scan.fullSchema[c]
			}
			src.scan.schema = pruned
		}
		return src.scan
	}
	return src.node
}

// buildJoinNode attaches one joined source to the pipeline built so
// far, picking the same strategy the legacy executor would: index
// probe, then hash for pure equi-joins, then nested loop.
func (lv *level) buildJoinNode(left Node, src *source) Node {
	jc := src.jc
	if src.isIndexJoin {
		rightSchema := tableSchema(src.table, src.alias)
		ix, prefix, probe, n := indexJoinProbe(src.table, jc.On, left.Schema(), rightSchema)
		if n > 0 {
			return &IndexJoinNode{
				Left: left, Table: src.table, Alias: src.alias,
				Kind: jc.Kind, On: jc.On,
				Index: ix, Prefix: prefix, ProbeCols: probe,
				Strip:       lv.strip,
				schema:      append(append(exec.Schema{}, left.Schema()...), rightSchema...),
				rightSchema: rightSchema,
			}
		}
		// Unreachable in practice: eligibility was established against
		// the unpruned left schema and pruning keeps every ON column.
		// Fall through to a plain scan + loop join just in case.
		src.scan = &ScanNode{Table: src.table, Alias: src.alias, Strip: lv.strip}
		src.scan.fullSchema = rightSchema
	}
	right := src.finalNode()
	n := &JoinNode{
		Left: left, Right: right, Kind: jc.Kind, On: jc.On,
		Strip:  lv.strip,
		schema: append(append(exec.Schema{}, left.Schema()...), right.Schema()...),
	}
	lk, rk, pure := equiJoinKeys(jc.On, left.Schema(), right.Schema())
	if pure && len(lk) > 0 {
		n.Strategy, n.LeftKeys, n.RightKeys = JoinHash, lk, rk
	} else {
		n.Strategy = JoinLoop
	}
	return n
}

// indexJoinProbe decides whether a right base table can be probed via
// an index: the ON clause must be a pure conjunction of cross-side
// column equalities and some index's leading columns must all be
// equi-join columns. It returns the chosen index, the bound prefix
// length, and for each prefix position the left-row ordinal supplying
// the probe value. prefix is 0 when the shape does not fit.
func indexJoinProbe(t *catalog.Table, on sql.Expr, left, right exec.Schema) (ix *catalog.Index, prefix int, probe []int, n int) {
	lk, rk, pure := equiJoinKeys(on, left, right)
	if !pure || len(lk) == 0 {
		return nil, 0, nil, 0
	}
	rkPos := make(map[int]int, len(rk)) // right col ordinal -> position in rk/lk
	for i, c := range rk {
		rkPos[c] = i
	}
	for _, cand := range t.Indexes {
		m := 0
		for _, c := range cand.Cols {
			if _, ok := rkPos[c]; ok {
				m++
			} else {
				break
			}
		}
		if m > prefix {
			ix, prefix = cand, m
		}
	}
	if ix == nil {
		return nil, 0, nil, 0
	}
	probe = make([]int, prefix)
	for i := 0; i < prefix; i++ {
		probe[i] = lk[rkPos[ix.Cols[i]]]
	}
	return ix, prefix, probe, prefix
}

// equiJoinKeys decomposes an ON clause into column-ordinal pairs when
// it is a pure conjunction of cross-side column equalities. Ported
// verbatim from the legacy executor.
func equiJoinKeys(on sql.Expr, left, right exec.Schema) (lk, rk []int, pure bool) {
	var walk func(e sql.Expr) bool
	walk = func(e sql.Expr) bool {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			return false
		}
		switch b.Op {
		case "AND":
			return walk(b.Left) && walk(b.Right)
		case "=":
			lc, lok := b.Left.(*sql.ColumnRef)
			rc, rok := b.Right.(*sql.ColumnRef)
			if !lok || !rok || lc.Column == "_label" || rc.Column == "_label" {
				return false
			}
			li, lerr := left.Resolve(lc.Table, lc.Column)
			ri, rerr := right.Resolve(rc.Table, rc.Column)
			if lerr == nil && rerr == nil {
				lk = append(lk, li)
				rk = append(rk, ri)
				return true
			}
			// Maybe written the other way around.
			li2, lerr2 := left.Resolve(rc.Table, rc.Column)
			ri2, rerr2 := right.Resolve(lc.Table, lc.Column)
			if lerr2 == nil && rerr2 == nil {
				lk = append(lk, li2)
				rk = append(rk, ri2)
				return true
			}
			return false
		default:
			return false
		}
	}
	if on == nil {
		return nil, nil, false
	}
	ok := walk(on)
	return lk, rk, ok
}

// pureScalarFuncs are the scalar functions that neither mutate state
// nor observe anything a skipped evaluation would change. LIMIT may
// stop pulling early only when every function below it is in this set
// — the legacy executor materialized everything before slicing, so
// state-changing calls (nextval, addsecrecy, ...) must keep running
// for every row even past the limit.
var pureScalarFuncs = map[string]bool{
	"lower": true, "upper": true, "length": true, "abs": true,
	"coalesce": true, "label_contains": true, "label_size": true,
	"getlabel": true, "getintegrity": true, "tag": true,
	"has_authority": true, "current_principal": true, "now": true,
	"sleep": true,
}

// selectPure reports whether executing sel evaluates only pure scalar
// functions, looking through subqueries, derived tables, and view
// bodies. seen guards against view cycles.
func selectPure(cat *catalog.Catalog, sel *sql.SelectStmt, seen map[string]bool) bool {
	pure := true
	var checkExpr func(e sql.Expr)
	var checkSel func(s *sql.SelectStmt)
	var checkRef func(tr *sql.TableRef)
	checkExpr = func(e sql.Expr) {
		if !pure {
			return
		}
		switch x := e.(type) {
		case *sql.BinaryExpr:
			checkExpr(x.Left)
			checkExpr(x.Right)
		case *sql.UnaryExpr:
			checkExpr(x.Expr)
		case *sql.IsNullExpr:
			checkExpr(x.Expr)
		case *sql.BetweenExpr:
			checkExpr(x.Expr)
			checkExpr(x.Lo)
			checkExpr(x.Hi)
		case *sql.InExpr:
			checkExpr(x.Expr)
			for _, it := range x.List {
				checkExpr(it)
			}
			if x.Sub != nil {
				checkSel(x.Sub)
			}
		case *sql.ExistsExpr:
			checkSel(x.Sub)
		case *sql.SubqueryExpr:
			checkSel(x.Sub)
		case *sql.FuncCall:
			if !exec.IsAggregateName(x.Name) && !pureScalarFuncs[x.Name] {
				pure = false
				return
			}
			for _, a := range x.Args {
				checkExpr(a)
			}
		}
	}
	checkRef = func(tr *sql.TableRef) {
		if tr.Sub != nil {
			checkSel(tr.Sub)
			return
		}
		if _, ok := cat.Table(tr.Name); ok {
			return
		}
		if v, ok := cat.View(tr.Name); ok {
			if seen == nil {
				seen = map[string]bool{}
			}
			if !seen[v.Name] {
				seen[v.Name] = true
				checkSel(v.Select)
			}
		}
	}
	checkSel = func(s *sql.SelectStmt) {
		if !pure {
			return
		}
		for _, it := range s.Items {
			checkExpr(it.Expr)
		}
		if s.From != nil {
			checkRef(s.From)
		}
		for i := range s.Joins {
			checkRef(&s.Joins[i].Table)
			checkExpr(s.Joins[i].On)
		}
		checkExpr(s.Where)
		for _, e := range s.GroupBy {
			checkExpr(e)
		}
		checkExpr(s.Having)
		for _, ob := range s.OrderBy {
			checkExpr(ob.Expr)
		}
		checkExpr(s.Limit)
		checkExpr(s.Offset)
	}
	checkSel(sel)
	return pure
}

// hasBlocking reports whether any operator under n materializes its
// input.
func hasBlocking(n Node) bool {
	switch x := n.(type) {
	case *ScanNode, *ValuesNode:
		return false
	case *RenameNode:
		return hasBlocking(x.Child)
	case *FilterNode:
		return hasBlocking(x.Child)
	case *ProjectNode:
		return hasBlocking(x.Child)
	case *OffsetNode:
		return hasBlocking(x.Child)
	case *LimitNode:
		return hasBlocking(x.Child)
	default:
		// joins, aggregate, sort, distinct
		return true
	}
}
