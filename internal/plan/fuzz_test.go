package plan_test

import (
	"strings"
	"testing"

	"ifdb/internal/engine"
	"ifdb/internal/plan"
	"ifdb/internal/sql"
)

// FuzzBuildExplain feeds arbitrary parser output through the plan
// builder and the EXPLAIN renderer: whatever the parser accepts, Build
// must either return a clean error or a plan whose tree renders —
// never panic. Statements that plan successfully are also executed, so
// the analyzer's rewrites (pushdown, index selection, pruning) and the
// iterators behind them run on adversarial shapes too.
func FuzzBuildExplain(f *testing.F) {
	e := engine.MustNew(engine.Config{IFC: true})
	admin := e.NewSession(e.Admin())
	for _, q := range []string{
		`CREATE TABLE t (k BIGINT PRIMARY KEY, a BIGINT, b TEXT)`,
		`CREATE INDEX t_a ON t (a)`,
		`CREATE VIEW v AS SELECT k, a FROM t WHERE a > 0`,
		`INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 20, NULL)`,
	} {
		if _, err := admin.Exec(q); err != nil {
			f.Fatal(err)
		}
	}
	for _, seed := range []string{
		`SELECT * FROM t`,
		`SELECT k FROM t WHERE a = 20 AND b IS NOT NULL ORDER BY k DESC LIMIT 1`,
		`SELECT x.a, COUNT(*) FROM (SELECT a FROM t) x GROUP BY x.a HAVING COUNT(*) > 1`,
		`SELECT t.k, v.a FROM t JOIN v ON t.k = v.k WHERE t.a BETWEEN 1 AND 30`,
		`SELECT k, _label FROM t WHERE k IN (SELECT k FROM v) OFFSET 1`,
		`SELECT DISTINCT b FROM t WHERE a = $1 OR k < 2`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmts, err := sql.ParseAll(query)
		if err != nil {
			return
		}
		planned := false
		allSelects := len(stmts) > 0
		for _, st := range stmts {
			sel, ok := st.(*sql.SelectStmt)
			if !ok {
				allSelects = false
				continue
			}
			p, err := plan.Build(e.Catalog(), sel, nil)
			if err != nil {
				continue
			}
			_ = p.Explain()
			planned = true
		}
		// Execute only all-SELECT batches (anything else would mutate the
		// shared fixture) that planned cleanly. sleep() is excluded: the
		// fuzzer stacks large arguments and the build already succeeded.
		if planned && allSelects && !strings.Contains(strings.ToLower(query), "sleep") {
			_, _ = admin.Exec(query)
		}
	})
}
