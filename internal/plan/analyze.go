package plan

import (
	"ifdb/internal/exec"
	"ifdb/internal/sql"
)

// rules is the ordered analysis pass applied to every SELECT level.
// Order matters: resolution feeds pushdown and pruning, and index
// selection reads the same WHERE clause pushdown splits, so it mines
// the original expression, not the residual.
var rules = []struct {
	name  string
	apply func(*level) error
}{
	{"resolve", resolveColumns},
	{"pushdown", pushdownPredicates},
	{"indexselect", selectIndexes},
	{"prune", pruneProjections},
}

// resolveColumns attributes every column reference in the level to its
// source. The legacy executor resolves names lazily per row, so this
// rule never fails — an unresolvable or ambiguous reference simply
// disables pruning and surfaces the legacy executor's own error at
// evaluation time, in the same place it always did.
func resolveColumns(lv *level) error {
	lv.canPrune = len(lv.sources) > 0
	offsets := make([]int, len(lv.sources))
	off := 0
	for i, src := range lv.sources {
		offsets[i] = off
		off += len(src.schema)
		src.needed = map[int]bool{}
	}
	mark := func(e sql.Expr) {
		walkRefs(e, func(cr *sql.ColumnRef) {
			if cr.Column == "_label" || cr.Column == "_ilabel" {
				return
			}
			i, err := lv.full.Resolve(cr.Table, cr.Column)
			if err != nil {
				lv.canPrune = false
				return
			}
			for k := len(lv.sources) - 1; k >= 0; k-- {
				if i >= offsets[k] {
					lv.sources[k].needed[i-offsets[k]] = true
					break
				}
			}
		})
	}
	for _, it := range lv.items {
		mark(it.Expr)
	}
	mark(lv.sel.Where)
	for _, src := range lv.sources {
		if src.jc != nil {
			mark(src.jc.On)
		}
	}
	for _, e := range lv.sel.GroupBy {
		mark(e)
	}
	mark(lv.sel.Having)
	for _, e := range lv.orderExprs {
		mark(e)
	}
	mark(lv.sel.Limit)
	mark(lv.sel.Offset)
	return nil
}

// pushdownPredicates moves WHERE conjuncts below the FROM scan, where
// they run per tuple right after MVCC and label visibility instead of
// after the whole input materializes.
//
// Equivalence with the legacy executor constrains the rule hard:
//
//   - The entire WHERE tree (and, when joins are present, every ON
//     clause) must be infallible: built only from shapes exec.Eval can
//     never fail on. Otherwise splitting the conjunction could
//     suppress or reorder an error the legacy all-rows-then-filter
//     pipeline reported. (Parameters are treated as infallible: a
//     missing parameter fails in the pushed position exactly when it
//     fails in the legacy position — on the first visible row.)
//   - A pushed conjunct must resolve entirely in the FROM scan's
//     schema; conjuncts touching joined tables stay in the residual.
//   - _label/_ilabel conjuncts are pushed only for single-table
//     queries: under a join the legacy WHERE saw the combined row
//     label (left ∪ right), which the scan cannot know. For a single
//     table the scan's strip-adjusted tuple label is byte-identical to
//     what the WHERE evaluated.
//
// The pushed conjuncts are evaluated only after the Label Confinement
// Rule admits the tuple, so pushdown cannot become a read side channel
// on rows the process label does not cover.
func pushdownPredicates(lv *level) error {
	lv.residual = lv.sel.Where
	if lv.sel.Where == nil || len(lv.sources) == 0 {
		return nil
	}
	fromScan := lv.sources[0].scan
	if fromScan == nil {
		return nil // FROM is a view or derived table
	}
	if !infallibleExpr(lv.sel.Where, lv.full) {
		return nil
	}
	hasJoins := len(lv.sources) > 1
	if hasJoins {
		for _, src := range lv.sources[1:] {
			if src.jc.On == nil || !infallibleExpr(src.jc.On, lv.full) {
				return nil
			}
		}
	}
	var pushed, residual []sql.Expr
	for _, c := range splitConjuncts(lv.sel.Where) {
		if pushableConjunct(c, fromScan.fullSchema, hasJoins) {
			pushed = append(pushed, c)
		} else {
			residual = append(residual, c)
		}
	}
	if len(pushed) == 0 {
		return nil
	}
	fromScan.Pushed = pushed
	lv.residual = joinConjuncts(residual)
	return nil
}

// selectIndexes mines the FROM scan's filter for column = constant
// conjuncts and picks the index with the longest fully-bound leading
// prefix, exactly like the legacy scan did per execution. The constant
// expressions are kept unevaluated: parameters are bound when the scan
// opens.
func selectIndexes(lv *level) error {
	if len(lv.sources) == 0 {
		return nil
	}
	scan := lv.sources[0].scan
	if scan == nil || scan.Filter == nil {
		return nil
	}
	var eq []EqConst
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		b, ok := e.(*sql.BinaryExpr)
		if !ok {
			return
		}
		switch b.Op {
		case "AND":
			walk(b.Left)
			walk(b.Right)
		case "=":
			col, cexpr := b.Left, b.Right
			if !isConst(cexpr) {
				col, cexpr = b.Right, b.Left
			}
			cr, ok := col.(*sql.ColumnRef)
			if !ok || !isConst(cexpr) || cr.Column == "_label" {
				return
			}
			i, err := scan.fullSchema.Resolve(cr.Table, cr.Column)
			if err != nil {
				return // column from another table in a join filter
			}
			eq = append(eq, EqConst{Col: i, Expr: cexpr})
		}
	}
	walk(scan.Filter)
	if len(eq) == 0 {
		return nil
	}
	scan.Eq = eq
	cols := make(map[int]bool, len(eq))
	for _, e := range eq {
		cols[e.Col] = true
	}
	if ix, n := scan.Table.BestIndexForCols(cols); ix != nil && n > 0 {
		scan.Index, scan.Prefix = ix, n
	}
	return nil
}

func isConst(e sql.Expr) bool {
	switch e.(type) {
	case *sql.Literal, *sql.Param:
		return true
	}
	return false
}

// pruneProjections drops scan columns the level never references, so
// wide tables stream narrow rows. It only runs when every column
// reference resolved unambiguously — removing a column may otherwise
// turn an "ambiguous column" error into a silent resolution.
// Index-probed join tables are exempt: their full rows enter the
// combined schema, as in the legacy executor.
func pruneProjections(lv *level) error {
	if !lv.canPrune {
		return nil
	}
	for _, src := range lv.sources {
		if src.scan == nil || src.isIndexJoin {
			continue
		}
		if len(src.needed) >= len(src.scan.fullSchema) {
			continue
		}
		out := make([]int, 0, len(src.needed))
		for c := range src.needed {
			out = append(out, c)
		}
		sortInts(out)
		src.scan.Out = out
	}
	return nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// walkRefs visits every column reference in e, not descending into
// subqueries (their references resolve against their own scope).
func walkRefs(e sql.Expr, fn func(*sql.ColumnRef)) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		fn(x)
	case *sql.BinaryExpr:
		walkRefs(x.Left, fn)
		walkRefs(x.Right, fn)
	case *sql.UnaryExpr:
		walkRefs(x.Expr, fn)
	case *sql.IsNullExpr:
		walkRefs(x.Expr, fn)
	case *sql.BetweenExpr:
		walkRefs(x.Expr, fn)
		walkRefs(x.Lo, fn)
		walkRefs(x.Hi, fn)
	case *sql.InExpr:
		walkRefs(x.Expr, fn)
		for _, it := range x.List {
			walkRefs(it, fn)
		}
	case *sql.FuncCall:
		for _, a := range x.Args {
			walkRefs(a, fn)
		}
	}
}

// infallibleExpr reports whether exec.Eval can never return an error
// for e against rows of schema: literals, parameters, resolvable
// column references (including the _label/_ilabel pseudo-columns),
// comparisons, AND/OR, IS NULL, BETWEEN, and IN over a literal list.
// Arithmetic (division by zero), NOT (type errors), LIKE, string
// concatenation, function calls, and subqueries are all fallible.
func infallibleExpr(e sql.Expr, schema exec.Schema) bool {
	switch x := e.(type) {
	case *sql.Literal, *sql.Param:
		return true
	case *sql.ColumnRef:
		if x.Column == "_label" || x.Column == "_ilabel" {
			return true
		}
		_, err := schema.Resolve(x.Table, x.Column)
		return err == nil
	case *sql.BinaryExpr:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return infallibleExpr(x.Left, schema) && infallibleExpr(x.Right, schema)
		}
		return false
	case *sql.IsNullExpr:
		return infallibleExpr(x.Expr, schema)
	case *sql.BetweenExpr:
		return infallibleExpr(x.Expr, schema) && infallibleExpr(x.Lo, schema) && infallibleExpr(x.Hi, schema)
	case *sql.InExpr:
		if x.Sub != nil {
			return false
		}
		if !infallibleExpr(x.Expr, schema) {
			return false
		}
		for _, it := range x.List {
			if !infallibleExpr(it, schema) {
				return false
			}
		}
		return true
	}
	return false
}

// pushableConjunct reports whether c may run inside the FROM scan:
// every plain column reference resolves in the scan's schema, and
// label pseudo-columns appear only when no join will change the row
// label above the scan.
func pushableConjunct(c sql.Expr, scanSchema exec.Schema, hasJoins bool) bool {
	ok := true
	walkRefs(c, func(cr *sql.ColumnRef) {
		if cr.Column == "_label" || cr.Column == "_ilabel" {
			if hasJoins {
				ok = false
			}
			return
		}
		if _, err := scanSchema.Resolve(cr.Table, cr.Column); err != nil {
			ok = false
		}
	})
	return ok
}

func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sql.Expr{e}
}

func joinConjuncts(cs []sql.Expr) sql.Expr {
	if len(cs) == 0 {
		return nil
	}
	e := cs[0]
	for _, c := range cs[1:] {
		e = &sql.BinaryExpr{Op: "AND", Left: e, Right: c}
	}
	return e
}
