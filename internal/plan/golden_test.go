package plan_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ifdb/internal/engine"
)

// Planner golden tests: EXPLAIN renderings of the analyzed plan tree
// for a fixture corpus, compared against testdata/explain/*.golden.
// Regenerate with:
//
//	go test ./internal/plan -run TestExplainGolden -update
var update = flag.Bool("update", false, "rewrite golden files from current output")

// explainFixture builds the corpus schema on a fresh IFC engine. The
// returned rewrite canonicalizes randomly-allocated tag IDs to tag
// names so the goldens are stable across runs.
func explainFixture(t *testing.T) (*engine.Session, func(string) string) {
	t.Helper()
	e := engine.MustNew(engine.Config{IFC: true})
	admin := e.NewSession(e.Admin())
	ddl := []string{
		`CREATE TABLE emp (id BIGINT PRIMARY KEY, dept BIGINT, name TEXT, salary BIGINT, boss BIGINT)`,
		`CREATE TABLE dept (id BIGINT PRIMARY KEY, dname TEXT)`,
		`CREATE INDEX emp_dept ON emp (dept)`,
		`CREATE INDEX emp_dept_sal ON emp (dept, salary)`,
		`CREATE VIEW wellpaid AS SELECT id, name, salary FROM emp WHERE salary > 1500`,
	}
	for _, q := range ddl {
		if _, err := admin.Exec(q); err != nil {
			t.Fatalf("fixture %q: %v", q, err)
		}
	}
	owner := e.CreatePrincipal("owner")
	tag, err := e.CreateTag(owner, "t_hr")
	if err != nil {
		t.Fatal(err)
	}
	so := e.NewSession(owner)
	if err := so.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	if _, err := so.Exec(`CREATE VIEW hr_pay AS
		SELECT id, salary FROM emp WITH DECLASSIFYING (t_hr)`); err != nil {
		t.Fatal(err)
	}
	id := fmt.Sprintf("%d", uint64(tag))
	return admin, func(s string) string { return strings.ReplaceAll(s, id, "t_hr") }
}

var explainCases = []struct{ name, sql string }{
	// Index selection: primary key, secondary, composite prefix.
	{"point_pk", `SELECT id, name FROM emp WHERE id = 7`},
	{"secondary_index", `SELECT id, name FROM emp WHERE dept = 3`},
	{"composite_prefix", `SELECT id FROM emp WHERE dept = 2 AND salary = 1200`},
	// Predicate pushdown: infallible conjuncts land below the scan;
	// fallible trees stay in a filter above it.
	{"pushdown_mixed", `SELECT id FROM emp WHERE dept = 2 AND salary > 1200`},
	{"pushdown_params", `SELECT id FROM emp WHERE dept = $1 AND id BETWEEN $2 AND $3`},
	{"fallible_filter", `SELECT id FROM emp WHERE salary / (dept + 1) > 300`},
	{"like_filter", `SELECT id FROM emp WHERE name LIKE 'n%' AND dept = 1`},
	// Projection pruning: the scan reads only the referenced columns.
	{"prune_columns", `SELECT name FROM emp WHERE dept = 0 ORDER BY name`},
	{"prune_alias", `SELECT e.salary FROM emp e WHERE e.id < 10`},
	// Joins: hash equi-join, index join, non-equi, LEFT.
	{"join_hash", `SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id WHERE e.salary > 1700`},
	{"join_self", `SELECT e.id, b.id FROM emp e JOIN emp b ON e.boss = b.id`},
	{"join_left", `SELECT d.dname, e.name FROM dept d LEFT JOIN emp e ON d.id = e.dept`},
	{"join_nonequi", `SELECT e.id, d.id FROM emp e JOIN dept d ON e.dept < d.id`},
	// Blocking shapes.
	{"aggregate", `SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 7`},
	{"distinct_sort", `SELECT DISTINCT dept FROM emp ORDER BY dept DESC`},
	{"limit_offset", `SELECT id FROM emp ORDER BY salary DESC LIMIT 5 OFFSET 2`},
	// LIMIT purity: a pure streaming pipeline early-exits; an impure
	// projection must drain for its side effects.
	{"limit_early_exit", `SELECT id FROM emp WHERE dept = 1 LIMIT 3`},
	{"limit_impure", `SELECT nextval('seq') FROM emp LIMIT 1`},
	// Views, including the declassifying kind (strip reaches the scan).
	{"view", `SELECT id, salary FROM wellpaid WHERE id < 30`},
	{"view_declassify", `SELECT id, salary FROM hr_pay WHERE salary > 100`},
	// Derived tables and subqueries.
	{"derived", `SELECT x.id FROM (SELECT id FROM emp WHERE dept = 1) x WHERE x.id > 5`},
	{"subquery_filter", `SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)`},
	// Pseudo-columns and constant relations.
	{"label_column", `SELECT id, _label FROM emp WHERE id < 5`},
	{"values_only", `SELECT 1, 'x'`},
}

func TestExplainGolden(t *testing.T) {
	admin, canon := explainFixture(t)
	for _, tc := range explainCases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := admin.Exec("EXPLAIN " + tc.sql)
			if err != nil {
				t.Fatalf("EXPLAIN %s: %v", tc.sql, err)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "-- EXPLAIN %s\n", tc.sql)
			for _, row := range res.Rows {
				b.WriteString(canon(row[0].Text()))
				b.WriteByte('\n')
			}
			got := b.String()
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s:\n-- got --\n%s-- want --\n%s", path, got, want)
			}
		})
	}
}
