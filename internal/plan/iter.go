package plan

import (
	"fmt"
	"sort"
	"strings"

	"ifdb/internal/exec"
	"ifdb/internal/index"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// scanBatch is how many tuples a scan visits per refill. The heap (or
// index) position is released between batches, so a million-row scan
// never pins a lock or buffers more than one batch.
const scanBatch = 1024

// drainIter pulls it to exhaustion. Row structs are copied out of the
// iterator's internal buffer, so the result is stable.
func drainIter(it Iter) ([]Row, error) {
	var out []Row
	for {
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return out, nil
		}
		out = append(out, *r)
	}
}

// ---------------------------------------------------------------------------
// Values (FROM-less SELECT)

type valuesIter struct{ done bool }

func (n *ValuesNode) open(rt *Runtime) (Iter, error) { return &valuesIter{}, nil }

func (it *valuesIter) Next() (*Row, error) {
	if it.done {
		return nil, nil
	}
	it.done = true
	return &Row{}, nil
}

func (it *valuesIter) Close() {}

// ---------------------------------------------------------------------------
// Scan

type scanIter struct {
	n   *ScanNode
	rt  *Runtime
	env *exec.Env // pushed-predicate env over the full table schema

	key []types.Value // index probe prefix (index mode)

	buf []Row
	pos int

	batch storage.BatchScanner // heap mode; nil → one-shot fallback
	next  storage.TID

	lastKey index.Key // index mode resume position
	lastTID storage.TID

	done     bool
	err      error
	scanned  int64
	reported bool
}

func (n *ScanNode) open(rt *Runtime) (Iter, error) {
	it := &scanIter{n: n, rt: rt, env: rt.env(n.fullSchema, n.Strip)}
	if len(n.Eq) > 0 {
		// Bind the filter's constants. Evaluation (and its errors —
		// e.g. a missing parameter) happens here, before any tuple is
		// visited, exactly where the legacy scan evaluated them.
		eq := make(map[int]types.Value, len(n.Eq))
		for _, e := range n.Eq {
			v, err := exec.Eval(e.Expr, &exec.Env{Params: rt.Params})
			if err != nil {
				return nil, err
			}
			eq[e.Col] = v
		}
		if n.Index != nil {
			it.key = make([]types.Value, n.Prefix)
			for i := 0; i < n.Prefix; i++ {
				it.key[i] = eq[n.Index.Cols[i]]
			}
		}
	}
	if n.Index == nil {
		if bs, ok := n.Table.Heap.(storage.BatchScanner); ok {
			it.batch = bs
		}
	}
	return it, nil
}

// accept applies, in order: MVCC visibility, the Label Confinement
// Rule, and only then any pushed predicates — a pushed predicate can
// never touch a tuple the process label does not cover. Accepted rows
// are buffered, pruned to the scan's output columns.
func (it *scanIter) accept(tv *storage.TupleVersion) error {
	it.scanned++
	if !it.rt.Visible(tv.Xmin, tv.Xmax) {
		return nil
	}
	if !it.rt.TupleVisible(tv, it.n.Strip) {
		return nil
	}
	lbl := it.rt.EffLabel(tv.Label, it.n.Strip)
	if len(it.n.Pushed) > 0 {
		it.env.Row = tv.Row
		it.env.RowLabel = lbl
		it.env.RowILabel = tv.ILabel
		for _, p := range it.n.Pushed {
			v, err := exec.Eval(p, it.env)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
	}
	vals := tv.Row
	if it.n.Out != nil {
		vals = make([]types.Value, len(it.n.Out))
		for i, c := range it.n.Out {
			vals[i] = tv.Row[c]
		}
	}
	it.buf = append(it.buf, Row{Vals: vals, Lbl: lbl, ILbl: tv.ILabel})
	return nil
}

func (it *scanIter) refillHeap() error {
	var cbErr error
	next, more := it.batch.ScanFrom(it.next, scanBatch, func(tid storage.TID, tv *storage.TupleVersion) bool {
		if cbErr = it.rt.check(); cbErr != nil {
			return false
		}
		if cbErr = it.accept(tv); cbErr != nil {
			return false
		}
		return true
	})
	it.next = next
	if cbErr != nil {
		return cbErr
	}
	if !more {
		it.done = true
	}
	return nil
}

// materializeHeap is the fallback for heaps without BatchScanner: one
// locked pass, everything buffered (legacy behaviour).
func (it *scanIter) materializeHeap() error {
	var cbErr error
	it.n.Table.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
		if cbErr = it.rt.check(); cbErr != nil {
			return false
		}
		if cbErr = it.accept(tv); cbErr != nil {
			return false
		}
		return true
	})
	it.done = true
	return cbErr
}

func (it *scanIter) refillIndex() error {
	var cbErr error
	lastKey, lastTID, more := it.n.Index.Tree.AscendPrefixAfter(it.key, it.lastKey, it.lastTID, scanBatch,
		func(k index.Key, tid storage.TID) bool {
			if cbErr = it.rt.check(); cbErr != nil {
				return false
			}
			if tv, ok := it.n.Table.Heap.Get(tid); ok {
				if cbErr = it.accept(&tv); cbErr != nil {
					return false
				}
			}
			return true
		})
	if cbErr != nil {
		return cbErr
	}
	if more {
		it.lastKey, it.lastTID = lastKey, lastTID
	} else {
		it.done = true
	}
	return nil
}

func (it *scanIter) Next() (*Row, error) {
	if it.err != nil {
		return nil, it.err
	}
	for it.pos >= len(it.buf) {
		if it.done {
			it.finish()
			return nil, nil
		}
		it.buf = it.buf[:0]
		it.pos = 0
		var err error
		switch {
		case it.n.Index != nil:
			err = it.refillIndex()
		case it.batch != nil:
			err = it.refillHeap()
		default:
			err = it.materializeHeap()
		}
		if err != nil {
			it.err = err
			it.finish()
			return nil, err
		}
	}
	r := &it.buf[it.pos]
	it.pos++
	return r, nil
}

func (it *scanIter) finish() {
	if !it.reported {
		it.reported = true
		it.rt.onScanned(it.scanned)
	}
}

func (it *scanIter) Close() { it.finish() }

// ---------------------------------------------------------------------------
// Rename (views and derived tables)

func (n *RenameNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		if n.ViewName != "" {
			return nil, fmt.Errorf("engine: view %q: %w", n.ViewName, err)
		}
		return nil, err
	}
	if n.ViewName == "" {
		return child, nil // pure schema rename, rows pass through
	}
	return &viewIter{name: n.ViewName, child: child}, nil
}

// viewIter wraps body errors in the legacy view envelope.
type viewIter struct {
	name  string
	child Iter
}

func (it *viewIter) Next() (*Row, error) {
	r, err := it.child.Next()
	if err != nil {
		return nil, fmt.Errorf("engine: view %q: %w", it.name, err)
	}
	return r, nil
}

func (it *viewIter) Close() { it.child.Close() }

// ---------------------------------------------------------------------------
// Filter

type filterIter struct {
	n     *FilterNode
	child Iter
	env   *exec.Env
}

func (n *FilterNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &filterIter{n: n, child: child, env: rt.env(n.Child.Schema(), n.Strip)}, nil
}

func (it *filterIter) Next() (*Row, error) {
	for {
		r, err := it.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		it.env.Row, it.env.RowLabel, it.env.RowILabel = r.Vals, r.Lbl, r.ILbl
		v, err := exec.Eval(it.n.Cond, it.env)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			return r, nil
		}
	}
}

func (it *filterIter) Close() { it.child.Close() }

// ---------------------------------------------------------------------------
// Joins (blocking: the legacy join algorithms run verbatim over the
// materialized inputs, preserving row order, label math, and errors)

type joinIter struct {
	n       *JoinNode
	rt      *Runtime
	left    Iter
	started bool
	out     []Row
	pos     int
}

func (n *JoinNode) open(rt *Runtime) (Iter, error) {
	left, err := n.Left.open(rt)
	if err != nil {
		return nil, err
	}
	return &joinIter{n: n, rt: rt, left: left}, nil
}

func (it *joinIter) Next() (*Row, error) {
	if !it.started {
		it.started = true
		if err := it.drain(); err != nil {
			return nil, err
		}
	}
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := &it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *joinIter) drain() error {
	n, rt := it.n, it.rt
	leftRows, err := drainIter(it.left)
	it.left.Close()
	if err != nil {
		return err
	}
	// The right side opens only after the left finished, keeping the
	// legacy error order: left-input errors surface before any
	// right-side error.
	right, err := n.Right.open(rt)
	if err != nil {
		return err
	}
	rightRows, err := drainIter(right)
	right.Close()
	if err != nil {
		return err
	}

	env := rt.env(n.schema, n.Strip)
	nullsRight := make([]types.Value, len(n.Right.Schema()))

	emit := func(lr Row, rr *Row) error {
		var combined []types.Value
		if rr != nil {
			combined = append(append([]types.Value{}, lr.Vals...), rr.Vals...)
			env.Row = combined
			env.RowLabel = lr.Lbl.Union(rr.Lbl)
			env.RowILabel = lr.ILbl.Intersect(rr.ILbl)
			v, err := exec.Eval(n.On, env)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return errNoMatch
			}
			it.out = append(it.out, Row{Vals: combined, Lbl: env.RowLabel, ILbl: env.RowILabel})
			return nil
		}
		combined = append(append([]types.Value{}, lr.Vals...), nullsRight...)
		it.out = append(it.out, Row{Vals: combined, Lbl: lr.Lbl, ILbl: lr.ILbl})
		return nil
	}

	if n.Strategy == JoinHash {
		ht := make(map[string][]int, len(rightRows))
		for ri := range rightRows {
			k := hashKey(rightRows[ri].Vals, n.RightKeys)
			ht[k] = append(ht[k], ri)
		}
		for _, lr := range leftRows {
			k := hashKey(lr.Vals, n.LeftKeys)
			matched := false
			for _, ri := range ht[k] {
				switch err := emit(lr, &rightRows[ri]); err {
				case nil:
					matched = true
				case errNoMatch:
				default:
					return err
				}
			}
			if !matched && n.Kind == "LEFT" {
				if err := emit(lr, nil); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, lr := range leftRows {
		matched := false
		for ri := range rightRows {
			switch err := emit(lr, &rightRows[ri]); err {
			case nil:
				matched = true
			case errNoMatch:
			default:
				return err
			}
		}
		if !matched && n.Kind == "LEFT" {
			if err := emit(lr, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// errNoMatch is an internal signal of emit: the ON clause evaluated
// non-true. Never escapes the join.
var errNoMatch = fmt.Errorf("plan: no match")

func (it *joinIter) Close() { it.left.Close() }

type indexJoinIter struct {
	n       *IndexJoinNode
	rt      *Runtime
	left    Iter
	started bool
	out     []Row
	pos     int
}

func (n *IndexJoinNode) open(rt *Runtime) (Iter, error) {
	left, err := n.Left.open(rt)
	if err != nil {
		return nil, err
	}
	return &indexJoinIter{n: n, rt: rt, left: left}, nil
}

func (it *indexJoinIter) Next() (*Row, error) {
	if !it.started {
		it.started = true
		if err := it.drain(); err != nil {
			return nil, err
		}
	}
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := &it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *indexJoinIter) drain() error {
	n, rt := it.n, it.rt
	leftRows, err := drainIter(it.left)
	it.left.Close()
	if err != nil {
		return err
	}
	env := rt.env(n.schema, n.Strip)
	nullsRight := make([]types.Value, len(n.rightSchema))

	for _, lr := range leftRows {
		key := make([]types.Value, n.Prefix)
		for i := 0; i < n.Prefix; i++ {
			key[i] = lr.Vals[n.ProbeCols[i]]
		}
		matched := false
		var probeErr error
		n.Index.Tree.AscendPrefix(key, func(_ index.Key, tid storage.TID) bool {
			tv, ok := n.Table.Heap.Get(tid)
			if !ok {
				return true
			}
			if !rt.Visible(tv.Xmin, tv.Xmax) || !rt.TupleVisible(&tv, n.Strip) {
				return true
			}
			combined := append(append([]types.Value{}, lr.Vals...), tv.Row...)
			env.Row = combined
			env.RowLabel = lr.Lbl.Union(rt.EffLabel(tv.Label, n.Strip))
			env.RowILabel = lr.ILbl.Intersect(tv.ILabel)
			v, err := exec.Eval(n.On, env)
			if err != nil {
				probeErr = err
				return false
			}
			if v.Truthy() {
				matched = true
				it.out = append(it.out, Row{Vals: combined, Lbl: env.RowLabel, ILbl: env.RowILabel})
			}
			return true
		})
		if probeErr != nil {
			return probeErr
		}
		if !matched && n.Kind == "LEFT" {
			combined := append(append([]types.Value{}, lr.Vals...), nullsRight...)
			it.out = append(it.out, Row{Vals: combined, Lbl: lr.Lbl, ILbl: lr.ILbl})
		}
	}
	return nil
}

func (it *indexJoinIter) Close() { it.left.Close() }

// ---------------------------------------------------------------------------
// Project

type projectIter struct {
	n     *ProjectNode
	child Iter
	env   *exec.Env
}

func (n *ProjectNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &projectIter{n: n, child: child, env: rt.env(n.Child.Schema(), n.Strip)}, nil
}

func (it *projectIter) Next() (*Row, error) {
	r, err := it.child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	it.env.Row, it.env.RowLabel, it.env.RowILabel = r.Vals, r.Lbl, r.ILbl
	vals := make([]types.Value, len(it.n.Items))
	for i, item := range it.n.Items {
		v, err := exec.Eval(item.Expr, it.env)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	var keys []types.Value
	if len(it.n.OrderExprs) > 0 {
		keys = make([]types.Value, len(it.n.OrderExprs))
		for i, oe := range it.n.OrderExprs {
			v, err := exec.Eval(oe, it.env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
	}
	return &Row{Vals: vals, Lbl: r.Lbl, ILbl: r.ILbl, Sort: keys}, nil
}

func (it *projectIter) Close() { it.child.Close() }

// ---------------------------------------------------------------------------
// Sort

type sortIter struct {
	n       *SortNode
	child   Iter
	started bool
	rows    []Row
	pos     int
}

func (n *SortNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &sortIter{n: n, child: child}, nil
}

func (it *sortIter) Next() (*Row, error) {
	if !it.started {
		it.started = true
		rows, err := drainIter(it.child)
		it.child.Close()
		if err != nil {
			return nil, err
		}
		desc := it.n.Desc
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i].Sort, rows[j].Sort
			for k := range a {
				c := a[k].Compare(b[k])
				if c != 0 {
					if desc[k] {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		it.rows = rows
	}
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := &it.rows[it.pos]
	it.pos++
	return r, nil
}

func (it *sortIter) Close() { it.child.Close() }

// ---------------------------------------------------------------------------
// Distinct

type distinctIter struct {
	child Iter
	seen  map[string]bool
}

func (n *DistinctNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &distinctIter{child: child, seen: map[string]bool{}}, nil
}

func (it *distinctIter) Next() (*Row, error) {
	for {
		r, err := it.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		k := rowKey(r.Vals)
		if !it.seen[k] {
			it.seen[k] = true
			return r, nil
		}
	}
}

func (it *distinctIter) Close() { it.child.Close() }

// ---------------------------------------------------------------------------
// Offset / Limit

type offsetIter struct {
	child Iter
	skip  int64
}

func (n *OffsetNode) open(rt *Runtime) (Iter, error) {
	nv, err := evalIntConst(n.Expr, rt.env(nil, n.Strip))
	if err != nil {
		return nil, err
	}
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &offsetIter{child: child, skip: nv}, nil
}

func (it *offsetIter) Next() (*Row, error) {
	for it.skip > 0 {
		r, err := it.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		it.skip--
	}
	return it.child.Next()
}

func (it *offsetIter) Close() { it.child.Close() }

type limitIter struct {
	child Iter
	left  int64
	pure  bool
	done  bool
}

func (n *LimitNode) open(rt *Runtime) (Iter, error) {
	nv, err := evalIntConst(n.Expr, rt.env(nil, n.Strip))
	if err != nil {
		return nil, err
	}
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &limitIter{child: child, left: nv, pure: n.Pure}, nil
}

func (it *limitIter) Next() (*Row, error) {
	if it.done {
		return nil, nil
	}
	if it.left <= 0 {
		it.done = true
		if !it.pure {
			// The subtree may call state-changing functions (nextval,
			// addsecrecy, ...); the legacy executor evaluated them for
			// every row before slicing, so keep pulling — discarding
			// rows — until the input runs dry.
			for {
				r, err := it.child.Next()
				if err != nil {
					return nil, err
				}
				if r == nil {
					return nil, nil
				}
			}
		}
		return nil, nil
	}
	r, err := it.child.Next()
	if err != nil || r == nil {
		it.done = true
		return nil, err
	}
	it.left--
	return r, nil
}

func (it *limitIter) Close() { it.child.Close() }

func evalIntConst(e sql.Expr, env *exec.Env) (int64, error) {
	v, err := exec.Eval(e, env)
	if err != nil {
		return 0, err
	}
	if v.Kind() != types.KindInt || v.Int() < 0 {
		return 0, fmt.Errorf("engine: LIMIT/OFFSET must be a non-negative integer")
	}
	return v.Int(), nil
}

// ---------------------------------------------------------------------------
// Key helpers (byte-compatible with the legacy executor)

func hashKey(vals []types.Value, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		v := vals[c]
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

func rowKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}
