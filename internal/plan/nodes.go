package plan

import (
	"fmt"
	"strings"

	"ifdb/internal/catalog"
	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
)

// EqConst is one "col = const" conjunct harvested from the WHERE
// clause for index selection, in AND-walk order. The constant side is
// a Literal or Param, evaluated once when the scan opens (last
// assignment to a column wins, like the legacy extractor's map).
type EqConst struct {
	Col  int // ordinal in the table's full column list
	Expr sql.Expr
}

// ScanNode reads one base table: either a full heap scan resumable in
// batches, or an index prefix scan when analysis bound the leading
// columns of an index to constants.
type ScanNode struct {
	Table *catalog.Table
	Alias string
	Strip label.Label // declassify strip in effect at this level

	// Filter is the WHERE expression index selection mines for
	// equality constants; it is not evaluated as a whole here.
	Filter sql.Expr

	// Analysis results.
	Eq     []EqConst      // "col = const" conjuncts from Filter
	Index  *catalog.Index // chosen index, nil for a heap scan
	Prefix int            // leading Index columns bound by Eq
	Pushed []sql.Expr     // infallible conjuncts evaluated per tuple
	Out    []int          // pruned output ordinals; nil keeps all

	schema     exec.Schema // output schema (after pruning)
	fullSchema exec.Schema // full table schema under Alias
}

func (n *ScanNode) Schema() exec.Schema { return n.schema }

// ValuesNode is the FROM-less source: exactly one empty row, like the
// legacy executor's single empty qrow.
type ValuesNode struct{}

func (n *ValuesNode) Schema() exec.Schema { return nil }

// RenameNode re-tables its child's output under an alias. It covers
// both derived tables (FROM (SELECT ...) AS a) and views; for views it
// also applies the view's declared column names and wraps runtime
// errors in the legacy "engine: view %q: %w" envelope.
type RenameNode struct {
	Child    Node
	Alias    string
	ViewName string      // "" for a plain derived table
	Strip    label.Label // view strip (shown by EXPLAIN)

	schema exec.Schema
}

func (n *RenameNode) Schema() exec.Schema { return n.schema }

// FilterNode applies the residual WHERE conjuncts (those analysis did
// not push below the scan).
type FilterNode struct {
	Child Node
	Cond  sql.Expr
	Strip label.Label
}

func (n *FilterNode) Schema() exec.Schema { return n.Child.Schema() }

// Join strategies. The choice is static: analysis sees the same
// operands the legacy executor inspected at run time, so the decision
// is identical — it is just made once and recorded for EXPLAIN.
const (
	JoinLoop  = "loop"  // nested loop, right side buffered
	JoinHash  = "hash"  // equi-join via hash table over the right side
	JoinIndex = "index" // probe a right-table index per left row
)

// JoinNode is a hash or nested-loop join. It is a blocking operator:
// the legacy join algorithm runs verbatim over the materialized
// inputs, which keeps row order, label combination, and error order
// identical to the oracle. (Streaming joins are future work.)
type JoinNode struct {
	Left      Node
	Right     Node
	Kind      string // "INNER" or "LEFT"
	On        sql.Expr
	Strategy  string // JoinLoop or JoinHash
	LeftKeys  []int  // equi-join key ordinals (hash strategy)
	RightKeys []int
	Strip     label.Label

	schema exec.Schema
}

func (n *JoinNode) Schema() exec.Schema { return n.schema }

// IndexJoinNode probes a right-table index once per left row instead
// of materializing the right side. The right table's full rows enter
// the combined schema, exactly like the legacy index join.
type IndexJoinNode struct {
	Left   Node
	Table  *catalog.Table
	Alias  string
	Kind   string // "INNER" or "LEFT"
	On     sql.Expr
	Index  *catalog.Index
	Prefix int
	// ProbeCols[i] is the left-row ordinal whose value binds
	// Index.Cols[i], for i < Prefix.
	ProbeCols []int
	Strip     label.Label

	schema      exec.Schema
	rightSchema exec.Schema
}

func (n *IndexJoinNode) Schema() exec.Schema { return n.schema }

// ProjectNode evaluates the (star-expanded) select items and the
// alias-substituted ORDER BY keys for each input row.
type ProjectNode struct {
	Child      Node
	Items      []sql.SelectItem
	OrderExprs []sql.Expr
	Strip      label.Label

	schema exec.Schema
}

func (n *ProjectNode) Schema() exec.Schema { return n.schema }

// AggregateNode groups and folds its input. Blocking by nature.
type AggregateNode struct {
	Child      Node
	Items      []sql.SelectItem
	GroupBy    []sql.Expr
	Having     sql.Expr
	OrderExprs []sql.Expr
	Strip      label.Label

	schema exec.Schema
}

func (n *AggregateNode) Schema() exec.Schema { return n.schema }

// SortNode orders its input by the Sort keys the projection attached.
type SortNode struct {
	Child Node
	// Exprs are the alias-substituted ORDER BY expressions (for
	// EXPLAIN); Desc holds each key's direction.
	Exprs []sql.Expr
	Desc  []bool
}

func (n *SortNode) Schema() exec.Schema { return n.Child.Schema() }

// DistinctNode drops rows whose full value tuple was already seen,
// keeping the first occurrence (matching the legacy executor, which
// applies DISTINCT after ORDER BY).
type DistinctNode struct {
	Child Node
}

func (n *DistinctNode) Schema() exec.Schema { return n.Child.Schema() }

// OffsetNode skips the first N output rows.
type OffsetNode struct {
	Child Node
	Expr  sql.Expr
	Strip label.Label
}

func (n *OffsetNode) Schema() exec.Schema { return n.Child.Schema() }

// LimitNode truncates the output to N rows. When the subtree below is
// provably free of state-changing function calls, the iterator stops
// pulling as soon as the limit is reached; otherwise it drains its
// child completely (matching the legacy executor's materialize-then-
// slice behaviour, whose side effects must be preserved).
type LimitNode struct {
	Child Node
	Expr  sql.Expr
	Pure  bool
	Strip label.Label
}

func (n *LimitNode) Schema() exec.Schema { return n.Child.Schema() }

// tableSchema builds the exec schema of a table under an alias.
func tableSchema(t *catalog.Table, alias string) exec.Schema {
	schema := make(exec.Schema, len(t.Columns))
	for i, c := range t.Columns {
		schema[i] = exec.ColMeta{Table: alias, Name: c.Name}
	}
	return schema
}

// outputSchema names the columns a projection produces, mirroring the
// legacy executor's rules: explicit alias, else the bare column name,
// else a positional "columnN".
func outputSchema(items []sql.SelectItem) exec.Schema {
	schema := make(exec.Schema, len(items))
	for i, it := range items {
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Column
			}
		}
		if name == "" {
			name = fmt.Sprintf("column%d", i+1)
		}
		schema[i] = exec.ColMeta{Name: name}
	}
	return schema
}

// expandStars replaces * and table.* items with explicit column
// references against schema, mirroring the legacy expansion.
func expandStars(items []sql.SelectItem, schema exec.Schema) ([]sql.SelectItem, error) {
	out := make([]sql.SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range schema {
			if it.Table != "" && !strings.EqualFold(c.Table, it.Table) {
				continue
			}
			matched = true
			out = append(out, sql.SelectItem{
				Expr:  &sql.ColumnRef{Table: c.Table, Column: c.Name},
				Alias: c.Name,
			})
		}
		if !matched {
			return nil, fmt.Errorf("engine: %s.* matches no columns", it.Table)
		}
	}
	return out, nil
}

// substituteAliases rewrites bare column references that name a select
// item alias into that item's expression, so ORDER BY aliases work.
func substituteAliases(e sql.Expr, aliases map[string]sql.Expr) sql.Expr {
	if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
		if repl, ok := aliases[cr.Column]; ok {
			return repl
		}
	}
	return e
}
