package plan

import (
	"fmt"

	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// This file ports the legacy engine's aggregation verbatim onto the
// iterator model. Aggregation is inherently blocking, so the iterator
// drains its child and then replays the legacy algorithm: aggregate
// calls are rewritten to placeholder parameters allocated after the
// user's parameters, groups accumulate in first-seen order, and each
// output row's secrecy label is the union (integrity label the
// intersection) of its inputs — derived data carries the contamination
// of everything that fed it (Information Flow Rule).

// aggState accumulates one aggregate call over one group.
type aggState struct {
	fn       string
	distinct bool
	star     bool

	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minV    types.Value
	maxV    types.Value
	seen    map[string]bool // for DISTINCT
	any     bool
}

func newAggState(fc *sql.FuncCall) *aggState {
	st := &aggState{fn: fc.Name, distinct: fc.Distinct, star: fc.Star}
	if fc.Distinct {
		st.seen = make(map[string]bool)
	}
	return st
}

func (a *aggState) add(v types.Value) error {
	if a.star {
		a.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates ignore NULLs
	}
	if a.distinct {
		k := string(rune(v.Kind())) + v.String()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.any = true
	a.count++
	switch a.fn {
	case "count":
	case "sum", "avg":
		switch v.Kind() {
		case types.KindInt:
			a.sumI += v.Int()
			a.sumF += float64(v.Int())
		case types.KindFloat:
			a.isFloat = true
			a.sumF += v.Float()
		default:
			return fmt.Errorf("engine: %s over %s", a.fn, v.Kind())
		}
	case "min":
		if a.minV.IsNull() || v.Compare(a.minV) < 0 {
			a.minV = v
		}
	case "max":
		if a.maxV.IsNull() || v.Compare(a.maxV) > 0 {
			a.maxV = v
		}
	default:
		return fmt.Errorf("engine: unknown aggregate %q", a.fn)
	}
	return nil
}

func (a *aggState) result() types.Value {
	switch a.fn {
	case "count":
		return types.NewInt(a.count)
	case "sum":
		if !a.any {
			return types.Null
		}
		if a.isFloat {
			return types.NewFloat(a.sumF)
		}
		return types.NewInt(a.sumI)
	case "avg":
		if !a.any {
			return types.Null
		}
		return types.NewFloat(a.sumF / float64(a.count))
	case "min":
		return a.minV
	case "max":
		return a.maxV
	}
	return types.Null
}

// collectAggs gathers the distinct aggregate call nodes in an
// expression tree (by pointer identity).
func collectAggs(e sql.Expr, out *[]*sql.FuncCall, seen map[*sql.FuncCall]bool) {
	switch x := e.(type) {
	case nil:
	case *sql.FuncCall:
		if exec.IsAggregateName(x.Name) {
			if !seen[x] {
				seen[x] = true
				*out = append(*out, x)
			}
			return
		}
		for _, a := range x.Args {
			collectAggs(a, out, seen)
		}
	case *sql.BinaryExpr:
		collectAggs(x.Left, out, seen)
		collectAggs(x.Right, out, seen)
	case *sql.UnaryExpr:
		collectAggs(x.Expr, out, seen)
	case *sql.IsNullExpr:
		collectAggs(x.Expr, out, seen)
	case *sql.BetweenExpr:
		collectAggs(x.Expr, out, seen)
		collectAggs(x.Lo, out, seen)
		collectAggs(x.Hi, out, seen)
	case *sql.InExpr:
		collectAggs(x.Expr, out, seen)
		for _, it := range x.List {
			collectAggs(it, out, seen)
		}
	}
}

// replaceAggs rewrites aggregate call nodes to parameter placeholders
// (indexes from mapping), leaving everything else shared.
func replaceAggs(e sql.Expr, mapping map[*sql.FuncCall]int) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.FuncCall:
		if idx, ok := mapping[x]; ok {
			return &sql.Param{Index: idx}
		}
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = replaceAggs(a, mapping)
		}
		return &sql.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: args}
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: replaceAggs(x.Left, mapping), Right: replaceAggs(x.Right, mapping)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: replaceAggs(x.Expr, mapping)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: replaceAggs(x.Expr, mapping), Not: x.Not}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{Expr: replaceAggs(x.Expr, mapping), Lo: replaceAggs(x.Lo, mapping), Hi: replaceAggs(x.Hi, mapping), Not: x.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(x.List))
		for i, it := range x.List {
			list[i] = replaceAggs(it, mapping)
		}
		return &sql.InExpr{Expr: replaceAggs(x.Expr, mapping), List: list, Sub: x.Sub, Not: x.Not}
	default:
		return e
	}
}

type aggIter struct {
	n       *AggregateNode
	rt      *Runtime
	child   Iter
	started bool
	out     []Row
	pos     int
}

func (n *AggregateNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &aggIter{n: n, rt: rt, child: child}, nil
}

func (it *aggIter) Next() (*Row, error) {
	if !it.started {
		it.started = true
		if err := it.drain(); err != nil {
			return nil, err
		}
	}
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := &it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *aggIter) drain() error {
	n, rt := it.n, it.rt
	input, err := drainIter(it.child)
	it.child.Close()
	if err != nil {
		return err
	}
	inSchema := n.Child.Schema()
	env := rt.env(inSchema, n.Strip)

	// Gather aggregate nodes across items, HAVING, and ORDER BY.
	var aggs []*sql.FuncCall
	seen := make(map[*sql.FuncCall]bool)
	for _, item := range n.Items {
		collectAggs(item.Expr, &aggs, seen)
	}
	collectAggs(n.Having, &aggs, seen)
	for _, oe := range n.OrderExprs {
		collectAggs(oe, &aggs, seen)
	}

	// Allocate placeholder parameter indexes after the user's params.
	base := len(env.Params)
	mapping := make(map[*sql.FuncCall]int, len(aggs))
	for i, fc := range aggs {
		mapping[fc] = base + i + 1
	}
	subItems := make([]sql.Expr, len(n.Items))
	for i, item := range n.Items {
		subItems[i] = replaceAggs(item.Expr, mapping)
	}
	subHaving := replaceAggs(n.Having, mapping)
	subOrder := make([]sql.Expr, len(n.OrderExprs))
	for i, oe := range n.OrderExprs {
		subOrder[i] = replaceAggs(oe, mapping)
	}

	type group struct {
		rep    Row // representative row (first of group)
		states []*aggState
		lbl    label.Label
		ilbl   label.Label
		first  bool
	}
	groups := make(map[string]*group)
	var order []string

	for _, r := range input {
		env.Row, env.RowLabel, env.RowILabel = r.Vals, r.Lbl, r.ILbl
		var key string
		if len(n.GroupBy) > 0 {
			kv := make([]types.Value, len(n.GroupBy))
			for i, ge := range n.GroupBy {
				v, err := exec.Eval(ge, env)
				if err != nil {
					return err
				}
				kv[i] = v
			}
			key = rowKey(kv)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{rep: r, states: make([]*aggState, len(aggs)), first: true, ilbl: r.ILbl}
			for i, fc := range aggs {
				g.states[i] = newAggState(fc)
			}
			groups[key] = g
			order = append(order, key)
		}
		g.lbl = g.lbl.Union(r.Lbl)
		if g.first {
			g.first = false
		} else {
			g.ilbl = g.ilbl.Intersect(r.ILbl)
		}
		for i, fc := range aggs {
			if fc.Star {
				if err := g.states[i].add(types.Null); err != nil {
					return err
				}
				continue
			}
			if len(fc.Args) != 1 {
				return fmt.Errorf("engine: aggregate %s takes one argument", fc.Name)
			}
			v, err := exec.Eval(fc.Args[0], env)
			if err != nil {
				return err
			}
			if err := g.states[i].add(v); err != nil {
				return err
			}
		}
	}

	// With no GROUP BY, an empty input still yields one group.
	if len(n.GroupBy) == 0 && len(groups) == 0 {
		g := &group{rep: Row{Vals: make([]types.Value, len(inSchema))}, states: make([]*aggState, len(aggs))}
		for i, fc := range aggs {
			g.states[i] = newAggState(fc)
		}
		groups[""] = g
		order = append(order, "")
	}

	for _, key := range order {
		g := groups[key]
		params := make([]types.Value, base+len(aggs))
		copy(params, env.Params)
		for i, st := range g.states {
			params[base+i] = st.result()
		}
		genv := &exec.Env{
			Schema:    inSchema,
			Row:       g.rep.Vals,
			RowLabel:  g.lbl,
			RowILabel: g.ilbl,
			Params:    params,
			Funcs:     env.Funcs,
			Subq:      env.Subq,
		}
		if subHaving != nil {
			hv, err := exec.Eval(subHaving, genv)
			if err != nil {
				return err
			}
			if !hv.Truthy() {
				continue
			}
		}
		vals := make([]types.Value, len(subItems))
		for i, ie := range subItems {
			v, err := exec.Eval(ie, genv)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		var keys []types.Value
		if len(subOrder) > 0 {
			keys = make([]types.Value, len(subOrder))
			for i, oe := range subOrder {
				v, err := exec.Eval(oe, genv)
				if err != nil {
					return err
				}
				keys[i] = v
			}
		}
		it.out = append(it.out, Row{Vals: vals, Lbl: g.lbl, ILbl: g.ilbl, Sort: keys})
	}
	return nil
}

func (it *aggIter) Close() { it.child.Close() }
