package plan

import (
	"fmt"

	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// This file ports the legacy engine's aggregation verbatim onto the
// iterator model. Aggregation is inherently blocking, so the iterator
// drains its child and then replays the legacy algorithm: aggregate
// calls are rewritten to placeholder parameters allocated after the
// user's parameters, groups accumulate in first-seen order, and each
// output row's secrecy label is the union (integrity label the
// intersection) of its inputs — derived data carries the contamination
// of everything that fed it (Information Flow Rule).
//
// The accumulator itself (exec.AggState) is shared with the legacy
// executor and the distributed gateway merge.

type aggIter struct {
	n       *AggregateNode
	rt      *Runtime
	child   Iter
	started bool
	out     []Row
	pos     int
}

func (n *AggregateNode) open(rt *Runtime) (Iter, error) {
	child, err := n.Child.open(rt)
	if err != nil {
		return nil, err
	}
	return &aggIter{n: n, rt: rt, child: child}, nil
}

func (it *aggIter) Next() (*Row, error) {
	if !it.started {
		it.started = true
		if err := it.drain(); err != nil {
			return nil, err
		}
	}
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := &it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *aggIter) drain() error {
	n, rt := it.n, it.rt
	input, err := drainIter(it.child)
	it.child.Close()
	if err != nil {
		return err
	}
	inSchema := n.Child.Schema()
	env := rt.env(inSchema, n.Strip)

	// Gather aggregate nodes across items, HAVING, and ORDER BY.
	var aggs []*sql.FuncCall
	seen := make(map[*sql.FuncCall]bool)
	for _, item := range n.Items {
		exec.CollectAggs(item.Expr, &aggs, seen)
	}
	exec.CollectAggs(n.Having, &aggs, seen)
	for _, oe := range n.OrderExprs {
		exec.CollectAggs(oe, &aggs, seen)
	}

	// Allocate placeholder parameter indexes after the user's params.
	base := len(env.Params)
	mapping := make(map[*sql.FuncCall]int, len(aggs))
	for i, fc := range aggs {
		mapping[fc] = base + i + 1
	}
	subItems := make([]sql.Expr, len(n.Items))
	for i, item := range n.Items {
		subItems[i] = exec.ReplaceAggs(item.Expr, mapping)
	}
	subHaving := exec.ReplaceAggs(n.Having, mapping)
	subOrder := make([]sql.Expr, len(n.OrderExprs))
	for i, oe := range n.OrderExprs {
		subOrder[i] = exec.ReplaceAggs(oe, mapping)
	}

	type group struct {
		rep    Row // representative row (first of group)
		states []*exec.AggState
		lbl    label.Label
		ilbl   label.Label
		first  bool
	}
	groups := make(map[string]*group)
	var order []string

	for _, r := range input {
		env.Row, env.RowLabel, env.RowILabel = r.Vals, r.Lbl, r.ILbl
		var key string
		if len(n.GroupBy) > 0 {
			kv := make([]types.Value, len(n.GroupBy))
			for i, ge := range n.GroupBy {
				v, err := exec.Eval(ge, env)
				if err != nil {
					return err
				}
				kv[i] = v
			}
			key = rowKey(kv)
		}
		g, ok := groups[key]
		if !ok {
			g = &group{rep: r, states: make([]*exec.AggState, len(aggs)), first: true, ilbl: r.ILbl}
			for i, fc := range aggs {
				g.states[i] = exec.NewAggState(fc)
			}
			groups[key] = g
			order = append(order, key)
		}
		g.lbl = g.lbl.Union(r.Lbl)
		if g.first {
			g.first = false
		} else {
			g.ilbl = g.ilbl.Intersect(r.ILbl)
		}
		for i, fc := range aggs {
			if fc.Star {
				if err := g.states[i].Add(types.Null); err != nil {
					return err
				}
				continue
			}
			if len(fc.Args) != 1 {
				return fmt.Errorf("engine: aggregate %s takes one argument", fc.Name)
			}
			v, err := exec.Eval(fc.Args[0], env)
			if err != nil {
				return err
			}
			if err := g.states[i].Add(v); err != nil {
				return err
			}
		}
	}

	// With no GROUP BY, an empty input still yields one group.
	if len(n.GroupBy) == 0 && len(groups) == 0 {
		g := &group{rep: Row{Vals: make([]types.Value, len(inSchema))}, states: make([]*exec.AggState, len(aggs))}
		for i, fc := range aggs {
			g.states[i] = exec.NewAggState(fc)
		}
		groups[""] = g
		order = append(order, "")
	}

	for _, key := range order {
		g := groups[key]
		params := make([]types.Value, base+len(aggs))
		copy(params, env.Params)
		for i, st := range g.states {
			params[base+i] = st.Result()
		}
		genv := &exec.Env{
			Schema:    inSchema,
			Row:       g.rep.Vals,
			RowLabel:  g.lbl,
			RowILabel: g.ilbl,
			Params:    params,
			Funcs:     env.Funcs,
			Subq:      env.Subq,
		}
		if subHaving != nil {
			hv, err := exec.Eval(subHaving, genv)
			if err != nil {
				return err
			}
			if !hv.Truthy() {
				continue
			}
		}
		vals := make([]types.Value, len(subItems))
		for i, ie := range subItems {
			v, err := exec.Eval(ie, genv)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		var keys []types.Value
		if len(subOrder) > 0 {
			keys = make([]types.Value, len(subOrder))
			for i, oe := range subOrder {
				v, err := exec.Eval(oe, genv)
				if err != nil {
					return err
				}
				keys[i] = v
			}
		}
		it.out = append(it.out, Row{Vals: vals, Lbl: g.lbl, ILbl: g.ilbl, Sort: keys})
	}
	return nil
}

func (it *aggIter) Close() { it.child.Close() }
