package plan

import (
	"fmt"
	"strconv"
	"strings"

	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// Explain renders the analyzed plan tree as indented text, one
// operator per line, leaves (scans) at the bottom. The rendering is
// deterministic — it is golden-tested — and shows every analysis
// decision: chosen index and bound prefix, pushed predicates, pruned
// column sets, join strategy, and whether LIMIT may early-exit.
func (p *Plan) Explain() string {
	var sb strings.Builder
	renderNode(p.Root, &sb, "", true, true)
	return sb.String()
}

func renderNode(n Node, sb *strings.Builder, prefix string, last, root bool) {
	text, children := describe(n)
	if root {
		sb.WriteString(text)
		sb.WriteByte('\n')
	} else {
		connector, childIndent := "├─ ", "│  "
		if last {
			connector, childIndent = "└─ ", "   "
		}
		sb.WriteString(prefix)
		sb.WriteString(connector)
		sb.WriteString(text)
		sb.WriteByte('\n')
		prefix += childIndent
	}
	for i, c := range children {
		renderNode(c, sb, prefix, i == len(children)-1, false)
	}
}

// describe renders one operator and lists its children.
func describe(n Node) (string, []Node) {
	switch x := n.(type) {
	case *ValuesNode:
		return "values (1 row)", nil
	case *ScanNode:
		var b strings.Builder
		b.WriteString("scan ")
		b.WriteString(x.Table.Name)
		if x.Alias != "" && x.Alias != x.Table.Name {
			b.WriteString(" AS ")
			b.WriteString(x.Alias)
		}
		if x.Index != nil {
			fmt.Fprintf(&b, " | index=%s prefix=%d", x.Index.Name, x.Prefix)
		}
		if len(x.Eq) > 0 {
			b.WriteString(" | eq=[")
			for i, e := range x.Eq {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(x.fullSchema[e.Col].Name)
				b.WriteString("=")
				b.WriteString(formatExpr(e.Expr))
			}
			b.WriteString("]")
		}
		if len(x.Pushed) > 0 {
			b.WriteString(" | push=[")
			for i, p := range x.Pushed {
				if i > 0 {
					b.WriteString(" AND ")
				}
				b.WriteString(formatExpr(p))
			}
			b.WriteString("]")
		}
		if x.Out != nil {
			b.WriteString(" | cols=[")
			for i, c := range x.Out {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(x.fullSchema[c].Name)
			}
			b.WriteString("]")
		}
		if !x.Strip.IsEmpty() {
			b.WriteString(" | strip=")
			b.WriteString(x.Strip.String())
		}
		return b.String(), nil
	case *RenameNode:
		if x.ViewName != "" {
			s := "view " + x.ViewName
			if x.Alias != "" && x.Alias != x.ViewName {
				s += " AS " + x.Alias
			}
			if !x.Strip.IsEmpty() {
				s += " | declassify=" + x.Strip.String()
			}
			return s, []Node{x.Child}
		}
		s := "derived"
		if x.Alias != "" {
			s += " AS " + x.Alias
		}
		return s, []Node{x.Child}
	case *FilterNode:
		return "filter " + formatExpr(x.Cond), []Node{x.Child}
	case *JoinNode:
		return fmt.Sprintf("join %s %s on %s", x.Strategy, x.Kind, formatExpr(x.On)),
			[]Node{x.Left, x.Right}
	case *IndexJoinNode:
		s := fmt.Sprintf("join index %s %s", x.Kind, x.Table.Name)
		if x.Alias != "" && x.Alias != x.Table.Name {
			s += " AS " + x.Alias
		}
		s += fmt.Sprintf(" | index=%s prefix=%d on %s", x.Index.Name, x.Prefix, formatExpr(x.On))
		return s, []Node{x.Left}
	case *ProjectNode:
		return "project [" + formatItems(x.Items) + "]", []Node{x.Child}
	case *AggregateNode:
		s := "aggregate [" + formatItems(x.Items) + "]"
		if len(x.GroupBy) > 0 {
			parts := make([]string, len(x.GroupBy))
			for i, e := range x.GroupBy {
				parts[i] = formatExpr(e)
			}
			s += " group by=[" + strings.Join(parts, ", ") + "]"
		}
		if x.Having != nil {
			s += " having=" + formatExpr(x.Having)
		}
		return s, []Node{x.Child}
	case *SortNode:
		parts := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			parts[i] = formatExpr(e)
			if x.Desc[i] {
				parts[i] += " DESC"
			}
		}
		return "sort [" + strings.Join(parts, ", ") + "]", []Node{x.Child}
	case *DistinctNode:
		return "distinct", []Node{x.Child}
	case *OffsetNode:
		return "offset " + formatExpr(x.Expr), []Node{x.Child}
	case *LimitNode:
		s := "limit " + formatExpr(x.Expr)
		if x.Pure {
			s += " (early-exit)"
		}
		return s, []Node{x.Child}
	}
	return fmt.Sprintf("<%T>", n), nil
}

func formatItems(items []sql.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = formatExpr(it.Expr)
		// Suppress the redundant alias a star expansion (or a plain
		// column item) carries.
		auto := ""
		if cr, ok := it.Expr.(*sql.ColumnRef); ok {
			auto = cr.Column
		}
		if it.Alias != "" && it.Alias != auto {
			parts[i] += " AS " + it.Alias
		}
	}
	return strings.Join(parts, ", ")
}

// formatExpr renders an expression deterministically for EXPLAIN
// output. Subquery bodies are elided — the plan tree shows structure,
// not nested SQL.
func formatExpr(e sql.Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *sql.Literal:
		return formatValue(x.Value)
	case *sql.Param:
		return "$" + strconv.Itoa(x.Index)
	case *sql.ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *sql.BinaryExpr:
		return "(" + formatExpr(x.Left) + " " + x.Op + " " + formatExpr(x.Right) + ")"
	case *sql.UnaryExpr:
		if x.Op == "NOT" {
			return "(NOT " + formatExpr(x.Expr) + ")"
		}
		return "(" + x.Op + formatExpr(x.Expr) + ")"
	case *sql.IsNullExpr:
		if x.Not {
			return "(" + formatExpr(x.Expr) + " IS NOT NULL)"
		}
		return "(" + formatExpr(x.Expr) + " IS NULL)"
	case *sql.BetweenExpr:
		op := " BETWEEN "
		if x.Not {
			op = " NOT BETWEEN "
		}
		return "(" + formatExpr(x.Expr) + op + formatExpr(x.Lo) + " AND " + formatExpr(x.Hi) + ")"
	case *sql.InExpr:
		op := " IN "
		if x.Not {
			op = " NOT IN "
		}
		if x.Sub != nil {
			return "(" + formatExpr(x.Expr) + op + "(subquery))"
		}
		parts := make([]string, len(x.List))
		for i, it := range x.List {
			parts[i] = formatExpr(it)
		}
		return "(" + formatExpr(x.Expr) + op + "(" + strings.Join(parts, ", ") + "))"
	case *sql.ExistsExpr:
		if x.Not {
			return "NOT EXISTS (subquery)"
		}
		return "EXISTS (subquery)"
	case *sql.SubqueryExpr:
		return "(subquery)"
	case *sql.FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = formatExpr(a)
		}
		inner := strings.Join(parts, ", ")
		if x.Distinct {
			inner = "DISTINCT " + inner
		}
		return x.Name + "(" + inner + ")"
	}
	return fmt.Sprintf("<%T>", e)
}

func formatValue(v types.Value) string {
	switch v.Kind() {
	case types.KindNull:
		return "NULL"
	case types.KindText:
		return "'" + strings.ReplaceAll(v.Text(), "'", "''") + "'"
	case types.KindBool:
		if v.Bool() {
			return "TRUE"
		}
		return "FALSE"
	case types.KindTime:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}
