package difftest

import (
	"testing"

	"ifdb/internal/types"
)

// TestStatementBattery diffs a hand-written corpus covering every
// planner shape the rule pipeline rewrites: predicate pushdown, index
// selection, projection pruning, joins (hash/index/left), views and
// declassifying views, aggregates, sorting, DISTINCT, LIMIT/OFFSET,
// subqueries, IFC pseudo-columns, and error paths. Each SELECT also
// runs through the streaming cursor in small batches.
func TestStatementBattery(t *testing.T) {
	p := newPair(t)

	p.setup("admin", `CREATE TABLE emp (
		id BIGINT PRIMARY KEY, dept BIGINT, name TEXT, salary BIGINT, boss BIGINT)`)
	p.setup("admin", `CREATE TABLE dept (id BIGINT PRIMARY KEY, dname TEXT)`)
	p.setup("admin", `CREATE INDEX emp_dept ON emp (dept)`)
	for i := int64(0); i < 40; i++ {
		p.setup("admin", `INSERT INTO emp VALUES ($1, $2, $3, $4, $5)`,
			types.NewInt(i), types.NewInt(i%5), types.NewText(name(i)),
			types.NewInt(1000+i*37%900), types.NewInt(i/7))
	}
	for i := int64(0); i < 5; i++ {
		p.setup("admin", `INSERT INTO dept VALUES ($1, $2)`,
			types.NewInt(i), types.NewText(name(100+i)))
	}

	// A labeled tenant whose rows interleave with public ones, so every
	// battery statement below exercises Label Confinement at the scan.
	p.addUser("alice", "t_alice")
	p.addUser("outsider")
	for i := int64(200); i < 210; i++ {
		p.setup("alice", `INSERT INTO emp VALUES ($1, $2, $3, $4, $5)`,
			types.NewInt(i), types.NewInt(i%5), types.NewText(name(i)),
			types.NewInt(5000), types.NewInt(0))
	}

	// Declassifying view owned by alice: strips her tag from the rows it
	// exposes, so the outsider sees her salaries through it and only it.
	p.setup("alice", `CREATE VIEW alice_pay AS
		SELECT id, salary FROM emp WHERE id >= 200 WITH DECLASSIFYING (t_alice)`)
	p.setup("admin", `CREATE VIEW wellpaid AS SELECT id, name, salary FROM emp WHERE salary > 1500`)

	battery := []struct {
		user string
		sql  string
		args []types.Value
	}{
		// Pushdown + index-selection shapes (whole-WHERE infallible).
		{"admin", `SELECT id, name FROM emp WHERE dept = 3 ORDER BY id`, nil},
		{"admin", `SELECT id FROM emp WHERE dept = 2 AND salary > 1200 ORDER BY id`, nil},
		{"admin", `SELECT id FROM emp WHERE id = 17`, nil},
		{"admin", `SELECT id FROM emp WHERE id = $1`, args(types.NewInt(23))},
		{"admin", `SELECT id FROM emp WHERE dept = $1 AND id BETWEEN $2 AND $3 ORDER BY id`,
			args(types.NewInt(1), types.NewInt(5), types.NewInt(30))},
		{"admin", `SELECT id FROM emp WHERE dept IN (1, 3) AND name IS NOT NULL ORDER BY id`, nil},
		// Fallible WHERE (arithmetic, LIKE): planner must keep the filter
		// above the scan; results still identical.
		{"admin", `SELECT id FROM emp WHERE salary / (dept + 1) > 300 ORDER BY id`, nil},
		{"admin", `SELECT id FROM emp WHERE name LIKE 'n1%' ORDER BY id`, nil},
		// Projection pruning over a wide table.
		{"admin", `SELECT name FROM emp WHERE dept = 0 ORDER BY name`, nil},
		{"admin", `SELECT e.name FROM emp e WHERE e.dept = 4 ORDER BY e.name`, nil},
		// Joins: hash/index equi-join, non-equi, LEFT, self-join, with
		// pushdown-eligible residue.
		{"admin", `SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id
			WHERE e.salary > 1700 ORDER BY e.name`, nil},
		{"admin", `SELECT e.id, b.id FROM emp e JOIN emp b ON e.boss = b.id
			WHERE e.dept = 2 ORDER BY e.id`, nil},
		{"admin", `SELECT d.dname, e.name FROM dept d LEFT JOIN emp e
			ON d.id = e.dept AND e.salary > 1800 ORDER BY d.dname, e.name`, nil},
		{"admin", `SELECT e.id, d.id FROM emp e JOIN dept d ON e.dept < d.id
			WHERE e.id < 6 ORDER BY e.id, d.id`, nil},
		// Aggregates, GROUP BY, HAVING.
		{"admin", `SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp`, nil},
		{"admin", `SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept ORDER BY dept`, nil},
		{"admin", `SELECT dept, SUM(salary) FROM emp GROUP BY dept
			HAVING COUNT(*) > 7 ORDER BY dept`, nil},
		// DISTINCT / ORDER BY DESC / LIMIT / OFFSET.
		{"admin", `SELECT DISTINCT dept FROM emp ORDER BY dept DESC`, nil},
		{"admin", `SELECT id FROM emp ORDER BY salary DESC, id LIMIT 5`, nil},
		{"admin", `SELECT id FROM emp ORDER BY id LIMIT 4 OFFSET 10`, nil},
		{"admin", `SELECT id FROM emp WHERE dept = 1 LIMIT 3 OFFSET 1`, nil},
		// Subqueries: IN, scalar, EXISTS, correlated.
		{"admin", `SELECT id FROM emp WHERE dept IN (SELECT id FROM dept WHERE dname LIKE 'n10%') ORDER BY id`, nil},
		{"admin", `SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp) ORDER BY id`, nil},
		{"admin", `SELECT dname FROM dept d WHERE EXISTS
			(SELECT 1 FROM emp e WHERE e.dept = d.id AND e.salary > 1800) ORDER BY dname`, nil},
		// Views, including nested predicates over them.
		{"admin", `SELECT id, salary FROM wellpaid WHERE id < 30 ORDER BY id`, nil},
		{"outsider", `SELECT id, salary FROM alice_pay ORDER BY id`, nil},
		{"alice", `SELECT id, salary FROM alice_pay ORDER BY id`, nil},
		// IFC pseudo-columns and label builtins; the outsider's reads are
		// confined, alice's are not.
		{"alice", `SELECT id, _label FROM emp WHERE id >= 200 ORDER BY id`, nil},
		{"outsider", `SELECT COUNT(*) FROM emp`, nil},
		{"alice", `SELECT COUNT(*) FROM emp`, nil},
		{"alice", `SELECT id FROM emp WHERE label_size(_label) = 0 AND id < 10 ORDER BY id`, nil},
		// Expression zoo in the projection.
		{"admin", `SELECT id, salary * 2 + dept, -id, NOT (dept = 1) FROM emp
			WHERE id < 4 ORDER BY id`, nil},
		{"admin", `SELECT 1, 'x', NULL, TRUE FROM dept WHERE id = 0`, nil},
		// Error paths: unknown column, unknown table, ambiguous column,
		// bad parameter index, type mismatch — exact error text must
		// match across executors.
		{"admin", `SELECT nosuch FROM emp`, nil},
		{"admin", `SELECT id FROM nosuch`, nil},
		{"admin", `SELECT id FROM emp e JOIN emp b ON e.id = b.id WHERE id = 1`, nil},
		{"admin", `SELECT id FROM emp WHERE id = $4`, args(types.NewInt(1))},
		{"admin", `SELECT id FROM emp WHERE id = 'text' + 1`, nil},
	}

	for _, tc := range battery {
		if _, err := p.exec(tc.user, tc.sql, tc.args...); err != nil {
			continue // error already diffed; no stream run for failing statements
		}
		p.execStream(tc.user, tc.sql, 3, tc.args...)
		p.execPrepared(tc.user, tc.sql, tc.args...)
	}

	// DDL invalidates cached plans: re-run a cached statement after an
	// index appears and after the table is dropped.
	p.exec("admin", `SELECT id FROM emp WHERE salary = 1370 ORDER BY id`)
	p.setup("admin", `CREATE INDEX emp_sal ON emp (salary)`)
	p.exec("admin", `SELECT id FROM emp WHERE salary = 1370 ORDER BY id`)
	p.setup("admin", `DROP TABLE dept`)
	p.exec("admin", `SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id`)

	// Transactions: the cursor's autocommit lifecycle vs an explicit
	// transaction spanning reads and writes.
	p.setup("admin", `BEGIN`)
	p.exec("admin", `SELECT COUNT(*) FROM emp`)
	p.exec("admin", `UPDATE emp SET salary = salary + 1 WHERE dept = 0`)
	p.exec("admin", `SELECT SUM(salary) FROM emp`)
	p.setup("admin", `COMMIT`)
	p.execStream("admin", `SELECT id, salary FROM emp WHERE dept = 0 ORDER BY id`, 2)
}

func name(i int64) string {
	return "n" + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func args(vs ...types.Value) []types.Value { return vs }
