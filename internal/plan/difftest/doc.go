// Package difftest is the differential harness proving the plan-based
// streaming executor equivalent to the legacy materializing executor.
//
// Every test in this package stands up two IFC-enabled engines that
// differ in exactly one bit — Config.LegacyExec — applies identical
// schema, principals, tags, and data to both, and then drives the same
// statement stream through each, asserting byte-identical results:
// column names, row values (kind-tagged renderings), per-row IFC
// labels, affected counts, and exact error text.
//
// Statement streams come from two sources: deterministic sim-generated
// workload mixes (internal/sim cohorts, including IFC-labeled tenants
// with per-tenant secrecy tags, over a seed matrix extendable via
// IFDB_DIFF_SEEDS), and a hand-written battery covering the planner's
// interesting shapes — joins, views, declassifying views, aggregates,
// sorting, DISTINCT, LIMIT/OFFSET, subqueries, predicate-pushdown and
// index-selection candidates, and error paths. SELECTs additionally
// run through the streaming cursor (Session.ExecStream) in small
// batches, so the cursor's transaction lifecycle is diffed too, not
// just the plan tree.
//
// The documented, intentional divergences between the executors (see
// the package comment in internal/plan) are exactly the shapes this
// harness avoids generating; everything else must match to the byte.
package difftest
