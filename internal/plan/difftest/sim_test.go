package difftest

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"ifdb/internal/sim"
	"ifdb/internal/types"
)

// diffSeeds returns the seed matrix: IFDB_DIFF_SEEDS (comma-separated)
// when set — CI fans the harness out across seeds this way — otherwise
// a fixed five-seed default.
func diffSeeds(t *testing.T) []int64 {
	env := os.Getenv("IFDB_DIFF_SEEDS")
	if env == "" {
		return []int64{1, 2, 3, 4, 5}
	}
	var seeds []int64
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("IFDB_DIFF_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// TestSimMixes drives sim-generated statement mixes — IFC-labeled
// tenant cohorts with distinct statement classes and prepared-statement
// appetites — through both executors and requires identical outcomes
// for every operation, over the whole seed matrix.
func TestSimMixes(t *testing.T) {
	for _, seed := range diffSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSimDiff(t, seed)
		})
	}
}

func runSimDiff(t *testing.T, seed int64) {
	const keys = 48
	w := sim.Workload{
		Seed:     seed,
		Arrival:  sim.ArrivalClosed,
		Workers:  4,
		Ops:      500,
		Table:    "kv",
		Keys:     keys,
		ScanSpan: 16,
		Cohorts: []sim.Cohort{
			{Name: "tenant0", Weight: 3, Tags: []string{"t_tenant0"},
				Mix: sim.StmtMix{PointRead: 8, PointWrite: 2}, PreparedPct: 100},
			{Name: "tenant1", Weight: 2, Tags: []string{"t_tenant1"},
				Mix: sim.StmtMix{PointRead: 5, PointWrite: 2, Insert: 2, Scan: 1}, PreparedPct: 50},
			{Name: "public", Weight: 2,
				Mix: sim.StmtMix{PointRead: 3, PointWrite: 2, Insert: 3, Scan: 2, DDL: 1}},
		},
	}
	sched, err := sim.Generate(w)
	if err != nil {
		t.Fatal(err)
	}

	p := newPair(t)
	p.setup("admin", `CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)
	for _, c := range w.Cohorts {
		p.addUser(c.Name, c.Tags...)
	}
	// Seed each cohort's point-op key domain through the cohort's own
	// session, so rows carry the tenant's label and the IFDB write rule
	// lets the tenant's updates hit them.
	for ci, c := range w.Cohorts {
		base := int64(ci) * sim.CohortKeyStride
		for k := int64(0); k < keys; k++ {
			p.setup(c.Name, `INSERT INTO kv VALUES ($1, $2)`,
				types.NewInt(base+k), types.NewInt(k))
		}
	}

	// Replay the schedule in sequence order. The harness compares every
	// op's rows, labels, affected count, and error text across the two
	// executors; Prepared ops run through pinned handles, exercising the
	// streaming side's plan cache.
	for i := range sched.Ops {
		op := &sched.Ops[i]
		args := make([]types.Value, len(op.Args))
		for j, a := range op.Args {
			args[j] = types.NewInt(a)
		}
		if op.Prepared {
			p.execPrepared(op.Cohort, op.SQL, args...)
		} else {
			p.exec(op.Cohort, op.SQL, args...)
		}
	}

	// Close the loop on end state: full-table drains through the
	// streaming cursor, per tenant and for the unlabeled public view.
	for _, c := range w.Cohorts {
		p.execStream(c.Name, `SELECT k, v, _label FROM kv ORDER BY k`, 7)
		p.execStream(c.Name, `SELECT COUNT(*), SUM(v) FROM kv`, 1)
	}
}
