package difftest

import (
	"strings"
	"testing"

	"ifdb/internal/engine"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// FuzzNoLabelBypass fuzzes WHERE clauses over a table holding a
// secret-labeled sentinel row and asserts two invariants on every
// accepted clause:
//
//  1. No bypass: an unprivileged session never receives the sentinel
//     through the plan-based executor, no matter what predicate the
//     analyzer pushed below the scan — Label Confinement runs before
//     pushed predicates, and pushing must never reorder that.
//  2. Equivalence: the streaming executor's rows, labels, and error
//     text match the legacy oracle's for the same clause.
//
// Session-label-mutating builtins (addsecrecy and friends) are
// excluded: contaminating the probe session would make seeing the
// sentinel legal, which is not a bypass.
func FuzzNoLabelBypass(f *testing.F) {
	legacy := engine.MustNew(engine.Config{IFC: true, LegacyExec: true})
	stream := engine.MustNew(engine.Config{IFC: true})
	const sentinel = "SENTINEL-SECRET"
	sides := make([]*side, 2)
	for i, e := range []*engine.Engine{legacy, stream} {
		admin := e.NewSession(e.Admin())
		for _, q := range []string{
			`CREATE TABLE s (k BIGINT PRIMARY KEY, v TEXT, n BIGINT)`,
			`CREATE INDEX s_n ON s (n)`,
		} {
			if _, err := admin.Exec(q); err != nil {
				f.Fatal(err)
			}
		}
		alice := e.CreatePrincipal("alice")
		tg, err := e.CreateTag(alice, "t_alice")
		if err != nil {
			f.Fatal(err)
		}
		sa := e.NewSession(alice)
		if err := sa.AddSecrecy(tg); err != nil {
			f.Fatal(err)
		}
		if _, err := sa.Exec(`INSERT INTO s VALUES (1, $1, 7)`, types.NewText(sentinel)); err != nil {
			f.Fatal(err)
		}
		for _, q := range []string{
			`INSERT INTO s VALUES (2, 'pub2', 7)`,
			`INSERT INTO s VALUES (3, 'pub3', 9)`,
			`INSERT INTO s VALUES (4, NULL, 7)`,
		} {
			if _, err := admin.Exec(q); err != nil {
				f.Fatal(err)
			}
		}
		e.CreatePrincipal("probe")
		name := "legacy"
		if i == 1 {
			name = "stream"
		}
		sides[i] = &side{name: name, e: e}
	}
	probeL := legacy.CreatePrincipal("probe0")
	probeS := stream.CreatePrincipal("probe0")

	for _, seed := range []string{
		`v = 'SENTINEL-SECRET'`,
		`k = 1`,
		`n = 7 AND v IS NOT NULL`,
		`k BETWEEN 0 AND 5`,
		`v LIKE 'SENT%'`,
		`1 = 1 OR v = 'SENTINEL-SECRET'`,
		`label_size(_label) >= 0`,
		`n = 7 AND k IN (SELECT k FROM s)`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, clause string) {
		low := strings.ToLower(clause)
		for _, banned := range []string{"sleep", "secrecy", "declassify", "endorse", "integrity", "nextval", "create_sequence"} {
			if strings.Contains(low, banned) {
				return
			}
		}
		query := "SELECT k, v FROM s WHERE " + clause
		stmts, err := sql.ParseAll(query)
		if err != nil || len(stmts) != 1 {
			return
		}
		if _, ok := stmts[0].(*sql.SelectStmt); !ok {
			return
		}
		// Fresh unprivileged sessions: an earlier iteration must not be
		// able to leave state that widens this one's view.
		sl := legacy.NewSession(probeL)
		ss := stream.NewSession(probeS)
		lres, lerr := sl.Exec(query)
		sres, serr := ss.Exec(query)
		if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
			t.Fatalf("executors diverged on %q:\n  legacy err: %v\n  stream err: %v", clause, lerr, serr)
		}
		if lerr != nil {
			return
		}
		if want, got := renderResult(sides[0], lres), renderResult(sides[1], sres); want != got {
			t.Fatalf("executors diverged on %q:\n-- legacy --\n%s-- stream --\n%s", clause, want, got)
		}
		for _, res := range []*engine.Result{sres, lres} {
			for _, row := range res.Rows {
				for _, v := range row {
					if v.Kind() == types.KindText && strings.Contains(v.Text(), sentinel) {
						t.Fatalf("label bypass: unprivileged session read the sentinel via %q", clause)
					}
				}
			}
		}
	})
}
