package difftest

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ifdb/internal/engine"
	"ifdb/internal/label"
	"ifdb/internal/types"
)

// side is one engine under differential test plus its named sessions
// and per-session prepared-handle caches.
type side struct {
	name     string
	e        *engine.Engine
	sessions map[string]*engine.Session
	prepared map[string]*engine.Prepared // "user\x00sql" -> handle
}

func (sd *side) session(user string) *engine.Session {
	s := sd.sessions[user]
	if s == nil {
		panic(fmt.Sprintf("difftest: unknown user %q on %s", user, sd.name))
	}
	return s
}

// pair is the harness: two engines differing only in Config.LegacyExec,
// with identical principals, tags, and sessions on each.
type pair struct {
	t      *testing.T
	legacy *side // materializing oracle (LegacyExec: true)
	stream *side // plan-based executor under test
}

func newPair(t *testing.T) *pair {
	t.Helper()
	mk := func(name string, legacyExec bool) *side {
		e := engine.MustNew(engine.Config{IFC: true, LegacyExec: legacyExec})
		return &side{
			name:     name,
			e:        e,
			sessions: map[string]*engine.Session{"admin": e.NewSession(e.Admin())},
			prepared: map[string]*engine.Prepared{},
		}
	}
	return &pair{t: t, legacy: mk("legacy", true), stream: mk("stream", false)}
}

// addUser creates the same principal on both sides, resolves (creating
// on first use) the named secrecy tags, and opens a session
// contaminated with them. Tags are created in identical order on both
// engines, so tag IDs — and therefore label renderings — align.
func (p *pair) addUser(user string, tagNames ...string) {
	p.t.Helper()
	for _, sd := range []*side{p.legacy, p.stream} {
		prin := sd.e.CreatePrincipal(user)
		s := sd.e.NewSession(prin)
		for _, tn := range tagNames {
			tg, ok := sd.e.LookupTag(tn)
			if !ok {
				var err error
				tg, err = sd.e.CreateTag(prin, tn)
				if err != nil {
					p.t.Fatalf("%s: create tag %q: %v", sd.name, tn, err)
				}
			}
			if err := s.AddSecrecy(tg); err != nil {
				p.t.Fatalf("%s: contaminate %q with %q: %v", sd.name, user, tn, err)
			}
		}
		sd.sessions[user] = s
	}
}

// setup runs a statement on both sides as the given user and requires
// success on both (schema/seed statements, not comparison subjects —
// though the results are still diffed).
func (p *pair) setup(user, sqlText string, args ...types.Value) {
	p.t.Helper()
	res, err := p.exec(user, sqlText, args...)
	if err != nil {
		p.t.Fatalf("setup %q: %v", sqlText, err)
	}
	_ = res
}

// exec runs one statement on both sides and asserts byte-identical
// outcomes. It returns the streaming side's result.
func (p *pair) exec(user, sqlText string, args ...types.Value) (*engine.Result, error) {
	p.t.Helper()
	lres, lerr := p.legacy.session(user).Exec(sqlText, args...)
	sres, serr := p.stream.session(user).Exec(sqlText, args...)
	p.diff("exec", user, sqlText, lres, lerr, sres, serr)
	return sres, serr
}

// execPrepared runs one statement through prepared handles on both
// sides (prepared once per side+user+text) and asserts identical
// outcomes. The streaming side's plan cache serves repeat executions.
func (p *pair) execPrepared(user, sqlText string, args ...types.Value) (*engine.Result, error) {
	p.t.Helper()
	run := func(sd *side) (*engine.Result, error) {
		key := user + "\x00" + sqlText
		h := sd.prepared[key]
		if h == nil {
			var err error
			h, err = sd.session(user).Prepare(sqlText)
			if err != nil {
				return nil, err
			}
			sd.prepared[key] = h
		}
		return sd.session(user).ExecPrepared(h, args...)
	}
	lres, lerr := run(p.legacy)
	sres, serr := run(p.stream)
	p.diff("prepared", user, sqlText, lres, lerr, sres, serr)
	return sres, serr
}

// execStream runs a statement eagerly on the legacy side and through
// the streaming cursor (batch rows at a time) on the streaming side,
// asserting identical outcomes. This diffs the cursor's incremental
// pull path and transaction lifecycle, not just the plan.
func (p *pair) execStream(user, sqlText string, batch int, args ...types.Value) {
	p.t.Helper()
	lres, lerr := p.legacy.session(user).Exec(sqlText, args...)
	sres, serr := pullAll(p.stream.session(user), sqlText, batch, args...)
	p.diff(fmt.Sprintf("stream[batch=%d]", batch), user, sqlText, lres, lerr, sres, serr)
}

// pullAll drives ExecStream to exhaustion, materializing the batches
// into a Result for comparison.
func pullAll(s *engine.Session, sqlText string, batch int, args ...types.Value) (*engine.Result, error) {
	c, err := s.ExecStream(sqlText, args...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	res := &engine.Result{Cols: c.Cols(), Affected: c.Affected()}
	for {
		rows, labels, err := c.NextBatch(batch)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return res, nil
		}
		res.Rows = append(res.Rows, rows...)
		res.RowLabels = append(res.RowLabels, labels...)
	}
}

// diff asserts two executions agreed: same error text, or same column
// names, kind-tagged row renderings, per-row labels, and affected
// count.
func (p *pair) diff(mode, user, sqlText string, lres *engine.Result, lerr error, sres *engine.Result, serr error) {
	p.t.Helper()
	if (lerr == nil) != (serr == nil) || (lerr != nil && lerr.Error() != serr.Error()) {
		p.t.Fatalf("%s diverged (%s as %s):\n  legacy err: %v\n  stream err: %v",
			mode, sqlText, user, lerr, serr)
	}
	if lerr != nil {
		return
	}
	want, got := renderResult(p.legacy, lres), renderResult(p.stream, sres)
	if want != got {
		p.t.Fatalf("%s diverged (%s as %s):\n-- legacy --\n%s\n-- stream --\n%s",
			mode, sqlText, user, want, got)
	}
}

// renderResult flattens a result into a canonical byte form: column
// header, then one line per row with kind-tagged values and the row's
// IFC label, then the affected count. Labels render as sorted tag
// *names* — tag IDs are randomly allocated per engine, so the raw IDs
// never align across the two sides.
func renderResult(sd *side, r *engine.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cols=[%s]\n", strings.Join(r.Cols, ","))
	for i, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				b.WriteByte('|')
			}
			if v.Kind() == types.KindLabel {
				fmt.Fprintf(&b, "%d:%s", v.Kind(), renderLabel(sd, v.Label()))
			} else {
				fmt.Fprintf(&b, "%d:%s", v.Kind(), v.String())
			}
		}
		if r.RowLabels != nil && i < len(r.RowLabels) {
			fmt.Fprintf(&b, " @%s", renderLabel(sd, r.RowLabels[i]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "affected=%d\n", r.Affected)
	return b.String()
}

// renderLabel canonicalizes a label as its sorted tag names.
func renderLabel(sd *side, l label.Label) string {
	names := make([]string, len(l))
	for i, tg := range l {
		if n, ok := sd.e.TagName(tg); ok {
			names[i] = n
		} else {
			names[i] = fmt.Sprintf("#%d", uint64(tg))
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}
