// Package plan is the pull-based query executor behind the engine:
// parse → logical plan tree → ordered rule-based analysis (column and
// table resolution, IFC-label-aware predicate pushdown below scans,
// index selection, projection pruning) → volcano-style iterators whose
// Next() produces one row at a time, so a large result streams to the
// wire instead of materializing.
//
// The package is a drop-in replacement for the engine's legacy
// tree-walking executor, which remains available behind
// engine.Config.LegacyExec as the oracle of the differential test
// harness (plan/difftest). Equivalence with the legacy executor is the
// design constraint everything here bends around:
//
//   - Error strings are byte-identical, including the "engine:" prefix
//     on messages the legacy executor owned. That is deliberate: the
//     differential harness compares error text.
//   - Predicate pushdown only happens when the whole WHERE tree is
//     infallible (no expression shape that exec.Eval can fail on), so
//     splitting the conjunction between the scan and the residual
//     filter can never reorder or suppress an error the legacy
//     all-rows-then-filter pipeline would have reported.
//   - Pushed predicates are evaluated only after MVCC visibility and
//     the Label Confinement Rule have admitted the tuple — a pushed
//     predicate can never observe (or leak through a side channel of)
//     a row the process label does not cover. This keeps the paper's
//     §7.1 property: information flow is enforced below the executor,
//     so planner bugs cannot bypass it.
//
// Known, documented divergences from the legacy executor (all outside
// what the differential harness generates): LIMIT/OFFSET expressions
// are evaluated against an empty row at iterator open rather than
// whatever row the legacy executor's shared env last held; when a
// statement contains several independent runtime faults, pipelining
// may surface a different one than the legacy stage order did; and
// LIMIT stops pulling early when the subtree is provably free of
// state-changing functions, so evaluation counts (not results) can
// differ under LIMIT.
package plan

import (
	"ifdb/internal/exec"
	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// Row is one tuple flowing through a plan: values, the tuple's
// (strip-adjusted) secrecy label, its integrity label, and — between
// the projection and sort operators — the ORDER BY keys.
type Row struct {
	Vals []types.Value
	Lbl  label.Label
	ILbl label.Label
	Sort []types.Value
}

// Iter is a volcano-style iterator: Next returns the next row, or
// (nil, nil) when the input is exhausted. Close releases resources and
// flushes scan accounting; it is idempotent.
type Iter interface {
	Next() (*Row, error)
	Close()
}

// Runtime supplies the session-dependent hooks a plan needs to
// execute. The plan tree itself is immutable and session-free (that is
// what makes it cacheable); everything that depends on the current
// transaction, process label, or parameters arrives here.
type Runtime struct {
	// Params are the statement's positional parameters.
	Params []types.Value
	// Funcs resolves scalar function calls (session functions and
	// stored procedures).
	Funcs exec.FuncResolver
	// SubqFor returns a subquery runner bound to the given declassify
	// strip — subqueries inside a declassifying view body must run with
	// the view's strip, not the statement's.
	SubqFor func(strip label.Label) exec.SubqueryRunner
	// Visible is the MVCC snapshot predicate of the statement's
	// transaction.
	Visible func(xmin, xmax storage.XID) bool
	// TupleVisible applies the Label Confinement and integrity rules.
	TupleVisible func(tv *storage.TupleVersion, strip label.Label) bool
	// EffLabel strips declassified tags from a tuple label.
	EffLabel func(l, strip label.Label) label.Label
	// Check polls for statement cancellation; scans call it per tuple.
	Check func() error
	// OnScanned receives each scan's visited-tuple count once, when the
	// scan finishes or is closed.
	OnScanned func(int64)
}

func (rt *Runtime) check() error {
	if rt.Check == nil {
		return nil
	}
	return rt.Check()
}

func (rt *Runtime) onScanned(n int64) {
	if rt.OnScanned != nil {
		rt.OnScanned(n)
	}
}

// env builds an expression environment over schema with the subquery
// runner bound to strip.
func (rt *Runtime) env(schema exec.Schema, strip label.Label) *exec.Env {
	e := &exec.Env{Schema: schema, Params: rt.Params, Funcs: rt.Funcs}
	if rt.SubqFor != nil {
		e.Subq = rt.SubqFor(strip)
	}
	return e
}

// Node is one operator of the plan tree.
type Node interface {
	// Schema is the operator's output schema.
	Schema() exec.Schema
	// open instantiates the operator's iterator.
	open(rt *Runtime) (Iter, error)
}

// Plan is an analyzed, executable query plan.
type Plan struct {
	Root Node

	// blocking reports whether any operator materializes its input
	// (sort, aggregate, join, distinct): when false, the plan streams
	// with O(batch) memory regardless of result size.
	blocking bool
}

// Schema returns the plan's output schema.
func (p *Plan) Schema() exec.Schema { return p.Root.Schema() }

// Open instantiates the plan's iterator tree against rt.
func (p *Plan) Open(rt *Runtime) (Iter, error) { return p.Root.open(rt) }

// Streaming reports whether the plan is fully pipelined: no operator
// holds more than one scan batch of rows at a time, so the result
// streams with bounded memory.
func (p *Plan) Streaming() bool { return !p.blocking }
