package catalog

import (
	"testing"

	"ifdb/internal/index"
	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func mkTable(name string, cols ...string) *Table {
	t := &Table{Name: name, Heap: storage.NewMemHeap()}
	for _, c := range cols {
		t.Columns = append(t.Columns, Column{Name: c, Kind: types.KindInt})
	}
	return t
}

func TestTableColumnLookup(t *testing.T) {
	tb := mkTable("t", "a", "b", "c")
	if i, ok := tb.ColIndex("b"); !ok || i != 1 {
		t.Fatalf("ColIndex: %d %v", i, ok)
	}
	if _, ok := tb.ColIndex("zzz"); ok {
		t.Fatal("bogus column resolved")
	}
	names := tb.ColNames()
	if len(names) != 3 || names[2] != "c" {
		t.Fatalf("ColNames: %v", names)
	}
}

func TestUniqueAndBestIndex(t *testing.T) {
	tb := mkTable("t", "a", "b", "c")
	pk := &Index{Name: "pk", Cols: []int{0, 1}, Unique: true, Tree: index.New()}
	sec := &Index{Name: "sec", Cols: []int{2}, Unique: false, Tree: index.New()}
	tb.Indexes = append(tb.Indexes, pk, sec)
	tb.Primary = pk

	uniq := tb.UniqueIndexes()
	if len(uniq) != 1 || uniq[0] != pk {
		t.Fatalf("UniqueIndexes: %v", uniq)
	}
	// Longest usable prefix wins.
	ix, n := tb.BestIndexForCols(map[int]bool{0: true, 1: true})
	if ix != pk || n != 2 {
		t.Fatalf("best: %v %d", ix, n)
	}
	// A prefix of the pk still usable.
	ix, n = tb.BestIndexForCols(map[int]bool{0: true})
	if ix != pk || n != 1 {
		t.Fatalf("prefix: %v %d", ix, n)
	}
	// Equality on a non-leading column cannot use pk but can use sec.
	ix, n = tb.BestIndexForCols(map[int]bool{2: true})
	if ix != sec || n != 1 {
		t.Fatalf("secondary: %v %d", ix, n)
	}
	// Nothing usable.
	if ix, n = tb.BestIndexForCols(map[int]bool{1: true}); ix != nil || n != 0 {
		t.Fatalf("unusable: %v %d", ix, n)
	}
}

func TestCatalogNamespaces(t *testing.T) {
	c := New()
	if err := c.AddTable(mkTable("users", "id")); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive lookups.
	if _, ok := c.Table("USERS"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if err := c.AddTable(mkTable("Users", "id")); err == nil {
		t.Fatal("case-variant duplicate accepted")
	}
	if err := c.AddView(&View{Name: "users"}); err == nil {
		t.Fatal("view shadowing table accepted")
	}
	if err := c.AddView(&View{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(&View{Name: "v"}); err == nil {
		t.Fatal("duplicate view accepted")
	}
	if err := c.AddTable(mkTable("v", "id")); err == nil {
		t.Fatal("table shadowing view accepted")
	}
	if len(c.Tables()) != 1 || len(c.Views()) != 1 {
		t.Fatalf("inventory: %d tables %d views", len(c.Tables()), len(c.Views()))
	}
}

func TestDropTableRules(t *testing.T) {
	c := New()
	parent := mkTable("parent", "id")
	child := mkTable("child", "id", "pid")
	child.ForeignKeys = append(child.ForeignKeys, ForeignKey{
		Name: "fk", Cols: []int{1}, RefTable: "parent", RefCols: []int{0}, OnDelete: "RESTRICT",
	})
	if err := c.AddTable(parent); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(child); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("parent"); err == nil {
		t.Fatal("dropped referenced table")
	}
	refs := c.ReferencingFKs("parent")
	if len(refs) != 1 || refs[0].Table != child {
		t.Fatalf("ReferencingFKs: %v", refs)
	}
	if err := c.DropTable("child"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("parent"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("parent"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestViewDeclassifyingFlag(t *testing.T) {
	v := &View{Name: "v"}
	if v.IsDeclassifying() {
		t.Fatal("plain view declassifying")
	}
	v.Declassify = label.New(3)
	if !v.IsDeclassifying() {
		t.Fatal("declassifying view not flagged")
	}
}
