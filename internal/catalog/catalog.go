// Package catalog holds the schema objects of an IFDB database:
// tables (with their heaps, indexes, and constraints), views —
// including the declassifying views of paper §4.3 — and triggers.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"ifdb/internal/authority"
	"ifdb/internal/index"
	"ifdb/internal/label"
	"ifdb/internal/sql"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// Column describes one table column.
type Column struct {
	Name    string
	Kind    types.Kind
	NotNull bool
	Default sql.Expr // nil if none
}

// Index is a secondary index over a table.
type Index struct {
	Name   string
	Cols   []int // column ordinals
	Unique bool  // unique over *visible* tuples (polyinstantiation aside)
	Tree   *index.Btree
}

// ForeignKey is a referential constraint, enforced under the Foreign
// Key Rule of paper §5.2.2.
type ForeignKey struct {
	Name     string
	Cols     []int
	RefTable string
	RefCols  []int
	OnDelete string // "RESTRICT" or "CASCADE"
}

// LabelConstraint restricts tuple labels (paper §5.2.4). The
// expressions evaluate over the inserted row to tag ids; Exact
// requires the tuple label to equal the resulting set, otherwise it
// must merely contain it.
type LabelConstraint struct {
	Name  string
	Exact bool
	Exprs []sql.Expr
}

// CheckConstraint is a generic row predicate.
type CheckConstraint struct {
	Name string
	Expr sql.Expr
}

// Trigger attaches a stored procedure to a table event. If the named
// procedure was registered as a stored authority closure, it runs with
// its bound authority; otherwise with the caller's (paper §5.2.3).
type Trigger struct {
	Name     string
	Timing   string // "BEFORE" or "AFTER"
	Event    string // "INSERT", "UPDATE", "DELETE"
	Proc     string
	Deferred bool // run at commit, with the originating query's label
}

// Table is one base relation.
type Table struct {
	Name    string
	Columns []Column
	Heap    storage.Heap
	OnDisk  bool

	Primary          *Index // may be nil
	Indexes          []*Index
	ForeignKeys      []ForeignKey
	LabelConstraints []LabelConstraint
	Checks           []CheckConstraint
	Triggers         []*Trigger
}

// ColIndex resolves a column name to its ordinal.
func (t *Table) ColIndex(name string) (int, bool) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ColNames returns the column names in order.
func (t *Table) ColNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// UniqueIndexes returns the indexes enforcing uniqueness constraints
// (including the primary key).
func (t *Table) UniqueIndexes() []*Index {
	var out []*Index
	for _, ix := range t.Indexes {
		if ix.Unique {
			out = append(out, ix)
		}
	}
	return out
}

// BestIndexForCols returns the index whose column list has the longest
// prefix contained in eqCols (a set of column ordinals with equality
// predicates), along with the usable prefix length.
func (t *Table) BestIndexForCols(eqCols map[int]bool) (*Index, int) {
	var best *Index
	bestLen := 0
	for _, ix := range t.Indexes {
		n := 0
		for _, c := range ix.Cols {
			if eqCols[c] {
				n++
			} else {
				break
			}
		}
		if n > bestLen {
			best, bestLen = ix, n
		}
	}
	return best, bestLen
}

// View is a stored query. A declassifying view carries the tags it
// strips and the principal whose authority backs them; the engine
// verifies at creation time that the owner holds that authority
// (paper §4.3).
type View struct {
	Name       string
	Columns    []string // optional output name overrides
	Select     *sql.SelectStmt
	Declassify label.Label
	Owner      authority.Principal
}

// IsDeclassifying reports whether the view strips any tags.
func (v *View) IsDeclassifying() bool { return len(v.Declassify) > 0 }

// Catalog is the collection of schema objects. Safe for concurrent
// use; DDL takes the write lock.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

func norm(name string) string { return strings.ToLower(name) }

// AddTable registers a table.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("catalog: %q already names a view", t.Name)
	}
	c.tables[key] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[norm(name)]
	return t, ok
}

// DropTable removes a table, refusing while other tables reference it.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	for _, other := range c.tables {
		if norm(other.Name) == key {
			continue
		}
		for _, fk := range other.ForeignKeys {
			if norm(fk.RefTable) == key {
				return fmt.Errorf("catalog: table %q is referenced by %q.%s", name, other.Name, fk.Name)
			}
		}
	}
	delete(c.tables, key)
	return nil
}

// AddView registers a view.
func (c *Catalog) AddView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := norm(v.Name)
	if _, dup := c.views[key]; dup {
		return fmt.Errorf("catalog: view %q already exists", v.Name)
	}
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("catalog: %q already names a table", v.Name)
	}
	c.views[key] = v
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[norm(name)]
	return v, ok
}

// Tables returns all tables (order unspecified).
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// Views returns all views (order unspecified).
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*View, 0, len(c.views))
	for _, v := range c.views {
		out = append(out, v)
	}
	return out
}

// ReferencingFKs returns, for every table, the foreign keys that
// reference the given table (used by delete-side FK enforcement).
func (c *Catalog) ReferencingFKs(refTable string) []struct {
	Table *Table
	FK    ForeignKey
} {
	c.mu.RLock()
	defer c.mu.RUnlock()
	key := norm(refTable)
	var out []struct {
		Table *Table
		FK    ForeignKey
	}
	for _, t := range c.tables {
		for _, fk := range t.ForeignKeys {
			if norm(fk.RefTable) == key {
				out = append(out, struct {
					Table *Table
					FK    ForeignKey
				}{t, fk})
			}
		}
	}
	return out
}
