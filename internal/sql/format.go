package sql

import (
	"fmt"
	"strconv"
	"strings"

	"ifdb/internal/types"
)

// This file renders a parsed statement back into SQL text that the
// parser accepts and that executes identically. It exists for the
// distributed planner, which rewrites a SELECT into a per-shard
// fragment and must put the fragment back on the wire as text.
//
// The rules that make the round trip exact:
//
//   - every identifier is emitted double-quoted. The parser preserves
//     quoted identifiers verbatim and lower-cases unquoted ones, and
//     identifiers in a parsed tree are already in their resolved form,
//     so quoting reproduces them exactly;
//   - every operator application is fully parenthesized, so no
//     precedence is re-negotiated on re-parse;
//   - float literals always carry a '.' or exponent, because the lexer
//     classifies a number as a float only when one is present.
//
// Constructs with no textual form (subqueries are rejected by the
// distributed planner before rendering, time/label literals never
// come out of the parser) return an error rather than guessing.

// FormatExpr renders an expression as re-parseable SQL text.
func FormatExpr(e Expr) (string, error) {
	var b strings.Builder
	if err := formatExprTo(&b, e); err != nil {
		return "", err
	}
	return b.String(), nil
}

// MustFormatExpr is FormatExpr for callers that already vetted the
// tree; it panics on the constructs FormatExpr rejects.
func MustFormatExpr(e Expr) string {
	s, err := FormatExpr(e)
	if err != nil {
		panic(err)
	}
	return s
}

func formatExprTo(b *strings.Builder, e Expr) error {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			if err := writeIdent(b, x.Table); err != nil {
				return err
			}
			b.WriteByte('.')
		}
		return writeIdent(b, x.Column)
	case *Literal:
		return formatLiteral(b, x.Value)
	case *Param:
		fmt.Fprintf(b, "$%d", x.Index)
		return nil
	case *BinaryExpr:
		b.WriteByte('(')
		if err := formatExprTo(b, x.Left); err != nil {
			return err
		}
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		if err := formatExprTo(b, x.Right); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	case *UnaryExpr:
		b.WriteByte('(')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		if err := formatExprTo(b, x.Expr); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	case *IsNullExpr:
		b.WriteByte('(')
		if err := formatExprTo(b, x.Expr); err != nil {
			return err
		}
		if x.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
		return nil
	case *InExpr:
		if x.Sub != nil {
			return fmt.Errorf("sql: cannot format IN subquery")
		}
		b.WriteByte('(')
		if err := formatExprTo(b, x.Expr); err != nil {
			return err
		}
		if x.Not {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i, it := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			if err := formatExprTo(b, it); err != nil {
				return err
			}
		}
		b.WriteString("))")
		return nil
	case *BetweenExpr:
		b.WriteByte('(')
		if err := formatExprTo(b, x.Expr); err != nil {
			return err
		}
		if x.Not {
			b.WriteString(" NOT BETWEEN ")
		} else {
			b.WriteString(" BETWEEN ")
		}
		if err := formatExprTo(b, x.Lo); err != nil {
			return err
		}
		b.WriteString(" AND ")
		if err := formatExprTo(b, x.Hi); err != nil {
			return err
		}
		b.WriteByte(')')
		return nil
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				if err := formatExprTo(b, a); err != nil {
					return err
				}
			}
		}
		b.WriteByte(')')
		return nil
	case *ExistsExpr, *SubqueryExpr:
		return fmt.Errorf("sql: cannot format subquery expression")
	case nil:
		return fmt.Errorf("sql: cannot format nil expression")
	default:
		return fmt.Errorf("sql: cannot format %T", e)
	}
}

func formatLiteral(b *strings.Builder, v types.Value) error {
	switch v.Kind() {
	case types.KindNull:
		b.WriteString("NULL")
	case types.KindInt:
		fmt.Fprintf(b, "%d", v.Int())
	case types.KindFloat:
		f := v.Float()
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // the lexer needs the marker to lex a float
		}
		if strings.ContainsAny(s, "IN") { // Inf / NaN have no literal form
			return fmt.Errorf("sql: cannot format float literal %s", s)
		}
		b.WriteString(s)
	case types.KindBool:
		if v.Bool() {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case types.KindText:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(v.Text(), "'", "''"))
		b.WriteByte('\'')
	default:
		return fmt.Errorf("sql: cannot format %v literal", v.Kind())
	}
	return nil
}

// writeIdent emits a double-quoted identifier. The parser has no
// escape for an embedded double quote, so such names are unformattable.
func writeIdent(b *strings.Builder, name string) error {
	if strings.Contains(name, `"`) {
		return fmt.Errorf("sql: cannot format identifier %q", name)
	}
	b.WriteByte('"')
	b.WriteString(name)
	b.WriteByte('"')
	return nil
}

// FormatSelect renders a single-table SELECT (no joins, no derived
// tables, no FOR UPDATE) back to SQL text. This is exactly the shape
// the distributed planner ships to shards.
func FormatSelect(sel *SelectStmt) (string, error) {
	if len(sel.Joins) > 0 {
		return "", fmt.Errorf("sql: cannot format SELECT with joins")
	}
	if sel.ForUpdate {
		return "", fmt.Errorf("sql: cannot format SELECT FOR UPDATE")
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if sel.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range sel.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			if it.Table != "" {
				if err := writeIdent(&b, it.Table); err != nil {
					return "", err
				}
				b.WriteByte('.')
			}
			b.WriteByte('*')
			continue
		}
		if err := formatExprTo(&b, it.Expr); err != nil {
			return "", err
		}
		if it.Alias != "" {
			b.WriteString(" AS ")
			if err := writeIdent(&b, it.Alias); err != nil {
				return "", err
			}
		}
	}
	if sel.From != nil {
		if sel.From.Sub != nil {
			return "", fmt.Errorf("sql: cannot format derived table")
		}
		b.WriteString(" FROM ")
		if err := writeIdent(&b, sel.From.Name); err != nil {
			return "", err
		}
		if sel.From.Alias != "" {
			b.WriteString(" AS ")
			if err := writeIdent(&b, sel.From.Alias); err != nil {
				return "", err
			}
		}
	}
	if sel.Where != nil {
		b.WriteString(" WHERE ")
		if err := formatExprTo(&b, sel.Where); err != nil {
			return "", err
		}
	}
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range sel.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			if err := formatExprTo(&b, e); err != nil {
				return "", err
			}
		}
	}
	if sel.Having != nil {
		b.WriteString(" HAVING ")
		if err := formatExprTo(&b, sel.Having); err != nil {
			return "", err
		}
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, ob := range sel.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			if err := formatExprTo(&b, ob.Expr); err != nil {
				return "", err
			}
			if ob.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if sel.Limit != nil {
		b.WriteString(" LIMIT ")
		if err := formatExprTo(&b, sel.Limit); err != nil {
			return "", err
		}
	}
	if sel.Offset != nil {
		b.WriteString(" OFFSET ")
		if err := formatExprTo(&b, sel.Offset); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}
