package sql

// WalkExprs calls fn on every expression node reachable from st, in
// pre-order, descending into subqueries (IN/EXISTS/scalar) and
// FROM-clause subselects. Clients use it for statement analysis —
// parameter counting, shard-key derivation, side-effect detection —
// without each duplicating the traversal.
func WalkExprs(st Statement, fn func(Expr)) {
	switch x := st.(type) {
	case *SelectStmt:
		walkSelect(x, fn)
	case *InsertStmt:
		for _, row := range x.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
		if x.Select != nil {
			walkSelect(x.Select, fn)
		}
	case *UpdateStmt:
		for _, sc := range x.Set {
			walkExpr(sc.Value, fn)
		}
		walkExpr(x.Where, fn)
	case *DeleteStmt:
		walkExpr(x.Where, fn)
	case *CreateTableStmt:
		for _, c := range x.Columns {
			walkExpr(c.Default, fn)
		}
		for _, con := range x.Constraints {
			for _, e := range con.LabelExprs {
				walkExpr(e, fn)
			}
			walkExpr(con.Check, fn)
		}
	case *CreateViewStmt:
		if x.Select != nil {
			walkSelect(x.Select, fn)
		}
	case *ExplainStmt:
		WalkExprs(x.Stmt, fn)
	}
}

func walkSelect(sel *SelectStmt, fn func(Expr)) {
	if sel == nil {
		return
	}
	for _, it := range sel.Items {
		walkExpr(it.Expr, fn)
	}
	if sel.From != nil && sel.From.Sub != nil {
		walkSelect(sel.From.Sub, fn)
	}
	for _, j := range sel.Joins {
		if j.Table.Sub != nil {
			walkSelect(j.Table.Sub, fn)
		}
		walkExpr(j.On, fn)
	}
	walkExpr(sel.Where, fn)
	for _, e := range sel.GroupBy {
		walkExpr(e, fn)
	}
	walkExpr(sel.Having, fn)
	for _, ob := range sel.OrderBy {
		walkExpr(ob.Expr, fn)
	}
	walkExpr(sel.Limit, fn)
	walkExpr(sel.Offset, fn)
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *UnaryExpr:
		walkExpr(x.Expr, fn)
	case *IsNullExpr:
		walkExpr(x.Expr, fn)
	case *InExpr:
		walkExpr(x.Expr, fn)
		for _, le := range x.List {
			walkExpr(le, fn)
		}
		walkSelect(x.Sub, fn)
	case *BetweenExpr:
		walkExpr(x.Expr, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *ExistsExpr:
		walkSelect(x.Sub, fn)
	case *SubqueryExpr:
		walkSelect(x.Sub, fn)
	}
}

// MaxParam returns the largest positional-parameter index ($n)
// referenced anywhere in stmts — the number of parameters an
// execution must bind.
func MaxParam(stmts []Statement) int {
	max := 0
	for _, st := range stmts {
		WalkExprs(st, func(e Expr) {
			if p, ok := e.(*Param); ok && p.Index > max {
				max = p.Index
			}
		})
	}
	return max
}
