package sql

import (
	"fmt"
	"strconv"
	"strings"

	"ifdb/internal/types"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is
// permitted).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		start := p.peek().Pos
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		setStmtText(s, strings.TrimSpace(src[start:p.peek().Pos]))
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
}

// setStmtText records the source text of DDL statements. The engine's
// write-ahead log replays DDL logically, by re-parsing this text, so
// only statement kinds the log records carry it.
func setStmtText(s Statement, text string) {
	switch x := s.(type) {
	case *CreateTableStmt:
		x.Text = text
	case *DropTableStmt:
		x.Text = text
	case *CreateIndexStmt:
		x.Text = text
	case *CreateViewStmt:
		x.Text = text
	case *CreateTriggerStmt:
		x.Text = text
	}
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...interface{}) error {
	t := p.peek()
	loc := t.Text
	if t.Kind == TokEOF {
		loc = "<eof>"
	}
	return fmt.Errorf("sql: %s (near %q, offset %d)", fmt.Sprintf(format, args...), loc, t.Pos)
}

func (p *Parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// ident accepts an identifier or any keyword used as a name (SQL
// keywords like KEY or LABEL commonly appear as column names).
func (p *Parser) ident() (string, error) {
	t := p.peek()
	switch t.Kind {
	case TokIdent:
		p.pos++
		return t.Text, nil
	case TokKeyword:
		// Permit non-reserved keywords as identifiers.
		switch t.Text {
		case "SELECT", "FROM", "WHERE", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "VALUES", "AND", "OR", "NOT", "NULL", "JOIN", "ON", "ORDER", "GROUP", "HAVING", "LIMIT":
			return "", p.errf("reserved keyword %s cannot be used as identifier", t.Text)
		}
		p.pos++
		return strings.ToLower(t.Text), nil
	default:
		return "", p.errf("expected identifier")
	}
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword")
	}
	switch t.Text {
	case "EXPLAIN":
		p.pos++
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner}, nil
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		ser := false
		if p.acceptKw("ISOLATION") {
			if err := p.expectKw("LEVEL"); err != nil {
				return nil, err
			}
			if p.acceptKw("SERIALIZABLE") {
				ser = true
			} else if p.acceptKw("SNAPSHOT") {
				ser = false
			} else {
				return nil, p.errf("expected isolation level")
			}
		} else if p.acceptKw("SERIALIZABLE") {
			ser = true
		}
		return &BeginStmt{Serializable: ser}, nil
	case "COMMIT":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &CommitStmt{}, nil
	case "ROLLBACK", "ABORT":
		p.pos++
		p.acceptKw("TRANSACTION")
		p.acceptKw("WORK")
		return &RollbackStmt{}, nil
	default:
		return nil, p.errf("unsupported statement %s", t.Text)
	}
}

// ---------------------------------------------------------------------------
// SELECT

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = &tr
		for {
			var kind string
			switch {
			case p.acceptKw("JOIN"):
				kind = "INNER"
			case p.acceptKw("INNER"):
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
				kind = "INNER"
			case p.acceptKw("LEFT"):
				p.acceptKw("OUTER")
				if err := p.expectKw("JOIN"); err != nil {
					return nil, err
				}
				kind = "LEFT"
			default:
				kind = ""
			}
			if kind == "" {
				break
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Joins = append(s.Joins, JoinClause{Kind: kind, Table: tr, On: on})
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	if p.acceptKw("FOR") {
		if err := p.expectKw("UPDATE"); err != nil {
			return nil, err
		}
		s.ForUpdate = true
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next()
		p.next()
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		name, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	if p.acceptOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectOp(")"); err != nil {
			return TableRef{}, err
		}
		tr := TableRef{Sub: sub}
		p.acceptKw("AS")
		name, err := p.ident()
		if err != nil {
			return TableRef{}, fmt.Errorf("sql: subquery in FROM requires an alias: %w", err)
		}
		tr.Alias = name
		return tr, nil
	}
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// ---------------------------------------------------------------------------
// DML

func (p *Parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("VALUES"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
	case p.peek().Kind == TokKeyword && p.peek().Text == "SELECT":
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sub
	default:
		return nil, p.errf("expected VALUES or SELECT")
	}
	if p.acceptKw("DECLASSIFYING") {
		tags, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		ins.Declassifying = tags
	}
	return ins, nil
}

func (p *Parser) parseNameList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return names, nil
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	if p.acceptKw("DECLASSIFYING") {
		tags, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		u.Declassifying = tags
	}
	return u, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: name}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// DDL

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		return p.parseCreateTable()
	case p.acceptKw("UNIQUE"):
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex(true)
	case p.acceptKw("INDEX"):
		return p.parseCreateIndex(false)
	case p.acceptKw("VIEW"):
		return p.parseCreateView()
	case p.acceptKw("TRIGGER"):
		return p.parseCreateTrigger()
	default:
		return nil, p.errf("unsupported CREATE target")
	}
}

func (p *Parser) parseCreateTable() (*CreateTableStmt, error) {
	ct := &CreateTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if cons, ok, err := p.tryParseTableConstraint(); err != nil {
			return nil, err
		} else if ok {
			ct.Constraints = append(ct.Constraints, cons)
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.acceptKw("USING") {
		switch {
		case p.acceptKw("DISK"):
			ct.OnDisk = true
		case p.acceptKw("MEMORY"):
			ct.OnDisk = false
		default:
			return nil, p.errf("expected DISK or MEMORY")
		}
	}
	return ct, nil
}

func (p *Parser) tryParseTableConstraint() (TableConstraint, bool, error) {
	var cons TableConstraint
	t := p.peek()
	if t.Kind != TokKeyword {
		return cons, false, nil
	}
	if t.Text == "CONSTRAINT" {
		p.pos++
		name, err := p.ident()
		if err != nil {
			return cons, false, err
		}
		cons.Name = name
		t = p.peek()
	} else if t.Text != "PRIMARY" && t.Text != "UNIQUE" && t.Text != "FOREIGN" && t.Text != "LABEL" && t.Text != "CHECK" {
		return cons, false, nil
	}
	// Disambiguate: UNIQUE or LABEL as a *column name* would be
	// followed by a type keyword rather than '(' / KEY / EXACTLY.
	switch t.Text {
	case "PRIMARY":
		p.pos++
		if err := p.expectKw("KEY"); err != nil {
			return cons, false, err
		}
		cols, err := p.parseNameList()
		if err != nil {
			return cons, false, err
		}
		cons.Kind = "PRIMARY KEY"
		cons.Columns = cols
		return cons, true, nil
	case "UNIQUE":
		if p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
			p.pos++
			cols, err := p.parseNameList()
			if err != nil {
				return cons, false, err
			}
			cons.Kind = "UNIQUE"
			cons.Columns = cols
			return cons, true, nil
		}
		return cons, false, nil
	case "FOREIGN":
		p.pos++
		if err := p.expectKw("KEY"); err != nil {
			return cons, false, err
		}
		cols, err := p.parseNameList()
		if err != nil {
			return cons, false, err
		}
		if err := p.expectKw("REFERENCES"); err != nil {
			return cons, false, err
		}
		ref, err := p.ident()
		if err != nil {
			return cons, false, err
		}
		refCols, err := p.parseNameList()
		if err != nil {
			return cons, false, err
		}
		cons.Kind = "FOREIGN KEY"
		cons.Columns = cols
		cons.RefTable = ref
		cons.RefColumns = refCols
		cons.OnDelete = "RESTRICT"
		if p.acceptKw("ON") {
			if err := p.expectKw("DELETE"); err != nil {
				return cons, false, err
			}
			switch {
			case p.acceptKw("CASCADE"):
				cons.OnDelete = "CASCADE"
			case p.acceptKw("RESTRICT"):
				cons.OnDelete = "RESTRICT"
			case p.acceptKw("NO"):
				if err := p.expectKw("ACTION"); err != nil {
					return cons, false, err
				}
				cons.OnDelete = "RESTRICT"
			default:
				return cons, false, p.errf("expected CASCADE, RESTRICT, or NO ACTION")
			}
		}
		return cons, true, nil
	case "LABEL":
		kw2 := p.toks[p.pos+1]
		if kw2.Kind == TokKeyword && (kw2.Text == "EXACTLY" || kw2.Text == "CONTAINS") {
			p.pos += 2
			if err := p.expectOp("("); err != nil {
				return cons, false, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return cons, false, err
				}
				cons.LabelExprs = append(cons.LabelExprs, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return cons, false, err
			}
			cons.Kind = "LABEL " + kw2.Text
			return cons, true, nil
		}
		return cons, false, nil
	case "CHECK":
		p.pos++
		if err := p.expectOp("("); err != nil {
			return cons, false, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return cons, false, err
		}
		if err := p.expectOp(")"); err != nil {
			return cons, false, err
		}
		cons.Kind = "CHECK"
		cons.Check = e
		return cons, true, nil
	}
	if cons.Name != "" {
		return cons, false, p.errf("expected constraint after CONSTRAINT name")
	}
	return cons, false, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = name
	kind, err := p.parseType()
	if err != nil {
		return col, err
	}
	col.Type = kind
	for {
		switch {
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKw("NULL"):
			// accepted, default
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		case p.acceptKw("UNIQUE"):
			col.Unique = true
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return col, err
			}
			col.Default = e
		case p.acceptKw("REFERENCES"):
			ref, err := p.ident()
			if err != nil {
				return col, err
			}
			col.RefTable = ref
			if p.acceptOp("(") {
				rc, err := p.ident()
				if err != nil {
					return col, err
				}
				col.RefColumn = rc
				if err := p.expectOp(")"); err != nil {
					return col, err
				}
			}
		default:
			return col, nil
		}
	}
}

func (p *Parser) parseType() (types.Kind, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return types.KindNull, p.errf("expected type name")
	}
	p.pos++
	switch t.Text {
	case "INT", "INTEGER", "BIGINT", "SERIAL":
		return types.KindInt, nil
	case "TEXT":
		return types.KindText, nil
	case "VARCHAR", "CHAR":
		// optional (n)
		if p.acceptOp("(") {
			if p.peek().Kind != TokNumber {
				return types.KindNull, p.errf("expected length")
			}
			p.pos++
			if err := p.expectOp(")"); err != nil {
				return types.KindNull, err
			}
		}
		return types.KindText, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	case "TIMESTAMP":
		return types.KindTime, nil
	case "DOUBLE":
		p.acceptKw("PRECISION")
		return types.KindFloat, nil
	case "FLOAT", "REAL":
		return types.KindFloat, nil
	case "NUMERIC", "DECIMAL":
		if p.acceptOp("(") {
			for p.peek().Kind == TokNumber || (p.peek().Kind == TokOp && p.peek().Text == ",") {
				p.pos++
			}
			if err := p.expectOp(")"); err != nil {
				return types.KindNull, err
			}
		}
		return types.KindFloat, nil
	default:
		return types.KindNull, p.errf("unsupported type %s", t.Text)
	}
}

func (p *Parser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseNameList()
	if err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: tbl, Columns: cols, Unique: unique}, nil
}

func (p *Parser) parseCreateView() (*CreateViewStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cv := &CreateViewStmt{Name: name}
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		cv.Columns = cols
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	cv.Select = sel
	if p.acceptKw("WITH") {
		if err := p.expectKw("DECLASSIFYING"); err != nil {
			return nil, err
		}
		tags, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		cv.Declassifying = tags
	}
	return cv, nil
}

func (p *Parser) parseCreateTrigger() (*CreateTriggerStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tr := &CreateTriggerStmt{Name: name}
	switch {
	case p.acceptKw("BEFORE"):
		tr.Timing = "BEFORE"
	case p.acceptKw("AFTER"):
		tr.Timing = "AFTER"
	default:
		return nil, p.errf("expected BEFORE or AFTER")
	}
	switch {
	case p.acceptKw("INSERT"):
		tr.Event = "INSERT"
	case p.acceptKw("UPDATE"):
		tr.Event = "UPDATE"
	case p.acceptKw("DELETE"):
		tr.Event = "DELETE"
	default:
		return nil, p.errf("expected INSERT, UPDATE, or DELETE")
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	tr.Table = tbl
	// Optional DEFERRED marker before EXECUTE.
	if p.peek().Kind == TokIdent && p.peek().Text == "deferred" {
		p.pos++
		tr.Deferred = true
	}
	if err := p.expectKw("EXECUTE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("PROCEDURE"); err != nil {
		return nil, err
	}
	proc, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Tolerate a trailing () after the procedure name.
	if p.acceptOp("(") {
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	tr.Proc = proc
	return tr, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokOp && (t.Text == "=" || t.Text == "<" || t.Text == ">" || t.Text == "<=" || t.Text == ">=" || t.Text == "<>" || t.Text == "!="):
			p.pos++
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		case t.Kind == TokKeyword && t.Text == "LIKE":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		case t.Kind == TokKeyword && t.Text == "IS":
			p.pos++
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Expr: left, Not: not}
		case t.Kind == TokKeyword && t.Text == "IN":
			p.pos++
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case t.Kind == TokKeyword && t.Text == "NOT":
			// NOT IN / NOT LIKE / NOT BETWEEN
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword {
				switch p.toks[p.pos+1].Text {
				case "IN":
					p.pos += 2
					in, err := p.parseInTail(left, true)
					if err != nil {
						return nil, err
					}
					left = in
					continue
				case "LIKE":
					p.pos += 2
					right, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &UnaryExpr{Op: "NOT", Expr: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}
					continue
				case "BETWEEN":
					p.pos += 2
					be, err := p.parseBetweenTail(left, true)
					if err != nil {
						return nil, err
					}
					left = be
					continue
				}
			}
			return left, nil
		case t.Kind == TokKeyword && t.Text == "BETWEEN":
			p.pos++
			be, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = be
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseInTail(left Expr, not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &InExpr{Expr: left, List: list, Not: not}, nil
}

func (p *Parser) parseBetweenTail(left Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
		} else {
			return left, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
		} else {
			return left, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case TokString:
		p.pos++
		return &Literal{Value: types.NewText(t.Text)}, nil
	case TokParam:
		p.pos++
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, p.errf("bad parameter $%s", t.Text)
		}
		return &Param{Index: n}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return &Literal{Value: types.Null}, nil
		case "TRUE":
			p.pos++
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Value: types.NewBool(false)}, nil
		case "EXISTS":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.pos++
			return p.parseFuncTail(strings.ToLower(t.Text))
		default:
			// Keyword used as identifier (e.g. a column named "label").
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return p.parseIdentTail(name)
		}
	case TokIdent:
		p.pos++
		return p.parseIdentTail(t.Text)
	case TokOp:
		if t.Text == "(" {
			p.pos++
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token in expression")
}

// parseIdentTail handles the continuation after an identifier: a
// function call, a qualified column, or a bare column.
func (p *Parser) parseIdentTail(name string) (Expr, error) {
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		return p.parseFuncTail(name)
	}
	if p.acceptOp(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

func (p *Parser) parseFuncTail(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptOp(")") {
		return fc, nil
	}
	if p.acceptKw("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}
