// Package sql implements the SQL front end: lexer, AST, and
// recursive-descent parser for the dialect IFDB supports.
//
// The dialect is the subset of PostgreSQL SQL exercised by the paper's
// case studies and benchmarks, plus the two IFDB syntactic extensions
// (§7.1): `CREATE VIEW ... WITH DECLASSIFYING (tags)` for declassifying
// views and `INSERT ... DECLASSIFYING (tags)` for the Foreign Key Rule.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation
	TokParam // $1, $2, ... placeholders
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers preserve case-folded lower
	Pos  int    // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "VIEW": true,
	"INDEX": true, "ON": true, "AS": true, "JOIN": true, "LEFT": true,
	"INNER": true, "OUTER": true, "ORDER": true, "BY": true, "GROUP": true,
	"HAVING": true, "LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true,
	"NULL": true, "TRUE": true, "FALSE": true, "PRIMARY": true, "KEY": true,
	"UNIQUE": true, "FOREIGN": true, "REFERENCES": true, "CONSTRAINT": true,
	"DEFAULT": true, "CHECK": true, "IN": true, "IS": true, "LIKE": true,
	"BETWEEN": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"ABORT": true, "DISTINCT": true, "DROP": true, "TRIGGER": true,
	"BEFORE": true, "AFTER": true, "EXECUTE": true, "PROCEDURE": true,
	"DECLASSIFYING": true, "WITH": true, "LABEL": true, "EXACTLY": true,
	"CONTAINS": true, "USING": true, "DISK": true, "MEMORY": true,
	"SERIALIZABLE": true, "ISOLATION": true, "CASCADE": true, "RESTRICT": true,
	"EXISTS": true, "IF": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "BIGINT": true, "INT": true, "INTEGER": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BOOL": true,
	"TIMESTAMP": true, "DOUBLE": true, "PRECISION": true, "FLOAT": true,
	"REAL": true, "FOR": true, "NO": true, "ACTION": true, "NUMERIC": true,
	"DECIMAL": true, "CHAR": true, "SERIAL": true, "TRANSACTION": true,
	"WORK": true, "LEVEL": true, "SNAPSHOT": true, "EXPLAIN": true,
}

// Lexer tokenizes SQL input.
type Lexer struct {
	src  string
	pos  int
	toks []Token
}

// Lex tokenizes src fully, returning the token stream (ending with an
// explicit EOF token) or a syntax error.
func Lex(src string) ([]Token, error) {
	l := &Lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *Lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos > start {
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			} else {
				break
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'') // escaped quote
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
	case c == '"':
		// Quoted identifier.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
		}
		word := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == '$':
		l.pos++
		ds := l.pos
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		if l.pos == ds {
			return Token{}, fmt.Errorf("sql: bad parameter placeholder at offset %d", start)
		}
		return Token{Kind: TokParam, Text: l.src[ds:l.pos], Pos: start}, nil
	default:
		for _, op := range [...]string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		if strings.ContainsRune("+-*/%(),=<>;.[]", rune(c)) {
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl + 1
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += end + 4
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
