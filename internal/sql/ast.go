package sql

import (
	"ifdb/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Expressions

// ColumnRef names a column, optionally qualified by table or alias.
// The special column "_label" exposes each tuple's label (paper §4.2).
type ColumnRef struct {
	Table  string // "" if unqualified
	Column string
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// Param is a positional placeholder ($1, $2, ...). Index is 1-based.
type Param struct {
	Index int
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "AND", "OR", "LIKE", "||"
	Left, Right Expr
}

// UnaryExpr applies a unary operator: "-", "NOT".
type UnaryExpr struct {
	Op   string
	Expr Expr
}

// IsNullExpr tests IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

// InExpr tests membership in a literal list or a subquery.
type InExpr struct {
	Expr Expr
	List []Expr      // non-nil for IN (a, b, c)
	Sub  *SelectStmt // non-nil for IN (SELECT ...)
	Not  bool
}

// BetweenExpr tests range membership.
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
	Not    bool
}

// FuncCall invokes a function: aggregates (COUNT, SUM, AVG, MIN, MAX)
// or scalar builtins (including the IFDB functions like tag_of,
// label_contains).
type FuncCall struct {
	Name     string // lower-case
	Star     bool   // COUNT(*)
	Distinct bool
	Args     []Expr
}

// ExistsExpr tests EXISTS (SELECT ...).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (*ColumnRef) expr()    {}
func (*Literal) expr()      {}
func (*Param) expr()        {}
func (*BinaryExpr) expr()   {}
func (*UnaryExpr) expr()    {}
func (*IsNullExpr) expr()   {}
func (*InExpr) expr()       {}
func (*BetweenExpr) expr()  {}
func (*FuncCall) expr()     {}
func (*ExistsExpr) expr()   {}
func (*SubqueryExpr) expr() {}

// ---------------------------------------------------------------------------
// SELECT

// SelectItem is one output expression with an optional alias; a bare
// `*` or `t.*` is represented with Star set.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // for t.*
}

// TableRef is a FROM-clause item: a base table or view with an
// optional alias, or a parenthesized subquery.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt // non-nil for (SELECT ...) alias
}

// JoinClause attaches one joined table.
type JoinClause struct {
	Kind  string // "INNER" or "LEFT"
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct  bool
	Items     []SelectItem
	From      *TableRef // nil for FROM-less SELECT (e.g. SELECT fn())
	Joins     []JoinClause
	Where     Expr
	GroupBy   []Expr
	Having    Expr
	OrderBy   []OrderItem
	Limit     Expr // nil if absent
	Offset    Expr
	ForUpdate bool
}

func (*SelectStmt) stmt() {}

// ExplainStmt renders the analyzed plan of the wrapped statement
// instead of executing it. Only SELECT is explainable today; the
// parser accepts any statement and the engine rejects the rest.
type ExplainStmt struct {
	Stmt Statement
}

func (*ExplainStmt) stmt() {}

// ---------------------------------------------------------------------------
// DML

// InsertStmt is INSERT INTO ... VALUES / SELECT, with the IFDB
// DECLASSIFYING extension for the Foreign Key Rule (§5.2.2).
type InsertStmt struct {
	Table         string
	Columns       []string // nil = table order
	Rows          [][]Expr // literal rows, nil if Select is set
	Select        *SelectStmt
	Declassifying []string // tag names whose channel the inserter vouches for
}

// UpdateStmt is UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table         string
	Set           []SetClause
	Where         Expr
	Declassifying []string
}

// SetClause assigns one column.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*InsertStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// ---------------------------------------------------------------------------
// DDL

// ColumnDef defines one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       types.Kind
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    Expr
	RefTable   string // inline REFERENCES
	RefColumn  string
}

// TableConstraint is a table-level constraint in CREATE TABLE.
type TableConstraint struct {
	Name string
	Kind string // "PRIMARY KEY", "UNIQUE", "FOREIGN KEY", "LABEL EXACTLY", "LABEL CONTAINS", "CHECK"

	Columns []string // for PK/UNIQUE/FK
	// FK target:
	RefTable   string
	RefColumns []string
	OnDelete   string // "RESTRICT" (default), "CASCADE"

	// LABEL EXACTLY/CONTAINS: expressions evaluating to tag ids over
	// the inserted row (paper §5.2.4).
	LabelExprs []Expr

	// CHECK:
	Check Expr
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Text        string // original source, for WAL replay
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	Constraints []TableConstraint
	OnDisk      bool // USING DISK selects the paged heap backend
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Text     string // original source, for WAL replay
	Name     string
	IfExists bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Text    string // original source, for WAL replay
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

// CreateViewStmt is CREATE VIEW, optionally a declassifying view
// (paper §4.3).
type CreateViewStmt struct {
	Text          string // original source, for WAL replay
	Name          string
	Columns       []string // optional column name overrides
	Select        *SelectStmt
	Declassifying []string // tag names the view declassifies
}

// CreateTriggerStmt is CREATE TRIGGER ... EXECUTE PROCEDURE proc. The
// procedure must be registered with the engine; if it was registered
// as a stored authority closure it runs with its bound authority
// (paper §5.2.3).
type CreateTriggerStmt struct {
	Text   string // original source, for WAL replay
	Name   string
	Timing string // "BEFORE", "AFTER"
	Event  string // "INSERT", "UPDATE", "DELETE"
	Table  string
	Proc   string
	// Deferred triggers run at commit with the label of the
	// originating query (paper §5.2.3).
	Deferred bool
}

func (*CreateTableStmt) stmt()   {}
func (*DropTableStmt) stmt()     {}
func (*CreateIndexStmt) stmt()   {}
func (*CreateViewStmt) stmt()    {}
func (*CreateTriggerStmt) stmt() {}

// ---------------------------------------------------------------------------
// Transactions

// BeginStmt starts a transaction.
type BeginStmt struct {
	Serializable bool
}

// CommitStmt commits.
type CommitStmt struct{}

// RollbackStmt aborts.
type RollbackStmt struct{}

func (*BeginStmt) stmt()    {}
func (*CommitStmt) stmt()   {}
func (*RollbackStmt) stmt() {}
