package sql

import (
	"strings"
	"testing"

	"ifdb/internal/types"
)

func parse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT a, 'it''s', 1.5e3, $2 FROM t -- comment
		/* block */ WHERE x <> 3;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Fatalf("first token: %+v", toks[0])
	}
	if toks[3].Kind != TokString || toks[3].Text != "it's" {
		t.Fatalf("string: %+v", toks[3])
	}
	if toks[5].Kind != TokNumber || toks[5].Text != "1.5e3" {
		t.Fatalf("number: %+v", toks[5])
	}
	if toks[7].Kind != TokParam || toks[7].Text != "2" {
		t.Fatalf("param: %+v", toks[7])
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Fatal("no EOF")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "$x", "a ~ b"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestLexQuotedIdentAndCase(t *testing.T) {
	toks, err := Lex(`SeLeCt "MiXeD" FROM TBL`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" {
		t.Fatal("keyword not upcased")
	}
	if toks[1].Text != "MiXeD" {
		t.Fatal("quoted ident case-folded")
	}
	if toks[3].Text != "tbl" {
		t.Fatal("ident not folded to lower")
	}
}

func TestParseSelectFull(t *testing.T) {
	st := parse(t, `
		SELECT DISTINCT u.name, COUNT(*) AS n, SUM(d.km) total
		FROM users u
		JOIN drives d ON d.uid = u.id
		LEFT JOIN extra e ON e.uid = u.id
		WHERE u.age > 21 AND u.name LIKE 'a%' AND u.id IN (1, 2, 3)
		GROUP BY u.name
		HAVING COUNT(*) > 1
		ORDER BY n DESC, u.name
		LIMIT 10 OFFSET 5
		FOR UPDATE`).(*SelectStmt)
	if !st.Distinct || len(st.Items) != 3 || st.Items[1].Alias != "n" || st.Items[2].Alias != "total" {
		t.Fatalf("items: %+v", st.Items)
	}
	if st.From.Name != "users" || st.From.Alias != "u" {
		t.Fatalf("from: %+v", st.From)
	}
	if len(st.Joins) != 2 || st.Joins[0].Kind != "INNER" || st.Joins[1].Kind != "LEFT" {
		t.Fatalf("joins: %+v", st.Joins)
	}
	if st.Where == nil || len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatal("where/group/having lost")
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order: %+v", st.OrderBy)
	}
	if st.Limit == nil || st.Offset == nil || !st.ForUpdate {
		t.Fatal("limit/offset/forupdate lost")
	}
}

func TestParseStarForms(t *testing.T) {
	st := parse(t, `SELECT *, t.* FROM t`).(*SelectStmt)
	if !st.Items[0].Star || st.Items[0].Table != "" {
		t.Fatalf("bare star: %+v", st.Items[0])
	}
	if !st.Items[1].Star || st.Items[1].Table != "t" {
		t.Fatalf("t.*: %+v", st.Items[1])
	}
}

func TestParseSubqueries(t *testing.T) {
	st := parse(t, `SELECT (SELECT MAX(x) FROM t2), a FROM (SELECT a FROM t3) sub
		WHERE EXISTS (SELECT 1 FROM t4) AND a IN (SELECT b FROM t5)`).(*SelectStmt)
	if _, ok := st.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery lost")
	}
	if st.From.Sub == nil || st.From.Alias != "sub" {
		t.Fatal("from subquery lost")
	}
	and := st.Where.(*BinaryExpr)
	if _, ok := and.Left.(*ExistsExpr); !ok {
		t.Fatal("EXISTS lost")
	}
	in := and.Right.(*InExpr)
	if in.Sub == nil {
		t.Fatal("IN subquery lost")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := parse(t, `SELECT 1 + 2 * 3 = 7 AND NOT FALSE`).(*SelectStmt)
	// ((1 + (2*3)) = 7) AND (NOT FALSE)
	and := st.Items[0].Expr.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top op %s", and.Op)
	}
	eq := and.Left.(*BinaryExpr)
	if eq.Op != "=" {
		t.Fatalf("cmp op %s", eq.Op)
	}
	plus := eq.Left.(*BinaryExpr)
	if plus.Op != "+" {
		t.Fatalf("add op %s", plus.Op)
	}
	mul := plus.Right.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("mul op %s", mul.Op)
	}
}

func TestParseComparisonVariants(t *testing.T) {
	st := parse(t, `SELECT a BETWEEN 1 AND 2, b NOT IN (3), c IS NOT NULL,
		d NOT LIKE 'x%', e NOT BETWEEN 1 AND 2, -f`).(*SelectStmt)
	if be := st.Items[0].Expr.(*BetweenExpr); be.Not {
		t.Fatal("between")
	}
	if in := st.Items[1].Expr.(*InExpr); !in.Not {
		t.Fatal("not in")
	}
	if nn := st.Items[2].Expr.(*IsNullExpr); !nn.Not {
		t.Fatal("is not null")
	}
	if _, ok := st.Items[3].Expr.(*UnaryExpr); !ok {
		t.Fatal("not like")
	}
	if be := st.Items[4].Expr.(*BetweenExpr); !be.Not {
		t.Fatal("not between")
	}
	if ue := st.Items[5].Expr.(*UnaryExpr); ue.Op != "-" {
		t.Fatal("negation")
	}
}

func TestParseInsertVariants(t *testing.T) {
	ins := parse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	ins = parse(t, `INSERT INTO t SELECT a FROM s`).(*InsertStmt)
	if ins.Select == nil {
		t.Fatal("insert-select lost")
	}
	ins = parse(t, `INSERT INTO drives VALUES (1) DECLASSIFYING (alice_drives, alice_cars)`).(*InsertStmt)
	if len(ins.Declassifying) != 2 || ins.Declassifying[0] != "alice_drives" {
		t.Fatalf("declassifying: %v", ins.Declassifying)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := parse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = $1 DECLASSIFYING (tg)`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil || len(up.Declassifying) != 1 {
		t.Fatalf("update: %+v", up)
	}
	del := parse(t, `DELETE FROM t WHERE a < 3`).(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("delete: %+v", del)
	}
	del = parse(t, `DELETE FROM t`).(*DeleteStmt)
	if del.Where != nil {
		t.Fatal("bare delete has where")
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := parse(t, `CREATE TABLE IF NOT EXISTS t (
		id BIGINT PRIMARY KEY,
		name VARCHAR(40) NOT NULL UNIQUE,
		price DOUBLE PRECISION DEFAULT 1.5,
		wid INT REFERENCES w (wid),
		ok BOOLEAN,
		ts TIMESTAMP,
		PRIMARY KEY (id),
		UNIQUE (name, price),
		FOREIGN KEY (wid) REFERENCES w (wid) ON DELETE CASCADE,
		CONSTRAINT lbl LABEL EXACTLY (wid),
		LABEL CONTAINS (wid),
		CHECK (price > 0)
	) USING DISK`).(*CreateTableStmt)
	if !ct.IfNotExists || !ct.OnDisk || len(ct.Columns) != 6 {
		t.Fatalf("table: %+v", ct)
	}
	col := ct.Columns[0]
	if !col.PrimaryKey || col.Type != types.KindInt {
		t.Fatalf("col0: %+v", col)
	}
	if !ct.Columns[1].NotNull || !ct.Columns[1].Unique {
		t.Fatalf("col1: %+v", ct.Columns[1])
	}
	if ct.Columns[2].Default == nil {
		t.Fatal("default lost")
	}
	if ct.Columns[3].RefTable != "w" || ct.Columns[3].RefColumn != "wid" {
		t.Fatalf("inline ref: %+v", ct.Columns[3])
	}
	kinds := make([]string, len(ct.Constraints))
	for i, c := range ct.Constraints {
		kinds[i] = c.Kind
	}
	want := []string{"PRIMARY KEY", "UNIQUE", "FOREIGN KEY", "LABEL EXACTLY", "LABEL CONTAINS", "CHECK"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("constraints: %v", kinds)
	}
	if ct.Constraints[2].OnDelete != "CASCADE" {
		t.Fatal("cascade lost")
	}
	if ct.Constraints[3].Name != "lbl" {
		t.Fatal("constraint name lost")
	}
}

func TestParseCreateViewAndTrigger(t *testing.T) {
	cv := parse(t, `CREATE VIEW pcmembers AS
		SELECT firstname FROM contactinfo WHERE is_pc_member(contactid)
		WITH DECLASSIFYING (all_contacts)`).(*CreateViewStmt)
	if cv.Name != "pcmembers" || len(cv.Declassifying) != 1 {
		t.Fatalf("view: %+v", cv)
	}
	cv = parse(t, `CREATE VIEW v (a, b) AS SELECT x, y FROM t`).(*CreateViewStmt)
	if len(cv.Columns) != 2 {
		t.Fatal("view columns lost")
	}
	tr := parse(t, `CREATE TRIGGER trg AFTER INSERT ON locations EXECUTE PROCEDURE driveupdate()`).(*CreateTriggerStmt)
	if tr.Timing != "AFTER" || tr.Event != "INSERT" || tr.Proc != "driveupdate" {
		t.Fatalf("trigger: %+v", tr)
	}
	tr = parse(t, `CREATE TRIGGER trg BEFORE UPDATE ON t deferred EXECUTE PROCEDURE p`).(*CreateTriggerStmt)
	if !tr.Deferred {
		t.Fatal("deferred lost")
	}
}

func TestParseCreateIndexAndDrop(t *testing.T) {
	ci := parse(t, `CREATE UNIQUE INDEX i ON t (a, b)`).(*CreateIndexStmt)
	if !ci.Unique || len(ci.Columns) != 2 {
		t.Fatalf("index: %+v", ci)
	}
	d := parse(t, `DROP TABLE IF EXISTS t`).(*DropTableStmt)
	if !d.IfExists || d.Name != "t" {
		t.Fatalf("drop: %+v", d)
	}
}

func TestParseTxnStatements(t *testing.T) {
	if b := parse(t, `BEGIN`).(*BeginStmt); b.Serializable {
		t.Fatal("default serializable")
	}
	if b := parse(t, `BEGIN ISOLATION LEVEL SERIALIZABLE`).(*BeginStmt); !b.Serializable {
		t.Fatal("serializable lost")
	}
	if b := parse(t, `BEGIN SERIALIZABLE`).(*BeginStmt); !b.Serializable {
		t.Fatal("short serializable lost")
	}
	parse(t, `COMMIT`)
	parse(t, `ROLLBACK`)
	parse(t, `ABORT`)
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT * FROM a;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseAll(``); err != nil {
		t.Fatal("empty script should parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT FROM t`,
		`INSERT t VALUES (1)`,
		`CREATE TABLE t (a INT,)`,
		`UPDATE t SET`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM (SELECT 1)`, // missing alias
		`CREATE TABLE t (a UUID)`,  // unsupported type
		`SELECT a FROM t GROUP`,
		`FROB the knob`,
		`SELECT 1 2`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestKeywordsAsIdentifiers(t *testing.T) {
	// Non-reserved keywords can name columns (e.g. a column "level" or
	// "label" or "count").
	st := parse(t, `SELECT level, key FROM t WHERE key = 1`).(*SelectStmt)
	cr := st.Items[0].Expr.(*ColumnRef)
	if cr.Column != "level" {
		t.Fatalf("col: %+v", cr)
	}
}

func TestParamLiteral(t *testing.T) {
	st := parse(t, `SELECT $1 + $2`).(*SelectStmt)
	b := st.Items[0].Expr.(*BinaryExpr)
	if b.Left.(*Param).Index != 1 || b.Right.(*Param).Index != 2 {
		t.Fatal("params lost")
	}
}

func TestLiteralValues(t *testing.T) {
	st := parse(t, `SELECT NULL, TRUE, FALSE, 'txt', 3, 2.5`).(*SelectStmt)
	vals := make([]types.Value, len(st.Items))
	for i, it := range st.Items {
		vals[i] = it.Expr.(*Literal).Value
	}
	if !vals[0].IsNull() || !vals[1].Bool() || vals[2].Bool() {
		t.Fatal("null/bool literals")
	}
	if vals[3].Text() != "txt" || vals[4].Int() != 3 || vals[5].Float() != 2.5 {
		t.Fatal("scalar literals")
	}
}
