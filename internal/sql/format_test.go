package sql

import (
	"strings"
	"testing"
)

// roundTrip parses one SELECT, formats it, re-parses the rendering,
// and formats again: the two renderings must be byte-identical (the
// formatter is a fixed point over its own output).
func roundTrip(t *testing.T, src string) string {
	t.Helper()
	stmts, err := ParseAll(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("parse %q: %d statements", src, len(stmts))
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		t.Fatalf("parse %q: %T", src, stmts[0])
	}
	out1, err := FormatSelect(sel)
	if err != nil {
		t.Fatalf("format %q: %v", src, err)
	}
	stmts2, err := ParseAll(out1)
	if err != nil {
		t.Fatalf("re-parse %q (from %q): %v", out1, src, err)
	}
	out2, err := FormatSelect(stmts2[0].(*SelectStmt))
	if err != nil {
		t.Fatalf("re-format %q: %v", out1, err)
	}
	if out1 != out2 {
		t.Fatalf("not a fixed point:\n  first:  %s\n  second: %s", out1, out2)
	}
	return out1
}

func TestFormatSelectRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT 1",
		"SELECT * FROM t",
		"SELECT t.* FROM t",
		"SELECT a, b AS total FROM t AS x",
		"SELECT a + 1, -b, NOT c FROM t",
		"SELECT a FROM t WHERE a = 1 AND b <> 'x''y'",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 10 OR b NOT IN (1, 2, 3)",
		"SELECT a FROM t WHERE name LIKE 'a%' AND b IS NOT NULL",
		"SELECT count(*), sum(v), avg(v), min(v), max(v) FROM t",
		"SELECT g, count(DISTINCT v) FROM t GROUP BY g HAVING count(*) > 1",
		"SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 2",
		"SELECT lower(name) || '!' FROM t WHERE f > 1.5 AND f < 2e3",
		"SELECT a FROM t WHERE ok = TRUE AND bad = FALSE AND gone IS NULL",
		"SELECT a FROM t WHERE k = $1 AND v > $2",
		"SELECT \"MiXeD\" FROM \"CaseTable\"",
		"SELECT a % 2, a * 3 / 4 - 5 FROM t",
		"SELECT coalesce(a, 0.0) FROM t",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestFormatFloatKeepsMarker(t *testing.T) {
	// 2.0 formats via %g as "2"; the formatter must restore a float
	// marker or the re-parse would produce an int literal.
	out := roundTrip(t, "SELECT 2.0 FROM t")
	if !strings.Contains(out, "2.0") {
		t.Fatalf("float literal lost its marker: %s", out)
	}
}

func TestFormatSelectRejectsSubqueries(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM t WHERE a IN (SELECT b FROM u)",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT (SELECT max(b) FROM u) FROM t",
		"SELECT a FROM (SELECT a FROM t) AS d",
		"SELECT a FROM t JOIN u ON t.a = u.a",
		"SELECT a FROM t FOR UPDATE",
	} {
		stmts, err := ParseAll(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := FormatSelect(stmts[0].(*SelectStmt)); err == nil {
			t.Fatalf("FormatSelect(%q): expected error", src)
		}
	}
}

func TestFormatExprQuotesIdentifiers(t *testing.T) {
	stmts, err := ParseAll(`SELECT a FROM t WHERE Up = 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*SelectStmt)
	out, err := FormatExpr(sel.Where)
	if err != nil {
		t.Fatal(err)
	}
	// Unquoted identifiers fold to lower case; the formatter re-quotes
	// the folded form.
	if out != `("up" = 1)` {
		t.Fatalf("got %s", out)
	}
}
