// Package index provides the ordered secondary-index structure used by
// the engine: an in-memory B-tree mapping composite value keys to tuple
// version TIDs.
//
// The index is deliberately version-oblivious: it stores one entry per
// tuple *version*, and readers filter entries through their snapshot
// and label visibility exactly as heap scans do. This mirrors the
// paper's observation (§7.1) that PostgreSQL's unique indexes "already
// had to be prepared to deal with multiple versions", which is why
// polyinstantiation needed no special index support — uniqueness is
// checked against *visible* tuples at the access layer, not inside the
// tree.
package index

import (
	"sync"

	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// Key is a composite index key.
type Key []types.Value

// Compare orders keys lexicographically; shorter prefixes sort first.
func Compare(a, b Key) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

const btreeOrder = 64 // max children per interior node

type entry struct {
	key Key
	tid storage.TID
}

// entryLess orders entries by key, then TID (so duplicate keys are
// permitted and entries are totally ordered).
func entryLess(a, b entry) bool {
	if c := Compare(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.tid < b.tid
}

type node struct {
	entries  []entry // sorted; leaf payload or interior separators
	children []*node // nil for leaves; len = len(entries)+1 otherwise
}

func (n *node) leaf() bool { return n.children == nil }

// Btree is an ordered multimap from Key to TID. Safe for concurrent
// use; writes take an exclusive lock.
type Btree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// New returns an empty B-tree.
func New() *Btree {
	return &Btree{root: &node{}}
}

// Len returns the number of entries.
func (t *Btree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Insert adds (key, tid). Duplicate (key, tid) pairs are ignored.
func (t *Btree) Insert(key Key, tid storage.TID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := entry{key: key, tid: tid}
	if t.insertInto(t.root, e) {
		t.size++
	}
	if len(t.root.entries) >= btreeOrder {
		old := t.root
		left, sep, right := splitNode(old)
		t.root = &node{entries: []entry{sep}, children: []*node{left, right}}
	}
}

// insertInto inserts e under n, reporting whether a new entry was
// added. Children that overflow are split by the caller's parent; to
// keep the code simple we split eagerly on the way back up.
func (t *Btree) insertInto(n *node, e entry) bool {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryLess(n.entries[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && !entryLess(e, n.entries[lo]) && !entryLess(n.entries[lo], e) {
		return false // exact duplicate
	}
	if n.leaf() {
		n.entries = append(n.entries, entry{})
		copy(n.entries[lo+1:], n.entries[lo:])
		n.entries[lo] = e
		return true
	}
	child := n.children[lo]
	added := t.insertInto(child, e)
	if len(child.entries) >= btreeOrder {
		left, sep, right := splitNode(child)
		n.entries = append(n.entries, entry{})
		copy(n.entries[lo+1:], n.entries[lo:])
		n.entries[lo] = sep
		n.children = append(n.children, nil)
		copy(n.children[lo+2:], n.children[lo+1:])
		n.children[lo] = left
		n.children[lo+1] = right
	}
	return added
}

func splitNode(n *node) (left *node, sep entry, right *node) {
	mid := len(n.entries) / 2
	sep = n.entries[mid]
	left = &node{entries: append([]entry(nil), n.entries[:mid]...)}
	right = &node{entries: append([]entry(nil), n.entries[mid+1:]...)}
	if !n.leaf() {
		left.children = append([]*node(nil), n.children[:mid+1]...)
		right.children = append([]*node(nil), n.children[mid+1:]...)
	}
	return left, sep, right
}

// Delete removes (key, tid) if present, reporting whether it was found.
// Underflow is tolerated (nodes may become sparse); the tree never
// rebalances on delete, which is acceptable for an index whose entries
// are reclaimed wholesale by vacuum.
func (t *Btree) Delete(key Key, tid storage.TID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := entry{key: key, tid: tid}
	if t.deleteFrom(t.root, e) {
		t.size--
		return true
	}
	return false
}

func (t *Btree) deleteFrom(n *node, e entry) bool {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryLess(n.entries[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && !entryLess(e, n.entries[lo]) && !entryLess(n.entries[lo], e) {
		if n.leaf() {
			n.entries = append(n.entries[:lo], n.entries[lo+1:]...)
			return true
		}
		// Replace the separator with its predecessor (or successor if
		// the left subtree has emptied out — the tree never rebalances
		// on delete, so subtrees can drain).
		if pred, ok := maxEntry(n.children[lo]); ok {
			n.entries[lo] = pred
			return t.deleteFrom(n.children[lo], pred)
		}
		if succ, ok := minEntry(n.children[lo+1]); ok {
			n.entries[lo] = succ
			return t.deleteFrom(n.children[lo+1], succ)
		}
		// Both neighbors are empty: drop the separator and one of the
		// empty children.
		n.entries = append(n.entries[:lo], n.entries[lo+1:]...)
		n.children = append(n.children[:lo], n.children[lo+1:]...)
		return true
	}
	if n.leaf() {
		return false
	}
	return t.deleteFrom(n.children[lo], e)
}

// maxEntry returns the largest entry in the subtree; ok is false if
// the subtree is empty. Because separators dominate everything in the
// subtrees to their left, the maximum is the rightmost subtree's max,
// or failing that the last separator.
func maxEntry(n *node) (entry, bool) {
	if n.leaf() {
		if len(n.entries) == 0 {
			return entry{}, false
		}
		return n.entries[len(n.entries)-1], true
	}
	if e, ok := maxEntry(n.children[len(n.children)-1]); ok {
		return e, true
	}
	if len(n.entries) > 0 {
		return n.entries[len(n.entries)-1], true
	}
	return entry{}, false
}

// minEntry mirrors maxEntry.
func minEntry(n *node) (entry, bool) {
	if n.leaf() {
		if len(n.entries) == 0 {
			return entry{}, false
		}
		return n.entries[0], true
	}
	if e, ok := minEntry(n.children[0]); ok {
		return e, true
	}
	if len(n.entries) > 0 {
		return n.entries[0], true
	}
	return entry{}, false
}

// AscendRange visits entries with lo <= key <= hi in order, until fn
// returns false. A nil lo (hi) means unbounded below (above).
func (t *Btree) AscendRange(lo, hi Key, fn func(key Key, tid storage.TID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.ascend(t.root, lo, hi, fn)
}

func (t *Btree) ascend(n *node, lo, hi Key, fn func(Key, storage.TID) bool) bool {
	start := 0
	if lo != nil {
		s, e := 0, len(n.entries)
		for s < e {
			mid := (s + e) / 2
			if Compare(n.entries[mid].key, lo) < 0 {
				s = mid + 1
			} else {
				e = mid
			}
		}
		start = s
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf() {
			if !t.ascend(n.children[i], lo, hi, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if hi != nil && Compare(e.key, hi) > 0 {
			return false
		}
		if !fn(e.key, e.tid) {
			return false
		}
		lo = nil // after the first in-range entry, descend whole subtrees
	}
	return true
}

// AscendEqual visits all entries with key exactly equal to k.
func (t *Btree) AscendEqual(k Key, fn func(tid storage.TID) bool) {
	t.AscendRange(k, k, func(_ Key, tid storage.TID) bool { return fn(tid) })
}

// AscendPrefix visits all entries whose key begins with prefix.
func (t *Btree) AscendPrefix(prefix Key, fn func(key Key, tid storage.TID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.ascendPrefix(t.root, prefix, fn)
}

// AscendPrefixAfter is the resumable form of AscendPrefix for the
// pull-based executor: it visits entries whose key begins with prefix
// and that sort strictly after (afterKey, afterTID) in the tree's
// (key, TID) total order, delivering at most max of them. A nil
// afterKey starts at the beginning. It returns the position of the
// last delivered entry — the resume point for the next batch — and
// whether the batch stopped on the max budget (more=true) rather than
// exhausting the prefix. Returned keys alias tree memory and are
// immutable. The read lock is released between batches; entries
// inserted meanwhile may be visited, which is sound because a
// statement snapshot cannot see their tuples.
func (t *Btree) AscendPrefixAfter(prefix, afterKey Key, afterTID storage.TID, max int, fn func(key Key, tid storage.TID) bool) (lastKey Key, lastTID storage.TID, more bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var after *entry
	if afterKey != nil {
		after = &entry{key: afterKey, tid: afterTID}
	}
	n := 0
	t.ascendPrefixAfter(t.root, prefix, after, func(k Key, tid storage.TID) bool {
		if n >= max {
			more = true
			return false
		}
		n++
		lastKey, lastTID = k, tid
		return fn(k, tid)
	})
	return lastKey, lastTID, more
}

// ascendPrefixAfter mirrors ascendPrefix with a resume bound: entries
// at or before after are skipped via binary search, and the bound is
// dropped once the walk passes it (descend whole subtrees after that).
func (t *Btree) ascendPrefixAfter(n *node, prefix Key, after *entry, fn func(Key, storage.TID) bool) bool {
	matches := func(k Key) int {
		if len(k) < len(prefix) {
			return Compare(k, prefix)
		}
		return Compare(k[:len(prefix)], prefix)
	}
	start := 0
	{
		s, e := 0, len(n.entries)
		for s < e {
			mid := (s + e) / 2
			var skip bool
			if after != nil {
				skip = !entryLess(*after, n.entries[mid]) // entries[mid] <= after
			} else {
				skip = matches(n.entries[mid].key) < 0
			}
			if skip {
				s = mid + 1
			} else {
				e = mid
			}
		}
		start = s
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf() {
			if !t.ascendPrefixAfter(n.children[i], prefix, after, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		c := matches(e.key)
		if c > 0 {
			return false
		}
		if c == 0 {
			if !fn(e.key, e.tid) {
				return false
			}
		}
		after = nil
	}
	return true
}

func (t *Btree) ascendPrefix(n *node, prefix Key, fn func(Key, storage.TID) bool) bool {
	matches := func(k Key) int {
		if len(k) < len(prefix) {
			return Compare(k, prefix)
		}
		return Compare(k[:len(prefix)], prefix)
	}
	start := 0
	{
		s, e := 0, len(n.entries)
		for s < e {
			mid := (s + e) / 2
			if matches(n.entries[mid].key) < 0 {
				s = mid + 1
			} else {
				e = mid
			}
		}
		start = s
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.leaf() {
			if !t.ascendPrefix(n.children[i], prefix, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		c := matches(e.key)
		if c > 0 {
			return false
		}
		if c == 0 {
			if !fn(e.key, e.tid) {
				return false
			}
		}
	}
	return true
}
