package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func k(vals ...int64) Key {
	out := make(Key, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{k(1), k(2), -1},
		{k(2), k(1), 1},
		{k(1, 2), k(1, 2), 0},
		{k(1), k(1, 2), -1}, // prefix sorts first
		{k(1, 3), k(1, 2), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestInsertLookupDelete(t *testing.T) {
	tr := New()
	tr.Insert(k(1), 10)
	tr.Insert(k(2), 20)
	tr.Insert(k(2), 21) // duplicate key, distinct TID
	tr.Insert(k(2), 21) // exact duplicate, ignored
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var tids []storage.TID
	tr.AscendEqual(k(2), func(tid storage.TID) bool {
		tids = append(tids, tid)
		return true
	})
	if len(tids) != 2 || tids[0] != 20 || tids[1] != 21 {
		t.Fatalf("AscendEqual: %v", tids)
	}
	if !tr.Delete(k(2), 20) {
		t.Fatal("Delete failed")
	}
	if tr.Delete(k(2), 20) {
		t.Fatal("double Delete succeeded")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d", tr.Len())
	}
}

func TestAscendRangeAndPrefix(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(k(i/10, i%10), storage.TID(i))
	}
	// Range [ (3,0), (4,9) ] = 20 entries.
	var got []storage.TID
	tr.AscendRange(k(3, 0), k(4, 9), func(_ Key, tid storage.TID) bool {
		got = append(got, tid)
		return true
	})
	if len(got) != 20 || got[0] != 30 || got[19] != 49 {
		t.Fatalf("range: %v", got)
	}
	// Prefix (7,*) = 10 entries in order.
	got = got[:0]
	tr.AscendPrefix(k(7), func(key Key, tid storage.TID) bool {
		got = append(got, tid)
		return true
	})
	if len(got) != 10 || got[0] != 70 || got[9] != 79 {
		t.Fatalf("prefix: %v", got)
	}
	// Early termination.
	n := 0
	tr.AscendRange(nil, nil, func(Key, storage.TID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestLargeOrderedInsertAndSplits(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(k(int64(i)), storage.TID(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	prev := int64(-1)
	tr.AscendRange(nil, nil, func(key Key, tid storage.TID) bool {
		v := key[0].Int()
		if v != prev+1 {
			t.Fatalf("order broken at %d (prev %d)", v, prev)
		}
		prev = v
		return true
	})
	if prev != n-1 {
		t.Fatalf("visited up to %d", prev)
	}
}

func TestMixedTypeKeys(t *testing.T) {
	tr := New()
	tr.Insert(Key{types.NewText("bob"), types.NewInt(1)}, 1)
	tr.Insert(Key{types.NewText("alice"), types.NewInt(2)}, 2)
	tr.Insert(Key{types.NewText("bob"), types.NewInt(0)}, 3)
	var got []storage.TID
	tr.AscendPrefix(Key{types.NewText("bob")}, func(_ Key, tid storage.TID) bool {
		got = append(got, tid)
		return true
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("text prefix: %v", got)
	}
}

// Property: the tree agrees with a sorted reference slice under random
// inserts and deletes.
func TestQuickMatchesReference(t *testing.T) {
	type ent struct {
		key int64
		tid storage.TID
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		ref := make(map[ent]bool)
		for op := 0; op < 500; op++ {
			e := ent{key: r.Int63n(50), tid: storage.TID(r.Intn(10))}
			if r.Intn(4) > 0 {
				tr.Insert(k(e.key), e.tid)
				ref[e] = true
			} else {
				want := ref[e]
				got := tr.Delete(k(e.key), e.tid)
				if got != want {
					return false
				}
				delete(ref, e)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		var want []ent
		for e := range ref {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].tid < want[j].tid
		})
		i := 0
		okOrder := true
		tr.AscendRange(nil, nil, func(key Key, tid storage.TID) bool {
			if i >= len(want) || key[0].Int() != want[i].key || tid != want[i].tid {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Insert(k(int64(w*1000+i)), storage.TID(i))
				if i%13 == 0 {
					tr.AscendPrefix(k(int64(w*1000)), func(Key, storage.TID) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 4*500 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestDrainAndRefill regression-tests deletion when subtrees empty out
// entirely (the tree never rebalances, so interior separators must
// fall back to successors or splice themselves away).
func TestDrainAndRefill(t *testing.T) {
	tr := New()
	const n = 2000
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			tr.Insert(k(int64(i)), storage.TID(i))
		}
		// Delete in an order that drains left subtrees first.
		for i := 0; i < n; i++ {
			if !tr.Delete(k(int64(i)), storage.TID(i)) {
				t.Fatalf("round %d: delete %d failed", round, i)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
	}
	// And a reverse-order drain.
	for i := 0; i < n; i++ {
		tr.Insert(k(int64(i)), storage.TID(i))
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(k(int64(i)), storage.TID(i)) {
			t.Fatalf("reverse delete %d failed", i)
		}
	}
	// Interleaved middle-out drain.
	for i := 0; i < n; i++ {
		tr.Insert(k(int64(i)), storage.TID(i))
	}
	for i := 0; i < n/2; i++ {
		if !tr.Delete(k(int64(n/2+i)), storage.TID(n/2+i)) {
			t.Fatalf("mid delete %d failed", i)
		}
		if !tr.Delete(k(int64(n/2-1-i)), storage.TID(n/2-1-i)) {
			t.Fatalf("mid delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
