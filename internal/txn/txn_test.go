package txn

import (
	"errors"
	"sync"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func irow(v int64) []types.Value { return []types.Value{types.NewInt(v)} }

// insert writes a version through t and records it.
func insert(h storage.Heap, t *Txn, v int64, l label.Label) storage.TID {
	tid, _ := h.Insert(storage.TupleVersion{Row: irow(v), Label: l, Xmin: t.XID()})
	t.RecordInsert(h, tid, l, nil)
	return tid
}

func TestSnapshotVisibility(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()

	t1 := m.Begin(SnapshotIsolation)
	tid := insert(h, t1, 1, nil)

	// Own uncommitted write is visible to t1, invisible to t2.
	t2 := m.Begin(SnapshotIsolation)
	tv, _ := h.Get(tid)
	if !t1.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("own write invisible")
	}
	if t2.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("uncommitted write visible to peer")
	}

	if err := t1.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	// t2's snapshot predates the commit: still invisible.
	if t2.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("post-snapshot commit visible")
	}
	// A new transaction sees it.
	t3 := m.Begin(SnapshotIsolation)
	if !t3.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("committed write invisible to later snapshot")
	}
	t2.Abort()
	t3.Abort()
}

func TestAbortHidesInserts(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	t1 := m.Begin(SnapshotIsolation)
	tid := insert(h, t1, 1, nil)
	t1.Abort()
	tv, _ := h.Get(tid)
	t2 := m.Begin(SnapshotIsolation)
	if t2.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("aborted insert visible")
	}
	if !m.Aborted(t1.XID()) {
		t.Fatal("abort not recorded")
	}
}

func TestDeleteVisibilityAndRollback(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	setup := m.Begin(SnapshotIsolation)
	tid := insert(h, setup, 1, nil)
	if err := setup.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Deleter in progress: row still visible to others.
	del := m.Begin(SnapshotIsolation)
	if err := del.Delete(h, tid, nil, nil); err != nil {
		t.Fatal(err)
	}
	peer := m.Begin(SnapshotIsolation)
	tv, _ := h.Get(tid)
	if !peer.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("in-progress delete hid row from peer")
	}
	// And invisible to the deleter itself.
	if del.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("deleter still sees deleted row")
	}
	// Roll back: stamp cleared, row lives.
	del.Abort()
	tv, _ = h.Get(tid)
	if tv.Xmax != storage.InvalidXID {
		t.Fatal("xmax not cleared on abort")
	}
	peer.Abort()

	// Commit a delete: later snapshots lose the row.
	del2 := m.Begin(SnapshotIsolation)
	if err := del2.Delete(h, tid, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := del2.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	after := m.Begin(SnapshotIsolation)
	tv, _ = h.Get(tid)
	if after.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("committed delete still visible")
	}
	after.Abort()
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	setup := m.Begin(SnapshotIsolation)
	tid := insert(h, setup, 1, nil)
	if err := setup.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	a := m.Begin(SnapshotIsolation)
	b := m.Begin(SnapshotIsolation)
	if err := a.Delete(h, tid, nil, nil); err != nil {
		t.Fatal(err)
	}
	// First-committer-wins: b's delete of the same version fails fast.
	if err := b.Delete(h, tid, nil, nil); !errors.Is(err, ErrSerialization) {
		t.Fatalf("got %v, want ErrSerialization", err)
	}
	a.Abort()
	// After a aborts, b can retry.
	if err := b.Delete(h, tid, nil, nil); err != nil {
		t.Fatal(err)
	}
	b.Abort()
}

func TestCommitLabelRule(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	lo := label.Label(nil)
	hi := label.New(7)

	tx := m.Begin(SnapshotIsolation)
	insert(h, tx, 1, lo) // public write
	// Commit label {7} ⊄ {} → must fail and roll back.
	err := tx.Commit(nil, hi, nil)
	if !errors.Is(err, ErrCommitLabel) {
		t.Fatalf("got %v, want ErrCommitLabel", err)
	}
	if !tx.Done() {
		t.Fatal("failed commit left txn open")
	}
	if !m.Aborted(tx.XID()) {
		t.Fatal("failed commit did not abort")
	}

	// Same shape but writes at {7}: commit at {7} is fine.
	tx2 := m.Begin(SnapshotIsolation)
	insert(h, tx2, 2, hi)
	if err := tx2.Commit(nil, hi, nil); err != nil {
		t.Fatal(err)
	}

	// Deletes count as writes for the rule too.
	setup := m.Begin(SnapshotIsolation)
	tid := insert(h, setup, 3, lo)
	if err := setup.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	tx3 := m.Begin(SnapshotIsolation)
	if err := tx3.Delete(h, tid, lo, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(nil, hi, nil); !errors.Is(err, ErrCommitLabel) {
		t.Fatalf("delete write-set: got %v", err)
	}
	// The delete stamp must have been rolled back.
	tv, _ := h.Get(tid)
	if tv.Xmax != storage.InvalidXID {
		t.Fatal("aborted commit left delete stamp")
	}
}

func TestCommitLabelWithHierarchy(t *testing.T) {
	hier := label.NewHierarchy()
	const compound, member = label.Tag(100), label.Tag(1)
	if err := hier.Declare(member, compound); err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	h := storage.NewMemHeap()
	tx := m.Begin(SnapshotIsolation)
	insert(h, tx, 1, label.New(compound))
	// Commit label {member} flows to {compound} by subsumption.
	if err := tx.Commit(hier, label.New(member), nil); err != nil {
		t.Fatalf("hierarchy-aware commit: %v", err)
	}
}

func TestDeferredActions(t *testing.T) {
	m := NewManager()
	ran := 0
	tx := m.Begin(SnapshotIsolation)
	tx.Defer(func() error { ran++; return nil })
	tx.Defer(func() error { ran++; return nil })
	if err := tx.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("deferred ran %d times", ran)
	}
	// A failing deferred action aborts the transaction.
	h := storage.NewMemHeap()
	tx2 := m.Begin(SnapshotIsolation)
	tid := insert(h, tx2, 1, nil)
	tx2.Defer(func() error { return errors.New("constraint failed at commit") })
	if err := tx2.Commit(nil, nil, nil); err == nil {
		t.Fatal("failing deferred action did not abort commit")
	}
	tv, _ := h.Get(tid)
	probe := m.Begin(SnapshotIsolation)
	if probe.Visible(tv.Xmin, tv.Xmax) {
		t.Fatal("aborted deferred-failure txn visible")
	}
	probe.Abort()
}

func TestTxnDoneErrors(t *testing.T) {
	m := NewManager()
	tx := m.Begin(SnapshotIsolation)
	if err := tx.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(nil, nil, nil); !errors.Is(err, ErrTxnDone) {
		t.Fatal("double commit")
	}
	h := storage.NewMemHeap()
	if err := tx.Delete(h, 0, nil, nil); !errors.Is(err, ErrTxnDone) {
		t.Fatal("delete after done")
	}
	tx.Abort() // no-op
}

func TestWriteSetLabelsDedup(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	tx := m.Begin(SnapshotIsolation)
	insert(h, tx, 1, label.New(1))
	insert(h, tx, 2, label.New(1))
	insert(h, tx, 3, label.New(2))
	ls := tx.WriteSetLabels()
	if len(ls) != 2 {
		t.Fatalf("labels: %v", ls)
	}
	tx.Abort()
}

func TestOldestSnapshotAndVacuumHorizon(t *testing.T) {
	m := NewManager()
	h := storage.NewMemHeap()
	setup := m.Begin(SnapshotIsolation)
	tid := insert(h, setup, 1, nil)
	if err := setup.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	old := m.Begin(SnapshotIsolation) // holds the horizon back... but its snapshot is after setup
	del := m.Begin(SnapshotIsolation)
	if err := del.Delete(h, tid, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := del.Commit(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	// `old` predates the delete: the version must not be reclaimed.
	dead := m.DeadVersion()
	tv, _ := h.Get(tid)
	if dead(&tv) {
		t.Fatal("vacuum would reclaim a version an active snapshot can see")
	}
	old.Abort()
	dead = m.DeadVersion()
	if !dead(&tv) {
		t.Fatal("vacuum horizon did not advance")
	}
	// Aborted inserts are always dead.
	ab := m.Begin(SnapshotIsolation)
	tid2 := insert(h, ab, 9, nil)
	ab.Abort()
	tv2, _ := h.Get(tid2)
	if !m.DeadVersion()(&tv2) {
		t.Fatal("aborted insert not dead")
	}
}

func TestConcurrentCommitsAreOrdered(t *testing.T) {
	m := NewManager()
	const n = 100
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin(SnapshotIsolation)
			if err := tx.Commit(nil, nil, nil); err != nil {
				t.Error(err)
				return
			}
			seq, ok := m.Committed(tx.XID())
			if !ok {
				t.Error("commit not recorded")
				return
			}
			seqs[i] = seq
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		if s == 0 || seen[s] {
			t.Fatalf("duplicate or zero commit seq %d", s)
		}
		seen[s] = true
	}
}

func TestStatusTableGrowth(t *testing.T) {
	st := newStatusTable()
	// Spanning multiple chunks.
	ids := []storage.XID{1, chunkSize - 1, chunkSize, chunkSize * 3}
	for i, id := range ids {
		st.set(id, uint64(i)+firstSeq)
	}
	for i, id := range ids {
		if got := st.get(id); got != uint64(i)+firstSeq {
			t.Fatalf("get(%d) = %d", id, got)
		}
	}
	if st.get(chunkSize*10) != 0 {
		t.Fatal("unknown xid nonzero")
	}
}
