package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/wal"
)

// Errors returned by the transaction layer.
var (
	// ErrSerialization is the first-committer-wins write-write
	// conflict ("could not serialize access due to concurrent update").
	ErrSerialization = errors.New("txn: serialization failure: concurrent update")

	// ErrCommitLabel is returned when the commit-label rule (§5.1)
	// rejects a commit: the process label at the commit point carries a
	// tag not present on some tuple in the write set, so committing
	// would leak through the transaction's outcome.
	ErrCommitLabel = errors.New("txn: commit label exceeds label of written tuple")

	// ErrTxnDone is returned when operating on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already committed or aborted")
)

// Mode selects the isolation level. Snapshot isolation is the default
// (the paper's prototype ran on PostgreSQL's SI); Serializable
// additionally enforces the transaction clearance rule (§5.1).
type Mode uint8

// Isolation modes.
const (
	SnapshotIsolation Mode = iota
	Serializable
)

// Manager hands out transactions and resolves XIDs to outcomes.
type Manager struct {
	nextXID atomic.Uint64
	status  *statusTable

	commitMu sync.Mutex
	seq      atomic.Uint64 // last assigned commit sequence

	// active tracks the snapshot of every live transaction (for the
	// vacuum horizon), keyed by a private token rather than the XID:
	// read-only transactions have no XID (see BeginReadOnly) but still
	// pin the horizon.
	activeMu  sync.Mutex
	activeKey uint64
	active    map[uint64]uint64 // token -> snapshot seq

	// wal, when attached, receives commit/abort records for
	// transactions that logged at least one write. The commit record is
	// appended while commitMu is held, so log order equals
	// commit-sequence order — the prefix property group commit needs.
	wal *wal.Writer
}

// NewManager returns a fresh transaction manager.
func NewManager() *Manager {
	m := &Manager{status: newStatusTable(), active: make(map[uint64]uint64)}
	m.seq.Store(firstSeq - 1)
	return m
}

// A writeRec remembers one heap mutation for rollback and for the
// commit-label rules (secrecy and integrity).
type writeRec struct {
	heap   storage.Heap
	tid    storage.TID
	label  label.Label
	ilabel label.Label
	kind   writeKind
}

type writeKind uint8

const (
	wInsert writeKind = iota
	wDelete           // xmax stamp (also the "old version" half of update)
)

// Txn is one transaction. Not safe for concurrent use by multiple
// goroutines (like a database session).
type Txn struct {
	m       *Manager
	xid     storage.XID // InvalidXID for read-only transactions
	akey    uint64      // key in m.active
	snapSeq uint64
	mode    Mode
	done    bool
	writes  []writeRec

	// walLogged is set once the engine logs this transaction's first
	// write; only such transactions get commit/abort records (read-only
	// transactions leave no WAL trace). commitLSN is the log position
	// of the commit record, once appended.
	walLogged bool
	commitLSN wal.LSN

	// deferred holds engine callbacks queued to run at commit time
	// (deferred triggers and FK checks). Each runs with the label its
	// originating statement had, not the commit label (§5.2.3); the
	// engine captures that label in the closure.
	deferred []func() error
}

// Begin starts a transaction with a fresh snapshot.
func (m *Manager) Begin(mode Mode) *Txn {
	m.commitMu.Lock()
	snap := m.seq.Load()
	xid := storage.XID(m.nextXID.Add(1))
	m.commitMu.Unlock()
	return m.register(&Txn{m: m, xid: xid, snapSeq: snap, mode: mode})
}

// BeginReadOnly starts a transaction that may only read: it takes a
// snapshot (and pins the vacuum horizon) but allocates no XID.
// Replicas run local queries in these — the primary owns the XID
// space, and a locally allocated XID could collide with a primary
// transaction arriving later in the replication stream, making its
// uncommitted versions self-visible to the reader.
func (m *Manager) BeginReadOnly(mode Mode) *Txn {
	m.commitMu.Lock()
	snap := m.seq.Load()
	m.commitMu.Unlock()
	return m.register(&Txn{m: m, xid: storage.InvalidXID, snapSeq: snap, mode: mode})
}

func (m *Manager) register(t *Txn) *Txn {
	m.activeMu.Lock()
	m.activeKey++
	t.akey = m.activeKey
	m.active[t.akey] = t.snapSeq
	m.activeMu.Unlock()
	return t
}

// XID returns the transaction id.
func (t *Txn) XID() storage.XID { return t.xid }

// Mode returns the isolation mode.
func (t *Txn) Mode() Mode { return t.mode }

// Done reports whether the transaction has finished.
func (t *Txn) Done() bool { return t.done }

// Visible reports whether a tuple version stamped (xmin, xmax) is
// visible to this transaction's snapshot. This is the MVCC half of the
// storage.Visibility predicate; the engine composes it with the label
// filter.
func (t *Txn) Visible(xmin, xmax storage.XID) bool {
	if !t.createdVisible(xmin) {
		return false
	}
	if xmax == storage.InvalidXID {
		return true
	}
	// Deleted by self?
	if xmax == t.xid {
		return false
	}
	// Deleted by a transaction committed at or before our snapshot?
	st := t.m.status.get(xmax)
	if st >= firstSeq && st <= t.snapSeq {
		return false
	}
	return true
}

func (t *Txn) createdVisible(xmin storage.XID) bool {
	if xmin == t.xid {
		return true
	}
	st := t.m.status.get(xmin)
	return st >= firstSeq && st <= t.snapSeq
}

// CommittedAfterSnapshot reports whether xid committed after this
// transaction's snapshot — the signature of a write-write race that
// first-committer-wins resolves by aborting the later transaction.
func (t *Txn) CommittedAfterSnapshot(xid storage.XID) bool {
	st := t.m.status.get(xid)
	return st >= firstSeq && st > t.snapSeq
}

// RecordInsert registers a version this transaction inserted.
func (t *Txn) RecordInsert(h storage.Heap, tid storage.TID, l, il label.Label) {
	t.writes = append(t.writes, writeRec{heap: h, tid: tid, label: l, ilabel: il, kind: wInsert})
}

// Delete stamps the version at tid as deleted by this transaction,
// returning ErrSerialization on a write-write conflict.
func (t *Txn) Delete(h storage.Heap, tid storage.TID, l, il label.Label) error {
	if t.done {
		return ErrTxnDone
	}
	if t.xid == storage.InvalidXID {
		return fmt.Errorf("txn: write in read-only transaction")
	}
	if !h.SetXmax(tid, t.xid) {
		return ErrSerialization
	}
	// First-committer-wins also requires that the version we are
	// deleting has not been superseded by a commit after our snapshot;
	// the engine only hands us TIDs it could see under this snapshot,
	// and SetXmax rejects live stamps from other transactions, so the
	// remaining hazard is a *committed* deleter whose stamp we would
	// have observed as a conflicting live xmax anyway. (Aborted stamps
	// are cleared during rollback, so they never linger.)
	t.writes = append(t.writes, writeRec{heap: h, tid: tid, label: l, ilabel: il, kind: wDelete})
	return nil
}

// Defer queues fn to run at commit time, before the commit becomes
// visible. Used for deferred triggers and constraint checks.
func (t *Txn) Defer(fn func() error) { t.deferred = append(t.deferred, fn) }

// WriteSetLabels returns the distinct labels of tuples written by this
// transaction (inserts and deletes both count: aborting a delete also
// signals through the deleted tuple).
func (t *Txn) WriteSetLabels() []label.Label {
	var out []label.Label
	for _, w := range t.writes {
		dup := false
		for _, l := range out {
			if l.Equal(w.label) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w.label)
		}
	}
	return out
}

// CheckCommitLabel enforces the commit-label rules. For secrecy, the
// commit label must flow to every written tuple's label (§5.1). For
// integrity — the dual — every written tuple's integrity label must
// flow to the commit integrity label: the transaction's outcome may
// not vouch for data at integrity the process no longer holds.
func (t *Txn) CheckCommitLabel(hier *label.Hierarchy, commitLabel, commitILabel label.Label) error {
	flows := func(a, b label.Label) bool {
		if hier != nil {
			return hier.Flows(a, b)
		}
		return a.SubsetOf(b)
	}
	for _, w := range t.writes {
		if !flows(commitLabel, w.label) {
			return fmt.Errorf("%w: commit label %v vs tuple label %v", ErrCommitLabel, commitLabel, w.label)
		}
		if !flows(w.ilabel, commitILabel) {
			return fmt.Errorf("%w: tuple integrity %v vs commit integrity %v", ErrCommitLabel, w.ilabel, commitILabel)
		}
	}
	return nil
}

// Commit runs deferred work, enforces the commit-label rules, and
// makes the transaction's effects visible. On any failure the
// transaction is rolled back and the error returned.
func (t *Txn) Commit(hier *label.Hierarchy, commitLabel, commitILabel label.Label) error {
	if t.done {
		return ErrTxnDone
	}
	for _, fn := range t.deferred {
		if err := fn(); err != nil {
			t.Abort()
			return err
		}
	}
	if err := t.CheckCommitLabel(hier, commitLabel, commitILabel); err != nil {
		t.Abort()
		return err
	}
	if t.xid == storage.InvalidXID {
		// Read-only transaction: nothing to make visible or durable,
		// and no commit sequence to burn.
		t.finish()
		return nil
	}
	t.m.commitMu.Lock()
	seq := t.m.seq.Add(1)
	var commitLSN wal.LSN
	if t.m.wal != nil && t.walLogged {
		lsn, err := t.m.wal.Append(&wal.Record{Type: wal.RecCommit, XID: t.xid, Seq: seq})
		if err != nil {
			// Nothing is visible yet; abort rather than commit a
			// transaction whose outcome cannot be made durable.
			t.m.commitMu.Unlock()
			t.Abort()
			return err
		}
		commitLSN = lsn
		t.commitLSN = lsn
	}
	t.m.status.set(t.xid, seq)
	t.m.commitMu.Unlock()
	t.finish()
	if t.m.wal != nil && t.walLogged {
		// Durability wait per SyncMode (group commit batches this).
		// The commit is already visible to concurrent transactions;
		// any of them that commits afterwards appends behind us, so an
		// fsync covering it covers us too — no read-then-lose anomaly.
		if err := t.m.wal.WaitDurable(commitLSN); err != nil {
			return fmt.Errorf("txn: commit %d applied but not durable: %w", t.xid, err)
		}
	}
	return nil
}

// Abort rolls back the transaction: insertions become permanently
// invisible (their xmin is marked aborted) and delete stamps are
// cleared.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	if t.xid == storage.InvalidXID {
		t.finish()
		return
	}
	t.m.status.set(t.xid, statusAborted)
	for _, w := range t.writes {
		if w.kind == wDelete {
			w.heap.ClearXmax(w.tid, t.xid)
		}
	}
	if t.m.wal != nil && t.walLogged {
		// Best effort: replay treats a transaction with no commit
		// record as aborted anyway, so a lost abort record is harmless.
		_, _ = t.m.wal.Append(&wal.Record{Type: wal.RecAbort, XID: t.xid})
	}
	t.finish()
}

func (t *Txn) finish() {
	t.done = true
	t.deferred = nil
	t.m.activeMu.Lock()
	delete(t.m.active, t.akey)
	t.m.activeMu.Unlock()
}

// Committed reports whether xid committed, and its sequence.
func (m *Manager) Committed(xid storage.XID) (uint64, bool) {
	st := m.status.get(xid)
	if st >= firstSeq {
		return st, true
	}
	return 0, false
}

// Aborted reports whether xid aborted.
func (m *Manager) Aborted(xid storage.XID) bool {
	return m.status.get(xid) == statusAborted
}

// OldestSnapshot returns the lowest snapshot sequence among active
// transactions, or the current sequence if none are active. Vacuum may
// reclaim versions deleted at or before this horizon.
func (m *Manager) OldestSnapshot() uint64 {
	m.activeMu.Lock()
	defer m.activeMu.Unlock()
	oldest := m.seq.Load()
	for _, snap := range m.active {
		if snap < oldest {
			oldest = snap
		}
	}
	return oldest
}

// ---------------------------------------------------------------------------
// Durability plumbing

// AttachWAL wires the write-ahead log into the commit/abort path.
// Call before the manager hands out transactions that must be durable.
func (m *Manager) AttachWAL(w *wal.Writer) { m.wal = w }

// CommitLSN returns the log position of this transaction's commit
// record (0 for read-only or never-logged transactions, or before
// Commit). The smallest replication barrier proving the commit applied
// is any position strictly past it — see Session.CommitToken.
func (t *Txn) CommitLSN() wal.LSN { return t.commitLSN }

// MarkLogged records that the engine has logged a WAL record for this
// transaction, returning true on the first call (the engine uses that
// to emit the lazy BEGIN record).
func (t *Txn) MarkLogged() bool {
	first := !t.walLogged
	t.walLogged = true
	return first
}

// RestoreCommitted marks xid committed with the given sequence during
// recovery, advancing the commit-sequence counter past it. Idempotent.
func (m *Manager) RestoreCommitted(xid storage.XID, seq uint64) {
	if seq < firstSeq {
		seq = firstSeq
	}
	m.status.set(xid, seq)
	for {
		cur := m.seq.Load()
		if seq <= cur || m.seq.CompareAndSwap(cur, seq) {
			break
		}
	}
	m.BumpXID(xid)
}

// RestoreAborted marks xid aborted during recovery. Recovery also uses
// this for transactions that were in flight at the crash: no commit
// record means no commit.
func (m *Manager) RestoreAborted(xid storage.XID) {
	m.status.set(xid, statusAborted)
	m.BumpXID(xid)
}

// BumpXID ensures future transactions get XIDs above x.
func (m *Manager) BumpXID(x storage.XID) {
	for {
		cur := m.nextXID.Load()
		if uint64(x) <= cur || m.nextXID.CompareAndSwap(cur, uint64(x)) {
			return
		}
	}
}

// CommitSeq returns the last assigned commit sequence (checkpoint
// capture stores it so recovery restarts the counter correctly).
func (m *Manager) CommitSeq() uint64 { return m.seq.Load() }

// NextXID returns the highest XID assigned so far.
func (m *Manager) NextXID() uint64 { return m.nextXID.Load() }

// RestoreCounters primes the XID and commit-sequence counters from a
// checkpoint snapshot (both only ever move forward).
func (m *Manager) RestoreCounters(nextXID, seq uint64) {
	m.BumpXID(storage.XID(nextXID))
	for {
		cur := m.seq.Load()
		if seq <= cur || m.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// DeadVersion returns a predicate for Heap.Vacuum: a version is dead if
// (a) its creator aborted, or (b) it was deleted by a transaction that
// committed at or before the oldest active snapshot. The vacuum task is
// exempt from label confinement (paper §7.1): reclaiming storage must
// see everything.
func (m *Manager) DeadVersion() func(tv *storage.TupleVersion) bool {
	horizon := m.OldestSnapshot()
	return func(tv *storage.TupleVersion) bool {
		if m.Aborted(tv.Xmin) {
			return true
		}
		if tv.Xmax == storage.InvalidXID {
			return false
		}
		seq, ok := m.Committed(tv.Xmax)
		return ok && seq <= horizon
	}
}
