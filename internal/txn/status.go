// Package txn implements the transaction layer: snapshot-isolation
// MVCC bookkeeping (the substrate the paper inherited from PostgreSQL)
// plus the two rules IFDB adds for information flow safety (§5.1):
//
//   - the commit-label rule: a transaction may commit only if its label
//     at the commit point is no more contaminated than any tuple in its
//     write set, and
//   - the transaction clearance rule (serializable mode only): a
//     process may add a tag to its label mid-transaction only if it is
//     authoritative for that tag.
package txn

import (
	"sync"
	"sync/atomic"

	"ifdb/internal/storage"
)

// Transaction outcome encoding in the status table:
//
//	0            — in progress (or never started)
//	statusAborted — aborted
//	>= firstSeq  — committed, value is the commit sequence number
const (
	statusAborted uint64 = 1
	firstSeq      uint64 = 2
)

// statusTable maps XIDs to outcomes with lock-free reads.
//
// Visibility checks run once per tuple version per scan — the hottest
// path in the system — so the table is a chunked, append-only atomic
// array rather than a mutex-guarded map. Chunks are allocated under a
// mutex; entries are written once (0 → outcome) with atomic stores and
// read with atomic loads.
type statusTable struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*statusChunk]
}

const chunkBits = 16
const chunkSize = 1 << chunkBits // 65536 XIDs per chunk

type statusChunk struct {
	vals [chunkSize]uint64
}

func newStatusTable() *statusTable {
	t := &statusTable{}
	empty := make([]*statusChunk, 0)
	t.chunks.Store(&empty)
	return t
}

// get returns the outcome word for xid (0 if unknown).
func (t *statusTable) get(xid storage.XID) uint64 {
	ci := uint64(xid) >> chunkBits
	chunks := *t.chunks.Load()
	if ci >= uint64(len(chunks)) {
		return 0
	}
	return atomic.LoadUint64(&chunks[ci].vals[uint64(xid)&(chunkSize-1)])
}

// set records the outcome for xid, growing the chunk table if needed.
func (t *statusTable) set(xid storage.XID, outcome uint64) {
	ci := uint64(xid) >> chunkBits
	for {
		chunks := *t.chunks.Load()
		if ci < uint64(len(chunks)) {
			atomic.StoreUint64(&chunks[ci].vals[uint64(xid)&(chunkSize-1)], outcome)
			return
		}
		t.mu.Lock()
		cur := *t.chunks.Load()
		if ci < uint64(len(cur)) {
			t.mu.Unlock()
			continue
		}
		grown := make([]*statusChunk, ci+1)
		copy(grown, cur)
		for i := len(cur); i < len(grown); i++ {
			grown[i] = &statusChunk{}
		}
		t.chunks.Store(&grown)
		t.mu.Unlock()
	}
}
