// Package authority implements the IFDB authority state (paper §3.2–3.3):
// principals, tag ownership, delegation and revocation of declassification
// authority, and authority closures.
//
// Information flow policy in IFDB is expressed entirely through this
// state: a tag's owner decides, by delegating and exercising authority,
// who may remove ("declassify") the tag from a process label.
//
// The authority state is itself an object with an empty label, so the
// engine refuses to mutate it from a contaminated process — otherwise
// delegations would be a covert channel. That check lives in the engine;
// this package provides the mechanism.
package authority

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"ifdb/internal/label"
)

// Principal identifies an entity with security interests — a user, a
// role, or a closure identity. The zero value is invalid.
type Principal uint64

// NoPrincipal is the zero Principal; processes running as NoPrincipal
// hold no authority at all.
const NoPrincipal Principal = 0

// State is the authority database: which principals exist, which tags
// exist (and their owners and compound links), and who has been
// delegated authority for what. It is safe for concurrent use.
type State struct {
	mu sync.RWMutex

	hier *label.Hierarchy

	principals map[Principal]*principalInfo
	tags       map[label.Tag]*tagInfo

	// delegations[tag][grantee] = set of grantors who delegated tag to
	// grantee. Authority is retained while at least one chain from the
	// owner remains; revocation removes the grantor's edge.
	delegations map[label.Tag]map[Principal]map[Principal]bool

	// idSource produces unpredictable ids (allocation-channel
	// mitigation, paper §7.3). Overridable for deterministic tests.
	idSource func() uint64

	// log, when set, receives every successful authority mutation so
	// the engine can record it in the write-ahead log. Hooks run after
	// the state lock is released (the WAL append must never happen
	// under a state lock — see wal.Writer.Checkpoint).
	log ChangeLogger
}

// ChangeLogger receives authority-state mutations for durability.
// Implementations must be safe for concurrent use.
type ChangeLogger interface {
	LogPrincipal(id uint64, name string) error
	LogTag(id, owner uint64, name string, parents []uint64) error
	LogDelegate(tag, grantor, grantee uint64) error
	LogRevoke(tag, revoker, grantee uint64) error
}

// SetChangeLogger installs the mutation hook (nil disables logging).
func (s *State) SetChangeLogger(l ChangeLogger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = l
}

func (s *State) logger() ChangeLogger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.log
}

type principalInfo struct {
	name string
}

type tagInfo struct {
	name  string
	owner Principal
}

// NewState returns an empty authority state sharing the given tag
// hierarchy. If hier is nil a fresh hierarchy is created.
func NewState(hier *label.Hierarchy) *State {
	if hier == nil {
		hier = label.NewHierarchy()
	}
	return &State{
		hier:        hier,
		principals:  make(map[Principal]*principalInfo),
		tags:        make(map[label.Tag]*tagInfo),
		delegations: make(map[label.Tag]map[Principal]map[Principal]bool),
		idSource:    cryptoID,
	}
}

// cryptoID draws 64 unpredictable bits from crypto/rand.
func cryptoID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does,
		// refusing to continue is safer than a predictable id.
		panic(fmt.Sprintf("authority: entropy source failed: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// SetIDSourceForTest replaces the id generator. Tests use this to get
// deterministic ids; production code must not call it.
func (s *State) SetIDSourceForTest(f func() uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idSource = f
}

// Hierarchy returns the tag hierarchy shared with the engine.
func (s *State) Hierarchy() *label.Hierarchy { return s.hier }

// CreatePrincipal creates a new principal and returns its id.
// Any process may create principals (the new principal starts with no
// authority, so creation reveals nothing).
func (s *State) CreatePrincipal(name string) Principal {
	s.mu.Lock()
	var id Principal
	for {
		id = Principal(s.idSource())
		if id == NoPrincipal {
			continue
		}
		if _, exists := s.principals[id]; exists {
			continue
		}
		s.principals[id] = &principalInfo{name: name}
		break
	}
	s.mu.Unlock()
	if l := s.logger(); l != nil {
		// Best effort: the signature predates durability, so a failed
		// append (disk full) cannot be surfaced here.
		_ = l.LogPrincipal(uint64(id), name)
	}
	return id
}

// PrincipalName returns the diagnostic name of p.
func (s *State) PrincipalName(p Principal) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.principals[p]
	if !ok {
		return "", false
	}
	return info.name, true
}

// PrincipalExists reports whether p has been created.
func (s *State) PrincipalExists(p Principal) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.principals[p]
	return ok
}

// CreateTag creates a new tag owned by owner, optionally declaring it a
// member of the given compound tags (links are immutable afterwards).
// The creating principal becomes the owner with complete authority.
func (s *State) CreateTag(owner Principal, name string, compounds ...label.Tag) (label.Tag, error) {
	s.mu.Lock()
	if _, ok := s.principals[owner]; !ok {
		s.mu.Unlock()
		return label.InvalidTag, fmt.Errorf("authority: unknown principal %d", owner)
	}
	for _, c := range compounds {
		if _, ok := s.tags[c]; !ok {
			s.mu.Unlock()
			return label.InvalidTag, fmt.Errorf("authority: unknown compound tag %d", c)
		}
	}
	var t label.Tag
	for {
		// Tag ids are drawn from the CSPRNG (allocation-channel
		// mitigation, §7.3) but masked to 32 bits so that the on-disk
		// encoding can store each tag in 4 bytes, matching the space
		// cost the paper reports in §8.3.
		id := s.idSource() & 0xFFFFFFFF
		t = label.Tag(id)
		if t == label.InvalidTag {
			continue
		}
		if _, exists := s.tags[t]; !exists {
			break
		}
	}
	s.tags[t] = &tagInfo{name: name, owner: owner}
	s.mu.Unlock()

	if err := s.hier.Declare(t, compounds...); err != nil {
		// Roll back the tag registration; Declare only fails on
		// programmer error (cycle/duplicate), keep state consistent.
		s.mu.Lock()
		delete(s.tags, t)
		s.mu.Unlock()
		return label.InvalidTag, err
	}
	if l := s.logger(); l != nil {
		parents := make([]uint64, len(compounds))
		for i, c := range compounds {
			parents[i] = uint64(c)
		}
		if err := l.LogTag(uint64(t), uint64(owner), name, parents); err != nil {
			s.mu.Lock()
			delete(s.tags, t)
			s.mu.Unlock()
			s.hier.Retract(t)
			return label.InvalidTag, err
		}
	}
	return t, nil
}

// TagExists reports whether t has been created.
func (s *State) TagExists(t label.Tag) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tags[t]
	return ok
}

// TagName returns the diagnostic name of t.
func (s *State) TagName(t label.Tag) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.tags[t]
	if !ok {
		return "", false
	}
	return info.name, true
}

// TagOwner returns the owning principal of t.
func (s *State) TagOwner(t label.Tag) (Principal, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	info, ok := s.tags[t]
	if !ok {
		return NoPrincipal, false
	}
	return info.owner, true
}

// Delegate grants grantee authority for tag t on behalf of grantor.
// The grantor must itself have authority for t. Delegations form a
// graph; authority holds while any chain from the tag owner remains.
func (s *State) Delegate(grantor, grantee Principal, t label.Tag) error {
	s.mu.Lock()
	if _, ok := s.tags[t]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("authority: unknown tag %d", t)
	}
	if _, ok := s.principals[grantee]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("authority: unknown grantee principal %d", grantee)
	}
	if !s.hasAuthorityLocked(grantor, t) {
		s.mu.Unlock()
		return fmt.Errorf("authority: principal %d lacks authority for tag %d", grantor, t)
	}
	byGrantee := s.delegations[t]
	if byGrantee == nil {
		byGrantee = make(map[Principal]map[Principal]bool)
		s.delegations[t] = byGrantee
	}
	grantors := byGrantee[grantee]
	if grantors == nil {
		grantors = make(map[Principal]bool)
		byGrantee[grantee] = grantors
	}
	grantors[grantor] = true
	s.mu.Unlock()
	if l := s.logger(); l != nil {
		return l.LogDelegate(uint64(t), uint64(grantor), uint64(grantee))
	}
	return nil
}

// Revoke removes a previous delegation from grantor to grantee for tag
// t. Only the original grantor (or the tag owner) may revoke. Authority
// that the grantee still derives via other chains is unaffected.
func (s *State) Revoke(revoker, grantee Principal, t label.Tag) error {
	s.mu.Lock()
	info, ok := s.tags[t]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("authority: unknown tag %d", t)
	}
	grantors := s.delegations[t][grantee]
	if info.owner == revoker {
		// The owner may strike any grantor's edge to this grantee.
		delete(s.delegations[t], grantee)
	} else {
		if grantors == nil || !grantors[revoker] {
			s.mu.Unlock()
			return fmt.Errorf("authority: principal %d has no delegation to %d for tag %d", revoker, grantee, t)
		}
		delete(grantors, revoker)
		if len(grantors) == 0 {
			delete(s.delegations[t], grantee)
		}
	}
	s.mu.Unlock()
	if l := s.logger(); l != nil {
		return l.LogRevoke(uint64(t), uint64(revoker), uint64(grantee))
	}
	return nil
}

// HasAuthority reports whether principal p may declassify tag t:
// p owns t, owns a compound containing t, or holds a live delegation
// chain rooted at such an owner.
func (s *State) HasAuthority(p Principal, t label.Tag) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hasAuthorityLocked(p, t)
}

func (s *State) hasAuthorityLocked(p Principal, t label.Tag) bool {
	if p == NoPrincipal {
		return false
	}
	// Direct authority for the tag or any compound that covers it.
	if s.authForExactLocked(p, t, nil) {
		return true
	}
	for _, parent := range s.hier.Parents(t) {
		if s.hasAuthorityLocked(p, parent) {
			return true
		}
	}
	return false
}

// authForExactLocked reports whether p has authority for exactly tag t
// (ownership or a live delegation chain), ignoring compound subsumption.
// visited guards against delegation cycles.
func (s *State) authForExactLocked(p Principal, t label.Tag, visited map[Principal]bool) bool {
	info, ok := s.tags[t]
	if !ok {
		return false
	}
	if info.owner == p {
		return true
	}
	if visited == nil {
		visited = map[Principal]bool{}
	}
	if visited[p] {
		return false
	}
	visited[p] = true
	for grantor := range s.delegations[t][p] {
		if s.authForExactLocked(grantor, t, visited) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Recovery and checkpoint support

// RestorePrincipal re-creates a principal with its original id during
// crash recovery (ids must be stable across restarts: they appear in
// delegations, closures, and application state). Idempotent.
func (s *State) RestorePrincipal(id Principal, name string) {
	if id == NoPrincipal {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.principals[id]; !exists {
		s.principals[id] = &principalInfo{name: name}
	}
}

// RestoreTag re-creates a tag with its original id, owner, and
// compound links during crash recovery. Idempotent.
func (s *State) RestoreTag(t label.Tag, owner Principal, name string, parents []label.Tag) error {
	s.mu.Lock()
	if _, exists := s.tags[t]; exists {
		s.mu.Unlock()
		return nil
	}
	s.tags[t] = &tagInfo{name: name, owner: owner}
	s.mu.Unlock()
	if err := s.hier.Declare(t, parents...); err != nil {
		s.mu.Lock()
		delete(s.tags, t)
		s.mu.Unlock()
		return err
	}
	return nil
}

// RestoreDelegation re-adds a delegation edge without authority checks
// or logging (the edge was vetted when first granted). Idempotent.
func (s *State) RestoreDelegation(grantor, grantee Principal, t label.Tag) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byGrantee := s.delegations[t]
	if byGrantee == nil {
		byGrantee = make(map[Principal]map[Principal]bool)
		s.delegations[t] = byGrantee
	}
	grantors := byGrantee[grantee]
	if grantors == nil {
		grantors = make(map[Principal]bool)
		byGrantee[grantee] = grantors
	}
	grantors[grantor] = true
}

// RestoreRevoke re-applies a logged revocation without authority
// checks or logging. Idempotent: replay (and replication re-shipping)
// can present a revocation whose edge is already gone — because the
// snapshot reflects it, or the batch is being re-applied after a
// reconnect — and re-striking an absent edge is a no-op, not an
// error.
func (s *State) RestoreRevoke(revoker, grantee Principal, t label.Tag) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.tags[t]
	if !ok {
		return
	}
	grantors := s.delegations[t][grantee]
	if info.owner == revoker {
		delete(s.delegations[t], grantee)
		return
	}
	delete(grantors, revoker)
	if len(grantors) == 0 {
		delete(s.delegations[t], grantee)
	}
}

// PrincipalByName finds a principal by its diagnostic name (first
// match; names are not required to be unique). Recovery-aware
// applications use this to re-find their principals after a restart.
func (s *State) PrincipalByName(name string) (Principal, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, info := range s.principals {
		if info.name == name {
			return id, true
		}
	}
	return NoPrincipal, false
}

// ExportedPrincipal is one principal in a checkpoint snapshot.
type ExportedPrincipal struct {
	ID   Principal
	Name string
}

// ExportedTag is one tag in a checkpoint snapshot.
type ExportedTag struct {
	ID      label.Tag
	Owner   Principal
	Name    string
	Parents []label.Tag
}

// ExportedDelegation is one delegation edge in a checkpoint snapshot.
type ExportedDelegation struct {
	Tag              label.Tag
	Grantor, Grantee Principal
}

// Export returns the full authority state for checkpointing.
func (s *State) Export() ([]ExportedPrincipal, []ExportedTag, []ExportedDelegation) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prins := make([]ExportedPrincipal, 0, len(s.principals))
	for id, info := range s.principals {
		prins = append(prins, ExportedPrincipal{ID: id, Name: info.name})
	}
	tags := make([]ExportedTag, 0, len(s.tags))
	for id, info := range s.tags {
		tags = append(tags, ExportedTag{ID: id, Owner: info.owner, Name: info.name, Parents: s.hier.Parents(id)})
	}
	var dels []ExportedDelegation
	for t, byGrantee := range s.delegations {
		for grantee, grantors := range byGrantee {
			for grantor := range grantors {
				dels = append(dels, ExportedDelegation{Tag: t, Grantor: grantor, Grantee: grantee})
			}
		}
	}
	return prins, tags, dels
}

// AuthorityFor returns the subset of l that principal p may declassify.
func (s *State) AuthorityFor(p Principal, l label.Label) label.Label {
	var out label.Label
	for _, t := range l {
		if s.HasAuthority(p, t) {
			out = append(out, t)
		}
	}
	return out
}

// CanDeclassifyAll reports whether p holds authority for every tag in l.
func (s *State) CanDeclassifyAll(p Principal, l label.Label) bool {
	for _, t := range l {
		if !s.HasAuthority(p, t) {
			return false
		}
	}
	return true
}
