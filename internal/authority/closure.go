package authority

import (
	"fmt"
	"sync"

	"ifdb/internal/label"
)

// Authority closures (paper §3.3, §4.3).
//
// An authority closure is code bound to a principal at creation time;
// when invoked, it runs with that principal's authority instead of the
// caller's. The creator must already hold the authority being bound —
// the closure can never launder privilege the creator lacked.
//
// The closure registry only records the *binding*; the engine and the
// platform decide what "code" means (a stored procedure, a trigger, a
// Go function) and arrange for the bound principal to be in effect
// during the call.

// ClosureID names a registered closure.
type ClosureID uint64

// Closure describes one authority binding.
type Closure struct {
	ID      ClosureID
	Name    string
	Bound   Principal // principal whose authority the closure runs with
	Creator Principal // who created the binding
}

// ClosureRegistry tracks authority closures. Safe for concurrent use.
type ClosureRegistry struct {
	mu     sync.RWMutex
	state  *State
	nextID ClosureID
	byID   map[ClosureID]*Closure
	byName map[string]*Closure
}

// NewClosureRegistry returns an empty registry backed by the given
// authority state.
func NewClosureRegistry(state *State) *ClosureRegistry {
	return &ClosureRegistry{
		state:  state,
		nextID: 1,
		byID:   make(map[ClosureID]*Closure),
		byName: make(map[string]*Closure),
	}
}

// Register creates a closure binding named name that will run with the
// authority of bound. The creator must be able to act for bound's
// authority on every tag in proves: the caller passes the set of tags
// the closure is expected to declassify, and each must already be held
// by the creator (Principle of Least Privilege: you cannot give away
// what you do not have).
//
// If proves is empty the binding is still checked minimally: the
// creator must be the bound principal itself or hold at least the same
// authority on demand; in that case later declassifications by the
// closure are limited by bound's actual authority anyway, so the
// binding is safe.
func (r *ClosureRegistry) Register(name string, creator, bound Principal, proves label.Label) (*Closure, error) {
	if !r.state.PrincipalExists(bound) {
		return nil, fmt.Errorf("authority: unknown bound principal %d", bound)
	}
	for _, t := range proves {
		if !r.state.HasAuthority(creator, t) {
			return nil, fmt.Errorf("authority: closure creator lacks authority for tag %d", t)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("authority: closure %q already exists", name)
	}
	c := &Closure{ID: r.nextID, Name: name, Bound: bound, Creator: creator}
	r.nextID++
	r.byID[c.ID] = c
	r.byName[name] = c
	return c, nil
}

// Lookup finds a closure by name.
func (r *ClosureRegistry) Lookup(name string) (*Closure, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byName[name]
	return c, ok
}

// Get finds a closure by id.
func (r *ClosureRegistry) Get(id ClosureID) (*Closure, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byID[id]
	return c, ok
}

// Drop removes a closure binding. Only the creator or the bound
// principal may drop it.
func (r *ClosureRegistry) Drop(name string, by Principal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("authority: no closure %q", name)
	}
	if by != c.Creator && by != c.Bound {
		return fmt.Errorf("authority: principal %d may not drop closure %q", by, name)
	}
	delete(r.byName, name)
	delete(r.byID, c.ID)
	return nil
}
