package authority

import (
	"testing"

	"ifdb/internal/label"
)

// det installs a deterministic id source so tests get stable ids.
func det(s *State) {
	n := uint64(0)
	s.SetIDSourceForTest(func() uint64 { n++; return n })
}

func TestCreatePrincipalAndTag(t *testing.T) {
	s := NewState(nil)
	det(s)
	alice := s.CreatePrincipal("alice")
	if !s.PrincipalExists(alice) {
		t.Fatal("principal missing")
	}
	if name, ok := s.PrincipalName(alice); !ok || name != "alice" {
		t.Fatalf("name: %q %v", name, ok)
	}
	tg, err := s.CreateTag(alice, "alice_medical")
	if err != nil {
		t.Fatal(err)
	}
	if !s.TagExists(tg) {
		t.Fatal("tag missing")
	}
	if owner, ok := s.TagOwner(tg); !ok || owner != alice {
		t.Fatal("owner wrong")
	}
	if name, ok := s.TagName(tg); !ok || name != "alice_medical" {
		t.Fatalf("tag name: %q", name)
	}
	// Owner has authority; strangers do not.
	if !s.HasAuthority(alice, tg) {
		t.Fatal("owner lacks authority")
	}
	bob := s.CreatePrincipal("bob")
	if s.HasAuthority(bob, tg) {
		t.Fatal("stranger has authority")
	}
	if s.HasAuthority(NoPrincipal, tg) {
		t.Fatal("NoPrincipal has authority")
	}
}

func TestCreateTagUnknownOwnerOrCompound(t *testing.T) {
	s := NewState(nil)
	det(s)
	if _, err := s.CreateTag(Principal(99), "x"); err == nil {
		t.Fatal("unknown owner accepted")
	}
	p := s.CreatePrincipal("p")
	if _, err := s.CreateTag(p, "x", label.Tag(777)); err == nil {
		t.Fatal("unknown compound accepted")
	}
}

func TestDelegationChainAndRevocation(t *testing.T) {
	s := NewState(nil)
	det(s)
	owner := s.CreatePrincipal("owner")
	mid := s.CreatePrincipal("mid")
	leaf := s.CreatePrincipal("leaf")
	tg, _ := s.CreateTag(owner, "t")

	// owner -> mid -> leaf.
	if err := s.Delegate(owner, mid, tg); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate(mid, leaf, tg); err != nil {
		t.Fatal(err)
	}
	if !s.HasAuthority(leaf, tg) {
		t.Fatal("chained delegation failed")
	}

	// Delegation requires the grantor to hold authority.
	outsider := s.CreatePrincipal("outsider")
	if err := s.Delegate(outsider, leaf, tg); err == nil {
		t.Fatal("unauthorized delegation accepted")
	}

	// Revoking mid's grant severs leaf's only chain.
	if err := s.Revoke(owner, mid, tg); err != nil {
		t.Fatal(err)
	}
	if s.HasAuthority(mid, tg) {
		t.Fatal("mid retains authority after revocation")
	}
	if s.HasAuthority(leaf, tg) {
		t.Fatal("leaf retains authority after upstream revocation")
	}
	// The owner always keeps authority.
	if !s.HasAuthority(owner, tg) {
		t.Fatal("owner lost authority")
	}
}

func TestRevokeOnlyGrantorOrOwner(t *testing.T) {
	s := NewState(nil)
	det(s)
	owner := s.CreatePrincipal("owner")
	a := s.CreatePrincipal("a")
	b := s.CreatePrincipal("b")
	tg, _ := s.CreateTag(owner, "t")
	if err := s.Delegate(owner, a, tg); err != nil {
		t.Fatal(err)
	}
	if err := s.Revoke(b, a, tg); err == nil {
		t.Fatal("third party revoked")
	}
	// The tag owner can strike any grant.
	if err := s.Revoke(owner, a, tg); err != nil {
		t.Fatal(err)
	}
	if s.HasAuthority(a, tg) {
		t.Fatal("authority survives owner revocation")
	}
}

func TestMultipleChainsSurviveOneRevocation(t *testing.T) {
	s := NewState(nil)
	det(s)
	owner := s.CreatePrincipal("owner")
	a := s.CreatePrincipal("a")
	b := s.CreatePrincipal("b")
	leaf := s.CreatePrincipal("leaf")
	tg, _ := s.CreateTag(owner, "t")
	for _, g := range []Principal{a, b} {
		if err := s.Delegate(owner, g, tg); err != nil {
			t.Fatal(err)
		}
		if err := s.Delegate(g, leaf, tg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Revoke(a, leaf, tg); err != nil {
		t.Fatal(err)
	}
	if !s.HasAuthority(leaf, tg) {
		t.Fatal("second chain should keep leaf authoritative")
	}
}

func TestCompoundAuthority(t *testing.T) {
	hier := label.NewHierarchy()
	s := NewState(hier)
	det(s)
	app := s.CreatePrincipal("app")
	alice := s.CreatePrincipal("alice")
	all, _ := s.CreateTag(app, "all_drives")
	at, err := s.CreateTag(alice, "alice_drives", all)
	if err != nil {
		t.Fatal(err)
	}
	// Authority for the compound covers the member.
	if !s.HasAuthority(app, at) {
		t.Fatal("compound owner lacks member authority")
	}
	// Member authority does not generalize upward.
	if s.HasAuthority(alice, all) {
		t.Fatal("member owner has compound authority")
	}
	// Delegating the compound delegates the members.
	stats := s.CreatePrincipal("stats")
	if err := s.Delegate(app, stats, all); err != nil {
		t.Fatal(err)
	}
	if !s.HasAuthority(stats, at) {
		t.Fatal("compound delegation does not reach member")
	}
}

func TestAuthorityForAndCanDeclassifyAll(t *testing.T) {
	s := NewState(nil)
	det(s)
	p := s.CreatePrincipal("p")
	t1, _ := s.CreateTag(p, "t1")
	q := s.CreatePrincipal("q")
	t2, _ := s.CreateTag(q, "t2")
	l := label.New(t1, t2)
	got := s.AuthorityFor(p, l)
	if !got.Equal(label.New(t1)) {
		t.Fatalf("AuthorityFor: %v", got)
	}
	if s.CanDeclassifyAll(p, l) {
		t.Fatal("CanDeclassifyAll overbroad")
	}
	if !s.CanDeclassifyAll(p, label.New(t1)) {
		t.Fatal("CanDeclassifyAll too narrow")
	}
}

func TestDelegationCycleDoesNotLoop(t *testing.T) {
	s := NewState(nil)
	det(s)
	owner := s.CreatePrincipal("owner")
	a := s.CreatePrincipal("a")
	b := s.CreatePrincipal("b")
	tg, _ := s.CreateTag(owner, "t")
	if err := s.Delegate(owner, a, tg); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate(a, b, tg); err != nil {
		t.Fatal(err)
	}
	if err := s.Delegate(b, a, tg); err != nil {
		t.Fatal(err)
	}
	// Sever the root; the a<->b cycle must not sustain authority.
	if err := s.Revoke(owner, a, tg); err != nil {
		t.Fatal(err)
	}
	if s.HasAuthority(a, tg) || s.HasAuthority(b, tg) {
		t.Fatal("cycle sustained authority after root revocation")
	}
}

func TestClosureRegistry(t *testing.T) {
	s := NewState(nil)
	det(s)
	owner := s.CreatePrincipal("owner")
	bound := s.CreatePrincipal("bound")
	tg, _ := s.CreateTag(owner, "t")
	reg := NewClosureRegistry(s)

	// Creator must hold the authority being proved.
	stranger := s.CreatePrincipal("stranger")
	if _, err := reg.Register("c1", stranger, bound, label.New(tg)); err == nil {
		t.Fatal("closure laundered authority")
	}
	cl, err := reg.Register("c1", owner, bound, label.New(tg))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := reg.Lookup("c1"); !ok || got.ID != cl.ID {
		t.Fatal("lookup failed")
	}
	if got, ok := reg.Get(cl.ID); !ok || got.Name != "c1" {
		t.Fatal("get failed")
	}
	if _, err := reg.Register("c1", owner, bound, nil); err == nil {
		t.Fatal("duplicate closure name accepted")
	}
	// Only creator or bound principal may drop.
	if err := reg.Drop("c1", stranger); err == nil {
		t.Fatal("stranger dropped closure")
	}
	if err := reg.Drop("c1", owner); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("c1"); ok {
		t.Fatal("closure survives drop")
	}
	if err := reg.Drop("c1", owner); err == nil {
		t.Fatal("dropping missing closure succeeded")
	}
	if _, err := reg.Register("c2", owner, Principal(424242), nil); err == nil {
		t.Fatal("unknown bound principal accepted")
	}
}

func TestTagIDsFit32Bits(t *testing.T) {
	s := NewState(nil)
	p := s.CreatePrincipal("p") // real CSPRNG ids
	for i := 0; i < 50; i++ {
		tg, err := s.CreateTag(p, "", label.Label{}...)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(tg) > 0xFFFFFFFF || tg == label.InvalidTag {
			t.Fatalf("tag id %d out of storage range", tg)
		}
	}
}
