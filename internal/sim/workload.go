package sim

import (
	"fmt"
	"math/rand"
)

// Generate expands a Workload into a concrete Schedule: arrival
// offsets from the arrival process, then per-op cohort, worker,
// statement-class, and argument draws — all from one seeded rng, so
// the same Workload always yields the same Schedule.
func Generate(w Workload) (*Schedule, error) {
	nw, err := w.normalized()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(nw.Seed))
	ats, err := arrivals(nw, rng)
	if err != nil {
		return nil, err
	}

	totalWeight := 0
	for _, c := range nw.Cohorts {
		totalWeight += c.Weight
	}

	// nextKey tracks per-worker ascending keys for the unique-key mode
	// (Keys == 0): worker i draws from [i·uniqueKeyStride, ...).
	nextKey := make([]int64, nw.Workers)
	for i := range nextKey {
		nextKey[i] = int64(i) * uniqueKeyStride
	}

	ops := make([]Op, len(ats))
	for i, at := range ats {
		ci := pickWeighted(rng, nw.Cohorts, totalWeight)
		c := &nw.Cohorts[ci]
		worker := i % nw.Workers
		kind := pickKind(rng, c.Mix)
		op := Op{
			Seq:    int64(i),
			At:     at,
			Worker: worker,
			Cohort: c.Name,
			Kind:   kind,
		}
		if c.PreparedPct > 0 && kind != OpDDL && rng.Intn(100) < c.PreparedPct {
			op.Prepared = true
		}
		fillStatement(&op, nw, ci, rng, nextKey)
		ops[i] = op
	}
	return &Schedule{W: nw, Ops: ops}, nil
}

// pickWeighted draws a cohort index proportionally to Weight.
func pickWeighted(rng *rand.Rand, cohorts []Cohort, total int) int {
	n := rng.Intn(total)
	for i, c := range cohorts {
		n -= c.Weight
		if n < 0 {
			return i
		}
	}
	return len(cohorts) - 1
}

// pickKind draws a statement class proportionally to the mix weights.
func pickKind(rng *rand.Rand, m StmtMix) OpKind {
	n := rng.Intn(m.total())
	if n -= m.PointRead; n < 0 {
		return OpPointRead
	}
	if n -= m.PointWrite; n < 0 {
		return OpPointWrite
	}
	if n -= m.Insert; n < 0 {
		return OpInsert
	}
	if n -= m.Scan; n < 0 {
		return OpScan
	}
	return OpDDL
}

// fillStatement sets the op's SQL text and arguments. Point ops draw
// keys from the cohort's own key domain (see CohortKeyStride) so each
// tenant's writes stay inside rows its own label stamped — the IFDB
// write rule only lets a process update exact-label rows.
func fillStatement(op *Op, w Workload, cohortIdx int, rng *rand.Rand, nextKey []int64) {
	base := int64(cohortIdx) * CohortKeyStride
	key := func() int64 {
		if w.Keys <= 0 {
			k := nextKey[op.Worker]
			nextKey[op.Worker]++
			return base + k
		}
		return base + int64(rng.Intn(w.Keys))
	}
	switch op.Kind {
	case OpPointRead:
		op.SQL = fmt.Sprintf("SELECT v FROM %s WHERE k = $1", w.Table)
		op.Args = []int64{key()}
	case OpPointWrite:
		op.SQL = fmt.Sprintf("UPDATE %s SET v = v + 1 WHERE k = $1", w.Table)
		op.Args = []int64{key()}
	case OpInsert:
		// Inserts always take the unique ascending path so repeated
		// inserts never collide, even when point ops share a small
		// keyspace. Offset past the point-op keyspace.
		k := nextKey[op.Worker]
		nextKey[op.Worker]++
		op.SQL = fmt.Sprintf("INSERT INTO %s VALUES ($1, $2)", w.Table)
		op.Args = []int64{base + int64(w.Keys) + k, rng.Int63n(1_000_000)}
	case OpScan:
		lo := key()
		op.SQL = fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE k >= $1 AND k < $2", w.Table)
		op.Args = []int64{lo, lo + int64(w.ScanSpan)}
	case OpDDL:
		// Rotate through a small fixed set of per-cohort table names;
		// IF NOT EXISTS makes re-running (and replaying) idempotent.
		n := rng.Intn(ddlTables)
		op.SQL = fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s_sim_%s_%d (k INT PRIMARY KEY, v INT)",
			w.Table, op.Cohort, n)
	}
}
