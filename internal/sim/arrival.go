package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// arrivals produces the schedule's arrival offsets (ns from run
// start), one per op, from the workload's arrival process. The closed
// loop returns n zero offsets (ops are issued on completion, not on a
// clock); the open loops draw a Poisson process over Duration, thinned
// for the bursty case.
//
// All draws come from rng, which the caller seeds from Workload.Seed —
// that is the whole determinism story for timing.
func arrivals(w Workload, rng *rand.Rand) ([]int64, error) {
	switch w.Arrival {
	case ArrivalClosed:
		return make([]int64, w.Ops), nil
	case ArrivalPoisson:
		return poissonArrivals(w, rng, nil)
	case ArrivalBursty:
		// Thinned Poisson: draw candidates at the peak rate, accept
		// each with probability rate(t)/peak. The accepted points are
		// a Poisson process with the time-varying rate — the standard
		// thinning construction, and exactly reproducible from the
		// seed because acceptance uses the same rng stream.
		peak := w.Rate * (1 + w.BurstAmp)
		period := w.BurstPeriod.Seconds()
		accept := func(tSec float64) bool {
			rate := w.Rate * (1 + w.BurstAmp*math.Sin(2*math.Pi*tSec/period))
			return rng.Float64()*peak < rate
		}
		return poissonArrivals(w, rng, accept)
	}
	return nil, fmt.Errorf("sim: unknown arrival process %q", w.Arrival)
}

// poissonArrivals draws exponential inter-arrival gaps at the
// workload's peak rate until Duration is exhausted, keeping each point
// iff accept says so (nil accept keeps everything, i.e. homogeneous
// Poisson at w.Rate).
func poissonArrivals(w Workload, rng *rand.Rand, accept func(tSec float64) bool) ([]int64, error) {
	rate := w.Rate
	if accept != nil {
		rate = w.Rate * (1 + w.BurstAmp)
	}
	span := float64(w.Duration.Nanoseconds())
	var out []int64
	t := 0.0
	for {
		// Exponential gap with mean 1/rate seconds, in ns.
		t += rng.ExpFloat64() / rate * 1e9
		if t >= span {
			return out, nil
		}
		if accept != nil && !accept(t/1e9) {
			continue
		}
		if len(out) >= MaxOps {
			return nil, fmt.Errorf("sim: arrival generation exceeded the %d-op cap", MaxOps)
		}
		out = append(out, int64(t))
	}
}
