package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Exec executes one scheduled operation. lap is the schedule cycle
// (0 on the first pass); executors pass it to LapArgs/InlineSQL so
// cycled inserts stay unique and inline texts stay distinct. Returning
// an error counts a failure; the runner keeps going.
type Exec func(op *Op, lap int) error

// Options controls a Run.
type Options struct {
	// Duration is the wall-clock budget. Zero means one pass over the
	// schedule; nonzero stops issuing new ops once elapsed.
	Duration time.Duration
	// Loop cycles the schedule (with an incrementing lap) until
	// Duration elapses. Requires Duration > 0.
	Loop bool
}

// CohortStats aggregates one cohort's outcomes across workers.
type CohortStats struct {
	// Ops counts completed operations (successes and failures).
	Ops int64
	// Failures counts operations whose Exec returned an error.
	Failures int64
	// LatenciesUs holds one sample per successful op, sorted
	// ascending. Closed loop: service time. Open loop: sojourn time
	// (completion minus scheduled arrival), which includes the queueing
	// delay an open arrival process exists to expose.
	LatenciesUs []int64
}

// Percentile returns the q-quantile (0 < q ≤ 1) of the sorted latency
// samples, or 0 with no samples.
func (cs *CohortStats) Percentile(q float64) int64 {
	if len(cs.LatenciesUs) == 0 {
		return 0
	}
	i := int(q*float64(len(cs.LatenciesUs))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(cs.LatenciesUs) {
		i = len(cs.LatenciesUs) - 1
	}
	return cs.LatenciesUs[i]
}

// Stats is a Run's outcome.
type Stats struct {
	// Elapsed is the wall-clock time from first issue to last
	// completion.
	Elapsed time.Duration
	// Cohorts maps cohort name to its aggregated stats. Every cohort
	// in the workload appears, even with zero ops.
	Cohorts map[string]*CohortStats
}

// TotalOps sums completed ops across cohorts.
func (st *Stats) TotalOps() int64 {
	var n int64
	for _, cs := range st.Cohorts {
		n += cs.Ops
	}
	return n
}

// TotalFailures sums failures across cohorts.
func (st *Stats) TotalFailures() int64 {
	var n int64
	for _, cs := range st.Cohorts {
		n += cs.Failures
	}
	return n
}

// Run drives the schedule with one goroutine per workload worker.
// Worker i executes exactly the ops with Op.Worker == i, in schedule
// order — so a replayed trace runs the same ops on the same slots in
// the same per-slot order every time. Under the open loops each op
// additionally waits for its arrival offset, turning the schedule's
// virtual timeline into wall-clock offered load.
//
// exec is called concurrently from all workers and must be safe for
// that (one connection per worker is the usual shape).
func Run(s *Schedule, opts Options, exec Exec) (*Stats, error) {
	if opts.Loop && opts.Duration <= 0 {
		return nil, fmt.Errorf("sim: Loop requires Duration > 0")
	}
	span := s.Span()
	if opts.Loop && s.W.Arrival != ArrivalClosed && span <= 0 {
		return nil, fmt.Errorf("sim: cannot loop an open-loop schedule with no duration")
	}

	// Partition ops by worker once, preserving schedule order.
	parts := make([][]*Op, s.W.Workers)
	for i := range s.Ops {
		op := &s.Ops[i]
		parts[op.Worker] = append(parts[op.Worker], op)
	}

	locals := make([]map[string]*CohortStats, s.W.Workers)
	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}

	var wg sync.WaitGroup
	for wi := 0; wi < s.W.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			local := map[string]*CohortStats{}
			locals[wi] = local
			for lap := 0; ; lap++ {
				for _, op := range parts[wi] {
					if !deadline.IsZero() && time.Now().After(deadline) {
						return
					}
					issued := time.Now()
					if op.At > 0 {
						due := start.Add(time.Duration(int64(lap)*int64(span) + op.At))
						if d := time.Until(due); d > 0 {
							time.Sleep(d)
						}
						issued = due
					}
					err := exec(op, lap)
					cs := local[op.Cohort]
					if cs == nil {
						cs = &CohortStats{}
						local[op.Cohort] = cs
					}
					cs.Ops++
					if err != nil {
						cs.Failures++
					} else {
						cs.LatenciesUs = append(cs.LatenciesUs, time.Since(issued).Microseconds())
					}
				}
				if !opts.Loop {
					return
				}
			}
		}(wi)
	}
	wg.Wait()

	st := &Stats{Elapsed: time.Since(start), Cohorts: map[string]*CohortStats{}}
	for _, c := range s.W.Cohorts {
		st.Cohorts[c.Name] = &CohortStats{}
	}
	for _, local := range locals {
		for name, cs := range local {
			agg := st.Cohorts[name]
			agg.Ops += cs.Ops
			agg.Failures += cs.Failures
			agg.LatenciesUs = append(agg.LatenciesUs, cs.LatenciesUs...)
		}
	}
	for _, cs := range st.Cohorts {
		sort.Slice(cs.LatenciesUs, func(i, j int) bool { return cs.LatenciesUs[i] < cs.LatenciesUs[j] })
	}
	return st, nil
}
