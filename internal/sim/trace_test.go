package sim

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestTraceRoundTrip is the satellite property test: record→replay
// reproduces the schedule exactly — same workload, same ops in the
// same order — for all three generators. Subtests run in parallel so
// `go test -race` exercises concurrent encode/decode.
func TestTraceRoundTrip(t *testing.T) {
	for name, w := range allWorkloads(77) {
		w := w
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			orig, err := Generate(w)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteTrace(&buf, orig); err != nil {
				t.Fatal(err)
			}
			recorded := append([]byte(nil), buf.Bytes()...)

			replayed, err := ReadTrace(&buf)
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if !reflect.DeepEqual(orig.W, replayed.W) {
				t.Fatalf("workload changed in round trip:\n  out: %+v\n  in:  %+v", orig.W, replayed.W)
			}
			if len(orig.Ops) != len(replayed.Ops) {
				t.Fatalf("op count changed: %d -> %d", len(orig.Ops), len(replayed.Ops))
			}
			for i := range orig.Ops {
				if !reflect.DeepEqual(orig.Ops[i], replayed.Ops[i]) {
					t.Fatalf("op %d changed:\n  out: %+v\n  in:  %+v", i, orig.Ops[i], replayed.Ops[i])
				}
			}

			// Re-recording the replayed schedule must reproduce the
			// original bytes — replay loses nothing the format carries.
			var again bytes.Buffer
			if err := WriteTrace(&again, replayed); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(recorded, again.Bytes()) {
				t.Fatalf("re-recorded trace differs from original (%d vs %d bytes)",
					len(recorded), again.Len())
			}
		})
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	s, err := Generate(closedWorkload(13))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.trace")
	if err := WriteTraceFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("file round trip changed the schedule")
	}
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

// mutateTrace returns the valid trace with one line replaced.
func mutateTrace(valid []byte, lineIdx int, repl func(string) string) []byte {
	lines := strings.Split(strings.TrimSuffix(string(valid), "\n"), "\n")
	lines[lineIdx] = repl(lines[lineIdx])
	return []byte(strings.Join(lines, "\n") + "\n")
}

func TestTraceValidation(t *testing.T) {
	valid := traceBytes(t, closedWorkload(21))

	cases := map[string][]byte{
		"empty":      nil,
		"bad header": []byte("{\"nope\":1}\n"),
		"wrong version": mutateTrace(valid, 0, func(l string) string {
			return strings.Replace(l, "\"ifdb_trace\":1", "\"ifdb_trace\":9", 1)
		}),
		"unknown field": mutateTrace(valid, 1, func(l string) string {
			return strings.Replace(l, "\"seq\":0", "\"seq\":0,\"extra\":true", 1)
		}),
		"seq gap": mutateTrace(valid, 1, func(l string) string {
			return strings.Replace(l, "\"seq\":0", "\"seq\":5", 1)
		}),
		"bad kind": mutateTrace(valid, 1, func(l string) string {
			return strings.Replace(l, "\"kind\":\"", "\"kind\":\"x", 1)
		}),
		"unknown cohort": mutateTrace(valid, 1, func(l string) string {
			l = strings.Replace(l, "\"cohort\":\"gold\"", "\"cohort\":\"ghost\"", 1)
			return strings.Replace(l, "\"cohort\":\"silver\"", "\"cohort\":\"ghost\"", 1)
		}),
		"worker range": mutateTrace(valid, 1, func(l string) string {
			return strings.Replace(l, "\"worker\":0", "\"worker\":99", 1)
		}),
		"closed at nonzero": mutateTrace(valid, 1, func(l string) string {
			return strings.Replace(l, "\"at_ns\":0", "\"at_ns\":5", 1)
		}),
		"blank line":    append(append([]byte(nil), valid...), '\n'),
		"trailing junk": mutateTrace(valid, 1, func(l string) string { return l + " garbage" }),
		"truncated op": func() []byte {
			lines := bytes.SplitAfter(valid, []byte("\n"))
			last := lines[len(lines)-2]
			return bytes.Join(append(lines[:len(lines)-2], last[:len(last)/2]), nil)
		}(),
	}
	for name, data := range cases {
		if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt trace accepted", name)
		}
	}

	// Oversized line must error (scanner cap), not allocate unbounded.
	big := append([]byte(nil), valid...)
	big = append(big, bytes.Repeat([]byte("x"), maxTraceLine+10)...)
	if _, err := ReadTrace(bytes.NewReader(big)); err == nil {
		t.Errorf("oversized line accepted")
	}
}
