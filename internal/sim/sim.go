// Package sim is the deterministic workload layer under ifdb-bench:
// seedable arrival-process generators (closed loop, open-loop Poisson,
// bursty/diurnal modulation), tenant cohorts with distinct IFC label
// mixes and statement mixes, and a replayable JSONL trace format.
//
// Determinism is the headline property: the same Workload (seed
// included) always generates the same Schedule, and recording a
// schedule to a trace twice produces byte-identical files — asserted
// by golden tests. That is what makes a benchmark number reproducible
// and a perf regression attributable: two PRs measured under the same
// seed ran the *same operations in the same order*, so the delta is
// the code, not the dice.
//
// The package deliberately knows nothing about connections or servers.
// A Schedule is data; Run drives it against any executor — a single
// Conn per worker, a replicated Router, a sharded Router — which is
// what lets one recorded trace replay against every topology.
package sim

import (
	"fmt"
	"time"
)

// Arrival names an arrival process.
const (
	// ArrivalClosed is the classic closed loop: each worker issues its
	// next operation as soon as the previous one completes. Offered
	// load tracks service rate, so it measures capacity, not queueing.
	ArrivalClosed = "closed"
	// ArrivalPoisson is an open loop: operations arrive on a Poisson
	// process at Workload.Rate regardless of completions, the way
	// independent users arrive. Latency under it includes queueing
	// delay, which the closed loop structurally cannot show.
	ArrivalPoisson = "poisson"
	// ArrivalBursty modulates the Poisson rate sinusoidally
	// (rate(t) = Rate·(1+BurstAmp·sin(2πt/BurstPeriod))) — a compressed
	// diurnal cycle. Tail latencies are made at the crest.
	ArrivalBursty = "bursty"
)

// OpKind is the statement class of one scheduled operation.
type OpKind string

const (
	// OpPointRead is a single-key SELECT.
	OpPointRead OpKind = "read"
	// OpPointWrite is a single-key UPDATE.
	OpPointWrite OpKind = "write"
	// OpInsert is a single-row INSERT (unique keys when
	// Workload.Keys == 0).
	OpInsert OpKind = "insert"
	// OpScan is a bounded range aggregate.
	OpScan OpKind = "scan"
	// OpDDL is a CREATE TABLE IF NOT EXISTS against a small rotating
	// set of per-cohort table names (idempotent, so cycling a schedule
	// stays clean).
	OpDDL OpKind = "ddl"
)

// valid reports whether k is one of the defined kinds.
func (k OpKind) valid() bool {
	switch k {
	case OpPointRead, OpPointWrite, OpInsert, OpScan, OpDDL:
		return true
	}
	return false
}

// Op is one scheduled operation — the unit a trace records and a
// runner executes. Fields are plain integers and strings so the JSONL
// encoding is byte-stable.
type Op struct {
	// Seq is the operation's position in the schedule (0-based,
	// dense). Validated on trace decode: a dropped line is an error,
	// not a silently shorter schedule.
	Seq int64 `json:"seq"`
	// At is the arrival offset from run start in nanoseconds. 0 under
	// the closed loop (issue when the worker is free); monotonically
	// nondecreasing under the open loops.
	At int64 `json:"at_ns"`
	// Worker is the executing worker slot (connection affinity).
	Worker int `json:"worker"`
	// Cohort names the issuing tenant cohort.
	Cohort string `json:"cohort"`
	// Kind is the statement class.
	Kind OpKind `json:"kind"`
	// Prepared asks the executor to run this op through a prepared
	// handle rather than inline/parameterized text.
	Prepared bool `json:"prepared,omitempty"`
	// SQL is the canonical parameterized statement text ($1-style).
	SQL string `json:"sql"`
	// Args are the integer arguments for SQL's placeholders.
	Args []int64 `json:"args,omitempty"`
}

// StmtMix weights the statement classes within a cohort. Weights are
// relative (they need not sum to anything); a zero mix is invalid.
type StmtMix struct {
	PointRead  int `json:"point_read,omitempty"`
	PointWrite int `json:"point_write,omitempty"`
	Insert     int `json:"insert,omitempty"`
	Scan       int `json:"scan,omitempty"`
	DDL        int `json:"ddl,omitempty"`
}

func (m StmtMix) total() int {
	return m.PointRead + m.PointWrite + m.Insert + m.Scan + m.DDL
}

// Cohort is one tenant class: a share of the traffic, an IFC label
// mix (tag names the harness resolves against each server), and a
// statement mix.
type Cohort struct {
	// Name identifies the cohort in ops, stats, and reports.
	Name string `json:"name"`
	// Weight is the cohort's relative share of arrivals.
	Weight int `json:"weight"`
	// Tags are the secrecy tag names forming the cohort's process
	// label. The generator records them; the executor resolves names
	// to tag IDs per server and runs the cohort's sessions
	// contaminated with them, so writes are stamped per-tenant and
	// Query by Label confines reads.
	Tags []string `json:"tags,omitempty"`
	// Mix weights the cohort's statement classes.
	Mix StmtMix `json:"mix"`
	// PreparedPct is the percentage of this cohort's ops flagged for
	// prepared-handle execution (the rest run as parameterized text,
	// or inline literals if the executor chooses).
	PreparedPct int `json:"prepared_pct,omitempty"`
}

// Workload is the full generator configuration. It is embedded in the
// trace header, so a replayed schedule carries its own provenance.
type Workload struct {
	// Seed drives every random choice. Same seed, same schedule.
	Seed int64 `json:"seed"`
	// Arrival picks the arrival process (ArrivalClosed if empty).
	Arrival string `json:"arrival"`
	// Workers is the number of executor slots ops are spread over.
	Workers int `json:"workers"`
	// Ops bounds the closed-loop schedule length. Ignored by the open
	// loops, whose length is Rate×Duration.
	Ops int `json:"ops,omitempty"`
	// Duration is the open-loop virtual time span.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Rate is the open-loop mean arrival rate (ops/sec).
	Rate float64 `json:"rate,omitempty"`
	// BurstAmp is the bursty modulation amplitude in [0,1)
	// (default 0.8): peak rate is Rate·(1+BurstAmp).
	BurstAmp float64 `json:"burst_amp,omitempty"`
	// BurstPeriod is the bursty modulation period (default
	// Duration/4).
	BurstPeriod time.Duration `json:"burst_period_ns,omitempty"`
	// Table is the target table name.
	Table string `json:"table"`
	// Keys is the per-cohort keyspace size for point ops. 0 means
	// unique ascending keys per worker (insert-only workloads).
	Keys int `json:"keys,omitempty"`
	// ScanSpan is the range width of OpScan (default 64 keys).
	ScanSpan int `json:"scan_span,omitempty"`
	// Cohorts are the tenant classes sharing the schedule.
	Cohorts []Cohort `json:"cohorts"`
}

// Generation limits: a misconfigured rate must fail loudly, not
// allocate without bound.
const (
	// MaxOps caps the number of operations one schedule may hold.
	MaxOps = 1 << 22
	// maxCohorts bounds the cohort list (also enforced on decode).
	maxCohorts = 4096
	// maxWorkers bounds worker slots (also enforced on decode).
	maxWorkers = 1 << 16
)

// CohortKeyStride separates cohort key domains: cohort i's point ops
// draw keys from [i·CohortKeyStride, i·CohortKeyStride+Keys). Distinct
// domains keep IFC write rules clean — a tenant only rewrites rows its
// own label stamped.
const CohortKeyStride = int64(1) << 20

// uniqueKeyStride separates per-worker unique-key ranges when
// Keys == 0.
const uniqueKeyStride = int64(1) << 40

// LapKeyStride offsets insert keys per schedule lap so cycling a
// finite schedule for a fixed wall-clock duration stays unique-key
// clean. See LapArgs.
const LapKeyStride = int64(1) << 32

// ddlTables is the size of the rotating per-cohort DDL table-name set.
const ddlTables = 16

// normalized fills defaults and validates. The returned Workload is
// what Generate uses and what the trace header records, so defaults
// are pinned at generation time and replay cannot drift.
func (w Workload) normalized() (Workload, error) {
	if w.Arrival == "" {
		w.Arrival = ArrivalClosed
	}
	switch w.Arrival {
	case ArrivalClosed, ArrivalPoisson, ArrivalBursty:
	default:
		return w, fmt.Errorf("sim: unknown arrival process %q", w.Arrival)
	}
	if w.Workers <= 0 || w.Workers > maxWorkers {
		return w, fmt.Errorf("sim: workers must be in [1,%d], got %d", maxWorkers, w.Workers)
	}
	if w.Table == "" {
		return w, fmt.Errorf("sim: empty table name")
	}
	if len(w.Cohorts) == 0 || len(w.Cohorts) > maxCohorts {
		return w, fmt.Errorf("sim: cohort count must be in [1,%d], got %d", maxCohorts, len(w.Cohorts))
	}
	seen := map[string]bool{}
	for i, c := range w.Cohorts {
		if c.Name == "" {
			return w, fmt.Errorf("sim: cohort %d has no name", i)
		}
		if seen[c.Name] {
			return w, fmt.Errorf("sim: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight <= 0 {
			return w, fmt.Errorf("sim: cohort %q weight must be positive", c.Name)
		}
		if c.Mix.total() <= 0 {
			return w, fmt.Errorf("sim: cohort %q has an empty statement mix", c.Name)
		}
		if c.PreparedPct < 0 || c.PreparedPct > 100 {
			return w, fmt.Errorf("sim: cohort %q prepared_pct out of [0,100]", c.Name)
		}
	}
	if w.ScanSpan <= 0 {
		w.ScanSpan = 64
	}
	switch w.Arrival {
	case ArrivalClosed:
		if w.Ops <= 0 {
			return w, fmt.Errorf("sim: closed loop needs ops > 0")
		}
		if w.Ops > MaxOps {
			return w, fmt.Errorf("sim: ops %d exceeds cap %d", w.Ops, MaxOps)
		}
	default:
		if w.Rate <= 0 || w.Duration <= 0 {
			return w, fmt.Errorf("sim: open loop needs rate > 0 and duration > 0")
		}
		if est := w.Rate * w.Duration.Seconds() * 2; est > MaxOps {
			return w, fmt.Errorf("sim: rate %.0f over %v could exceed the %d-op cap", w.Rate, w.Duration, MaxOps)
		}
		if w.Arrival == ArrivalBursty {
			if w.BurstAmp == 0 {
				w.BurstAmp = 0.8
			}
			if w.BurstAmp < 0 || w.BurstAmp >= 1 {
				return w, fmt.Errorf("sim: burst_amp must be in [0,1), got %g", w.BurstAmp)
			}
			if w.BurstPeriod <= 0 {
				w.BurstPeriod = w.Duration / 4
			}
		}
	}
	return w, nil
}

// Schedule is a generated (or replayed) operation sequence plus the
// normalized workload that produced it.
type Schedule struct {
	W   Workload
	Ops []Op
}

// Span is the schedule's virtual time extent: the open-loop Duration,
// or 0 for the closed loop (whose ops carry no arrival times).
func (s *Schedule) Span() time.Duration {
	if s.W.Arrival == ArrivalClosed {
		return 0
	}
	return s.W.Duration
}

// LapArgs returns the op's arguments adjusted for schedule lap: when
// a finite schedule is cycled to fill a wall-clock duration, insert
// keys are offset by lap·LapKeyStride so every lap inserts fresh keys.
// Other kinds return Args unchanged. The result aliases Args when no
// adjustment applies.
func (op *Op) LapArgs(lap int) []int64 {
	if lap == 0 || op.Kind != OpInsert || len(op.Args) == 0 {
		return op.Args
	}
	out := make([]int64, len(op.Args))
	copy(out, op.Args)
	out[0] += int64(lap) * LapKeyStride
	return out
}

// InlineSQL renders the op as a self-contained literal statement — the
// naive interpolating-application pattern. Point reads get a
// lap-unique tautology suffix so every rendered text is distinct (the
// worst case for a parse cache, which is the point of the inline
// mode). lap keeps replayed cycles distinct too.
func (op *Op) InlineSQL(lap int) string {
	args := op.LapArgs(lap)
	switch op.Kind {
	case OpPointRead:
		nonce := op.Seq + int64(lap)*1_000_003
		return fmt.Sprintf("SELECT v FROM %s WHERE k = %d AND %d >= 0", tableOf(op.SQL), args[0], nonce)
	case OpPointWrite:
		return fmt.Sprintf("UPDATE %s SET v = v + 1 WHERE k = %d", tableOf(op.SQL), args[0])
	case OpInsert:
		return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", tableOf(op.SQL), args[0], args[1])
	case OpScan:
		return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE k >= %d AND k < %d", tableOf(op.SQL), args[0], args[1])
	default: // DDL carries no placeholders; its text is already inline.
		return op.SQL
	}
}

// tableOf recovers the table name from the canonical statement text.
// The canonical forms put the table as the token after FROM/INTO/
// UPDATE, so a cheap scan suffices — ops are generator-made, not
// user input.
func tableOf(sql string) string {
	var prev, cur string
	start := -1
	for i := 0; i <= len(sql); i++ {
		if i < len(sql) && sql[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			prev, cur = cur, sql[start:i]
			start = -1
			switch prev {
			case "FROM", "INTO", "UPDATE":
				return cur
			}
		}
	}
	return ""
}
