package sim

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSeedTrace is a small valid trace used to seed the corpus and the
// deterministic corruption sweeps.
func fuzzSeedTrace(t *testing.T) []byte {
	t.Helper()
	w := closedWorkload(99)
	w.Ops = 24
	return traceBytes(t, w)
}

// FuzzReadTrace feeds arbitrary bytes to the trace decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same schedule (accepted input is canonical-equivalent, never
// half-parsed garbage).
func FuzzReadTrace(f *testing.F) {
	w := closedWorkload(99)
	w.Ops = 24
	s, err := Generate(w)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(""))
	f.Add([]byte("{\"ifdb_trace\":1}\n"))
	f.Add(bytes.Repeat([]byte("{"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteTrace(&re, got); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(again.Ops) != len(got.Ops) {
			t.Fatalf("re-decode changed op count: %d -> %d", len(got.Ops), len(again.Ops))
		}
	})
}

// TestCorruptTraceFuzz is the deterministic corruption sweep (same
// style as the wire-frame fuzzers): every truncation point, thousands
// of seeded random byte flips, flip-then-truncate, and pure garbage.
// The decoder must return an error or a valid schedule — never panic,
// never accept a trace whose op count disagrees with its sequence
// numbers.
func TestCorruptTraceFuzz(t *testing.T) {
	valid := fuzzSeedTrace(t)

	decode := func(data []byte) {
		s, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range s.Ops {
			if s.Ops[i].Seq != int64(i) {
				t.Fatalf("accepted trace with bad seq at %d", i)
			}
		}
	}

	// Every truncation point.
	for n := 0; n <= len(valid); n++ {
		decode(valid[:n])
	}

	// Seeded random flips, occasionally truncated afterwards.
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), valid...)
		for f := 0; f < 1+rng.Intn(4); f++ {
			pos := rng.Intn(len(data))
			data[pos] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(4) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		decode(data)
	}

	// Pure garbage.
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(2048))
		rng.Read(data)
		decode(data)
	}
}
