package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace format: line-oriented JSON. The first line is a header
// carrying the format version and the normalized Workload that
// produced the schedule; each subsequent line is one Op in schedule
// order. Encoding uses encoding/json with struct-ordered fields and
// no timestamps, so writing the same schedule twice produces
// byte-identical files — the property the golden tests pin.

// TraceVersion is the trace format version. Decoders reject other
// versions rather than guessing.
const TraceVersion = 1

// maxTraceLine bounds one trace line. A corrupt or adversarial file
// must not make the decoder buffer without limit.
const maxTraceLine = 1 << 20

// maxTraceArgs bounds an op's argument list on decode. Generated ops
// carry at most two arguments; anything large is corruption.
const maxTraceArgs = 64

type traceHeader struct {
	Version  int      `json:"ifdb_trace"`
	Workload Workload `json:"workload"`
}

// WriteTrace encodes the schedule to w in trace format.
func WriteTrace(w io.Writer, s *Schedule) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Version: TraceVersion, Workload: s.W}); err != nil {
		return fmt.Errorf("sim: encode trace header: %w", err)
	}
	for i := range s.Ops {
		if err := enc.Encode(&s.Ops[i]); err != nil {
			return fmt.Errorf("sim: encode op %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile records the schedule to path (0644, truncating).
func WriteTraceFile(path string, s *Schedule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTrace decodes a trace and validates it strictly: version match,
// workload re-validation, dense sequence numbers, known op kinds,
// bounded args, workers within the workload's range, cohorts that
// exist, and nondecreasing arrival offsets. A trace that fails any of
// these is rejected whole — replaying half a schedule would produce a
// number that looks comparable and is not.
func ReadTrace(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTraceLine)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sim: read trace header: %w", err)
		}
		return nil, fmt.Errorf("sim: empty trace")
	}
	var hdr traceHeader
	if err := strictUnmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("sim: decode trace header: %w", err)
	}
	if hdr.Version != TraceVersion {
		return nil, fmt.Errorf("sim: unsupported trace version %d (want %d)", hdr.Version, TraceVersion)
	}
	w, err := hdr.Workload.normalized()
	if err != nil {
		return nil, fmt.Errorf("sim: trace header workload: %w", err)
	}
	cohorts := make(map[string]bool, len(w.Cohorts))
	for _, c := range w.Cohorts {
		cohorts[c.Name] = true
	}

	var ops []Op
	var lastAt int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			return nil, fmt.Errorf("sim: blank line at op %d", len(ops))
		}
		if len(ops) >= MaxOps {
			return nil, fmt.Errorf("sim: trace exceeds the %d-op cap", MaxOps)
		}
		var op Op
		if err := strictUnmarshal(line, &op); err != nil {
			return nil, fmt.Errorf("sim: decode op %d: %w", len(ops), err)
		}
		if op.Seq != int64(len(ops)) {
			return nil, fmt.Errorf("sim: op %d has seq %d (trace truncated or reordered)", len(ops), op.Seq)
		}
		if !op.Kind.valid() {
			return nil, fmt.Errorf("sim: op %d has unknown kind %q", op.Seq, op.Kind)
		}
		if op.Worker < 0 || op.Worker >= w.Workers {
			return nil, fmt.Errorf("sim: op %d worker %d out of range [0,%d)", op.Seq, op.Worker, w.Workers)
		}
		if !cohorts[op.Cohort] {
			return nil, fmt.Errorf("sim: op %d names unknown cohort %q", op.Seq, op.Cohort)
		}
		if len(op.Args) > maxTraceArgs {
			return nil, fmt.Errorf("sim: op %d has %d args (cap %d)", op.Seq, len(op.Args), maxTraceArgs)
		}
		if op.SQL == "" {
			return nil, fmt.Errorf("sim: op %d has empty sql", op.Seq)
		}
		if op.At < lastAt {
			return nil, fmt.Errorf("sim: op %d arrival %d precedes op %d arrival %d", op.Seq, op.At, op.Seq-1, lastAt)
		}
		if w.Arrival == ArrivalClosed && op.At != 0 {
			return nil, fmt.Errorf("sim: op %d has arrival offset %d in a closed-loop trace", op.Seq, op.At)
		}
		lastAt = op.At
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: read trace: %w", err)
	}
	return &Schedule{W: w, Ops: ops}, nil
}

// ReadTraceFile replays a trace from path.
func ReadTraceFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// strictUnmarshal decodes one JSON value, rejecting unknown fields and
// trailing data — both are corruption in a generator-written trace.
func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
