package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// closedWorkload is the reference closed-loop workload the golden test
// pins. Closed-loop generation draws only integer rng values, so its
// trace bytes are stable across platforms (no float formatting in
// play) and safe to commit.
func closedWorkload(seed int64) Workload {
	return Workload{
		Seed:    seed,
		Arrival: ArrivalClosed,
		Workers: 4,
		Ops:     200,
		Table:   "kv",
		Keys:    256,
		Cohorts: []Cohort{
			{Name: "gold", Weight: 3, Tags: []string{"t_gold"},
				Mix: StmtMix{PointRead: 8, PointWrite: 2}, PreparedPct: 100},
			{Name: "silver", Weight: 1, Tags: []string{"t_silver"},
				Mix: StmtMix{PointRead: 4, PointWrite: 2, Insert: 2, Scan: 1, DDL: 1}},
		},
	}
}

func openWorkload(seed int64, arrival string) Workload {
	return Workload{
		Seed:     seed,
		Arrival:  arrival,
		Workers:  4,
		Duration: 2 * time.Second,
		Rate:     500,
		Table:    "kv",
		Keys:     256,
		Cohorts: []Cohort{
			{Name: "gold", Weight: 3, Tags: []string{"t_gold"},
				Mix: StmtMix{PointRead: 8, PointWrite: 2}, PreparedPct: 50},
			{Name: "silver", Weight: 1,
				Mix: StmtMix{PointRead: 4, PointWrite: 2, Insert: 2, Scan: 1, DDL: 1}},
		},
	}
}

func allWorkloads(seed int64) map[string]Workload {
	return map[string]Workload{
		ArrivalClosed:  closedWorkload(seed),
		ArrivalPoisson: openWorkload(seed, ArrivalPoisson),
		ArrivalBursty:  openWorkload(seed, ArrivalBursty),
	}
}

func traceBytes(t *testing.T, w Workload) []byte {
	t.Helper()
	s, err := Generate(w)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// TestGenerateDeterministic is the headline property: same seed, same
// workload ⇒ byte-identical trace, for every arrival process; and a
// different seed actually changes the schedule.
func TestGenerateDeterministic(t *testing.T) {
	for name, w := range allWorkloads(42) {
		t.Run(name, func(t *testing.T) {
			a := traceBytes(t, w)
			b := traceBytes(t, w)
			if !bytes.Equal(a, b) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
			}
			w2 := w
			w2.Seed = 43
			if bytes.Equal(a, traceBytes(t, w2)) {
				t.Fatalf("different seeds produced identical traces")
			}
		})
	}
}

// TestClosedLoopGolden pins the closed-loop trace bytes for seed 42.
// Regenerate with: SIM_UPDATE_GOLDEN=1 go test ./internal/sim -run Golden
func TestClosedLoopGolden(t *testing.T) {
	got := traceBytes(t, closedWorkload(42))
	path := filepath.Join("testdata", "closed_seed42.trace")
	if os.Getenv("SIM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with SIM_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from golden: got %d bytes, want %d", len(got), len(want))
	}
}

func TestGenerateShape(t *testing.T) {
	s, err := Generate(closedWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 200 {
		t.Fatalf("ops = %d, want 200", len(s.Ops))
	}
	cohorts := map[string]int{}
	kinds := map[OpKind]int{}
	for i, op := range s.Ops {
		if op.Seq != int64(i) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
		if op.At != 0 {
			t.Fatalf("closed-loop op %d has arrival %d", i, op.At)
		}
		if op.Worker != i%4 {
			t.Fatalf("op %d on worker %d, want %d", i, op.Worker, i%4)
		}
		cohorts[op.Cohort]++
		kinds[op.Kind]++
		if op.Cohort == "gold" && op.Kind != OpDDL && !op.Prepared {
			t.Fatalf("gold op %d not prepared despite PreparedPct 100", i)
		}
	}
	if cohorts["gold"] == 0 || cohorts["silver"] == 0 {
		t.Fatalf("cohort draw skipped a cohort: %v", cohorts)
	}
	if kinds[OpPointRead] == 0 || kinds[OpPointWrite] == 0 {
		t.Fatalf("kind draw skipped a class: %v", kinds)
	}
}

func TestOpenLoopArrivalsMonotone(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalBursty} {
		s, err := Generate(openWorkload(9, arrival))
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Ops) == 0 {
			t.Fatalf("%s generated no ops", arrival)
		}
		var last int64
		for _, op := range s.Ops {
			if op.At < last {
				t.Fatalf("%s arrival regressed at seq %d: %d < %d", arrival, op.Seq, op.At, last)
			}
			last = op.At
		}
		if last >= s.W.Duration.Nanoseconds() {
			t.Fatalf("%s arrival %d past duration %d", arrival, last, s.W.Duration.Nanoseconds())
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	base := closedWorkload(1)
	cases := map[string]func(*Workload){
		"bad arrival":    func(w *Workload) { w.Arrival = "warp" },
		"no workers":     func(w *Workload) { w.Workers = 0 },
		"no table":       func(w *Workload) { w.Table = "" },
		"no cohorts":     func(w *Workload) { w.Cohorts = nil },
		"dup cohort":     func(w *Workload) { w.Cohorts[1].Name = w.Cohorts[0].Name },
		"zero weight":    func(w *Workload) { w.Cohorts[0].Weight = 0 },
		"empty mix":      func(w *Workload) { w.Cohorts[0].Mix = StmtMix{} },
		"bad prepared":   func(w *Workload) { w.Cohorts[0].PreparedPct = 101 },
		"closed no ops":  func(w *Workload) { w.Ops = 0 },
		"ops over cap":   func(w *Workload) { w.Ops = MaxOps + 1 },
		"open no rate":   func(w *Workload) { w.Arrival = ArrivalPoisson; w.Rate = 0 },
		"rate over cap":  func(w *Workload) { w.Arrival = ArrivalPoisson; w.Rate = 1e12; w.Duration = time.Hour },
		"bad burst amp":  func(w *Workload) { w.Arrival = ArrivalBursty; w.Rate = 10; w.Duration = time.Second; w.BurstAmp = 1.5 },
		"cohort no name": func(w *Workload) { w.Cohorts[0].Name = "" },
	}
	for name, mutate := range cases {
		w := base
		w.Cohorts = append([]Cohort(nil), base.Cohorts...)
		mutate(&w)
		if _, err := Generate(w); err == nil {
			t.Errorf("%s: Generate accepted an invalid workload", name)
		}
	}
}

func TestRunClosedLoop(t *testing.T) {
	s, err := Generate(closedWorkload(3))
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	st, err := Run(s, Options{}, func(op *Op, lap int) error {
		calls.Add(1)
		if op.Kind == OpDDL {
			return os.ErrInvalid // exercise the failure path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 200 || st.TotalOps() != 200 {
		t.Fatalf("calls=%d totalOps=%d, want 200", calls.Load(), st.TotalOps())
	}
	var wantFail int64
	for _, op := range s.Ops {
		if op.Kind == OpDDL {
			wantFail++
		}
	}
	if st.TotalFailures() != wantFail {
		t.Fatalf("failures=%d, want %d", st.TotalFailures(), wantFail)
	}
	for name, cs := range st.Cohorts {
		if int64(len(cs.LatenciesUs)) != cs.Ops-cs.Failures {
			t.Fatalf("cohort %s: %d samples for %d successes", name, len(cs.LatenciesUs), cs.Ops-cs.Failures)
		}
		for i := 1; i < len(cs.LatenciesUs); i++ {
			if cs.LatenciesUs[i] < cs.LatenciesUs[i-1] {
				t.Fatalf("cohort %s latencies not sorted", name)
			}
		}
	}
}

func TestRunLoopCyclesSchedule(t *testing.T) {
	w := closedWorkload(5)
	w.Ops = 16
	s, err := Generate(w)
	if err != nil {
		t.Fatal(err)
	}
	maxLap := make([]atomic.Int64, w.Workers)
	st, err := Run(s, Options{Duration: 150 * time.Millisecond, Loop: true}, func(op *Op, lap int) error {
		if cur := maxLap[op.Worker].Load(); int64(lap) > cur {
			maxLap[op.Worker].Store(int64(lap))
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalOps() <= 16 {
		t.Fatalf("loop mode completed only %d ops over one schedule of 16", st.TotalOps())
	}
	var sawLap bool
	for i := range maxLap {
		if maxLap[i].Load() > 0 {
			sawLap = true
		}
	}
	if !sawLap {
		t.Fatalf("no worker advanced past lap 0")
	}
	if _, err := Run(s, Options{Loop: true}, func(*Op, int) error { return nil }); err == nil {
		t.Fatalf("Loop without Duration accepted")
	}
}

func TestRunOpenLoopExecutesAll(t *testing.T) {
	w := openWorkload(11, ArrivalPoisson)
	w.Duration = 300 * time.Millisecond
	w.Rate = 2000
	s, err := Generate(w)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	st, err := Run(s, Options{}, func(op *Op, lap int) error {
		calls.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != int64(len(s.Ops)) {
		t.Fatalf("executed %d of %d ops", calls.Load(), len(s.Ops))
	}
	// Pacing: the last arrival is inside Duration, so the run should
	// take a meaningful fraction of it (loose bound to stay unflaky).
	if st.Elapsed < w.Duration/10 {
		t.Fatalf("open loop finished in %v — pacing not applied", st.Elapsed)
	}
}

func TestLapArgsAndInlineSQL(t *testing.T) {
	ins := Op{Seq: 9, Kind: OpInsert, SQL: "INSERT INTO kv VALUES ($1, $2)", Args: []int64{100, 7}}
	if got := ins.LapArgs(0); &got[0] != &ins.Args[0] {
		t.Fatalf("lap 0 should alias Args")
	}
	l2 := ins.LapArgs(2)
	if l2[0] != 100+2*LapKeyStride || l2[1] != 7 {
		t.Fatalf("lap 2 args = %v", l2)
	}
	if ins.Args[0] != 100 {
		t.Fatalf("LapArgs mutated the op")
	}

	rd := Op{Seq: 5, Kind: OpPointRead, SQL: "SELECT v FROM kv WHERE k = $1", Args: []int64{33}}
	a, b := rd.InlineSQL(0), rd.InlineSQL(1)
	if a == b {
		t.Fatalf("inline nonce did not vary by lap: %q", a)
	}
	if !strings.Contains(a, "FROM kv") || !strings.Contains(a, "k = 33") {
		t.Fatalf("inline read = %q", a)
	}
	up := Op{Kind: OpPointWrite, SQL: "UPDATE kv SET v = v + 1 WHERE k = $1", Args: []int64{4}}
	if got := up.InlineSQL(0); got != "UPDATE kv SET v = v + 1 WHERE k = 4" {
		t.Fatalf("inline write = %q", got)
	}
	sc := Op{Kind: OpScan, SQL: "SELECT COUNT(*) FROM kv WHERE k >= $1 AND k < $2", Args: []int64{10, 74}}
	if got := sc.InlineSQL(0); got != "SELECT COUNT(*) FROM kv WHERE k >= 10 AND k < 74" {
		t.Fatalf("inline scan = %q", got)
	}
	ddl := Op{Kind: OpDDL, SQL: "CREATE TABLE IF NOT EXISTS kv_sim_gold_3 (k INT PRIMARY KEY, v INT)"}
	if got := ddl.InlineSQL(5); got != ddl.SQL {
		t.Fatalf("inline ddl = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	cs := &CohortStats{LatenciesUs: []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	if p := cs.Percentile(0.5); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := cs.Percentile(1.0); p != 10 {
		t.Fatalf("p100 = %d", p)
	}
	if p := (&CohortStats{}).Percentile(0.5); p != 0 {
		t.Fatalf("empty p50 = %d", p)
	}
}
