package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func testRecords() []Record {
	return []Record{
		{Type: RecBegin, XID: 7},
		{Type: RecInsert, XID: 7, Table: "patients", TID: 42,
			Label:  label.New(3, 9),
			ILabel: label.New(5),
			Row:    []types.Value{types.NewInt(1), types.NewText("bob"), types.Null}},
		{Type: RecSetXmax, XID: 7, Table: "patients", TID: 41},
		{Type: RecCommit, XID: 7, Seq: 12},
		{Type: RecAbort, XID: 8},
		{Type: RecDDL, Principal: 99, Text: "CREATE TABLE t (a BIGINT)"},
		{Type: RecPrincipal, Principal: 1234, Text: "alice"},
		{Type: RecTag, Tag: 77, Owner: 1234, Text: "alice_medical", Parents: []uint64{70, 71}},
		{Type: RecDelegate, Tag: 77, From: 1234, To: 4321},
		{Type: RecRevoke, Tag: 77, From: 1234, To: 4321},
		{Type: RecSeqVal, Text: "ids", SeqKey: "{3}", Value: 41},
		{Type: RecCheckpointBegin},
		{Type: RecCheckpointEnd},
	}
}

func openTemp(t *testing.T, mode SyncMode) (*Writer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, mode)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w, path
}

func TestRoundTripAllRecordTypes(t *testing.T) {
	w, path := openTemp(t, SyncCommit)
	want := testRecords()
	for i := range want {
		if _, err := w.Append(&want[i]); err != nil {
			t.Fatalf("append %v: %v", want[i].Type, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got, torn, err := ReadAll(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if torn {
		t.Fatalf("unexpected torn tail")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		g := got[i]
		g.LSN = 0 // assigned by the log
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("record %d: got %+v want %+v", i, g, want[i])
		}
	}
}

func TestLSNsAreMonotonic(t *testing.T) {
	w, path := openTemp(t, SyncOff)
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, err := w.Append(&Record{Type: RecBegin, XID: storage.XID(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	w.Close()
	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.LSN != lsns[i] {
			t.Fatalf("record %d: lsn %d, appended at %d", i, r.LSN, lsns[i])
		}
		if i > 0 && r.LSN <= recs[i-1].LSN {
			t.Fatalf("lsn not monotonic at %d", i)
		}
	}
}

// TestTornTail truncates the log at every byte boundary inside the
// last record and checks the prefix always reads back intact.
func TestTornTail(t *testing.T) {
	w, path := openTemp(t, SyncCommit)
	recs := testRecords()
	for i := range recs {
		if _, err := w.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := ReadAll(path)
	if err != nil || len(all) != len(recs) {
		t.Fatalf("baseline read: %d records, err %v", len(all), err)
	}
	lastStart := int(all[len(all)-1].LSN)
	for cut := lastStart; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, torn, err := ReadAll(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != len(recs)-1 {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(got), len(recs)-1)
		}
		if cut > lastStart && !torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
	}
}

// TestCorruptTailFuzz flips random bytes in the tail of the log: the
// reader must never error, and records before the corruption must
// survive. Then Open must truncate the damage and support appending.
func TestCorruptTailFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		path := filepath.Join(t.TempDir(), "wal.log")
		w, err := Open(path, SyncOff)
		if err != nil {
			t.Fatal(err)
		}
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			if _, err := w.Append(&Record{Type: RecInsert, XID: storage.XID(i + 1), Table: "t",
				TID: storage.TID(i), Row: []types.Value{types.NewInt(int64(i))}}); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()

		full, _ := os.ReadFile(path)
		all, _, _ := ReadAll(path)
		if len(all) != n {
			t.Fatalf("trial %d: baseline %d != %d", trial, len(all), n)
		}
		// Corrupt one byte at or after the start of a randomly chosen
		// suffix of records.
		victim := rng.Intn(n)
		start := int(all[victim].LSN)
		pos := start + rng.Intn(len(full)-start)
		full[pos] ^= 0xFF
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}

		got, _, err := ReadAll(path)
		if err != nil {
			t.Fatalf("trial %d: read after corruption: %v", trial, err)
		}
		if len(got) < victim {
			t.Fatalf("trial %d: lost intact records before the corruption: %d < %d", trial, len(got), victim)
		}
		for i := 0; i < victim && i < len(got); i++ {
			if got[i].XID != storage.XID(i+1) {
				t.Fatalf("trial %d: record %d corrupted silently", trial, i)
			}
		}

		// Reopen for append: the tear is truncated, new records land
		// cleanly after the surviving prefix.
		w2, err := Open(path, SyncOff)
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		if _, err := w2.Append(&Record{Type: RecCommit, XID: 999, Seq: 5}); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		after, torn, err := ReadAll(path)
		if err != nil || torn {
			t.Fatalf("trial %d: after reopen: torn=%v err=%v", trial, torn, err)
		}
		if len(after) == 0 || after[len(after)-1].Type != RecCommit {
			t.Fatalf("trial %d: appended record missing after reopen", trial)
		}
	}
}

func TestCheckpointTruncates(t *testing.T) {
	w, path := openTemp(t, SyncCommit)
	for i := 0; i < 5; i++ {
		if _, err := w.Append(&Record{Type: RecBegin, XID: storage.XID(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	captured := false
	if err := w.Checkpoint(func(LSN) error { captured = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !captured {
		t.Fatal("capture not invoked")
	}
	if _, err := w.Append(&Record{Type: RecBegin, XID: 100}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != RecCheckpointEnd || recs[1].XID != 100 {
		t.Fatalf("after checkpoint: %+v", recs)
	}
}

func TestCheckpointCaptureErrorLeavesLog(t *testing.T) {
	w, path := openTemp(t, SyncOff)
	if _, err := w.Append(&Record{Type: RecBegin, XID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(func(LSN) error { return os.ErrInvalid }); err == nil {
		t.Fatal("expected capture error")
	}
	w.Close()
	recs, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	// The failed checkpoint's begin marker may follow, but the
	// original record must survive.
	if len(recs) == 0 || recs[0].Type != RecBegin || recs[0].XID != 1 {
		t.Fatalf("log damaged by failed checkpoint: %+v", recs)
	}
}

// TestCheckpointDuringGroupCommit interleaves checkpoints with
// concurrent committers: no committer may hang waiting on a
// pre-checkpoint LSN (the snapshot covers it), and durable positions
// must stay monotonic so post-checkpoint commits still fsync.
func TestCheckpointDuringGroupCommit(t *testing.T) {
	w, _ := openTemp(t, SyncGroup)
	defer w.Close()
	const writers = 8
	const perWriter = 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := w.Append(&Record{Type: RecCommit, XID: storage.XID(g*1000 + i), Seq: 1})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(g)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if err := w.Checkpoint(func(LSN) error { return nil }); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("committers hung across a checkpoint")
	}
	close(stop)
}

// TestGroupCommitBatches drives concurrent committers through
// WaitDurable and checks that fsyncs were shared: far fewer syncs
// than commits.
func TestGroupCommitBatches(t *testing.T) {
	w, _ := openTemp(t, SyncGroup)
	defer w.Close()
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := w.Append(&Record{Type: RecCommit, XID: storage.XID(g*1000 + i), Seq: 1})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(writers * perWriter)
	if w.Syncs >= total {
		t.Fatalf("group commit did not batch: %d syncs for %d commits", w.Syncs, total)
	}
	t.Logf("group commit: %d commits in %d fsyncs", total, w.Syncs)
}
