// Package wal implements the write-ahead log underneath the IFDB
// engine: an append-only file of CRC-protected, typed records that
// makes commits durable and the whole in-memory state (catalog,
// heaps, authority) reconstructible after a crash.
//
// The paper's prototype inherited durability from PostgreSQL's WAL;
// this package supplies the equivalent for the Go reproduction. The
// log is *logical*: it records tuple-level and catalog-level events
// (insert, xmax stamp, DDL statement, authority change) rather than
// page images, and recovery replays them in LSN order against the
// last checkpoint snapshot. Replay is idempotent — a record whose
// effect is already present (because a dirty page was flushed, or the
// checkpoint raced the append) is skipped — so the engine may apply a
// mutation first and log it second without a global quiesce.
//
// Commit ordering: commit records are appended while the transaction
// manager holds its commit mutex, so log order equals commit-sequence
// order and an fsync at LSN L makes every commit at or before L
// durable. Group commit (SyncGroup) exploits exactly that prefix
// property: one leader fsyncs on behalf of every committer that
// appended while the previous fsync was in flight.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// LSN is a log sequence number: the logical byte offset of a
// record's frame in the append stream. LSNs are monotonic for the
// life of a Writer — a checkpoint truncates the *file* but does not
// reset the logical stream, so durability positions never regress
// and a committer waiting on a pre-checkpoint LSN is satisfied the
// moment the checkpoint covers it. In a freshly opened log the LSN
// equals the file offset.
type LSN uint64

// headerSize is the length of the file header ("IFDBWAL1"); the first
// record lives at LSN 8.
const headerSize = 8

var fileMagic = [headerSize]byte{'I', 'F', 'D', 'B', 'W', 'A', 'L', '1'}

// SyncMode selects the durability discipline for commits.
type SyncMode uint8

const (
	// SyncOff never fsyncs: commits are durable only as the OS flushes.
	SyncOff SyncMode = iota
	// SyncCommit fsyncs once per commit (the safe, slow baseline).
	SyncCommit
	// SyncGroup batches concurrent commits into shared fsyncs: each
	// committer waits until a group fsync covers its commit LSN.
	SyncGroup
)

// ParseSyncMode maps the -sync flag spellings to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	case "commit":
		return SyncCommit, nil
	}
	return SyncOff, fmt.Errorf("wal: unknown sync mode %q (want off|commit|group)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncCommit:
		return "commit"
	case SyncGroup:
		return "group"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// RecType identifies a log record.
type RecType uint8

// Record types.
const (
	RecInvalid RecType = iota
	// Transaction lifecycle. Begin is logged lazily at a transaction's
	// first logged write, so read-only transactions leave no trace.
	RecBegin  // xid
	RecCommit // xid, commit seq
	RecAbort  // xid
	// Tuple events. TIDs are logged explicitly so replay re-places
	// versions at their exact slots, keeping index entries and xmax
	// stamps valid.
	RecInsert  // xid, table, tid, label, ilabel, row
	RecSetXmax // xid, table, tid
	// Catalog and authority events.
	RecDDL       // principal, statement text
	RecPrincipal // id, name
	RecTag       // id, name, owner, parent compound tags
	RecDelegate  // tag, grantor, grantee
	RecRevoke    // tag, revoker, grantee
	// Sequence allocation (value per label partition, see
	// engine/sequence.go).
	RecSeqVal // sequence name, label key, value
	// Checkpoint markers. Begin goes to the old log just before the
	// state capture (forensics only); End is the first record of the
	// truncated log and records that a snapshot covers everything
	// before it.
	RecCheckpointBegin
	RecCheckpointEnd
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecSetXmax:
		return "SETXMAX"
	case RecDDL:
		return "DDL"
	case RecPrincipal:
		return "PRINCIPAL"
	case RecTag:
		return "TAG"
	case RecDelegate:
		return "DELEGATE"
	case RecRevoke:
		return "REVOKE"
	case RecSeqVal:
		return "SEQVAL"
	case RecCheckpointBegin:
		return "CKPT-BEGIN"
	case RecCheckpointEnd:
		return "CKPT-END"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is the decoded form of one log record. Only the fields
// meaningful for its Type are set; the reader and the dump tool share
// this representation.
type Record struct {
	Type RecType
	LSN  LSN

	XID   storage.XID
	Seq   uint64 // RecCommit: commit sequence
	Table string // RecInsert/RecSetXmax
	TID   storage.TID

	Label  label.Label
	ILabel label.Label
	Row    []types.Value

	Principal uint64 // RecDDL (issuer), RecPrincipal (id)
	Text      string // RecDDL statement / RecPrincipal, RecTag, RecSeqVal names

	Tag     uint64   // RecTag id, RecDelegate/RecRevoke tag
	Owner   uint64   // RecTag owner
	Parents []uint64 // RecTag compound parents
	From    uint64   // RecDelegate grantor / RecRevoke revoker
	To      uint64   // grantee

	SeqKey string // RecSeqVal label partition key
	Value  int64  // RecSeqVal value
}

// Summary renders a record for ifdb-dump.
func (r *Record) Summary() string {
	switch r.Type {
	case RecBegin, RecAbort:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d", r.LSN, r.Type, r.XID)
	case RecCommit:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d seq=%d", r.LSN, r.Type, r.XID, r.Seq)
	case RecInsert:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d table=%s tid=%d label=%v cols=%d", r.LSN, r.Type, r.XID, r.Table, r.TID, r.Label, len(r.Row))
	case RecSetXmax:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d table=%s tid=%d", r.LSN, r.Type, r.XID, r.Table, r.TID)
	case RecDDL:
		return fmt.Sprintf("lsn=%-8d %-10s principal=%d %q", r.LSN, r.Type, r.Principal, r.Text)
	case RecPrincipal:
		return fmt.Sprintf("lsn=%-8d %-10s id=%d name=%q", r.LSN, r.Type, r.Principal, r.Text)
	case RecTag:
		return fmt.Sprintf("lsn=%-8d %-10s id=%d name=%q owner=%d parents=%v", r.LSN, r.Type, r.Tag, r.Text, r.Owner, r.Parents)
	case RecDelegate, RecRevoke:
		return fmt.Sprintf("lsn=%-8d %-10s tag=%d from=%d to=%d", r.LSN, r.Type, r.Tag, r.From, r.To)
	case RecSeqVal:
		return fmt.Sprintf("lsn=%-8d %-10s seq=%q part=%q value=%d", r.LSN, r.Type, r.Text, r.SeqKey, r.Value)
	case RecCheckpointBegin, RecCheckpointEnd:
		return fmt.Sprintf("lsn=%-8d %-10s", r.LSN, r.Type)
	}
	return fmt.Sprintf("lsn=%-8d %v", r.LSN, r.Type)
}

// ---------------------------------------------------------------------------
// Record encoding
//
// Frame layout:
//
//	uint32 payload length
//	uint32 CRC-32 (Castagnoli) over the payload
//	payload: 1 type byte + type-specific fields
//
// A torn tail (short frame or CRC mismatch) terminates replay, which
// is the correct crash semantics: everything before the tear was
// appended earlier and is intact.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return "", 0, fmt.Errorf("wal: truncated string")
	}
	return string(buf[sz : sz+int(n)]), sz + int(n), nil
}

func (r *Record) encodePayload(buf []byte) ([]byte, error) {
	buf = append(buf, byte(r.Type))
	var err error
	switch r.Type {
	case RecBegin, RecAbort:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
	case RecCommit:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = binary.AppendUvarint(buf, r.Seq)
	case RecInsert:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = appendString(buf, r.Table)
		buf = binary.AppendUvarint(buf, uint64(r.TID))
		if buf, err = label.AppendEncode(buf, r.Label); err != nil {
			return nil, err
		}
		if buf, err = label.AppendEncode(buf, r.ILabel); err != nil {
			return nil, err
		}
		if buf, err = types.EncodeRow(buf, r.Row); err != nil {
			return nil, err
		}
	case RecSetXmax:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = appendString(buf, r.Table)
		buf = binary.AppendUvarint(buf, uint64(r.TID))
	case RecDDL:
		buf = binary.AppendUvarint(buf, r.Principal)
		buf = appendString(buf, r.Text)
	case RecPrincipal:
		buf = binary.AppendUvarint(buf, r.Principal)
		buf = appendString(buf, r.Text)
	case RecTag:
		buf = binary.AppendUvarint(buf, r.Tag)
		buf = binary.AppendUvarint(buf, r.Owner)
		buf = appendString(buf, r.Text)
		buf = binary.AppendUvarint(buf, uint64(len(r.Parents)))
		for _, p := range r.Parents {
			buf = binary.AppendUvarint(buf, p)
		}
	case RecDelegate, RecRevoke:
		buf = binary.AppendUvarint(buf, r.Tag)
		buf = binary.AppendUvarint(buf, r.From)
		buf = binary.AppendUvarint(buf, r.To)
	case RecSeqVal:
		buf = appendString(buf, r.Text)
		buf = appendString(buf, r.SeqKey)
		buf = binary.AppendUvarint(buf, uint64(r.Value))
	case RecCheckpointBegin, RecCheckpointEnd:
		// no payload beyond the type byte
	default:
		return nil, fmt.Errorf("wal: cannot encode record type %v", r.Type)
	}
	return buf, nil
}

func decodePayload(payload []byte) (r Record, err error) {
	if len(payload) < 1 {
		return r, fmt.Errorf("wal: empty payload")
	}
	r.Type = RecType(payload[0])
	b := payload[1:]
	u := func() uint64 {
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			panic(errTruncated)
		}
		b = b[sz:]
		return n
	}
	str := func() string {
		s, n, err := readString(b)
		if err != nil {
			panic(errTruncated)
		}
		b = b[n:]
		return s
	}
	defer func() {
		if rec := recover(); rec != nil {
			if rec == errTruncated {
				err = fmt.Errorf("wal: truncated %v payload", r.Type)
				return
			}
			panic(rec)
		}
	}()
	switch r.Type {
	case RecBegin, RecAbort:
		r.XID = storage.XID(u())
	case RecCommit:
		r.XID = storage.XID(u())
		r.Seq = u()
	case RecInsert:
		r.XID = storage.XID(u())
		r.Table = str()
		r.TID = storage.TID(u())
		l, n, derr := label.Decode(b)
		if derr != nil {
			return r, derr
		}
		r.Label, b = l, b[n:]
		il, n, derr := label.Decode(b)
		if derr != nil {
			return r, derr
		}
		r.ILabel, b = il, b[n:]
		row, _, derr := types.DecodeRow(b)
		if derr != nil {
			return r, derr
		}
		r.Row = row
	case RecSetXmax:
		r.XID = storage.XID(u())
		r.Table = str()
		r.TID = storage.TID(u())
	case RecDDL:
		r.Principal = u()
		r.Text = str()
	case RecPrincipal:
		r.Principal = u()
		r.Text = str()
	case RecTag:
		r.Tag = u()
		r.Owner = u()
		r.Text = str()
		n := u()
		for i := uint64(0); i < n; i++ {
			r.Parents = append(r.Parents, u())
		}
	case RecDelegate, RecRevoke:
		r.Tag = u()
		r.From = u()
		r.To = u()
	case RecSeqVal:
		r.Text = str()
		r.SeqKey = str()
		r.Value = int64(u())
	case RecCheckpointBegin, RecCheckpointEnd:
	default:
		return r, fmt.Errorf("wal: unknown record type %d", payload[0])
	}
	return r, err
}

var errTruncated = fmt.Errorf("wal: truncated payload")

// ---------------------------------------------------------------------------
// Writer

// Writer is the append side of the log. Appends serialize on an
// internal mutex; durability waits use the group-commit machinery and
// never hold the append lock across an fsync.
type Writer struct {
	mode SyncMode

	mu   sync.Mutex // append lock; also guards f offset, end, base
	f    *os.File
	end  LSN // next logical append position
	base LSN // logical LSN currently mapped to file offset headerSize

	// Group commit: durable is the highest LSN covered by a completed
	// fsync; syncing marks a leader's fsync in flight. Guarded by gmu.
	gmu     sync.Mutex
	gcond   *sync.Cond
	durable LSN
	syncing bool

	// waiters counts committers currently blocked in groupWait; the
	// leader uses it to decide whether a short gather pause will grow
	// the batch (see groupWait).
	waiters int

	// Syncs counts fsync calls, for the group-commit benchmark.
	Syncs int64
}

// Open opens (creating if absent) the log at path for appending. The
// file is scanned to find the end of the last intact record; any torn
// tail beyond it is truncated away so new appends extend a valid log.
func Open(path string, mode SyncMode) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	w := &Writer{mode: mode, f: f}
	w.gcond = sync.NewCond(&w.gmu)

	recs, endLSN, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(recs) == 0 && endLSN == headerSize {
		// Fresh or empty file: (re)write the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt(fileMagic[:], 0); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := f.Truncate(int64(endLSN)); err != nil {
		// Drop any torn tail so appends extend intact records.
		f.Close()
		return nil, err
	}
	w.base = headerSize
	w.end = endLSN
	w.durable = endLSN
	return w, nil
}

// fileOff maps a logical LSN to its offset in the current log file.
// Caller holds mu.
func (w *Writer) fileOff(lsn LSN) int64 {
	return int64(headerSize + (lsn - w.base))
}

// Mode returns the writer's sync mode.
func (w *Writer) Mode() SyncMode { return w.mode }

// Append encodes and appends rec, returning its LSN. The record is in
// the OS page cache when Append returns; call WaitDurable (or rely on
// a commit's group fsync) to force it to stable storage.
func (w *Writer) Append(rec *Record) (LSN, error) {
	payload, err := rec.encodePayload(make([]byte, 0, 128))
	if err != nil {
		return 0, err
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	w.mu.Lock()
	defer w.mu.Unlock()
	lsn := w.end
	if _, err := w.f.WriteAt(frame, w.fileOff(lsn)); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.end = lsn + LSN(len(frame))
	return lsn, nil
}

// End returns the LSN one past the last appended record.
func (w *Writer) End() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end
}

// Sync forces everything appended so far to stable storage,
// regardless of mode (used for DDL and clean shutdown).
func (w *Writer) Sync() error {
	if w.mode == SyncOff {
		return nil
	}
	w.mu.Lock()
	target := w.end
	w.mu.Unlock()
	return w.syncTo(target)
}

// WaitDurable blocks until the record at lsn is on stable storage,
// per the writer's sync mode:
//
//   - SyncOff: returns immediately.
//   - SyncCommit: issues a private fsync (serialized, one per caller).
//   - SyncGroup: leader/follower group commit — one caller fsyncs on
//     behalf of everyone who appended before the fsync started; the
//     rest wait for the covering sync.
func (w *Writer) WaitDurable(lsn LSN) error {
	switch w.mode {
	case SyncOff:
		return nil
	case SyncCommit:
		// Read the covered position before the fsync: appends landing
		// during the fsync are not necessarily on stable storage.
		w.mu.Lock()
		target := w.end
		w.mu.Unlock()
		w.gmu.Lock()
		defer w.gmu.Unlock()
		w.Syncs++
		if err := w.f.Sync(); err != nil {
			return err
		}
		if target > w.durable {
			w.durable = target
		}
		return nil
	}
	return w.groupWait(lsn)
}

func (w *Writer) groupWait(lsn LSN) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	w.waiters++
	defer func() { w.waiters-- }()
	for w.durable < lsn {
		if w.syncing {
			w.gcond.Wait()
			continue
		}
		// Become the leader: fsync everything appended so far, then
		// wake the group. New appends during the fsync are covered by
		// the next leader.
		w.syncing = true
		w.Syncs++
		gather := w.waiters > 1
		w.gmu.Unlock()
		w.mu.Lock()
		target := w.end
		w.mu.Unlock()
		if gather {
			// Other committers are active: yield to them so they can
			// finish their appends and ride this fsync instead of the
			// next one (the spirit of PostgreSQL's commit_delay,
			// implemented as scheduler yields because sub-millisecond
			// sleeps overshoot on coarse-timer kernels). Keep yielding
			// while the log keeps growing, within a small budget.
			for i := 0; i < gatherYields; i++ {
				runtime.Gosched()
				w.mu.Lock()
				cur := w.end
				w.mu.Unlock()
				if cur == target && i > 1 {
					break
				}
				target = cur
			}
		}
		err := w.f.Sync()
		w.gmu.Lock()
		w.syncing = false
		if err != nil {
			w.gcond.Broadcast()
			return err
		}
		if target > w.durable {
			w.durable = target
		}
		w.gcond.Broadcast()
	}
	return nil
}

// gatherYields bounds the leader's pre-fsync yield loop: enough for a
// plausible number of in-flight committers to append, but a hard cap
// so a steady stream of appends cannot starve the fsync.
const gatherYields = 64

// syncTo fsyncs and advances durable to at least target.
func (w *Writer) syncTo(target LSN) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	w.Syncs++
	if err := w.f.Sync(); err != nil {
		return err
	}
	if target > w.durable {
		w.durable = target
	}
	return nil
}

// Checkpoint runs the engine's state capture with appends blocked,
// then truncates the log: everything the truncated records described
// is covered by the snapshot capture wrote. capture must persist the
// snapshot (including its own fsync) before returning nil; if it
// errors, the log is left untouched.
//
// Lock order: callers of Append never hold engine/storage locks while
// appending (the engine applies first, logs second), so capture may
// take catalog/heap/authority read locks freely under the append lock.
func (w *Writer) Checkpoint(capture func() error) error {
	// Forensic marker in the outgoing log (best effort; ignore errors
	// so a full disk does not block checkpointing, which frees space).
	_, _ = w.Append(&Record{Type: RecCheckpointBegin})

	w.mu.Lock()
	defer w.mu.Unlock()
	if err := capture(); err != nil {
		return err
	}
	if err := w.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	// The logical stream continues: the current end now maps to the
	// file's first record slot, and — since the snapshot is already on
	// stable storage — everything appended so far is durable. Advance
	// durable and wake committers still waiting on pre-checkpoint
	// LSNs; LSNs are monotonic, so a leader that raced us can only
	// move durable forward, never poison the new file's positions.
	w.base = w.end
	w.gmu.Lock()
	if w.end > w.durable {
		w.durable = w.end
	}
	w.gcond.Broadcast()
	w.gmu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}

	// First record after the truncation (we hold mu, so inline the
	// append).
	payload, _ := (&Record{Type: RecCheckpointEnd}).encodePayload(nil)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if _, err := w.f.WriteAt(frame, w.fileOff(w.end)); err != nil {
		return err
	}
	w.end += LSN(len(frame))
	return nil
}

// Close fsyncs (per mode) and closes the file.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ---------------------------------------------------------------------------
// Reader

// ReadAll decodes every intact record in the log at path. A missing
// file yields no records. A torn or corrupt tail ends the scan
// without error (torn reports it): that is the normal shape of a
// crash mid-append, and everything before the tear is returned.
func ReadAll(path string) (recs []Record, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	recs, end, err := scan(f)
	if err != nil {
		return nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	return recs, int64(end) != st.Size(), nil
}

// scan reads records from an open log file, returning the intact
// records and the offset just past the last one. Corruption past that
// point is ignored (torn tail). A file with a bad header is treated
// as empty (endLSN == headerSize) so Open can rewrite it.
func scan(f *os.File) ([]Record, LSN, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, headerSize, nil
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, err
	}
	if hdr != fileMagic {
		return nil, headerSize, nil
	}
	var recs []Record
	off := int64(headerSize)
	var frameHdr [8]byte
	for {
		if off+8 > size {
			return recs, LSN(off), nil
		}
		if _, err := f.ReadAt(frameHdr[:], off); err != nil {
			return recs, LSN(off), nil
		}
		plen := int64(binary.LittleEndian.Uint32(frameHdr[0:]))
		crc := binary.LittleEndian.Uint32(frameHdr[4:])
		if plen <= 0 || off+8+plen > size {
			return recs, LSN(off), nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+8); err != nil {
			return recs, LSN(off), nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return recs, LSN(off), nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// CRC passed but the payload is malformed: treat as tear.
			return recs, LSN(off), nil
		}
		rec.LSN = LSN(off)
		recs = append(recs, rec)
		off += 8 + plen
	}
}
