// Package wal implements the write-ahead log underneath the IFDB
// engine: an append-only file of CRC-protected, typed records that
// makes commits durable and the whole in-memory state (catalog,
// heaps, authority) reconstructible after a crash.
//
// The paper's prototype inherited durability from PostgreSQL's WAL;
// this package supplies the equivalent for the Go reproduction. The
// log is *logical*: it records tuple-level and catalog-level events
// (insert, xmax stamp, DDL statement, authority change) rather than
// page images, and recovery replays them in LSN order against the
// last checkpoint snapshot. Replay is idempotent — a record whose
// effect is already present (because a dirty page was flushed, or the
// checkpoint raced the append) is skipped — so the engine may apply a
// mutation first and log it second without a global quiesce.
//
// Commit ordering: commit records are appended while the transaction
// manager holds its commit mutex, so log order equals commit-sequence
// order and an fsync at LSN L makes every commit at or before L
// durable. Group commit (SyncGroup) exploits exactly that prefix
// property: one leader fsyncs on behalf of every committer that
// appended while the previous fsync was in flight.
//
// The log is also the replication substrate (internal/repl ships its
// raw frames) and carries two cluster-wide invariants in its header:
//
//   - ship-only-durable: subscribers only ever read bytes at or below
//     the durable position, so a follower can never apply a commit the
//     primary could still lose to a crash;
//   - the epoch: the promotion generation of this node's history,
//     bumped durably (BumpEpoch) before a promoted replica accepts its
//     first write. LSNs are byte offsets in one specific history, so
//     they are only comparable within one epoch chain — everything in
//     replication fencing follows from that.
//
// See ARCHITECTURE.md § Durability for the record format and
// § Failover & epochs for the epoch rules.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ifdb/internal/label"
	"ifdb/internal/obs"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// WAL metrics (process-wide; see internal/obs).
var (
	mAppends = obs.NewCounter("ifdb_wal_appends_total",
		"records appended to the write-ahead log")
	mFsyncs = obs.NewCounter("ifdb_wal_fsync_total",
		"fsync calls issued by the log writer")
	mFsyncSeconds = obs.NewDurationHistogram("ifdb_wal_fsync_seconds",
		"fsync latency")
	mGroupBatch = obs.NewSizeHistogram("ifdb_wal_group_commit_batch",
		"committers covered per group-commit fsync")
)

// LSN is a log sequence number: the logical byte offset of a
// record's frame in the append stream. LSNs are monotonic for the
// life of the *log*, not just one Writer: a checkpoint truncates the
// file but persists the logical position of the new file start in the
// header, so the stream continues across restarts. Durability
// positions never regress, a committer waiting on a pre-checkpoint
// LSN is satisfied the moment the checkpoint covers it, and a
// replica's applied position stays meaningful after the primary
// restarts. In a freshly created log the first record is at LSN 32.
type LSN uint64

// headerSize is the length of the file header: 8 magic bytes
// ("IFDBWAL3"), the uint64 logical LSN of the first record slot
// (advanced by each truncating checkpoint), the uint64 last-state
// LSN — the position just past the newest record that carries state
// (everything logged after it is checkpoint/replication markers; a
// replica whose position is at or past it has missed nothing but
// markers and may fast-forward instead of re-bootstrapping) — and the
// uint64 epoch: the promotion generation of this log's history. The
// epoch starts at 1, is bumped exactly once per replica promotion
// (BumpEpoch), and fences stale primaries: a replication peer whose
// epoch disagrees cannot resume a byte stream (see internal/repl).
const headerSize = 32

var fileMagic = [8]byte{'I', 'F', 'D', 'B', 'W', 'A', 'L', '3'}

// isMarker reports record types that carry no database state: a
// stream position at or past the last non-marker record covers the
// full state.
func isMarker(t RecType) bool {
	return t == RecCheckpointBegin || t == RecCheckpointEnd || t == RecReplLSN
}

// SyncMode selects the durability discipline for commits.
type SyncMode uint8

const (
	// SyncOff never fsyncs: commits are durable only as the OS flushes.
	SyncOff SyncMode = iota
	// SyncCommit fsyncs once per commit (the safe, slow baseline).
	SyncCommit
	// SyncGroup batches concurrent commits into shared fsyncs: each
	// committer waits until a group fsync covers its commit LSN.
	SyncGroup
)

// ParseSyncMode maps the -sync flag spellings to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "", "group":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	case "commit":
		return SyncCommit, nil
	}
	return SyncOff, fmt.Errorf("wal: unknown sync mode %q (want off|commit|group)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncCommit:
		return "commit"
	case SyncGroup:
		return "group"
	}
	return fmt.Sprintf("SyncMode(%d)", uint8(m))
}

// RecType identifies a log record.
type RecType uint8

// Record types.
const (
	RecInvalid RecType = iota
	// Transaction lifecycle. Begin is logged lazily at a transaction's
	// first logged write, so read-only transactions leave no trace.
	RecBegin  // xid
	RecCommit // xid, commit seq
	RecAbort  // xid
	// Tuple events. TIDs are logged explicitly so replay re-places
	// versions at their exact slots, keeping index entries and xmax
	// stamps valid.
	RecInsert  // xid, table, tid, label, ilabel, row
	RecSetXmax // xid, table, tid
	// Catalog and authority events.
	RecDDL       // principal, statement text
	RecPrincipal // id, name
	RecTag       // id, name, owner, parent compound tags
	RecDelegate  // tag, grantor, grantee
	RecRevoke    // tag, revoker, grantee
	// Sequence allocation (value per label partition, see
	// engine/sequence.go).
	RecSeqVal // sequence name, label key, value
	// Checkpoint markers. Begin goes to the old log just before the
	// state capture (forensics only); End is the first record of the
	// truncated log and records that a snapshot covers everything
	// before it.
	RecCheckpointBegin
	RecCheckpointEnd
	// Replication progress. A replica appends RecReplLSN (Seq = the
	// primary LSN it has applied through, with all transactions before
	// it resolved) to its *own* log after applying a shipped batch, so
	// a restarted replica knows where to resume the stream. Never
	// written by a primary.
	RecReplLSN
)

func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecInsert:
		return "INSERT"
	case RecSetXmax:
		return "SETXMAX"
	case RecDDL:
		return "DDL"
	case RecPrincipal:
		return "PRINCIPAL"
	case RecTag:
		return "TAG"
	case RecDelegate:
		return "DELEGATE"
	case RecRevoke:
		return "REVOKE"
	case RecSeqVal:
		return "SEQVAL"
	case RecCheckpointBegin:
		return "CKPT-BEGIN"
	case RecCheckpointEnd:
		return "CKPT-END"
	case RecReplLSN:
		return "REPL-LSN"
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Record is the decoded form of one log record. Only the fields
// meaningful for its Type are set; the reader and the dump tool share
// this representation.
type Record struct {
	Type RecType
	LSN  LSN

	XID   storage.XID
	Seq   uint64 // RecCommit: commit sequence
	Table string // RecInsert/RecSetXmax
	TID   storage.TID

	Label  label.Label
	ILabel label.Label
	Row    []types.Value

	Principal uint64 // RecDDL (issuer), RecPrincipal (id)
	Text      string // RecDDL statement / RecPrincipal, RecTag, RecSeqVal names

	Tag     uint64   // RecTag id, RecDelegate/RecRevoke tag
	Owner   uint64   // RecTag owner
	Parents []uint64 // RecTag compound parents
	From    uint64   // RecDelegate grantor / RecRevoke revoker
	To      uint64   // grantee

	SeqKey string // RecSeqVal label partition key
	Value  int64  // RecSeqVal value
}

// Summary renders a record for ifdb-dump.
func (r *Record) Summary() string {
	switch r.Type {
	case RecBegin, RecAbort:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d", r.LSN, r.Type, r.XID)
	case RecCommit:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d seq=%d", r.LSN, r.Type, r.XID, r.Seq)
	case RecInsert:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d table=%s tid=%d label=%v cols=%d", r.LSN, r.Type, r.XID, r.Table, r.TID, r.Label, len(r.Row))
	case RecSetXmax:
		return fmt.Sprintf("lsn=%-8d %-10s xid=%d table=%s tid=%d", r.LSN, r.Type, r.XID, r.Table, r.TID)
	case RecDDL:
		return fmt.Sprintf("lsn=%-8d %-10s principal=%d %q", r.LSN, r.Type, r.Principal, r.Text)
	case RecPrincipal:
		return fmt.Sprintf("lsn=%-8d %-10s id=%d name=%q", r.LSN, r.Type, r.Principal, r.Text)
	case RecTag:
		return fmt.Sprintf("lsn=%-8d %-10s id=%d name=%q owner=%d parents=%v", r.LSN, r.Type, r.Tag, r.Text, r.Owner, r.Parents)
	case RecDelegate, RecRevoke:
		return fmt.Sprintf("lsn=%-8d %-10s tag=%d from=%d to=%d", r.LSN, r.Type, r.Tag, r.From, r.To)
	case RecSeqVal:
		return fmt.Sprintf("lsn=%-8d %-10s seq=%q part=%q value=%d", r.LSN, r.Type, r.Text, r.SeqKey, r.Value)
	case RecCheckpointBegin, RecCheckpointEnd:
		return fmt.Sprintf("lsn=%-8d %-10s", r.LSN, r.Type)
	case RecReplLSN:
		return fmt.Sprintf("lsn=%-8d %-10s applied=%d", r.LSN, r.Type, r.Seq)
	}
	return fmt.Sprintf("lsn=%-8d %v", r.LSN, r.Type)
}

// ---------------------------------------------------------------------------
// Record encoding
//
// Frame layout:
//
//	uint32 payload length
//	uint32 CRC-32 (Castagnoli) over the payload
//	payload: 1 type byte + type-specific fields
//
// A torn tail (short frame or CRC mismatch) terminates replay, which
// is the correct crash semantics: everything before the tear was
// appended earlier and is intact.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return "", 0, fmt.Errorf("wal: truncated string")
	}
	return string(buf[sz : sz+int(n)]), sz + int(n), nil
}

func (r *Record) encodePayload(buf []byte) ([]byte, error) {
	buf = append(buf, byte(r.Type))
	var err error
	switch r.Type {
	case RecBegin, RecAbort:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
	case RecCommit:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = binary.AppendUvarint(buf, r.Seq)
	case RecInsert:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = appendString(buf, r.Table)
		buf = binary.AppendUvarint(buf, uint64(r.TID))
		if buf, err = label.AppendEncode(buf, r.Label); err != nil {
			return nil, err
		}
		if buf, err = label.AppendEncode(buf, r.ILabel); err != nil {
			return nil, err
		}
		if buf, err = types.EncodeRow(buf, r.Row); err != nil {
			return nil, err
		}
	case RecSetXmax:
		buf = binary.AppendUvarint(buf, uint64(r.XID))
		buf = appendString(buf, r.Table)
		buf = binary.AppendUvarint(buf, uint64(r.TID))
	case RecDDL:
		buf = binary.AppendUvarint(buf, r.Principal)
		buf = appendString(buf, r.Text)
	case RecPrincipal:
		buf = binary.AppendUvarint(buf, r.Principal)
		buf = appendString(buf, r.Text)
	case RecTag:
		buf = binary.AppendUvarint(buf, r.Tag)
		buf = binary.AppendUvarint(buf, r.Owner)
		buf = appendString(buf, r.Text)
		buf = binary.AppendUvarint(buf, uint64(len(r.Parents)))
		for _, p := range r.Parents {
			buf = binary.AppendUvarint(buf, p)
		}
	case RecDelegate, RecRevoke:
		buf = binary.AppendUvarint(buf, r.Tag)
		buf = binary.AppendUvarint(buf, r.From)
		buf = binary.AppendUvarint(buf, r.To)
	case RecSeqVal:
		buf = appendString(buf, r.Text)
		buf = appendString(buf, r.SeqKey)
		buf = binary.AppendUvarint(buf, uint64(r.Value))
	case RecCheckpointBegin, RecCheckpointEnd:
		// no payload beyond the type byte
	case RecReplLSN:
		buf = binary.AppendUvarint(buf, r.Seq)
	default:
		return nil, fmt.Errorf("wal: cannot encode record type %v", r.Type)
	}
	return buf, nil
}

func decodePayload(payload []byte) (r Record, err error) {
	if len(payload) < 1 {
		return r, fmt.Errorf("wal: empty payload")
	}
	r.Type = RecType(payload[0])
	b := payload[1:]
	u := func() uint64 {
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			panic(errTruncated)
		}
		b = b[sz:]
		return n
	}
	str := func() string {
		s, n, err := readString(b)
		if err != nil {
			panic(errTruncated)
		}
		b = b[n:]
		return s
	}
	defer func() {
		if rec := recover(); rec != nil {
			if rec == errTruncated {
				err = fmt.Errorf("wal: truncated %v payload", r.Type)
				return
			}
			panic(rec)
		}
	}()
	switch r.Type {
	case RecBegin, RecAbort:
		r.XID = storage.XID(u())
	case RecCommit:
		r.XID = storage.XID(u())
		r.Seq = u()
	case RecInsert:
		r.XID = storage.XID(u())
		r.Table = str()
		r.TID = storage.TID(u())
		l, n, derr := label.Decode(b)
		if derr != nil {
			return r, derr
		}
		r.Label, b = l, b[n:]
		il, n, derr := label.Decode(b)
		if derr != nil {
			return r, derr
		}
		r.ILabel, b = il, b[n:]
		row, _, derr := types.DecodeRow(b)
		if derr != nil {
			return r, derr
		}
		r.Row = row
	case RecSetXmax:
		r.XID = storage.XID(u())
		r.Table = str()
		r.TID = storage.TID(u())
	case RecDDL:
		r.Principal = u()
		r.Text = str()
	case RecPrincipal:
		r.Principal = u()
		r.Text = str()
	case RecTag:
		r.Tag = u()
		r.Owner = u()
		r.Text = str()
		n := u()
		for i := uint64(0); i < n; i++ {
			r.Parents = append(r.Parents, u())
		}
	case RecDelegate, RecRevoke:
		r.Tag = u()
		r.From = u()
		r.To = u()
	case RecSeqVal:
		r.Text = str()
		r.SeqKey = str()
		r.Value = int64(u())
	case RecCheckpointBegin, RecCheckpointEnd:
	case RecReplLSN:
		r.Seq = u()
	default:
		return r, fmt.Errorf("wal: unknown record type %d", payload[0])
	}
	return r, err
}

var errTruncated = fmt.Errorf("wal: truncated payload")

// ---------------------------------------------------------------------------
// Writer

// Writer is the append side of the log. Appends serialize on an
// internal mutex; durability waits use the group-commit machinery and
// never hold the append lock across an fsync.
type Writer struct {
	mode SyncMode

	mu        sync.Mutex // append lock; also guards f offset, end, base, lastState, truncState
	f         *os.File
	end       LSN // next logical append position
	base      LSN // logical LSN currently mapped to file offset headerSize
	lastState LSN // position past the newest state-carrying record
	// truncState is lastState as of the last truncating checkpoint
	// (the header's persisted value): every state record below base is
	// below it, so a replica at or past truncState missed only markers
	// in the truncated region and may fast-forward to base.
	truncState LSN
	// epoch is the promotion generation (header-persisted, starts at 1).
	epoch uint64

	// retainBudget caps how many log bytes a lagging subscription may
	// pin against checkpoint truncation (0 = unlimited; see ship.go).
	retainBudget atomic.Int64

	// Group commit: durable is the highest LSN covered by a completed
	// fsync; syncing marks a leader's fsync in flight. Guarded by gmu.
	gmu     sync.Mutex
	gcond   *sync.Cond
	durable LSN
	syncing bool

	// waiters counts committers currently blocked in groupWait; the
	// leader uses it to decide whether a short gather pause will grow
	// the batch (see groupWait).
	waiters int

	// subs are replica-sender subscriptions (see ship.go): notified on
	// appends and durability advances, and pinning the log against
	// checkpoint truncation while a sender is behind.
	smu  sync.Mutex
	subs map[*Subscription]bool

	// Syncs counts fsync calls, for the group-commit benchmark.
	Syncs int64
}

// Open opens (creating if absent) the log at path for appending. The
// file is scanned to find the end of the last intact record; any torn
// tail beyond it is truncated away so new appends extend a valid log.
func Open(path string, mode SyncMode) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	w := &Writer{mode: mode, f: f, subs: make(map[*Subscription]bool)}
	w.gcond = sync.NewCond(&w.gmu)

	sc, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if sc.base == 0 {
		// Distinguish a genuinely fresh file from an older-format log
		// (e.g. "IFDBWAL2"): rewriting the latter would silently
		// discard every record since its last checkpoint. Refuse and
		// make the operator decide.
		var magic [8]byte
		if n, _ := f.ReadAt(magic[:], 0); n == 8 &&
			string(magic[:7]) == string(fileMagic[:7]) && magic != fileMagic {
			f.Close()
			return nil, fmt.Errorf("wal: %s is a %q log, this build writes %q; no in-place migration — restore from a basebackup or start fresh", path, magic, fileMagic)
		}
	}
	if sc.base == 0 {
		// Fresh file (or unrecognizable header): write a new header.
		// The logical stream starts at headerSize, in epoch 1.
		sc.base, sc.end = headerSize, headerSize
		sc.hdrState, sc.lastState = headerSize, headerSize
		sc.epoch = 1
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt(headerBytes(sc.base, sc.hdrState, sc.epoch), 0); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := f.Truncate(int64(headerSize + (sc.end - sc.base))); err != nil {
		// Drop any torn tail so appends extend intact records.
		f.Close()
		return nil, err
	}
	if sc.epoch == 0 {
		sc.epoch = 1 // header predates epochs or was zeroed; repair
	}
	w.base = sc.base
	w.end = sc.end
	w.truncState = sc.hdrState
	w.lastState = sc.lastState
	w.epoch = sc.epoch
	w.durable = sc.end
	return w, nil
}

// headerBytes renders the file header.
func headerBytes(base, lastState LSN, epoch uint64) []byte {
	var h [headerSize]byte
	copy(h[:8], fileMagic[:])
	binary.LittleEndian.PutUint64(h[8:], uint64(base))
	binary.LittleEndian.PutUint64(h[16:], uint64(lastState))
	binary.LittleEndian.PutUint64(h[24:], epoch)
	return h[:]
}

// Epoch returns the log's promotion generation.
func (w *Writer) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// SetEpoch durably adopts an epoch a replication peer announced
// (followers call it when a connection hands them the primary's
// epoch). The epoch never regresses.
func (w *Writer) SetEpoch(epoch uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if epoch <= w.epoch {
		return nil
	}
	return w.setEpochLocked(epoch)
}

// BumpEpoch starts the next promotion generation, durably, and returns
// it. Called exactly once per promotion, before the promoted engine
// accepts its first write: any peer still speaking the old epoch is
// fenced from that point on.
func (w *Writer) BumpEpoch() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.setEpochLocked(w.epoch + 1); err != nil {
		return 0, err
	}
	return w.epoch, nil
}

// setEpochLocked rewrites the header in place (preserving the
// persisted base and truncation-state positions) and fsyncs before
// adopting the new epoch. Caller holds mu.
func (w *Writer) setEpochLocked(epoch uint64) error {
	if _, err := w.f.WriteAt(headerBytes(w.base, w.truncState, epoch), 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if err := w.fsync(); err != nil {
		return err
	}
	w.epoch = epoch
	return nil
}

// fsync forces the file to stable storage, counting the call and its
// latency. Every fsync the writer issues goes through here.
func (w *Writer) fsync() error {
	t0 := time.Now()
	err := w.f.Sync()
	mFsyncs.Inc()
	mFsyncSeconds.Observe(time.Since(t0).Nanoseconds())
	return err
}

// fileOff maps a logical LSN to its offset in the current log file.
// Caller holds mu.
func (w *Writer) fileOff(lsn LSN) int64 {
	return int64(headerSize + uint64(lsn-w.base))
}

// Mode returns the writer's sync mode.
func (w *Writer) Mode() SyncMode { return w.mode }

// Append encodes and appends rec, returning its LSN. The record is in
// the OS page cache when Append returns; call WaitDurable (or rely on
// a commit's group fsync) to force it to stable storage.
func (w *Writer) Append(rec *Record) (LSN, error) {
	payload, err := rec.encodePayload(make([]byte, 0, 128))
	if err != nil {
		return 0, err
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	mAppends.Inc()
	w.mu.Lock()
	lsn := w.end
	if _, err := w.f.WriteAt(frame, w.fileOff(lsn)); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.end = lsn + LSN(len(frame))
	if !isMarker(rec.Type) {
		w.lastState = w.end
	}
	w.mu.Unlock()
	w.notifySubs()
	return lsn, nil
}

// End returns the LSN one past the last appended record.
func (w *Writer) End() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.end
}

// Sync forces everything appended so far to stable storage,
// regardless of mode (used for DDL and clean shutdown).
func (w *Writer) Sync() error {
	if w.mode == SyncOff {
		return nil
	}
	w.mu.Lock()
	target := w.end
	w.mu.Unlock()
	return w.syncTo(target)
}

// WaitDurable blocks until the record at lsn is on stable storage,
// per the writer's sync mode:
//
//   - SyncOff: returns immediately.
//   - SyncCommit: issues a private fsync (serialized, one per caller).
//   - SyncGroup: leader/follower group commit — one caller fsyncs on
//     behalf of everyone who appended before the fsync started; the
//     rest wait for the covering sync.
func (w *Writer) WaitDurable(lsn LSN) error {
	switch w.mode {
	case SyncOff:
		return nil
	case SyncCommit:
		// Read the covered position before the fsync: appends landing
		// during the fsync are not necessarily on stable storage.
		w.mu.Lock()
		target := w.end
		w.mu.Unlock()
		w.gmu.Lock()
		defer w.gmu.Unlock()
		if w.durable >= lsn {
			// A committer that queued ahead of us already fsynced past
			// our record (its covered position was read after our append
			// landed): the commit is on stable storage, and repeating
			// the fsync would only serialize the queue further.
			return nil
		}
		w.Syncs++
		if err := w.fsync(); err != nil {
			return err
		}
		if target > w.durable {
			w.durable = target
			w.notifySubs()
		}
		return nil
	}
	return w.groupWait(lsn)
}

func (w *Writer) groupWait(lsn LSN) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	w.waiters++
	defer func() { w.waiters-- }()
	for w.durable < lsn {
		if w.syncing {
			w.gcond.Wait()
			continue
		}
		// Become the leader: fsync everything appended so far, then
		// wake the group. New appends during the fsync are covered by
		// the next leader.
		w.syncing = true
		w.Syncs++
		gather := w.waiters > 1
		batch := int64(w.waiters)
		w.gmu.Unlock()
		w.mu.Lock()
		target := w.end
		w.mu.Unlock()
		if gather {
			// Other committers are active: yield to them so they can
			// finish their appends and ride this fsync instead of the
			// next one (the spirit of PostgreSQL's commit_delay,
			// implemented as scheduler yields because sub-millisecond
			// sleeps overshoot on coarse-timer kernels). Keep yielding
			// while the log keeps growing, within a small budget.
			for i := 0; i < gatherYields; i++ {
				runtime.Gosched()
				w.mu.Lock()
				cur := w.end
				w.mu.Unlock()
				if cur == target && i > 1 {
					break
				}
				target = cur
			}
		}
		err := w.fsync()
		mGroupBatch.Observe(batch)
		w.gmu.Lock()
		w.syncing = false
		if err != nil {
			w.gcond.Broadcast()
			return err
		}
		if target > w.durable {
			w.durable = target
			w.notifySubs()
		}
		w.gcond.Broadcast()
	}
	return nil
}

// gatherYields bounds the leader's pre-fsync yield loop: enough for a
// plausible number of in-flight committers to append, but a hard cap
// so a steady stream of appends cannot starve the fsync.
const gatherYields = 64

// advanceDurable raises the durable horizon to lsn, waking group
// committers and replica-sender subscriptions.
func (w *Writer) advanceDurable(lsn LSN) {
	w.gmu.Lock()
	if lsn > w.durable {
		w.durable = lsn
		w.notifySubs()
	}
	w.gcond.Broadcast()
	w.gmu.Unlock()
}

// syncTo fsyncs and advances durable to at least target.
func (w *Writer) syncTo(target LSN) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	w.Syncs++
	if err := w.fsync(); err != nil {
		return err
	}
	if target > w.durable {
		w.durable = target
		w.notifySubs()
	}
	return nil
}

// Checkpoint runs the engine's state capture with appends blocked,
// then truncates the log: everything the truncated records described
// is covered by the snapshot capture wrote. capture receives the
// logical end of the log at capture time — every record below it was
// applied before the capture began (apply-first, log-second), so the
// snapshot covers exactly the records below that LSN. capture must
// persist the snapshot (including its own fsync) before returning
// nil; if it errors, the log is left untouched.
//
// Lock order: callers of Append never hold engine/storage locks while
// appending (the engine applies first, logs second), so capture may
// take catalog/heap/authority read locks freely under the append lock.
func (w *Writer) Checkpoint(capture func(covered LSN) error) error {
	// Forensic marker in the outgoing log (best effort; ignore errors
	// so a full disk does not block checkpointing, which frees space).
	_, _ = w.Append(&Record{Type: RecCheckpointBegin})

	w.mu.Lock()
	defer w.mu.Unlock()
	if err := capture(w.end); err != nil {
		return err
	}
	// Retention: a replica sender still needs bytes below the end, so
	// leave the file intact (the snapshot is still written — recovery
	// replays the overlapping records idempotently). The single-file
	// analogue of a held replication slot — bounded by the retained-WAL
	// budget: a subscription pinning more than the budget is dropped
	// (its follower must re-bootstrap via basebackup) rather than
	// letting one laggard pin the log forever.
	if budget := w.retainBudget.Load(); budget > 0 && w.end > LSN(budget) {
		w.dropSubsBelow(w.end - LSN(budget))
	}
	if min, ok := w.minSubPos(); ok && min < w.end {
		if err := w.fsync(); err != nil {
			return err
		}
		w.advanceDurable(w.end)
		return nil
	}
	// Persist the new logical base, fsynced, *before* truncating: a
	// crash in between leaves old records re-interpreted at new LSNs
	// (harmless — replay is idempotent), whereas the other order could
	// leave a stale base under an empty file, assigning future records
	// LSNs the snapshot claims to already cover. The last-state
	// position rides along so replicas parked past it survive the
	// truncation.
	if _, err := w.f.WriteAt(headerBytes(w.end, w.lastState, w.epoch), 0); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if err := w.fsync(); err != nil {
		return err
	}
	w.truncState = w.lastState
	if err := w.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	// The logical stream continues: the current end now maps to the
	// file's first record slot, and — since the snapshot is already on
	// stable storage — everything appended so far is durable. Advance
	// durable and wake committers still waiting on pre-checkpoint
	// LSNs; LSNs are monotonic, so a leader that raced us can only
	// move durable forward, never poison the new file's positions.
	w.base = w.end
	// The snapshot is on stable storage: everything logged so far is
	// effectively durable; wake committers still waiting on
	// pre-checkpoint LSNs.
	w.advanceDurable(w.end)

	// First record after the truncation (we hold mu, so inline the
	// append). Written before the fsync so the durable horizon covers
	// it — an idle primary must still be able to ship its whole log to
	// replicas, which read only durable bytes.
	payload, _ := (&Record{Type: RecCheckpointEnd}).encodePayload(nil)
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	if _, err := w.f.WriteAt(frame, w.fileOff(w.end)); err != nil {
		return err
	}
	w.end += LSN(len(frame))
	if err := w.fsync(); err != nil {
		return err
	}
	w.advanceDurable(w.end)
	return nil
}

// Close fsyncs (per mode) and closes the file.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ---------------------------------------------------------------------------
// Reader

// ReadAll decodes every intact record in the log at path. A missing
// file yields no records. A torn or corrupt tail ends the scan
// without error (torn reports it): that is the normal shape of a
// crash mid-append, and everything before the tear is returned.
// Record LSNs are logical (the header's base plus in-file position).
func ReadAll(path string) (recs []Record, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	defer f.Close()
	sc, err := scan(f)
	if err != nil {
		return nil, false, err
	}
	if sc.base == 0 {
		return nil, false, nil
	}
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	return sc.recs, int64(headerSize+(sc.end-sc.base)) != st.Size(), nil
}

// scanResult is what scan recovers from a log file: the intact
// records, the header's logical base, the logical end just past the
// last intact record, the header's persisted last-state position
// (truncState: the state floor of the truncated history), and the
// running last-state position including the surviving records.
// Corruption past the last intact record is ignored (torn tail). A
// file with a bad or missing header reports base 0 so Open can
// rewrite it.
type scanResult struct {
	recs      []Record
	base      LSN
	end       LSN
	hdrState  LSN
	lastState LSN
	epoch     uint64
}

func scan(f *os.File) (scanResult, error) {
	st, err := f.Stat()
	if err != nil {
		return scanResult{}, err
	}
	size := st.Size()
	if size < headerSize {
		return scanResult{}, nil
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return scanResult{}, err
	}
	if [8]byte(hdr[:8]) != fileMagic {
		return scanResult{}, nil
	}
	sc := scanResult{
		base:     LSN(binary.LittleEndian.Uint64(hdr[8:])),
		hdrState: LSN(binary.LittleEndian.Uint64(hdr[16:])),
		epoch:    binary.LittleEndian.Uint64(hdr[24:]),
	}
	if sc.base < headerSize {
		return scanResult{}, nil
	}
	sc.lastState = sc.hdrState
	off := int64(headerSize)
	lsnAt := func(off int64) LSN { return sc.base + LSN(off-headerSize) }
	var frameHdr [8]byte
	for {
		sc.end = lsnAt(off)
		if off+8 > size {
			return sc, nil
		}
		if _, err := f.ReadAt(frameHdr[:], off); err != nil {
			return sc, nil
		}
		plen := int64(binary.LittleEndian.Uint32(frameHdr[0:]))
		crc := binary.LittleEndian.Uint32(frameHdr[4:])
		if plen <= 0 || off+8+plen > size {
			return sc, nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+8); err != nil {
			return sc, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return sc, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// CRC passed but the payload is malformed: treat as tear.
			return sc, nil
		}
		rec.LSN = lsnAt(off)
		sc.recs = append(sc.recs, rec)
		off += 8 + plen
		if !isMarker(rec.Type) && lsnAt(off) > sc.lastState {
			sc.lastState = lsnAt(off)
		}
	}
}
