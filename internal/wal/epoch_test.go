package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// TestEpochPersists: a fresh log starts at epoch 1; BumpEpoch and
// SetEpoch persist across reopen (the header survives truncating
// checkpoints too).
func TestEpochPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	if _, err := w.Append(&Record{Type: RecBegin, XID: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := w.BumpEpoch()
	if err != nil || e != 2 {
		t.Fatalf("BumpEpoch = %d, %v", e, err)
	}
	// SetEpoch never regresses.
	if err := w.SetEpoch(1); err != nil || w.Epoch() != 2 {
		t.Fatalf("SetEpoch regressed: %d, %v", w.Epoch(), err)
	}
	if err := w.SetEpoch(7); err != nil || w.Epoch() != 7 {
		t.Fatalf("SetEpoch(7): %d, %v", w.Epoch(), err)
	}
	end := w.End()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Epoch(); got != 7 {
		t.Fatalf("epoch after reopen = %d, want 7", got)
	}
	if w2.End() != end {
		t.Fatalf("end moved across reopen: %d vs %d", w2.End(), end)
	}
	// A truncating checkpoint rewrites the header; the epoch rides
	// along.
	if err := w2.Checkpoint(func(LSN) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := Open(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := w3.Epoch(); got != 7 {
		t.Fatalf("epoch after checkpoint+reopen = %d, want 7", got)
	}
}

// TestOldFormatRefused: a log written by an earlier header format
// must refuse to open — silently truncating it would discard every
// record since its last checkpoint.
func TestOldFormatRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	old := make([]byte, 24)
	copy(old, "IFDBWAL2")
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, SyncCommit); err == nil {
		t.Fatal("old-format log opened (and truncated) silently")
	}
}

// TestRetainBudgetDropsLaggard: a subscription pinning more log than
// the retained-WAL budget is dropped at checkpoint — the file
// truncates and Dropped reports true — while an in-budget subscription
// keeps pinning.
func TestRetainBudgetDropsLaggard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, SyncCommit)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	laggard := w.Subscribe(w.End())
	defer laggard.Close()
	for i := 0; i < 100; i++ {
		if _, err := w.Append(&Record{Type: RecBegin, XID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// No budget: the laggard pins the whole file.
	if err := w.Checkpoint(func(LSN) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if w.Base() > laggard.Pos() {
		t.Fatalf("laggard position %d truncated away without a budget (base %d)", laggard.Pos(), w.Base())
	}
	if laggard.Dropped() {
		t.Fatal("laggard dropped without a budget")
	}

	// With a budget the laggard is dropped and the log truncates.
	w.SetRetainBudget(64)
	if err := w.Checkpoint(func(LSN) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if !laggard.Dropped() {
		t.Fatal("laggard not dropped despite exceeding the budget")
	}
	if w.Base() <= laggard.Pos() {
		t.Fatalf("log not truncated past the dropped laggard: base %d, laggard %d", w.Base(), laggard.Pos())
	}
	// The dropped position is gone: ReadRaw reports ErrPositionGone,
	// which is what sends the follower into re-bootstrap.
	if _, _, err := w.ReadRaw(laggard.Pos(), 1<<20); err == nil {
		t.Fatal("reading the dropped position succeeded")
	}

	// A subscription within the budget still pins the log across a
	// checkpoint (the replication-slot behavior survives).
	current := w.Subscribe(w.End())
	defer current.Close()
	if err := w.Checkpoint(func(LSN) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if current.Dropped() {
		t.Fatal("in-budget subscription dropped")
	}
	if w.Base() > current.Pos() {
		t.Fatalf("in-budget position %d truncated away (base %d)", current.Pos(), w.Base())
	}
}
