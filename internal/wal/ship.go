// Log shipping: the primary-side APIs replication is built on.
//
// A replica stream is raw log bytes — whole frames, CRC and all —
// copied from the primary's log file starting at a logical LSN. The
// frame CRCs therefore protect records end to end: what the follower
// decodes is bit-identical to what the primary's committers appended.
// Only durable bytes are shipped (except in SyncOff mode, where
// nothing ever is durable and the stream follows the append edge):
// a follower must never apply a commit the primary could still lose.
//
// Subscriptions serve two purposes: they wake tailing senders when the
// shippable region grows, and they pin the log — Checkpoint skips file
// truncation while any subscriber still needs bytes below the end, the
// single-file analogue of PostgreSQL's replication slots.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// ErrPositionGone is returned by ReadRaw when the requested LSN
// precedes the oldest record still in the log file (a checkpoint
// truncated it away). The caller must fall back to a full state
// transfer (basebackup).
var ErrPositionGone = fmt.Errorf("wal: position predates retained log")

// Base returns the oldest logical LSN still present in the log file.
func (w *Writer) Base() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// DurableLSN returns the highest LSN covered by a completed fsync.
func (w *Writer) DurableLSN() LSN {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	return w.durable
}

// LastStateLSN returns the position just past the newest record that
// carries database state.
func (w *Writer) LastStateLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastState
}

// TruncatedStateLSN returns the state floor of the truncated history:
// every state-carrying record below Base ends at or before it. A
// replica whose position is at or past this value (but below Base)
// missed only checkpoint markers — the shape a clean primary restart
// leaves — and may fast-forward to Base instead of re-bootstrapping.
func (w *Writer) TruncatedStateLSN() LSN {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncState
}

// SetRetainBudget caps how many log bytes a lagging subscription may
// pin against checkpoint truncation. When a checkpoint finds a
// subscription more than budget bytes behind the append edge, the
// subscription is dropped (Dropped reports true, its channel is
// signalled) and the log truncates; the follower behind it must
// re-bootstrap via basebackup. Zero (the default) retains the log for
// every subscriber indefinitely.
func (w *Writer) SetRetainBudget(bytes int64) { w.retainBudget.Store(bytes) }

// ShipLimit returns the LSN up to which records may be shipped to a
// replica: the durable horizon, or the append edge in SyncOff mode
// (where no fsync ever runs and "durable" is meaningless).
func (w *Writer) ShipLimit() LSN {
	if w.mode == SyncOff {
		return w.End()
	}
	return w.DurableLSN()
}

// ReadRaw copies whole frames from the log, starting at logical LSN
// from, up to roughly maxBytes (always at least one frame when any is
// shippable). It returns the raw bytes, the LSN just past them, and —
// when from has been truncated away — ErrPositionGone. An empty result
// with next == from means the stream is caught up; wait on a
// Subscription and retry.
func (w *Writer) ReadRaw(from LSN, maxBytes int) ([]byte, LSN, error) {
	if maxBytes < 64 {
		maxBytes = 64
	}
	limit := w.ShipLimit()
	w.mu.Lock()
	defer w.mu.Unlock()
	if from < w.base {
		return nil, from, fmt.Errorf("%w: want %d, base %d", ErrPositionGone, from, w.base)
	}
	if limit > w.end {
		// A checkpoint can advance durable past a concurrent reader's
		// stale view; never read past the append edge.
		limit = w.end
	}
	if from >= limit {
		return nil, from, nil
	}
	n := int(limit - from)
	if n > maxBytes {
		n = maxBytes
	}
	buf := make([]byte, n)
	if _, err := w.f.ReadAt(buf, w.fileOff(from)); err != nil {
		return nil, from, fmt.Errorf("wal: read at %d: %w", from, err)
	}
	// Trim to whole frames. If even the first frame overflows the
	// budget, reread exactly that frame: progress beats the budget.
	off := 0
	for off+8 <= len(buf) {
		plen := int(binary.LittleEndian.Uint32(buf[off:]))
		if plen <= 0 || off+8+plen > len(buf) {
			break
		}
		off += 8 + plen
	}
	if off == 0 {
		if len(buf) < 8 {
			return nil, from, nil
		}
		plen := int(binary.LittleEndian.Uint32(buf[0:]))
		if plen <= 0 || from+LSN(8+plen) > limit {
			return nil, from, nil
		}
		buf = make([]byte, 8+plen)
		if _, err := w.f.ReadAt(buf, w.fileOff(from)); err != nil {
			return nil, from, fmt.Errorf("wal: read at %d: %w", from, err)
		}
		off = len(buf)
	}
	return buf[:off], from + LSN(off), nil
}

// DecodeFrames decodes a run of raw frames as shipped by ReadRaw.
// base is the logical LSN of the first frame (records carry their
// primary-side LSNs). Unlike a crash-tail scan, shipped bytes must be
// whole, intact frames: any tear or CRC mismatch is an error.
func DecodeFrames(buf []byte, base LSN) ([]Record, error) {
	var recs []Record
	off := 0
	for off < len(buf) {
		if off+8 > len(buf) {
			return nil, fmt.Errorf("wal: torn shipped frame header at %d", base+LSN(off))
		}
		plen := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if plen <= 0 || off+8+plen > len(buf) {
			return nil, fmt.Errorf("wal: torn shipped frame at %d", base+LSN(off))
		}
		payload := buf[off+8 : off+8+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return nil, fmt.Errorf("wal: shipped frame crc mismatch at %d", base+LSN(off))
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, fmt.Errorf("wal: shipped frame at %d: %w", base+LSN(off), err)
		}
		rec.LSN = base + LSN(off)
		recs = append(recs, rec)
		off += 8 + plen
	}
	return recs, nil
}

// AppendRaw appends pre-framed bytes verbatim — whole frames shipped
// from a primary, already CRC-verified by DecodeFrames. The replica
// uses it to persist a shipped batch in one write, keeping the
// primary's frame bytes (and CRCs) bit-identical in its own log.
func (w *Writer) AppendRaw(frames []byte) (LSN, error) {
	w.mu.Lock()
	lsn := w.end
	if len(frames) == 0 {
		w.mu.Unlock()
		return lsn, nil
	}
	if _, err := w.f.WriteAt(frames, w.fileOff(lsn)); err != nil {
		w.mu.Unlock()
		return 0, fmt.Errorf("wal: append raw: %w", err)
	}
	w.end = lsn + LSN(len(frames))
	w.lastState = w.end // shipped batches carry state; be conservative
	w.mu.Unlock()
	w.notifySubs()
	return lsn, nil
}

// ---------------------------------------------------------------------------
// Subscriptions

// Subscription is a replica sender's handle on the log: a wakeup
// channel signalled whenever the shippable region may have grown, and
// a position that pins the log file against checkpoint truncation.
type Subscription struct {
	w *Writer
	// C receives a (coalesced) signal after appends and durability
	// advances. Spurious wakeups are possible; consumers re-check
	// ReadRaw and wait again.
	C chan struct{}

	pos     atomic.Uint64
	closed  atomic.Bool
	dropped atomic.Bool
}

// Subscribe registers a subscription whose consumer has shipped
// everything before from.
func (w *Writer) Subscribe(from LSN) *Subscription {
	s := &Subscription{w: w, C: make(chan struct{}, 1)}
	s.pos.Store(uint64(from))
	w.smu.Lock()
	w.subs[s] = true
	w.smu.Unlock()
	return s
}

// Advance records that the consumer has shipped everything before lsn,
// releasing the log below it for truncation.
func (s *Subscription) Advance(lsn LSN) { s.pos.Store(uint64(lsn)) }

// Pos returns the subscription's current position.
func (s *Subscription) Pos() LSN { return LSN(s.pos.Load()) }

// Dropped reports whether a checkpoint dropped this subscription for
// exceeding the retained-WAL budget. The sender must stop streaming:
// the bytes it still needed are gone, and its follower has to
// re-bootstrap.
func (s *Subscription) Dropped() bool { return s.dropped.Load() }

// Close unregisters the subscription; the log is no longer pinned.
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.w.smu.Lock()
	delete(s.w.subs, s)
	s.w.smu.Unlock()
}

// notifySubs signals every subscription (non-blocking; the channel
// coalesces).
func (w *Writer) notifySubs() {
	w.smu.Lock()
	for s := range w.subs {
		select {
		case s.C <- struct{}{}:
		default:
		}
	}
	w.smu.Unlock()
}

// minSubPos returns the lowest live (non-dropped) subscriber position
// and whether any exists. Caller may hold mu (smu is independent).
func (w *Writer) minSubPos() (LSN, bool) {
	w.smu.Lock()
	defer w.smu.Unlock()
	var min LSN
	found := false
	for s := range w.subs {
		if s.Dropped() {
			continue
		}
		p := s.Pos()
		if !found || p < min {
			min, found = p, true
		}
	}
	return min, found
}

// dropSubsBelow marks every subscription positioned below lsn as
// dropped — it no longer pins the log — and wakes it so its sender
// notices promptly. Caller may hold mu.
func (w *Writer) dropSubsBelow(lsn LSN) {
	w.smu.Lock()
	defer w.smu.Unlock()
	for s := range w.subs {
		if s.Pos() < lsn && !s.dropped.Swap(true) {
			select {
			case s.C <- struct{}{}:
			default:
			}
		}
	}
}
