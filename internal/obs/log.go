package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// audit is the process-wide audit/slow-query channel. nil until a
// binary opts in with SetAudit; the accessor then hands out a no-op
// logger so instrumented code never branches.
var audit atomic.Pointer[slog.Logger]

// nopLogger discards everything (level gate set above every level).
var nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// SetAudit installs the audit/slow-query logger (typically the server
// logger with a channel=audit attribute). Pass nil to disable.
func SetAudit(l *slog.Logger) { audit.Store(l) }

// Audit returns the audit logger, never nil. Callers log security
// events (declassifications, authority denials) and slow queries here
// with their trace IDs.
func Audit() *slog.Logger {
	if l := audit.Load(); l != nil {
		return l
	}
	return nopLogger
}

// AuditEnabled reports whether an audit logger is installed; hot paths
// use it to skip attribute construction entirely.
func AuditEnabled() bool { return audit.Load() != nil }

// Nop returns a logger that discards everything. Components with an
// optional Logger field fall back to it so call sites never nil-check.
func Nop() *slog.Logger { return nopLogger }

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}
