package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of doubling buckets. With base 1000ns the
// last finite bound is 1000<<30 ns ≈ 18 minutes; anything above lands
// in the implicit +Inf bucket.
const histBuckets = 31

// Histogram is a log-bucketed histogram: bucket i counts observations
// v with v <= base<<i; larger values count only toward +Inf.
// Observations and reads are lock-free; a scrape taken during
// concurrent observation sees each bucket atomically (totals may trail
// the buckets by in-flight observations, which Prometheus tolerates).
type Histogram struct {
	name    string
	base    int64
	scale   float64
	buckets [histBuckets]atomic.Int64
	inf     atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value (nanoseconds for duration histograms).
func (h *Histogram) Observe(v int64) {
	if disabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	if i := h.bucketOf(v); i < histBuckets {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// bucketOf returns the index of the smallest bucket whose bound is
// >= v, or histBuckets when v exceeds every finite bound.
func (h *Histogram) bucketOf(v int64) int {
	q := (v + h.base - 1) / h.base // ceil(v/base), in units of base
	if q <= 1 {
		return 0
	}
	return bits.Len64(uint64(q - 1)) // smallest i with 1<<i >= q
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values (pre-scale units).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bound returns the upper bound of bucket i in pre-scale units.
func (h *Histogram) Bound(i int) int64 { return h.base << uint(i) }

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets,
// returning the upper bound of the bucket containing it in pre-scale
// units — an upper-bound estimate, coarse by at most the bucket ratio
// of 2. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return h.Bound(i)
		}
	}
	// Landed in +Inf: report the largest finite bound.
	return h.Bound(histBuckets - 1)
}
