package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate: registering the same name twice returns the
// same collector, so multi-instance processes aggregate rather than
// shadow.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first help wins")
	b := r.Counter("x_total", "ignored")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	a.Add(2)
	if got := b.Value(); got != 2 {
		t.Fatalf("aliased counter = %d, want 2", got)
	}
	if h := r.Histogram("h", "", 1000, 1e-9); h != r.Histogram("h", "", 1, 1) {
		t.Fatal("same name produced distinct histograms")
	}
	if v := r.CounterVec("v", "", "l"); v.With("a") != v.With("a") {
		t.Fatal("same label value produced distinct children")
	}
}

// TestRegistryConcurrent hammers registration, mutation, and scraping
// from many goroutines at once; its real assertion is the race
// detector (the CI race job runs this package under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("conc_total", "")
			h := r.Histogram("conc_seconds", "", 1000, 1e-9)
			v := r.CounterVec("conc_by_shard", "", "shard")
			gu := r.Gauge("conc_gauge", "")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i) * 100)
				v.With(string(rune('a' + g%3))).Inc()
				gu.Set(int64(i))
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("conc_seconds", "", 1000, 1e-9).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestSetEnabled: the kill-switch drops counter adds and histogram
// observations but leaves gauges (cheap, state-bearing) alone.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("gate_total", "")
	h := r.Histogram("gate_seconds", "", 1000, 1e-9)
	g := r.Gauge("gate_gauge", "")
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	c.Inc()
	h.Observe(5)
	g.Set(7)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry mutated: counter=%d hist=%d", c.Value(), h.Count())
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7 (gauges ignore the kill-switch)", g.Value())
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Value())
	}
}

// TestHistogramBuckets checks the doubling-bucket boundaries and the
// upper-bound quantile estimate.
func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("b_seconds", "", 1000, 1e-9)
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0}, {1001, 1}, {2000, 1}, {2001, 2}, {4000, 2},
	} {
		if got := h.bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// 90 fast observations and 10 slow: p50 lands in the fast bucket's
	// bound, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(500) // bucket 0, bound 1000
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_500_000) // bound 2_048_000
	}
	if got := h.Quantile(0.50); got != 1000 {
		t.Fatalf("p50 = %d, want 1000", got)
	}
	if got := h.Quantile(0.99); got != 2_048_000 {
		t.Fatalf("p99 = %d, want 2048000", got)
	}
	// Values beyond the last finite bound count toward +Inf only.
	h2 := NewRegistry().Histogram("inf_seconds", "", 1000, 1e-9)
	h2.Observe(1000 << 40)
	if h2.Count() != 1 || h2.Quantile(1.0) != h2.Bound(histBuckets-1) {
		t.Fatal("+Inf observation mishandled")
	}
}

// TestTraceID: IDs are non-zero (zero means untraced on the wire),
// distinct per call, and format as fixed-width lowercase hex.
func TestTraceID(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
	if got := TraceID(0xdeadbeef); got != "00000000deadbeef" {
		t.Fatalf("TraceID(0xdeadbeef) = %q", got)
	}
	if got := TraceID(0); got != "0000000000000000" {
		t.Fatalf("TraceID(0) = %q", got)
	}
}

// TestParseLevel maps the -log-level spellings.
func TestParseLevel(t *testing.T) {
	if _, err := ParseLevel("chatty"); err == nil {
		t.Fatal(`ParseLevel("chatty") accepted`)
	}
	for _, good := range []string{"debug", "", "info", "warn", "error"} {
		if _, err := ParseLevel(good); err != nil {
			t.Fatalf("ParseLevel(%q): %v", good, err)
		}
	}
}

// TestSnapshot covers the point-in-time copy and the delta arithmetic
// the bench harness uses to scope registry numbers to one experiment.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	v := r.CounterVec("v_total", "", "shard")
	h := r.Histogram("h_seconds", "", 1000, 1e-9)

	c.Add(5)
	g.Set(3)
	v.With("0").Add(2)
	v.With("1").Add(7)
	for i := 0; i < 100; i++ {
		h.Observe(1500) // second bucket (bound 2000)
	}

	s1 := r.Snapshot()
	if s1.Counters["c_total"] != 5 || s1.Gauges["g"] != 3 {
		t.Fatalf("scalar snapshot wrong: %+v", s1)
	}
	if s1.Vecs["v_total"]["0"] != 2 || s1.Vecs["v_total"]["1"] != 7 {
		t.Fatalf("vec snapshot wrong: %+v", s1.Vecs)
	}
	hs := s1.Hists["h_seconds"]
	if hs.Count != 100 || hs.Sum != 150000 || hs.P50 != 2000 || hs.P99 != 2000 {
		t.Fatalf("hist snapshot wrong: %+v", hs)
	}

	c.Add(10)
	g.Set(1)
	v.With("1").Add(3)
	v.With("2").Inc() // series born after s1
	h.Observe(1_000_000)

	d := r.Snapshot().Sub(s1)
	if d.Counters["c_total"] != 10 {
		t.Fatalf("counter delta = %d, want 10", d.Counters["c_total"])
	}
	if d.Gauges["g"] != 1 {
		t.Fatalf("gauge keeps point-in-time value, got %d", d.Gauges["g"])
	}
	if d.Vecs["v_total"]["0"] != 0 || d.Vecs["v_total"]["1"] != 3 || d.Vecs["v_total"]["2"] != 1 {
		t.Fatalf("vec delta wrong: %+v", d.Vecs["v_total"])
	}
	dh := d.Hists["h_seconds"]
	if dh.Count != 1 || dh.Sum != 1_000_000 {
		t.Fatalf("hist delta wrong: %+v", dh)
	}
}
