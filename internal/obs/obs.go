// Package obs is the zero-dependency observability substrate: a
// process-wide metrics registry (atomic counters, gauges, and
// log-bucketed latency histograms), a Prometheus text-format encoder,
// leveled slog helpers with a dedicated audit channel, and the trace
// IDs that ride the wire protocol from client to slow-query log.
//
// Metrics are registered by package-level var declarations in the
// instrumented packages, so every series a binary can emit appears in
// /metrics from the first scrape (at zero) rather than materializing
// on first use. Registration is get-or-create: asking twice for the
// same name returns the same collector, which keeps tests and
// multi-instance processes (the bench harness opens many engines)
// well-defined — counters aggregate across instances.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// disabled turns Counter.Add and Histogram.Observe into no-ops when
// set. The bench harness uses it to measure the registry's own
// overhead; everything else leaves it alone (enabled).
var disabled atomic.Bool

// SetEnabled toggles metric collection process-wide. Registration and
// gauges are unaffected; only the hot-path mutators (counter adds,
// histogram observations) become no-ops when disabled.
func SetEnabled(v bool) { disabled.Store(!v) }

// Enabled reports whether metric collection is active.
func Enabled() bool { return !disabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// CounterVec is a family of counters distinguished by one label
// (e.g. per-shard routing counts).
type CounterVec struct {
	name  string
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{name: v.name}
		v.kids[value] = c
	}
	return c
}

// snapshot returns label values in sorted order with their counters.
func (v *CounterVec) snapshot() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, len(keys))
	for i, k := range keys {
		out[i] = v.kids[k]
	}
	return keys, out
}

// Registry holds every registered collector. The package-level
// Default registry is what the instrumented packages use and what the
// /metrics endpoint serves.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	vecs     map[string]*CounterVec
	help     map[string]string
}

// NewRegistry returns an empty registry (tests; production code uses
// Default).
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		vecs:     map[string]*CounterVec{},
		help:     map[string]string{},
	}
}

// Default is the process-wide registry.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it with
// the given help text on first call.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// call.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// CounterVec returns the one-label counter family registered under
// name, creating it on first call.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vecs[name]; ok {
		return v
	}
	v := &CounterVec{name: name, label: label, kids: map[string]*Counter{}}
	r.vecs[name] = v
	r.help[name] = help
	return v
}

// Histogram returns the histogram registered under name, creating it
// on first call. base is the upper bound of the first bucket; each
// subsequent bucket doubles it. scale converts stored values to the
// exposition unit (1e-9 turns nanoseconds into seconds; 1 leaves
// counts as counts).
func (r *Registry) Histogram(name, help string, base int64, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, base: base, scale: scale}
	r.hists[name] = h
	r.help[name] = help
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewCounterVec registers a one-label counter family in the Default
// registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.CounterVec(name, help, label)
}

// NewDurationHistogram registers a nanosecond-valued histogram whose
// first bucket tops out at 1µs and whose exposition unit is seconds.
func NewDurationHistogram(name, help string) *Histogram {
	return Default.Histogram(name, help, 1000, 1e-9)
}

// NewSizeHistogram registers a histogram over plain counts (batch
// sizes, fan-out widths): first bucket ≤ 1, doubling.
func NewSizeHistogram(name, help string) *Histogram {
	return Default.Histogram(name, help, 1, 1)
}
