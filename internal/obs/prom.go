package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered collector in Prometheus
// text exposition format (version 0.0.4), families sorted by name so
// the output is stable and golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type family struct {
		name string
		kind string // "counter", "gauge", "histogram", "vec"
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.vecs))
	for n := range r.counters {
		fams = append(fams, family{n, "counter"})
	}
	for n := range r.gauges {
		fams = append(fams, family{n, "gauge"})
	}
	for n := range r.hists {
		fams = append(fams, family{n, "histogram"})
	}
	for n := range r.vecs {
		fams = append(fams, family{n, "vec"})
	}
	counters, gauges, hists, vecs, help := r.counters, r.gauges, r.hists, r.vecs, r.help
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if h := help[f.name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, h); err != nil {
				return err
			}
		}
		typ := f.kind
		if typ == "vec" {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		var err error
		switch f.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, counters[f.name].Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, gauges[f.name].Value())
		case "vec":
			v := vecs[f.name]
			keys, kids := v.snapshot()
			for i, k := range keys {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %d\n", f.name, v.label, k, kids[i].Value()); err != nil {
					break
				}
			}
		case "histogram":
			err = writeHistogram(w, hists[f.name], f.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, h *Histogram, name string) error {
	// Empty buckets are omitted: a sparse, cumulative le set is valid
	// exposition and keeps 31-bucket histograms readable.
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		// 12 significant digits: enough for any bucket bound, and it
		// rounds away float dust like 1000*1e-9 = 1.0000000000000002e-06.
		le := strconv.FormatFloat(float64(h.Bound(i))*h.scale, 'g', 12, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name,
		strconv.FormatFloat(float64(h.Sum())*h.scale, 'g', 12, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	return err
}

// Handler returns the HTTP mux served on -metrics-listen: /metrics in
// Prometheus text format plus the full net/http/pprof suite under
// /debug/pprof/ (CPU, heap, mutex, block, goroutine).
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
