package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the text exposition byte-for-byte:
// families sorted by name, HELP/TYPE headers, one-label vec children
// sorted by label value, and sparse cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Total requests.").Add(3)
	r.Gauge("t_depth", "Queue depth.").Set(-2)
	v := r.CounterVec("t_by_shard_total", "Per-shard requests.", "shard")
	v.With("1").Add(2)
	v.With("0").Add(1)
	h := r.Histogram("t_lat_seconds", "Request latency.", 1000, 1e-9)
	h.Observe(500)
	h.Observe(500)
	h.Observe(1500)
	h.Observe(1000 << 40) // beyond the last finite bound: +Inf only

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_by_shard_total Per-shard requests.
# TYPE t_by_shard_total counter
t_by_shard_total{shard="0"} 1
t_by_shard_total{shard="1"} 2
# HELP t_depth Queue depth.
# TYPE t_depth gauge
t_depth -2
# HELP t_lat_seconds Request latency.
# TYPE t_lat_seconds histogram
t_lat_seconds_bucket{le="1e-06"} 2
t_lat_seconds_bucket{le="2e-06"} 3
t_lat_seconds_bucket{le="+Inf"} 4
t_lat_seconds_sum 1099511.62778
t_lat_seconds_count 4
# HELP t_requests_total Total requests.
# TYPE t_requests_total counter
t_requests_total 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandlerServesMetrics: the -metrics-listen mux serves /metrics
// with the Prometheus content type and mounts pprof.
func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_up_total", "Up.").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(string(body), "t_up_total 1") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}

	res, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: %d", res.StatusCode)
	}
}
