package obs

// Snapshot is a point-in-time copy of every collector in a registry,
// in plain maps the bench harness can embed in a JSON report or
// subtract from an earlier snapshot. Values are read with the same
// atomics the Prometheus encoder uses; a snapshot taken under
// concurrent load is per-collector consistent, not cross-collector.
type Snapshot struct {
	Counters map[string]int64            `json:"counters,omitempty"`
	Gauges   map[string]int64            `json:"gauges,omitempty"`
	Vecs     map[string]map[string]int64 `json:"vecs,omitempty"`
	Hists    map[string]HistSnap         `json:"hists,omitempty"`
}

// HistSnap summarizes one histogram: totals plus the quantiles a perf
// report actually compares. Quantiles are bucket upper bounds in the
// histogram's pre-scale unit (nanoseconds for duration histograms).
type HistSnap struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	vecs := make(map[string]*CounterVec, len(r.vecs))
	for k, v := range r.vecs {
		vecs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Vecs:     make(map[string]map[string]int64, len(vecs)),
		Hists:    make(map[string]HistSnap, len(hists)),
	}
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, v := range vecs {
		keys, kids := v.snapshot()
		m := make(map[string]int64, len(keys))
		for i, k := range keys {
			m[k] = kids[i].Value()
		}
		s.Vecs[name] = m
	}
	for name, h := range hists {
		s.Hists[name] = HistSnap{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	return s
}

// Sub returns s minus prev, per series: counters, vec members, and
// histogram counts/sums become deltas (new series keep their value);
// gauges and histogram quantiles keep s's point-in-time values, since
// subtracting them is meaningless. Use it to scope registry numbers to
// one experiment in a process that runs several.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Vecs:     make(map[string]map[string]int64, len(s.Vecs)),
		Hists:    make(map[string]HistSnap, len(s.Hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, m := range s.Vecs {
		pm := prev.Vecs[name]
		om := make(map[string]int64, len(m))
		for k, v := range m {
			om[k] = v - pm[k]
		}
		out.Vecs[name] = om
	}
	for name, h := range s.Hists {
		ph := prev.Hists[name]
		h.Count -= ph.Count
		h.Sum -= ph.Sum
		out.Hists[name] = h
	}
	return out
}
