package obs

import (
	"os"
	"sync/atomic"
	"time"
)

// traceSeq seeds per-statement trace IDs. The sequence base mixes
// boot time and pid so IDs from different client processes don't
// collide in a shared slow-query log; splitmix64 spreads consecutive
// sequence numbers across the ID space.
var traceSeq = func() *atomic.Uint64 {
	var v atomic.Uint64
	v.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
	return &v
}()

// NewTraceID returns a non-zero statement trace ID. Zero means "no
// trace" on the wire, so it is never returned.
func NewTraceID() uint64 {
	for {
		if id := splitmix64(traceSeq.Add(1)); id != 0 {
			return id
		}
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceID formats a trace ID the way log lines and \stats print it.
func TraceID(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
