package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ifdb/internal/label"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("Null")
	}
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt {
		t.Fatal("Int")
	}
	if v := NewFloat(2.5); v.Float() != 2.5 {
		t.Fatal("Float")
	}
	if v := NewText("hi"); v.Text() != "hi" {
		t.Fatal("Text")
	}
	if v := NewBool(true); !v.Bool() || !v.Truthy() {
		t.Fatal("Bool")
	}
	if v := NewBool(false); v.Truthy() {
		t.Fatal("false truthy")
	}
	ts := time.Date(2013, 4, 15, 12, 0, 0, 0, time.UTC)
	if v := NewTime(ts); !v.Time().Equal(ts) {
		t.Fatal("Time")
	}
	l := label.New(1, 2)
	if v := NewLabel(l); !v.Label().Equal(l) {
		t.Fatal("Label")
	}
	// Int() on float must panic: catch misuse early.
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on float did not panic")
		}
	}()
	_ = NewFloat(1).Int()
}

func TestEqualCrossNumeric(t *testing.T) {
	if !NewInt(1).Equal(NewFloat(1.0)) {
		t.Fatal("1 != 1.0")
	}
	if NewInt(1).Equal(NewFloat(1.5)) {
		t.Fatal("1 == 1.5")
	}
	if NewInt(1).Equal(NewText("1")) {
		t.Fatal("1 == '1'")
	}
	if !Null.Equal(Null) {
		t.Fatal("NULL != NULL at storage level")
	}
	if Null.Equal(NewInt(0)) {
		t.Fatal("NULL == 0")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, NewInt(1), -1},
		{NewInt(1), Null, 1},
		{Null, Null, 0},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewText("a"), NewText("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewLabel(label.New(1)), NewLabel(label.New(1, 2)), -1},
		{NewLabel(label.New(2)), NewLabel(label.New(1, 2)), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLargeIntCompareExact(t *testing.T) {
	// Values beyond float53 must still compare exactly.
	a := NewInt(1 << 60)
	b := NewInt(1<<60 + 1)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Fatal("large int comparison lost precision")
	}
}

func TestCoerce(t *testing.T) {
	if v, err := NewInt(3).Coerce(KindFloat); err != nil || v.Float() != 3.0 {
		t.Fatalf("int->float: %v %v", v, err)
	}
	if v, err := NewFloat(3.0).Coerce(KindInt); err != nil || v.Int() != 3 {
		t.Fatalf("float->int: %v %v", v, err)
	}
	if _, err := NewFloat(3.5).Coerce(KindInt); err == nil {
		t.Fatal("lossy float->int allowed")
	}
	if v, err := NewText("2013-04-15 12:30:00").Coerce(KindTime); err != nil || v.Time().Hour() != 12 {
		t.Fatalf("text->time: %v %v", v, err)
	}
	if v, err := NewText("2013-04-15").Coerce(KindTime); err != nil || v.Time().Year() != 2013 {
		t.Fatalf("date->time: %v %v", v, err)
	}
	if _, err := NewText("nope").Coerce(KindTime); err == nil {
		t.Fatal("bad time coerced")
	}
	if _, err := NewBool(true).Coerce(KindInt); err == nil {
		t.Fatal("bool->int allowed")
	}
	if v, err := Null.Coerce(KindInt); err != nil || !v.IsNull() {
		t.Fatal("NULL must coerce to anything")
	}
	if !NewInt(1).CoercibleTo(KindFloat) || NewBool(true).CoercibleTo(KindText) {
		t.Fatal("CoercibleTo wrong")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewText("x"), "x"},
		{NewBool(true), "t"},
		{NewBool(false), "f"},
		{NewLabel(label.New(3, 1)), "{1,3}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(7) {
	case 0:
		return Null
	case 1:
		return NewInt(r.Int63() - r.Int63())
	case 2:
		return NewFloat(r.NormFloat64())
	case 3:
		buf := make([]byte, r.Intn(20))
		r.Read(buf)
		return NewText(string(buf))
	case 4:
		return NewBool(r.Intn(2) == 0)
	case 5:
		return NewTime(time.UnixMicro(r.Int63n(1 << 50)).UTC())
	default:
		n := r.Intn(4)
		tags := make([]label.Tag, n)
		for i := range tags {
			tags[i] = label.Tag(1 + r.Intn(100))
		}
		return NewLabel(label.New(tags...))
	}
}

// Property: every value round-trips through the binary encoding and
// EncodedSize is exact.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randValue(r)
		buf, err := AppendEncode(nil, v)
		if err != nil {
			return false
		}
		if len(buf) != EncodedSize(v) {
			return false
		}
		got, n, err := DecodeValue(buf)
		if err != nil || n != len(buf) {
			return false
		}
		// NaN != NaN; compare bit patterns via String for floats.
		if v.Kind() == KindFloat && math.IsNaN(v.Float()) {
			return got.Kind() == KindFloat && math.IsNaN(got.Float())
		}
		return got.Equal(v) && got.Kind() == v.Kind()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: rows round-trip.
func TestQuickRowRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := make([]Value, r.Intn(8))
		for i := range row {
			row[i] = randValue(r)
		}
		buf, err := EncodeRow(nil, row)
		if err != nil {
			return false
		}
		got, n, err := DecodeRow(buf)
		if err != nil || n != len(buf) || len(got) != len(row) {
			return false
		}
		for i := range row {
			if row[i].Kind() == KindFloat && math.IsNaN(row[i].Float()) {
				continue
			}
			if !got[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Fatal("decoded empty")
	}
	if _, _, err := DecodeValue([]byte{byte(KindInt), 1, 2}); err == nil {
		t.Fatal("decoded truncated int")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Fatal("decoded unknown kind")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Fatal("decoded empty row")
	}
	// Row claiming 3 values but containing 1.
	buf, _ := EncodeRow(nil, []Value{NewInt(1)})
	buf[0] = 3
	if _, _, err := DecodeRow(buf); err == nil {
		t.Fatal("decoded short row")
	}
}
