// Package types defines the SQL value system shared by the storage
// engine, executor, and wire protocol.
//
// The type set is the subset of PostgreSQL types the IFDB case studies
// and benchmarks need: integers, floats, text, booleans, timestamps,
// and the INT[] representation used by the immutable _label system
// column (paper §4.2).
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"ifdb/internal/label"
)

// Kind enumerates value types.
type Kind uint8

// Value kinds.
const (
	KindNull  Kind = iota
	KindInt        // 64-bit signed integer
	KindFloat      // 64-bit float
	KindText       // UTF-8 string
	KindBool       // boolean
	KindTime       // timestamp (UTC, microsecond precision)
	KindLabel      // INT[] — label arrays, used only by the _label column
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE PRECISION"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindLabel:
		return "INT[]"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is one SQL datum. The zero Value is SQL NULL.
//
// Value is a compact tagged union: scalar payloads live in the n field,
// text in s, and labels in l. It is passed by value everywhere; labels
// are the only case with reference semantics and are treated as
// immutable.
type Value struct {
	kind Kind
	n    int64 // int, bool (0/1), time (unix micros), float (bits)
	s    string
	l    label.Label
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{kind: KindInt, n: v} }

// NewFloat returns a DOUBLE PRECISION value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, n: int64(math.Float64bits(v))} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// NewTime returns a TIMESTAMP value with microsecond precision (UTC).
func NewTime(t time.Time) Value { return Value{kind: KindTime, n: t.UnixMicro()} }

// NewLabel returns an INT[] value holding a label (used by _label).
func NewLabel(l label.Label) Value { return Value{kind: KindLabel, l: l} }

// Kind returns the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. Panics if v is not a BIGINT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.n
}

// Float returns the float payload, converting integers.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(uint64(v.n))
	case KindInt:
		return float64(v.n)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Text returns the string payload. Panics if v is not TEXT.
func (v Value) Text() string {
	if v.kind != KindText {
		panic(fmt.Sprintf("types: Text() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. Panics if v is not BOOLEAN.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.n != 0
}

// Time returns the timestamp payload. Panics if v is not TIMESTAMP.
func (v Value) Time() time.Time {
	if v.kind != KindTime {
		panic(fmt.Sprintf("types: Time() on %s value", v.kind))
	}
	return time.UnixMicro(v.n).UTC()
}

// Label returns the label payload. Panics if v is not INT[].
func (v Value) Label() label.Label {
	if v.kind != KindLabel {
		panic(fmt.Sprintf("types: Label() on %s value", v.kind))
	}
	return v.l
}

// Equal reports deep equality, with NULL equal only to NULL.
// (SQL three-valued logic is handled in the executor; Equal is the
// storage-level identity used by keys and tests.)
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Numeric cross-kind equality (1 = 1.0) matters for keys built
		// from mixed literals.
		if (v.kind == KindInt || v.kind == KindFloat) && (o.kind == KindInt || o.kind == KindFloat) {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindText:
		return v.s == o.s
	case KindLabel:
		return v.l.Equal(o.l)
	default:
		return v.n == o.n
	}
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything.
// Values of incomparable kinds order by kind (stable but arbitrary),
// which keeps index keys total.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == KindNull && o.kind == KindNull:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	vn := v.kind == KindInt || v.kind == KindFloat
	on := o.kind == KindInt || o.kind == KindFloat
	if vn && on {
		a, b := v.Float(), o.Float()
		// Exact path for int/int comparison avoids float rounding.
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.n < o.n:
				return -1
			case v.n > o.n:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindText:
		return strings.Compare(v.s, o.s)
	case KindLabel:
		a, b := v.l, o.l
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		default:
			return 0
		}
	default: // int-encoded scalars of same kind
		switch {
		case v.n < o.n:
			return -1
		case v.n > o.n:
			return 1
		default:
			return 0
		}
	}
}

// Truthy interprets v as a SQL condition result: TRUE is true, FALSE
// and NULL are not.
func (v Value) Truthy() bool { return v.kind == KindBool && v.n != 0 }

// String renders v for display (psql-ish formatting).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.n != 0 {
			return "t"
		}
		return "f"
	case KindTime:
		return v.Time().Format("2006-01-02 15:04:05.999999")
	case KindLabel:
		return v.l.String()
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// CoercibleTo reports whether v can be stored in a column of kind k.
func (v Value) CoercibleTo(k Kind) bool {
	if v.kind == KindNull || v.kind == k {
		return true
	}
	switch {
	case v.kind == KindInt && k == KindFloat:
		return true
	case v.kind == KindFloat && k == KindInt:
		return v.Float() == math.Trunc(v.Float())
	case v.kind == KindText && k == KindTime:
		_, err := time.Parse("2006-01-02 15:04:05", v.s)
		if err != nil {
			_, err = time.Parse("2006-01-02", v.s)
		}
		return err == nil
	}
	return false
}

// Coerce converts v to kind k, or returns an error if impossible.
func (v Value) Coerce(k Kind) (Value, error) {
	if v.kind == KindNull || v.kind == k {
		return v, nil
	}
	switch {
	case v.kind == KindInt && k == KindFloat:
		return NewFloat(float64(v.n)), nil
	case v.kind == KindFloat && k == KindInt:
		f := v.Float()
		if f != math.Trunc(f) {
			return Null, fmt.Errorf("types: cannot coerce %g to BIGINT without loss", f)
		}
		return NewInt(int64(f)), nil
	case v.kind == KindText && k == KindTime:
		if t, err := time.Parse("2006-01-02 15:04:05", v.s); err == nil {
			return NewTime(t), nil
		}
		if t, err := time.Parse("2006-01-02", v.s); err == nil {
			return NewTime(t), nil
		}
		return Null, fmt.Errorf("types: cannot parse %q as TIMESTAMP", v.s)
	}
	return Null, fmt.Errorf("types: cannot coerce %s to %s", v.kind, k)
}
