package types

import (
	"encoding/binary"
	"fmt"
	"math"

	"ifdb/internal/label"
)

// Binary encoding of values for the paged heap and the wire protocol.
//
// Layout per value: 1 kind byte, then a kind-specific payload:
//   NULL            — nothing
//   BIGINT/BOOL/TS  — 8-byte little-endian
//   DOUBLE          — 8-byte IEEE bits
//   TEXT            — uvarint length + bytes
//   INT[] (label)   — label encoding (1 count byte + 4 bytes/tag)

// AppendEncode appends the binary encoding of v to buf.
func AppendEncode(buf []byte, v Value) ([]byte, error) {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
		return buf, nil
	case KindInt, KindBool, KindTime:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.n)), nil
	case KindFloat:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.n)), nil
	case KindText:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		return append(buf, v.s...), nil
	case KindLabel:
		return label.AppendEncode(buf, v.l)
	default:
		return buf, fmt.Errorf("types: cannot encode kind %d", v.kind)
	}
}

// DecodeValue reads one value from the front of buf, returning it and
// the number of bytes consumed.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) < 1 {
		return Null, 0, fmt.Errorf("types: short buffer")
	}
	k := Kind(buf[0])
	rest := buf[1:]
	switch k {
	case KindNull:
		return Null, 1, nil
	case KindInt, KindBool, KindTime, KindFloat:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("types: truncated %s", k)
		}
		n := int64(binary.LittleEndian.Uint64(rest))
		return Value{kind: k, n: n}, 9, nil
	case KindText:
		ln, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return Null, 0, fmt.Errorf("types: bad text length")
		}
		if uint64(len(rest)-sz) < ln {
			return Null, 0, fmt.Errorf("types: truncated text")
		}
		s := string(rest[sz : sz+int(ln)])
		return Value{kind: KindText, s: s}, 1 + sz + int(ln), nil
	case KindLabel:
		l, n, err := label.Decode(rest)
		if err != nil {
			return Null, 0, err
		}
		return NewLabel(l), 1 + n, nil
	default:
		return Null, 0, fmt.Errorf("types: unknown kind byte %d", buf[0])
	}
}

// EncodedSize returns the size AppendEncode would produce for v.
func EncodedSize(v Value) int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindBool, KindTime, KindFloat:
		return 9
	case KindText:
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(v.s)))
		return 1 + n + len(v.s)
	case KindLabel:
		return 1 + label.EncodedSize(len(v.l))
	default:
		return 1
	}
}

// EncodeRow encodes a row (values only; labels and MVCC metadata are
// the heap's concern).
func EncodeRow(buf []byte, row []Value) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	var err error
	for _, v := range row {
		if buf, err = AppendEncode(buf, v); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// DecodeRow decodes a row encoded by EncodeRow, returning the values
// and bytes consumed.
func DecodeRow(buf []byte) ([]Value, int, error) {
	n, sz := binary.Uvarint(buf)
	// Each value encodes to at least one byte: a count the remaining
	// buffer cannot hold is corruption, caught before the allocation
	// sized by it.
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return nil, 0, fmt.Errorf("types: bad row header")
	}
	off := sz
	row := make([]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		v, used, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("types: row col %d: %w", i, err)
		}
		row = append(row, v)
		off += used
	}
	return row, off, nil
}

// Float64FromBits is a helper for tests exercising float edge cases.
func Float64FromBits(b uint64) float64 { return math.Float64frombits(b) }
