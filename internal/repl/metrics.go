package repl

import "ifdb/internal/obs"

// Replication metrics, registered at init so every series is present
// (at zero) from the first scrape.
//
// The two gauges describe "the" stream from this process's point of
// view: on a primary serving several followers, ifdb_repl_lag_bytes
// holds the lag of whichever stream shipped most recently — a
// per-follower breakdown would need labels the registry deliberately
// keeps to one dimension, and the common deployments (one follower, or
// "is anyone behind?") are answered by the last-writer value plus the
// bytes-shipped rate.
var (
	mBytesShipped = obs.NewCounter("ifdb_repl_bytes_shipped_total",
		"WAL bytes shipped to followers by the replication primary.")
	mBasebackups = obs.NewCounter("ifdb_repl_basebackups_total",
		"Full state transfers served; climbing means followers keep falling off the retained log.")
	mReconnects = obs.NewCounter("ifdb_repl_reconnects_total",
		"Follower reconnect attempts after a dropped stream.")
	gAppliedLSN = obs.NewGauge("ifdb_repl_applied_lsn",
		"Primary WAL position this follower has applied through.")
	gLagBytes = obs.NewGauge("ifdb_repl_lag_bytes",
		"Bytes between the primary's WAL end and the most recently shipped stream position.")
)
