// The replication test suite: primary and follower in one process
// over real TCP sockets. Covers convergence (visible state identical
// down to TIDs and labels), catch-up after a follower restart from its
// persisted LSN, re-bootstrap after falling off the retained log,
// write rejection, and IFC label enforcement on the replica.
package repl

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ifdb/internal/engine"
	"ifdb/internal/storage"
	"ifdb/internal/wal"
)

func mustExec(t *testing.T, s *engine.Session, q string) {
	t.Helper()
	if _, err := s.Exec(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

// startPrimary opens a durable primary engine and serves replication
// on a loopback socket.
func startPrimary(t *testing.T, ifc bool) (*engine.Engine, *Primary, string) {
	t.Helper()
	eng, err := engine.New(engine.Config{IFC: ifc, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(eng, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	t.Cleanup(func() {
		p.Close()
		eng.Close()
	})
	return eng, p, ln.Addr().String()
}

func openFollower(t *testing.T, addr, dir string, ifc bool) *Follower {
	t.Helper()
	f, err := Open(Config{Addr: addr, DataDir: dir, IFC: ifc, RetryInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// waitConverge blocks until the follower has applied everything the
// primary has logged (forcing the primary's durable horizon to its
// append edge first, since only durable bytes ship).
func waitConverge(t *testing.T, primary *engine.Engine, f *Follower) {
	t.Helper()
	if err := primary.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	target := primary.WAL().End()
	deadline := time.Now().Add(10 * time.Second)
	for f.AppliedLSN() < target {
		if err := f.Err(); err != nil {
			t.Fatalf("follower died: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at lsn %d, want %d", f.AppliedLSN(), target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dumpState serializes an engine's committed-visible state: every
// table in name order, every committed version in TID order with its
// labels and a canonical deleted marker. Primary and replica dumps
// must be byte-equal.
func dumpState(e *engine.Engine) string {
	var b strings.Builder
	tabs := e.Catalog().Tables()
	sort.Slice(tabs, func(i, j int) bool { return tabs[i].Name < tabs[j].Name })
	tm := e.TxnManager()
	for _, tab := range tabs {
		fmt.Fprintf(&b, "table %s disk=%v\n", tab.Name, tab.OnDisk)
		tab.Heap.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
			seq, ok := tm.Committed(tv.Xmin)
			if !ok {
				return true // in flight or aborted: not state
			}
			deleted := false
			if tv.Xmax != storage.InvalidXID {
				if _, ok := tm.Committed(tv.Xmax); ok {
					deleted = true
				}
			}
			fmt.Fprintf(&b, "  tid=%d xmin=%d seq=%d del=%v l=%v il=%v row=%v\n",
				tid, tv.Xmin, seq, deleted, tv.Label, tv.ILabel, tv.Row)
			return true
		})
	}
	return b.String()
}

// TestReplicaConverges is the core contract: a fresh follower
// bootstraps, tails the WAL, and ends up with byte-identical visible
// state — mem and disk tables, labels, deletes, sequences — and
// serves reads from it.
func TestReplicaConverges(t *testing.T) {
	eng, p, addr := startPrimary(t, true)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE m (id BIGINT PRIMARY KEY, v TEXT)`)
	mustExec(t, s, `CREATE TABLE d (id BIGINT PRIMARY KEY, v TEXT) USING DISK`)
	for i := 0; i < 200; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO m VALUES (%d, 'm%d')`, i, i))
		mustExec(t, s, fmt.Sprintf(`INSERT INTO d VALUES (%d, 'd%d')`, i, i))
	}
	mustExec(t, s, `UPDATE m SET v = 'updated' WHERE id < 10`)
	mustExec(t, s, `DELETE FROM d WHERE id >= 190`)

	f := openFollower(t, addr, t.TempDir(), true)
	defer f.Close()
	waitConverge(t, eng, f)
	if got := p.Basebackups.Load(); got != 1 {
		t.Fatalf("want 1 basebackup, got %d", got)
	}
	if a, b := dumpState(eng), dumpState(f.Engine()); a != b {
		t.Fatalf("state diverged after bootstrap:\nprimary:\n%s\nreplica:\n%s", a, b)
	}

	// Keep writing: the live tail must converge too.
	mustExec(t, s, `INSERT INTO m VALUES (1000, 'tail')`)
	mustExec(t, s, `DELETE FROM m WHERE id = 5`)
	waitConverge(t, eng, f)
	if a, b := dumpState(eng), dumpState(f.Engine()); a != b {
		t.Fatalf("state diverged after tailing:\nprimary:\n%s\nreplica:\n%s", a, b)
	}

	// The replica serves reads over the replicated state.
	r := f.Engine().NewSession(f.Engine().Admin())
	res, err := r.Exec(`SELECT v FROM m WHERE id = 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "tail" {
		t.Fatalf("replica read: %v", res.Rows)
	}
	// Explicit transactions work for reads.
	mustExec(t, r, `BEGIN`)
	if _, err := r.Exec(`SELECT * FROM d`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, r, `COMMIT`)
}

// TestReplicaRejectsWrites: every mutation path on a replica fails
// with ErrReadOnlyReplica.
func TestReplicaRejectsWrites(t *testing.T) {
	eng, _, addr := startPrimary(t, true)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (a BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	f := openFollower(t, addr, t.TempDir(), true)
	defer f.Close()
	waitConverge(t, eng, f)

	re := f.Engine()
	r := re.NewSession(re.Admin())
	for _, q := range []string{
		`INSERT INTO t VALUES (2)`,
		`UPDATE t SET a = 3`,
		`DELETE FROM t`,
		`CREATE TABLE u (a BIGINT)`,
		`DROP TABLE t`,
		`CREATE INDEX t_a ON t (a)`,
		// SELECT-invocable mutations: sequence allocation draws from
		// counters the stream owns, and registration would fork them.
		`SELECT create_sequence('sneaky_seq')`,
		`SELECT nextval('sneaky_seq')`,
	} {
		if _, err := r.Exec(q); !errors.Is(err, engine.ErrReadOnlyReplica) {
			t.Fatalf("%s: want ErrReadOnlyReplica, got %v", q, err)
		}
	}
	// A write inside an explicit transaction is rejected too.
	mustExec(t, r, `BEGIN`)
	if _, err := r.Exec(`INSERT INTO t VALUES (9)`); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("txn write: want ErrReadOnlyReplica, got %v", err)
	}
	// Authority-state mutations are writes as well.
	if _, err := r.CreatePrincipal("mallory"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("CreatePrincipal: want ErrReadOnlyReplica, got %v", err)
	}
	if _, err := r.CreateTag("sneaky"); !errors.Is(err, engine.ErrReadOnlyReplica) {
		t.Fatalf("CreateTag: want ErrReadOnlyReplica, got %v", err)
	}
	// Nothing leaked through.
	waitConverge(t, eng, f)
	if a, b := dumpState(eng), dumpState(re); a != b {
		t.Fatalf("rejected writes changed replica state:\n%s\nvs\n%s", a, b)
	}
}

// TestReplicaEnforcesLabels: Query by Label confines replica reads
// exactly as primary reads — an unauthorized principal neither sees
// secret tuples nor can declassify, on either side.
func TestReplicaEnforcesLabels(t *testing.T) {
	eng, _, addr := startPrimary(t, true)
	admin := eng.NewSession(eng.Admin())
	mustExec(t, admin, `CREATE TABLE patients (name TEXT PRIMARY KEY, diagnosis TEXT)`)

	alice := eng.CreatePrincipal("alice")
	tag, err := eng.CreateTag(alice, "alice_medical")
	if err != nil {
		t.Fatal(err)
	}
	sa := eng.NewSession(alice)
	if err := sa.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO patients VALUES ('Alice', 'HIV')`)
	if err := sa.Declassify(tag); err != nil {
		t.Fatal(err)
	}
	mallory := eng.CreatePrincipal("mallory")

	f := openFollower(t, addr, t.TempDir(), true)
	defer f.Close()
	waitConverge(t, eng, f)
	re := f.Engine()

	// The replicated authority state resolves the same principals.
	rAlice, ok := re.Authority().PrincipalByName("alice")
	if !ok || rAlice != alice {
		t.Fatalf("alice not replicated: %v %v", rAlice, ok)
	}
	rMallory, ok := re.Authority().PrincipalByName("mallory")
	if !ok {
		t.Fatal("mallory not replicated")
	}

	check := func(side string, e *engine.Engine, m, a *engine.Session) {
		t.Helper()
		// Uncontaminated: the secret row is invisible.
		res, err := m.Exec(`SELECT name FROM patients`)
		if err != nil {
			t.Fatalf("%s: %v", side, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("%s: unlabeled session saw secret rows: %v", side, res.Rows)
		}
		// Contaminated: visible, but mallory cannot shed the tag.
		if err := m.AddSecrecy(tag); err != nil {
			t.Fatalf("%s: %v", side, err)
		}
		res, err = m.Exec(`SELECT diagnosis FROM patients WHERE name = 'Alice'`)
		if err != nil {
			t.Fatalf("%s: %v", side, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Text() != "HIV" {
			t.Fatalf("%s: contaminated read failed: %v", side, res.Rows)
		}
		if err := m.Declassify(tag); !errors.Is(err, engine.ErrAuthority) {
			t.Fatalf("%s: mallory declassified: %v", side, err)
		}
		// Alice's own authority works on both sides.
		if err := a.AddSecrecy(tag); err != nil {
			t.Fatalf("%s: %v", side, err)
		}
		if err := a.Declassify(tag); err != nil {
			t.Fatalf("%s: alice denied her own authority: %v", side, err)
		}
	}
	check("primary", eng, eng.NewSession(mallory), eng.NewSession(alice))
	check("replica", re, re.NewSession(rMallory), re.NewSession(rAlice))
}

// TestFollowerRestartCatchesUp: a follower closed mid-stream reopens,
// resumes from its persisted LSN (no second basebackup), and catches
// up — including writes that happened while it was down.
func TestFollowerRestartCatchesUp(t *testing.T) {
	eng, p, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	for i := 0; i < 50; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i))
	}

	dir := t.TempDir()
	f := openFollower(t, addr, dir, false)
	waitConverge(t, eng, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes while the follower is down.
	for i := 50; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i))
	}
	mustExec(t, s, `UPDATE t SET v = -1 WHERE id < 5`)

	f2 := openFollower(t, addr, dir, false)
	defer f2.Close()
	waitConverge(t, eng, f2)
	if got := p.Basebackups.Load(); got != 1 {
		t.Fatalf("restart took a second basebackup (got %d); resume from the persisted LSN failed", got)
	}
	if a, b := dumpState(eng), dumpState(f2.Engine()); a != b {
		t.Fatalf("state diverged after restart:\n%s\nvs\n%s", a, b)
	}
}

// TestFollowerCrashRestartCatchesUp is the unclean variant: the
// follower engine "crashes" (no final checkpoint, lock released as on
// process death), and the rebuilt follower must still converge — the
// RecReplLSN barrier in its own WAL carries the resume position, and
// re-shipped records apply idempotently.
func TestFollowerCrashRestartCatchesUp(t *testing.T) {
	eng, _, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`)
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i))
	}

	dir := t.TempDir()
	f := openFollower(t, addr, dir, false)
	waitConverge(t, eng, f)

	// Crash: stop the stream, then kill the engine without Close.
	f.mu.Lock()
	f.closed = true
	conn := f.conn
	f.mu.Unlock()
	conn.Close()
	<-f.done
	f.Engine().Crash()
	f.lock.Release()

	for i := 30; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i))
	}

	f2 := openFollower(t, addr, dir, false)
	defer f2.Close()
	waitConverge(t, eng, f2)
	if a, b := dumpState(eng), dumpState(f2.Engine()); a != b {
		t.Fatalf("state diverged after crash restart:\n%s\nvs\n%s", a, b)
	}
}

// TestRebootstrapAfterTruncation: while the follower is down the
// primary checkpoints (truncating the log past the follower's
// position); the reopened follower detects it and re-bootstraps.
func TestRebootstrapAfterTruncation(t *testing.T) {
	eng, p, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	dir := t.TempDir()
	f := openFollower(t, addr, dir, false)
	waitConverge(t, eng, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	behind := f.AppliedLSN()
	mustExec(t, s, `INSERT INTO t VALUES (2)`)
	// Checkpoint until the log is actually truncated past the closed
	// follower's position: the primary's sender may not have noticed
	// the hangup yet, and its subscription rightly pins the log until
	// it does.
	deadline := time.Now().Add(10 * time.Second)
	for eng.WAL().Base() <= behind {
		if err := eng.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("log never truncated past the dead follower")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mustExec(t, s, `INSERT INTO t VALUES (3)`)

	f2 := openFollower(t, addr, dir, false)
	defer f2.Close()
	waitConverge(t, eng, f2)
	if got := p.Basebackups.Load(); got != 2 {
		t.Fatalf("want re-bootstrap (2 basebackups), got %d", got)
	}
	if a, b := dumpState(eng), dumpState(f2.Engine()); a != b {
		t.Fatalf("state diverged after re-bootstrap:\n%s\nvs\n%s", a, b)
	}
}

// TestCheckpointDuringStreaming: a primary checkpoint must not
// truncate log bytes an attached follower still needs; convergence
// continues across it.
func TestCheckpointDuringStreaming(t *testing.T) {
	eng, _, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)

	f := openFollower(t, addr, t.TempDir(), false)
	defer f.Close()

	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
		if i%25 == 24 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverge(t, eng, f)
	if a, b := dumpState(eng), dumpState(f.Engine()); a != b {
		t.Fatalf("state diverged across checkpoints:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentWritersConverge hammers the primary from several
// sessions while the follower streams and a reader queries it —
// the concurrency surface the race detector watches.
func TestConcurrentWritersConverge(t *testing.T) {
	eng, _, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, w BIGINT)`)

	f := openFollower(t, addr, t.TempDir(), false)
	defer f.Close()

	const writers, rows = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sw := eng.NewSession(eng.Admin())
			for i := 0; i < rows; i++ {
				if _, err := sw.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, w*rows+i, w)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Concurrent replica reader.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		r := f.Engine().NewSession(f.Engine().Admin())
		for i := 0; i < 200; i++ {
			if _, err := r.Exec(`SELECT * FROM t WHERE id < 10`); err != nil {
				t.Errorf("replica reader: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone
	waitConverge(t, eng, f)
	if a, b := dumpState(eng), dumpState(f.Engine()); a != b {
		t.Fatalf("state diverged under concurrency:\n%s\nvs\n%s", a, b)
	}
	r := f.Engine().NewSession(f.Engine().Admin())
	res, err := r.Exec(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != writers*rows {
		t.Fatalf("replica has %d rows, want %d", len(res.Rows), writers*rows)
	}
}

// TestPrimaryRestartReplicaResumes: a clean primary restart truncates
// its WAL file, but logical LSNs continue (the base is persisted in
// the log header) — an attached follower reconnects with its applied
// LSN and resumes without being refused or re-bootstrapped.
func TestPrimaryRestartReplicaResumes(t *testing.T) {
	dir := t.TempDir()
	eng, err := engine.New(engine.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrimary(eng, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go p.Serve(ln)

	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	f := openFollower(t, addr, t.TempDir(), false)
	defer f.Close()
	waitConverge(t, eng, f)

	// Clean primary restart: Close checkpoints and truncates the log.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng2, err := engine.New(engine.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if end, applied := eng2.WAL().End(), f.AppliedLSN(); end < applied {
		t.Fatalf("logical LSNs regressed across restart: end %d < replica applied %d", end, applied)
	}
	p2 := NewPrimary(eng2, "")
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go p2.Serve(ln2)
	defer p2.Close()

	s2 := eng2.NewSession(eng2.Admin())
	mustExec(t, s2, `INSERT INTO t VALUES (2)`)
	waitConverge(t, eng2, f)
	if err := f.Err(); err != nil {
		t.Fatalf("follower died across primary restart: %v", err)
	}
	if got := p2.Basebackups.Load(); got != 0 {
		t.Fatalf("follower re-bootstrapped after primary restart (%d basebackups); should have resumed", got)
	}
	if a, b := dumpState(eng2), dumpState(f.Engine()); a != b {
		t.Fatalf("state diverged across primary restart:\n%s\nvs\n%s", a, b)
	}
}

// TestStreamShipsOnlyDurableBytes: the primary must not ship a commit
// its own fsyncs have not covered (a failed-over replica could
// otherwise show state the primary never acknowledged). Indirectly
// asserted via wal.ShipLimit; here we pin the API contract.
func TestStreamShipsOnlyDurableBytes(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir+"/wal.log", wal.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	lsn, err := w.Append(&wal.Record{Type: wal.RecBegin, XID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if raw, _, _ := w.ReadRaw(lsn, 1<<20); len(raw) != 0 {
		t.Fatalf("undurable bytes shipped: %d", len(raw))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	raw, next, err := w.ReadRaw(lsn, 1<<20)
	if err != nil || len(raw) == 0 {
		t.Fatalf("durable bytes not shipped: %v %d", err, len(raw))
	}
	recs, err := wal.DecodeFrames(raw, lsn)
	if err != nil || len(recs) != 1 || recs[0].XID != 7 || next != w.End() {
		t.Fatalf("round trip: %v %+v", err, recs)
	}
}
