// Package repl implements WAL log shipping: physical replication of
// an IFDB primary to read-only followers over the wire layer's framed
// protocol.
//
// Primary side (this file): a listener that serves the write-ahead
// log from whatever LSN a follower presents — reading retained log
// bytes from disk, then tailing live appends through a wal
// subscription. A follower whose position has been truncated away (or
// a fresh one, position 0) first receives a basebackup: the checkpoint
// snapshot plus every disk table's checksummed pages, produced under
// the checkpoint lock.
//
// Follower side (follower.go): opens its own DataDir, recovers, and
// applies the stream continuously through the engine's replica mode.
//
// The package's two safety invariants:
//
//   - ship-only-durable (wal.ShipLimit): only fsynced log bytes ship,
//     so a follower can never apply a commit the primary could still
//     lose to a crash — a failed-over replica never shows state the
//     primary did not acknowledge;
//   - epoch fencing: every hello and every shipped batch carries the
//     promotion epoch, and LSNs are only comparable within one epoch
//     chain. A follower from a newer epoch proves this primary is the
//     stale side of a failover — its hello is refused AND the engine's
//     write side is fenced (direct client writes stop); a follower
//     from an older epoch may carry history the failover cut
//     discarded, so it is forced through a basebackup.
//
// See ARCHITECTURE.md § Replication (stream protocol, LSN handoff,
// retention) and § Failover & epochs (the fencing rules in full).
package repl

import (
	"bufio"
	"crypto/subtle"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ifdb/internal/engine"
	"ifdb/internal/obs"
	"ifdb/internal/wal"
	"ifdb/internal/wire"
)

// sendChunk bounds one ReplFile / ReplRecs payload. Well under
// wire.MaxFrame; big enough to amortize framing.
const sendChunk = 1 << 20

// tailPoll bounds how long a caught-up sender sleeps between wakeup
// checks (subscription signals normally wake it much sooner).
const tailPoll = 250 * time.Millisecond

// Primary serves the replication stream over an engine's WAL.
type Primary struct {
	eng   *engine.Engine
	token string

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]bool

	// Logger, when set, receives connection and stream diagnostics.
	Logger *slog.Logger

	// Basebackups counts full state transfers served (monitoring: a
	// climbing count means followers keep falling off the retained
	// log).
	Basebackups atomic.Int64
}

// NewPrimary creates a replication server over eng (which must have a
// DataDir). token guards connections, like the platform token: a
// replica receives every tuple regardless of label, so it must be part
// of the trusted base. Empty accepts anyone (tests, local examples).
func NewPrimary(eng *engine.Engine, token string) *Primary {
	return &Primary{eng: eng, token: token, conns: make(map[net.Conn]bool)}
}

// Serve accepts follower connections on ln until Close.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			// Close already swept conns; don't leak a handler whose
			// subscription would pin the WAL.
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.conns[conn] = true
		p.mu.Unlock()
		go p.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (p *Primary) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return p.Serve(ln)
}

// Addr returns the bound listener address (nil before Serve).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting and tears down live streams.
func (p *Primary) Close() error {
	p.mu.Lock()
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (p *Primary) logger() *slog.Logger {
	if p.Logger != nil {
		return p.Logger
	}
	return obs.Nop()
}

// bail sends a fatal ReplErr before hanging up.
func bail(w *bufio.Writer, msg string) {
	_ = wire.WriteFrame(w, wire.MsgReplErr, (&wire.ReplErr{Msg: msg}).Encode())
	_ = w.Flush()
}

func (p *Primary) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriterSize(conn, 64<<10)

	typ, payload, err := wire.ReadFrame(r)
	if err != nil || typ != wire.MsgReplHello {
		p.logger().Warn("repl: expected ReplHello", "got", wire.ReplFrameName(typ), "err", err)
		return
	}
	hello, err := wire.DecodeReplHello(payload)
	if err != nil {
		p.logger().Warn("repl: bad hello", "err", err)
		return
	}
	if p.token != "" && subtle.ConstantTimeCompare([]byte(hello.Token), []byte(p.token)) != 1 {
		bail(w, "repl: bad token")
		return
	}
	wlog := p.eng.WAL()
	if wlog == nil {
		bail(w, "repl: primary has no WAL (no DataDir)")
		return
	}
	// Epoch fencing. A primary's epoch is fixed for its lifetime
	// (promotion happens on a *follower*, before it serves), so read it
	// once and stamp every frame with it.
	epoch := wlog.Epoch()
	from := wal.LSN(hello.From)
	switch {
	case hello.Epoch > epoch:
		// The follower streamed under a newer epoch: somewhere a
		// replica was promoted and this primary never heard — it is the
		// stale side of a failover. Refusing is the fence: accepting
		// would let a split brain feed an up-to-date replica. And since
		// the hello just *proved* a newer epoch exists, fence the write
		// side too: direct client writes stop landing in this doomed
		// history (they were previously accepted until the operator
		// stopped the node — the ROADMAP's write-side epoch check).
		p.eng.FenceWrites(hello.Epoch)
		p.logger().Warn("repl: fenced by follower hello; client writes now refused",
			"follower_epoch", hello.Epoch, "local_epoch", epoch)
		bail(w, fmt.Sprintf("repl: fenced: follower at epoch %d, this primary at stale epoch %d", hello.Epoch, epoch))
		return
	case hello.Epoch < epoch:
		// The follower's history predates a promotion this primary's
		// chain went through (typically: it *is* the old primary,
		// rejoining). Its byte position may cover writes the failover
		// cut discarded, so the position is meaningless here — force a
		// full re-bootstrap.
		from = 0
	default:
		if from > wlog.End() {
			// Same epoch but ahead of us: it replicated a different
			// history (or we were restored from an older backup).
			// Refusing beats silently diverging.
			bail(w, "repl: follower position ahead of primary log")
			return
		}
	}

	// Subscribe before deciding how to start: from here on, checkpoint
	// truncation cannot outrun this stream.
	sub := wlog.Subscribe(from)
	defer sub.Close()

	// A connection-reader goroutine turns a follower hangup into a
	// wakeup (followers send nothing after the hello).
	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	if from < wlog.Base() && from >= wlog.TruncatedStateLSN() {
		// The follower's position was truncated away, but everything
		// it missed was state-free checkpoint markers (the shape a
		// clean restart leaves): fast-forward it to the retained base
		// instead of re-bootstrapping.
		from = wlog.Base()
		sub.Advance(from)
	}
	if from < wlog.Base() {
		// Position truncated away (or fresh follower): basebackup.
		// Park the subscription far ahead so the backup's own
		// checkpoint may truncate the log and hand us a short stream.
		p.Basebackups.Add(1)
		mBasebackups.Inc()
		sub.Advance(1 << 62)
		if err := wire.WriteFrame(w, wire.MsgReplSnap, nil); err != nil {
			return
		}
		start, err := p.eng.Basebackup(func(name string, data []byte) error {
			for off := 0; ; off += sendChunk {
				end := off + sendChunk
				if end > len(data) {
					end = len(data)
				}
				f := &wire.ReplFile{Name: name, Data: data[off:end]}
				if err := wire.WriteFrame(w, wire.MsgReplFile, f.Encode()); err != nil {
					return err
				}
				if end == len(data) {
					return w.Flush()
				}
			}
		}, sub.Advance) // re-pin under the checkpoint lock: no later
		// checkpoint may truncate past the backup's start before we
		// begin streaming from it
		if err != nil {
			p.logger().Error("repl: basebackup failed", "err", err)
			bail(w, "repl: basebackup failed: "+err.Error())
			return
		}
		from = start
		e := &wire.ReplSnapEnd{Start: uint64(from), Epoch: epoch}
		if err := wire.WriteFrame(w, wire.MsgReplSnapEnd, e.Encode()); err != nil {
			return
		}
	} else {
		ok := &wire.ReplOK{Resume: uint64(from), Epoch: epoch}
		if err := wire.WriteFrame(w, wire.MsgReplOK, ok.Encode()); err != nil {
			return
		}
	}
	if err := w.Flush(); err != nil {
		return
	}

	// Stream: retained bytes first, then tail live appends.
	ticker := time.NewTicker(tailPoll)
	defer ticker.Stop()
	for {
		if sub.Dropped() {
			// A checkpoint dropped this subscription for exceeding the
			// retained-WAL budget: the bytes this follower still needs
			// are gone. Tell it why before hanging up; it re-bootstraps.
			p.logger().Warn("repl: follower exceeded the retained-WAL budget; dropping", "from", uint64(from))
			bail(w, "repl: follower exceeded the retained-WAL budget; re-bootstrap required")
			return
		}
		raw, next, err := wlog.ReadRaw(from, sendChunk)
		if err != nil {
			// ErrPositionGone cannot normally happen while subscribed;
			// treat any read error as fatal for this connection.
			p.logger().Error("repl: log read failed", "from", uint64(from), "err", err)
			bail(w, "repl: "+err.Error())
			return
		}
		if len(raw) == 0 {
			select {
			case <-sub.C:
			case <-ticker.C:
			case <-connDone:
				return
			}
			continue
		}
		rr := &wire.ReplRecs{From: uint64(from), To: uint64(next), Epoch: epoch, Data: raw}
		if err := wire.WriteFrame(w, wire.MsgReplRecs, rr.Encode()); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		mBytesShipped.Add(int64(len(raw)))
		gLagBytes.Set(int64(wlog.End() - next))
		from = next
		sub.Advance(from)
	}
}
