package repl

import (
	"bufio"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ifdb/internal/engine"
	"ifdb/internal/obs"
	"ifdb/internal/wal"
	"ifdb/internal/wire"
)

// Config configures a follower.
type Config struct {
	// Addr is the primary's replication listener address.
	Addr string
	// Token authenticates this follower to the primary.
	Token string
	// DataDir is the follower's own data directory; its recovered
	// state and persisted stream position live there.
	DataDir string

	// Engine knobs, mirroring ifdb.Config. ReplRetainBudget matters
	// the moment this follower is *promoted*: its armed replication
	// service inherits the engine, and a rejoining laggard must not
	// pin the new primary's log unboundedly.
	IFC              bool
	SyncMode         string
	CheckpointEvery  time.Duration
	BufferPoolPages  int
	ReplRetainBudget int64

	// DialTimeout bounds each connection attempt (default 5s);
	// RetryInterval paces reconnects (default 1s).
	DialTimeout   time.Duration
	RetryInterval time.Duration

	// Logger, when set, receives connection and stream diagnostics.
	Logger *slog.Logger
}

// Follower replicates a primary into a local read-only engine. It
// owns the engine: Open recovers (or bootstraps) it, a background
// goroutine applies the stream and reconnects on connection loss, and
// Close shuts both down.
type Follower struct {
	cfg  Config
	lock *engine.DirLock
	eng  *engine.Engine

	mu       sync.Mutex
	conn     net.Conn
	closed   bool
	released bool // engine closed + lock dropped (Close ran to the end)
	fatal    error
	done     chan struct{}
	started  bool
}

// errNeedBootstrap marks a reconnect that would require a new
// basebackup — the follower fell off the primary's retained log (or
// its budget), or a promotion moved the cluster to a new epoch whose
// byte stream its position cannot resume. Bootstrap is only safe
// before the engine is shared (sessions hold the engine pointer), so
// mid-life it is fatal: the operator restarts the replica process, and
// Open re-bootstraps.
var errNeedBootstrap = fmt.Errorf("repl: follower needs a new basebackup (fell behind the retained log, or crossed an epoch boundary); restart to re-bootstrap")

// Open starts a follower: it locks and recovers DataDir, connects to
// the primary (taking a basebackup if the local state is fresh or too
// far behind), and begins applying the stream in the background.
func Open(cfg Config) (*Follower, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("repl: follower requires a DataDir")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	lock, err := engine.AcquireDirLock(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, lock: lock, done: make(chan struct{})}
	if f.eng, err = f.openEngine(); err != nil {
		_ = lock.Release()
		return nil, err
	}
	conn, r, pos, err := f.connect(true)
	if err != nil {
		_ = f.eng.Close()
		_ = lock.Release()
		return nil, err
	}
	f.conn = conn
	f.started = true
	go f.run(conn, r, pos)
	return f, nil
}

func (f *Follower) openEngine() (*engine.Engine, error) {
	return engine.New(engine.Config{
		IFC:              f.cfg.IFC,
		DataDir:          f.cfg.DataDir,
		SyncMode:         f.cfg.SyncMode,
		CheckpointEvery:  f.cfg.CheckpointEvery,
		BufferPoolPages:  f.cfg.BufferPoolPages,
		ReplRetainBudget: f.cfg.ReplRetainBudget,
		Replica:          true,
		DisableLock:      true, // we hold it across bootstrap restarts
	})
}

// Engine exposes the replica engine for sessions and servers. Stable
// for the follower's lifetime once Open returns.
func (f *Follower) Engine() *engine.Engine { return f.eng }

// AppliedLSN returns the primary LSN this follower has applied
// through.
func (f *Follower) AppliedLSN() wal.LSN { return f.eng.ReplAppliedLSN() }

// Err returns the fatal error that stopped the stream, if any.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fatal
}

// Close stops the stream (if Promote has not already), closes the
// engine, and releases the DataDir lock. It remains the shutdown path
// after a promotion: the engine it closes is then the promoted
// primary.
func (f *Follower) Close() error {
	f.mu.Lock()
	wasClosed := f.closed
	f.closed = true
	conn := f.conn
	released := f.released
	f.released = true
	f.mu.Unlock()
	if !wasClosed {
		if conn != nil {
			conn.Close()
		}
		if f.started {
			<-f.done
		}
	}
	if released {
		return nil
	}
	err := f.eng.Close()
	if lerr := f.lock.Release(); err == nil {
		err = lerr
	}
	return err
}

// Promote stops the replication stream and turns the local engine into
// a writable primary under a bumped, durably-persisted WAL epoch (see
// engine.Promote for the fencing argument). The follower's engine —
// shared with every open session — is the promoted primary; Close
// still owns its shutdown. After Promote the caller typically starts a
// repl.Primary over Engine() so fenced peers can rejoin as replicas.
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("repl: promote on a closed follower")
	}
	f.closed = true // stops the apply/reconnect loop for good
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if f.started {
		<-f.done
	}
	return f.eng.Promote()
}

func (f *Follower) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *Follower) logger() *slog.Logger {
	if f.cfg.Logger != nil {
		return f.cfg.Logger
	}
	return obs.Nop()
}

// connect dials the primary, performs the hello exchange, and — when
// the primary answers with a basebackup and allowBootstrap is set —
// wipes and rebuilds the local state from it. It returns a connection
// positioned to stream from pos.
func (f *Follower) connect(allowBootstrap bool) (net.Conn, *bufio.Reader, wal.LSN, error) {
	conn, err := net.DialTimeout("tcp", f.cfg.Addr, f.cfg.DialTimeout)
	if err != nil {
		return nil, nil, 0, err
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	pos := f.eng.ReplAppliedLSN()
	h := &wire.ReplHello{Token: f.cfg.Token, From: uint64(pos), Epoch: f.eng.Epoch()}
	if err := wire.WriteFrame(w, wire.MsgReplHello, h.Encode()); err != nil {
		conn.Close()
		return nil, nil, 0, err
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return nil, nil, 0, err
	}
	typ, payload, err := wire.ReadFrame(r)
	if err != nil {
		conn.Close()
		return nil, nil, 0, err
	}
	switch typ {
	case wire.MsgReplOK:
		ok, err := wire.DecodeReplOK(payload)
		if err != nil {
			conn.Close()
			return nil, nil, 0, err
		}
		// Adopt the primary's epoch durably (a resume implies equal
		// epochs today, but the adoption is what keeps that invariant
		// self-healing).
		if err := f.eng.WAL().SetEpoch(ok.Epoch); err != nil {
			conn.Close()
			return nil, nil, 0, err
		}
		f.eng.ResetReplApply()
		if resume := wal.LSN(ok.Resume); resume > pos {
			// The primary fast-forwarded us past state-free markers a
			// truncating checkpoint discarded (its clean restart).
			// Persist the jump so our next hello starts there.
			if err := f.eng.SetReplResumeLSN(resume); err != nil {
				conn.Close()
				return nil, nil, 0, err
			}
			pos = resume
		}
		return conn, r, pos, nil
	case wire.MsgReplErr:
		conn.Close()
		if e, derr := wire.DecodeReplErr(payload); derr == nil {
			return nil, nil, 0, fmt.Errorf("repl: primary refused: %s", e.Msg)
		}
		return nil, nil, 0, fmt.Errorf("repl: primary refused")
	case wire.MsgReplSnap:
		if !allowBootstrap {
			conn.Close()
			return nil, nil, 0, errNeedBootstrap
		}
		pos, err := f.bootstrap(r)
		if err != nil {
			conn.Close()
			return nil, nil, 0, err
		}
		f.eng.ResetReplApply()
		return conn, r, pos, nil
	default:
		conn.Close()
		return nil, nil, 0, fmt.Errorf("repl: unexpected %s after hello", wire.ReplFrameName(typ))
	}
}

// bootstrap receives a basebackup: it closes and wipes the local
// engine state (derived entirely from the primary, so discarding it is
// safe), writes the shipped files, reopens the engine over them, and
// durably records the stream start position.
func (f *Follower) bootstrap(r *bufio.Reader) (wal.LSN, error) {
	if err := f.eng.Close(); err != nil {
		return 0, err
	}
	if err := wipeDataDir(f.cfg.DataDir); err != nil {
		return 0, err
	}

	var cur *os.File
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		err := cur.Sync()
		if cerr := cur.Close(); err == nil {
			err = cerr
		}
		cur = nil
		return err
	}
	curName := ""
	var start wal.LSN
	var epoch uint64
recv:
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err != nil {
			closeCur()
			return 0, fmt.Errorf("repl: basebackup interrupted: %w", err)
		}
		switch typ {
		case wire.MsgReplFile:
			file, err := wire.DecodeReplFile(payload)
			if err != nil {
				closeCur()
				return 0, err
			}
			if file.Name != filepath.Base(file.Name) || strings.HasPrefix(file.Name, ".") {
				closeCur()
				return 0, fmt.Errorf("repl: basebackup file name %q rejected", file.Name)
			}
			if file.Name != curName {
				if err := closeCur(); err != nil {
					return 0, err
				}
				cur, err = os.OpenFile(filepath.Join(f.cfg.DataDir, file.Name),
					os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
				if err != nil {
					return 0, err
				}
				curName = file.Name
			}
			if _, err := cur.Write(file.Data); err != nil {
				closeCur()
				return 0, err
			}
		case wire.MsgReplSnapEnd:
			if err := closeCur(); err != nil {
				return 0, err
			}
			e, err := wire.DecodeReplSnapEnd(payload)
			if err != nil {
				return 0, err
			}
			start, epoch = wal.LSN(e.Start), e.Epoch
			break recv
		case wire.MsgReplErr:
			closeCur()
			if e, derr := wire.DecodeReplErr(payload); derr == nil {
				return 0, fmt.Errorf("repl: basebackup failed on primary: %s", e.Msg)
			}
			return 0, fmt.Errorf("repl: basebackup failed on primary")
		default:
			closeCur()
			return 0, fmt.Errorf("repl: unexpected %s during basebackup", wire.ReplFrameName(typ))
		}
	}
	if dir, err := os.Open(f.cfg.DataDir); err == nil {
		_ = dir.Sync()
		dir.Close()
	}

	eng, err := f.openEngine()
	if err != nil {
		return 0, fmt.Errorf("repl: reopen after basebackup: %w", err)
	}
	f.eng = eng
	if err := eng.WAL().SetEpoch(epoch); err != nil {
		return 0, err
	}
	if err := eng.SetReplResumeLSN(start); err != nil {
		return 0, err
	}
	f.logger().Info("repl: bootstrapped from basebackup", "lsn", uint64(start), "epoch", epoch)
	return start, nil
}

// wipeDataDir removes the database files (WAL, snapshot, heaps, temp
// leftovers) ahead of a basebackup, keeping the LOCK file — the lock
// stays held across the rebuild.
func wipeDataDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case name == "wal.log", name == "checkpoint.snap",
			strings.HasSuffix(name, ".heap"), strings.HasSuffix(name, ".tmp"):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// run is the apply loop: stream until the connection drops, then
// reconnect (resuming at the persisted barrier) until Close or a
// fatal error.
func (f *Follower) run(conn net.Conn, r *bufio.Reader, pos wal.LSN) {
	defer close(f.done)
	for {
		err := f.stream(r, pos)
		conn.Close()
		if f.isClosed() {
			return
		}
		if err != nil {
			f.logger().Warn("repl: stream broke", "err", err)
		}
		if fatal, ok := err.(*applyError); ok {
			f.setFatal(fatal)
			return
		}
		// Reconnect with backoff; the persisted barrier is the resume
		// position.
		for {
			time.Sleep(f.cfg.RetryInterval)
			if f.isClosed() {
				return
			}
			mReconnects.Inc()
			var cerr error
			conn, r, pos, cerr = f.connect(false)
			if cerr == nil {
				break
			}
			if cerr == errNeedBootstrap {
				f.setFatal(cerr)
				return
			}
			f.logger().Warn("repl: reconnect failed", "err", cerr)
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conn = conn
		f.mu.Unlock()
	}
}

func (f *Follower) setFatal(err error) {
	f.mu.Lock()
	f.fatal = err
	f.mu.Unlock()
	f.logger().Error("repl: follower stopped", "err", err)
}

// applyError wraps local apply failures, which are fatal (retrying
// will not fix a local inconsistency), unlike connection errors.
type applyError struct{ err error }

func (e *applyError) Error() string { return e.err.Error() }
func (e *applyError) Unwrap() error { return e.err }

// stream applies ReplRecs frames until the connection errors.
func (f *Follower) stream(r *bufio.Reader, pos wal.LSN) error {
	epoch := f.eng.Epoch()
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgReplRecs:
			rr, err := wire.DecodeReplRecs(payload)
			if err != nil {
				return err
			}
			if rr.Epoch != epoch {
				// A primary's epoch is fixed for its lifetime, so a
				// mid-stream change means the peer is not the primary we
				// handshook with. Never apply cross-epoch bytes.
				return &applyError{fmt.Errorf("repl: stream epoch changed: batch at epoch %d, connected at %d", rr.Epoch, epoch)}
			}
			if wal.LSN(rr.From) != pos {
				return &applyError{fmt.Errorf("repl: stream gap: batch at %d, expected %d", rr.From, pos)}
			}
			recs, err := wal.DecodeFrames(rr.Data, pos)
			if err != nil {
				return &applyError{err}
			}
			if err := f.eng.ApplyReplicated(recs, rr.Data, wal.LSN(rr.To)); err != nil {
				return &applyError{err}
			}
			pos = wal.LSN(rr.To)
			gAppliedLSN.Set(int64(pos))
		case wire.MsgReplErr:
			if e, derr := wire.DecodeReplErr(payload); derr == nil {
				return fmt.Errorf("repl: primary: %s", e.Msg)
			}
			return fmt.Errorf("repl: primary error")
		default:
			return fmt.Errorf("repl: unexpected %s in stream", wire.ReplFrameName(typ))
		}
	}
}
