// Failover tests: promotion with epoch fencing, over real sockets.
package repl

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ifdb/internal/engine"
)

// servePrimary exposes eng's WAL on a loopback listener.
func servePrimary(t *testing.T, eng *engine.Engine) (*Primary, string) {
	t.Helper()
	p := NewPrimary(eng, "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	return p, ln.Addr().String()
}

// TestPromoteOpensWritesAndBumpsEpoch: promotion ends replica mode,
// bumps the epoch durably, and the promoted engine accepts writes that
// a fresh follower of the *new* primary then replicates.
func TestPromoteOpensWritesAndBumpsEpoch(t *testing.T) {
	eng, _, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'old')`, i))
	}

	f := openFollower(t, addr, t.TempDir(), false)
	waitConverge(t, eng, f)
	if got := f.Engine().Epoch(); got != 1 {
		t.Fatalf("follower epoch = %d, want 1", got)
	}

	// Fail over: the old primary dies, the follower is promoted.
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ne := f.Engine()
	if ne.IsReplica() {
		t.Fatal("promoted engine still in replica mode")
	}
	if got := ne.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}
	// Writes open; reads see the replicated history.
	ns := ne.NewSession(ne.Admin())
	mustExec(t, ns, `INSERT INTO t VALUES (100, 'new-epoch')`)
	res, err := ns.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0].Int() != 21 {
		t.Fatalf("post-promotion count: %v %v", res, err)
	}
	// Double promotion is refused.
	if err := ne.Promote(); !errors.Is(err, engine.ErrNotReplica) {
		t.Fatalf("second promote: want ErrNotReplica, got %v", err)
	}

	// A fresh follower of the new primary converges on its state.
	p2, addr2 := servePrimary(t, ne)
	defer p2.Close()
	f2 := openFollower(t, addr2, t.TempDir(), false)
	defer f2.Close()
	waitConverge(t, ne, f2)
	if got := f2.Engine().Epoch(); got != 2 {
		t.Fatalf("new follower epoch = %d, want 2", got)
	}
	if a, b := dumpState(ne), dumpState(f2.Engine()); a != b {
		t.Fatalf("state diverged after promotion:\nnew primary:\n%s\nfollower:\n%s", a, b)
	}
}

// TestStalePrimaryFenced: a follower that streamed under a newer epoch
// is refused by a stale primary (the fencing direction that stops a
// split brain from feeding fresh replicas stale bytes).
func TestStalePrimaryFenced(t *testing.T) {
	// Old primary P at epoch 1.
	eng, _, addr := startPrimary(t, false)
	s := eng.NewSession(eng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY)`)
	mustExec(t, s, `INSERT INTO t VALUES (1)`)

	// Follower converges, then is promoted: epoch 2.
	dir := t.TempDir()
	f := openFollower(t, addr, dir, false)
	waitConverge(t, eng, f)
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	ns := f.Engine().NewSession(f.Engine().Admin())
	mustExec(t, ns, `INSERT INTO t VALUES (2)`)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-point the promoted node's DataDir at the stale primary P, as
	// a follower. Its hello carries epoch 2 > P's epoch 1: P must
	// refuse ("fenced") rather than serve a stale stream.
	_, err := Open(Config{Addr: addr, DataDir: dir, RetryInterval: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("stale primary accepted a newer-epoch follower")
	}
	if !strings.Contains(err.Error(), "fenced") {
		t.Fatalf("want fencing refusal, got: %v", err)
	}
}

// TestOldPrimaryRejoinsViaBasebackup: after a failover, the crashed
// old primary — whose log may contain writes the cut discarded — comes
// back as a follower of the new primary. Its old-epoch hello forces a
// basebackup regardless of position, and it converges byte-equal,
// including the write it once had that the failover lost.
func TestOldPrimaryRejoinsViaBasebackup(t *testing.T) {
	oldDir := t.TempDir()
	oldEng, err := engine.New(engine.Config{DataDir: oldDir})
	if err != nil {
		t.Fatal(err)
	}
	oldPrim, addr := servePrimary(t, oldEng)
	s := oldEng.NewSession(oldEng.Admin())
	mustExec(t, s, `CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1, 'shipped')`)

	f := openFollower(t, addr, t.TempDir(), false)
	waitConverge(t, oldEng, f)

	// The old primary commits a write that never ships (its repl
	// listener closes first), then crashes: the classic lost tail.
	if err := oldPrim.Close(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `INSERT INTO t VALUES (2, 'lost-tail')`)
	oldEng.Crash()

	// Promote the follower; write under the new epoch.
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ne := f.Engine()
	ns := ne.NewSession(ne.Admin())
	mustExec(t, ns, `INSERT INTO t VALUES (3, 'new-epoch')`)
	newPrim, newAddr := servePrimary(t, ne)
	defer newPrim.Close()

	// The old primary rejoins as a replica. Its position is ahead of
	// anything it shipped (the lost tail), and its epoch is stale —
	// the basebackup path is the only way back in.
	before := newPrim.Basebackups.Load()
	f2, err := Open(Config{Addr: newAddr, DataDir: oldDir, RetryInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	waitConverge(t, ne, f2)
	if got := newPrim.Basebackups.Load(); got != before+1 {
		t.Fatalf("old primary rejoined without a basebackup (%d → %d)", before, got)
	}
	if got := f2.Engine().Epoch(); got != 2 {
		t.Fatalf("rejoined old primary epoch = %d, want 2", got)
	}
	if a, b := dumpState(ne), dumpState(f2.Engine()); a != b {
		t.Fatalf("state diverged after rejoin:\nnew primary:\n%s\nrejoined:\n%s", a, b)
	}
	// The lost tail is really gone (the failover cut discarded it) and
	// the new-epoch write is present: no zombie rows, no forked
	// history.
	r := f2.Engine().NewSession(f2.Engine().Admin())
	res, err := r.Exec(`SELECT v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "shipped" || res.Rows[1][0].Text() != "new-epoch" {
		t.Fatalf("rejoined rows: %v", res.Rows)
	}
}
