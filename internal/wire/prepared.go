package wire

import (
	"encoding/binary"
	"fmt"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// API v2: prepared statements, streaming results, and cancellation.
//
// PREPARE sends a statement's text once; the server parses it, pins
// the parsed AST in a per-session statement table, and answers with a
// handle. EXECUTE then ships only the handle and the parameters, and
// the server streams the result back as chunked ROWS frames — the
// last chunk carries the statement trailer (error, affected count,
// label sync, commit token). CLOSESTMT drops a handle; it is
// fire-and-forget (frames on one connection are processed in order,
// so a following EXECUTE cannot observe the closed handle).
//
// EXECUTE with statement id 0 carries the SQL text inline: the
// one-shot form the v1 text API is shimmed over. Either form streams,
// so a result larger than MaxFrame — which the v1 Result frame simply
// cannot carry — crosses the wire in bounded chunks.
//
// CANCEL is out-of-band, Postgres-style: the HelloOK handshake reply
// hands the client a session id and a random cancel key; a CANCEL
// frame opens a *fresh* connection, sends the pair as its first (and
// only) frame, and the server interrupts that session's running
// statement, aborting its transaction. The key — never sent on the
// wire again — is what authorizes the cancel; the canceled statement
// itself fails on its own connection with the engine's cancel error.
//
// See ARCHITECTURE.md § Client API v2 for the frame formats and the
// statement-handle lifecycle.
const (
	MsgPrepare    byte = 'B' // client → server: statement text to prepare
	MsgPrepareRes byte = 'b' // server → client: statement handle or error
	MsgExecute    byte = 'e' // client → server: handle (or inline SQL) + params
	MsgRows       byte = 'w' // server → client: one chunk of a streaming result
	MsgCloseStmt  byte = 'k' // client → server: drop a statement handle (no reply)
	MsgCancel     byte = 'N' // first frame on a fresh conn: cancel a session's statement
)

// HelloOK is the handshake reply payload. SessionID names the session
// for out-of-band cancellation and CancelKey authorizes it (§ CANCEL
// above). A v1 server sends an empty payload; both fields decode as
// zero and the client treats cancellation as unsupported.
type HelloOK struct {
	SessionID uint64
	CancelKey uint64
}

// Encode marshals h.
func (h *HelloOK) Encode() []byte {
	buf := appendU64(nil, h.SessionID)
	return appendU64(buf, h.CancelKey)
}

// DecodeHelloOK unmarshals a HelloOK payload (empty = v1 server, no
// cancellation support).
func DecodeHelloOK(buf []byte) (*HelloOK, error) {
	var h HelloOK
	if len(buf) == 0 {
		return &h, nil
	}
	var err error
	h.SessionID, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	h.CancelKey, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &h, nil
}

// Prepare asks the server to parse and pin one statement batch.
type Prepare struct {
	SQL string
}

// Encode marshals p.
func (p *Prepare) Encode() []byte {
	return appendString(nil, p.SQL)
}

// DecodePrepare unmarshals a Prepare payload.
func DecodePrepare(buf []byte) (*Prepare, error) {
	var p Prepare
	var err error
	p.SQL, _, err = readString(buf)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

// PrepareRes answers a Prepare: the per-session statement handle (ids
// start at 1; 0 is reserved for the one-shot EXECUTE form) and the
// number of positional parameters the statement binds.
type PrepareRes struct {
	Err       string // empty on success
	StmtID    uint64
	NumParams uint32
}

// Encode marshals r.
func (r *PrepareRes) Encode() []byte {
	buf := appendString(nil, r.Err)
	buf = appendU64(buf, r.StmtID)
	return binary.LittleEndian.AppendUint32(buf, r.NumParams)
}

// DecodePrepareRes unmarshals a PrepareRes payload.
func DecodePrepareRes(buf []byte) (*PrepareRes, error) {
	var r PrepareRes
	var err error
	r.Err, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	r.StmtID, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("wire: truncated prepare-res")
	}
	r.NumParams = binary.LittleEndian.Uint32(buf)
	return &r, nil
}

// Execute runs a prepared statement (StmtID from PrepareRes) or, with
// StmtID 0, the inline SQL — the one-shot form. The label-sync,
// WaitLSN, and ShardVer fields carry exactly the Query (v1) meanings.
type Execute struct {
	StmtID uint64
	SQL    string // used only when StmtID == 0
	Params []types.Value

	SyncLabel bool
	Label     label.Label
	ILabel    label.Label
	Principal uint64

	WaitLSN  uint64
	ShardVer uint64

	// ChunkRows asks the server to bound each ROWS frame to that many
	// rows (0 = server default). The server may send smaller chunks —
	// frames are also bounded by MaxFrame — but never larger ones.
	ChunkRows uint32

	// TraceID is the client-generated statement trace ID (see
	// Query.TraceID). Optional trailing field; zero means untraced.
	TraceID uint64
}

// Encode marshals e.
func (e *Execute) Encode() ([]byte, error) {
	buf := appendU64(nil, e.StmtID)
	buf = appendString(buf, e.SQL)
	var err error
	buf, err = types.EncodeRow(buf, e.Params)
	if err != nil {
		return nil, err
	}
	if e.SyncLabel {
		buf = append(buf, 1)
		buf = appendLabel(buf, e.Label)
		buf = appendLabel(buf, e.ILabel)
		buf = appendU64(buf, e.Principal)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU64(buf, e.WaitLSN)
	buf = appendU64(buf, e.ShardVer)
	buf = binary.LittleEndian.AppendUint32(buf, e.ChunkRows)
	return appendU64(buf, e.TraceID), nil
}

// DecodeExecute unmarshals an Execute payload.
func DecodeExecute(buf []byte) (*Execute, error) {
	var e Execute
	var err error
	e.StmtID, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	e.SQL, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	params, n, err := types.DecodeRow(buf)
	if err != nil {
		return nil, err
	}
	e.Params = params
	buf = buf[n:]
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated execute")
	}
	if buf[0] == 1 {
		e.SyncLabel = true
		buf = buf[1:]
		e.Label, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		e.ILabel, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		e.Principal, buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
	} else {
		buf = buf[1:]
	}
	e.WaitLSN, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	e.ShardVer, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("wire: truncated execute")
	}
	e.ChunkRows = binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	// Optional trailing trace ID (absent from pre-observability
	// clients; zero means untraced).
	if len(buf) >= 8 {
		e.TraceID, _, _ = readU64(buf)
	}
	return &e, nil
}

// RowsChunk is one frame of a streaming result. The first chunk
// carries the column names; the final one (Done) carries the
// statement trailer — the error, affected count, the server's
// post-statement labels, the commit token, and (on a stale-shard-map
// refusal) the server's current map. A failed statement is a single
// chunk with Done set and Err non-empty; chunks after the first never
// repeat Cols.
type RowsChunk struct {
	First     bool
	Done      bool
	Cols      []string // first chunk only
	Rows      [][]types.Value
	RowLabels []label.Label // nil when IFC off; else len == len(Rows)

	// Trailer, meaningful when Done:
	Err      string
	Affected int64
	Label    label.Label
	ILabel   label.Label
	Epoch    uint64
	LSN      uint64
	ShardMap *ShardMap
}

// Chunk flag bits.
const (
	chunkFirst    = 1 << 0
	chunkDone     = 1 << 1
	chunkLabels   = 1 << 2
	chunkShardMap = 1 << 3
)

// Encode marshals c.
func (c *RowsChunk) Encode() ([]byte, error) {
	var flags byte
	if c.First {
		flags |= chunkFirst
	}
	if c.Done {
		flags |= chunkDone
	}
	if c.RowLabels != nil {
		flags |= chunkLabels
	}
	if c.Done && c.ShardMap != nil {
		flags |= chunkShardMap
	}
	buf := []byte{flags}
	if c.First {
		buf = binary.AppendUvarint(buf, uint64(len(c.Cols)))
		for _, col := range c.Cols {
			buf = appendString(buf, col)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Rows)))
	var err error
	for _, row := range c.Rows {
		buf, err = types.EncodeRow(buf, row)
		if err != nil {
			return nil, err
		}
	}
	if c.RowLabels != nil {
		for _, l := range c.RowLabels {
			buf = appendLabel(buf, l)
		}
	}
	if c.Done {
		buf = appendString(buf, c.Err)
		buf = appendU64(buf, uint64(c.Affected))
		buf = appendLabel(buf, c.Label)
		buf = appendLabel(buf, c.ILabel)
		buf = appendU64(buf, c.Epoch)
		buf = appendU64(buf, c.LSN)
		if c.ShardMap != nil {
			buf = append(buf, c.ShardMap.Encode()...)
		}
	}
	return buf, nil
}

// DecodeRowsChunk unmarshals a RowsChunk payload.
func DecodeRowsChunk(buf []byte) (*RowsChunk, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated rows chunk")
	}
	c := &RowsChunk{
		First: buf[0]&chunkFirst != 0,
		Done:  buf[0]&chunkDone != 0,
	}
	hasLabels := buf[0]&chunkLabels != 0
	hasMap := buf[0]&chunkShardMap != 0
	buf = buf[1:]
	var err error
	if c.First {
		ncols, sz := binary.Uvarint(buf)
		if sz <= 0 || ncols > uint64(len(buf)) {
			return nil, fmt.Errorf("wire: bad rows chunk cols")
		}
		buf = buf[sz:]
		c.Cols = make([]string, ncols)
		for i := range c.Cols {
			c.Cols[i], buf, err = readString(buf)
			if err != nil {
				return nil, err
			}
		}
	}
	nrows, sz := binary.Uvarint(buf)
	if sz <= 0 || nrows > uint64(len(buf)) {
		return nil, fmt.Errorf("wire: bad rows chunk rows")
	}
	buf = buf[sz:]
	c.Rows = make([][]types.Value, nrows)
	for i := range c.Rows {
		row, n, err := types.DecodeRow(buf)
		if err != nil {
			return nil, err
		}
		c.Rows[i] = row
		buf = buf[n:]
	}
	if hasLabels {
		c.RowLabels = make([]label.Label, nrows)
		for i := range c.RowLabels {
			c.RowLabels[i], buf, err = readLabel(buf)
			if err != nil {
				return nil, err
			}
		}
	}
	if c.Done {
		c.Err, buf, err = readString(buf)
		if err != nil {
			return nil, err
		}
		var aff uint64
		aff, buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
		c.Affected = int64(aff)
		c.Label, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		c.ILabel, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		c.Epoch, buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
		c.LSN, buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
		if hasMap {
			c.ShardMap, err = DecodeShardMap(buf)
			if err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// CloseStmt drops a statement handle. Fire-and-forget: the server
// sends no reply, and frame ordering guarantees a later EXECUTE on
// the same connection cannot race the close.
type CloseStmt struct {
	StmtID uint64
}

// Encode marshals c.
func (c *CloseStmt) Encode() []byte {
	return appendU64(nil, c.StmtID)
}

// DecodeCloseStmt unmarshals a CloseStmt payload.
func DecodeCloseStmt(buf []byte) (*CloseStmt, error) {
	var c CloseStmt
	var err error
	c.StmtID, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &c, nil
}

// Cancel interrupts another session's running statement. It must be
// the first frame on a fresh connection (in place of Hello); the
// server verifies the key, cancels, and closes the connection without
// replying — exactly the Postgres cancel-request shape, so a client
// blocked reading its own statement's reply never deadlocks on the
// cancel path.
type Cancel struct {
	SessionID uint64
	CancelKey uint64
}

// Encode marshals c.
func (c *Cancel) Encode() []byte {
	buf := appendU64(nil, c.SessionID)
	return appendU64(buf, c.CancelKey)
}

// DecodeCancel unmarshals a Cancel payload.
func DecodeCancel(buf []byte) (*Cancel, error) {
	var c Cancel
	var err error
	c.SessionID, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	c.CancelKey, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &c, nil
}
