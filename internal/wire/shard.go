package wire

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ifdb/internal/types"
)

// Shard-map protocol messages, spoken on ordinary client connections
// like STATUS: a SHARDMAP probe answers with the node's current view
// of the cluster's shard map (empty payload when the deployment is
// unsharded). Writes carry the map version they were routed under
// (Query.ShardVer); a server holding a newer map refuses the statement
// and attaches the new map to the Result — version fencing, mirroring
// epoch fencing one level up (see ARCHITECTURE.md § Sharding).
const (
	MsgShardMap    byte = 'D' // client → server: fetch the current shard map
	MsgShardMapRes byte = 'd' // server → client: encoded ShardMap (empty = unsharded)
)

// StaleShardMapErr is the error prefix a server reports for a
// statement routed under an outdated shard-map version. The current
// map rides along in the same Result, so the client re-routes without
// an extra round trip.
const StaleShardMapErr = "wire: stale shard map"

// Shard is one horizontal slice of the keyspace: an epoch-fenced
// replication group (one primary plus its replicas) owning every row
// whose shard key hashes to ID.
type Shard struct {
	ID       uint32
	Primary  string   // client address of the shard's primary
	Replicas []string // client addresses of its read replicas
}

// ShardMap is the version-stamped assignment of the keyspace to
// shards. Rows of a sharded table hash by their shard-key column —
// labels are ordinary data, so a row's IFC label shards with it.
// Shard i owns the keys with ShardKeyHash(key) % len(Shards) == i;
// Shards must be sorted by ID and IDs must be exactly 0..n-1.
//
// The map is static but reconfigurable: Version increases on every
// change (a coordinator bumps it when a failover moves a shard's
// primary), and version fencing refuses statements routed under an
// older version.
type ShardMap struct {
	Version uint64
	// Keys maps a table name (lower-case) to its shard-key column
	// (lower-case). Tables absent from Keys are unsharded from the
	// router's point of view: reads fan out, single-shard writes are
	// not derivable.
	Keys   map[string]string
	Shards []Shard
}

// NumShards returns the shard count.
func (m *ShardMap) NumShards() int { return len(m.Shards) }

// ShardKeyHash canonically hashes one shard-key value. The canonical
// form is the value's display string (types.Value.String), so a SQL
// literal on the client and the stored datum on the server hash alike;
// shard keys should be BIGINT or TEXT, whose renderings are exact.
func ShardKeyHash(v types.Value) uint32 {
	return ShardKeyHashString(v.String())
}

// ShardKeyHashString hashes the canonical string form of a shard key
// (FNV-1a; stable across processes and restarts, unlike Go's map
// hash).
func ShardKeyHashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// ShardOf returns the shard id owning the given canonical key string.
func (m *ShardMap) ShardOf(key string) uint32 {
	return ShardKeyHashString(key) % uint32(len(m.Shards))
}

// KeyColumn returns the shard-key column for a table ("" when the
// table is not sharded by key).
func (m *ShardMap) KeyColumn(table string) string {
	return m.Keys[strings.ToLower(table)]
}

// Clone deep-copies the map (mutating reconfiguration — the
// coordinator's failover path — works on a copy, so readers holding
// the old map never observe a half-edit).
func (m *ShardMap) Clone() *ShardMap {
	out := &ShardMap{Version: m.Version, Keys: make(map[string]string, len(m.Keys))}
	for k, v := range m.Keys {
		out.Keys[k] = v
	}
	out.Shards = make([]Shard, len(m.Shards))
	for i, s := range m.Shards {
		out.Shards[i] = Shard{ID: s.ID, Primary: s.Primary, Replicas: append([]string(nil), s.Replicas...)}
	}
	return out
}

// Validate checks structural invariants: at least one shard, ids
// exactly 0..n-1 in order, every shard with a primary.
func (m *ShardMap) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("wire: shard map has no shards")
	}
	for i, s := range m.Shards {
		if s.ID != uint32(i) {
			return fmt.Errorf("wire: shard ids must be 0..%d in order, got %d at position %d", len(m.Shards)-1, s.ID, i)
		}
		if s.Primary == "" {
			return fmt.Errorf("wire: shard %d has no primary", s.ID)
		}
	}
	return nil
}

// Encode marshals m.
func (m *ShardMap) Encode() []byte {
	buf := appendU64(nil, m.Version)
	// Deterministic key order keeps encodings comparable in tests.
	tables := make([]string, 0, len(m.Keys))
	for t := range m.Keys {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	buf = appendU64(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = appendString(buf, t)
		buf = appendString(buf, m.Keys[t])
	}
	buf = appendU64(buf, uint64(len(m.Shards)))
	for _, s := range m.Shards {
		buf = appendU64(buf, uint64(s.ID))
		buf = appendString(buf, s.Primary)
		buf = appendU64(buf, uint64(len(s.Replicas)))
		for _, r := range s.Replicas {
			buf = appendString(buf, r)
		}
	}
	return buf
}

// DecodeShardMap unmarshals a ShardMap payload.
func DecodeShardMap(buf []byte) (*ShardMap, error) {
	m := &ShardMap{Keys: make(map[string]string)}
	var err error
	if m.Version, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	var n uint64
	if n, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var t, k string
		if t, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if k, buf, err = readString(buf); err != nil {
			return nil, err
		}
		m.Keys[t] = k
	}
	if n, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var s Shard
		var id, nr uint64
		if id, buf, err = readU64(buf); err != nil {
			return nil, err
		}
		s.ID = uint32(id)
		if s.Primary, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if nr, buf, err = readU64(buf); err != nil {
			return nil, err
		}
		for j := uint64(0); j < nr; j++ {
			var r string
			if r, buf, err = readString(buf); err != nil {
				return nil, err
			}
			s.Replicas = append(s.Replicas, r)
		}
		m.Shards = append(m.Shards, s)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseShardMap reads the operator-facing text format of a shard map
// (the -shard-map file of ifdb-server). Lines, in any order, comments
// with #:
//
//	version 1
//	table kv key k
//	shard 0 primary 127.0.0.1:5441 replicas 127.0.0.1:5442,127.0.0.1:5443
//	shard 1 primary 127.0.0.1:5444
func ParseShardMap(text string) (*ShardMap, error) {
	m := &ShardMap{Version: 1, Keys: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("wire: shard map line %d: %s: %q", ln+1, msg, line)
		}
		switch f[0] {
		case "version":
			if len(f) != 2 {
				return nil, fail("want 'version N'")
			}
			v, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil || v == 0 {
				return nil, fail("bad version")
			}
			m.Version = v
		case "table":
			if len(f) != 4 || f[2] != "key" {
				return nil, fail("want 'table NAME key COLUMN'")
			}
			m.Keys[strings.ToLower(f[1])] = strings.ToLower(f[3])
		case "shard":
			if len(f) < 4 || f[2] != "primary" {
				return nil, fail("want 'shard N primary ADDR [replicas A,B]'")
			}
			id, err := strconv.ParseUint(f[1], 10, 32)
			if err != nil {
				return nil, fail("bad shard id")
			}
			s := Shard{ID: uint32(id), Primary: f[3]}
			if len(f) == 6 && f[4] == "replicas" {
				for _, r := range strings.Split(f[5], ",") {
					if r = strings.TrimSpace(r); r != "" {
						s.Replicas = append(s.Replicas, r)
					}
				}
			} else if len(f) != 4 {
				return nil, fail("want 'shard N primary ADDR [replicas A,B]'")
			}
			m.Shards = append(m.Shards, s)
		default:
			return nil, fail("unknown directive")
		}
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].ID < m.Shards[j].ID })
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Format renders m in the ParseShardMap text format.
func (m *ShardMap) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "version %d\n", m.Version)
	tables := make([]string, 0, len(m.Keys))
	for t := range m.Keys {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Fprintf(&b, "table %s key %s\n", t, m.Keys[t])
	}
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "shard %d primary %s", s.ID, s.Primary)
		if len(s.Replicas) > 0 {
			fmt.Fprintf(&b, " replicas %s", strings.Join(s.Replicas, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
