package wire

import "fmt"

// Cluster-management protocol messages, spoken on ordinary client
// connections (after the Hello handshake, like queries): a STATUS
// probe answering role/epoch/LSN questions — what the coordinator's
// health checks and the routing client's discovery are built on — and
// a PROMOTE command that turns a replica server into a writable
// primary under a bumped WAL epoch.
const (
	MsgPromote   byte = 'M' // client → server: promote this replica to primary
	MsgStatus    byte = 'T' // client → server: role/epoch/LSN probe
	MsgStatusRes byte = 't' // server → client: Status (also answers Promote)
)

// Status describes one node's replication role. For a replica,
// AppliedLSN is the primary LSN it has applied through (in the
// *primary's* LSN space); for a primary, WALEnd is its append edge (in
// its own space). Lag is their difference, computed by whoever can see
// both nodes — LSN spaces are only comparable within one epoch chain.
// Err carries a PROMOTE failure, or a replica's fatal stream error.
type Status struct {
	Replica    bool
	Epoch      uint64
	AppliedLSN uint64
	WALEnd     uint64
	Err        string
}

// Encode marshals s.
func (s *Status) Encode() []byte {
	buf := make([]byte, 0, 40)
	if s.Replica {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU64(buf, s.Epoch)
	buf = appendU64(buf, s.AppliedLSN)
	buf = appendU64(buf, s.WALEnd)
	return appendString(buf, s.Err)
}

// DecodeStatus unmarshals a Status payload.
func DecodeStatus(buf []byte) (*Status, error) {
	var s Status
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated status")
	}
	s.Replica = buf[0] == 1
	buf = buf[1:]
	var err error
	if s.Epoch, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	if s.AppliedLSN, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	if s.WALEnd, buf, err = readU64(buf); err != nil {
		return nil, err
	}
	if s.Err, _, err = readString(buf); err != nil {
		return nil, err
	}
	return &s, nil
}
