package wire

import (
	"strings"
	"testing"

	"ifdb/internal/types"
)

func sampleMap() *ShardMap {
	return &ShardMap{
		Version: 7,
		Keys:    map[string]string{"kv": "k", "orders": "customer_id"},
		Shards: []Shard{
			{ID: 0, Primary: "a:1", Replicas: []string{"a:2", "a:3"}},
			{ID: 1, Primary: "b:1"},
			{ID: 2, Primary: "c:1", Replicas: []string{"c:2"}},
		},
	}
}

func TestShardMapEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMap()
	got, err := DecodeShardMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Shards {
		if got.Shards[i].Primary != m.Shards[i].Primary {
			t.Fatalf("shard %d primary %q, want %q", i, got.Shards[i].Primary, m.Shards[i].Primary)
		}
		if len(got.Shards[i].Replicas) != len(m.Shards[i].Replicas) {
			t.Fatalf("shard %d replicas %v", i, got.Shards[i].Replicas)
		}
	}
	if got.Keys["orders"] != "customer_id" {
		t.Fatalf("keys: %v", got.Keys)
	}
}

func TestShardMapParseFormatRoundTrip(t *testing.T) {
	text := `
# test map
version 3
table kv key k
shard 1 primary b:1
shard 0 primary a:1 replicas a:2,a:3
`
	m, err := ParseShardMap(text)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 || m.NumShards() != 2 {
		t.Fatalf("parsed %+v", m)
	}
	// Shards sorted by id regardless of file order.
	if m.Shards[0].ID != 0 || m.Shards[0].Primary != "a:1" || len(m.Shards[0].Replicas) != 2 {
		t.Fatalf("shard 0: %+v", m.Shards[0])
	}
	again, err := ParseShardMap(m.Format())
	if err != nil {
		t.Fatalf("reparse of Format output: %v\n%s", err, m.Format())
	}
	if again.Format() != m.Format() {
		t.Fatalf("format not stable:\n%s\nvs\n%s", m.Format(), again.Format())
	}
}

func TestShardMapValidate(t *testing.T) {
	if _, err := ParseShardMap("version 1\nshard 1 primary a:1\n"); err == nil {
		t.Fatal("gap in shard ids accepted")
	}
	if _, err := ParseShardMap("version 1\n"); err == nil {
		t.Fatal("empty map accepted")
	}
	if _, err := ParseShardMap("version 1\nshard 0 primary\n"); err == nil {
		t.Fatal("missing primary accepted")
	}
	if _, err := ParseShardMap("bogus line\n"); err == nil {
		t.Fatal("unknown directive accepted")
	}
}

// TestShardKeyHashCanonical pins the property routing correctness
// rests on: the client hashing a SQL literal and the server hashing
// the stored datum must agree.
func TestShardKeyHashCanonical(t *testing.T) {
	if ShardKeyHash(types.NewInt(42)) != ShardKeyHashString("42") {
		t.Fatal("int literal and datum hash differently")
	}
	if ShardKeyHash(types.NewText("alice")) != ShardKeyHashString("alice") {
		t.Fatal("text literal and datum hash differently")
	}
	m := sampleMap()
	seen := make(map[uint32]bool)
	for i := 0; i < 100; i++ {
		sid := m.ShardOf(types.NewInt(int64(i)).String())
		if int(sid) >= m.NumShards() {
			t.Fatalf("key %d out of range shard %d", i, sid)
		}
		seen[sid] = true
	}
	if len(seen) != m.NumShards() {
		t.Fatalf("100 keys hit only shards %v of %d", seen, m.NumShards())
	}
}

func TestShardMapCloneIsDeep(t *testing.T) {
	m := sampleMap()
	c := m.Clone()
	c.Version++
	c.Keys["kv"] = "other"
	c.Shards[0].Primary = "x:9"
	c.Shards[0].Replicas[0] = "x:8"
	if m.Version != 7 || m.Keys["kv"] != "k" || m.Shards[0].Primary != "a:1" || m.Shards[0].Replicas[0] != "a:2" {
		t.Fatalf("clone aliased the original: %+v", m)
	}
}

func TestResultCarriesShardMap(t *testing.T) {
	r := &Result{Err: StaleShardMapErr, ShardMap: sampleMap()}
	buf, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardMap == nil || got.ShardMap.Version != 7 {
		t.Fatalf("decoded result lost the attached map: %+v", got.ShardMap)
	}
	if !strings.Contains(got.Err, StaleShardMapErr) {
		t.Fatalf("err: %q", got.Err)
	}

	r2 := &Result{}
	buf2, err := r2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeResult(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.ShardMap != nil {
		t.Fatal("map materialized from nothing")
	}
}

func TestQueryCarriesShardVer(t *testing.T) {
	q := &Query{SQL: "SELECT 1", ShardVer: 9, WaitLSN: 4}
	buf, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardVer != 9 || got.WaitLSN != 4 {
		t.Fatalf("decoded %+v", got)
	}
}
