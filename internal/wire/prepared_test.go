package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

func TestPreparedFrameRoundTrips(t *testing.T) {
	h := &HelloOK{SessionID: 7, CancelKey: 0xdeadbeef}
	h2, err := DecodeHelloOK(h.Encode())
	if err != nil || *h2 != *h {
		t.Fatalf("HelloOK: %+v %v", h2, err)
	}
	// v1 servers send an empty payload: both fields zero, no error.
	if h3, err := DecodeHelloOK(nil); err != nil || h3.SessionID != 0 || h3.CancelKey != 0 {
		t.Fatalf("empty HelloOK: %+v %v", h3, err)
	}

	p := &Prepare{SQL: "SELECT * FROM kv WHERE k = $1"}
	p2, err := DecodePrepare(p.Encode())
	if err != nil || p2.SQL != p.SQL {
		t.Fatalf("Prepare: %+v %v", p2, err)
	}

	pr := &PrepareRes{Err: "", StmtID: 3, NumParams: 2}
	pr2, err := DecodePrepareRes(pr.Encode())
	if err != nil || *pr2 != *pr {
		t.Fatalf("PrepareRes: %+v %v", pr2, err)
	}

	e := &Execute{
		StmtID: 3, Params: []types.Value{types.NewInt(42), types.NewText("x")},
		SyncLabel: true, Label: label.New(1, 2), ILabel: label.New(3),
		Principal: 9, WaitLSN: 100, ShardVer: 5, ChunkRows: 64,
	}
	enc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := DecodeExecute(enc)
	if err != nil {
		t.Fatal(err)
	}
	if e2.StmtID != 3 || len(e2.Params) != 2 || !e2.SyncLabel ||
		!e2.Label.Equal(e.Label) || e2.Principal != 9 || e2.WaitLSN != 100 ||
		e2.ShardVer != 5 || e2.ChunkRows != 64 {
		t.Fatalf("Execute: %+v", e2)
	}

	c := &RowsChunk{
		First: true, Done: true, Cols: []string{"k", "v"},
		Rows:      [][]types.Value{{types.NewInt(1), types.NewText("a")}},
		RowLabels: []label.Label{label.New(4)},
		Err:       "", Affected: 1, Label: label.New(4), ILabel: nil,
		Epoch: 2, LSN: 77,
	}
	enc, err = c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := DecodeRowsChunk(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.First || !c2.Done || len(c2.Cols) != 2 || len(c2.Rows) != 1 ||
		c2.Rows[0][1].Text() != "a" || !c2.RowLabels[0].Equal(label.New(4)) ||
		c2.Affected != 1 || c2.Epoch != 2 || c2.LSN != 77 {
		t.Fatalf("RowsChunk: %+v", c2)
	}

	cs := &CloseStmt{StmtID: 11}
	cs2, err := DecodeCloseStmt(cs.Encode())
	if err != nil || *cs2 != *cs {
		t.Fatalf("CloseStmt: %+v %v", cs2, err)
	}

	cn := &Cancel{SessionID: 5, CancelKey: 0xfeed}
	cn2, err := DecodeCancel(cn.Encode())
	if err != nil || !reflect.DeepEqual(cn2, cn) {
		t.Fatalf("Cancel: %+v %v", cn2, err)
	}
}

// TestCorruptFrameFuzz flips, truncates, and garbles bytes in valid
// v2 frame payloads: every decoder must return an error or a value —
// never panic, never hang — mirroring the WAL's corrupt-tail fuzz.
// (Truncation is the common real corruption: a peer dying mid-write.)
func TestCorruptFrameFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	exec := &Execute{
		StmtID: 3, SQL: "SELECT * FROM kv",
		Params:    []types.Value{types.NewInt(42), types.NewText("xyz")},
		SyncLabel: true, Label: label.New(1, 2), ILabel: label.New(3),
		Principal: 9, WaitLSN: 100, ShardVer: 5, ChunkRows: 64,
	}
	execEnc, err := exec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	chunk := &RowsChunk{
		First: true, Done: true, Cols: []string{"k", "v"},
		Rows:      [][]types.Value{{types.NewInt(1), types.NewText("abc")}, {types.NewInt(2), types.Null}},
		RowLabels: []label.Label{label.New(4), nil},
		Affected:  2, Label: label.New(4), Epoch: 2, LSN: 77,
		ShardMap: &ShardMap{Version: 1, Keys: map[string]string{"kv": "k"},
			Shards: []Shard{{ID: 0, Primary: "a:1"}}},
	}
	chunkEnc, err := chunk.Encode()
	if err != nil {
		t.Fatal(err)
	}

	seeds := []struct {
		name   string
		enc    []byte
		decode func([]byte) (any, error)
	}{
		{"hellook", (&HelloOK{SessionID: 1, CancelKey: 2}).Encode(),
			func(b []byte) (any, error) { return DecodeHelloOK(b) }},
		{"prepare", (&Prepare{SQL: "SELECT 1"}).Encode(),
			func(b []byte) (any, error) { return DecodePrepare(b) }},
		{"prepareres", (&PrepareRes{Err: "boom", StmtID: 1, NumParams: 3}).Encode(),
			func(b []byte) (any, error) { return DecodePrepareRes(b) }},
		{"execute", execEnc,
			func(b []byte) (any, error) { return DecodeExecute(b) }},
		{"rowschunk", chunkEnc,
			func(b []byte) (any, error) { return DecodeRowsChunk(b) }},
		{"closestmt", (&CloseStmt{StmtID: 4}).Encode(),
			func(b []byte) (any, error) { return DecodeCloseStmt(b) }},
		{"cancel", (&Cancel{SessionID: 1, CancelKey: 2}).Encode(),
			func(b []byte) (any, error) { return DecodeCancel(b) }},
	}

	for _, s := range seeds {
		// Every truncation point.
		for n := 0; n <= len(s.enc); n++ {
			mustNotPanic(t, s.name, s.enc[:n], s.decode)
		}
		// Random single- and multi-byte corruptions.
		for trial := 0; trial < 2000; trial++ {
			buf := bytes.Clone(s.enc)
			for flips := 1 + rng.Intn(4); flips > 0; flips-- {
				if len(buf) == 0 {
					break
				}
				buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
			}
			// Occasionally also truncate after corrupting.
			if rng.Intn(4) == 0 && len(buf) > 0 {
				buf = buf[:rng.Intn(len(buf))]
			}
			mustNotPanic(t, s.name, buf, s.decode)
		}
		// Pure garbage.
		for trial := 0; trial < 500; trial++ {
			buf := make([]byte, rng.Intn(64))
			rng.Read(buf)
			mustNotPanic(t, s.name, buf, s.decode)
		}
	}
}

func mustNotPanic(t *testing.T, name string, buf []byte, decode func([]byte) (any, error)) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decode panicked on %d bytes (%x): %v", name, len(buf), buf, r)
		}
	}()
	_, _ = decode(buf)
}
