package wire

import (
	"testing"

	"ifdb/internal/types"
)

// TestQueryTraceIDRoundTrip: the optional trailing trace ID survives
// encode/decode on both statement frames.
func TestQueryTraceIDRoundTrip(t *testing.T) {
	q := &Query{SQL: "SELECT 1", TraceID: 0xfeedface12345678}
	buf, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != q.TraceID {
		t.Fatalf("query trace ID %x, want %x", got.TraceID, q.TraceID)
	}

	e := &Execute{StmtID: 7, Params: []types.Value{types.NewInt(1)}, TraceID: 0xabad1dea}
	buf, err = e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := DecodeExecute(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotE.TraceID != e.TraceID {
		t.Fatalf("execute trace ID %x, want %x", gotE.TraceID, e.TraceID)
	}
}

// TestTraceIDBackwardTolerant: frames from pre-observability clients
// end where the old format ended; chopping the trailing eight bytes
// must still decode, with TraceID zero ("untraced").
func TestTraceIDBackwardTolerant(t *testing.T) {
	q := &Query{SQL: "SELECT 1", WaitLSN: 42, ShardVer: 3, TraceID: 0x1111}
	buf, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(buf[:len(buf)-8])
	if err != nil {
		t.Fatalf("old-format query frame rejected: %v", err)
	}
	if got.TraceID != 0 || got.WaitLSN != 42 || got.ShardVer != 3 {
		t.Fatalf("old-format query decoded as %+v", got)
	}

	e := &Execute{SQL: "SELECT 1", ChunkRows: 9, TraceID: 0x2222}
	buf, err = e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := DecodeExecute(buf[:len(buf)-8])
	if err != nil {
		t.Fatalf("old-format execute frame rejected: %v", err)
	}
	if gotE.TraceID != 0 || gotE.ChunkRows != 9 {
		t.Fatalf("old-format execute decoded as %+v", gotE)
	}
}
