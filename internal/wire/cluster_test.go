package wire

import "testing"

// TestStatusRoundTrip: the STATUS payload survives encode/decode in
// both roles, including the error field.
func TestStatusRoundTrip(t *testing.T) {
	for _, st := range []Status{
		{Replica: false, Epoch: 1, WALEnd: 12345},
		{Replica: true, Epoch: 7, AppliedLSN: 999, WALEnd: 1000, Err: "stream died"},
		{},
	} {
		got, err := DecodeStatus(st.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", st, err)
		}
		if *got != st {
			t.Fatalf("round trip: got %+v, want %+v", *got, st)
		}
	}
	if _, err := DecodeStatus(nil); err == nil {
		t.Fatal("empty status decoded")
	}
}

// TestReplEpochRoundTrip: the epoch rides every replication frame.
func TestReplEpochRoundTrip(t *testing.T) {
	h := &ReplHello{Token: "tok", From: 77, Epoch: 3}
	gh, err := DecodeReplHello(h.Encode())
	if err != nil || *gh != *h {
		t.Fatalf("hello: %+v %v", gh, err)
	}
	ok := &ReplOK{Resume: 88, Epoch: 4}
	gok, err := DecodeReplOK(ok.Encode())
	if err != nil || *gok != *ok {
		t.Fatalf("ok: %+v %v", gok, err)
	}
	se := &ReplSnapEnd{Start: 99, Epoch: 5}
	gse, err := DecodeReplSnapEnd(se.Encode())
	if err != nil || *gse != *se {
		t.Fatalf("snapend: %+v %v", gse, err)
	}
	rr := &ReplRecs{From: 1, To: 9, Epoch: 6, Data: []byte("frames")}
	grr, err := DecodeReplRecs(rr.Encode())
	if err != nil || grr.From != 1 || grr.To != 9 || grr.Epoch != 6 || string(grr.Data) != "frames" {
		t.Fatalf("recs: %+v %v", grr, err)
	}
}

// TestQueryWaitLSNRoundTrip: the read-your-writes token rides the
// query frame, with and without a label sync.
func TestQueryWaitLSNRoundTrip(t *testing.T) {
	for _, q := range []*Query{
		{SQL: "SELECT 1", WaitLSN: 4242},
		{SQL: "SELECT 2", WaitLSN: 17, SyncLabel: true, Principal: 9},
		{SQL: "SELECT 3"},
	} {
		payload, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeQuery(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.SQL != q.SQL || got.WaitLSN != q.WaitLSN || got.SyncLabel != q.SyncLabel || got.Principal != q.Principal {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
	}
}

// TestResultTokenRoundTrip: results carry the (epoch, LSN) pair.
func TestResultTokenRoundTrip(t *testing.T) {
	r := &Result{Affected: 3, Epoch: 2, LSN: 1 << 40}
	payload, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || got.LSN != 1<<40 || got.Affected != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}
