package wire

import "fmt"

// Replication protocol messages. A follower connects, sends ReplHello
// with the primary LSN it has applied through, and the primary replies
// with either ReplOK (the log still holds that position — streaming
// starts there) or a basebackup (ReplSnap, then ReplFile chunks, then
// ReplSnapEnd naming the LSN streaming starts at). Either way the
// connection then carries an endless sequence of ReplRecs frames: raw
// WAL bytes — whole frames, primary CRCs intact — covering [From, To).
const (
	MsgReplHello   byte = 'P' // follower → primary: token, applied LSN
	MsgReplOK      byte = 'K' // primary → follower: streaming from Resume
	MsgReplSnap    byte = 'S' // primary → follower: basebackup follows
	MsgReplFile    byte = 'F' // primary → follower: one basebackup file chunk
	MsgReplSnapEnd byte = 'E' // primary → follower: basebackup done, start LSN
	MsgReplRecs    byte = 'W' // primary → follower: raw WAL frames
	MsgReplErr     byte = '!' // primary → follower: fatal error, closing
)

// ReplHello opens a replication stream. Token is the platform token
// (replicas are part of the trusted base, like client platforms); From
// is the primary LSN the follower has applied through; Epoch is the
// promotion generation the follower last streamed under. The primary
// fences on it: a follower from a *newer* epoch proves this primary is
// stale (its hello is refused outright), and a follower from an
// *older* epoch may carry divergent history past the failover cut, so
// its byte position is meaningless and it is forced through a
// basebackup.
type ReplHello struct {
	Token string
	From  uint64
	Epoch uint64
}

// Encode marshals h.
func (h *ReplHello) Encode() []byte {
	buf := appendString(nil, h.Token)
	buf = appendU64(buf, h.From)
	return appendU64(buf, h.Epoch)
}

// DecodeReplHello unmarshals a ReplHello payload.
func DecodeReplHello(buf []byte) (*ReplHello, error) {
	var h ReplHello
	var err error
	h.Token, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	h.From, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	h.Epoch, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &h, nil
}

// ReplOK accepts a stream: records flow from Resume. Resume is
// usually the follower's hello LSN, but may be *ahead* of it when a
// truncating checkpoint discarded only state-free markers in between
// (the primary restarted cleanly) — the follower fast-forwards. Epoch
// is the primary's epoch, which the follower adopts durably.
type ReplOK struct {
	Resume uint64
	Epoch  uint64
}

// Encode marshals o.
func (o *ReplOK) Encode() []byte {
	return appendU64(appendU64(nil, o.Resume), o.Epoch)
}

// DecodeReplOK unmarshals a ReplOK payload.
func DecodeReplOK(buf []byte) (*ReplOK, error) {
	var o ReplOK
	var err error
	o.Resume, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	o.Epoch, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &o, nil
}

// ReplFile is one chunk of a basebackup file. Chunks of one file
// arrive in order under the same name; a new name starts a new file.
// Names are bare file names (the follower places them in its own
// DataDir and must reject path separators).
type ReplFile struct {
	Name string
	Data []byte
}

// Encode marshals f.
func (f *ReplFile) Encode() []byte {
	buf := appendString(nil, f.Name)
	return append(buf, f.Data...)
}

// DecodeReplFile unmarshals a ReplFile payload. Data aliases buf.
func DecodeReplFile(buf []byte) (*ReplFile, error) {
	var f ReplFile
	var err error
	f.Name, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	f.Data = buf
	return &f, nil
}

// ReplSnapEnd finishes a basebackup: the follower's state now
// corresponds to primary LSN Start, where streaming begins, under the
// primary's Epoch (which the follower adopts durably).
type ReplSnapEnd struct {
	Start uint64
	Epoch uint64
}

// Encode marshals e.
func (e *ReplSnapEnd) Encode() []byte {
	return appendU64(appendU64(nil, e.Start), e.Epoch)
}

// DecodeReplSnapEnd unmarshals a ReplSnapEnd payload.
func DecodeReplSnapEnd(buf []byte) (*ReplSnapEnd, error) {
	var e ReplSnapEnd
	var err error
	e.Start, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	e.Epoch, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &e, nil
}

// ReplRecs carries raw WAL frames covering primary LSNs [From, To),
// stamped with the primary's Epoch: a follower refuses a batch whose
// epoch disagrees with the one it adopted at connection time (a stale
// primary must never feed an up-to-date replica).
type ReplRecs struct {
	From  uint64
	To    uint64
	Epoch uint64
	Data  []byte
}

// Encode marshals r.
func (r *ReplRecs) Encode() []byte {
	buf := appendU64(nil, r.From)
	buf = appendU64(buf, r.To)
	buf = appendU64(buf, r.Epoch)
	return append(buf, r.Data...)
}

// DecodeReplRecs unmarshals a ReplRecs payload. Data aliases buf.
func DecodeReplRecs(buf []byte) (*ReplRecs, error) {
	var r ReplRecs
	var err error
	r.From, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	r.To, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	r.Epoch, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	r.Data = buf
	return &r, nil
}

// ReplErr reports a fatal stream error before the primary closes the
// connection.
type ReplErr struct {
	Msg string
}

// Encode marshals e.
func (e *ReplErr) Encode() []byte { return appendString(nil, e.Msg) }

// DecodeReplErr unmarshals a ReplErr payload.
func DecodeReplErr(buf []byte) (*ReplErr, error) {
	s, _, err := readString(buf)
	if err != nil {
		return nil, err
	}
	return &ReplErr{Msg: s}, nil
}

// ReplFrameName names a replication frame type for diagnostics.
func ReplFrameName(typ byte) string {
	switch typ {
	case MsgReplHello:
		return "ReplHello"
	case MsgReplOK:
		return "ReplOK"
	case MsgReplSnap:
		return "ReplSnap"
	case MsgReplFile:
		return "ReplFile"
	case MsgReplSnapEnd:
		return "ReplSnapEnd"
	case MsgReplRecs:
		return "ReplRecs"
	case MsgReplErr:
		return "ReplErr"
	}
	return fmt.Sprintf("frame %q", typ)
}
