package wire

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgQuery, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgQuery || string(payload) != "payload" {
		t.Fatalf("frame: %c %q", typ, payload)
	}
	// Empty payload is fine (type byte only).
	buf.Reset()
	if err := WriteFrame(&buf, MsgHelloOK, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = ReadFrame(bufio.NewReader(&buf))
	if err != nil || typ != MsgHelloOK || len(payload) != 0 {
		t.Fatalf("empty frame: %c %q %v", typ, payload, err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Zero-length frame.
	r := bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("zero frame accepted")
	}
	// Truncated frame.
	r = bufio.NewReader(bytes.NewReader([]byte{10, 0, 0, 0, 'Q'}))
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Oversized declared length.
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	r = bufio.NewReader(bytes.NewReader(big))
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{Token: "secret", Principal: 42}
	got, err := DecodeHello(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Token != "secret" || got.Principal != 42 {
		t.Fatalf("hello: %+v", got)
	}
	if _, err := DecodeHello([]byte{5}); err == nil {
		t.Fatal("bad hello decoded")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := &Query{
		SQL:       "SELECT * FROM t WHERE a = $1",
		Params:    []types.Value{types.NewInt(7), types.NewText("x")},
		SyncLabel: true,
		Label:     label.New(3, 9),
		Principal: 11,
	}
	enc, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuery(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SQL != q.SQL || len(got.Params) != 2 || !got.SyncLabel ||
		!got.Label.Equal(q.Label) || got.Principal != 11 {
		t.Fatalf("query: %+v", got)
	}
	// Without sync.
	q2 := &Query{SQL: "SELECT 1"}
	enc, _ = q2.Encode()
	got, err = DecodeQuery(enc)
	if err != nil || got.SyncLabel {
		t.Fatalf("plain query: %+v %v", got, err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := &Result{
		Cols: []string{"a", "b"},
		Rows: [][]types.Value{
			{types.NewInt(1), types.NewText("x")},
			{types.Null, types.NewFloat(2.5)},
		},
		RowLabels: []label.Label{label.New(5), nil},
		Affected:  3,
		Label:     label.New(5, 6),
	}
	enc, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 || len(got.Rows) != 2 || got.Affected != 3 {
		t.Fatalf("result: %+v", got)
	}
	if !got.Rows[0][0].Equal(types.NewInt(1)) || !got.Rows[1][0].IsNull() {
		t.Fatal("row values corrupted")
	}
	if !got.RowLabels[0].Equal(label.New(5)) || !got.RowLabels[1].IsEmpty() {
		t.Fatalf("row labels: %v", got.RowLabels)
	}
	if !got.Label.Equal(label.New(5, 6)) {
		t.Fatalf("label: %v", got.Label)
	}
	// Error results.
	r2 := &Result{Err: "boom", Label: nil}
	enc, _ = r2.Encode()
	got, err = DecodeResult(enc)
	if err != nil || got.Err != "boom" {
		t.Fatalf("error result: %+v %v", got, err)
	}
}

func TestControlRoundTrip(t *testing.T) {
	c := &Control{Op: "delegate", Strs: []string{"x"}, Nums: []uint64{1, 2}}
	got, err := DecodeControl(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != "delegate" || len(got.Strs) != 1 || len(got.Nums) != 2 {
		t.Fatalf("control: %+v", got)
	}
	cr := &CtrlRes{Err: "", Nums: []uint64{9}}
	gotr, err := DecodeCtrlRes(cr.Encode())
	if err != nil || gotr.Nums[0] != 9 {
		t.Fatalf("ctrlres: %+v %v", gotr, err)
	}
}

// Property: random results round-trip byte-exactly.
func TestQuickResultRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		res := &Result{Affected: r.Int63n(100)}
		ncols := r.Intn(4)
		for i := 0; i < ncols; i++ {
			res.Cols = append(res.Cols, string(rune('a'+i)))
		}
		nrows := r.Intn(5)
		for i := 0; i < nrows; i++ {
			row := make([]types.Value, ncols)
			for j := range row {
				switch r.Intn(3) {
				case 0:
					row[j] = types.NewInt(r.Int63n(1000))
				case 1:
					row[j] = types.NewText("v")
				default:
					row[j] = types.Null
				}
			}
			res.Rows = append(res.Rows, row)
		}
		enc, err := res.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeResult(enc)
		if err != nil {
			return false
		}
		if len(got.Rows) != nrows || got.Affected != res.Affected {
			return false
		}
		for i := range res.Rows {
			for j := range res.Rows[i] {
				if !got.Rows[i][j].Equal(res.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
