package wire

import (
	"bufio"
	"crypto/subtle"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ifdb/internal/authority"
	"ifdb/internal/engine"
	"ifdb/internal/label"
	"ifdb/internal/wal"
)

// Server accepts client-platform connections and maps each to an
// engine session. Per the paper's architecture (§2), the server trusts
// connecting platforms to have authenticated their users: the Hello
// token attests that the peer is a trusted runtime, and the principal
// in each message is taken at face value afterwards.
type Server struct {
	eng   *engine.Engine
	token string

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]bool
	ErrorLog *log.Logger

	// Promote, when set, handles MsgPromote frames: it must stop the
	// node's replication stream and promote the engine (typically
	// repl.Follower.Promote via ifdb.DB.Promote — the server cannot
	// reach the follower's socket loop through the engine alone). Nil
	// rejects promotion requests.
	Promote func() error

	// StatusErr, when set, supplies the replica's fatal stream error
	// for MsgStatus replies (the follower owns that state, not the
	// engine).
	StatusErr func() error

	// ShardMap, when set, supplies this node's current view of the
	// cluster shard map (typically the coordinator's live copy, or the
	// static -shard-map file). It answers MsgShardMap probes, and every
	// Query carrying a non-zero, non-matching ShardVer is refused with
	// the current map attached — version fencing, so a router holding
	// an outdated map re-routes instead of writing to the wrong shard.
	// Nil means unsharded.
	ShardMap func() *ShardMap

	// WaitTimeout bounds a replica's read-your-writes wait (Query
	// frames carrying WaitLSN). Zero means 10s.
	WaitTimeout time.Duration
}

// NewServer creates a server over eng. token guards Hello; empty means
// accept anyone (tests, local examples).
func NewServer(eng *engine.Engine, token string) *Server {
	return &Server{eng: eng, token: token, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close already swept conns; don't leak a handler.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.ErrorLog != nil {
		s.ErrorLog.Printf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	typ, payload, err := ReadFrame(r)
	if err != nil {
		return
	}
	if typ != MsgHello {
		s.logf("wire: first frame %c, want Hello", typ)
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		s.logf("wire: bad hello: %v", err)
		return
	}
	if s.token != "" && subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.token)) != 1 {
		// Reject untrusted platforms (§2: only trusted runtimes may
		// connect).
		_ = WriteFrame(w, MsgCtrlRes, (&CtrlRes{Err: "wire: bad platform token"}).Encode())
		w.Flush()
		return
	}
	sess := s.eng.NewSession(authority.Principal(hello.Principal))
	if err := WriteFrame(w, MsgHelloOK, nil); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}

	for {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		switch typ {
		case MsgClose:
			return
		case MsgQuery:
			q, err := DecodeQuery(payload)
			if err != nil {
				s.logf("wire: bad query: %v", err)
				return
			}
			if q.SyncLabel {
				// Lazily-coalesced label/principal sync from the
				// trusted platform (§7.1).
				sess.SetLabelUnsafe(q.Label)
				sess.SetIntegrityUnsafe(q.ILabel)
				sess.SetPrincipalUnsafe(authority.Principal(q.Principal))
			}
			res := s.runQuery(sess, q)
			enc, err := res.Encode()
			if err != nil {
				s.logf("wire: encode result: %v", err)
				return
			}
			if err := WriteFrame(w, MsgResult, enc); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgControl:
			c, err := DecodeControl(payload)
			if err != nil {
				s.logf("wire: bad control: %v", err)
				return
			}
			res := s.runControl(sess, c)
			if err := WriteFrame(w, MsgCtrlRes, res.Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgStatus:
			if err := WriteFrame(w, MsgStatusRes, s.status().Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgShardMap:
			var payload []byte
			if s.ShardMap != nil {
				if m := s.ShardMap(); m != nil {
					payload = m.Encode()
				}
			}
			if err := WriteFrame(w, MsgShardMapRes, payload); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgPromote:
			var perr error
			if s.Promote != nil {
				perr = s.Promote()
			} else {
				perr = errors.New("wire: this server does not support promotion")
			}
			st := s.status()
			if perr != nil {
				st.Err = perr.Error()
			}
			if err := WriteFrame(w, MsgStatusRes, st.Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		default:
			s.logf("wire: unexpected frame %c", typ)
			return
		}
	}
}

// status snapshots this node's replication role for STATUS probes.
func (s *Server) status() *Status {
	st := &Status{Replica: s.eng.IsReplica(), Epoch: s.eng.Epoch()}
	if st.Replica {
		st.AppliedLSN = uint64(s.eng.ReplAppliedLSN())
		if s.StatusErr != nil {
			if err := s.StatusErr(); err != nil {
				st.Err = err.Error()
			}
		}
	}
	if w := s.eng.WAL(); w != nil {
		st.WALEnd = uint64(w.End())
	}
	return st
}

// waitApplied blocks until this replica has applied the primary's log
// through lsn — the server half of the read-your-writes token flow. A
// primary (including a just-promoted one) returns immediately: its own
// log covers its own commits, and a stale token from a previous epoch
// is not comparable here anyway (the routing client re-bases its token
// on the first write after a failover).
func (s *Server) waitApplied(lsn uint64) error {
	timeout := s.WaitTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	// Exponential backoff: the common case (replica a batch behind)
	// resolves within the first microsecond-scale polls; a genuinely
	// lagging replica must not burn its CPU spinning — that CPU is
	// what applies the stream.
	sleep := 50 * time.Microsecond
	for s.eng.IsReplica() && s.eng.ReplAppliedLSN() < wal.LSN(lsn) {
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: read-your-writes wait timed out: want lsn %d, applied %d", lsn, s.eng.ReplAppliedLSN())
		}
		time.Sleep(sleep)
		if sleep < 5*time.Millisecond {
			sleep *= 2
		}
	}
	return nil
}

func (s *Server) runQuery(sess *engine.Session, q *Query) *Result {
	out := &Result{}
	// Shard-map version fencing: a statement routed under an outdated
	// map may be aimed at the wrong shard entirely (a failover moved a
	// primary, a reconfiguration moved keys), so it is refused with the
	// current map attached rather than half-trusted. A client *ahead*
	// of this node's map is accepted: version bumps propagate through
	// the coordinator's process first, so after a failover the other
	// shards' servers briefly lag the routers — their placement didn't
	// change, and the engine's per-row ownership guard (which hashes
	// with this node's own map) still refuses genuinely misplaced rows.
	// ShardVer 0 marks a shard-unaware client (ifdb-cli, tests); those
	// are accepted under the same guard-only protection.
	if s.ShardMap != nil && q.ShardVer != 0 {
		if m := s.ShardMap(); m != nil && q.ShardVer < m.Version {
			out.Err = fmt.Sprintf("%s: statement routed under version %d, server at version %d", StaleShardMapErr, q.ShardVer, m.Version)
			out.ShardMap = m
			out.Label = sess.Label()
			out.ILabel = sess.Integrity()
			return out
		}
	}
	if q.WaitLSN > 0 {
		if err := s.waitApplied(q.WaitLSN); err != nil {
			out.Err = err.Error()
			out.Label = sess.Label()
			out.ILabel = sess.Integrity()
			return out
		}
	}
	res, err := sess.Exec(q.SQL, q.Params...)
	if err != nil {
		out.Err = err.Error()
	} else {
		out.Cols = res.Cols
		out.Rows = res.Rows
		out.RowLabels = res.RowLabels
		out.Affected = int64(res.Affected)
	}
	out.Label = sess.Label()
	out.ILabel = sess.Integrity()
	// Stamp the session's commit token as the read-your-writes
	// position. Deliberately *not* the WAL append edge: the edge
	// includes other sessions' in-flight transactions, and a replica's
	// applied barrier cannot pass an unresolved transaction — a token
	// built from it would stall every replica read behind whichever
	// unrelated long-running transaction happens to be open.
	out.Epoch = s.eng.Epoch()
	out.LSN = sess.CommitToken()
	return out
}

func (s *Server) runControl(sess *engine.Session, c *Control) *CtrlRes {
	fail := func(err error) *CtrlRes { return &CtrlRes{Err: err.Error()} }
	switch c.Op {
	case "create_principal":
		if len(c.Strs) != 1 {
			return fail(errors.New("create_principal(name)"))
		}
		p, err := sess.CreatePrincipal(c.Strs[0])
		if err != nil {
			return fail(err)
		}
		return &CtrlRes{Nums: []uint64{uint64(p)}}
	case "create_tag":
		if len(c.Strs) < 1 {
			return fail(errors.New("create_tag(name, compounds...)"))
		}
		t, err := sess.CreateTag(c.Strs[0], c.Strs[1:]...)
		if err != nil {
			return fail(err)
		}
		return &CtrlRes{Nums: []uint64{uint64(t)}}
	case "lookup_tag":
		if len(c.Strs) != 1 {
			return fail(errors.New("lookup_tag(name)"))
		}
		t, ok := s.eng.LookupTag(c.Strs[0])
		if !ok {
			return fail(fmt.Errorf("no tag %q", c.Strs[0]))
		}
		return &CtrlRes{Nums: []uint64{uint64(t)}}
	case "delegate":
		if len(c.Nums) != 2 {
			return fail(errors.New("delegate(grantee, tag)"))
		}
		if err := sess.Delegate(authority.Principal(c.Nums[0]), label.Tag(c.Nums[1])); err != nil {
			return fail(err)
		}
		return &CtrlRes{}
	case "revoke":
		if len(c.Nums) != 2 {
			return fail(errors.New("revoke(grantee, tag)"))
		}
		if err := sess.Revoke(authority.Principal(c.Nums[0]), label.Tag(c.Nums[1])); err != nil {
			return fail(err)
		}
		return &CtrlRes{}
	case "has_authority":
		if len(c.Nums) != 1 {
			return fail(errors.New("has_authority(tag)"))
		}
		v := uint64(0)
		if sess.HasAuthority(label.Tag(c.Nums[0])) {
			v = 1
		}
		return &CtrlRes{Nums: []uint64{v}}
	default:
		return fail(fmt.Errorf("wire: unknown control op %q", c.Op))
	}
}
