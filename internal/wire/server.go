package wire

import (
	"bufio"
	"crypto/rand"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ifdb/internal/authority"
	"ifdb/internal/engine"
	"ifdb/internal/label"
	"ifdb/internal/obs"
	"ifdb/internal/wal"
)

// DefaultChunkRows is the server's default bound on rows per
// streaming ROWS frame when the Execute did not ask for one.
const DefaultChunkRows = 256

// MaxSessionStmts bounds one connection's prepared-statement table.
// The limit is a hard refusal, not an eviction: silently dropping a
// handle would break a client that still holds it. Well above the
// client library's own per-conn cache (128), so only a leaky caller
// preparing without closing ever sees it.
const MaxSessionStmts = 512

// Server accepts client-platform connections and maps each to an
// engine session. Per the paper's architecture (§2), the server trusts
// connecting platforms to have authenticated their users: the Hello
// token attests that the peer is a trusted runtime, and the principal
// in each message is taken at face value afterwards.
type Server struct {
	eng   *engine.Engine
	token string

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]bool

	// Logger, when set, receives protocol diagnostics.
	Logger *slog.Logger

	// SlowQuery, when positive, logs any statement whose total
	// server-side time (admission + parse + execute + stream) meets the
	// threshold to the obs audit channel, with its trace ID and timing
	// breakdown.
	SlowQuery time.Duration

	// Cancellation registry: session id → (cancel key, session). A
	// CANCEL frame on a fresh connection names a session and proves
	// knowledge of its key (handed out once, in HelloOK); the server
	// interrupts that session's running statement. Keys never recross
	// the wire after the handshake.
	sessMu   sync.Mutex
	sessions map[uint64]*cancelTarget
	sessSeq  atomic.Uint64

	// Promote, when set, handles MsgPromote frames: it must stop the
	// node's replication stream and promote the engine (typically
	// repl.Follower.Promote via ifdb.DB.Promote — the server cannot
	// reach the follower's socket loop through the engine alone). Nil
	// rejects promotion requests.
	Promote func() error

	// StatusErr, when set, supplies the replica's fatal stream error
	// for MsgStatus replies (the follower owns that state, not the
	// engine).
	StatusErr func() error

	// ShardMap, when set, supplies this node's current view of the
	// cluster shard map (typically the coordinator's live copy, or the
	// static -shard-map file). It answers MsgShardMap probes, and every
	// Query carrying a non-zero, non-matching ShardVer is refused with
	// the current map attached — version fencing, so a router holding
	// an outdated map re-routes instead of writing to the wrong shard.
	// Nil means unsharded.
	ShardMap func() *ShardMap

	// WaitTimeout bounds a replica's read-your-writes wait (Query
	// frames carrying WaitLSN). Zero means 10s.
	WaitTimeout time.Duration
}

// NewServer creates a server over eng. token guards Hello; empty means
// accept anyone (tests, local examples).
func NewServer(eng *engine.Engine, token string) *Server {
	return &Server{
		eng: eng, token: token,
		conns:    make(map[net.Conn]bool),
		sessions: make(map[uint64]*cancelTarget),
	}
}

// cancelTarget is one registered session as the cancel path sees it.
type cancelTarget struct {
	key  uint64
	sess *engine.Session
}

// registerSession assigns a session id and a random cancel key.
func (s *Server) registerSession(sess *engine.Session) (id, key uint64) {
	id = s.sessSeq.Add(1)
	var kb [8]byte
	if _, err := rand.Read(kb[:]); err == nil {
		key = binary.LittleEndian.Uint64(kb[:])
	} else {
		// No entropy: leave the key zero rather than fail the
		// handshake; cancellation degrades, queries don't.
		key = 0
	}
	s.sessMu.Lock()
	s.sessions[id] = &cancelTarget{key: key, sess: sess}
	s.sessMu.Unlock()
	gActiveSessions.Add(1)
	return id, key
}

func (s *Server) unregisterSession(id uint64) {
	s.sessMu.Lock()
	delete(s.sessions, id)
	s.sessMu.Unlock()
	gActiveSessions.Add(-1)
}

// cancelSession services a CANCEL frame: constant-time key check,
// then interrupt the target session's statement. Unknown ids and bad
// keys are silently ignored (the requester is unauthenticated).
func (s *Server) cancelSession(c *Cancel) {
	s.sessMu.Lock()
	t := s.sessions[c.SessionID]
	s.sessMu.Unlock()
	if t == nil {
		return
	}
	var want, got [8]byte
	binary.LittleEndian.PutUint64(want[:], t.key)
	binary.LittleEndian.PutUint64(got[:], c.CancelKey)
	if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
		return
	}
	t.sess.Cancel()
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close already swept conns; don't leak a handler.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting and tears down live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return obs.Nop()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	typ, payload, err := ReadFrame(r)
	if err != nil {
		return
	}
	if typ == MsgCancel {
		// Out-of-band cancellation: a fresh connection whose first and
		// only frame names a session and proves its key. No reply, no
		// Hello — mirroring Postgres' cancel-request connections.
		if c, err := DecodeCancel(payload); err == nil {
			s.cancelSession(c)
		}
		return
	}
	if typ != MsgHello {
		s.logger().Warn("wire: unexpected first frame", "frame", string(typ))
		return
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		s.logger().Warn("wire: bad hello", "err", err)
		return
	}
	if s.token != "" && subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.token)) != 1 {
		// Reject untrusted platforms (§2: only trusted runtimes may
		// connect).
		_ = WriteFrame(w, MsgCtrlRes, (&CtrlRes{Err: "wire: bad platform token"}).Encode())
		w.Flush()
		return
	}
	sess := s.eng.NewSession(authority.Principal(hello.Principal))
	sid, skey := s.registerSession(sess)
	defer s.unregisterSession(sid)
	mFramesOut.Inc()
	if err := WriteFrame(w, MsgHelloOK, (&HelloOK{SessionID: sid, CancelKey: skey}).Encode()); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}

	// stmts is this connection's prepared-statement table: handle →
	// pinned AST. Handles are connection-scoped (they die with it) and
	// start at 1; 0 is the one-shot EXECUTE form.
	stmts := make(map[uint64]*engine.Prepared)
	var stmtSeq uint64

	for {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		mFramesIn.Inc()
		switch typ {
		case MsgClose:
			return
		case MsgQuery:
			q, err := DecodeQuery(payload)
			if err != nil {
				s.logger().Warn("wire: bad query", "err", err)
				return
			}
			sess.SetTraceID(q.TraceID)
			if q.SyncLabel {
				// Lazily-coalesced label/principal sync from the
				// trusted platform (§7.1).
				sess.SetLabelUnsafe(q.Label)
				sess.SetIntegrityUnsafe(q.ILabel)
				sess.SetPrincipalUnsafe(authority.Principal(q.Principal))
			}
			t0 := time.Now()
			res := s.runQuery(sess, q)
			tExec := time.Now()
			enc, err := res.Encode()
			if err != nil {
				s.logger().Warn("wire: encode result", "err", err)
				return
			}
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgResult, enc); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			// For the v1 protocol "streaming" is the single Result
			// frame's encode+write.
			sess.NoteStreamNs(time.Since(tExec).Nanoseconds())
			s.noteStmtDone(sess, time.Since(t0))
		case MsgPrepare:
			p, err := DecodePrepare(payload)
			if err != nil {
				s.logger().Warn("wire: bad prepare", "err", err)
				return
			}
			res := &PrepareRes{}
			if len(stmts) >= MaxSessionStmts {
				res.Err = fmt.Sprintf("wire: too many prepared statements on this connection (max %d); close some", MaxSessionStmts)
			} else if prep, perr := sess.Prepare(p.SQL); perr != nil {
				res.Err = perr.Error()
			} else {
				stmtSeq++
				stmts[stmtSeq] = prep
				res.StmtID = stmtSeq
				res.NumParams = uint32(prep.NumParams)
			}
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgPrepareRes, res.Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgCloseStmt:
			c, err := DecodeCloseStmt(payload)
			if err != nil {
				s.logger().Warn("wire: bad closestmt", "err", err)
				return
			}
			delete(stmts, c.StmtID) // no reply: fire-and-forget
		case MsgExecute:
			e, err := DecodeExecute(payload)
			if err != nil {
				s.logger().Warn("wire: bad execute", "err", err)
				return
			}
			sess.SetTraceID(e.TraceID)
			t0 := time.Now()
			if err := s.runExecute(sess, stmts, e, w); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			s.noteStmtDone(sess, time.Since(t0))
		case MsgControl:
			c, err := DecodeControl(payload)
			if err != nil {
				s.logger().Warn("wire: bad control", "err", err)
				return
			}
			res := s.runControl(sess, c)
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgCtrlRes, res.Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgStatus:
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgStatusRes, s.status().Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgShardMap:
			var payload []byte
			if s.ShardMap != nil {
				if m := s.ShardMap(); m != nil {
					payload = m.Encode()
				}
			}
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgShardMapRes, payload); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		case MsgPromote:
			var perr error
			if s.Promote != nil {
				perr = s.Promote()
			} else {
				perr = errors.New("wire: this server does not support promotion")
			}
			st := s.status()
			if perr != nil {
				st.Err = perr.Error()
			}
			mFramesOut.Inc()
			if err := WriteFrame(w, MsgStatusRes, st.Encode()); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		default:
			s.logger().Warn("wire: unexpected frame", "frame", string(typ))
			return
		}
	}
}

// noteStmtDone finishes one statement's server-side accounting: the
// total-time histogram, and — past the SlowQuery threshold — an audit
// line carrying the trace ID and the per-phase breakdown.
func (s *Server) noteStmtDone(sess *engine.Session, total time.Duration) {
	mStmtSeconds.Observe(total.Nanoseconds())
	if s.SlowQuery <= 0 || total < s.SlowQuery {
		return
	}
	mSlowQueries.Inc()
	st := sess.LastStmtStats()
	obs.Audit().Warn("slow query",
		"trace", obs.TraceID(st.TraceID),
		"total_ns", total.Nanoseconds(),
		"parse_ns", st.ParseNs, "plan_ns", st.PlanNs,
		"exec_ns", st.ExecNs, "stream_ns", st.StreamNs,
		"sql", st.SQL)
}

// status snapshots this node's replication role for STATUS probes.
func (s *Server) status() *Status {
	st := &Status{Replica: s.eng.IsReplica(), Epoch: s.eng.Epoch()}
	if st.Replica {
		st.AppliedLSN = uint64(s.eng.ReplAppliedLSN())
		if s.StatusErr != nil {
			if err := s.StatusErr(); err != nil {
				st.Err = err.Error()
			}
		}
	}
	if w := s.eng.WAL(); w != nil {
		st.WALEnd = uint64(w.End())
	}
	return st
}

// waitApplied blocks until this replica has applied the primary's log
// through lsn — the server half of the read-your-writes token flow. A
// primary (including a just-promoted one) returns immediately: its own
// log covers its own commits, and a stale token from a previous epoch
// is not comparable here anyway (the routing client re-bases its token
// on the first write after a failover).
func (s *Server) waitApplied(lsn uint64) error {
	timeout := s.WaitTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	// Exponential backoff: the common case (replica a batch behind)
	// resolves within the first microsecond-scale polls; a genuinely
	// lagging replica must not burn its CPU spinning — that CPU is
	// what applies the stream.
	sleep := 50 * time.Microsecond
	for s.eng.IsReplica() && s.eng.ReplAppliedLSN() < wal.LSN(lsn) {
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: read-your-writes wait timed out: want lsn %d, applied %d", lsn, s.eng.ReplAppliedLSN())
		}
		time.Sleep(sleep)
		if sleep < 5*time.Millisecond {
			sleep *= 2
		}
	}
	return nil
}

func (s *Server) runQuery(sess *engine.Session, q *Query) *Result {
	out := &Result{}
	planT0 := time.Now()
	// Shard-map version fencing: a statement routed under an outdated
	// map may be aimed at the wrong shard entirely (a failover moved a
	// primary, a reconfiguration moved keys), so it is refused with the
	// current map attached rather than half-trusted. A client *ahead*
	// of this node's map is accepted: version bumps propagate through
	// the coordinator's process first, so after a failover the other
	// shards' servers briefly lag the routers — their placement didn't
	// change, and the engine's per-row ownership guard (which hashes
	// with this node's own map) still refuses genuinely misplaced rows.
	// ShardVer 0 marks a shard-unaware client (ifdb-cli, tests); those
	// are accepted under the same guard-only protection.
	if s.ShardMap != nil && q.ShardVer != 0 {
		if m := s.ShardMap(); m != nil && q.ShardVer < m.Version {
			out.Err = fmt.Sprintf("%s: statement routed under version %d, server at version %d", StaleShardMapErr, q.ShardVer, m.Version)
			out.ShardMap = m
			out.Label = sess.Label()
			out.ILabel = sess.Integrity()
			return out
		}
	}
	if q.WaitLSN > 0 {
		if err := s.waitApplied(q.WaitLSN); err != nil {
			out.Err = err.Error()
			out.Label = sess.Label()
			out.ILabel = sess.Integrity()
			return out
		}
	}
	// Admission (fencing + read-your-writes wait) is the statement's
	// "plan" phase; noted after Exec, which resets the breakdown.
	planNs := time.Since(planT0).Nanoseconds()
	res, err := sess.Exec(q.SQL, q.Params...)
	sess.NotePlanNs(planNs)
	if err != nil {
		out.Err = err.Error()
	} else {
		out.Cols = res.Cols
		out.Rows = res.Rows
		out.RowLabels = res.RowLabels
		out.Affected = int64(res.Affected)
	}
	out.Label = sess.Label()
	out.ILabel = sess.Integrity()
	// Stamp the session's commit token as the read-your-writes
	// position. Deliberately *not* the WAL append edge: the edge
	// includes other sessions' in-flight transactions, and a replica's
	// applied barrier cannot pass an unresolved transaction — a token
	// built from it would stall every replica read behind whichever
	// unrelated long-running transaction happens to be open.
	out.Epoch = s.eng.Epoch()
	out.LSN = sess.CommitToken()
	return out
}

// runExecute services one EXECUTE: the v2 statement path. It mirrors
// runQuery's fencing and read-your-writes wait, executes the prepared
// handle (or the inline one-shot SQL), and streams the result back as
// chunked ROWS frames — each bounded by the requested chunk size and
// by MaxFrame — with the statement trailer on the final chunk. A
// returned error means the connection is broken; statement failures
// travel inside the stream.
func (s *Server) runExecute(sess *engine.Session, stmts map[uint64]*engine.Prepared, e *Execute, w *bufio.Writer) error {
	// A cancel can only be meant for the statement that was running
	// when it was sent; don't let a late one kill this fresh statement
	// before it starts.
	sess.ResetCancel()
	planT0 := time.Now()
	if e.SyncLabel {
		sess.SetLabelUnsafe(e.Label)
		sess.SetIntegrityUnsafe(e.ILabel)
		sess.SetPrincipalUnsafe(authority.Principal(e.Principal))
	}
	trailer := func(errMsg string, m *ShardMap) *RowsChunk {
		return &RowsChunk{
			Done: true, Err: errMsg, ShardMap: m,
			Label: sess.Label(), ILabel: sess.Integrity(),
			Epoch: s.eng.Epoch(), LSN: sess.CommitToken(),
		}
	}
	// Shard-map version fencing, exactly as in runQuery.
	if s.ShardMap != nil && e.ShardVer != 0 {
		if m := s.ShardMap(); m != nil && e.ShardVer < m.Version {
			msg := fmt.Sprintf("%s: statement routed under version %d, server at version %d", StaleShardMapErr, e.ShardVer, m.Version)
			c := trailer(msg, m)
			c.First = true
			return writeChunk(w, c)
		}
	}
	if e.WaitLSN > 0 {
		if err := s.waitApplied(e.WaitLSN); err != nil {
			c := trailer(err.Error(), nil)
			c.First = true
			return writeChunk(w, c)
		}
	}
	planNs := time.Since(planT0).Nanoseconds()
	var cur *engine.Cursor
	var err error
	if e.StmtID != 0 {
		p := stmts[e.StmtID]
		if p == nil {
			err = fmt.Errorf("wire: unknown statement handle %d", e.StmtID)
		} else {
			cur, err = sess.ExecPreparedStream(p, e.Params...)
		}
	} else {
		cur, err = sess.ExecStream(e.SQL, e.Params...)
	}
	sess.NotePlanNs(planNs)
	if err != nil {
		c := trailer(err.Error(), nil)
		c.First = true
		return writeChunk(w, c)
	}
	streamT0 := time.Now()
	serr := s.streamCursor(sess, w, cur, e.ChunkRows, trailer)
	sess.NoteStreamNs(time.Since(streamT0).Nanoseconds())
	return serr
}

// streamCursor pulls the statement cursor batch by batch, writing each
// as a ROWS chunk. A single SELECT streams end to end: the engine's
// iterator produces one scan batch at a time, so neither the server
// nor the client ever holds the full result, and each chunk is flushed
// as it is pulled. Chunks are bounded by the requested chunk size and
// by MaxFrame.
//
// Between chunks it polls the session's cancel flag: an out-of-band
// CANCEL lands within one batch — the cursor aborts the statement's
// transaction and the stream terminates with an ErrCanceled trailer
// instead of scanning (or shipping) the rest of the result.
func (s *Server) streamCursor(sess *engine.Session, w *bufio.Writer, cur *engine.Cursor, chunkRows uint32, trailer func(string, *ShardMap) *RowsChunk) error {
	defer cur.Close()
	chunk := int(chunkRows)
	if chunk <= 0 || chunk > 1<<20 {
		chunk = DefaultChunkRows
	}
	first := true
	for {
		if !first && sess.Canceled() {
			cur.Close()
			if sess.InTxn() {
				sess.Abort()
			}
			t := trailer(engine.ErrCanceled.Error(), nil)
			t.First = false
			return writeChunk(w, t)
		}
		rows, labels, err := cur.NextBatch(chunk)
		if err != nil {
			t := trailer(err.Error(), nil)
			t.First = first
			return writeChunk(w, t)
		}
		if len(rows) == 0 {
			break
		}
		c := &RowsChunk{Rows: rows, RowLabels: labels}
		if first {
			c.First = true
			c.Cols = cur.Cols()
			first = false
		}
		if err := writeChunk(w, c); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	t := trailer("", nil)
	t.Affected = int64(cur.Affected())
	t.First = first // zero-row results: the trailer is also the first chunk
	if first {
		t.Cols = cur.Cols()
	}
	return writeChunk(w, t)
}

// writeChunk encodes and sends one ROWS frame, splitting the chunk in
// half (recursively) when the encoding would exceed the frame limit —
// only a single unencodable row gives up.
func writeChunk(w *bufio.Writer, c *RowsChunk) error {
	enc, err := c.Encode()
	if err != nil {
		return err
	}
	if len(enc)+1 <= MaxFrame {
		mFramesOut.Inc()
		mRowsBytes.Add(int64(len(enc)))
		return WriteFrame(w, MsgRows, enc)
	}
	if len(c.Rows) <= 1 {
		return fmt.Errorf("wire: single row exceeds the %d-byte frame limit", MaxFrame)
	}
	half := len(c.Rows) / 2
	left := &RowsChunk{First: c.First, Cols: c.Cols, Rows: c.Rows[:half]}
	right := &RowsChunk{
		Rows: c.Rows[half:],
		Done: c.Done, Err: c.Err, Affected: c.Affected,
		Label: c.Label, ILabel: c.ILabel, Epoch: c.Epoch, LSN: c.LSN,
		ShardMap: c.ShardMap,
	}
	if c.RowLabels != nil {
		left.RowLabels = c.RowLabels[:half]
		right.RowLabels = c.RowLabels[half:]
	}
	if err := writeChunk(w, left); err != nil {
		return err
	}
	return writeChunk(w, right)
}

func (s *Server) runControl(sess *engine.Session, c *Control) *CtrlRes {
	fail := func(err error) *CtrlRes { return &CtrlRes{Err: err.Error()} }
	switch c.Op {
	case "create_principal":
		if len(c.Strs) != 1 {
			return fail(errors.New("create_principal(name)"))
		}
		p, err := sess.CreatePrincipal(c.Strs[0])
		if err != nil {
			return fail(err)
		}
		return &CtrlRes{Nums: []uint64{uint64(p)}}
	case "create_tag":
		if len(c.Strs) < 1 {
			return fail(errors.New("create_tag(name, compounds...)"))
		}
		t, err := sess.CreateTag(c.Strs[0], c.Strs[1:]...)
		if err != nil {
			return fail(err)
		}
		return &CtrlRes{Nums: []uint64{uint64(t)}}
	case "lookup_tag":
		if len(c.Strs) != 1 {
			return fail(errors.New("lookup_tag(name)"))
		}
		t, ok := s.eng.LookupTag(c.Strs[0])
		if !ok {
			return fail(fmt.Errorf("no tag %q", c.Strs[0]))
		}
		return &CtrlRes{Nums: []uint64{uint64(t)}}
	case "delegate":
		if len(c.Nums) != 2 {
			return fail(errors.New("delegate(grantee, tag)"))
		}
		if err := sess.Delegate(authority.Principal(c.Nums[0]), label.Tag(c.Nums[1])); err != nil {
			return fail(err)
		}
		return &CtrlRes{}
	case "revoke":
		if len(c.Nums) != 2 {
			return fail(errors.New("revoke(grantee, tag)"))
		}
		if err := sess.Revoke(authority.Principal(c.Nums[0]), label.Tag(c.Nums[1])); err != nil {
			return fail(err)
		}
		return &CtrlRes{}
	case "has_authority":
		if len(c.Nums) != 1 {
			return fail(errors.New("has_authority(tag)"))
		}
		v := uint64(0)
		if sess.HasAuthority(label.Tag(c.Nums[0])) {
			v = 1
		}
		return &CtrlRes{Nums: []uint64{v}}
	case "stats":
		// Per-statement timing breakdown of the session's most recent
		// statement (ifdb-cli \stats): trace ID, then nanoseconds spent
		// in parse, plan (server-side admission), execute, and stream.
		st := sess.LastStmtStats()
		return &CtrlRes{Nums: []uint64{
			st.TraceID,
			uint64(st.ParseNs), uint64(st.PlanNs),
			uint64(st.ExecNs), uint64(st.StreamNs),
		}}
	default:
		return fail(fmt.Errorf("wire: unknown control op %q", c.Op))
	}
}
