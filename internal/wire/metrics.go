package wire

import "ifdb/internal/obs"

// Wire-server metrics, registered at init so every series is present
// (at zero) from the first scrape.
var (
	gActiveSessions = obs.NewGauge("ifdb_server_active_sessions",
		"Client sessions currently registered (post-Hello connections).")
	mFramesIn = obs.NewCounter("ifdb_server_frames_in_total",
		"Protocol frames read from clients on established sessions.")
	mFramesOut = obs.NewCounter("ifdb_server_frames_out_total",
		"Protocol frames written to clients (results, chunks, control replies).")
	mRowsBytes = obs.NewCounter("ifdb_wire_rows_bytes_total",
		"Encoded payload bytes of ROWS frames written to clients — the bytes-on-wire cost of result streaming (partial-aggregate pushdown shrinks it).")
	mSlowQueries = obs.NewCounter("ifdb_server_slow_queries_total",
		"Statements whose total server-side time exceeded the slow-query threshold.")
	mStmtSeconds = obs.NewDurationHistogram("ifdb_server_stmt_seconds",
		"Total server-side statement time (admission + parse + execute + stream).")
)
