// Package wire implements IFDB's client/server protocol: a
// length-prefixed binary framing over TCP, with the process label and
// acting principal piggybacked lazily on queries and results — the
// paper's design for keeping the platform's and the DBMS's view of the
// process label synchronized without extra round trips (§7.1–7.2).
//
// Beyond statements, the protocol carries the cluster-management
// surface:
//
//   - STATUS/PROMOTE frames (cluster.go): role, epoch, and LSN probes
//     — what the coordinator's health checks and the Router's primary
//     discovery are built on — and replica promotion;
//   - replication frames (repl.go): the WAL-shipping stream between a
//     primary and its followers, epoch-stamped on every batch;
//   - SHARDMAP frames (shard.go): the version-stamped shard map, plus
//     version fencing — a statement routed under a stale map version
//     is refused with the current map attached to the Result;
//   - API v2 frames (prepared.go): PREPARE/EXECUTE statement handles
//     that pin the parsed AST server-side, chunked ROWS streaming,
//     and out-of-band CANCEL keyed by the HelloOK handshake;
//   - read-your-writes plumbing: Query.WaitLSN delays a replica read
//     until the replica has applied the client's last acknowledged
//     write; Result carries the (epoch, LSN) commit token that feeds
//     it.
//
// See ARCHITECTURE.md § Replication (stream protocol), § Failover &
// epochs (STATUS/PROMOTE and tokens), and § Sharding (map format and
// version fencing).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ifdb/internal/label"
	"ifdb/internal/types"
)

// Message type bytes.
const (
	MsgHello   byte = 'H' // client → server: token, principal
	MsgHelloOK byte = 'h' // server → client
	MsgQuery   byte = 'Q' // client → server: sql, params, label/principal sync
	MsgResult  byte = 'R' // server → client: result set or error, label sync
	MsgControl byte = 'C' // client → server: authority-state operation
	MsgCtrlRes byte = 'c' // server → client: control result
	MsgClose   byte = 'X' // client → server: goodbye
)

// MaxFrame bounds a single protocol frame (64 MiB).
const MaxFrame = 64 << 20

// WriteFrame sends one frame: uint32 length, type byte, payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// --- payload encoding helpers -------------------------------------------

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return "", nil, fmt.Errorf("wire: bad string")
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}

func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func readU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("wire: short u64")
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}

// Labels on the wire use 64-bit tag ids (tags fit in 32 bits today,
// but the wire format should not bake that in).
func appendLabel(buf []byte, l label.Label) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	for _, t := range l {
		buf = appendU64(buf, uint64(t))
	}
	return buf
}

func readLabel(buf []byte) (label.Label, []byte, error) {
	n, sz := binary.Uvarint(buf)
	// Each tag takes 8 bytes: a count the remaining payload cannot
	// hold is corruption, caught before the allocation sized by it.
	if sz <= 0 || n > uint64(len(buf)-sz)/8 {
		return nil, nil, fmt.Errorf("wire: bad label")
	}
	buf = buf[sz:]
	tags := make([]label.Tag, 0, n)
	for i := uint64(0); i < n; i++ {
		var v uint64
		var err error
		v, buf, err = readU64(buf)
		if err != nil {
			return nil, nil, err
		}
		tags = append(tags, label.Tag(v))
	}
	return label.New(tags...), buf, nil
}

// --- Hello ---------------------------------------------------------------

// Hello is the connection handshake. Token authenticates the client
// platform as part of the trusted base (§2); Principal is the acting
// principal established by the platform's authentication code.
type Hello struct {
	Token     string
	Principal uint64
}

// Encode marshals h.
func (h *Hello) Encode() []byte {
	buf := appendString(nil, h.Token)
	return appendU64(buf, h.Principal)
}

// DecodeHello unmarshals a Hello payload.
func DecodeHello(buf []byte) (*Hello, error) {
	var h Hello
	var err error
	h.Token, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	h.Principal, _, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	return &h, nil
}

// --- Query ---------------------------------------------------------------

// Query carries one SQL statement batch with parameters, plus the
// client's current view of the process label and principal (sent only
// when changed since the last message — lazy coalescing, §7.1).
type Query struct {
	SQL       string
	Params    []types.Value
	SyncLabel bool // Label/ILabel/Principal fields are meaningful
	Label     label.Label
	ILabel    label.Label // integrity label
	Principal uint64

	// WaitLSN, when non-zero on a replica server, delays execution
	// until the replica has applied the primary's log through that LSN
	// — the read-your-writes token flow: a routing client stamps reads
	// with the commit LSN of its last primary write, so a replica can
	// never answer with state older than what the client already saw
	// acknowledged. Ignored on a primary (its own log trivially covers
	// its own commits).
	WaitLSN uint64

	// ShardVer, when non-zero, is the shard-map version the client
	// routed this statement under. A sharded server holding a newer map
	// refuses the statement and attaches its current map to the Result
	// (version fencing, see shard.go). Zero marks a shard-unaware
	// client: the statement is accepted and only the per-row shard-
	// ownership guard protects misdirected writes.
	ShardVer uint64

	// TraceID is the client-generated statement trace ID, stamped into
	// the server's slow-query/audit log lines and \stats timing
	// breakdowns so one statement can be followed across tiers. Encoded
	// as an optional trailing field: old decoders ignore it, and zero
	// (or absence, from an old client) means untraced.
	TraceID uint64
}

// Encode marshals q.
func (q *Query) Encode() ([]byte, error) {
	buf := appendString(nil, q.SQL)
	var err error
	buf, err = types.EncodeRow(buf, q.Params)
	if err != nil {
		return nil, err
	}
	if q.SyncLabel {
		buf = append(buf, 1)
		buf = appendLabel(buf, q.Label)
		buf = appendLabel(buf, q.ILabel)
		buf = appendU64(buf, q.Principal)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU64(buf, q.WaitLSN)
	buf = appendU64(buf, q.ShardVer)
	return appendU64(buf, q.TraceID), nil
}

// DecodeQuery unmarshals a Query payload.
func DecodeQuery(buf []byte) (*Query, error) {
	var q Query
	var err error
	q.SQL, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	params, n, err := types.DecodeRow(buf)
	if err != nil {
		return nil, err
	}
	q.Params = params
	buf = buf[n:]
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated query")
	}
	if buf[0] == 1 {
		q.SyncLabel = true
		buf = buf[1:]
		q.Label, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		q.ILabel, buf, err = readLabel(buf)
		if err != nil {
			return nil, err
		}
		q.Principal, buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
	} else {
		buf = buf[1:]
	}
	q.WaitLSN, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	q.ShardVer, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	// Optional trailing trace ID: absent from pre-observability
	// clients, so a short tail simply means untraced.
	if len(buf) >= 8 {
		q.TraceID, _, _ = readU64(buf)
	}
	return &q, nil
}

// --- Result --------------------------------------------------------------

// Result carries a statement's outcome plus the server's current view
// of the process label (the statement may have changed it, e.g. via
// addsecrecy()).
type Result struct {
	Err       string // empty on success
	Cols      []string
	Rows      [][]types.Value
	RowLabels []label.Label // nil when IFC off or not requested
	Affected  int64
	Label     label.Label // server's process label after the statement
	ILabel    label.Label // server's integrity label after the statement

	// Epoch is the server's promotion generation; LSN is the session's
	// commit token: the smallest replication barrier proving its most
	// recent logged commit (or DDL) applied, 0 if the session never
	// logged anything (reads, in-memory servers). Deliberately *not*
	// the WAL append edge — the edge includes other sessions' open
	// transactions, which a replica's applied barrier cannot pass. The
	// routing client keeps the pair from its last write as the
	// read-your-writes token; LSN spaces are only comparable within
	// one epoch.
	Epoch uint64
	LSN   uint64

	// ShardMap rides along when the server refused the statement for a
	// stale shard-map version (Err starts with StaleShardMapErr): the
	// client adopts it and re-routes without an extra round trip. Nil
	// otherwise.
	ShardMap *ShardMap
}

// Encode marshals r.
func (r *Result) Encode() ([]byte, error) {
	buf := appendString(nil, r.Err)
	buf = binary.AppendUvarint(buf, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		buf = appendString(buf, c)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Rows)))
	var err error
	for _, row := range r.Rows {
		buf, err = types.EncodeRow(buf, row)
		if err != nil {
			return nil, err
		}
	}
	if r.RowLabels != nil {
		buf = append(buf, 1)
		for _, l := range r.RowLabels {
			buf = appendLabel(buf, l)
		}
	} else {
		buf = append(buf, 0)
	}
	buf = appendU64(buf, uint64(r.Affected))
	buf = appendLabel(buf, r.Label)
	buf = appendLabel(buf, r.ILabel)
	buf = appendU64(buf, r.Epoch)
	buf = appendU64(buf, r.LSN)
	if r.ShardMap != nil {
		buf = append(buf, 1)
		buf = append(buf, r.ShardMap.Encode()...)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}

// DecodeResult unmarshals a Result payload.
func DecodeResult(buf []byte) (*Result, error) {
	var r Result
	var err error
	r.Err, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	ncols, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: bad result")
	}
	buf = buf[sz:]
	r.Cols = make([]string, ncols)
	for i := range r.Cols {
		r.Cols[i], buf, err = readString(buf)
		if err != nil {
			return nil, err
		}
	}
	nrows, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: bad result rows")
	}
	buf = buf[sz:]
	r.Rows = make([][]types.Value, nrows)
	for i := range r.Rows {
		row, n, err := types.DecodeRow(buf)
		if err != nil {
			return nil, err
		}
		r.Rows[i] = row
		buf = buf[n:]
	}
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated result")
	}
	hasLabels := buf[0] == 1
	buf = buf[1:]
	if hasLabels {
		r.RowLabels = make([]label.Label, nrows)
		for i := range r.RowLabels {
			r.RowLabels[i], buf, err = readLabel(buf)
			if err != nil {
				return nil, err
			}
		}
	}
	var aff uint64
	aff, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	r.Affected = int64(aff)
	r.Label, buf, err = readLabel(buf)
	if err != nil {
		return nil, err
	}
	r.ILabel, buf, err = readLabel(buf)
	if err != nil {
		return nil, err
	}
	r.Epoch, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	r.LSN, buf, err = readU64(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < 1 {
		return nil, fmt.Errorf("wire: truncated result")
	}
	if buf[0] == 1 {
		r.ShardMap, err = DecodeShardMap(buf[1:])
		if err != nil {
			return nil, err
		}
	}
	return &r, nil
}

// --- Control -------------------------------------------------------------

// Control performs authority-state operations over the wire. Args and
// reply are string/u64 pairs kept deliberately simple; the platform's
// trusted setup code is the only caller.
type Control struct {
	Op   string // create_principal, create_tag, delegate, revoke, has_authority, lookup_tag, declassify_check
	Strs []string
	Nums []uint64
}

// Encode marshals c.
func (c *Control) Encode() []byte {
	buf := appendString(nil, c.Op)
	buf = binary.AppendUvarint(buf, uint64(len(c.Strs)))
	for _, s := range c.Strs {
		buf = appendString(buf, s)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Nums)))
	for _, n := range c.Nums {
		buf = appendU64(buf, n)
	}
	return buf
}

// DecodeControl unmarshals a Control payload.
func DecodeControl(buf []byte) (*Control, error) {
	var c Control
	var err error
	c.Op, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	ns, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: bad control")
	}
	buf = buf[sz:]
	c.Strs = make([]string, ns)
	for i := range c.Strs {
		c.Strs[i], buf, err = readString(buf)
		if err != nil {
			return nil, err
		}
	}
	nn, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: bad control nums")
	}
	buf = buf[sz:]
	c.Nums = make([]uint64, nn)
	for i := range c.Nums {
		c.Nums[i], buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
	}
	return &c, nil
}

// CtrlRes is the reply to a Control message.
type CtrlRes struct {
	Err  string
	Nums []uint64
}

// Encode marshals c.
func (c *CtrlRes) Encode() []byte {
	buf := appendString(nil, c.Err)
	buf = binary.AppendUvarint(buf, uint64(len(c.Nums)))
	for _, n := range c.Nums {
		buf = appendU64(buf, n)
	}
	return buf
}

// DecodeCtrlRes unmarshals a CtrlRes payload.
func DecodeCtrlRes(buf []byte) (*CtrlRes, error) {
	var c CtrlRes
	var err error
	c.Err, buf, err = readString(buf)
	if err != nil {
		return nil, err
	}
	nn, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("wire: bad ctrlres")
	}
	buf = buf[sz:]
	c.Nums = make([]uint64, nn)
	for i := range c.Nums {
		c.Nums[i], buf, err = readU64(buf)
		if err != nil {
			return nil, err
		}
	}
	return &c, nil
}
