package label

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	l := New(5, 3, 5, 1, 3)
	if !l.Equal(Label{1, 3, 5}) {
		t.Fatalf("New: %v", l)
	}
	if !l.Normalized() {
		t.Fatal("not normalized")
	}
	if New().Len() != 0 {
		t.Fatal("empty New")
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{nil, nil, true},
		{nil, New(1), true},
		{New(1), nil, false},
		{New(1), New(1), true},
		{New(1), New(1, 2), true},
		{New(1, 2), New(1), false},
		{New(1, 3), New(1, 2, 3), true},
		{New(2), New(1, 3), false},
		{New(4), New(1, 2, 3), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("%v ⊆ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := CanFlow(c.a, c.b); got != c.want {
			t.Errorf("CanFlow(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := New(1, 2, 3)
	b := New(3, 4)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4)) {
		t.Errorf("union: %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(3)) {
		t.Errorf("intersect: %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 2)) {
		t.Errorf("minus: %v", got)
	}
	if got := a.SymmetricDiff(b); !got.Equal(New(1, 2, 4)) {
		t.Errorf("symdiff: %v", got)
	}
	if got := a.Add(0); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("add low: %v", got)
	}
	if got := a.Add(9); !got.Equal(New(1, 2, 3, 9)) {
		t.Errorf("add high: %v", got)
	}
	if got := a.Add(2); !got.Equal(a) {
		t.Errorf("add dup: %v", got)
	}
	if got := a.Remove(2); !got.Equal(New(1, 3)) {
		t.Errorf("remove: %v", got)
	}
	if got := a.Remove(7); !got.Equal(a) {
		t.Errorf("remove absent: %v", got)
	}
}

func TestImmutability(t *testing.T) {
	a := New(1, 2, 3)
	b := New(2, 4)
	_ = a.Union(b)
	_ = a.Minus(b)
	_ = a.Add(0)
	_ = a.Remove(2)
	_ = a.SymmetricDiff(b)
	if !a.Equal(New(1, 2, 3)) || !b.Equal(New(2, 4)) {
		t.Fatal("operations mutated their inputs")
	}
	c := a.Clone()
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestString(t *testing.T) {
	if s := Empty.String(); s != "{}" {
		t.Fatalf("empty: %s", s)
	}
	if s := New(2, 1).String(); s != "{1,2}" {
		t.Fatalf("label: %s", s)
	}
}

// randLabel makes a small random label for property tests.
func randLabel(r *rand.Rand) Label {
	n := r.Intn(6)
	tags := make([]Tag, n)
	for i := range tags {
		tags[i] = Tag(1 + r.Intn(10))
	}
	return New(tags...)
}

// Property: union is an upper bound and the least one expressible by
// membership.
func TestQuickUnionBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randLabel(r), randLabel(r)
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		for _, tg := range u {
			if !a.Has(tg) && !b.Has(tg) {
				return false
			}
		}
		return u.Normalized()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: A ⊖ B = (A\B) ∪ (B\A), and symdiff with self is empty.
func TestQuickSymmetricDiff(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randLabel(r), randLabel(r)
		want := a.Minus(b).Union(b.Minus(a))
		if !a.SymmetricDiff(b).Equal(want) {
			return false
		}
		return a.SymmetricDiff(a).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: subset is reflexive, antisymmetric (with Equal), and
// transitive on random triples.
func TestQuickSubsetLattice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randLabel(r), randLabel(r), randLabel(r)
		if !a.SubsetOf(a) {
			return false
		}
		if a.SubsetOf(b) && b.SubsetOf(a) && !a.Equal(b) {
			return false
		}
		if a.SubsetOf(b) && b.SubsetOf(c) && !a.SubsetOf(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode round-trips.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randLabel(r)
		buf, err := AppendEncode(nil, l)
		if err != nil {
			return false
		}
		if len(buf) != EncodedSize(len(l)) {
			return false
		}
		got, n, err := Decode(buf)
		return err == nil && n == len(buf) && got.Equal(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	// Too many tags.
	big := make([]Tag, MaxEncodedTags+1)
	for i := range big {
		big[i] = Tag(i + 1)
	}
	if _, err := AppendEncode(nil, New(big...)); err == nil {
		t.Fatal("oversized label encoded")
	}
	// Tag beyond 32 bits.
	if _, err := AppendEncode(nil, Label{Tag(1) << 40}); err == nil {
		t.Fatal("wide tag encoded")
	}
	// Truncated buffers.
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty buffer")
	}
	if _, _, err := Decode([]byte{2, 1, 0, 0, 0}); err == nil {
		t.Fatal("decoded truncated label")
	}
	// Non-normalized stored label = corruption.
	buf := []byte{2, 5, 0, 0, 0, 3, 0, 0, 0}
	if _, _, err := Decode(buf); err == nil {
		t.Fatal("decoded unsorted label")
	}
}

func TestHierarchyCoversAndFlows(t *testing.T) {
	h := NewHierarchy()
	const (
		allDrives  Tag = 100
		aliceDrive Tag = 1
		bobDrive   Tag = 2
		superAll   Tag = 200
	)
	if err := h.Declare(aliceDrive, allDrives); err != nil {
		t.Fatal(err)
	}
	if err := h.Declare(bobDrive, allDrives); err != nil {
		t.Fatal(err)
	}
	if err := h.Declare(allDrives, superAll); err != nil {
		t.Fatal(err)
	}

	if !h.Covers(New(allDrives), aliceDrive) {
		t.Fatal("compound does not cover member")
	}
	if !h.Covers(New(superAll), aliceDrive) {
		t.Fatal("transitive compound does not cover member")
	}
	if h.Covers(New(aliceDrive), bobDrive) {
		t.Fatal("sibling covers sibling")
	}
	// Flows with subsumption: {alice,bob} → {allDrives}.
	if !h.Flows(New(aliceDrive, bobDrive), New(allDrives)) {
		t.Fatal("flows via compound failed")
	}
	if h.Flows(New(allDrives), New(aliceDrive)) {
		t.Fatal("compound flowed into member")
	}
	// Expand includes ancestors.
	exp := h.Expand(New(aliceDrive))
	for _, want := range []Tag{aliceDrive, allDrives, superAll} {
		if !exp.Has(want) {
			t.Fatalf("Expand missing %d: %v", want, exp)
		}
	}
}

func TestHierarchyImmutableLinks(t *testing.T) {
	h := NewHierarchy()
	if err := h.Declare(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := h.Declare(1, 200); err == nil {
		t.Fatal("relinking allowed")
	}
	if err := h.Declare(5, 5); err == nil {
		t.Fatal("self-membership allowed")
	}
	// Cycle: 100 under 1 while 1 is under 100.
	if err := h.Declare(100, 1); err == nil {
		t.Fatal("cycle allowed")
	}
	if !h.MembersKnown(1) || h.MembersKnown(7) {
		t.Fatal("MembersKnown wrong")
	}
	if got := h.Parents(1); len(got) != 1 || got[0] != 100 {
		t.Fatalf("Parents: %v", got)
	}
}

func TestDeclareNoCompounds(t *testing.T) {
	h := NewHierarchy()
	if err := h.Declare(1); err != nil {
		t.Fatal(err)
	}
	// No links recorded; declaring again with compounds still works
	// because nothing was registered.
	if err := h.Declare(1, 9); err != nil {
		t.Fatal(err)
	}
}
