package label

import (
	"fmt"
	"sync"
)

// Hierarchy records compound-tag membership (paper §3.1).
//
// A tag may be declared a member of one or more compound tags when it
// is created, and the links are immutable thereafter — IFDB forbids
// relinking because it would silently relabel all data protected by the
// tag. A compound tag "covers" its members: a process whose label
// contains all-locations is treated as contaminated for alice-location,
// and authority for all-locations suffices to declassify
// alice-location.
//
// Hierarchy is safe for concurrent use. Reads vastly outnumber writes
// (every tuple-visibility check consults it), so it is guarded by an
// RWMutex and lookups avoid allocation on the fast path.
type Hierarchy struct {
	mu      sync.RWMutex
	parents map[Tag][]Tag // tag -> compound tags it belongs to (direct)
}

// NewHierarchy returns an empty tag hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parents: make(map[Tag][]Tag)}
}

// Declare records that tag t is a member of each of the given compound
// tags. It may be called only once per tag, at creation time; calling
// it again for the same tag is an error (links are immutable).
// Cycles are rejected.
func (h *Hierarchy) Declare(t Tag, compounds ...Tag) error {
	if len(compounds) == 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.parents[t]; dup {
		return fmt.Errorf("label: compound links for tag %d are immutable", t)
	}
	for _, c := range compounds {
		if c == t {
			return fmt.Errorf("label: tag %d cannot be a member of itself", t)
		}
		if h.reachableLocked(c, t) {
			return fmt.Errorf("label: linking tag %d under %d would create a cycle", t, c)
		}
	}
	h.parents[t] = append([]Tag(nil), compounds...)
	return nil
}

// Retract removes a tag's compound links. Links are immutable for
// live tags; this exists solely so tag *creation* can roll back
// cleanly when a later step (e.g. the WAL append) fails — at that
// point no other thread has seen the tag.
func (h *Hierarchy) Retract(t Tag) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.parents, t)
}

// reachableLocked reports whether `to` is an ancestor of (or equal to)
// `from` following parent links. Caller holds at least a read lock.
func (h *Hierarchy) reachableLocked(from, to Tag) bool {
	if from == to {
		return true
	}
	for _, p := range h.parents[from] {
		if h.reachableLocked(p, to) {
			return true
		}
	}
	return false
}

// Parents returns the direct compound tags of t (nil if none). The
// returned slice must not be modified.
func (h *Hierarchy) Parents(t Tag) []Tag {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.parents[t]
}

// Covers reports whether label l covers tag t: either t ∈ l, or some
// compound that (transitively) contains t is in l.
func (h *Hierarchy) Covers(l Label, t Tag) bool {
	if l.Has(t) {
		return true
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.coversLocked(l, t)
}

func (h *Hierarchy) coversLocked(l Label, t Tag) bool {
	for _, p := range h.parents[t] {
		if l.Has(p) || h.coversLocked(l, p) {
			return true
		}
	}
	return false
}

// Flows reports whether information may flow from a source labeled src
// to a destination labeled dst, taking compound subsumption into
// account: every tag of src must be covered by dst.
func (h *Hierarchy) Flows(src, dst Label) bool {
	// Fast path: plain subset needs no map lookups.
	if src.SubsetOf(dst) {
		return true
	}
	for _, t := range src {
		if !h.Covers(dst, t) {
			return false
		}
	}
	return true
}

// Expand returns l plus all (transitive) compounds of its members.
// It is used when persisting compound closure is cheaper than repeated
// subsumption checks (e.g. precomputing effective read labels).
func (h *Hierarchy) Expand(l Label) Label {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := l.Clone()
	var walk func(t Tag)
	walk = func(t Tag) {
		for _, p := range h.parents[t] {
			if !out.Has(p) {
				out = out.Add(p)
				walk(p)
			}
		}
	}
	for _, t := range l {
		walk(t)
	}
	return out
}

// MembersKnown reports whether t has been declared in the hierarchy
// (has at least one compound link).
func (h *Hierarchy) MembersKnown(t Tag) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.parents[t]
	return ok
}
